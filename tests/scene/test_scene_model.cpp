/**
 * @file
 * Scene model: determinism, published-statistics reproduction, and
 * the motion/complexity correlation LIWC depends on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "motion/trace.hpp"
#include "scene/scene_model.hpp"

namespace qvr::scene
{
namespace
{

motion::MotionTrace
trace(std::size_t frames, std::uint64_t seed = 1)
{
    motion::TraceConfig cfg;
    cfg.numFrames = frames;
    cfg.seed = seed;
    return motion::generateTrace(cfg);
}

TEST(ComplexityField, SmoothAndBounded)
{
    ComplexityField f(0.02, 42);
    double prev = f.sample(0.0, 0.0);
    RunningStat values;
    for (double yaw = 0.0; yaw < 720.0; yaw += 0.5) {
        const double v = f.sample(yaw, 10.0);
        values.add(v);
        // Smoothness: small step, small change.
        EXPECT_LT(std::abs(v - prev), 0.35) << yaw;
        prev = v;
    }
    EXPECT_LT(values.max(), 2.5);
    EXPECT_GT(values.min(), -2.5);
    EXPECT_GT(values.stddev(), 0.2);  // not degenerate
}

TEST(ComplexityField, DeterministicPerSeed)
{
    ComplexityField a(0.02, 7);
    ComplexityField b(0.02, 7);
    ComplexityField c(0.02, 8);
    EXPECT_DOUBLE_EQ(a.sample(10.0, 5.0), b.sample(10.0, 5.0));
    EXPECT_NE(a.sample(10.0, 5.0), c.sample(10.0, 5.0));
}

TEST(SceneModel, WorkloadsDeterministic)
{
    const auto &info = findBenchmark("HL2-H");
    const auto t = trace(30);
    const auto a = generateWorkloads(info, t, 9);
    const auto b = generateWorkloads(info, t, 9);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].totalTriangles(), b[i].totalTriangles());
        EXPECT_EQ(a[i].batches.size(), b[i].batches.size());
    }
}

TEST(SceneModel, BatchCountMatchesCatalog)
{
    const auto &info = findBenchmark("GRID");
    const auto t = trace(5);
    const auto frames = generateWorkloads(info, t);
    for (const auto &f : frames)
        EXPECT_EQ(f.batches.size(), info.numBatches);
}

TEST(SceneModel, MeanTrianglesNearCatalogValue)
{
    const auto &info = findBenchmark("GRID");
    const auto t = trace(400, 11);
    const auto frames = generateWorkloads(info, t, 5);
    RunningStat tris;
    for (const auto &f : frames)
        tris.add(static_cast<double>(f.totalTriangles()));
    EXPECT_NEAR(tris.mean(),
                static_cast<double>(info.meanTriangles),
                0.30 * static_cast<double>(info.meanTriangles));
}

TEST(SceneModel, ComplexityVariesAcrossFrames)
{
    const auto &info = findBenchmark("GRID");
    const auto t = trace(400, 12);
    const auto frames = generateWorkloads(info, t, 5);
    RunningStat tris;
    for (const auto &f : frames)
        tris.add(static_cast<double>(f.totalTriangles()));
    EXPECT_GT(tris.max() / tris.min(), 1.15);
}

TEST(SceneModel, ComplexityChangeCorrelatesWithMotion)
{
    // LIWC's key insight: |d complexity| correlates with head/eye
    // motion magnitude.  Frames with near-zero motion must show much
    // smaller complexity deltas than fast-motion frames.
    const auto &info = findBenchmark("GRID");
    const auto t = trace(3000, 13);
    const auto frames = generateWorkloads(info, t, 5);

    // Quartile split on motion speed (sensor noise sets a floor, so
    // absolute thresholds are meaningless).
    SampleSeries speeds;
    for (std::size_t i = 1; i < frames.size(); i++) {
        speeds.add(frames[i].motionDelta.headSpeed() +
                   frames[i].motionDelta.dGaze.norm());
    }
    const double q25 = speeds.percentile(25);
    const double q75 = speeds.percentile(75);

    RunningStat slow_delta, fast_delta;
    for (std::size_t i = 1; i < frames.size(); i++) {
        const double d_tris = std::abs(
            static_cast<double>(frames[i].totalTriangles()) -
            static_cast<double>(frames[i - 1].totalTriangles()));
        const double speed = frames[i].motionDelta.headSpeed() +
                             frames[i].motionDelta.dGaze.norm();
        if (speed <= q25)
            slow_delta.add(d_tris);
        else if (speed >= q75)
            fast_delta.add(d_tris);
    }
    ASSERT_GT(slow_delta.count(), 20u);
    ASSERT_GT(fast_delta.count(), 20u);
    EXPECT_GT(fast_delta.mean(), slow_delta.mean() * 1.5);
}

TEST(SceneModel, InteractiveFractionRespondsToInteraction)
{
    const auto &info = findBenchmark("Foveated3D");
    SceneModel model(info, 3);
    const double idle = model.interactiveFractionAt(10.0, 5.0, false);
    const double busy = model.interactiveFractionAt(10.0, 5.0, true);
    EXPECT_GT(busy, idle);
    EXPECT_NEAR(busy / idle, info.interactiveBoost, 1e-9);
}

TEST(SceneModel, InteractiveDepthsAreForeground)
{
    const auto &info = findBenchmark("Foveated3D");
    const auto t = trace(10);
    const auto frames = generateWorkloads(info, t);
    for (const auto &f : frames) {
        for (const auto &b : f.batches) {
            if (b.interactive) {
                EXPECT_LT(b.depth, 0.4);
            } else {
                EXPECT_GE(b.depth, 0.4);
            }
        }
    }
}

TEST(SceneModel, Table1FRangesApproximated)
{
    // Over a long trace, each Table-1 app's interactive fraction
    // should stay broadly within its published range (we allow
    // generous tolerance; the paper's f is a latency share, ours is
    // triangle share — first-order equivalent).
    const auto t = trace(1500, 21);
    for (const auto &app : table1Apps()) {
        const auto frames = generateWorkloads(app, t, 4);
        RunningStat f;
        for (const auto &fr : frames)
            f.add(fr.interactiveFraction());
        ASSERT_TRUE(app.table1.has_value());
        EXPECT_GT(f.max(), app.table1->fMin) << app.name;
        EXPECT_LT(f.min(), app.table1->fMax * 1.5) << app.name;
    }
}

}  // namespace
}  // namespace qvr::scene
