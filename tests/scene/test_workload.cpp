/**
 * @file
 * FrameWorkload aggregate accounting.
 */

#include <gtest/gtest.h>

#include "scene/workload.hpp"

namespace qvr::scene
{
namespace
{

FrameWorkload
makeFrame()
{
    FrameWorkload w;
    DrawBatch a;
    a.id = 0;
    a.triangles = 100;
    a.interactive = true;
    DrawBatch b;
    b.id = 1;
    b.triangles = 300;
    DrawBatch c;
    c.id = 2;
    c.triangles = 600;
    w.batches = {a, b, c};
    return w;
}

TEST(FrameWorkload, TotalTriangles)
{
    EXPECT_EQ(makeFrame().totalTriangles(), 1000u);
}

TEST(FrameWorkload, InteractiveTriangles)
{
    EXPECT_EQ(makeFrame().interactiveTriangles(), 100u);
}

TEST(FrameWorkload, InteractiveFraction)
{
    EXPECT_DOUBLE_EQ(makeFrame().interactiveFraction(), 0.1);
}

TEST(FrameWorkload, EmptyFrameIsZero)
{
    FrameWorkload w;
    EXPECT_EQ(w.totalTriangles(), 0u);
    EXPECT_DOUBLE_EQ(w.interactiveFraction(), 0.0);
}

}  // namespace
}  // namespace qvr::scene
