/**
 * @file
 * Trace serialisation: round-trip fidelity, delta reconstruction,
 * malformed-input rejection, replay equivalence through a pipeline.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/qvr_system.hpp"
#include "scene/trace_io.hpp"

namespace qvr::scene
{
namespace
{

std::vector<FrameWorkload>
sampleWorkload(std::size_t frames = 40)
{
    core::ExperimentSpec spec;
    spec.benchmark = "HL2-H";
    spec.numFrames = frames;
    return core::generateExperimentWorkload(spec);
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    const auto original = sampleWorkload();
    std::stringstream buffer;
    writeTrace(buffer, original);
    const auto loaded = readTrace(buffer);

    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); i++) {
        const auto &a = original[i];
        const auto &b = loaded[i];
        EXPECT_EQ(a.index, b.index);
        EXPECT_DOUBLE_EQ(a.motionSeen.timestamp,
                         b.motionSeen.timestamp);
        EXPECT_EQ(a.motionSeen.head.orientation,
                  b.motionSeen.head.orientation);
        EXPECT_EQ(a.motionSeen.head.position,
                  b.motionSeen.head.position);
        EXPECT_EQ(a.motionSeen.gaze, b.motionSeen.gaze);
        EXPECT_EQ(a.motionSeen.interacting,
                  b.motionSeen.interacting);
        ASSERT_EQ(a.batches.size(), b.batches.size());
        for (std::size_t k = 0; k < a.batches.size(); k++) {
            EXPECT_EQ(a.batches[k].triangles, b.batches[k].triangles);
            EXPECT_DOUBLE_EQ(a.batches[k].depth, b.batches[k].depth);
            EXPECT_EQ(a.batches[k].interactive,
                      b.batches[k].interactive);
        }
    }
}

TEST(TraceIo, DeltasReconstructedOnLoad)
{
    const auto original = sampleWorkload();
    std::stringstream buffer;
    writeTrace(buffer, original);
    const auto loaded = readTrace(buffer);
    for (std::size_t i = 1; i < original.size(); i++) {
        EXPECT_NEAR(loaded[i].motionDelta.dOrientation.x,
                    original[i].motionDelta.dOrientation.x, 1e-12);
        EXPECT_NEAR(loaded[i].motionDelta.dGaze.norm(),
                    original[i].motionDelta.dGaze.norm(), 1e-12);
    }
}

TEST(TraceIo, ReplayedTraceDrivesPipelineIdentically)
{
    const auto original = sampleWorkload(30);
    std::stringstream buffer;
    writeTrace(buffer, original);
    const auto replayed = readTrace(buffer);

    core::ExperimentSpec spec;
    spec.benchmark = "HL2-H";
    const auto run_a =
        core::makePipeline(core::DesignPoint::Qvr, spec.toConfig())
            ->run(original);
    const auto run_b =
        core::makePipeline(core::DesignPoint::Qvr, spec.toConfig())
            ->run(replayed);

    ASSERT_EQ(run_a.frames.size(), run_b.frames.size());
    for (std::size_t i = 0; i < run_a.frames.size(); i++) {
        EXPECT_DOUBLE_EQ(run_a.frames[i].mtpLatency,
                         run_b.frames[i].mtpLatency);
        EXPECT_DOUBLE_EQ(run_a.frames[i].e1, run_b.frames[i].e1);
    }
}

TEST(TraceIo, CommentsAndBlankLinesIgnored)
{
    const auto original = sampleWorkload(3);
    std::stringstream buffer;
    writeTrace(buffer, original);
    std::string text = buffer.str();
    text += "\n# trailing comment\n\n";
    std::stringstream annotated(text);
    EXPECT_EQ(readTrace(annotated).size(), 3u);
}

TEST(TraceIoDeath, MissingHeaderIsFatal)
{
    std::stringstream buffer("frame 0 0 0 0 0 0 0 0 0 0 0\n");
    EXPECT_EXIT(readTrace(buffer), testing::ExitedWithCode(1),
                "not a qvr trace");
}

TEST(TraceIoDeath, BatchBeforeFrameIsFatal)
{
    std::stringstream buffer("qvr-trace v1\nbatch 0 10 0.5 0.1 0\n");
    EXPECT_EXIT(readTrace(buffer), testing::ExitedWithCode(1),
                "batch before any frame");
}

TEST(TraceIoDeath, MalformedRecordIsFatal)
{
    std::stringstream buffer("qvr-trace v1\nframe 0 nonsense\n");
    EXPECT_EXIT(readTrace(buffer), testing::ExitedWithCode(1),
                "malformed frame record");
}

TEST(TraceIoDeath, UnknownKindIsFatal)
{
    std::stringstream buffer("qvr-trace v1\nwidget 1 2 3\n");
    EXPECT_EXIT(readTrace(buffer), testing::ExitedWithCode(1),
                "unknown record kind");
}

TEST(TraceIo, FileRoundTrip)
{
    const auto original = sampleWorkload(5);
    const std::string path = "/tmp/qvr_trace_io_test.trace";
    saveTrace(path, original);
    const auto loaded = loadTrace(path);
    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded[4].totalTriangles(),
              original[4].totalTriangles());
}

}  // namespace
}  // namespace qvr::scene
