/**
 * @file
 * Benchmark catalog: Table 3 / Table 1 contents match the paper's
 * published statistics.
 */

#include <gtest/gtest.h>

#include "scene/benchmarks.hpp"

namespace qvr::scene
{
namespace
{

TEST(Benchmarks, Table3HasSevenEntriesInPaperOrder)
{
    const auto &v = table3Benchmarks();
    ASSERT_EQ(v.size(), 7u);
    EXPECT_EQ(v[0].name, "Doom3-H");
    EXPECT_EQ(v[1].name, "Doom3-L");
    EXPECT_EQ(v[2].name, "HL2-H");
    EXPECT_EQ(v[3].name, "HL2-L");
    EXPECT_EQ(v[4].name, "GRID");
    EXPECT_EQ(v[5].name, "UT3");
    EXPECT_EQ(v[6].name, "Wolf");
}

TEST(Benchmarks, Table3BatchCountsMatchPaper)
{
    EXPECT_EQ(findBenchmark("Doom3-H").numBatches, 382u);
    EXPECT_EQ(findBenchmark("HL2-H").numBatches, 656u);
    EXPECT_EQ(findBenchmark("GRID").numBatches, 3680u);
    EXPECT_EQ(findBenchmark("UT3").numBatches, 1752u);
    EXPECT_EQ(findBenchmark("Wolf").numBatches, 3394u);
}

TEST(Benchmarks, Table3ResolutionsMatchPaper)
{
    const auto &d3h = findBenchmark("Doom3-H");
    EXPECT_EQ(d3h.width, 1920);
    EXPECT_EQ(d3h.height, 2160);
    const auto &d3l = findBenchmark("Doom3-L");
    EXPECT_EQ(d3l.width, 1280);
    EXPECT_EQ(d3l.height, 1600);
    const auto &h2l = findBenchmark("HL2-L");
    EXPECT_EQ(h2l.width, 1280);
    EXPECT_EQ(h2l.height, 1600);
}

TEST(Benchmarks, Table3ApisMatchPaper)
{
    EXPECT_EQ(findBenchmark("Doom3-H").api, GraphicsApi::OpenGL);
    EXPECT_EQ(findBenchmark("HL2-H").api, GraphicsApi::Direct3D);
    EXPECT_EQ(findBenchmark("GRID").api, GraphicsApi::Direct3D);
}

TEST(Benchmarks, ComplexityOrderingImpliedByTable4)
{
    // Table 4 eccentricities imply GRID is the heaviest scene and
    // Doom3 the lightest; our synthetic triangle budgets must
    // preserve that ordering or every downstream shape breaks.
    const auto tri = [](const char *n) {
        return findBenchmark(n).meanTriangles;
    };
    EXPECT_GT(tri("GRID"), tri("Wolf"));
    EXPECT_GT(tri("Wolf"), tri("UT3"));
    EXPECT_GT(tri("UT3"), tri("HL2-H"));
    EXPECT_GT(tri("HL2-H"), tri("Doom3-H"));
}

TEST(Benchmarks, Table1AppsCarryPaperReferences)
{
    const auto &apps = table1Apps();
    ASSERT_EQ(apps.size(), 5u);

    const auto &fov3d = findBenchmark("Foveated3D");
    ASSERT_TRUE(fov3d.table1.has_value());
    EXPECT_EQ(fov3d.meanTriangles, 231'000u);
    EXPECT_DOUBLE_EQ(fov3d.table1->fMin, 0.16);
    EXPECT_DOUBLE_EQ(fov3d.table1->fMax, 0.52);
    EXPECT_DOUBLE_EQ(fov3d.table1->tLocalAvgMs, 43.0);
    EXPECT_DOUBLE_EQ(fov3d.table1->tRemoteMs, 38.0);
    EXPECT_EQ(fov3d.table1->backgroundBytes, fromKiB(646));

    const auto &miguel = findBenchmark("San Miguel");
    EXPECT_EQ(miguel.meanTriangles, 4'200'000u);
    EXPECT_DOUBLE_EQ(miguel.table1->tLocalMinMs, 5.4);

    const auto &sponza = findBenchmark("Sponza");
    EXPECT_DOUBLE_EQ(sponza.table1->fMin, 0.001);
    EXPECT_DOUBLE_EQ(sponza.table1->tLocalMinMs, 0.5);
}

TEST(Benchmarks, InteractiveModelSpansPublishedFRange)
{
    // The interactive-fraction model parameters must be able to
    // reach both ends of the published f range.
    for (const auto &app : table1Apps()) {
        ASSERT_TRUE(app.table1.has_value());
        const double lo = app.interactiveBase * 0.5;
        const double hi =
            app.interactiveBase * 1.5 * app.interactiveBoost;
        EXPECT_LE(lo, app.table1->fMax) << app.name;
        EXPECT_GE(hi, app.table1->fMin) << app.name;
    }
}

TEST(BenchmarksDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(findBenchmark("NoSuchGame"),
                testing::ExitedWithCode(1), "unknown benchmark");
}

}  // namespace
}  // namespace qvr::scene
