/**
 * @file
 * Concurrent-use smoke test for the logging facility: many threads
 * emitting records (and one flipping the verbosity floor) must not
 * race or interleave partial lines.  Runs under `ctest -L tsan` so
 * ThreadSanitizer vets the sink mutex and the atomic level.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"

namespace
{

using namespace qvr;

std::size_t
countOccurrences(const std::string &haystack, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        count++;
    return count;
}

TEST(LogConcurrency, ParallelWarnsEmitWholeLines)
{
    constexpr int kThreads = 8;
    constexpr int kPerThread = 50;

    testing::internal::CaptureStderr();
    {
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; t++) {
            threads.emplace_back([t] {
                for (int i = 0; i < kPerThread; i++)
                    QVR_WARN("log-smoke t", t, " i", i, " end");
            });
        }
        for (auto &th : threads)
            th.join();
    }
    const std::string err = testing::internal::GetCapturedStderr();

    // The sink mutex guarantees record atomicity: every record
    // appears as one complete "[warn] ... end (file:line)" line.
    EXPECT_EQ(countOccurrences(err, "log-smoke"),
              static_cast<std::size_t>(kThreads * kPerThread));
    EXPECT_EQ(countOccurrences(err, "[warn] log-smoke"),
              static_cast<std::size_t>(kThreads * kPerThread));
    EXPECT_EQ(countOccurrences(err, " end ("),
              static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(LogConcurrency, LevelTogglesRaceFree)
{
    const LogLevel before = logLevel();
    testing::internal::CaptureStderr();
    {
        std::vector<std::thread> threads;
        threads.emplace_back([] {
            for (int i = 0; i < 500; i++)
                setLogLevel(i % 2 == 0 ? LogLevel::Debug
                                       : LogLevel::Error);
        });
        for (int t = 0; t < 4; t++) {
            threads.emplace_back([] {
                for (int i = 0; i < 200; i++)
                    QVR_WARN("toggle-smoke ", i);
            });
        }
        for (auto &th : threads)
            th.join();
    }
    const std::string err = testing::internal::GetCapturedStderr();
    setLogLevel(before);

    // Under a racing level there is no fixed record count, but every
    // record that does come out must still be whole.
    EXPECT_EQ(countOccurrences(err, "[warn] toggle-smoke"),
              countOccurrences(err, "toggle-smoke"));
}

}  // namespace
