/**
 * @file
 * Vec/Rect helpers and angle conversion.
 */

#include <gtest/gtest.h>

#include "common/geometry.hpp"

namespace qvr
{
namespace
{

TEST(Geometry, DegRadRoundTrip)
{
    EXPECT_NEAR(degToRad(180.0), kPi, 1e-12);
    EXPECT_NEAR(radToDeg(kPi / 2.0), 90.0, 1e-12);
    EXPECT_NEAR(radToDeg(degToRad(37.5)), 37.5, 1e-12);
}

TEST(Geometry, Vec2Arithmetic)
{
    const Vec2 a{3.0, 4.0};
    const Vec2 b{1.0, -2.0};
    EXPECT_EQ((a + b), (Vec2{4.0, 2.0}));
    EXPECT_EQ((a - b), (Vec2{2.0, 6.0}));
    EXPECT_EQ((a * 2.0), (Vec2{6.0, 8.0}));
    EXPECT_DOUBLE_EQ(a.norm(), 5.0);
}

TEST(Geometry, Vec3Arithmetic)
{
    const Vec3 a{1.0, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(a.norm(), 3.0);
    Vec3 b = a;
    b += Vec3{1.0, 1.0, 1.0};
    EXPECT_EQ(b, (Vec3{2.0, 3.0, 3.0}));
}

TEST(Geometry, RectBasics)
{
    const RectI r{0, 0, 10, 5};
    EXPECT_EQ(r.width(), 10);
    EXPECT_EQ(r.height(), 5);
    EXPECT_EQ(r.area(), 50);
    EXPECT_FALSE(r.empty());
    EXPECT_TRUE(r.contains(0, 0));
    EXPECT_TRUE(r.contains(9, 4));
    EXPECT_FALSE(r.contains(10, 4));  // half-open
    EXPECT_FALSE(r.contains(-1, 2));
}

TEST(Geometry, RectIntersection)
{
    const RectI a{0, 0, 10, 10};
    const RectI b{5, 5, 15, 15};
    EXPECT_TRUE(a.intersects(b));
    const RectI c = a.intersect(b);
    EXPECT_EQ(c, (RectI{5, 5, 10, 10}));

    const RectI d{10, 0, 20, 10};  // touching edge: no overlap
    EXPECT_FALSE(a.intersects(d));
    EXPECT_TRUE(a.intersect(d).empty());
}

TEST(Geometry, Clamp)
{
    EXPECT_EQ(clamp(5, 0, 10), 5);
    EXPECT_EQ(clamp(-5, 0, 10), 0);
    EXPECT_EQ(clamp(15, 0, 10), 10);
    EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

}  // namespace
}  // namespace qvr
