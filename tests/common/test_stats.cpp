/**
 * @file
 * Statistics accumulators: Welford correctness, merge, EWMA,
 * histogram binning, percentiles.
 */

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace qvr
{
namespace
{

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesCombined)
{
    RunningStat a, b, all;
    for (int i = 0; i < 50; i++) {
        const double x = 0.37 * i - 3.0;
        (i < 20 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Ewma, FirstSamplePrimes)
{
    Ewma e(0.5);
    EXPECT_FALSE(e.primed());
    e.add(10.0);
    EXPECT_TRUE(e.primed());
    EXPECT_DOUBLE_EQ(e.value(), 10.0);
    e.add(0.0);
    EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(Ewma, ConvergesToConstantInput)
{
    Ewma e(0.3);
    e.add(0.0);
    for (int i = 0; i < 100; i++)
        e.add(7.0);
    EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

TEST(Histogram, BinningAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);   // underflow
    h.add(0.0);    // bin 0
    h.add(0.999);  // bin 0
    h.add(5.0);    // bin 5
    h.add(9.999);  // bin 9
    h.add(10.0);   // overflow (half-open)
    h.add(42.0);   // overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.total(), 7u);
    EXPECT_DOUBLE_EQ(h.binLow(5), 5.0);
}

TEST(SampleSeries, Percentiles)
{
    SampleSeries s;
    for (int i = 100; i >= 1; i--)  // insertion order irrelevant
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 100.0);
    EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSeries, EmptySafe)
{
    SampleSeries s;
    EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

}  // namespace
}  // namespace qvr
