/**
 * @file
 * binary16 conversion: exact values, rounding, subnormals, overflow,
 * and a property sweep (round-trip error bounded by half ULP).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/fp16.hpp"
#include "common/rng.hpp"

namespace qvr
{
namespace
{

TEST(Fp16, ExactSmallValues)
{
    // Values exactly representable in binary16 round-trip exactly.
    const float exact[] = {0.0f,  1.0f,   -1.0f,  0.5f,  2.0f,
                           1.5f,  0.25f,  -0.75f, 1024.0f,
                           0.125f, 65504.0f /* max half */};
    for (float v : exact)
        EXPECT_EQ(halfBitsToFloat(floatToHalfBits(v)), v) << v;
}

TEST(Fp16, SignedZero)
{
    EXPECT_EQ(floatToHalfBits(0.0f), 0x0000u);
    EXPECT_EQ(floatToHalfBits(-0.0f), 0x8000u);
}

TEST(Fp16, OverflowToInfinity)
{
    EXPECT_EQ(floatToHalfBits(1e6f), 0x7c00u);
    EXPECT_EQ(floatToHalfBits(-1e6f), 0xfc00u);
    EXPECT_TRUE(std::isinf(halfBitsToFloat(0x7c00u)));
}

TEST(Fp16, NanPreserved)
{
    const std::uint16_t bits =
        floatToHalfBits(std::numeric_limits<float>::quiet_NaN());
    EXPECT_TRUE(std::isnan(halfBitsToFloat(bits)));
}

TEST(Fp16, SubnormalRange)
{
    // Smallest positive subnormal half = 2^-24.
    const float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(halfBitsToFloat(floatToHalfBits(tiny)), tiny);
    // Below half of it underflows to zero.
    EXPECT_EQ(halfBitsToFloat(floatToHalfBits(tiny / 4.0f)), 0.0f);
}

TEST(Fp16, RoundTripRelativeErrorBounded)
{
    // Property: for normal-range inputs, quantisation error is at
    // most 2^-11 relative (half ULP of a 10-bit mantissa).
    Rng rng(3);
    for (int i = 0; i < 20000; i++) {
        const double mag = std::pow(10.0, rng.uniform(-4.0, 4.0));
        const float v = static_cast<float>(
            (rng.chance(0.5) ? 1.0 : -1.0) * mag);
        const float back = halfBitsToFloat(floatToHalfBits(v));
        if (std::abs(v) >= std::ldexp(1.0f, -14)) {  // normal halves
            EXPECT_LE(std::abs(back - v), std::abs(v) * 0x1.0p-11f)
                << "v=" << v;
        }
    }
}

TEST(Fp16, RoundToNearestEven)
{
    // 1 + 2^-11 sits exactly halfway between 1.0 and the next half;
    // nearest-even rounds down to 1.0.
    const float halfway = 1.0f + 0x1.0p-11f;
    EXPECT_EQ(halfBitsToFloat(floatToHalfBits(halfway)), 1.0f);
    // 1 + 3 * 2^-11 is halfway between odd and even mantissa; rounds
    // up to the even one (1 + 2^-9... i.e. mantissa 2).
    const float halfway_up = 1.0f + 3.0f * 0x1.0p-11f;
    EXPECT_EQ(halfBitsToFloat(floatToHalfBits(halfway_up)),
              1.0f + 0x1.0p-9f);
}

TEST(Fp16, HalfClassQuantisesOnStore)
{
    Half h(1.0f / 3.0f);
    const float q = h;
    EXPECT_NE(q, 1.0f / 3.0f);  // not representable
    EXPECT_NEAR(q, 1.0f / 3.0f, 1e-3f);
    // Storing the quantised value is idempotent.
    Half h2(q);
    EXPECT_EQ(h2.bits(), h.bits());
}

TEST(Fp16, FromBitsRoundTrip)
{
    Half h = Half::fromBits(0x3c00);  // 1.0
    EXPECT_EQ(static_cast<float>(h), 1.0f);
}

}  // namespace
}  // namespace qvr
