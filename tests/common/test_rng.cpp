/**
 * @file
 * Rng: determinism, distribution sanity, stream independence.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace qvr
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123, 7);
    Rng b(123, 7);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next32(), b.next32());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(123, 7);
    Rng b(124, 7);
    int same = 0;
    for (int i = 0; i < 100; i++) {
        if (a.next32() == b.next32())
            same++;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, DifferentStreamsDiverge)
{
    Rng a(123, 1);
    Rng b(123, 2);
    int same = 0;
    for (int i = 0; i < 100; i++) {
        if (a.next32() == b.next32())
            same++;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(42);
    RunningStat stat;
    for (int i = 0; i < 20000; i++) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        stat.add(u);
    }
    EXPECT_NEAR(stat.mean(), 0.5, 0.01);
    EXPECT_NEAR(stat.stddev(), 1.0 / std::sqrt(12.0), 0.01);
}

TEST(Rng, UniformRange)
{
    Rng rng(42);
    for (int i = 0; i < 1000; i++) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(42);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; i++) {
        const auto v = rng.uniformInt(-2, 3);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 6u);  // all 6 values hit
}

TEST(Rng, NormalMoments)
{
    Rng rng(7);
    RunningStat stat;
    for (int i = 0; i < 50000; i++)
        stat.add(rng.normal(2.0, 3.0));
    EXPECT_NEAR(stat.mean(), 2.0, 0.05);
    EXPECT_NEAR(stat.stddev(), 3.0, 0.05);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(7);
    RunningStat stat;
    for (int i = 0; i < 50000; i++)
        stat.add(rng.exponential(4.0));
    EXPECT_NEAR(stat.mean(), 0.25, 0.01);
    EXPECT_GE(stat.min(), 0.0);
}

TEST(Rng, ChanceProbability)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 20000; i++) {
        if (rng.chance(0.3))
            hits++;
    }
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(5);
    Rng child1 = parent.split(1);
    Rng child2 = parent.split(2);
    int same = 0;
    for (int i = 0; i < 100; i++) {
        if (child1.next32() == child2.next32())
            same++;
    }
    EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace qvr
