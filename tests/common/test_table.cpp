/**
 * @file
 * TextTable rendering: alignment, formatting helpers, CSV quoting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hpp"

namespace qvr
{
namespace
{

TEST(TextTable, FormatHelpers)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(3.0, 0), "3");
    EXPECT_EQ(TextTable::speedup(3.4), "3.40x");
    EXPECT_EQ(TextTable::percent(0.851), "85.1%");
}

TEST(TextTable, AlignedOutput)
{
    TextTable t("Demo");
    t.setHeader({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("== Demo =="), std::string::npos);
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("| longer-name"), std::string::npos);
    // Every data line has the same width.
    std::istringstream is(out);
    std::string line;
    std::size_t width = 0;
    std::getline(is, line);  // title
    while (std::getline(is, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width) << line;
    }
}

TEST(TextTable, ShortRowsPadded)
{
    TextTable t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"1"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("| 1 |"), std::string::npos);
}

TEST(TextTable, CsvQuoting)
{
    TextTable t;
    t.setHeader({"name", "note"});
    t.addRow({"a,b", "say \"hi\""});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TextTable, RowCount)
{
    TextTable t;
    EXPECT_EQ(t.numRows(), 0u);
    t.addRow({"x"});
    t.addRow({"y"});
    EXPECT_EQ(t.numRows(), 2u);
}

}  // namespace
}  // namespace qvr
