/**
 * @file
 * WorkloadStream must be a byte-identical, O(1)-memory replay of
 * generateExperimentWorkload() — the property the event-driven
 * session engine's 10k-user sweeps stand on.
 */

#include <gtest/gtest.h>

#include "core/workload_stream.hpp"
#include "scene/workload.hpp"

namespace qvr::core
{
namespace
{

void
expectFrameEqual(const scene::FrameWorkload &a,
                 const scene::FrameWorkload &b, std::size_t i,
                 const char *what)
{
    ASSERT_EQ(a.index, b.index) << what << " frame " << i;
    ASSERT_EQ(a.batches.size(), b.batches.size())
        << what << " frame " << i;
    for (std::size_t k = 0; k < a.batches.size(); k++) {
        const auto &x = a.batches[k];
        const auto &y = b.batches[k];
        ASSERT_EQ(x.id, y.id)
            << what << " frame " << i << " batch " << k;
        ASSERT_EQ(x.triangles, y.triangles)
            << what << " frame " << i << " batch " << k;
        ASSERT_EQ(x.depth, y.depth)
            << what << " frame " << i << " batch " << k;
        ASSERT_EQ(x.screenCoverage, y.screenCoverage)
            << what << " frame " << i << " batch " << k;
        ASSERT_EQ(x.interactive, y.interactive)
            << what << " frame " << i << " batch " << k;
    }
    // EXPECT_EQ on doubles is exact equality — the contract here is
    // bitwise replay, not approximation.
    ASSERT_EQ(a.motionSeen.timestamp, b.motionSeen.timestamp)
        << what << " frame " << i;
    ASSERT_EQ(a.motionSeen.gaze.x, b.motionSeen.gaze.x)
        << what << " frame " << i;
    ASSERT_EQ(a.motionSeen.gaze.y, b.motionSeen.gaze.y)
        << what << " frame " << i;
    ASSERT_EQ(a.motionSeen.head.position.x,
              b.motionSeen.head.position.x)
        << what << " frame " << i;
    ASSERT_EQ(a.motionSeen.head.position.y,
              b.motionSeen.head.position.y)
        << what << " frame " << i;
    ASSERT_EQ(a.motionSeen.head.position.z,
              b.motionSeen.head.position.z)
        << what << " frame " << i;
    ASSERT_EQ(a.motionSeen.head.orientation.x,
              b.motionSeen.head.orientation.x)
        << what << " frame " << i;
    ASSERT_EQ(a.motionSeen.head.orientation.y,
              b.motionSeen.head.orientation.y)
        << what << " frame " << i;
    ASSERT_EQ(a.motionSeen.head.orientation.z,
              b.motionSeen.head.orientation.z)
        << what << " frame " << i;
    ASSERT_EQ(a.motionSeen.interacting, b.motionSeen.interacting)
        << what << " frame " << i;
    ASSERT_EQ(a.motionDelta.dPosition.x, b.motionDelta.dPosition.x)
        << what << " frame " << i;
    ASSERT_EQ(a.motionDelta.dPosition.y, b.motionDelta.dPosition.y)
        << what << " frame " << i;
    ASSERT_EQ(a.motionDelta.dPosition.z, b.motionDelta.dPosition.z)
        << what << " frame " << i;
    ASSERT_EQ(a.motionDelta.dOrientation.x,
              b.motionDelta.dOrientation.x)
        << what << " frame " << i;
    ASSERT_EQ(a.motionDelta.dOrientation.y,
              b.motionDelta.dOrientation.y)
        << what << " frame " << i;
    ASSERT_EQ(a.motionDelta.dOrientation.z,
              b.motionDelta.dOrientation.z)
        << what << " frame " << i;
    ASSERT_EQ(a.motionDelta.dGaze.x, b.motionDelta.dGaze.x)
        << what << " frame " << i;
    ASSERT_EQ(a.motionDelta.dGaze.y, b.motionDelta.dGaze.y)
        << what << " frame " << i;
}

TEST(WorkloadStream, ByteIdenticalToEagerGenerator)
{
    for (const char *bench : {"HL2-H", "Doom3-L", "GRID"}) {
        for (std::uint64_t seed : {1ull, 7ull, 1234ull}) {
            ExperimentSpec spec;
            spec.benchmark = bench;
            spec.numFrames = 90;
            spec.seed = seed;

            const auto eager = generateExperimentWorkload(spec);
            WorkloadStream stream(spec);
            ASSERT_EQ(stream.numFrames(), eager.size());
            for (std::size_t i = 0; i < eager.size(); i++) {
                ASSERT_FALSE(stream.exhausted());
                expectFrameEqual(stream.next(), eager[i], i, bench);
            }
            EXPECT_TRUE(stream.exhausted());
            EXPECT_EQ(stream.produced(), eager.size());
        }
    }
}

// The session engines seed per-user specs as cfg.seed + i * 101;
// make sure the equivalence holds across that pattern too (different
// user seeds step the interaction process very differently).
TEST(WorkloadStream, MatchesPerUserSessionSeeds)
{
    for (std::size_t user = 0; user < 5; user++) {
        ExperimentSpec spec;
        spec.benchmark = "HL2-H";
        spec.numFrames = 45;
        spec.seed = 42 + user * 101;

        const auto eager = generateExperimentWorkload(spec);
        WorkloadStream stream(spec);
        for (std::size_t i = 0; i < eager.size(); i++)
            expectFrameEqual(stream.next(), eager[i], i, "user");
    }
}

TEST(WorkloadStreamDeath, OverrunPanics)
{
    ExperimentSpec spec;
    spec.numFrames = 3;
    WorkloadStream stream(spec);
    stream.next();
    stream.next();
    stream.next();
    EXPECT_TRUE(stream.exhausted());
    EXPECT_DEATH(stream.next(), "exhausted");
}

}  // namespace
}  // namespace qvr::core
