/**
 * @file
 * Image: indexing, clamp-to-edge, bilinear sampling, diff metrics.
 */

#include <gtest/gtest.h>

#include "core/framebuffer.hpp"

namespace qvr::core
{
namespace
{

TEST(Image, ConstructAndIndex)
{
    Image img(4, 3, Rgb{0.5f, 0.25f, 0.125f});
    EXPECT_EQ(img.width(), 4);
    EXPECT_EQ(img.height(), 3);
    EXPECT_FLOAT_EQ(img.at(3, 2).r, 0.5f);
    img.at(1, 1) = Rgb{1.0f, 0.0f, 0.0f};
    EXPECT_FLOAT_EQ(img.at(1, 1).r, 1.0f);
    EXPECT_FLOAT_EQ(img.at(0, 1).r, 0.5f);
}

TEST(Image, TexelClampsToEdge)
{
    Image img(2, 2);
    img.at(0, 0) = Rgb{1.0f, 0.0f, 0.0f};
    img.at(1, 1) = Rgb{0.0f, 1.0f, 0.0f};
    EXPECT_FLOAT_EQ(img.texel(-5, -5).r, 1.0f);
    EXPECT_FLOAT_EQ(img.texel(9, 9).g, 1.0f);
}

TEST(Image, BilinearAtPixelCentreIsExact)
{
    Image img(3, 3);
    img.at(1, 1) = Rgb{0.8f, 0.4f, 0.2f};
    const Rgb c = img.sampleBilinear(1.5, 1.5);
    EXPECT_FLOAT_EQ(c.r, 0.8f);
    EXPECT_FLOAT_EQ(c.g, 0.4f);
}

TEST(Image, BilinearInterpolatesMidpoints)
{
    Image img(2, 1);
    img.at(0, 0) = Rgb{0.0f, 0.0f, 0.0f};
    img.at(1, 0) = Rgb{1.0f, 1.0f, 1.0f};
    const Rgb mid = img.sampleBilinear(1.0, 0.5);
    EXPECT_FLOAT_EQ(mid.r, 0.5f);
}

TEST(Image, BilinearReproducesLinearRamp)
{
    // Property: bilinear sampling of a linear function is exact.
    Image img(16, 16);
    for (int y = 0; y < 16; y++) {
        for (int x = 0; x < 16; x++) {
            img.at(x, y) = Rgb{static_cast<float>(x) * 0.05f,
                               static_cast<float>(y) * 0.03f, 0.0f};
        }
    }
    for (double s = 2.0; s < 13.0; s += 0.37) {
        const Rgb c = img.sampleBilinear(s + 0.5, 2.0 * s / 3.0 + 0.5);
        EXPECT_NEAR(c.r, s * 0.05, 1e-5);
        EXPECT_NEAR(c.g, 2.0 * s / 3.0 * 0.03, 1e-5);
    }
}

TEST(Image, DiffMetrics)
{
    Image a(2, 2);
    Image b(2, 2);
    b.at(1, 1) = Rgb{0.3f, 0.0f, 0.0f};
    EXPECT_NEAR(a.meanAbsDiff(b), 0.3 / 12.0, 1e-6);
    EXPECT_NEAR(a.maxAbsDiff(b), 0.3, 1e-6);
    EXPECT_DOUBLE_EQ(a.meanAbsDiff(a), 0.0);
}

TEST(ImageDeath, OutOfRangePanics)
{
    Image img(2, 2);
    EXPECT_DEATH(img.at(2, 0), "out of");
}

}  // namespace
}  // namespace qvr::core
