/**
 * @file
 * Tiled pixel-pipeline engine: bit-exact equality against the scalar
 * UCA reference loops at several thread counts, on awkward canvases
 * and fovea placements, plus the conservative-classifier property
 * that a pure-layer tile really has one-hot weights everywhere.
 *
 * These tests carry the `tsan` CTest label: under
 * -DQVR_SANITIZE=thread they vet the tile-parallel dispatch for data
 * races (disjoint tile writes, shared immutable inputs).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/pixel_engine.hpp"

namespace qvr::core
{
namespace
{

/** Procedural content with energy at several scales. */
Image
pattern(std::int32_t w, std::int32_t h, double phase)
{
    Image img(w, h);
    for (std::int32_t y = 0; y < h; y++) {
        Rgb *row = img.rowSpan(y);
        for (std::int32_t x = 0; x < w; x++) {
            const double fx = x + 0.5;
            const double fy = y + 0.5;
            row[x] = Rgb{
                static_cast<float>(
                    0.5 + 0.5 * std::sin(fx * 0.13 + phase)),
                static_cast<float>(
                    0.5 + 0.5 * std::cos(fy * 0.08 - phase)),
                static_cast<float>(
                    0.5 + 0.3 * std::sin((fx + fy) * 0.045))};
        }
    }
    return img;
}

Image
downsample(const Image &src, double s)
{
    const auto w =
        std::max(1, static_cast<std::int32_t>(src.width() / s));
    const auto h =
        std::max(1, static_cast<std::int32_t>(src.height() / s));
    Image out(w, h);
    for (std::int32_t y = 0; y < h; y++) {
        for (std::int32_t x = 0; x < w; x++) {
            out.at(x, y) = src.sampleBilinear((x + 0.5) * s,
                                              (y + 0.5) * s);
        }
    }
    return out;
}

/** Owns the three layers so UcaFrameInputs' pointers stay valid. */
struct Frame
{
    Image native;
    Image middle;
    Image outer;
    UcaFrameInputs in;
};

Frame
makeFrame(std::int32_t w, std::int32_t h, const PixelPartition &p,
          Vec2 shift, double s_mid = 2.0, double s_out = 4.0)
{
    Frame f;
    f.native = pattern(w, h, 0.3);
    f.middle = downsample(f.native, s_mid);
    f.outer = downsample(f.native, s_out);
    f.in.fovea = &f.native;
    f.in.middle = &f.middle;
    f.in.outer = &f.outer;
    f.in.sMiddle = s_mid;
    f.in.sOuter = s_out;
    f.in.partition = p;
    f.in.atwShift = shift;
    return f;
}

/** Assert tiled == scalar, bit-exact, at 1/2/8 workers. */
void
expectBitExact(const Frame &f)
{
    const Image ref_unified = ucaUnified(f.in);
    const Image ref_sequential = sequentialCompositeAtw(f.in);
    for (std::size_t threads : {1u, 2u, 8u}) {
        PixelEngine engine(threads);
        const Image uni = engine.ucaUnified(f.in);
        EXPECT_EQ(uni.maxAbsDiff(ref_unified), 0.0)
            << "unified, threads=" << threads;
        const Image seq = engine.sequentialCompositeAtw(f.in);
        EXPECT_EQ(seq.maxAbsDiff(ref_sequential), 0.0)
            << "sequential, threads=" << threads;
    }
}

TEST(TiledUca, BitExactOnOddCanvas)
{
    PixelPartition p;
    p.centerX = 255.5;
    p.centerY = 254.5;
    p.foveaRadius = 80.0;
    p.middleRadius = 170.0;
    p.blendBand = 16.0;
    const Frame f = makeFrame(511, 509, p, Vec2{1.7, -2.3});

    expectBitExact(f);

    // The partition leaves room for every tile class: the census
    // must show the fast paths actually ran (not all-Blend).
    PixelEngine engine(2);
    (void)engine.ucaUnified(f.in);
    const PixelEngineStats &st = engine.lastStats();
    EXPECT_EQ(st.tiles, 16u * 16u);  // ceil(511/32) x ceil(509/32)
    EXPECT_GT(st.foveaTiles, 0u);
    EXPECT_GT(st.middleTiles, 0u);
    EXPECT_GT(st.outerTiles, 0u);
    EXPECT_GT(st.blendTiles, 0u);
    EXPECT_EQ(st.foveaTiles + st.middleTiles + st.outerTiles +
                  st.blendTiles,
              st.tiles);
}

TEST(TiledUca, BitExactWithFoveaCentreNearEdge)
{
    PixelPartition p;
    p.centerX = 3.5;    // fovea disc mostly off-canvas (left)
    p.centerY = 254.0;
    p.foveaRadius = 60.0;
    p.middleRadius = 140.0;
    p.blendBand = 12.0;
    expectBitExact(makeFrame(511, 509, p, Vec2{0.6, 1.9}));
}

TEST(TiledUca, BitExactWithFoveaCentreBeyondEdge)
{
    PixelPartition p;
    p.centerX = -90.0;  // centre entirely outside the canvas
    p.centerY = -40.0;
    p.foveaRadius = 70.0;
    p.middleRadius = 300.0;
    p.blendBand = 20.0;
    expectBitExact(makeFrame(511, 509, p, Vec2{-2.1, 0.4}));

    PixelPartition q;
    q.centerX = 640.0;  // beyond the far corner
    q.centerY = 700.0;
    q.foveaRadius = 120.0;
    q.middleRadius = 420.0;
    q.blendBand = 16.0;
    expectBitExact(makeFrame(511, 509, q, Vec2{3.3, -1.1}));
}

TEST(TiledUca, BitExactWithBandStraddlingTileBoundaries)
{
    // Rings at exact multiples of the 32-pixel tile size, centre on
    // a tile corner: the blend band cuts straight through tile
    // boundaries, the classifier's worst case.
    PixelPartition p;
    p.centerX = 256.0;
    p.centerY = 256.0;
    p.foveaRadius = 96.0;
    p.middleRadius = 160.0;
    p.blendBand = 32.0;
    expectBitExact(makeFrame(511, 509, p, Vec2{0.0, 0.0}));
    expectBitExact(makeFrame(511, 509, p, Vec2{2.5, -3.5}));
}

TEST(TiledUca, BitExactOnTinyAndNonSquareCanvases)
{
    PixelPartition p;
    p.centerX = 10.0;
    p.centerY = 12.0;
    p.foveaRadius = 8.0;
    p.middleRadius = 20.0;
    p.blendBand = 4.0;
    expectBitExact(makeFrame(31, 17, p, Vec2{0.8, -0.2}));
    expectBitExact(makeFrame(33, 97, p, Vec2{0.0, 0.0}));
}

TEST(TiledUca, ResampleShiftMatchesScalarLoop)
{
    const Image src = pattern(211, 173, 1.1);
    const Vec2 shift{1.2, -0.8};
    Image ref(src.width(), src.height());
    for (std::int32_t y = 0; y < src.height(); y++) {
        for (std::int32_t x = 0; x < src.width(); x++) {
            ref.at(x, y) = src.sampleBilinear(x + 0.5 - shift.x,
                                              y + 0.5 - shift.y);
        }
    }
    for (std::size_t threads : {1u, 2u, 8u}) {
        PixelEngine engine(threads);
        const Image out = engine.resampleShift(src, shift);
        EXPECT_EQ(out.maxAbsDiff(ref), 0.0)
            << "threads=" << threads;
    }
}

TEST(TiledUcaProperty, PureTileWeightsAreOneHotEverywhere)
{
    // The classifier's soundness condition: whenever it declares a
    // tile pure-X, layerWeights must be EXACTLY one-hot for X at the
    // tile's four corners and centre (the corners realise the
    // maximal radius, distance being convex; full interior coverage
    // is what the bit-exactness tests above establish).
    Rng rng(20260805);
    std::uint32_t fast = 0;
    for (int iter = 0; iter < 4000; iter++) {
        PixelPartition p;
        p.centerX = rng.uniform(-600.0, 1100.0);
        p.centerY = rng.uniform(-600.0, 1100.0);
        p.foveaRadius = rng.uniform(0.0, 300.0);
        p.middleRadius = p.foveaRadius + rng.uniform(0.0, 300.0);
        p.blendBand = rng.uniform(0.0, 64.0);

        const double x0 =
            static_cast<double>(rng.uniformInt(-8, 30)) *
            kPixelTileSize + 0.5;
        const double y0 =
            static_cast<double>(rng.uniformInt(-8, 30)) *
            kPixelTileSize + 0.5;
        const double x1 = x0 + (kPixelTileSize - 1);
        const double y1 = y0 + (kPixelTileSize - 1);

        const TileCoverage cls = classifyCoverage(p, x0, y0, x1, y1);
        if (cls == TileCoverage::Blend)
            continue;
        fast++;

        const double pts[5][2] = {{x0, y0},
                                  {x1, y0},
                                  {x0, y1},
                                  {x1, y1},
                                  {(x0 + x1) / 2.0, (y0 + y1) / 2.0}};
        for (const auto &pt : pts) {
            const double r = std::hypot(pt[0] - p.centerX,
                                        pt[1] - p.centerY);
            const LayerWeights w = layerWeights(p, r);
            const double expect_fovea =
                cls == TileCoverage::Fovea ? 1.0 : 0.0;
            const double expect_middle =
                cls == TileCoverage::Middle ? 1.0 : 0.0;
            const double expect_outer =
                cls == TileCoverage::Outer ? 1.0 : 0.0;
            ASSERT_EQ(w.fovea, expect_fovea)
                << "iter " << iter << " r=" << r;
            ASSERT_EQ(w.middle, expect_middle)
                << "iter " << iter << " r=" << r;
            ASSERT_EQ(w.outer, expect_outer)
                << "iter " << iter << " r=" << r;
        }
    }
    // The sweep must actually exercise the fast classes.
    EXPECT_GT(fast, 100u);
}

TEST(TiledUcaProperty, ClassifierAgreesWithTimingClassifier)
{
    // classifyTile (timing model) and classifyCoverage (functional
    // engine) partition differently — Border vs Blend include the
    // half-open vs sample-centre distinction — but a functional
    // fast-path tile must never be one the timing model calls
    // Border-free in the OTHER layer group: a pure-fovea tile can't
    // be PeripheryInterior and vice versa.
    Rng rng(7);
    for (int iter = 0; iter < 2000; iter++) {
        PixelPartition p;
        p.centerX = rng.uniform(-200.0, 800.0);
        p.centerY = rng.uniform(-200.0, 800.0);
        p.foveaRadius = rng.uniform(1.0, 250.0);
        p.middleRadius = p.foveaRadius + rng.uniform(1.0, 250.0);
        p.blendBand = rng.uniform(1.0, 48.0);

        const auto tx =
            static_cast<std::int32_t>(rng.uniformInt(0, 20));
        const auto ty =
            static_cast<std::int32_t>(rng.uniformInt(0, 20));
        const std::int32_t px0 = tx * kPixelTileSize;
        const std::int32_t py0 = ty * kPixelTileSize;

        const TileCoverage cov = classifyCoverage(
            p, px0 + 0.5, py0 + 0.5,
            px0 + kPixelTileSize - 0.5, py0 + kPixelTileSize - 0.5);
        const TileClass cls =
            classifyTile(p, px0, py0, kPixelTileSize);

        if (cov == TileCoverage::Fovea) {
            ASSERT_NE(cls, TileClass::PeripheryInterior) << iter;
        }
        if (cov == TileCoverage::Middle ||
            cov == TileCoverage::Outer) {
            ASSERT_NE(cls, TileClass::FoveaInterior) << iter;
        }
    }
}

}  // namespace
}  // namespace qvr::core
