/**
 * @file
 * DegradationController: ladder transitions, the LocalOnly cliff and
 * its probe cadence, hysteretic recovery, the clamp signal, and
 * configuration validation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/degradation.hpp"

namespace qvr::core
{
namespace
{

DegradationConfig
enabled()
{
    DegradationConfig cfg;
    cfg.enabled = true;
    return cfg;
}

FrameHealth
good()
{
    return FrameHealth{};
}

FrameHealth
miss()
{
    FrameHealth h;
    h.remoteMiss = true;
    return h;
}

void
feed(DegradationController &c, const FrameHealth &h, std::uint32_t n)
{
    for (std::uint32_t i = 0; i < n; i++)
        c.observe(h);
}

TEST(Degradation, HealthyDecisionIsIdentity)
{
    DegradationController c(enabled());
    const DegradationDecision d = c.decide();
    EXPECT_EQ(d.state, DegradationState::Healthy);
    EXPECT_EQ(d.level, 0u);
    EXPECT_DOUBLE_EQ(d.qualityFactor, 1.0);
    EXPECT_DOUBLE_EQ(d.resolutionScale, 1.0);
    EXPECT_FALSE(d.dropOuterLayer);
    EXPECT_FALSE(d.localOnly);
    EXPECT_FALSE(d.probe);
    EXPECT_FALSE(d.clampLocalWork);
}

TEST(Degradation, ConsecutiveMissesStepTheLadder)
{
    const DegradationConfig cfg = enabled();
    DegradationController c(cfg);
    feed(c, miss(), cfg.missesToDegrade);
    EXPECT_EQ(c.state(), DegradationState::Degraded);
    EXPECT_EQ(c.level(), 1u);

    const DegradationDecision d = c.decide();
    EXPECT_DOUBLE_EQ(d.qualityFactor, cfg.qualityStep);
    EXPECT_DOUBLE_EQ(d.resolutionScale, cfg.resolutionStep);
    EXPECT_FALSE(d.dropOuterLayer);

    // Each further run of missesToDegrade misses steps once more.
    feed(c, miss(), cfg.missesToDegrade);
    EXPECT_EQ(c.level(), 2u);
}

TEST(Degradation, DeepestRungDropsTheOuterLayer)
{
    DegradationConfig cfg = enabled();
    cfg.missesToLocalOnly = 100;  // keep the cliff out of the way
    DegradationController c(cfg);
    feed(c, miss(), cfg.missesToDegrade * cfg.maxLevel);
    EXPECT_EQ(c.level(), cfg.maxLevel);
    EXPECT_TRUE(c.decide().dropOuterLayer);
    EXPECT_DOUBLE_EQ(
        c.decide().qualityFactor,
        std::pow(cfg.qualityStep, static_cast<double>(cfg.maxLevel)));

    // The ladder saturates at maxLevel.
    feed(c, miss(), cfg.missesToDegrade);
    EXPECT_EQ(c.level(), cfg.maxLevel);
}

TEST(Degradation, SingleMissRaisesTheClampBeforeTheLadder)
{
    DegradationController c(enabled());
    c.observe(miss());
    EXPECT_EQ(c.state(), DegradationState::Healthy);
    EXPECT_TRUE(c.decide().clampLocalWork);  // pressure, pre-ladder
    c.observe(good());
    EXPECT_FALSE(c.decide().clampLocalWork);
}

TEST(Degradation, MissStreakReachesLocalOnlyCliff)
{
    const DegradationConfig cfg = enabled();
    DegradationController c(cfg);
    feed(c, miss(), cfg.missesToLocalOnly);
    EXPECT_EQ(c.state(), DegradationState::LocalOnly);
    EXPECT_EQ(c.level(), cfg.maxLevel);
    EXPECT_EQ(c.counters().localOnlyEntries, 1u);
    EXPECT_TRUE(c.decide().clampLocalWork);
}

TEST(Degradation, InterruptedStreakDoesNotReachTheCliff)
{
    const DegradationConfig cfg = enabled();
    DegradationController c(cfg);
    feed(c, miss(), cfg.missesToLocalOnly - 1);
    c.observe(good());
    feed(c, miss(), cfg.missesToLocalOnly - 1);
    EXPECT_NE(c.state(), DegradationState::LocalOnly);
}

TEST(Degradation, OutageStallDeclaresLinkDownImmediately)
{
    const DegradationConfig cfg = enabled();
    DegradationController c(cfg);
    FrameHealth h;
    h.linkStall = cfg.stallToDeclareDown;
    c.observe(h);
    EXPECT_EQ(c.state(), DegradationState::LocalOnly);
}

TEST(Degradation, ThroughputCollapseDeclaresLinkDown)
{
    const DegradationConfig cfg = enabled();
    DegradationController c(cfg);
    FrameHealth h;
    h.ackFraction = cfg.throughputCollapse * 0.5;
    c.observe(h);
    EXPECT_EQ(c.state(), DegradationState::LocalOnly);
}

TEST(Degradation, LocalOnlyProbesOnTheConfiguredCadence)
{
    DegradationConfig cfg = enabled();
    cfg.probeInterval = 4;
    DegradationController c(cfg);
    FrameHealth down;
    down.linkStall = 1.0;
    c.observe(down);
    ASSERT_EQ(c.state(), DegradationState::LocalOnly);

    std::uint32_t probes = 0;
    for (int i = 0; i < 8; i++) {
        const DegradationDecision d = c.decide();
        EXPECT_NE(d.probe, d.localOnly);  // probe frames go remote
        if (d.probe) {
            probes++;
            // Probe fails: link still down.
            FrameHealth h;
            h.remoteMiss = true;
            c.observe(h);
        } else {
            FrameHealth h;
            h.remoteAttempted = false;
            c.observe(h);
        }
    }
    EXPECT_EQ(probes, 2u);  // every 4th frame
    EXPECT_EQ(c.counters().probes, 2u);
    // Failed probes keep it local.
    EXPECT_EQ(c.state(), DegradationState::LocalOnly);
}

TEST(Degradation, GoodProbesExitToDeepestDegraded)
{
    DegradationConfig cfg = enabled();
    cfg.probeInterval = 2;
    cfg.probesToExit = 2;
    DegradationController c(cfg);
    FrameHealth down;
    down.linkStall = 1.0;
    c.observe(down);

    while (c.state() == DegradationState::LocalOnly) {
        const DegradationDecision d = c.decide();
        FrameHealth h;
        h.remoteAttempted = d.probe;
        c.observe(h);
    }
    // Hysteresis: exit lands on the deepest Degraded rung, not
    // straight back to Healthy.
    EXPECT_EQ(c.state(), DegradationState::Degraded);
    EXPECT_EQ(c.level(), cfg.maxLevel);
    EXPECT_EQ(c.counters().localOnlyExits, 1u);
}

TEST(Degradation, RecoveryRampsOneLevelPerWindow)
{
    const DegradationConfig cfg = enabled();
    DegradationController c(cfg);
    feed(c, miss(), cfg.missesToDegrade * 2);
    ASSERT_EQ(c.level(), 2u);

    feed(c, good(), cfg.recoveryFrames);
    EXPECT_EQ(c.level(), 1u);
    EXPECT_EQ(c.state(), DegradationState::Degraded);
    feed(c, good(), cfg.recoveryFrames);
    EXPECT_EQ(c.level(), 0u);
    EXPECT_EQ(c.state(), DegradationState::Healthy);
    EXPECT_EQ(c.counters().upgrades, 2u);
}

TEST(Degradation, MissResetsTheRecoveryWindow)
{
    const DegradationConfig cfg = enabled();
    DegradationController c(cfg);
    feed(c, miss(), cfg.missesToDegrade);
    ASSERT_EQ(c.level(), 1u);

    feed(c, good(), cfg.recoveryFrames - 1);
    c.observe(miss());  // interrupts the good run
    feed(c, good(), cfg.recoveryFrames - 1);
    EXPECT_EQ(c.level(), 1u);  // neither window completed
}

TEST(DegradationDeath, RejectsEachBadThreshold)
{
    auto with = [](auto mutate) {
        DegradationConfig cfg;
        mutate(cfg);
        return cfg;
    };
    using C = DegradationConfig;
    EXPECT_DEATH(
        with([](C &c) { c.missesToDegrade = 0; }).validate(),
        "missesToDegrade");
    EXPECT_DEATH(
        with([](C &c) { c.missesToLocalOnly = 1; }).validate(),
        "local-only threshold");
    EXPECT_DEATH(with([](C &c) { c.recoveryFrames = 0; }).validate(),
                 "recoveryFrames");
    EXPECT_DEATH(with([](C &c) { c.probesToExit = 0; }).validate(),
                 "probesToExit");
    EXPECT_DEATH(with([](C &c) { c.probeInterval = 0; }).validate(),
                 "probeInterval");
    EXPECT_DEATH(with([](C &c) { c.qualityStep = 0.0; }).validate(),
                 "qualityStep");
    EXPECT_DEATH(with([](C &c) { c.resolutionStep = 1.5; }).validate(),
                 "resolutionStep");
    EXPECT_DEATH(
        with([](C &c) { c.localPeripheryScale = 0.0; }).validate(),
        "localPeripheryScale");
    EXPECT_DEATH(
        with([](C &c) { c.stallToDeclareDown = -1.0; }).validate(),
        "stall threshold");
    EXPECT_DEATH(
        with([](C &c) { c.throughputCollapse = 1.0; }).validate(),
        "throughputCollapse");
}

}  // namespace
}  // namespace qvr::core
