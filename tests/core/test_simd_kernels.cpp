/**
 * @file
 * SIMD pixel kernels: every compiled-and-supported vector backend
 * must be BIT-EXACT (maxAbsDiff == 0) against the scalar oracle —
 * at the raw kernel level (bilinearTile / blendTile on awkward
 * spans: single-pixel columns, non-multiple-of-8 tails, off-raster
 * shifts) and at the engine level (full UCA composition on odd and
 * tiny canvases, blend bands straddling tile boundaries, compressed
 * layer maps with non-integer origins).
 *
 * These tests carry the `tsan` CTest label: the engine-level checks
 * run at 1/2/8 workers, so under -DQVR_SANITIZE=thread they vet the
 * SIMD tile kernels inside the parallel dispatch for data races.
 *
 * On hosts where no vector backend is available the backend sweep is
 * empty and the suite degenerates to scalar-vs-scalar; dispatch
 * plumbing tests still run everywhere.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/pixel_engine.hpp"
#include "core/simd/kernels.hpp"

namespace qvr::core
{
namespace
{

/** Vector backends usable on this host (may be empty). */
std::vector<simd::Backend>
vectorBackends()
{
    std::vector<simd::Backend> out;
    for (const auto b : {simd::Backend::Avx2, simd::Backend::Neon})
        if (simd::backendSupported(b))
            out.push_back(b);
    return out;
}

/** Procedural interleaved-RGB raster with broadband content. */
std::vector<float>
rasterPattern(std::int32_t w, std::int32_t h, double phase)
{
    std::vector<float> px(static_cast<std::size_t>(w) * h * 3);
    for (std::int32_t y = 0; y < h; y++) {
        for (std::int32_t x = 0; x < w; x++) {
            const std::size_t i =
                (static_cast<std::size_t>(y) * w + x) * 3;
            px[i + 0] = static_cast<float>(
                0.5 + 0.5 * std::sin(x * 0.37 + phase));
            px[i + 1] = static_cast<float>(
                0.5 + 0.5 * std::cos(y * 0.23 - phase));
            px[i + 2] = static_cast<float>(
                0.5 + 0.3 * std::sin((x + 2 * y) * 0.11));
        }
    }
    return px;
}

/** Max |a-b| over two interleaved buffers. */
float
maxDiff(const std::vector<float> &a, const std::vector<float> &b)
{
    EXPECT_EQ(a.size(), b.size());
    float m = 0.0f;
    for (std::size_t i = 0; i < a.size(); i++)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

TEST(SimdKernels, BilinearTileMatchesScalarOnAwkwardSpans)
{
    const auto backends = vectorBackends();
    const std::int32_t sw = 53, sh = 41;
    const auto src = rasterPattern(sw, sh, 0.4);

    // Frame wider than the widest span so strides differ from span
    // widths; spans cover: 1-px column, lane-width-1, lane-width,
    // lane-width+1, a full 32-px tile, and a 37-px ragged tail.
    const std::int32_t fw = 64, fh = 40;
    const struct
    {
        std::int32_t x0, y0, x1, y1;
    } spans[] = {{0, 0, 1, 5},    {3, 2, 10, 9},  {5, 1, 13, 33},
                 {7, 0, 16, 7},   {0, 8, 32, 40}, {20, 3, 57, 31},
                 {31, 30, 64, 40}};

    for (const bool compose_one : {false, true}) {
        for (const auto &s : spans) {
            simd::BilinearTileArgs a;
            a.src = {src.data(), sw, sh};
            // Compressed-style map: fractional origin, scale > 1.
            a.map = {3.25, -1.5, 1.7, 2.3};
            a.shiftX = 101.7;   // pushes taps far off-raster: the
            a.shiftY = -77.3;   // clamp path must match scalar too
            a.span = {s.x0, s.y0, s.x1, s.y1};
            a.outStride = fw;
            a.composeOne = compose_one;

            std::vector<float> ref(
                static_cast<std::size_t>(fw) * fh * 3, -7.0f);
            std::vector<float> got = ref;
            a.outBase = ref.data();
            simd::bilinearTileScalar(a);
            for (const auto b : backends) {
                std::fill(got.begin(), got.end(), -7.0f);
                a.outBase = got.data();
                simd::bilinearTile(b, a);
                EXPECT_EQ(maxDiff(ref, got), 0.0f)
                    << simd::backendName(b) << " span (" << s.x0
                    << "," << s.y0 << ")-(" << s.x1 << "," << s.y1
                    << ") composeOne=" << compose_one;
            }
        }
    }
}

TEST(SimdKernels, BlendTileMatchesScalarAcrossBandPositions)
{
    const auto backends = vectorBackends();
    const auto fovea = rasterPattern(64, 48, 0.0);
    const auto middle = rasterPattern(33, 25, 1.0);
    const auto outer = rasterPattern(17, 13, 2.0);

    const std::int32_t fw = 64, fh = 48;
    // Geometry sweep: band through the span, fovea-only corner,
    // outer-only corner, and a degenerate zero-radius partition.
    const simd::BlendGeometry geoms[] = {
        {30.0, 22.0, 10.0, 24.0, 8.0},
        {-20.0, -10.0, 15.0, 35.0, 16.0},
        {120.0, 90.0, 40.0, 80.0, 32.0},
        {32.0, 24.0, 0.0, 0.0, 16.0}};

    for (const auto &g : geoms) {
        simd::BlendTileArgs a;
        a.fovea = {fovea.data(), 64, 48};
        a.middle = {middle.data(), 33, 25};
        a.outer = {outer.data(), 17, 13};
        a.foveaMap = {0.0, 0.0, 1.0, 1.0};
        a.middleMap = {-2.5, 1.25, 1.9, 1.9};
        a.outerMap = {0.0, 0.0, 3.8, 3.7};
        a.geom = g;
        a.shiftX = 1.7;
        a.shiftY = -2.3;
        a.span = {1, 2, 42, 47};  // 41-px rows: 8|4-lane ragged tail
        a.outStride = fw;

        std::vector<float> ref(
            static_cast<std::size_t>(fw) * fh * 3, -7.0f);
        std::vector<float> got = ref;
        a.outBase = ref.data();
        simd::blendTileScalar(a);
        for (const auto b : backends) {
            std::fill(got.begin(), got.end(), -7.0f);
            a.outBase = got.data();
            simd::blendTile(b, a);
            EXPECT_EQ(maxDiff(ref, got), 0.0f)
                << simd::backendName(b) << " geom centre ("
                << g.centerX << "," << g.centerY << ")";
        }
    }
}

TEST(SimdKernels, BlendWeightsMasksMirrorDoubleGuards)
{
    // The masks drive the vector guards; they must be all-ones
    // exactly where the double weight is > 0.0 and the float weight
    // consistent with the reference computation.
    simd::BlendGeometry g{40.0, 30.0, 12.0, 28.0, 10.0};
    PixelPartition p;
    p.centerX = g.centerX;
    p.centerY = g.centerY;
    p.foveaRadius = g.foveaRadius;
    p.middleRadius = g.middleRadius;
    p.blendBand = g.blendBand;

    const std::int32_t n = 96;
    std::vector<double> sx(n);
    for (std::int32_t i = 0; i < n; i++)
        sx[i] = i * 0.875 - 3.0;
    std::vector<float> wf(n), wm(n), wo(n);
    std::vector<std::uint32_t> mf(n), mm(n), mo(n);
    const double sy = 31.25;
    simd::blendWeightsSpan(g, sx.data(), sy, n, wf.data(), wm.data(),
                           wo.data(), mf.data(), mm.data(),
                           mo.data());
    for (std::int32_t i = 0; i < n; i++) {
        const double r = std::hypot(sx[i] - g.centerX,
                                    sy - g.centerY);
        const LayerWeights w = layerWeights(p, r);
        EXPECT_EQ(wf[i], static_cast<float>(w.fovea)) << i;
        EXPECT_EQ(wm[i], static_cast<float>(w.middle)) << i;
        EXPECT_EQ(wo[i], static_cast<float>(w.outer)) << i;
        EXPECT_EQ(mf[i], w.fovea > 0.0 ? 0xFFFFFFFFu : 0u) << i;
        EXPECT_EQ(mm[i], w.middle > 0.0 ? 0xFFFFFFFFu : 0u) << i;
        EXPECT_EQ(mo[i], w.outer > 0.0 ? 0xFFFFFFFFu : 0u) << i;
    }
}

// ---- Engine level: full composition, per backend, 1/2/8 workers ---

/** Owns the three layers so UcaFrameInputs' pointers stay valid. */
struct Frame
{
    Image native;
    Image middle;
    Image outer;
    UcaFrameInputs in;
};

Image
imagePattern(std::int32_t w, std::int32_t h, double phase)
{
    Image img(w, h);
    for (std::int32_t y = 0; y < h; y++) {
        Rgb *row = img.rowSpan(y);
        for (std::int32_t x = 0; x < w; x++) {
            row[x] = Rgb{static_cast<float>(
                             0.5 + 0.5 * std::sin(x * 0.13 + phase)),
                         static_cast<float>(
                             0.5 + 0.5 * std::cos(y * 0.08 - phase)),
                         static_cast<float>(
                             0.5 + 0.3 * std::sin((x + y) * 0.045))};
        }
    }
    return img;
}

Frame
makeFrame(std::int32_t w, std::int32_t h, const PixelPartition &p,
          Vec2 shift)
{
    Frame f;
    f.native = imagePattern(w, h, 0.3);
    f.middle = imagePattern(std::max(1, w / 2), std::max(1, h / 2),
                            1.3);
    f.outer = imagePattern(std::max(1, w / 4), std::max(1, h / 4),
                           2.3);
    f.in.fovea = &f.native;
    f.in.middle = &f.middle;
    f.in.outer = &f.outer;
    f.in.sMiddle = 2.0;
    f.in.sOuter = 4.0;
    f.in.partition = p;
    f.in.atwShift = shift;
    return f;
}

/** Every vector backend == scalar reference, at 1/2/8 workers. */
void
expectBackendsBitExact(const Frame &f)
{
    const Image ref_unified = ucaUnified(f.in);
    const Image ref_sequential = sequentialCompositeAtw(f.in);
    for (const auto b : vectorBackends()) {
        for (std::size_t threads : {1u, 2u, 8u}) {
            PixelEngine engine(threads, b);
            EXPECT_EQ(engine.ucaUnified(f.in).maxAbsDiff(
                          ref_unified),
                      0.0)
                << simd::backendName(b) << " unified, threads="
                << threads;
            EXPECT_EQ(engine.sequentialCompositeAtw(f.in).maxAbsDiff(
                          ref_sequential),
                      0.0)
                << simd::backendName(b) << " sequential, threads="
                << threads;
        }
    }
}

TEST(SimdEngine, BitExactOnOddCanvas)
{
    PixelPartition p;
    p.centerX = 255.5;
    p.centerY = 254.5;
    p.foveaRadius = 80.0;
    p.middleRadius = 170.0;
    p.blendBand = 16.0;
    expectBackendsBitExact(makeFrame(511, 509, p, Vec2{1.7, -2.3}));
}

TEST(SimdEngine, BitExactOnTinyCanvasesAndRaggedTails)
{
    PixelPartition p;
    p.centerX = 10.0;
    p.centerY = 12.0;
    p.foveaRadius = 8.0;
    p.middleRadius = 20.0;
    p.blendBand = 4.0;
    // 31/33/37-px widths: every row ends in a non-multiple-of-8
    // (and non-multiple-of-4) vector tail.
    expectBackendsBitExact(makeFrame(31, 17, p, Vec2{0.8, -0.2}));
    expectBackendsBitExact(makeFrame(33, 97, p, Vec2{0.0, 0.0}));
    expectBackendsBitExact(makeFrame(37, 41, p, Vec2{-1.4, 2.6}));
}

TEST(SimdEngine, BitExactWithOffCanvasShiftAndCentre)
{
    PixelPartition p;
    p.centerX = -90.0;
    p.centerY = -40.0;
    p.foveaRadius = 70.0;
    p.middleRadius = 300.0;
    p.blendBand = 20.0;
    // Shifts large enough to clamp whole rows/columns off-raster.
    expectBackendsBitExact(makeFrame(211, 173, p, Vec2{64.5, -80.25}));
}

TEST(SimdEngine, BitExactWithBandStraddlingTileBoundaries)
{
    PixelPartition p;
    p.centerX = 256.0;
    p.centerY = 256.0;
    p.foveaRadius = 96.0;
    p.middleRadius = 160.0;
    p.blendBand = 32.0;
    expectBackendsBitExact(makeFrame(511, 509, p, Vec2{2.5, -3.5}));
}

TEST(SimdEngine, ResampleShiftBitExactPerBackend)
{
    const Image src = imagePattern(211, 173, 1.1);
    const Vec2 shift{1.2, -0.8};
    PixelEngine scalar_engine(1, simd::Backend::Scalar);
    const Image ref = scalar_engine.resampleShift(src, shift);
    for (const auto b : vectorBackends()) {
        for (std::size_t threads : {1u, 2u, 8u}) {
            PixelEngine engine(threads, b);
            EXPECT_EQ(
                engine.resampleShift(src, shift).maxAbsDiff(ref),
                0.0)
                << simd::backendName(b) << " threads=" << threads;
        }
    }
}

// ---- Dispatch plumbing (runs on every host) -----------------------

TEST(SimdDispatch, ScalarAlwaysSupportedAndNamed)
{
    EXPECT_TRUE(simd::backendSupported(simd::Backend::Scalar));
    EXPECT_STREQ(simd::backendName(simd::Backend::Scalar), "scalar");
    EXPECT_STREQ(simd::backendName(simd::Backend::Avx2), "avx2");
    EXPECT_STREQ(simd::backendName(simd::Backend::Neon), "neon");
}

TEST(SimdDispatch, SupportedImpliesCompiled)
{
    for (const auto b : {simd::Backend::Scalar, simd::Backend::Avx2,
                         simd::Backend::Neon}) {
        if (simd::backendSupported(b)) {
            EXPECT_TRUE(simd::backendCompiled(b))
                << simd::backendName(b);
        }
    }
}

TEST(SimdDispatch, OverrideWinsAndClears)
{
    const simd::Backend before = simd::dispatch();
    simd::setBackend(simd::Backend::Scalar);
    EXPECT_EQ(simd::dispatch(), simd::Backend::Scalar);
    simd::clearBackendOverride();
    EXPECT_EQ(simd::dispatch(), before);
}

TEST(SimdDispatch, ParseNamesRoundTrip)
{
    EXPECT_EQ(simd::parseBackend("scalar"), simd::Backend::Scalar);
    for (const auto b : vectorBackends())
        EXPECT_EQ(simd::parseBackend(simd::backendName(b)), b);
    // "auto" resolves to something supported.
    EXPECT_TRUE(simd::backendSupported(simd::parseBackend("auto")));
}

}  // namespace
}  // namespace qvr::core
