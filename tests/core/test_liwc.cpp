/**
 * @file
 * LIWC: motion codec bit layout, Eq.-2 predictor, table storage
 * (fp16, 64 KB), selection semantics, learning convergence.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/liwc.hpp"

namespace qvr::core
{
namespace
{

foveation::LayerGeometry
geo()
{
    return foveation::LayerGeometry(foveation::DisplayConfig{},
                                    foveation::MarModel{});
}

Liwc
makeLiwc(const foveation::LayerGeometry &g,
         double e1 = 5.0, LiwcConfig cfg = LiwcConfig{})
{
    // 50 Mtri/s GPU, ~134 Mbit/s effective link, 0.55 bpp.
    return Liwc(cfg, g, 50e6, 134e6, 0.55, e1);
}

TEST(MotionCodec, StillMotionIsZero)
{
    MotionCodec codec{LiwcConfig{}};
    EXPECT_EQ(codec.encode(motion::MotionDelta{}), 0u);
}

TEST(MotionCodec, DofActivityBits)
{
    LiwcConfig cfg;
    MotionCodec codec(cfg);
    motion::MotionDelta d;
    d.dOrientation.x = cfg.rotActiveDeg * 2.0;  // yaw active
    EXPECT_EQ(codec.encode(d) & (1u << 9), 1u << 9);
    d.dPosition.z = cfg.posActiveM * 2.0;       // z active
    EXPECT_EQ(codec.encode(d) & (1u << 4), 1u << 4);
    // Below threshold: bit stays clear.
    d.dOrientation.y = cfg.rotActiveDeg * 0.5;
    EXPECT_EQ(codec.encode(d) & (1u << 8), 0u);
}

TEST(MotionCodec, GazeMagnitudeClasses)
{
    LiwcConfig cfg;
    MotionCodec codec(cfg);
    motion::MotionDelta d;

    d.dGaze = Vec2{cfg.gazeLargeDeg * 2.0, 0.0};
    EXPECT_EQ((codec.encode(d) >> 2) & 3u, 3u);
    d.dGaze = Vec2{cfg.gazeSmallDeg * 2.0, 0.0};
    EXPECT_EQ((codec.encode(d) >> 2) & 3u, 2u);
    d.dGaze = Vec2{cfg.gazeSmallDeg * 0.5, 0.0};
    EXPECT_EQ((codec.encode(d) >> 2) & 3u, 1u);
    d.dGaze = Vec2{};
    EXPECT_EQ((codec.encode(d) >> 2) & 3u, 0u);
}

TEST(MotionCodec, GazeQuadrantBits)
{
    MotionCodec codec{LiwcConfig{}};
    motion::MotionDelta d;
    d.dGaze = Vec2{-1.0, -1.0};
    EXPECT_EQ(codec.encode(d) & 3u, 3u);
    d.dGaze = Vec2{1.0, -1.0};
    EXPECT_EQ(codec.encode(d) & 3u, 2u);
    d.dGaze = Vec2{-1.0, 1.0};
    EXPECT_EQ(codec.encode(d) & 3u, 1u);
}

TEST(MotionCodec, IndexAlwaysInTenBits)
{
    MotionCodec codec{LiwcConfig{}};
    motion::MotionDelta d;
    d.dOrientation = Vec3{100.0, 100.0, 100.0};
    d.dPosition = Vec3{1.0, 1.0, 1.0};
    d.dGaze = Vec2{-50.0, -50.0};
    EXPECT_LT(codec.encode(d), MotionCodec::kMotionEntries);
}

TEST(LatencyPredictor, Eq2Forms)
{
    LatencyPredictor p(50e6, 100e6, 0.5);
    // T_local = tris x fovea% / P.
    EXPECT_NEAR(p.predictLocal(5'000'000, 0.1), 0.01, 1e-12);
    // T_remote = pixels x bpp / throughput.
    EXPECT_NEAR(p.predictRemote(2e6), 2e6 * 0.5 / 100e6, 1e-12);
}

TEST(LatencyPredictor, RuntimeUpdatesConverge)
{
    LatencyPredictor p(50e6, 100e6, 0.5);
    for (int i = 0; i < 100; i++) {
        p.observeGpuRate(80e6);
        p.observeThroughput(60e6);
        p.observeCompression(0.7);
    }
    EXPECT_NEAR(p.gpuRate(), 80e6, 1e3);
    EXPECT_NEAR(p.throughput(), 60e6, 1.0);
    EXPECT_NEAR(p.bitsPerPixel(), 0.7, 1e-6);
}

TEST(Liwc, TableIs64KiloBytesOfFp16)
{
    const auto g = geo();
    const Liwc liwc = makeLiwc(g);
    EXPECT_EQ(liwc.tableBytes(), 65536u);  // 2^15 x 2 bytes
    EXPECT_DOUBLE_EQ(liwc.areaMm2(), 0.66);
    EXPECT_DOUBLE_EQ(liwc.maxPowerW(), 0.025);
}

TEST(Liwc, SelectionLatencyIsNanoseconds)
{
    const auto g = geo();
    EXPECT_LT(makeLiwc(g).selectionLatency(), 100e-9);
}

TEST(Liwc, PriorGradientIsLinearInTag)
{
    const auto g = geo();
    const Liwc liwc = makeLiwc(g);
    const double g1 = liwc.gradientAt(0, 1);
    const double g5 = liwc.gradientAt(0, 5);
    const double gm5 = liwc.gradientAt(0, -5);
    EXPECT_NEAR(g5, 5.0 * g1, 0.01);
    EXPECT_NEAR(gm5, -g5, 0.01);
}

TEST(Liwc, GrowsFoveaWhenRemoteDominates)
{
    // Local renders a tiny fovea fast while the remote branch is
    // slow: LIWC must push e1 up.
    const auto g = geo();
    Liwc liwc = makeLiwc(g, 5.0);
    const motion::MotionDelta still{};
    const auto d = liwc.selectEccentricity(still, 2'000'000, Vec2{});
    EXPECT_GT(d.deltaTag, 0);
    EXPECT_GT(liwc.currentE1(), 5.0);
}

TEST(Liwc, ShrinksFoveaWhenLocalDominates)
{
    // Start with a huge fovea: local becomes the bottleneck.
    const auto g = geo();
    Liwc liwc = makeLiwc(g, 60.0);
    const motion::MotionDelta still{};
    const auto d =
        liwc.selectEccentricity(still, 20'000'000, Vec2{});
    EXPECT_LT(d.deltaTag, 0);
    EXPECT_LT(liwc.currentE1(), 60.0);
}

TEST(Liwc, ConvergesToLatencyBalance)
{
    // Closed loop against a self-consistent synthetic environment:
    // the measured latencies and the hardware counters the updater
    // sees are all derived from the same geometry, as on real
    // hardware.  LIWC should settle near the local/remote crossing.
    const auto g = geo();
    LiwcConfig cfg;
    Liwc liwc = makeLiwc(g, 5.0, cfg);

    const double total_tris = 2'000'000.0;
    const double true_gpu_rate = 50e6;       // triangles/s
    const double true_tput = 134e6;          // bits/s
    const double true_bpp = 0.48;
    const Seconds fixed_overhead = 5e-3;     // uplink+render+decode

    foveation::PartitionOracle oracle(g);
    auto environment = [&](double e1) {
        const auto &res = oracle.resolve(e1, Vec2{});
        const double work = std::pow(
            g.foveaAreaFraction(res.partition.e1, Vec2{}), 1.0 / 1.25);
        const double tris = total_tris * work;
        const double px = res.pixels.peripheryPixels();
        struct Env
        {
            Seconds local;
            Seconds remote;
            double tris;
            double pixels;
        } env{tris / true_gpu_rate,
              px * true_bpp / true_tput + fixed_overhead, tris, px};
        return env;
    };

    const motion::MotionDelta still{};
    double e1 = 5.0;
    for (int i = 0; i < 150; i++) {
        const auto d = liwc.selectEccentricity(
            still, static_cast<std::uint64_t>(total_tris), Vec2{});
        e1 = d.e1;
        const auto env = environment(e1);
        LiwcFeedback fb;
        fb.measuredLocal = env.local;
        fb.measuredRemote = env.remote;
        fb.renderedTriangles =
            static_cast<std::uint64_t>(env.tris);
        fb.peripheryPixels = env.pixels;
        fb.peripheryBytes = static_cast<Bytes>(
            env.pixels * true_bpp / 8.0);
        fb.ackThroughput = true_tput;
        liwc.update(d, fb);
    }

    const auto settled = environment(e1);
    const double gap = std::abs(settled.local - settled.remote);
    const double scale =
        std::max(settled.local, settled.remote);
    EXPECT_LT(gap, 0.35 * scale) << "settled at e1=" << e1;
    EXPECT_GT(e1, 8.0);
    EXPECT_LT(e1, 45.0);
}

TEST(Liwc, LearningUpdatesSelectedSlotOnly)
{
    const auto g = geo();
    Liwc liwc = makeLiwc(g);
    const motion::MotionDelta still{};
    const auto d = liwc.selectEccentricity(still, 2'000'000, Vec2{});

    const double before_other = liwc.gradientAt(d.motionIndex, -1);

    LiwcFeedback fb;
    fb.measuredLocal = 5e-3;
    fb.measuredRemote = 6e-3;
    liwc.update(d, fb);   // primes prevDiff
    const auto d2 = liwc.selectEccentricity(still, 2'000'000, Vec2{});
    fb.measuredLocal = 9e-3;
    fb.measuredRemote = 2e-3;
    liwc.update(d2, fb);  // now a real gradient update

    // Untouched tag keeps its prior.
    if (d2.deltaTag != -1) {
        EXPECT_DOUBLE_EQ(liwc.gradientAt(d2.motionIndex, -1),
                         before_other);
    }
    // Updated slot moved toward the observed +8 ms delta.
    const double updated =
        liwc.gradientAt(d2.motionIndex, d2.deltaTag);
    EXPECT_GT(updated,
              0.8 * static_cast<double>(d2.deltaTag) - 0.01);
}

TEST(Liwc, TablePersistenceRoundTrip)
{
    const auto g = geo();
    Liwc trained = makeLiwc(g);

    // Train a few slots away from the prior.
    const motion::MotionDelta still{};
    for (int i = 0; i < 10; i++) {
        const auto d =
            trained.selectEccentricity(still, 2'000'000, Vec2{});
        LiwcFeedback fb;
        fb.measuredLocal = 4e-3 + 0.3e-3 * i;
        fb.measuredRemote = 7e-3;
        fb.renderedTriangles = 400'000;
        fb.peripheryPixels = 1e6;
        fb.peripheryBytes = 60'000;
        fb.ackThroughput = 134e6;
        trained.update(d, fb);
    }

    std::stringstream image;
    trained.saveTable(image);

    Liwc restored = makeLiwc(g);
    restored.loadTable(image);
    for (std::uint32_t m : {0u, 1u, 512u, 1023u}) {
        for (int tag = -5; tag <= 5; tag++) {
            EXPECT_DOUBLE_EQ(restored.gradientAt(m, tag),
                             trained.gradientAt(m, tag));
        }
    }
}

TEST(LiwcDeath, LoadRejectsGarbage)
{
    const auto g = geo();
    Liwc liwc = makeLiwc(g);
    std::stringstream garbage("not a table at all");
    EXPECT_EXIT(liwc.loadTable(garbage),
                testing::ExitedWithCode(1), "not a LIWC table");
}

TEST(LiwcDeath, LoadRejectsDepthMismatch)
{
    const auto g = geo();
    LiwcConfig deep;
    deep.tableDepthLog2 = 16;
    Liwc big(deep, g, 50e6, 134e6, 0.55);
    std::stringstream image;
    big.saveTable(image);
    Liwc standard = makeLiwc(g);
    EXPECT_EXIT(standard.loadTable(image),
                testing::ExitedWithCode(1), "depth mismatch");
}

TEST(LiwcDeath, ShallowTablePanics)
{
    const auto g = geo();
    LiwcConfig cfg;
    cfg.tableDepthLog2 = 10;  // < motion bits + tag bits
    EXPECT_DEATH(makeLiwc(g, 5.0, cfg), "too shallow");
}

}  // namespace
}  // namespace qvr::core
