/**
 * @file
 * Tile rasteriser: coverage exactness, fill rules, depth test,
 * interpolation, stats, and the procedural test scene.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/raster.hpp"

namespace qvr::core
{
namespace
{

RasterTriangle
tri(double x0, double y0, double x1, double y1, double x2, double y2,
    double z = 0.5, Rgb c = Rgb{1.0f, 0.0f, 0.0f})
{
    return RasterTriangle{RasterVertex{x0, y0, z, c},
                          RasterVertex{x1, y1, z, c},
                          RasterVertex{x2, y2, z, c}};
}

std::uint64_t
coloredPixels(const Image &img)
{
    std::uint64_t n = 0;
    for (std::int32_t y = 0; y < img.height(); y++) {
        for (std::int32_t x = 0; x < img.width(); x++) {
            const Rgb &c = img.at(x, y);
            if (c.r + c.g + c.b > 0.0f)
                n++;
        }
    }
    return n;
}

TEST(TileRasterizer, AxisAlignedRightTriangleCoverage)
{
    TileRasterizer r(32, 32);
    r.clear();
    // Half-square below the diagonal of [0,16]^2.  The 16 pixel
    // centres lying exactly on the diagonal belong to the OTHER
    // triangle under the top-left rule, so this one owns
    // 15+14+...+0 = 120 pixels (and its mirror owns 136; together
    // exactly 256 — see SharedEdgeShadedExactlyOnce).
    r.draw(tri(0.0, 0.0, 0.0, 16.0, 16.0, 16.0));
    EXPECT_EQ(coloredPixels(r.color()), 120u);
    EXPECT_EQ(r.stats().fragmentsShaded, 120u);
}

TEST(TileRasterizer, FullScreenQuadCoversEverything)
{
    TileRasterizer r(64, 48);
    r.clear();
    r.draw(tri(0, 0, 0, 48, 64, 48));
    r.draw(tri(0, 0, 64, 48, 64, 0));
    EXPECT_EQ(coloredPixels(r.color()), 64u * 48u);
}

TEST(TileRasterizer, SharedEdgeShadedExactlyOnce)
{
    // Two triangles sharing the diagonal: with the top-left rule no
    // pixel is shaded twice and none is missed.
    TileRasterizer r(64, 64);
    r.clear();
    r.draw(tri(8, 8, 8, 56, 56, 56));
    r.draw(tri(8, 8, 56, 56, 56, 8));
    // The union is the square [8,56)^2 = 48*48 pixels.
    EXPECT_EQ(coloredPixels(r.color()), 48u * 48u);
    EXPECT_EQ(r.stats().fragmentsShaded, 48u * 48u);
}

TEST(TileRasterizer, WindingOrderIrrelevant)
{
    TileRasterizer a(32, 32);
    TileRasterizer b(32, 32);
    a.clear();
    b.clear();
    a.draw(tri(2, 2, 2, 30, 30, 30));
    b.draw(tri(2, 2, 30, 30, 2, 30));  // reversed winding
    EXPECT_EQ(coloredPixels(a.color()), coloredPixels(b.color()));
}

TEST(TileRasterizer, DepthTestNearWins)
{
    TileRasterizer r(16, 16);
    r.clear();
    r.draw(tri(0, 0, 0, 16, 16, 16, 0.8, Rgb{1.0f, 0.0f, 0.0f}));
    r.draw(tri(0, 0, 0, 16, 16, 16, 0.3, Rgb{0.0f, 1.0f, 0.0f}));
    EXPECT_FLOAT_EQ(r.color().at(2, 8).g, 1.0f);
    EXPECT_FLOAT_EQ(r.color().at(2, 8).r, 0.0f);
    // Far triangle drawn after near one is rejected.
    r.draw(tri(0, 0, 0, 16, 16, 16, 0.9, Rgb{0.0f, 0.0f, 1.0f}));
    EXPECT_FLOAT_EQ(r.color().at(2, 8).g, 1.0f);
    EXPECT_NEAR(r.depthAt(2, 8), 0.3f, 1e-6f);
}

TEST(TileRasterizer, GouraudInterpolationIsLinear)
{
    TileRasterizer r(64, 64);
    r.clear();
    RasterTriangle t;
    t.v0 = RasterVertex{0.0, 0.0, 0.5, Rgb{0.0f, 0.0f, 0.0f}};
    t.v1 = RasterVertex{64.0, 0.0, 0.5, Rgb{1.0f, 0.0f, 0.0f}};
    t.v2 = RasterVertex{0.0, 64.0, 0.5, Rgb{0.0f, 1.0f, 0.0f}};
    r.draw(t);
    // Red ramps with x, green with y.
    EXPECT_NEAR(r.color().at(32, 0).r, 0.5f, 0.02f);
    EXPECT_NEAR(r.color().at(0, 32).g, 0.5f, 0.02f);
    EXPECT_NEAR(r.color().at(16, 16).r, 16.5 / 64.0, 0.02);
}

TEST(TileRasterizer, DegenerateAndOffscreenCulled)
{
    TileRasterizer r(32, 32);
    r.clear();
    r.draw(tri(5, 5, 5, 5, 5, 5));          // zero area
    r.draw(tri(100, 100, 120, 100, 110, 120));  // offscreen
    EXPECT_EQ(r.stats().trianglesCulled, 2u);
    EXPECT_EQ(coloredPixels(r.color()), 0u);
}

TEST(TileRasterizer, PartialOffscreenClipped)
{
    TileRasterizer r(32, 32);
    r.clear();
    r.draw(tri(-16, -16, -16, 48, 48, 48));  // big, partly outside
    EXPECT_GT(coloredPixels(r.color()), 0u);
    EXPECT_LT(coloredPixels(r.color()), 32u * 32u);
}

TEST(TileRasterizer, TileBinningCountsAreSane)
{
    TileRasterizer r(64, 64, 16);
    r.clear();
    // A triangle spanning the full screen touches all 16 tiles.
    r.draw(tri(0, 0, 0, 64, 64, 64));
    EXPECT_GE(r.stats().tileBinEntries, 10u);
    EXPECT_LE(r.stats().tileBinEntries, 16u);
}

TEST(Psnr, IdenticalIsInfinite)
{
    Image a(8, 8, Rgb{0.5f, 0.5f, 0.5f});
    EXPECT_TRUE(std::isinf(psnr(a, a)));
}

TEST(Psnr, KnownError)
{
    Image a(10, 10);
    Image b(10, 10);
    for (std::int32_t y = 0; y < 10; y++) {
        for (std::int32_t x = 0; x < 10; x++)
            b.at(x, y) = Rgb{0.1f, 0.1f, 0.1f};
    }
    // MSE = 0.01 -> PSNR = 20 dB.
    EXPECT_NEAR(psnr(a, b), 20.0, 1e-6);
}

TEST(TestScene, ChessHallIsDeterministicAndSubstantial)
{
    const auto a = testscene::chessHall(256, 256, 16);
    const auto b = testscene::chessHall(256, 256, 16);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_GT(a.size(), 500u);  // rows*cols*2 + columns + sky
    EXPECT_DOUBLE_EQ(a[7].v1.x, b[7].v1.x);

    // Renders with meaningful coverage and content variety.
    TileRasterizer r(256, 256);
    r.clear();
    r.draw(a);
    EXPECT_GT(coloredPixels(r.color()), 256u * 256u / 2);
}

TEST(TestScene, ViewShiftMovesContent)
{
    TileRasterizer a(128, 128);
    TileRasterizer b(128, 128);
    a.clear();
    b.clear();
    a.draw(testscene::chessHall(128, 128, 8, 0.0));
    b.draw(testscene::chessHall(128, 128, 8, 30.0));
    EXPECT_GT(a.color().meanAbsDiff(b.color()), 0.01);
}

}  // namespace
}  // namespace qvr::core
