/**
 * @file
 * Functional foveated rendering: fovea fidelity, graceful periphery
 * degradation, partition-size monotonicity.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/foveated_render.hpp"

namespace qvr::core
{
namespace
{

PixelPartition
partition(double fovea_px, double middle_px)
{
    PixelPartition p;
    p.centerX = 128.0;
    p.centerY = 128.0;
    p.foveaRadius = fovea_px;
    p.middleRadius = middle_px;
    p.blendBand = 12.0;
    return p;
}

FoveatedRenderResult
render(double fovea_px, double s_mid = 2.0, double s_out = 3.0,
       Vec2 shift = Vec2{})
{
    const auto scene = testscene::chessHall(256, 256, 16);
    return renderFoveated(scene, 256, 256,
                          partition(fovea_px, fovea_px * 2.0), s_mid,
                          s_out, shift);
}

TEST(FoveatedRender, FoveaIsPixelFaithful)
{
    const FoveatedRenderResult r = render(48.0);
    // Inside the fovea disc the composite must match the reference
    // almost exactly (full-resolution layer, weight 1).
    EXPECT_GT(r.psnrFovea, 45.0);
}

TEST(FoveatedRender, PeripheryDegradesButBounded)
{
    const FoveatedRenderResult r = render(48.0);
    EXPECT_LT(r.psnrPeriphery, r.psnrFovea);
    // Still far from garbage: blurred, not broken.
    EXPECT_GT(r.psnrPeriphery, 15.0);
}

TEST(FoveatedRender, BiggerFoveaImprovesOverallQuality)
{
    const double small = render(24.0).psnrOverall;
    const double medium = render(48.0).psnrOverall;
    const double large = render(96.0).psnrOverall;
    EXPECT_GT(medium, small);
    EXPECT_GT(large, medium);
}

TEST(FoveatedRender, CoarserPeripheryHurtsOverallQuality)
{
    const double fine = render(48.0, 1.5, 2.0).psnrOverall;
    const double coarse = render(48.0, 3.0, 5.0).psnrOverall;
    EXPECT_GT(fine, coarse);
}

TEST(FoveatedRender, ReprojectionDoesNotBreakFovea)
{
    const FoveatedRenderResult r =
        render(48.0, 2.0, 3.0, Vec2{2.3, -1.1});
    EXPECT_GT(r.psnrFovea, 40.0);
}

TEST(FoveatedRender, WholeScreenFoveaIsExact)
{
    // A fovea covering everything means no foveation at all: the
    // composite equals the reference up to float rounding.
    const auto scene = testscene::chessHall(128, 128, 8);
    PixelPartition p;
    p.centerX = 64.0;
    p.centerY = 64.0;
    p.foveaRadius = 400.0;
    p.middleRadius = 500.0;
    const FoveatedRenderResult r =
        renderFoveated(scene, 128, 128, p, 2.0, 3.0);
    EXPECT_GT(r.psnrOverall, 60.0);
}

TEST(PsnrInDisc, RegionsPartitionTheError)
{
    Image a(64, 64);
    Image b(64, 64);
    // Error only outside a central disc.
    for (std::int32_t y = 0; y < 64; y++) {
        for (std::int32_t x = 0; x < 64; x++) {
            const double d =
                std::hypot(x + 0.5 - 32.0, y + 0.5 - 32.0);
            if (d > 20.0)
                b.at(x, y) = Rgb{0.2f, 0.0f, 0.0f};
        }
    }
    EXPECT_TRUE(std::isinf(
        psnrInDisc(a, b, 32.0, 32.0, 20.0, true)));
    EXPECT_LT(psnrInDisc(a, b, 32.0, 32.0, 20.0, false), 30.0);
}

}  // namespace
}  // namespace qvr::core
