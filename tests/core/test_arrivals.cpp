/**
 * @file
 * Statistical and determinism tests for the open-loop arrival layer:
 * empirical Poisson rates within confidence bounds, MMPP dwell-time
 * means, diurnal modulation, mix draws, byte-identical replay, and
 * the per-rejection validation death tests.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/arrivals.hpp"

namespace qvr::core
{
namespace
{

ArrivalConfig
poissonConfig(double rate, std::uint64_t seed = 7)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Poisson;
    cfg.rate = rate;
    cfg.seed = seed;
    return cfg;
}

ArrivalConfig
mmppConfig(std::uint64_t seed = 7)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Mmpp;
    cfg.states = {{5.0, 2.0}, {200.0, 0.25}};
    cfg.seed = seed;
    return cfg;
}

/** Byte-faithful digest of an arrival list (hexfloat times). */
std::string
digest(const std::vector<UserArrival> &as)
{
    std::ostringstream os;
    os << std::hexfloat;
    for (const UserArrival &a : as)
        os << a.id << ';' << a.connect << ';' << a.frames << ';'
           << a.profile << ';' << a.seed << '\n';
    return os.str();
}

TEST(Arrivals, PoissonEmpiricalRateWithinConfidenceInterval)
{
    const double rate = 50.0;
    const Seconds horizon = 200.0;
    const auto as = generateArrivals(poissonConfig(rate), horizon);

    // Count ~ Poisson(rate * horizon): mean 10000, sigma 100.  A
    // 4-sigma band keeps the deterministic seed comfortably inside
    // while still catching a rate bug of even a few percent.
    const double mean = rate * horizon;
    const double sigma = std::sqrt(mean);
    EXPECT_GT(static_cast<double>(as.size()), mean - 4.0 * sigma);
    EXPECT_LT(static_cast<double>(as.size()), mean + 4.0 * sigma);
}

TEST(Arrivals, PoissonInterarrivalMeanMatchesRate)
{
    const double rate = 20.0;
    const auto as = generateArrivals(poissonConfig(rate), 500.0);
    ASSERT_GT(as.size(), 1000u);
    double sum = 0.0;
    for (std::size_t i = 1; i < as.size(); i++)
        sum += as[i].connect - as[i - 1].connect;
    const double mean_gap =
        sum / static_cast<double>(as.size() - 1);
    EXPECT_NEAR(mean_gap, 1.0 / rate, 0.1 / rate);
}

TEST(Arrivals, ConnectTimesNondecreasingAndIdsSequential)
{
    const auto as = generateArrivals(poissonConfig(30.0), 50.0);
    ASSERT_FALSE(as.empty());
    for (std::size_t i = 0; i < as.size(); i++) {
        EXPECT_EQ(as[i].id, i);
        if (i > 0) {
            EXPECT_GE(as[i].connect, as[i - 1].connect);
        }
        EXPECT_LT(as[i].connect, 50.0);
    }
}

TEST(Arrivals, SessionLengthsStayInBounds)
{
    ArrivalConfig cfg = poissonConfig(40.0);
    cfg.minFrames = 12;
    cfg.maxFrames = 48;
    const auto as = generateArrivals(cfg, 100.0);
    ASSERT_GT(as.size(), 500u);
    std::uint32_t lo = cfg.maxFrames, hi = cfg.minFrames;
    for (const UserArrival &a : as) {
        EXPECT_GE(a.frames, cfg.minFrames);
        EXPECT_LE(a.frames, cfg.maxFrames);
        lo = std::min(lo, a.frames);
        hi = std::max(hi, a.frames);
    }
    // The uniform draw actually covers the range.
    EXPECT_EQ(lo, cfg.minFrames);
    EXPECT_EQ(hi, cfg.maxFrames);
}

TEST(Arrivals, MmppDwellMeansMatchConfiguredStates)
{
    ArrivalProcess p(mmppConfig());
    // Drive the process long enough to log plenty of completed
    // dwells; the state chain advances with simulated time.
    while (p.now() < 2000.0)
        p.next();
    const std::vector<Seconds> &dwells = p.dwellLog();
    ASSERT_GT(dwells.size(), 400u);

    // States alternate 0, 1, 0, 1, ... so even indices are state-0
    // dwells (mean 2.0 s) and odd indices state-1 (mean 0.25 s).
    double sum0 = 0.0, sum1 = 0.0;
    std::size_t n0 = 0, n1 = 0;
    for (std::size_t i = 0; i < dwells.size(); i++) {
        if (i % 2 == 0) {
            sum0 += dwells[i];
            n0++;
        } else {
            sum1 += dwells[i];
            n1++;
        }
    }
    EXPECT_NEAR(sum0 / static_cast<double>(n0), 2.0, 0.3);
    EXPECT_NEAR(sum1 / static_cast<double>(n1), 0.25, 0.04);
}

TEST(Arrivals, MmppBurstStateArrivesFaster)
{
    // Arrivals per unit dwell time must reflect the 40x rate ratio:
    // attribute each arrival to the state active when it happened.
    ArrivalConfig cfg = mmppConfig();
    ArrivalProcess p(cfg);
    double arrivals_by_state[2] = {0.0, 0.0};
    while (p.now() < 1000.0) {
        p.next();
        arrivals_by_state[p.state()] += 1.0;
    }
    const auto &dwells = p.dwellLog();
    double time_in[2] = {0.0, 0.0};
    for (std::size_t i = 0; i < dwells.size(); i++)
        time_in[i % 2] += dwells[i];
    const double rate0 = arrivals_by_state[0] / time_in[0];
    const double rate1 = arrivals_by_state[1] / time_in[1];
    EXPECT_NEAR(rate0, 5.0, 1.5);
    EXPECT_NEAR(rate1, 200.0, 20.0);
}

TEST(Arrivals, MmppStateChainInvariantUnderRateScaling)
{
    // The burst timeline must be bit-identical when every state rate
    // scales (the property that lets the open-loop bench compare
    // fleets of different sizes under the SAME flash crowd).
    ArrivalConfig base = mmppConfig();
    ArrivalConfig scaled = base;
    for (MmppState &s : scaled.states)
        s.rate *= 8.0;

    ArrivalProcess pb(base), ps(scaled);
    while (pb.now() < 500.0)
        pb.next();
    while (ps.now() < 500.0)
        ps.next();
    ASSERT_GE(pb.dwellLog().size(), 100u);
    const std::size_t n =
        std::min(pb.dwellLog().size(), ps.dwellLog().size());
    for (std::size_t i = 0; i < n; i++)
        EXPECT_EQ(pb.dwellLog()[i], ps.dwellLog()[i]) << "dwell " << i;
}

TEST(Arrivals, DiurnalCurveModulatesArrivalDensity)
{
    ArrivalConfig cfg = poissonConfig(50.0);
    cfg.diurnalAmplitude = 0.9;
    cfg.diurnalPeriod = 100.0;
    const auto as = generateArrivals(cfg, 100.0);
    // First half-period: sin > 0 (rate up to 95/s); second half:
    // sin < 0 (rate down to 5/s).  The density split must be heavily
    // lopsided — a broken thinning loop shows up immediately.
    std::size_t first = 0;
    for (const UserArrival &a : as)
        if (a.connect < 50.0)
            first++;
    const std::size_t second = as.size() - first;
    EXPECT_GT(first, second * 2);
}

TEST(Arrivals, MixDrawsFollowWeights)
{
    ArrivalConfig cfg = poissonConfig(50.0);
    cfg.mix = {{"HL2-H", 1.0}, {"Doom3-H", 1.0}, {"HL2-L", 2.0}};
    const auto as = generateArrivals(cfg, 200.0);
    ASSERT_GT(as.size(), 5000u);
    std::size_t count[3] = {0, 0, 0};
    for (const UserArrival &a : as) {
        ASSERT_LT(a.profile, 3u);
        count[a.profile]++;
    }
    const double n = static_cast<double>(as.size());
    EXPECT_NEAR(static_cast<double>(count[0]) / n, 0.25, 0.03);
    EXPECT_NEAR(static_cast<double>(count[1]) / n, 0.25, 0.03);
    EXPECT_NEAR(static_cast<double>(count[2]) / n, 0.50, 0.03);
}

TEST(Arrivals, ReplayIsByteIdentical)
{
    const ArrivalConfig cfg = mmppConfig(21);
    const auto a = generateArrivals(cfg, 100.0);
    const auto b = generateArrivals(cfg, 100.0);
    EXPECT_EQ(digest(a), digest(b));
    EXPECT_FALSE(a.empty());
}

TEST(Arrivals, StreamingMatchesMaterialised)
{
    const ArrivalConfig cfg = poissonConfig(25.0, 13);
    const auto all = generateArrivals(cfg, 80.0);
    ArrivalProcess p(cfg);
    std::vector<UserArrival> streamed;
    for (;;) {
        const UserArrival a = p.next();
        if (a.connect >= 80.0)
            break;
        streamed.push_back(a);
    }
    EXPECT_EQ(digest(all), digest(streamed));
}

TEST(Arrivals, DistinctSeedsGiveDistinctTimelines)
{
    const auto a = generateArrivals(poissonConfig(25.0, 1), 50.0);
    const auto b = generateArrivals(poissonConfig(25.0, 2), 50.0);
    EXPECT_NE(digest(a), digest(b));
}

TEST(Arrivals, PerUserSeedsAreDistinct)
{
    const auto as = generateArrivals(poissonConfig(40.0), 50.0);
    ASSERT_GT(as.size(), 100u);
    for (std::size_t i = 1; i < as.size(); i++)
        EXPECT_NE(as[i].seed, as[i - 1].seed);
}

using ArrivalsDeath = ::testing::Test;

TEST(ArrivalsDeath, ZeroRatePanics)
{
    ArrivalConfig cfg = poissonConfig(0.0);
    EXPECT_DEATH(cfg.validate(), "arrival rate must be positive");
}

TEST(ArrivalsDeath, SingleMmppStatePanics)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Mmpp;
    cfg.states = {{10.0, 1.0}};
    EXPECT_DEATH(cfg.validate(), "MMPP needs at least two states");
}

TEST(ArrivalsDeath, ZeroMmppStateRatePanics)
{
    ArrivalConfig cfg = mmppConfig();
    cfg.states[1].rate = 0.0;
    EXPECT_DEATH(cfg.validate(), "MMPP state rate must be positive");
}

TEST(ArrivalsDeath, ZeroMmppDwellPanics)
{
    ArrivalConfig cfg = mmppConfig();
    cfg.states[0].meanDwell = 0.0;
    EXPECT_DEATH(cfg.validate(), "MMPP state dwell must be positive");
}

TEST(ArrivalsDeath, DiurnalAmplitudeOfOnePanics)
{
    ArrivalConfig cfg = poissonConfig(10.0);
    cfg.diurnalAmplitude = 1.0;
    EXPECT_DEATH(cfg.validate(), "diurnal amplitude outside");
}

TEST(ArrivalsDeath, ZeroMinFramesPanics)
{
    ArrivalConfig cfg = poissonConfig(10.0);
    cfg.minFrames = 0;
    EXPECT_DEATH(cfg.validate(), "sessions need at least one frame");
}

TEST(ArrivalsDeath, MaxFramesBelowMinPanics)
{
    ArrivalConfig cfg = poissonConfig(10.0);
    cfg.minFrames = 40;
    cfg.maxFrames = 30;
    EXPECT_DEATH(cfg.validate(), "max session frames below min");
}

TEST(ArrivalsDeath, NegativeRoamRatePanics)
{
    ArrivalConfig cfg = poissonConfig(10.0);
    cfg.roamRate = -1.0;
    EXPECT_DEATH(cfg.validate(), "roam rate must be nonnegative");
}

TEST(ArrivalsDeath, ZeroMixWeightPanics)
{
    ArrivalConfig cfg = poissonConfig(10.0);
    cfg.mix = {{"HL2-H", 0.0}};
    EXPECT_DEATH(cfg.validate(), "mix weight must be positive");
}

TEST(ArrivalsDeath, NonpositiveHorizonPanics)
{
    EXPECT_DEATH(generateArrivals(poissonConfig(10.0), 0.0),
                 "arrival horizon must be positive");
}

}  // namespace
}  // namespace qvr::core
