/**
 * @file
 * QvrSystem facade and the design-point factory.
 */

#include <gtest/gtest.h>

#include "core/qvr_system.hpp"

namespace qvr::core
{
namespace
{

TEST(DesignFactory, NamesMatchPaper)
{
    EXPECT_STREQ(designName(DesignPoint::Local), "Local");
    EXPECT_STREQ(designName(DesignPoint::Static), "Static");
    EXPECT_STREQ(designName(DesignPoint::Ffr), "FFR");
    EXPECT_STREQ(designName(DesignPoint::Dfr), "DFR");
    EXPECT_STREQ(designName(DesignPoint::SwQvr), "SW-QVR");
    EXPECT_STREQ(designName(DesignPoint::Qvr), "Q-VR");
}

TEST(DesignFactory, BuildsEveryDesign)
{
    ExperimentSpec spec;
    spec.benchmark = "Doom3-L";
    const PipelineConfig cfg = spec.toConfig();
    for (DesignPoint d : {DesignPoint::Local, DesignPoint::Remote,
                          DesignPoint::Static, DesignPoint::Ffr,
                          DesignPoint::Dfr, DesignPoint::SwQvr,
                          DesignPoint::Qvr}) {
        auto p = makePipeline(d, cfg);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->name(), designName(d));
    }
}

TEST(ExperimentSpec, ConfigReflectsEnvironment)
{
    ExperimentSpec spec;
    spec.benchmark = "GRID";
    spec.channel = net::ChannelConfig::lte4g();
    spec.gpuFrequencyScale = 0.6;
    const PipelineConfig cfg = spec.toConfig();
    EXPECT_EQ(cfg.benchmark.name, "GRID");
    EXPECT_EQ(cfg.channelConfig.name, "4G LTE");
    EXPECT_DOUBLE_EQ(cfg.gpuFrequencyScale, 0.6);
    // Radio profile follows the channel.
    EXPECT_DOUBLE_EQ(cfg.powerConfig.radio.activeReceiveW, 1.4);
}

TEST(QvrSystem, StreamsFrames)
{
    ExperimentSpec spec;
    spec.benchmark = "HL2-H";
    spec.numFrames = 50;
    const auto frames = generateExperimentWorkload(spec);
    QvrSystem system(spec.toConfig());

    double last_display = 0.0;
    for (const auto &f : frames) {
        const QvrFrameOutput out = system.renderFrame(f);
        EXPECT_GE(out.e1, 5.0);
        EXPECT_GE(out.e2, out.e1);
        EXPECT_GT(out.stats.displayTime, last_display);
        last_display = out.stats.displayTime;
    }
}

TEST(QvrSystem, MatchesBatchPipeline)
{
    ExperimentSpec spec;
    spec.benchmark = "HL2-H";
    spec.numFrames = 30;
    const auto frames = generateExperimentWorkload(spec);

    QvrSystem streaming(spec.toConfig());
    auto batch = makePipeline(DesignPoint::Qvr, spec.toConfig());
    const PipelineResult batch_result = batch->run(frames);

    for (std::size_t i = 0; i < frames.size(); i++) {
        const QvrFrameOutput out = streaming.renderFrame(frames[i]);
        EXPECT_DOUBLE_EQ(out.stats.mtpLatency,
                         batch_result.frames[i].mtpLatency);
        EXPECT_DOUBLE_EQ(out.e1, batch_result.frames[i].e1);
    }
}

TEST(RunExperiment, EndToEnd)
{
    ExperimentSpec spec;
    spec.benchmark = "Doom3-L";
    spec.numFrames = 60;
    const PipelineResult r = runExperiment(DesignPoint::Qvr, spec);
    EXPECT_EQ(r.design, "Q-VR");
    EXPECT_EQ(r.benchmark, "Doom3-L");
    EXPECT_EQ(r.frames.size(), 60u);
    EXPECT_GT(r.meanFps(), 0.0);
}

}  // namespace
}  // namespace qvr::core
