/**
 * @file
 * Reprojection-deadline edge cases (Section 4.2 fill-in): exact
 * deadline equality, the disabled (deadline == 0) path, the first
 * frame with no resident layers, and the staleness clamp when a late
 * arrival still refreshes the resident set.
 */

#include <gtest/gtest.h>

#include "core/pipeline_foveated.hpp"
#include "core/qvr_system.hpp"

namespace qvr::core
{
namespace
{

ExperimentSpec
spec(std::size_t frames = 200)
{
    ExperimentSpec s;
    s.benchmark = "HL2-H";
    s.numFrames = frames;
    return s;
}

TEST(ReprojectionDecision, ExactDeadlineArrivalComposesFresh)
{
    const Seconds deadline = 0.030;
    // Strictly after: reproject.
    EXPECT_TRUE(shouldReproject(false, false, 0.030000001, deadline,
                                0.022, true));
    // Exactly at the deadline: the layers are usable — compose fresh.
    EXPECT_FALSE(
        shouldReproject(false, false, 0.030, deadline, 0.022, true));
    EXPECT_FALSE(
        shouldReproject(false, false, 0.029, deadline, 0.022, true));
}

TEST(ReprojectionDecision, ZeroDeadlineDisablesTheTimingFallback)
{
    // Arbitrarily late arrival, fallback disarmed: never reproject.
    EXPECT_FALSE(
        shouldReproject(false, false, 10.0, 0.030, 0.0, true));
}

TEST(ReprojectionDecision, NoResidentLayersNothingToReprojectFrom)
{
    EXPECT_FALSE(
        shouldReproject(false, false, 10.0, 0.030, 0.022, false));
}

TEST(ReprojectionDecision, SkipAndUnusableBypassTiming)
{
    // A skipped fetch or an unusable (retry-exhausted) periphery
    // reprojects regardless of arrival time.
    EXPECT_TRUE(shouldReproject(true, false, 0.0, 1.0, 0.022, true));
    EXPECT_TRUE(shouldReproject(false, true, 0.0, 1.0, 0.022, true));
}

TEST(ReprojectionEdges, FirstFrameNeverReprojects)
{
    // A hard outage covering t=0 makes the very first frame's
    // periphery hopelessly late — but there is no resident layer set
    // yet, so it must wait it out rather than reproject.
    ExperimentSpec s = spec(50);
    s.faults.addOutage(0.0, 0.200);
    const auto workload = generateExperimentWorkload(s);
    FoveatedPipeline qvr(s.toConfig(), FoveatedPolicy::qvr());
    const PipelineResult r = qvr.run(workload);

    EXPECT_FALSE(r.frames[0].reprojected);
    EXPECT_GT(r.frames[0].linkStall, 0.0);
    EXPECT_GT(r.frames[0].tRemoteBranch,
              FoveatedPolicy::qvr().reprojectionDeadline);
}

TEST(ReprojectionEdges, LateArrivalClampsStalenessToPipelineDepth)
{
    const auto workload = generateExperimentWorkload(spec());
    FoveatedPipeline qvr(spec().toConfig(), FoveatedPolicy::qvr());

    bool saw_first_miss = false;
    bool in_run = false;
    std::uint32_t prev_stale = 0;
    for (const auto &frame : workload) {
        if (frame.index == 100)
            qvr.channel().injectOutage(0.200);
        const FrameStats st = qvr.step(frame);
        if (st.reprojected) {
            if (!in_run) {
                // The outage-delayed transfer still arrived: the
                // resident set is one pipeline depth (2 frames) old,
                // not older.
                EXPECT_EQ(qvr.staleReprojectionFrames(), 2u);
                saw_first_miss = true;
            } else {
                // Skipped fetches age the resident set one frame at
                // a time.
                EXPECT_GE(qvr.staleReprojectionFrames(), prev_stale);
            }
            in_run = true;
            prev_stale = qvr.staleReprojectionFrames();
        } else {
            EXPECT_EQ(qvr.staleReprojectionFrames(), 0u);
            in_run = false;
            prev_stale = 0;
        }
    }
    EXPECT_TRUE(saw_first_miss);
}

TEST(ReprojectionEdges, BackToBackLateArrivalsStayClamped)
{
    // Two isolated late arrivals separated by clean frames: each
    // resets staleness to the pipeline depth (no accumulation across
    // recovered gaps).
    const auto workload = generateExperimentWorkload(spec(300));
    FoveatedPipeline qvr(spec(300).toConfig(), FoveatedPolicy::qvr());

    std::vector<std::uint32_t> first_stales;
    bool in_run = false;
    for (const auto &frame : workload) {
        if (frame.index == 100 || frame.index == 200)
            qvr.channel().injectOutage(0.150);
        const FrameStats st = qvr.step(frame);
        if (st.reprojected && !in_run)
            first_stales.push_back(qvr.staleReprojectionFrames());
        in_run = st.reprojected;
    }
    ASSERT_GE(first_stales.size(), 2u);
    for (const std::uint32_t s : first_stales)
        EXPECT_EQ(s, 2u);
}

}  // namespace
}  // namespace qvr::core
