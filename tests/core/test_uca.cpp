/**
 * @file
 * UCA: layer-weight partition of unity, the Eq.3 = Eq.4 reordering
 * equivalence on real pixels, tile classification, and the timing
 * model's Section-4.3 properties.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/uca.hpp"

namespace qvr::core
{
namespace
{

/** Procedural test content with energy at several scales. */
Image
makePattern(std::int32_t w, std::int32_t h, double phase)
{
    Image img(w, h);
    for (std::int32_t y = 0; y < h; y++) {
        for (std::int32_t x = 0; x < w; x++) {
            const double fx = x + 0.5;
            const double fy = y + 0.5;
            img.at(x, y) = Rgb{
                static_cast<float>(
                    0.5 + 0.5 * std::sin(fx * 0.11 + phase)),
                static_cast<float>(
                    0.5 + 0.5 * std::cos(fy * 0.07 + phase)),
                static_cast<float>(
                    0.5 + 0.25 * std::sin((fx + fy) * 0.05))};
        }
    }
    return img;
}

/** Downsample by factor s with box averaging (layer rendering). */
Image
downsample(const Image &src, double s)
{
    const auto w =
        std::max(1, static_cast<std::int32_t>(src.width() / s));
    const auto h =
        std::max(1, static_cast<std::int32_t>(src.height() / s));
    Image out(w, h);
    for (std::int32_t y = 0; y < h; y++) {
        for (std::int32_t x = 0; x < w; x++) {
            out.at(x, y) = src.sampleBilinear((x + 0.5) * s,
                                              (y + 0.5) * s);
        }
    }
    return out;
}

UcaFrameInputs
makeInputs(const Image &fovea, const Image &middle, const Image &outer,
           double s_mid, double s_out)
{
    UcaFrameInputs in;
    in.fovea = &fovea;
    in.middle = &middle;
    in.outer = &outer;
    in.sMiddle = s_mid;
    in.sOuter = s_out;
    in.partition.centerX = fovea.width() / 2.0;
    in.partition.centerY = fovea.height() / 2.0;
    in.partition.foveaRadius = fovea.width() / 6.0;
    in.partition.middleRadius = fovea.width() / 3.0;
    in.partition.blendBand = 8.0;
    in.atwShift = Vec2{1.7, -2.3};
    return in;
}

TEST(LayerWeights, PartitionOfUnity)
{
    PixelPartition p;
    p.foveaRadius = 50.0;
    p.middleRadius = 120.0;
    p.blendBand = 16.0;
    for (double r = 0.0; r < 300.0; r += 0.7) {
        const LayerWeights w = layerWeights(p, r);
        EXPECT_NEAR(w.fovea + w.middle + w.outer, 1.0, 1e-12) << r;
        EXPECT_GE(w.fovea, 0.0);
        EXPECT_GE(w.middle, 0.0);
        EXPECT_GE(w.outer, 0.0);
    }
}

TEST(LayerWeights, CorrectLayerDominatesPerRegion)
{
    PixelPartition p;
    p.foveaRadius = 50.0;
    p.middleRadius = 120.0;
    p.blendBand = 16.0;
    EXPECT_DOUBLE_EQ(layerWeights(p, 0.0).fovea, 1.0);
    EXPECT_GT(layerWeights(p, 85.0).middle, 0.99);
    EXPECT_GT(layerWeights(p, 200.0).outer, 0.99);
}

TEST(Uca, UnifiedMatchesSequentialReordering)
{
    // The core Section 4.2 claim: ATW-then-compose (one trilinear
    // pass) equals compose-then-ATW (two passes) up to interpolation
    // error at the blend bands.
    const Image native = makePattern(96, 96, 0.0);
    const Image middle = downsample(native, 2.0);
    const Image outer = downsample(native, 3.0);
    const UcaFrameInputs in = makeInputs(native, middle, outer,
                                         2.0, 3.0);

    const Image sequential = sequentialCompositeAtw(in);
    const Image unified = ucaUnified(in);

    EXPECT_LT(sequential.meanAbsDiff(unified), 0.01);
    EXPECT_LT(sequential.maxAbsDiff(unified), 0.12);
}

TEST(Uca, ExactlyEqualWithoutReprojection)
{
    // With zero ATW shift both paths sample identical coordinates:
    // the only difference is composing at integer grid then
    // resampling at the same grid — which is the identity.
    const Image native = makePattern(64, 64, 1.0);
    const Image middle = downsample(native, 2.0);
    const Image outer = downsample(native, 4.0);
    UcaFrameInputs in = makeInputs(native, middle, outer, 2.0, 4.0);
    in.atwShift = Vec2{0.0, 0.0};

    const Image sequential = sequentialCompositeAtw(in);
    const Image unified = ucaUnified(in);
    EXPECT_LT(sequential.maxAbsDiff(unified), 1e-5);
}

TEST(Uca, FoveaRegionPreservedAtFullDetail)
{
    // Inside the fovea (away from bands) the output must equal the
    // reprojected native content even when the periphery is coarse.
    const Image native = makePattern(96, 96, 0.5);
    const Image middle = downsample(native, 4.0);
    const Image outer = downsample(native, 8.0);
    UcaFrameInputs in = makeInputs(native, middle, outer, 4.0, 8.0);

    const Image out = ucaUnified(in);
    const std::int32_t cx = 48;
    const std::int32_t cy = 48;
    for (std::int32_t dy = -4; dy <= 4; dy++) {
        for (std::int32_t dx = -4; dx <= 4; dx++) {
            const Rgb expect = native.sampleBilinear(
                cx + dx + 0.5 - in.atwShift.x,
                cy + dy + 0.5 - in.atwShift.y);
            const Rgb got = out.at(cx + dx, cy + dy);
            EXPECT_NEAR(got.r, expect.r, 1e-5);
            EXPECT_NEAR(got.g, expect.g, 1e-5);
        }
    }
}

TEST(Uca, TileClassification)
{
    PixelPartition p;
    p.centerX = 256.0;
    p.centerY = 256.0;
    p.foveaRadius = 100.0;
    p.middleRadius = 200.0;
    p.blendBand = 16.0;

    // Tile at the centre: fovea interior.
    EXPECT_EQ(classifyTile(p, 240, 240, 32),
              TileClass::FoveaInterior);
    // Tile far away: periphery interior.
    EXPECT_EQ(classifyTile(p, 480, 480, 32),
              TileClass::PeripheryInterior);
    // Tile straddling the e1 ring (r=100 along +x: x ~ 356).
    EXPECT_EQ(classifyTile(p, 340, 240, 32), TileClass::Border);
    // Tile straddling the e2 ring (x ~ 456).
    EXPECT_EQ(classifyTile(p, 440, 240, 32), TileClass::Border);
}

TEST(UcaTiming, TileCountsCoverFrame)
{
    UcaTimingModel uca;
    PixelPartition p;
    p.centerX = 960.0;
    p.centerY = 1080.0;
    p.foveaRadius = 260.0;
    p.middleRadius = 600.0;
    const UcaTimingResult r =
        uca.processFrame(1920, 2160, p, 0.0, 0.0);
    const std::uint32_t tiles =
        ((1920 + 31) / 32) * ((2160 + 31) / 32);
    EXPECT_EQ(r.borderTiles + r.interiorTiles, tiles);
    EXPECT_GT(r.borderTiles, 0u);
}

TEST(UcaTiming, CompletesWithinRealtimeBudget)
{
    // Section 4.3: "with 2 UCAs operating at 500 MHz, we are able to
    // achieve sufficient performance for realtime VR" — a full
    // 1920x2160 frame must process well inside the 11 ms budget.
    UcaTimingModel uca;
    PixelPartition p;
    p.centerX = 960.0;
    p.centerY = 1080.0;
    p.foveaRadius = 260.0;
    p.middleRadius = 600.0;
    const UcaTimingResult r =
        uca.processFrame(1920, 2160, p, 0.0, 0.0);
    EXPECT_LT(r.done, vr_requirements::kFrameBudget / 2.0);
}

TEST(UcaTiming, PeripheryTilesStartBeforeFoveaReady)
{
    // The paper's pipeline optimisation: non-overlapping periphery
    // tiles process as soon as the remote layers decode, before the
    // local fovea render completes.
    UcaTimingModel uca;
    PixelPartition p;
    p.centerX = 960.0;
    p.centerY = 1080.0;
    p.foveaRadius = 200.0;
    p.middleRadius = 500.0;

    const Seconds fovea_ready = 8e-3;
    const Seconds periphery_ready = 2e-3;
    const UcaTimingResult r = uca.processFrame(
        1920, 2160, p, fovea_ready, periphery_ready);

    // Done shortly after fovea_ready: periphery bulk already drained.
    EXPECT_GT(r.done, fovea_ready);
    EXPECT_LT(r.done - fovea_ready, 2e-3);

    // Compare with a unit that must wait for everything.
    UcaTimingModel lazy;
    const UcaTimingResult all_late = lazy.processFrame(
        1920, 2160, p, fovea_ready, fovea_ready);
    EXPECT_GT(all_late.done, r.done);
}

TEST(UcaTiming, DetailedModeAgreesWithBuckets)
{
    // The aggregate bucket scheduler is an approximation of the
    // per-tile dispatch; they must agree on tile counts exactly and
    // on completion time within the bucket-granularity slack.
    PixelPartition p;
    p.centerX = 960.0;
    p.centerY = 1080.0;
    p.foveaRadius = 260.0;
    p.middleRadius = 600.0;

    for (Seconds fovea_ready : {0.0, 4e-3}) {
        for (Seconds periphery_ready : {0.0, 2e-3, 8e-3}) {
            UcaTimingModel bucket_model;
            UcaTimingModel detailed_model;
            const UcaTimingResult bucket = bucket_model.processFrame(
                1920, 2160, p, fovea_ready, periphery_ready);
            const UcaTimingResult detailed =
                detailed_model.processFrameDetailed(
                    1920, 2160, p, fovea_ready, periphery_ready);

            EXPECT_EQ(bucket.borderTiles, detailed.borderTiles);
            EXPECT_EQ(bucket.interiorTiles, detailed.interiorTiles);
            EXPECT_NEAR(bucket.busy, detailed.busy,
                        detailed.busy * 0.01);
            EXPECT_NEAR(bucket.done, detailed.done,
                        std::max(detailed.done * 0.25, 0.3e-3))
                << "fovea=" << fovea_ready
                << " periphery=" << periphery_ready;
        }
    }
}

TEST(UcaTiming, DetailedModeNeverIdlesPastReadyTiles)
{
    // With all data ready at t=0, completion equals busy work spread
    // over the instances (perfect packing, no idle gaps).
    UcaTimingModel uca;
    PixelPartition p;
    p.centerX = 960.0;
    p.centerY = 1080.0;
    p.foveaRadius = 260.0;
    p.middleRadius = 600.0;
    const UcaTimingResult r =
        uca.processFrameDetailed(1920, 2160, p, 0.0, 0.0);
    EXPECT_NEAR(r.done, r.busy / 2.0, r.busy * 0.01);
}

TEST(UcaTiming, BorderTilesCostMore)
{
    UcaConfig cfg;
    EXPECT_GT(cfg.borderTileCycles, cfg.interiorTileCycles);
    EXPECT_EQ(cfg.borderTileCycles, 532u);  // paper Section 4.3
    EXPECT_EQ(cfg.units, 2u);
    EXPECT_DOUBLE_EQ(cfg.areaMm2, 1.6);
    EXPECT_DOUBLE_EQ(cfg.powerW, 0.094);
}

}  // namespace
}  // namespace qvr::core
