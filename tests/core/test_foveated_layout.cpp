/**
 * @file
 * Encoder-aligned compressed frame layout: derivation invariants
 * (macroblock alignment, edge-ratio rescale, window coverage) under
 * a randomised parameter sweep, compressed-direct composition
 * quality vs the expand-first reference within a pinned PSNR floor,
 * byte-replayability of the functional path, and seed-replay of the
 * Q-VR+CL pipeline's bytes on wire.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/foveated_render.hpp"
#include "core/qvr_system.hpp"
#include "foveation/compressed_layout.hpp"

namespace qvr
{
namespace
{

TEST(CompressedLayout, AlignUpBasics)
{
    EXPECT_EQ(foveation::alignUp(0, 32), 32);
    EXPECT_EQ(foveation::alignUp(1, 32), 32);
    EXPECT_EQ(foveation::alignUp(31, 32), 32);
    EXPECT_EQ(foveation::alignUp(32, 32), 32);
    EXPECT_EQ(foveation::alignUp(33, 32), 64);
    EXPECT_EQ(foveation::alignUp(96, 32), 96);
}

TEST(CompressedLayout, InvariantsUnderRandomSweep)
{
    Rng rng(20260809);
    for (int iter = 0; iter < 2000; iter++) {
        foveation::CompressedLayoutParams p;
        p.frameWidth =
            static_cast<std::int32_t>(rng.uniformInt(40, 2200));
        p.frameHeight =
            static_cast<std::int32_t>(rng.uniformInt(40, 2400));
        p.centerX = rng.uniform(-300.0, p.frameWidth + 300.0);
        p.centerY = rng.uniform(-300.0, p.frameHeight + 300.0);
        p.foveaRadius = rng.uniform(0.0, 400.0);
        p.middleRadius = p.foveaRadius + rng.uniform(0.0, 500.0);
        p.blendBand = rng.uniform(0.0, 64.0);
        p.sMiddle = rng.uniform(1.0, 4.0);
        p.sOuter = rng.uniform(1.0, 8.0);

        const auto layout = foveation::makeCompressedLayout(p);

        for (const foveation::CompressedLayer *L :
             {&layout.middle, &layout.outer}) {
            ASSERT_GT(L->bufWidth, 0) << iter;
            ASSERT_GT(L->bufHeight, 0) << iter;
            ASSERT_EQ(L->bufWidth % p.alignment, 0) << iter;
            ASSERT_EQ(L->bufHeight % p.alignment, 0) << iter;
            ASSERT_GT(L->map.scaleX, 0.0) << iter;
            ASSERT_GT(L->map.scaleY, 0.0) << iter;
        }

        // Edge-ratio rescale: alignment never coarsens a layer
        // beyond the requested subsample factor...
        EXPECT_LE(layout.outer.map.scaleX, p.sOuter) << iter;
        EXPECT_LE(layout.outer.map.scaleY, p.sOuter) << iter;
        EXPECT_LE(layout.middle.map.scaleX, p.sMiddle) << iter;
        EXPECT_LE(layout.middle.map.scaleY, p.sMiddle) << iter;

        // ...and the rescaled buffer spans EXACTLY the native window
        // it was derived from (ALVR's ratio = used / aligned).
        EXPECT_EQ(layout.outer.map.originX, 0.0) << iter;
        EXPECT_EQ(layout.outer.map.originY, 0.0) << iter;
        EXPECT_DOUBLE_EQ(
            layout.outer.bufWidth * layout.outer.map.scaleX,
            static_cast<double>(p.frameWidth))
            << iter;
        EXPECT_DOUBLE_EQ(
            layout.outer.bufHeight * layout.outer.map.scaleY,
            static_cast<double>(p.frameHeight))
            << iter;

        // The middle window must cover every native pixel whose
        // blend weight can reference the middle layer (reach =
        // e2 + band/2 plus the bilinear footprint), clipped to the
        // frame.
        const double reach = p.middleRadius + p.blendBand / 2.0 +
                             2.0 * p.sMiddle + 2.0;
        const auto &m = layout.middle;
        const double mx1 = m.map.originX + m.bufWidth * m.map.scaleX;
        const double my1 =
            m.map.originY + m.bufHeight * m.map.scaleY;
        EXPECT_GE(m.map.originX, 0.0) << iter;
        EXPECT_GE(m.map.originY, 0.0) << iter;
        EXPECT_LE(m.map.originX, std::max(0.0, p.centerX - reach))
            << iter;
        EXPECT_LE(m.map.originY, std::max(0.0, p.centerY - reach))
            << iter;
        // 1e-6 slack: mx1 reconstructs x0 + buf * ((x1-x0)/buf),
        // which can land one ULP below the exact window edge.
        EXPECT_GE(mx1 + 1e-6,
                  std::min(static_cast<double>(p.frameWidth),
                           p.centerX + reach))
            << iter;
        EXPECT_GE(my1 + 1e-6,
                  std::min(static_cast<double>(p.frameHeight),
                           p.centerY + reach))
            << iter;

        EXPECT_DOUBLE_EQ(layout.peripheryPixels(),
                         m.pixels() + layout.outer.pixels())
            << iter;
    }
}

TEST(CompressedRender, QualityMatchesExpandFirstWithinFloor)
{
    const auto scene = core::testscene::chessHall(256, 256, 16);
    core::PixelPartition p;
    p.centerX = 128.0;
    p.centerY = 128.0;
    p.foveaRadius = 48.0;
    p.middleRadius = 96.0;
    p.blendBand = 12.0;
    const Vec2 shift{1.3, -0.7};

    const auto ref = core::renderFoveated(scene, 256, 256, p, 2.0,
                                          3.0, shift);
    const auto cl = core::renderFoveatedCompressed(
        scene, 256, 256, p, 2.0, 3.0, shift);

    // The transported buffers really are the aligned layout.
    EXPECT_EQ(cl.layout.middle.bufWidth % 32, 0);
    EXPECT_EQ(cl.layout.outer.bufWidth % 32, 0);

    // Fovea stays pixel-faithful (full-res layer, weight 1) and the
    // whole-frame quality sits within a pinned floor of the
    // expand-first reference — the aligned layers are never coarser
    // than requested, so compressed-direct sampling loses at most
    // the window-crop interpolation differences.
    EXPECT_GT(cl.psnrFovea, 40.0);
    EXPECT_GT(cl.psnrOverall, 20.0);
    EXPECT_GE(cl.psnrOverall, ref.psnrOverall - 1.5);
}

TEST(CompressedRender, ByteReplayableAcrossCallsAndThreads)
{
    const auto scene = core::testscene::chessHall(192, 160, 12);
    core::PixelPartition p;
    p.centerX = 80.0;
    p.centerY = 90.0;
    p.foveaRadius = 30.0;
    p.middleRadius = 64.0;
    p.blendBand = 10.0;
    const Vec2 shift{-0.9, 1.6};

    const auto a = core::renderFoveatedCompressed(scene, 192, 160, p,
                                                  2.0, 4.0, shift, 1);
    for (std::size_t threads : {1u, 2u, 8u}) {
        const auto b = core::renderFoveatedCompressed(
            scene, 192, 160, p, 2.0, 4.0, shift, threads);
        EXPECT_EQ(b.composite.maxAbsDiff(a.composite), 0.0)
            << "threads=" << threads;
        EXPECT_EQ(b.layout.middle.bufWidth, a.layout.middle.bufWidth)
            << "threads=" << threads;
    }
}

TEST(CompressedPipeline, SeedReplayAndWireBytesEngaged)
{
    core::ExperimentSpec spec;
    spec.benchmark = "Doom3-H";
    spec.numFrames = 40;
    spec.seed = 7;

    const auto a =
        core::runExperiment(core::DesignPoint::QvrCompressed, spec);
    const auto b =
        core::runExperiment(core::DesignPoint::QvrCompressed, spec);
    // Same seed -> byte-identical wire accounting.
    EXPECT_EQ(a.meanTransmittedBytes(), b.meanTransmittedBytes());
    EXPECT_GT(a.meanTransmittedBytes(), 0.0);

    // The layout actually engages: payload sizes come from aligned
    // buffer dimensions, not the analytic annulus accounting.
    const auto qvr =
        core::runExperiment(core::DesignPoint::Qvr, spec);
    EXPECT_NE(a.meanTransmittedBytes(), qvr.meanTransmittedBytes());
}

}  // namespace
}  // namespace qvr
