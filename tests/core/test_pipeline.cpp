/**
 * @file
 * Pipeline framework: issue pacing, frame accounting, aggregates,
 * and per-design sanity of the baseline pipelines.
 */

#include <gtest/gtest.h>

#include "core/pipelines_baseline.hpp"
#include "core/qvr_system.hpp"

namespace qvr::core
{
namespace
{

std::vector<scene::FrameWorkload>
workload(const std::string &bench, std::size_t n, std::uint64_t seed = 1)
{
    ExperimentSpec spec;
    spec.benchmark = bench;
    spec.numFrames = n;
    spec.seed = seed;
    return generateExperimentWorkload(spec);
}

PipelineConfig
config(const std::string &bench)
{
    ExperimentSpec spec;
    spec.benchmark = bench;
    return spec.toConfig();
}

TEST(Pipeline, FramesAdvanceMonotonically)
{
    LocalPipeline p(config("Doom3-L"));
    const auto frames = workload("Doom3-L", 40);
    const PipelineResult r = p.run(frames);
    ASSERT_EQ(r.frames.size(), 40u);
    for (std::size_t i = 1; i < r.frames.size(); i++) {
        EXPECT_GT(r.frames[i].displayTime,
                  r.frames[i - 1].displayTime);
        EXPECT_GT(r.frames[i].frameInterval, 0.0);
    }
}

TEST(Pipeline, VsyncPacedWhenFast)
{
    // Doom3-L local rendering is near budget; intervals must never
    // drop below the 90 Hz vsync period.
    LocalPipeline p(config("Doom3-L"));
    const PipelineResult r = p.run(workload("Doom3-L", 60));
    for (std::size_t i = 1; i < r.frames.size(); i++) {
        EXPECT_GE(r.frames[i].frameInterval,
                  vr_requirements::kFrameBudget - 1e-9);
    }
}

TEST(Pipeline, MtpIncludesSensorAndDisplay)
{
    LocalPipeline p(config("Doom3-L"));
    const PipelineResult r = p.run(workload("Doom3-L", 5));
    const PipelineConfig cfg = config("Doom3-L");
    for (const auto &f : r.frames) {
        EXPECT_GE(f.mtpLatency, cfg.sensorLatency +
                                    cfg.displayLatency +
                                    f.tLocalRender);
    }
}

TEST(LocalPipeline, HeavySceneMissesBudget)
{
    LocalPipeline p(config("GRID"));
    const PipelineResult r = p.run(workload("GRID", 60));
    EXPECT_LT(r.meanFps(), 45.0);
    EXPECT_GT(r.meanMtp(), vr_requirements::kMaxMotionToPhoton);
    EXPECT_EQ(r.meanTransmittedBytes(), 0.0);  // fully local
}

TEST(LocalPipeline, LightSceneNearBudget)
{
    LocalPipeline p(config("Doom3-L"));
    const PipelineResult r = p.run(workload("Doom3-L", 60));
    EXPECT_GT(r.meanFps(), 45.0);
}

TEST(RemotePipeline, NetworkDominatesLatency)
{
    // Fig. 3: transmission is ~63% of remote-only end-to-end latency.
    RemotePipeline p(config("GRID"));
    const PipelineResult r = p.run(workload("GRID", 60));
    double net = 0.0, mtp = 0.0;
    for (const auto &f : r.frames) {
        net += f.tNetwork;
        mtp += f.mtpLatency;
    }
    EXPECT_GT(net / mtp, 0.45);
    EXPECT_LT(net / mtp, 0.85);
    // Remote-only misses the 25 ms bound under Wi-Fi.
    EXPECT_GT(r.meanMtp(), vr_requirements::kMaxMotionToPhoton);
}

TEST(RemotePipeline, TransfersFullFrames)
{
    RemotePipeline p(config("GRID"));
    const PipelineResult r = p.run(workload("GRID", 30));
    // ~570 KB per stereo frame (Table 1 ballpark).
    EXPECT_GT(r.meanTransmittedBytes(), 300.0 * 1024);
    EXPECT_LT(r.meanTransmittedBytes(), 1200.0 * 1024);
}

TEST(StaticPipeline, PrefetchHidesLatencyOnHits)
{
    StaticCollabConfig collab;
    collab.mispredictThresholdDeg = 1e9;  // always hit
    StaticPipeline p(config("GRID"), collab);
    const PipelineResult r = p.run(workload("GRID", 60));
    EXPECT_LT(p.mispredictRate(), 0.2);  // only cold-start misses
    // With hits, the remote branch is mostly hidden.
    double hidden = 0.0;
    for (std::size_t i = 10; i < r.frames.size(); i++)
        hidden += r.frames[i].tRemoteBranch;
    EXPECT_LT(hidden / 50.0, 15e-3);
}

TEST(StaticPipeline, MispredictionExposesFetch)
{
    StaticCollabConfig never;
    never.mispredictThresholdDeg = -1.0;  // always miss
    StaticPipeline p(config("GRID"), never);
    const PipelineResult r = p.run(workload("GRID", 40));
    EXPECT_GT(p.mispredictRate(), 0.99);
    EXPECT_GT(r.meanMtp(), 30e-3);
}

TEST(StaticPipeline, RealisticMissRateIsSubstantial)
{
    // The paper: predicting random user motion >30 ms ahead loses
    // accuracy — misses must be common but not universal.
    StaticPipeline p(config("GRID"));
    p.run(workload("GRID", 200));
    EXPECT_GT(p.mispredictRate(), 0.1);
    EXPECT_LT(p.mispredictRate(), 0.95);
}

TEST(StaticPipeline, DoesNotReduceTransmittedData)
{
    // Fig. 13: static transfers as much as remote-only (plus depth).
    StaticPipeline st(config("GRID"));
    RemotePipeline rm(config("GRID"));
    const auto frames = workload("GRID", 40);
    const double st_bytes = st.run(frames).meanTransmittedBytes();
    const double rm_bytes = rm.run(frames).meanTransmittedBytes();
    EXPECT_GT(st_bytes, rm_bytes * 0.9);
}

TEST(PipelineResult, AggregatesSkipWarmup)
{
    PipelineResult r;
    r.warmupFrames = 2;
    for (int i = 0; i < 4; i++) {
        FrameStats s;
        s.mtpLatency = (i < 2) ? 100.0 : 10.0;
        s.frameInterval = 0.01;
        r.frames.push_back(s);
    }
    EXPECT_DOUBLE_EQ(r.meanMtp(), 10.0);
}

TEST(MeanSpeedup, AveragesPerBenchmarkRatios)
{
    PipelineResult base1, base2, cand1, cand2;
    FrameStats s;
    s.frameInterval = 0.01;
    s.mtpLatency = 40e-3;
    base1.frames.assign(50, s);
    base2.frames.assign(50, s);
    s.mtpLatency = 10e-3;
    cand1.frames.assign(50, s);
    s.mtpLatency = 20e-3;
    cand2.frames.assign(50, s);
    const double sp = meanSpeedup({base1, base2}, {cand1, cand2});
    EXPECT_NEAR(sp, (4.0 + 2.0) / 2.0, 1e-9);
}

}  // namespace
}  // namespace qvr::core
