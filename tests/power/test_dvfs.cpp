/**
 * @file
 * DVFS governor: windowing, hysteresis, clamping, and the closed
 * loop with the Q-VR pipeline (energy down, latency ~flat).
 */

#include <gtest/gtest.h>

#include "core/pipeline_foveated.hpp"
#include "core/qvr_system.hpp"
#include "power/dvfs.hpp"

namespace qvr::power
{
namespace
{

TEST(DvfsGovernor, HoldsScaleWithinWindow)
{
    DvfsConfig cfg;
    cfg.window = 4;
    DvfsGovernor g(cfg);
    for (int i = 0; i < 3; i++)
        EXPECT_DOUBLE_EQ(g.update(1e-3, 11e-3), 1.0);
    EXPECT_EQ(g.decisions(), 0u);
    g.update(1e-3, 11e-3);  // window boundary
    EXPECT_EQ(g.decisions(), 1u);
}

TEST(DvfsGovernor, ClocksDownWhenIdle)
{
    DvfsConfig cfg;
    cfg.window = 2;
    DvfsGovernor g(cfg);
    for (int i = 0; i < 40; i++)
        g.update(1e-3, 11e-3);  // ~9% utilisation
    EXPECT_LT(g.scale(), 0.7);
    EXPECT_GE(g.scale(), cfg.minScale);
}

TEST(DvfsGovernor, ClocksUpWhenSaturated)
{
    DvfsConfig cfg;
    cfg.window = 2;
    DvfsGovernor g(cfg);
    for (int i = 0; i < 40; i++)
        g.update(1e-3, 11e-3);
    const double low = g.scale();
    for (int i = 0; i < 40; i++)
        g.update(11e-3, 11e-3);  // 100% utilisation
    EXPECT_GT(g.scale(), low);
    EXPECT_DOUBLE_EQ(g.scale(), cfg.maxScale);
}

TEST(DvfsGovernor, HysteresisHoldsNearTarget)
{
    DvfsConfig cfg;
    cfg.window = 2;
    DvfsGovernor g(cfg);
    // Exactly on target: neither direction.
    for (int i = 0; i < 20; i++)
        g.update(cfg.targetUtilisation * 11e-3, 11e-3);
    EXPECT_DOUBLE_EQ(g.scale(), 1.0);
}

TEST(DvfsGovernorDeath, BadConfigPanics)
{
    DvfsConfig cfg;
    cfg.minScale = 0.0;
    EXPECT_DEATH(DvfsGovernor{cfg}, "scale range");
}

TEST(DvfsClosedLoop, SavesEnergyAtSmallLatencyCost)
{
    // Q-VR leaves the GPU under-utilised on light scenes; the
    // governor should harvest that as energy without breaking the
    // latency budget.
    core::ExperimentSpec spec;
    spec.benchmark = "Doom3-L";
    spec.numFrames = 300;
    const auto workload = core::generateExperimentWorkload(spec);

    core::FoveatedPipeline fixed(spec.toConfig(),
                                 core::FoveatedPolicy::qvr());
    const auto fixed_r = fixed.run(workload);

    core::FoveatedPipeline governed(spec.toConfig(),
                                    core::FoveatedPolicy::qvr());
    DvfsGovernor governor;
    core::PipelineResult governed_r;
    governed_r.design = "Q-VR+DVFS";
    for (const auto &frame : workload) {
        const core::FrameStats s = governed.step(frame);
        governed_r.frames.push_back(s);
        governed.setFrequencyScale(
            governor.update(s.gpuBusy, s.frameInterval));
    }

    EXPECT_LT(governed_r.meanEnergy(), fixed_r.meanEnergy() * 0.95);
    EXPECT_LT(governed_r.meanMtp(), fixed_r.meanMtp() * 1.30);
    EXPECT_LT(governor.scale(), 1.0);  // actually clocked down
}

TEST(DvfsClosedLoop, GovernorAndLiwcCooperate)
{
    // Emergent co-design behaviour: as the governor sheds clock,
    // LIWC re-balances by shrinking the fovea (offloading work), so
    // the system rides down to the energy-optimal point WITHOUT
    // losing the 90 Hz requirement.
    core::ExperimentSpec spec;
    spec.benchmark = "GRID";
    spec.numFrames = 250;
    const auto workload = core::generateExperimentWorkload(spec);

    core::FoveatedPipeline fixed(spec.toConfig(),
                                 core::FoveatedPolicy::qvr());
    const auto fixed_r = fixed.run(workload);

    core::FoveatedPipeline governed(spec.toConfig(),
                                    core::FoveatedPolicy::qvr());
    DvfsGovernor governor;
    core::PipelineResult governed_r;
    for (const auto &frame : workload) {
        const core::FrameStats s = governed.step(frame);
        governed_r.frames.push_back(s);
        governed.setFrequencyScale(
            governor.update(s.gpuBusy, s.frameInterval));
    }

    // Clock went down, the controller compensated with a smaller
    // fovea, and the frame-rate requirement survived.
    EXPECT_LT(governor.scale(), 0.8);
    EXPECT_LT(governed_r.meanE1(), fixed_r.meanE1());
    EXPECT_GT(governed_r.meanFps(), 85.0);
}

}  // namespace
}  // namespace qvr::power
