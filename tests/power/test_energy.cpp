/**
 * @file
 * Energy model: DVFS scaling, radio profiles and tails, accelerator
 * budgets from the paper's McPAT numbers.
 */

#include <gtest/gtest.h>

#include "power/energy.hpp"

namespace qvr::power
{
namespace
{

TEST(EnergyModel, GpuEnergyCubicInFrequency)
{
    EnergyModel m;
    const Joules full = m.gpuEnergy(10e-3, 11e-3, 1.0);
    const Joules slow = m.gpuEnergy(10e-3, 11e-3, 0.5);
    // Dynamic part drops 8x, static 2x: well below half overall.
    EXPECT_LT(slow, full * 0.35);
    EXPECT_GT(slow, 0.0);
}

TEST(EnergyModel, GpuBusyVsIdleSplit)
{
    EnergyModel m;
    const Joules busy = m.gpuEnergy(11e-3, 11e-3, 1.0);
    const Joules idle = m.gpuEnergy(0.0, 11e-3, 1.0);
    // Idle frame burns only static power.
    EXPECT_NEAR(idle, 0.5 * 11e-3, 1e-6);
    EXPECT_GT(busy, idle * 5.0);
}

TEST(EnergyModel, RadioTailCappedByFrameTime)
{
    PowerConfig cfg;
    cfg.radio = RadioProfile::forNetwork("4G LTE");
    EnergyModel m(cfg);
    // Short frame: tail cannot exceed remaining frame time.
    const Joules short_frame = m.radioEnergy(5e-3, 11e-3);
    const Joules expected = cfg.radio.activeReceiveW * 5e-3 +
                            cfg.radio.tailW * 6e-3;
    EXPECT_NEAR(short_frame, expected, expected * 1e-9);
    // No activity, no energy.
    EXPECT_DOUBLE_EQ(m.radioEnergy(0.0, 11e-3), 0.0);
}

TEST(EnergyModel, LteCostlierThanWifi)
{
    PowerConfig wifi;
    wifi.radio = RadioProfile::forNetwork("Wi-Fi");
    PowerConfig lte;
    lte.radio = RadioProfile::forNetwork("4G LTE");
    const Joules e_wifi = EnergyModel(wifi).radioEnergy(8e-3, 11e-3);
    const Joules e_lte = EnergyModel(lte).radioEnergy(8e-3, 11e-3);
    EXPECT_GT(e_lte, e_wifi);
}

TEST(EnergyModel, AcceleratorBudgetsMatchPaper)
{
    // Section 4.3: LIWC <= 25 mW, UCA 94 mW per instance, 2 instances.
    EnergyModel m;
    const Seconds frame = 11e-3;
    const Joules liwc_only = m.acceleratorEnergy(frame, true, false);
    const Joules uca_only = m.acceleratorEnergy(frame, false, true);
    EXPECT_NEAR(liwc_only, 0.025 * frame, 1e-9);
    EXPECT_NEAR(uca_only, 2.0 * 0.094 * frame, 1e-9);
    EXPECT_NEAR(m.acceleratorEnergy(frame, true, true),
                liwc_only + uca_only, 1e-12);
    EXPECT_DOUBLE_EQ(m.acceleratorEnergy(frame, false, false), 0.0);
}

TEST(EnergyModel, AcceleratorsAreNoiseNextToGpu)
{
    // The co-design only makes sense if LIWC+UCA cost far less than
    // the GPU work they displace.
    EnergyModel m;
    const Joules accel = m.acceleratorEnergy(11e-3, true, true);
    const Joules gpu_ms = m.gpuEnergy(1e-3, 11e-3, 1.0);
    EXPECT_LT(accel, gpu_ms);
}

TEST(FrameEnergy, TotalSumsComponents)
{
    FrameEnergy e;
    e.gpu = 1.0;
    e.radio = 2.0;
    e.vpu = 3.0;
    e.accelerators = 4.0;
    EXPECT_DOUBLE_EQ(e.total(), 10.0);
}

TEST(RadioProfile, UnknownFallsBackToWifi)
{
    const RadioProfile p = RadioProfile::forNetwork("carrier-pigeon");
    EXPECT_DOUBLE_EQ(p.activeReceiveW, 0.8);
}

}  // namespace
}  // namespace qvr::power
