/**
 * @file
 * Seed-pinning regression: SessionDesign::Qvr and ::Static outputs
 * must remain byte-identical to pre-refactor binaries.
 *
 * The golden values below are hexfloats captured from the session
 * engine BEFORE the timing layer was extracted into
 * collab/session_model.cpp and the submission-seq assignment moved
 * into the engines' dispatch loops.  They pin the refactor (and any
 * future one) to bit-exact preservation: a change that perturbs any
 * double in any frame of these four configurations fails here with
 * the exact old/new bits.
 *
 * Regenerating these constants is only legitimate when an
 * intentional MODEL change lands (a new timing term, a constant
 * recalibration) — never to make a refactor pass.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "collab/session.hpp"

namespace qvr::collab
{
namespace
{

struct UserGolden
{
    double meanMtp;
    double meanFps;
    double meanBytes;
    double lastDisplayTime;
    double lastMtp;
    double lastE1;
    double midDisplayTime;
    double midInterval;
};

struct SessionGolden
{
    const char *tag;
    SessionDesign design;
    std::size_t users;
    std::size_t frames;
    std::uint64_t seed;
    const char *benchmark;
    double egressUtilisation;
    double serverUtilisation;
    std::vector<UserGolden> perUser;
};

/** Hexfloat literal -> double (exact; no decimal rounding). */
double
hx(const char *s)
{
    return std::strtod(s, nullptr);
}

std::vector<SessionGolden>
goldens()
{
    return {
        {"qvr-3u-60f-s1-HL2H", SessionDesign::Qvr, 3, 60, 1, "HL2-H",
         hx("0x1.0155d21b7796bp-2"), hx("0x1.778cd3ebc4e77p-4"),
         {{hx("0x1.553ddd95096efp-6"), hx("0x1.ba76cf6777695p+6"),
           hx("0x1.6fa4p+16"), hx("0x1.15d186799675dp-1"),
           hx("0x1.49bd6a6345a6p-6"), hx("0x1.cp+4"),
           hx("0x1.1f18bccad15ddp-2"), hx("0x1.25ab4a4789fap-7")},
          {hx("0x1.58f2bd0eb3d6cp-6"), hx("0x1.be54745911975p+6"),
           hx("0x1.6e4f333333333p+16"), hx("0x1.15963bd582744p-1"),
           hx("0x1.5250b9e87406p-6"), hx("0x1.dp+4"),
           hx("0x1.20aa4269f396p-2"), hx("0x1.19b5a8eb8804p-7")},
          {hx("0x1.58777b9aec1adp-6"), hx("0x1.be7008b896a49p+6"),
           hx("0x1.6eadddddddddep+16"), hx("0x1.18d83c6288acap-1"),
           hx("0x1.52f96586997ep-6"), hx("0x1.cp+4"),
           hx("0x1.27f590c4c1be5p-2"), hx("0x1.307f0fd7c9d2p-7")}}},
        {"static-3u-60f-s1-HL2H", SessionDesign::Static, 3, 60, 1,
         "HL2-H", hx("0x1.214e0ac81c49dp-2"),
         hx("0x1.4827011aecd6bp-5"),
         {{hx("0x1.876b2d84a685cp-5"), hx("0x1.1602790566e75p+4"),
           hx("0x1.491p+19"), hx("0x1.b3e528769bad9p+1"),
           hx("0x1.876737fed016p-5"), 0.0,
           hx("0x1.bcfc60b7fda4fp+0"), hx("0x1.e63a099c297ep-5")},
          {hx("0x1.878f181a8702p-5"), hx("0x1.20f7701227e7cp+4"),
           hx("0x1.491p+19"), hx("0x1.b200d3f6aaa5cp+1"),
           hx("0x1.8743ceee155ep-5"), 0.0,
           hx("0x1.c98b81e04bacfp+0"), hx("0x1.d8e56e1484c6p-5")},
          {hx("0x1.8702f18340a6cp-5"), hx("0x1.1921bf2d96d7cp+4"),
           hx("0x1.491p+19"), hx("0x1.b7ab0e8a80031p+1"),
           hx("0x1.874a7f8c5852p-5"), 0.0,
           hx("0x1.c99cea49c87d2p+0"), hx("0x1.ebbd976f3546p-5")}}},
        {"qvr-5u-45f-s7-Doom3L", SessionDesign::Qvr, 5, 45, 7,
         "Doom3-L", hx("0x1.1aaf9973d5752p-2"),
         hx("0x1.8f35bcf7600eap-4"),
         {{hx("0x1.fccbd37224527p-7"), hx("0x1.3436aeda87f5cp+7"),
           hx("0x1.36d4p+15"), hx("0x1.1e474a5ab51d2p-2"),
           hx("0x1.fb1f60329a65fp-7"), hx("0x1.28p+5"),
           hx("0x1.1c5f7338703ffp-3"), hx("0x1.7e516475f5c6p-8")},
          {hx("0x1.ff1c081619ac2p-7"), hx("0x1.3695cc004a3a7p+7"),
           hx("0x1.3838p+15"), hx("0x1.1d1bb50123a68p-2"),
           hx("0x1.f9cc3f361e93fp-7"), hx("0x1.28p+5"),
           hx("0x1.1d3e2980b66cbp-3"), hx("0x1.74cbf76764c8p-8")},
          {hx("0x1.00b7dc855270bp-6"), hx("0x1.40d7eebe8b4f6p+7"),
           hx("0x1.3bfeaaaaaaaabp+15"), hx("0x1.1aae1b396b6ddp-2"),
           hx("0x1.f71781be373dfp-7"), hx("0x1.28p+5"),
           hx("0x1.1eaea5f2cf295p-3"), hx("0x1.7ca0fb64481ep-8")},
          {hx("0x1.fe23d1d213a94p-7"), hx("0x1.422806ad9409ap+7"),
           hx("0x1.3fb4p+15"), hx("0x1.1f69ec90a1ab3p-2"),
           hx("0x1.fa6c4b2a0009fp-7"), hx("0x1.28p+5"),
           hx("0x1.27942d8d4d794p-3"), hx("0x1.973c546c3f6p-8")},
          {hx("0x1.fb24eee899f19p-7"), hx("0x1.37ef7781f6521p+7"),
           hx("0x1.399f777777777p+15"), hx("0x1.1d91102c9e5a3p-2"),
           hx("0x1.04039a0e9a3fp-6"), hx("0x1.28p+5"),
           hx("0x1.1f5732bc6403cp-3"), hx("0x1.90bad2c1dec8p-8")}}},
        {"static-2u-45f-s7-GRID", SessionDesign::Static, 2, 45, 7,
         "GRID", hx("0x1.727a6c53cb85fp-3"),
         hx("0x1.5b405907beac1p-5"),
         {{hx("0x1.d434205acffafp-5"), hx("0x1.0da864a6a3f42p+4"),
           hx("0x1.491p+19"), hx("0x1.56e242b9f3102p+1"),
           hx("0x1.d461c75193dap-5"), 0.0,
           hx("0x1.60b66402abb4bp+0"), hx("0x1.eb708a5834ep-5")},
          {hx("0x1.d8ab7375a73f3p-5"), hx("0x1.1775080e674e2p+4"),
           hx("0x1.491p+19"), hx("0x1.5755c30ad12bp+1"),
           hx("0x1.d8a0603e8a3ep-5"), 0.0,
           hx("0x1.680ee1d4eeaacp+0"), hx("0x1.16c43db41ec8p-4")}}},
    };
}

TEST(SessionGoldenValues, QvrAndStaticAreByteIdenticalToPrePrBinaries)
{
    for (const SessionGolden &g : goldens()) {
        SessionConfig cfg;
        cfg.design = g.design;
        cfg.users = g.users;
        cfg.numFrames = g.frames;
        cfg.seed = g.seed;
        cfg.benchmark = g.benchmark;
        const SessionResult r = runSession(cfg);

        ASSERT_EQ(r.perUser.size(), g.perUser.size()) << g.tag;
        for (std::size_t u = 0; u < g.perUser.size(); u++) {
            const UserGolden &gu = g.perUser[u];
            const auto &fr = r.perUser[u].frames;
            ASSERT_EQ(fr.size(), g.frames) << g.tag;
            // EXPECT_EQ on doubles: bit-for-bit, no tolerance.
            EXPECT_EQ(r.perUser[u].meanMtp(), gu.meanMtp)
                << g.tag << " user " << u;
            EXPECT_EQ(r.perUser[u].meanFps(), gu.meanFps)
                << g.tag << " user " << u;
            EXPECT_EQ(r.perUser[u].meanTransmittedBytes(),
                      gu.meanBytes)
                << g.tag << " user " << u;
            EXPECT_EQ(fr.back().displayTime, gu.lastDisplayTime)
                << g.tag << " user " << u;
            EXPECT_EQ(fr.back().mtpLatency, gu.lastMtp)
                << g.tag << " user " << u;
            EXPECT_EQ(fr.back().e1, gu.lastE1)
                << g.tag << " user " << u;
            EXPECT_EQ(fr[g.frames / 2].displayTime,
                      gu.midDisplayTime)
                << g.tag << " user " << u;
            EXPECT_EQ(fr[g.frames / 2].frameInterval,
                      gu.midInterval)
                << g.tag << " user " << u;
        }
        EXPECT_EQ(r.egressUtilisation, g.egressUtilisation) << g.tag;
        EXPECT_EQ(r.serverUtilisation, g.serverUtilisation) << g.tag;
    }
}

}  // namespace
}  // namespace qvr::collab
