/**
 * @file
 * Multi-user collaborative sessions: determinism, contention
 * behaviour, Q-VR-vs-Static user capacity, fairness.
 */

#include <gtest/gtest.h>

#include "collab/session.hpp"

namespace qvr::collab
{
namespace
{

SessionConfig
base(std::size_t users, SessionDesign design = SessionDesign::Qvr)
{
    SessionConfig cfg;
    cfg.users = users;
    cfg.design = design;
    cfg.benchmark = "HL2-H";
    cfg.numFrames = 120;
    return cfg;
}

TEST(CollabSession, SingleUserMatchesStandaloneBallpark)
{
    // One user on an idle shared server should behave like the
    // standalone Q-VR pipeline (same order of FPS/MTP).
    const SessionResult r = runSession(base(1));
    ASSERT_EQ(r.perUser.size(), 1u);
    EXPECT_GT(r.meanFps(), 80.0);
    EXPECT_LT(r.meanMtp(), 35e-3);
}

TEST(CollabSession, DeterministicInSeed)
{
    const SessionResult a = runSession(base(3));
    const SessionResult b = runSession(base(3));
    ASSERT_EQ(a.perUser.size(), b.perUser.size());
    for (std::size_t i = 0; i < a.perUser.size(); i++) {
        EXPECT_DOUBLE_EQ(a.perUser[i].meanMtp(),
                         b.perUser[i].meanMtp());
    }
}

TEST(CollabSession, UsersGetDistinctTraces)
{
    const SessionResult r = runSession(base(3));
    EXPECT_NE(r.perUser[0].meanMtp(), r.perUser[1].meanMtp());
    EXPECT_NE(r.perUser[1].meanE1(), r.perUser[2].meanE1());
}

TEST(CollabSession, MoreUsersRaiseSharedUtilisation)
{
    const SessionResult few = runSession(base(2));
    const SessionResult many = runSession(base(8));
    EXPECT_GT(many.egressUtilisation, few.egressUtilisation);
    EXPECT_GT(many.serverUtilisation, few.serverUtilisation);
    EXPECT_LE(many.egressUtilisation, 1.0 + 1e-9);
}

TEST(CollabSession, QvrScalesFurtherThanStatic)
{
    // The headline collaborative result: Q-VR's ~6x smaller per-user
    // downlink translates into strictly more users per edge server.
    const double kMinFps = 60.0;
    SessionConfig qvr_cfg = base(1, SessionDesign::Qvr);
    SessionConfig static_cfg = base(1, SessionDesign::Static);
    const std::size_t qvr_cap =
        findUserCapacity(qvr_cfg, kMinFps, 16);
    const std::size_t static_cap =
        findUserCapacity(static_cfg, kMinFps, 16);
    EXPECT_GT(qvr_cap, static_cap);
    EXPECT_GE(qvr_cap, 4u);
}

TEST(CollabSession, StaticIsDownlinkBound)
{
    // Static ships ~700 KB/frame/user: each user's ~134 Mbps
    // effective last mile alone caps them near 23 FPS, and the
    // shared egress carries ~0.4 of its 1 Gbps at 4 users — far
    // more than Q-VR needs for the same population.
    const SessionResult st =
        runSession(base(4, SessionDesign::Static));
    EXPECT_LT(st.meanFps(), 60.0);
    const SessionResult qv = runSession(base(4, SessionDesign::Qvr));
    // Per displayed frame, static ships several times the bytes
    // (time-averaged egress utilisation looks closer because Q-VR
    // sustains ~5x the frame rate through the same pipe).
    EXPECT_GT(st.aggregateBytesPerFrame(),
              qv.aggregateBytesPerFrame() * 4.0);
}

TEST(CollabSession, QvrKeepsFairnessUnderLoad)
{
    const SessionResult r = runSession(base(6));
    // Slowest user within 40% of the mean: the shared queues are
    // FIFO, no user starves.
    EXPECT_GT(r.worstUserFps(), r.meanFps() * 0.6);
}

TEST(CollabSession, AggregateBytesScaleWithUsers)
{
    const SessionResult two = runSession(base(2));
    const SessionResult four = runSession(base(4));
    EXPECT_GT(four.aggregateBytesPerFrame(),
              two.aggregateBytesPerFrame() * 1.5);
}

TEST(CollabSession, FasterLastMileHelpsStatic)
{
    // Static is bound by each user's own downlink, so upgrading the
    // last mile (not the egress pipe) is what raises its FPS.
    SessionConfig slow = base(3, SessionDesign::Static);
    SessionConfig fast = slow;
    fast.lastMile = net::ChannelConfig::early5g();
    EXPECT_GT(runSession(fast).meanFps(),
              runSession(slow).meanFps() * 1.3);

    // A bigger egress pipe alone does NOT help the last-mile-bound
    // design.
    SessionConfig big_egress = slow;
    big_egress.serverEgress = fromMbps(4000.0);
    EXPECT_LT(runSession(big_egress).meanFps(),
              runSession(slow).meanFps() * 1.1);
}

TEST(CollabSessionDeath, ZeroUsersIsFatal)
{
    SessionConfig cfg = base(1);
    cfg.users = 0;
    EXPECT_DEATH(runSession(cfg), "at least one user");
}

}  // namespace
}  // namespace qvr::collab
