/**
 * @file
 * Multi-user collaborative sessions: determinism, contention
 * behaviour, Q-VR-vs-Static user capacity, fairness.
 */

#include <gtest/gtest.h>

#include "collab/session.hpp"

namespace qvr::collab
{
namespace
{

SessionConfig
base(std::size_t users, SessionDesign design = SessionDesign::Qvr)
{
    SessionConfig cfg;
    cfg.users = users;
    cfg.design = design;
    cfg.benchmark = "HL2-H";
    cfg.numFrames = 120;
    return cfg;
}

TEST(CollabSession, SingleUserMatchesStandaloneBallpark)
{
    // One user on an idle shared server should behave like the
    // standalone Q-VR pipeline (same order of FPS/MTP).
    const SessionResult r = runSession(base(1));
    ASSERT_EQ(r.perUser.size(), 1u);
    EXPECT_GT(r.meanFps(), 80.0);
    EXPECT_LT(r.meanMtp(), 35e-3);
}

TEST(CollabSession, DeterministicInSeed)
{
    const SessionResult a = runSession(base(3));
    const SessionResult b = runSession(base(3));
    ASSERT_EQ(a.perUser.size(), b.perUser.size());
    for (std::size_t i = 0; i < a.perUser.size(); i++) {
        EXPECT_DOUBLE_EQ(a.perUser[i].meanMtp(),
                         b.perUser[i].meanMtp());
    }
}

TEST(CollabSession, UsersGetDistinctTraces)
{
    const SessionResult r = runSession(base(3));
    EXPECT_NE(r.perUser[0].meanMtp(), r.perUser[1].meanMtp());
    EXPECT_NE(r.perUser[1].meanE1(), r.perUser[2].meanE1());
}

TEST(CollabSession, MoreUsersRaiseSharedUtilisation)
{
    const SessionResult few = runSession(base(2));
    const SessionResult many = runSession(base(8));
    EXPECT_GT(many.egressUtilisation, few.egressUtilisation);
    EXPECT_GT(many.serverUtilisation, few.serverUtilisation);
    EXPECT_LE(many.egressUtilisation, 1.0 + 1e-9);
}

TEST(CollabSession, QvrScalesFurtherThanStatic)
{
    // The headline collaborative result: Q-VR's ~6x smaller per-user
    // downlink translates into strictly more users per edge server.
    const double kMinFps = 60.0;
    SessionConfig qvr_cfg = base(1, SessionDesign::Qvr);
    SessionConfig static_cfg = base(1, SessionDesign::Static);
    const std::size_t qvr_cap =
        findUserCapacity(qvr_cfg, kMinFps, 16);
    const std::size_t static_cap =
        findUserCapacity(static_cfg, kMinFps, 16);
    EXPECT_GT(qvr_cap, static_cap);
    EXPECT_GE(qvr_cap, 4u);
}

TEST(CollabSession, StaticIsDownlinkBound)
{
    // Static ships ~700 KB/frame/user: each user's ~134 Mbps
    // effective last mile alone caps them near 23 FPS, and the
    // shared egress carries ~0.4 of its 1 Gbps at 4 users — far
    // more than Q-VR needs for the same population.
    const SessionResult st =
        runSession(base(4, SessionDesign::Static));
    EXPECT_LT(st.meanFps(), 60.0);
    const SessionResult qv = runSession(base(4, SessionDesign::Qvr));
    // Per displayed frame, static ships several times the bytes
    // (time-averaged egress utilisation looks closer because Q-VR
    // sustains ~5x the frame rate through the same pipe).
    EXPECT_GT(st.aggregateBytesPerFrame(),
              qv.aggregateBytesPerFrame() * 4.0);
}

TEST(CollabSession, QvrKeepsFairnessUnderLoad)
{
    const SessionResult r = runSession(base(6));
    // Slowest user within 40% of the mean: the shared queues are
    // FIFO, no user starves.
    EXPECT_GT(r.worstUserFps(), r.meanFps() * 0.6);
}

TEST(CollabSession, AggregateBytesScaleWithUsers)
{
    const SessionResult two = runSession(base(2));
    const SessionResult four = runSession(base(4));
    EXPECT_GT(four.aggregateBytesPerFrame(),
              two.aggregateBytesPerFrame() * 1.5);
}

TEST(CollabSession, FasterLastMileHelpsStatic)
{
    // Static is bound by each user's own downlink, so upgrading the
    // last mile (not the egress pipe) is what raises its FPS.
    SessionConfig slow = base(3, SessionDesign::Static);
    SessionConfig fast = slow;
    fast.lastMile = net::ChannelConfig::early5g();
    EXPECT_GT(runSession(fast).meanFps(),
              runSession(slow).meanFps() * 1.3);

    // A bigger egress pipe alone does NOT help the last-mile-bound
    // design.
    SessionConfig big_egress = slow;
    big_egress.serverEgress = fromMbps(4000.0);
    EXPECT_LT(runSession(big_egress).meanFps(),
              runSession(slow).meanFps() * 1.1);
}

TEST(CollabSessionDeath, ZeroUsersIsFatal)
{
    SessionConfig cfg = base(1);
    cfg.users = 0;
    EXPECT_DEATH(runSession(cfg), "at least one user");
}

TEST(CollabSessionDeath, ValidateRejectsEachBadField)
{
    {
        SessionConfig cfg = base(1);
        cfg.numFrames = 0;
        EXPECT_DEATH(runSession(cfg), "at least one frame");
    }
    {
        SessionConfig cfg = base(1);
        cfg.totalChiplets = 0;
        EXPECT_DEATH(runSession(cfg), "at least one chiplet");
    }
    {
        // The formerly latent division by zero in the pool sizing:
        // now a diagnosable panic instead of undefined behaviour.
        SessionConfig cfg = base(1);
        cfg.chipletsPerRequest = 0;
        EXPECT_DEATH(runSession(cfg),
                     "chiplets per request must be at least one");
    }
    {
        SessionConfig cfg = base(1);
        cfg.chipletsPerRequest = cfg.totalChiplets + 1;
        EXPECT_DEATH(runSession(cfg),
                     "cannot span more chiplets than the pool");
    }
    {
        SessionConfig cfg = base(1);
        cfg.serverEgress = 0.0;
        EXPECT_DEATH(runSession(cfg),
                     "server egress must be positive");
    }
}

TEST(CollabSessionDeath, ValidateRejectsBadServingFields)
{
    {
        SessionConfig cfg = base(1, SessionDesign::Served);
        cfg.renderDeadline = 0.0;
        EXPECT_DEATH(runSession(cfg),
                     "render deadline must be positive");
    }
    {
        SessionConfig cfg = base(1, SessionDesign::Served);
        cfg.shedPeripheryScale = 0.0;
        EXPECT_DEATH(runSession(cfg),
                     "shed periphery scale outside");
    }
    {
        SessionConfig cfg = base(1, SessionDesign::Served);
        cfg.serving.shards = 0;
        EXPECT_DEATH(runSession(cfg), "at least one shard");
    }
    {
        SessionConfig cfg = base(1, SessionDesign::Served);
        cfg.serving.admission.qualityStep = 2.0;
        EXPECT_DEATH(runSession(cfg), "quality step outside");
    }
}

TEST(CollabSession, IssueOrderIsStrictWeakAndSorted)
{
    // The round scheduler sorts by issue clock with plain less-than
    // and NO tie-break — pinned here: the output is a permutation
    // whose keys are non-decreasing.
    const std::vector<Seconds> issue = {5.0, 1.0, 3.0, 1.0,
                                        4.0, 2.0, 3.0};
    const auto order = issueOrder(issue);
    ASSERT_EQ(order.size(), issue.size());
    std::vector<bool> seen(issue.size(), false);
    for (const std::size_t i : order) {
        ASSERT_LT(i, issue.size());
        EXPECT_FALSE(seen[i]);  // a permutation: no index twice
        seen[i] = true;
    }
    for (std::size_t k = 1; k < order.size(); k++)
        EXPECT_LE(issue[order[k - 1]], issue[order[k]]);
}

TEST(CollabSession, IssueOrderIsByteIdenticalAcrossRuns)
{
    // Equal keys leave the comparator indifferent; the schedule must
    // still be the same bytes on every call (std::sort is
    // deterministic for a fixed input, and nothing else — RNG, time,
    // addresses — may leak into the order).
    const std::vector<Seconds> issue = {2.0, 2.0, 2.0, 1.0, 1.0,
                                        3.0, 2.0, 1.0, 2.0};
    const auto first = issueOrder(issue);
    for (int rep = 0; rep < 32; rep++)
        EXPECT_EQ(issueOrder(issue), first);
}

TEST(CollabSession, ServedRunsAndReportsSlo)
{
    SessionConfig cfg = base(4, SessionDesign::Served);
    cfg.serving.admission.enabled = true;
    const SessionResult r = runSession(cfg);
    ASSERT_EQ(r.perUser.size(), 4u);
    ASSERT_EQ(r.perUserSlo.size(), 4u);
    ASSERT_EQ(r.shardUtilisation.size(), 1u);
    EXPECT_EQ(r.perUser[0].design, "Served");
    EXPECT_GT(r.meanFps(), 60.0);
    EXPECT_EQ(r.serveCounters.submitted,
              4u * static_cast<std::uint64_t>(cfg.numFrames));
    EXPECT_EQ(r.serveCounters.admitted + r.serveCounters.shed,
              r.serveCounters.submitted);
    // Admission contract: nothing admitted may miss.
    EXPECT_EQ(r.serveCounters.deadlineMisses, 0u);
    for (const auto &slo : r.perUserSlo) {
        EXPECT_GE(slo.p99QueueWait, slo.p50QueueWait);
        EXPECT_DOUBLE_EQ(slo.deadlineMissRate, 0.0);
    }
}

TEST(CollabSession, ServedUnderLoadShedsInsteadOfStalling)
{
    // Pool-bound operating point, oversubscribed: FIFO without
    // admission sinks below 90 Hz, admission holds the frame rate by
    // degrading quality.
    SessionConfig cfg = base(12, SessionDesign::Served);
    cfg.totalChiplets = 4;
    cfg.chipletsPerRequest = 2;
    cfg.serverEgress = fromMbps(2000.0);
    cfg.serving.scheduler.policy = serve::SchedulerPolicy::Edf;

    SessionConfig adm_cfg = cfg;
    adm_cfg.serving.admission.enabled = true;

    const SessionResult fifo = runSession(cfg);
    const SessionResult adm = runSession(adm_cfg);
    EXPECT_GT(adm.worstUserFps(), fifo.worstUserFps());
    EXPECT_GT(adm.serveCounters.shed + adm.serveCounters.downgraded,
              0u);
    EXPECT_EQ(adm.serveCounters.deadlineMisses, 0u);
    EXPECT_GT(fifo.serveCounters.deadlineMisses, 0u);
}

TEST(CollabSession, QvrResultsUnaffectedByServingConfig)
{
    // The serving stack must be dead code for the Qvr design: byte-
    // compatible results whatever the serving knobs say.
    SessionConfig plain = base(3, SessionDesign::Qvr);
    SessionConfig tweaked = plain;
    tweaked.serving.shards = 4;
    tweaked.serving.admission.enabled = true;
    tweaked.serving.batching.enabled = true;
    tweaked.renderDeadline = 1e-3;
    const SessionResult a = runSession(plain);
    const SessionResult b = runSession(tweaked);
    for (std::size_t i = 0; i < a.perUser.size(); i++) {
        ASSERT_EQ(a.perUser[i].frames.size(),
                  b.perUser[i].frames.size());
        for (std::size_t f = 0; f < a.perUser[i].frames.size(); f++) {
            EXPECT_DOUBLE_EQ(a.perUser[i].frames[f].displayTime,
                             b.perUser[i].frames[f].displayTime);
            EXPECT_DOUBLE_EQ(a.perUser[i].frames[f].mtpLatency,
                             b.perUser[i].frames[f].mtpLatency);
        }
    }
}

}  // namespace
}  // namespace qvr::collab
