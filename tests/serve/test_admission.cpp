/**
 * @file
 * AdmissionController ladder walk and BatchComposer coalescing rules.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "serve/admission.hpp"
#include "serve/batch.hpp"

namespace qvr::serve
{
namespace
{

RenderRequest
make(Seconds arrival, Seconds deadline, Seconds service)
{
    RenderRequest r;
    r.arrival = arrival;
    r.deadline = deadline;
    r.service = service;
    return r;
}

AdmissionConfig
enabledConfig()
{
    AdmissionConfig cfg;
    cfg.enabled = true;
    return cfg;
}

TEST(Admission, DisabledAlwaysAdmitsAtFullQuality)
{
    AdmissionController adm(AdmissionConfig{});
    // Hopeless deadline, still admitted at rung 0.
    const AdmissionDecision d =
        adm.decide(make(0.0, 0.001, 1.0), 5.0);
    EXPECT_TRUE(d.admit);
    EXPECT_EQ(d.level, 0u);
    EXPECT_DOUBLE_EQ(d.service, 1.0);
    EXPECT_DOUBLE_EQ(d.qualityFactor, 1.0);
}

TEST(Admission, ComfortableDeadlineStaysFullQuality)
{
    AdmissionController adm(enabledConfig());
    const AdmissionDecision d =
        adm.decide(make(0.0, 10.0, 1.0), 0.0);
    EXPECT_TRUE(d.admit);
    EXPECT_EQ(d.level, 0u);
    EXPECT_DOUBLE_EQ(d.service, 1.0);
    EXPECT_DOUBLE_EQ(d.resolutionScale, 1.0);
}

TEST(Admission, TightDeadlinePicksShallowestFeasibleRung)
{
    AdmissionController adm(enabledConfig());
    // Rung 1 shrinks a 1 s service to ~fixed + 0.85^2 of the rest;
    // choose a deadline only rung 1 can meet.
    const Seconds rung1 = adm.serviceAtLevel(1.0, 1);
    ASSERT_LT(rung1, 1.0);
    const AdmissionDecision d = adm.decide(
        make(0.0, (1.0 + rung1) / 2.0, 1.0), 0.0);
    EXPECT_TRUE(d.admit);
    EXPECT_EQ(d.level, 1u);
    EXPECT_DOUBLE_EQ(d.service, rung1);
    EXPECT_DOUBLE_EQ(d.qualityFactor, 0.8);
    EXPECT_DOUBLE_EQ(d.resolutionScale, 0.85);
    // The contract: predicted completion meets the deadline.
    EXPECT_LE(0.0 + d.service, (1.0 + rung1) / 2.0);
}

TEST(Admission, HopelessDeadlineSheds)
{
    AdmissionController adm(enabledConfig());
    const AdmissionDecision d =
        adm.decide(make(0.0, 0.0001, 1.0), 0.0);
    EXPECT_FALSE(d.admit);
    EXPECT_EQ(d.level, adm.config().maxLevel);
    EXPECT_DOUBLE_EQ(d.service, 0.0);
}

TEST(Admission, LateStartCausesTheShed)
{
    AdmissionController adm(enabledConfig());
    const RenderRequest r = make(0.0, 1.0, 0.5);
    EXPECT_TRUE(adm.decide(r, 0.0).admit);
    EXPECT_FALSE(adm.decide(r, 0.999).admit);
}

TEST(Admission, ServiceLadderIsMonotoneWithFixedFloor)
{
    AdmissionController adm(enabledConfig());
    Seconds prev = adm.serviceAtLevel(1e-3, 0);
    EXPECT_DOUBLE_EQ(prev, 1e-3);
    for (std::uint32_t level = 1; level <= 6; level++) {
        const Seconds s = adm.serviceAtLevel(1e-3, level);
        EXPECT_LE(s, prev);
        EXPECT_GE(s, adm.config().fixedOverhead);
        prev = s;
    }
    // Service below the fixed floor is never inflated.
    EXPECT_DOUBLE_EQ(adm.serviceAtLevel(1e-5, 3), 1e-5);
}

TEST(Admission, NoDeadlineAlwaysAdmitsFullQuality)
{
    AdmissionController adm(enabledConfig());
    const AdmissionDecision d =
        adm.decide(make(0.0, kNoDeadline, 1.0), 1e9);
    EXPECT_TRUE(d.admit);
    EXPECT_EQ(d.level, 0u);
}

TEST(AdmissionDeath, BadLadderStepsPanic)
{
    AdmissionConfig bad;
    bad.qualityStep = 0.0;
    EXPECT_DEATH(AdmissionController{bad},
                 "quality step outside");
    AdmissionConfig bad2;
    bad2.resolutionStep = 1.5;
    EXPECT_DEATH(AdmissionController{bad2},
                 "resolution step outside");
}

BatchConfig
batchOn()
{
    BatchConfig cfg;
    cfg.enabled = true;
    return cfg;
}

TEST(BatchComposer, MergedServiceAmortisesOneSyncOverhead)
{
    BatchComposer bc(batchOn());
    RenderRequest a = make(0.0, 1.0, 10e-3);
    a.batchKey = 7;
    const Batch b = bc.open(0, a, 0, 10e-3);
    EXPECT_DOUBLE_EQ(bc.mergedService(b, 5e-3),
                     10e-3 + 5e-3 - bc.config().syncOverhead);
    // A member smaller than the overhead cannot go negative.
    EXPECT_DOUBLE_EQ(bc.mergedService(b, 0.5 * 150e-6), 10e-3);
}

TEST(BatchComposer, RejectsKeyLevelAndCapacityMismatch)
{
    BatchConfig cfg = batchOn();
    cfg.maxBatch = 2;
    BatchComposer bc(cfg);
    RenderRequest a = make(0.0, 1.0, 10e-3);
    a.batchKey = 1;
    Batch b = bc.open(0, a, 1, 10e-3);

    RenderRequest other_key = make(0.0, 1.0, 10e-3);
    other_key.batchKey = 2;
    // Joining would be faster than a solo dispatch at 0.5 — key
    // still forbids it.
    EXPECT_FALSE(bc.canJoin(b, other_key, 1, 10e-3, 0.0, 0.5));

    RenderRequest same = make(0.0, 1.0, 10e-3);
    same.batchKey = 1;
    EXPECT_FALSE(bc.canJoin(b, same, 0, 10e-3, 0.0, 0.5));  // level
    EXPECT_TRUE(bc.canJoin(b, same, 1, 10e-3, 0.0, 0.5));
    bc.join(b, 1, same, 10e-3);
    EXPECT_FALSE(bc.canJoin(b, same, 1, 10e-3, 0.0, 0.5));  // full
}

TEST(BatchComposer, NoHarmGateRejectsJoinsAtLightLoad)
{
    BatchComposer bc(batchOn());
    RenderRequest a = make(0.0, 1.0, 10e-3);
    const Batch b = bc.open(0, a, 0, 10e-3);
    RenderRequest r = make(0.0, 1.0, 10e-3);
    // An idle second slot would finish r at 10 ms solo; joining
    // serialises it behind the batch (~20 ms) — rejected.
    EXPECT_FALSE(bc.canJoin(b, r, 0, 10e-3, 0.0, 10e-3));
    // Under contention the solo alternative starts late (slot busy
    // until 15 ms -> solo completion 25 ms); joining finishes at
    // ~19.85 ms and wins.
    EXPECT_TRUE(bc.canJoin(b, r, 0, 10e-3, 0.0, 25e-3));
}

TEST(BatchComposer, DeadlineGuardBoundsTheBatch)
{
    BatchComposer bc(batchOn());
    RenderRequest a = make(0.0, 15e-3, 10e-3);
    const Batch b = bc.open(0, a, 0, 10e-3);
    RenderRequest r = make(0.0, 1.0, 10e-3);
    // Merged completion ~19.85 ms violates member a's 15 ms deadline
    // even though r itself would tolerate it.
    EXPECT_FALSE(bc.canJoin(b, r, 0, 10e-3, 0.0, 1.0));
}

TEST(BatchComposer, JoinTracksArrivalDeadlineAndServices)
{
    BatchComposer bc(batchOn());
    RenderRequest a = make(1e-3, 20e-3, 10e-3);
    Batch b = bc.open(4, a, 0, 10e-3);
    RenderRequest r = make(2e-3, 15e-3, 5e-3);
    bc.join(b, 9, r, 5e-3);
    EXPECT_EQ(b.members, (std::vector<std::size_t>{4, 9}));
    EXPECT_DOUBLE_EQ(b.arrival, 2e-3);       // latest member
    EXPECT_DOUBLE_EQ(b.minDeadline, 15e-3);  // tightest member
    ASSERT_EQ(b.services.size(), 2u);
    EXPECT_DOUBLE_EQ(b.services[1], 5e-3);
    EXPECT_DOUBLE_EQ(b.service,
                     10e-3 + 5e-3 - bc.config().syncOverhead);
}

TEST(BatchComposerDeath, ZeroCapacityPanics)
{
    BatchConfig bad;
    bad.maxBatch = 0;
    EXPECT_DEATH(BatchComposer{bad}, "batch limit");
}

}  // namespace
}  // namespace qvr::serve
