/**
 * @file
 * RequestQueue: policy pop order is fully specified, requestBefore is
 * a strict weak ordering.
 */

#include <gtest/gtest.h>

#include <vector>

#include "serve/queue.hpp"

namespace qvr::serve
{
namespace
{

RenderRequest
make(std::uint64_t seq, Seconds arrival, Seconds deadline,
     Seconds service)
{
    RenderRequest r;
    r.seq = seq;
    r.arrival = arrival;
    r.deadline = deadline;
    r.service = service;
    return r;
}

std::vector<std::uint64_t>
drain(RequestQueue &q)
{
    std::vector<std::uint64_t> seqs;
    while (!q.empty())
        seqs.push_back(q.pop().seq);
    return seqs;
}

TEST(RequestQueue, FifoPopsInSeqOrderRegardlessOfPushOrder)
{
    RequestQueue q(SchedulerPolicy::Fifo);
    q.push(make(2, 0.0, 1.0, 0.5));
    q.push(make(0, 9.0, 0.1, 0.9));
    q.push(make(1, 4.0, 0.5, 0.1));
    EXPECT_EQ(drain(q), (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(RequestQueue, EdfPopsEarliestDeadlineFirst)
{
    RequestQueue q(SchedulerPolicy::Edf);
    q.push(make(0, 0.0, 3.0, 0.5));
    q.push(make(1, 0.0, 1.0, 0.5));
    q.push(make(2, 0.0, 2.0, 0.5));
    EXPECT_EQ(drain(q), (std::vector<std::uint64_t>{1, 2, 0}));
}

TEST(RequestQueue, SjfPopsShortestServiceFirst)
{
    RequestQueue q(SchedulerPolicy::Sjf);
    q.push(make(0, 0.0, 1.0, 0.9));
    q.push(make(1, 0.0, 1.0, 0.1));
    q.push(make(2, 0.0, 1.0, 0.5));
    EXPECT_EQ(drain(q), (std::vector<std::uint64_t>{1, 2, 0}));
}

TEST(RequestQueue, TiesFallThroughToSeq)
{
    RequestQueue edf(SchedulerPolicy::Edf);
    edf.push(make(5, 0.0, 1.0, 0.5));
    edf.push(make(3, 0.0, 1.0, 0.5));
    edf.push(make(4, 0.0, 1.0, 0.5));
    EXPECT_EQ(drain(edf), (std::vector<std::uint64_t>{3, 4, 5}));

    RequestQueue sjf(SchedulerPolicy::Sjf);
    sjf.push(make(9, 0.0, 2.0, 0.5));
    sjf.push(make(7, 0.0, 1.0, 0.5));
    EXPECT_EQ(drain(sjf), (std::vector<std::uint64_t>{7, 9}));
}

TEST(RequestQueue, PeekMatchesPop)
{
    RequestQueue q(SchedulerPolicy::Edf);
    q.push(make(0, 0.0, 3.0, 0.5));
    q.push(make(1, 0.0, 1.0, 0.5));
    EXPECT_EQ(q.peek().seq, 1u);
    EXPECT_EQ(q.pop().seq, 1u);
    EXPECT_EQ(q.peek().seq, 0u);
    EXPECT_EQ(q.size(), 1u);
}

TEST(RequestQueue, RequestBeforeIsStrictWeakOrdering)
{
    // Includes duplicate deadlines/services so the seq tie-break is
    // exercised; seq is unique, so equivalence classes are singletons
    // and the ordering must be a strict total order on this set.
    const std::vector<RenderRequest> rs = {
        make(0, 0.0, 1.0, 0.5), make(1, 0.0, 1.0, 0.5),
        make(2, 1.0, 0.5, 0.1), make(3, 2.0, 0.5, 0.9),
        make(4, 0.5, 2.0, 0.1),
    };
    for (const auto policy :
         {SchedulerPolicy::Fifo, SchedulerPolicy::Edf,
          SchedulerPolicy::Sjf}) {
        for (const auto &a : rs) {
            EXPECT_FALSE(requestBefore(policy, a, a));  // irreflexive
            for (const auto &b : rs) {
                if (a.seq == b.seq)
                    continue;
                // asymmetric + total (unique seq => no equivalence)
                EXPECT_NE(requestBefore(policy, a, b),
                          requestBefore(policy, b, a));
                for (const auto &c : rs) {  // transitive
                    if (requestBefore(policy, a, b) &&
                        requestBefore(policy, b, c)) {
                        EXPECT_TRUE(requestBefore(policy, a, c));
                    }
                }
            }
        }
    }
}

TEST(RequestQueueDeath, PopOnEmptyPanics)
{
    RequestQueue q(SchedulerPolicy::Fifo);
    EXPECT_DEATH(q.pop(), "empty");
}

}  // namespace
}  // namespace qvr::serve
