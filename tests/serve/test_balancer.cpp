/**
 * @file
 * Pluggable fleet balancers: bounded-load spill behaviour, the
 * old-vs-new rendezvous shedding regression pin, power-of-two-
 * choices balance, and the per-rejection config death tests.
 *
 * The regression this file pins: the PR-5 capacity bench measured a
 * 360-vs-7 shed gap between the pure-affinity rendezvous hash and
 * JSQ at equal hardware, because the hash ignored queue depth —
 * whichever shard it overloaded kept shedding while its neighbours
 * idled.  HashUser now spills past its home shard when the bounded-
 * load check trips; HashUserUnbounded keeps the legacy behaviour so
 * the gap stays measurable.
 */

#include <gtest/gtest.h>

#include <set>

#include "serve/balancer.hpp"
#include "serve/fleet.hpp"

namespace qvr::serve
{
namespace
{

RenderRequest
make(std::uint64_t seq, Seconds arrival, Seconds deadline,
     Seconds service, std::uint32_t user = 0)
{
    RenderRequest r;
    r.seq = seq;
    r.user = user;
    r.arrival = arrival;
    r.deadline = deadline;
    r.service = service;
    return r;
}

FleetConfig
fleetConfig(std::uint32_t shards, BalancerPolicy policy)
{
    FleetConfig cfg;
    cfg.shards = shards;
    cfg.balancer.policy = policy;
    cfg.scheduler.slots = 1;
    return cfg;
}

/**
 * The shedding-pathology workload: one hot placement key (every
 * request hashes to the same home shard) under admission control.
 * Requests arrive in bursts that one shard cannot absorb.
 */
std::uint64_t
hotKeySheds(BalancerPolicy policy)
{
    FleetConfig cfg = fleetConfig(2, policy);
    cfg.admission.enabled = true;
    Fleet fleet(cfg);
    // 6 ticks x 6 requests of 2 ms service against an 8 ms deadline:
    // one slot admits 4 per tick, two slots all 6.  The bounded walk
    // caps the hot shard at ceil(c * mean) = 4 — exactly capacity —
    // while the unbounded hash piles all 6 onto one shard.
    for (std::uint64_t tick = 0; tick < 6; tick++) {
        std::vector<RenderRequest> reqs;
        const Seconds t = static_cast<double>(tick) * 8e-3;
        for (std::uint64_t i = 0; i < 6; i++)
            reqs.push_back(make(fleet.nextSeq(), t, t + 8e-3, 2e-3,
                                /*user=*/5));
        fleet.submitTick(reqs);
    }
    return fleet.counters().shed;
}

TEST(BalancerRegression, BoundedSpillClosesTheUnboundedShedGap)
{
    const std::uint64_t unbounded =
        hotKeySheds(BalancerPolicy::HashUserUnbounded);
    const std::uint64_t bounded = hotKeySheds(BalancerPolicy::HashUser);
    const std::uint64_t jsq =
        hotKeySheds(BalancerPolicy::JoinShortestQueue);

    // Legacy pathology: the unbounded hash pins the hot key to one
    // shard and sheds a third of the offered load while the other
    // shard idles.  The exact counts are pinned so any balancer
    // change that reopens (or silently alters) the gap fails loudly.
    EXPECT_EQ(unbounded, 12u);
    EXPECT_EQ(jsq, 0u);
    EXPECT_EQ(bounded, 0u);
    // The headline property, kept explicit: bounded-load hashing
    // sheds no more than twice JSQ, unbounded sheds far more.
    EXPECT_LE(bounded, 2 * jsq + 1);
    EXPECT_GT(unbounded, 2 * jsq + 1);
}

TEST(Balancer, BoundedHashKeepsAffinityAtLightLoad)
{
    Fleet fleet(fleetConfig(4, BalancerPolicy::HashUser));
    // A single light request per tick: the home shard is always
    // under the bound, so placement equals the pure hash.
    for (std::uint64_t tick = 0; tick < 4; tick++) {
        const Seconds t = static_cast<double>(tick) * 0.1;
        const auto out = fleet.submitTick(
            {make(fleet.nextSeq(), t, t + 1.0, 1e-3, /*user=*/9)});
        EXPECT_EQ(out[0].shard, fleet.shardForUser(9));
    }
}

TEST(Balancer, BoundedHashSpillsOffTheHotShard)
{
    Fleet fleet(fleetConfig(2, BalancerPolicy::HashUser));
    // Six simultaneous requests from one user: the bounded walk must
    // use both shards (the unbounded hash would use exactly one).
    std::vector<RenderRequest> reqs;
    for (std::uint64_t i = 0; i < 6; i++)
        reqs.push_back(make(i, 0.0, 1.0, 2e-3, /*user=*/5));
    const auto out = fleet.submitTick(reqs);
    std::set<std::uint32_t> used;
    for (const auto &o : out)
        used.insert(o.shard);
    EXPECT_EQ(used.size(), 2u);
    // The first request still lands on the home shard.
    EXPECT_EQ(out[0].shard, fleet.shardForUser(5));
}

TEST(Balancer, UnboundedHashNeverLeavesTheHomeShard)
{
    Fleet fleet(fleetConfig(2, BalancerPolicy::HashUserUnbounded));
    std::vector<RenderRequest> reqs;
    for (std::uint64_t i = 0; i < 6; i++)
        reqs.push_back(make(i, 0.0, 1.0, 2e-3, /*user=*/5));
    const auto out = fleet.submitTick(reqs);
    for (const auto &o : out)
        EXPECT_EQ(o.shard, fleet.shardForUser(5));
}

TEST(Balancer, BoundedRingIsStablePerKeyAtLightLoad)
{
    Fleet fleet(
        fleetConfig(4, BalancerPolicy::BoundedLoadConsistentHash));
    std::set<std::uint32_t> used;
    for (std::uint32_t user = 0; user < 32; user++) {
        const RenderRequest probe =
            make(0, 0.0, 1.0, 1e-3, user);
        const std::uint32_t s = fleet.probePlacement(probe);
        EXPECT_EQ(s, fleet.probePlacement(probe));  // stable
        EXPECT_LT(s, 4u);
        used.insert(s);
    }
    EXPECT_GT(used.size(), 1u);  // the ring actually spreads keys
}

TEST(Balancer, BoundedRingRespectsTheLoadBound)
{
    Fleet fleet(
        fleetConfig(2, BalancerPolicy::BoundedLoadConsistentHash));
    std::vector<RenderRequest> reqs;
    for (std::uint64_t i = 0; i < 6; i++)
        reqs.push_back(make(i, 0.0, 1.0, 2e-3, /*user=*/5));
    const auto out = fleet.submitTick(reqs);
    std::set<std::uint32_t> used;
    for (const auto &o : out)
        used.insert(o.shard);
    EXPECT_EQ(used.size(), 2u);
}

TEST(Balancer, PowerOfTwoChoicesSpreadsAHotKey)
{
    Fleet fleet(fleetConfig(4, BalancerPolicy::PowerOfTwoChoices));
    // Seq enters the candidate hash, so even one user's request
    // stream draws fresh candidate pairs and load-balances.
    std::vector<RenderRequest> reqs;
    for (std::uint64_t i = 0; i < 16; i++)
        reqs.push_back(make(i, 0.0, 1.0, 2e-3, /*user=*/5));
    const auto out = fleet.submitTick(reqs);
    std::set<std::uint32_t> used;
    for (const auto &o : out)
        used.insert(o.shard);
    EXPECT_GT(used.size(), 2u);
}

TEST(Balancer, PlacementKeyOverridesUserIdentity)
{
    Fleet fleet(fleetConfig(4, BalancerPolicy::HashUserUnbounded));
    RenderRequest a = make(0, 0.0, 1.0, 1e-3, /*user=*/3);
    RenderRequest b = a;
    b.placement = 0x123456789abcdefull;  // a roamed user
    const std::uint32_t home = fleet.probePlacement(a);
    EXPECT_EQ(home, fleet.shardForUser(3));
    // The re-keyed placement is what the balancer hashes, so the two
    // probes agree only if the hash happens to collide — assert the
    // override is actually read by checking determinism plus the
    // known distinct mapping of this key on 4 shards.
    EXPECT_EQ(fleet.probePlacement(b), fleet.probePlacement(b));
}

TEST(BalancerDeath, LoadFactorAtOnePanics)
{
    FleetConfig cfg = fleetConfig(2, BalancerPolicy::HashUser);
    cfg.balancer.loadFactor = 1.0;
    EXPECT_DEATH(Fleet{cfg}, "balancer load factor must exceed 1");
}

TEST(BalancerDeath, SingleChoicePanics)
{
    FleetConfig cfg = fleetConfig(2, BalancerPolicy::PowerOfTwoChoices);
    cfg.balancer.choices = 1;
    EXPECT_DEATH(Fleet{cfg},
                 "power-of-two-choices needs at least 2 choices");
}

TEST(BalancerDeath, ZeroVirtualNodesPanics)
{
    FleetConfig cfg =
        fleetConfig(2, BalancerPolicy::BoundedLoadConsistentHash);
    cfg.balancer.virtualNodes = 0;
    EXPECT_DEATH(Fleet{cfg},
                 "consistent-hash ring needs at least 1 virtual node");
}

}  // namespace
}  // namespace qvr::serve
