/**
 * @file
 * Serving-stack determinism gate: Served sessions must replay
 * byte-identically at any worker-thread count and across repeated
 * runs — the serve stack is RNG-free and wall-clock-free, so any
 * divergence is a bug.  Labelled `tsan` so the suite also runs under
 * -DQVR_SANITIZE=thread with the rest of the concurrency gate.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "collab/session.hpp"
#include "sim/parallel.hpp"

namespace qvr::collab
{
namespace
{

std::vector<SessionConfig>
servedGrid()
{
    std::vector<SessionConfig> grid;
    for (const auto policy :
         {serve::SchedulerPolicy::Fifo, serve::SchedulerPolicy::Edf,
          serve::SchedulerPolicy::Sjf}) {
        for (const std::uint32_t shards : {1u, 2u}) {
            SessionConfig cfg;
            cfg.design = SessionDesign::Served;
            cfg.users = 6;
            cfg.numFrames = 60;
            cfg.totalChiplets = 4;
            cfg.chipletsPerRequest = 2;
            cfg.serving.scheduler.policy = policy;
            cfg.serving.shards = shards;
            cfg.serving.admission.enabled = true;
            cfg.serving.batching.enabled = true;
            grid.push_back(cfg);
        }
    }
    return grid;
}

/** Hexfloat digest: any bit of divergence changes the string. */
std::string
digest(const SessionResult &r)
{
    std::ostringstream os;
    os << std::hexfloat;
    for (const auto &u : r.perUser) {
        for (const auto &f : u.frames) {
            os << f.displayTime << ';' << f.mtpLatency << ';'
               << f.transmittedBytes << ';' << f.serveQueueWait
               << ';' << f.serveAdmitted << ';' << f.degradationLevel
               << '\n';
        }
    }
    os << r.serveCounters.admitted << ';' << r.serveCounters.shed
       << ';' << r.serveCounters.batches << '\n';
    return os.str();
}

TEST(ServeDeterminism, BitExactAcrossThreadCounts)
{
    const auto grid = servedGrid();
    const auto run = [&grid](std::size_t threads) {
        return sim::runParallel(
            grid.size(),
            [&grid](std::size_t i) { return runSession(grid[i]); },
            threads);
    };
    const auto baseline = run(1);
    for (const std::size_t threads : {2u, 8u}) {
        const auto rerun = run(threads);
        ASSERT_EQ(rerun.size(), baseline.size());
        for (std::size_t i = 0; i < baseline.size(); i++) {
            EXPECT_EQ(digest(baseline[i]), digest(rerun[i]))
                << "cell " << i << " diverged at " << threads
                << " worker threads";
        }
    }
}

TEST(ServeDeterminism, RepeatedRunsAreByteIdentical)
{
    SessionConfig cfg = servedGrid().front();
    const std::string a = digest(runSession(cfg));
    const std::string b = digest(runSession(cfg));
    EXPECT_EQ(a, b);
}

TEST(ServeDeterminism, IssueOrderIsStableAcrossCalls)
{
    // The round scheduler's comparator (issue-clock less-than, no
    // tie-break) must give the same permutation every time, including
    // on inputs with equal keys.
    const std::vector<Seconds> issue = {3.0, 1.0, 2.0, 1.0, 3.0,
                                        1.0, 0.5, 2.0, 0.5};
    const auto first = issueOrder(issue);
    for (int i = 0; i < 16; i++)
        EXPECT_EQ(issueOrder(issue), first);
}

}  // namespace
}  // namespace qvr::collab
