/**
 * @file
 * Fleet autoscaling: grow with fresh shards, shrink by drain-before-
 * retire, deterministic and minimal key migration on scale events,
 * and the fleet-level validation death tests.
 */

#include <gtest/gtest.h>

#include <vector>

#include "serve/balancer.hpp"
#include "serve/fleet.hpp"

namespace qvr::serve
{
namespace
{

RenderRequest
make(std::uint64_t seq, Seconds arrival, Seconds deadline,
     Seconds service, std::uint32_t user = 0)
{
    RenderRequest r;
    r.seq = seq;
    r.user = user;
    r.arrival = arrival;
    r.deadline = deadline;
    r.service = service;
    return r;
}

FleetConfig
fleetConfig(std::uint32_t shards, BalancerPolicy policy)
{
    FleetConfig cfg;
    cfg.shards = shards;
    cfg.balancer.policy = policy;
    cfg.scheduler.slots = 1;
    return cfg;
}

TEST(FleetScale, GrowAppendsFreshShards)
{
    Fleet fleet(
        fleetConfig(2, BalancerPolicy::JoinShortestQueue));
    EXPECT_EQ(fleet.activeShards(), 2u);
    fleet.scaleTo(5);
    EXPECT_EQ(fleet.activeShards(), 5u);
    EXPECT_EQ(fleet.shards(), 5u);
    EXPECT_EQ(fleet.counters().scaleEvents, 1u);
    // New shards take work immediately (JSQ spreads 5 simultaneous
    // requests across 5 idle shards).
    std::vector<RenderRequest> reqs;
    for (std::uint64_t i = 0; i < 5; i++)
        reqs.push_back(make(i, 0.0, 1.0, 1e-3));
    const auto out = fleet.submitTick(reqs);
    std::vector<bool> hit(5, false);
    for (const auto &o : out)
        hit[o.shard] = true;
    for (std::size_t s = 0; s < 5; s++)
        EXPECT_TRUE(hit[s]) << "shard " << s << " idle after grow";
}

TEST(FleetScale, ScaleToCurrentSizeIsANoop)
{
    Fleet fleet(
        fleetConfig(3, BalancerPolicy::JoinShortestQueue));
    fleet.scaleTo(3);
    EXPECT_EQ(fleet.counters().scaleEvents, 0u);
}

TEST(FleetScale, ShrinkDrainsBeforeRetiring)
{
    Fleet fleet(
        fleetConfig(4, BalancerPolicy::JoinShortestQueue));
    // Load every shard, then shrink: the two highest-id shards must
    // drain (no new work) but only retire once their backlog clears.
    std::vector<RenderRequest> reqs;
    for (std::uint64_t i = 0; i < 4; i++)
        reqs.push_back(make(i, 0.0, 1.0, 10e-3));
    fleet.submitTick(reqs);

    fleet.scaleTo(2);
    EXPECT_EQ(fleet.activeShards(), 2u);
    EXPECT_TRUE(fleet.shardDraining(2));
    EXPECT_TRUE(fleet.shardDraining(3));
    EXPECT_FALSE(fleet.shardRetired(2));
    EXPECT_FALSE(fleet.shardRetired(3));

    // While draining, new work routes only to the surviving shards.
    const auto out = fleet.submitTick(
        {make(4, 1e-3, 1.0, 1e-3), make(5, 1e-3, 1.0, 1e-3)});
    for (const auto &o : out)
        EXPECT_LT(o.shard, 2u);
    EXPECT_EQ(fleet.counters().retiredShards, 0u);

    // Once the drained shards' committed work is done (10 ms), the
    // next tick retires them.
    fleet.submitTick({make(6, 0.05, 1.0, 1e-3)});
    EXPECT_TRUE(fleet.shardRetired(2));
    EXPECT_TRUE(fleet.shardRetired(3));
    EXPECT_EQ(fleet.counters().retiredShards, 2u);
    // Telemetry ids stay stable: the retired shards still report
    // their busy time.
    EXPECT_GT(fleet.shardBusyTime(2), 0.0);
    EXPECT_GT(fleet.shardBusyTime(3), 0.0);
}

TEST(FleetScale, GrowAfterShrinkDoesNotReviveDrainingShards)
{
    Fleet fleet(
        fleetConfig(3, BalancerPolicy::JoinShortestQueue));
    std::vector<RenderRequest> reqs;
    for (std::uint64_t i = 0; i < 3; i++)
        reqs.push_back(make(i, 0.0, 1.0, 10e-3));
    fleet.submitTick(reqs);
    fleet.scaleTo(2);       // shard 2 drains
    fleet.scaleTo(3);       // grows with a FRESH shard 3
    EXPECT_EQ(fleet.activeShards(), 3u);
    EXPECT_EQ(fleet.shards(), 4u);
    EXPECT_TRUE(fleet.shardDraining(2));
    EXPECT_FALSE(fleet.shardDraining(3));
}

/** Placement probe over many keys at zero load. */
std::vector<std::uint32_t>
placements(const Fleet &fleet, std::size_t keys)
{
    std::vector<std::uint32_t> out;
    out.reserve(keys);
    for (std::size_t u = 0; u < keys; u++)
        out.push_back(fleet.probePlacement(
            make(0, 0.0, 1.0, 1e-3,
                 static_cast<std::uint32_t>(u))));
    return out;
}

TEST(FleetScale, ConsistentHashMigratesMinimallyOnGrow)
{
    Fleet fleet(
        fleetConfig(8, BalancerPolicy::BoundedLoadConsistentHash));
    const std::size_t keys = 512;
    const auto before = placements(fleet, keys);
    fleet.scaleTo(9);
    const auto after = placements(fleet, keys);

    std::size_t moved = 0;
    for (std::size_t u = 0; u < keys; u++) {
        if (after[u] != before[u]) {
            moved++;
            // Minimal migration: every moved key moves TO the new
            // shard, never between surviving shards.
            EXPECT_EQ(after[u], 8u) << "key " << u;
        }
    }
    // Expect about keys/9 (~57) to move; allow generous slack but
    // fail on rehash-the-world behaviour.
    EXPECT_GT(moved, 0u);
    EXPECT_LT(moved, keys / 4);
}

TEST(FleetScale, RendezvousMigratesMinimallyOnGrow)
{
    Fleet fleet(fleetConfig(8, BalancerPolicy::HashUserUnbounded));
    const std::size_t keys = 512;
    const auto before = placements(fleet, keys);
    fleet.scaleTo(9);
    const auto after = placements(fleet, keys);
    std::size_t moved = 0;
    for (std::size_t u = 0; u < keys; u++) {
        if (after[u] != before[u]) {
            moved++;
            EXPECT_EQ(after[u], 8u) << "key " << u;
        }
    }
    EXPECT_GT(moved, 0u);
    EXPECT_LT(moved, keys / 4);
}

TEST(FleetScale, KeyMigrationIsDeterministic)
{
    const auto run = [] {
        Fleet fleet(fleetConfig(
            4, BalancerPolicy::BoundedLoadConsistentHash));
        fleet.scaleTo(6);
        fleet.scaleTo(3);
        return placements(fleet, 256);
    };
    EXPECT_EQ(run(), run());
}

TEST(FleetScaleDeath, ScaleToZeroPanics)
{
    Fleet fleet(
        fleetConfig(2, BalancerPolicy::JoinShortestQueue));
    EXPECT_DEATH(fleet.scaleTo(0), "at least one shard");
}

TEST(FleetScaleDeath, ZeroShardConfigPanics)
{
    FleetConfig cfg =
        fleetConfig(2, BalancerPolicy::JoinShortestQueue);
    cfg.shards = 0;
    EXPECT_DEATH(Fleet{cfg}, "fleet needs at least one shard");
}

}  // namespace
}  // namespace qvr::serve
