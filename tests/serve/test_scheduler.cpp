/**
 * @file
 * ChipletScheduler dispatch walk and Fleet balancing.
 */

#include <gtest/gtest.h>

#include <set>

#include "serve/fleet.hpp"
#include "serve/scheduler.hpp"

namespace qvr::serve
{
namespace
{

RenderRequest
make(std::uint64_t seq, Seconds arrival, Seconds deadline,
     Seconds service, std::uint32_t user = 0)
{
    RenderRequest r;
    r.seq = seq;
    r.user = user;
    r.arrival = arrival;
    r.deadline = deadline;
    r.service = service;
    return r;
}

ChipletScheduler
makeScheduler(SchedulerPolicy policy, std::uint32_t slots,
              bool admission = false, bool batching = false)
{
    SchedulerConfig cfg;
    cfg.policy = policy;
    cfg.slots = slots;
    AdmissionConfig adm;
    adm.enabled = admission;
    BatchConfig bat;
    bat.enabled = batching;
    return ChipletScheduler(cfg, adm, bat);
}

TEST(ChipletScheduler, FifoSingleSlotSerialisesInSeqOrder)
{
    ChipletScheduler s = makeScheduler(SchedulerPolicy::Fifo, 1);
    const TickReport rep = s.scheduleTick({
        make(0, 0.0, 1.0, 0.2),
        make(1, 0.0, 1.0, 0.2),
        make(2, 0.0, 1.0, 0.2),
    });
    ASSERT_EQ(rep.outcomes.size(), 3u);
    EXPECT_DOUBLE_EQ(rep.outcomes[0].completion, 0.2);
    EXPECT_DOUBLE_EQ(rep.outcomes[1].completion, 0.4);
    EXPECT_DOUBLE_EQ(rep.outcomes[2].completion, 0.6);
    EXPECT_DOUBLE_EQ(rep.outcomes[2].queueWait, 0.4);
    EXPECT_DOUBLE_EQ(s.busyTime(), 0.6);
    EXPECT_DOUBLE_EQ(s.nextFree(), 0.6);
}

TEST(ChipletScheduler, TwoSlotsRunConcurrently)
{
    ChipletScheduler s = makeScheduler(SchedulerPolicy::Fifo, 2);
    const TickReport rep = s.scheduleTick({
        make(0, 0.0, 1.0, 0.2),
        make(1, 0.0, 1.0, 0.2),
        make(2, 0.0, 1.0, 0.2),
    });
    EXPECT_DOUBLE_EQ(rep.outcomes[0].completion, 0.2);
    EXPECT_DOUBLE_EQ(rep.outcomes[1].completion, 0.2);
    EXPECT_DOUBLE_EQ(rep.outcomes[2].completion, 0.4);
    // Slot A free at 0.4, slot B at 0.2: pending work by wall clock.
    EXPECT_DOUBLE_EQ(s.backlog(0.0), 0.6);
    EXPECT_DOUBLE_EQ(s.backlog(0.2), 0.2);
}

TEST(ChipletScheduler, EdfDispatchesTightDeadlineFirst)
{
    ChipletScheduler s = makeScheduler(SchedulerPolicy::Edf, 1);
    // Later-submitted request has the tighter deadline.
    const TickReport rep = s.scheduleTick({
        make(0, 0.0, 9.0, 0.2),
        make(1, 0.0, 0.3, 0.2),
    });
    EXPECT_DOUBLE_EQ(rep.outcomes[1].completion, 0.2);
    EXPECT_TRUE(rep.outcomes[1].deadlineMet);
    EXPECT_DOUBLE_EQ(rep.outcomes[0].completion, 0.4);
}

TEST(ChipletScheduler, FifoRecordsMissesHonestly)
{
    ChipletScheduler s = makeScheduler(SchedulerPolicy::Fifo, 1);
    const TickReport rep = s.scheduleTick({
        make(0, 0.0, 9.0, 0.2),
        make(1, 0.0, 0.3, 0.2),
    });
    EXPECT_TRUE(rep.outcomes[0].deadlineMet);
    EXPECT_FALSE(rep.outcomes[1].deadlineMet);  // 0.4 > 0.3
    EXPECT_TRUE(rep.outcomes[1].admitted);
}

TEST(ChipletScheduler, AdmittedRequestsNeverMissAcrossTicks)
{
    // The admission contract: whatever the load pattern, an admitted
    // outcome's completion meets its deadline.
    ChipletScheduler s =
        makeScheduler(SchedulerPolicy::Edf, 2, /*admission=*/true);
    std::uint64_t seq = 0;
    std::size_t admitted = 0, shed = 0;
    for (int tick = 0; tick < 50; tick++) {
        std::vector<RenderRequest> reqs;
        const Seconds base = tick * 2e-3;  // oversubscribed ticks
        for (int i = 0; i < 8; i++) {
            reqs.push_back(make(seq, base + i * 1e-4,
                                base + i * 1e-4 + 4e-3, 1.5e-3));
            seq++;
        }
        const TickReport rep = s.scheduleTick(reqs);
        for (std::size_t i = 0; i < reqs.size(); i++) {
            const ServeOutcome &o = rep.outcomes[i];
            if (!o.admitted) {
                shed++;
                continue;
            }
            admitted++;
            EXPECT_TRUE(o.deadlineMet);
            EXPECT_LE(o.completion, reqs[i].deadline);
            EXPECT_GE(o.start, reqs[i].arrival);
            EXPECT_DOUBLE_EQ(o.queueWait, o.start - reqs[i].arrival);
        }
    }
    // The load is genuinely oversubscribed: both outcomes occur.
    EXPECT_GT(admitted, 0u);
    EXPECT_GT(shed, 0u);
}

TEST(ChipletScheduler, ContentionTriggersBatching)
{
    // One slot, admission + batching on: policy-adjacent requests at
    // the same rung coalesce when joining beats going solo.
    ChipletScheduler s = makeScheduler(SchedulerPolicy::Fifo, 1,
                                       /*admission=*/true,
                                       /*batching=*/true);
    const TickReport rep = s.scheduleTick({
        make(0, 0.0, 50e-3, 10e-3),
        make(1, 0.0, 50e-3, 10e-3),
        make(2, 0.0, 50e-3, 10e-3),
    });
    EXPECT_GT(rep.batches, 0u);
    EXPECT_GT(rep.batchedRequests, 0u);
    // Batch members share one completion and report their size.
    std::size_t in_batch = 0;
    for (const ServeOutcome &o : rep.outcomes)
        if (o.batchSize > 1)
            in_batch++;
    EXPECT_EQ(in_batch, rep.batchedRequests);
}

TEST(ChipletSchedulerDeath, DuplicateSeqPanics)
{
    ChipletScheduler s = makeScheduler(SchedulerPolicy::Fifo, 1);
    EXPECT_DEATH(s.scheduleTick({make(3, 0.0, 1.0, 0.1),
                                 make(3, 0.0, 1.0, 0.1)}),
                 "duplicate request seq");
}

TEST(ChipletSchedulerDeath, ZeroSlotsPanics)
{
    SchedulerConfig cfg;
    cfg.slots = 0;
    EXPECT_DEATH(
        ChipletScheduler(cfg, AdmissionConfig{}, BatchConfig{}),
        "at least one slot");
}

FleetConfig
fleetConfig(std::uint32_t shards, BalancerPolicy balancer,
            std::uint32_t slots_per_shard = 1)
{
    FleetConfig cfg;
    cfg.shards = shards;
    cfg.balancer.policy = balancer;
    cfg.scheduler.slots = slots_per_shard;
    return cfg;
}

TEST(Fleet, JsqSpreadsConcurrentLoad)
{
    Fleet fleet(
        fleetConfig(2, BalancerPolicy::JoinShortestQueue));
    const auto outcomes = fleet.submitTick({
        make(0, 0.0, 1.0, 0.2),
        make(1, 0.0, 1.0, 0.2),
    });
    // Two simultaneous requests land on different shards and finish
    // concurrently.
    EXPECT_NE(outcomes[0].shard, outcomes[1].shard);
    EXPECT_DOUBLE_EQ(outcomes[0].completion, 0.2);
    EXPECT_DOUBLE_EQ(outcomes[1].completion, 0.2);
    EXPECT_DOUBLE_EQ(fleet.busyTime(), 0.4);
    EXPECT_GT(fleet.shardBusyTime(0), 0.0);
    EXPECT_GT(fleet.shardBusyTime(1), 0.0);
}

TEST(Fleet, UnboundedHashIsStablePerUserAndMatchesOutcomes)
{
    // HashUserUnbounded is the pure-affinity rendezvous hash: every
    // request lands on shardForUser regardless of load.  (HashUser
    // now spills past its home shard when the bounded-load check
    // trips — tests/serve/test_balancer.cpp covers that.)
    Fleet fleet(fleetConfig(4, BalancerPolicy::HashUserUnbounded));
    std::set<std::uint32_t> used;
    for (std::uint32_t user = 0; user < 32; user++) {
        const std::uint32_t s = fleet.shardForUser(user);
        EXPECT_EQ(s, fleet.shardForUser(user));  // stable
        EXPECT_LT(s, 4u);
        used.insert(s);
    }
    EXPECT_GT(used.size(), 1u);  // the hash actually spreads users

    const auto outcomes = fleet.submitTick({
        make(0, 0.0, 1.0, 0.1, /*user=*/5),
        make(1, 0.0, 1.0, 0.1, /*user=*/6),
        make(2, 0.1, 1.0, 0.1, /*user=*/5),
    });
    EXPECT_EQ(outcomes[0].shard, fleet.shardForUser(5));
    EXPECT_EQ(outcomes[1].shard, fleet.shardForUser(6));
    EXPECT_EQ(outcomes[2].shard, outcomes[0].shard);
}

TEST(Fleet, CountersAddUp)
{
    FleetConfig cfg =
        fleetConfig(1, BalancerPolicy::JoinShortestQueue);
    cfg.admission.enabled = true;
    Fleet fleet(cfg);
    // Oversubscribe one slot so some requests shed.
    std::vector<RenderRequest> reqs;
    for (std::uint64_t i = 0; i < 6; i++)
        reqs.push_back(make(i, 0.0, 5e-3, 2e-3));
    fleet.submitTick(reqs);
    const FleetCounters &c = fleet.counters();
    EXPECT_EQ(c.submitted, 6u);
    EXPECT_EQ(c.admitted + c.shed, c.submitted);
    EXPECT_GT(c.shed, 0u);
    EXPECT_EQ(c.deadlineMisses, 0u);  // admission contract
}

TEST(Fleet, SequenceNumbersAreUnique)
{
    Fleet fleet(
        fleetConfig(2, BalancerPolicy::JoinShortestQueue));
    std::set<std::uint64_t> seqs;
    for (int i = 0; i < 10; i++)
        EXPECT_TRUE(seqs.insert(fleet.nextSeq()).second);
}

TEST(FleetDeath, ZeroShardsPanics)
{
    FleetConfig cfg =
        fleetConfig(1, BalancerPolicy::JoinShortestQueue);
    cfg.shards = 0;
    EXPECT_DEATH(Fleet{cfg}, "at least one shard");
}

}  // namespace
}  // namespace qvr::serve
