/**
 * @file
 * Property sweeps over the UCA functional path: the Eq.3 = Eq.4
 * equivalence and output sanity across reprojection shifts and
 * subsampling factors.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/uca.hpp"

namespace qvr::core
{
namespace
{

Image
pattern(std::int32_t w, std::int32_t h, double phase)
{
    Image img(w, h);
    for (std::int32_t y = 0; y < h; y++) {
        for (std::int32_t x = 0; x < w; x++) {
            const double fx = x + 0.5;
            const double fy = y + 0.5;
            img.at(x, y) = Rgb{
                static_cast<float>(
                    0.5 + 0.5 * std::sin(fx * 0.09 + phase)),
                static_cast<float>(
                    0.5 + 0.5 * std::cos(fy * 0.06 - phase)),
                static_cast<float>(
                    0.5 + 0.3 * std::sin((fx - fy) * 0.04))};
        }
    }
    return img;
}

Image
downsample(const Image &src, double s)
{
    const auto w =
        std::max(1, static_cast<std::int32_t>(src.width() / s));
    const auto h =
        std::max(1, static_cast<std::int32_t>(src.height() / s));
    Image out(w, h);
    for (std::int32_t y = 0; y < h; y++) {
        for (std::int32_t x = 0; x < w; x++) {
            out.at(x, y) = src.sampleBilinear((x + 0.5) * s,
                                              (y + 0.5) * s);
        }
    }
    return out;
}

using Params = std::tuple<double, double, double>;  // shift, sM, sO

class UcaSweep : public ::testing::TestWithParam<Params>
{
};

TEST_P(UcaSweep, UnifiedMatchesSequential)
{
    const auto [shift, s_mid, s_out] = GetParam();
    const Image native = pattern(80, 80, shift);
    const Image middle = downsample(native, s_mid);
    const Image outer = downsample(native, s_out);

    UcaFrameInputs in;
    in.fovea = &native;
    in.middle = &middle;
    in.outer = &outer;
    in.sMiddle = s_mid;
    in.sOuter = s_out;
    in.partition.centerX = 40.0;
    in.partition.centerY = 40.0;
    in.partition.foveaRadius = 15.0;
    in.partition.middleRadius = 28.0;
    in.partition.blendBand = 6.0;
    in.atwShift = Vec2{shift, -shift * 0.6};

    const Image seq = sequentialCompositeAtw(in);
    const Image uni = ucaUnified(in);
    // One 8-bit LSB is ~0.004; the reordering error stays well
    // below visibility on average.
    EXPECT_LT(seq.meanAbsDiff(uni), 0.012)
        << "shift=" << shift << " sM=" << s_mid << " sO=" << s_out;
    EXPECT_LT(seq.maxAbsDiff(uni), 0.2);
}

TEST_P(UcaSweep, OutputStaysInGamut)
{
    const auto [shift, s_mid, s_out] = GetParam();
    const Image native = pattern(64, 64, shift + 1.0);
    const Image middle = downsample(native, s_mid);
    const Image outer = downsample(native, s_out);

    UcaFrameInputs in;
    in.fovea = &native;
    in.middle = &middle;
    in.outer = &outer;
    in.sMiddle = s_mid;
    in.sOuter = s_out;
    in.partition.centerX = 32.0;
    in.partition.centerY = 32.0;
    in.partition.foveaRadius = 12.0;
    in.partition.middleRadius = 24.0;
    in.atwShift = Vec2{shift, shift};

    const Image out = ucaUnified(in);
    // Inputs are in [0,1]; linear filtering cannot leave the hull.
    for (std::int32_t y = 0; y < out.height(); y++) {
        for (std::int32_t x = 0; x < out.width(); x++) {
            const Rgb &c = out.at(x, y);
            ASSERT_GE(c.r, -1e-5);
            ASSERT_LE(c.r, 1.0f + 1e-5f);
            ASSERT_GE(c.g, -1e-5);
            ASSERT_LE(c.g, 1.0f + 1e-5f);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UcaSweep,
    ::testing::Combine(::testing::Values(0.0, 0.8, 2.4, 5.0),
                       ::testing::Values(1.5, 2.0, 3.0),
                       ::testing::Values(2.0, 4.0)));

}  // namespace
}  // namespace qvr::core
