/**
 * @file
 * Property sweeps over the channel and codec models: monotonicity
 * and conservation laws across presets, payload sizes and loss
 * rates.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/stats.hpp"
#include "net/channel.hpp"
#include "net/codec.hpp"

namespace qvr::net
{
namespace
{

ChannelConfig
presetByName(const std::string &name)
{
    if (name == "Wi-Fi")
        return ChannelConfig::wifi();
    if (name == "4G LTE")
        return ChannelConfig::lte4g();
    return ChannelConfig::early5g();
}

class ChannelSweep
    : public ::testing::TestWithParam<const char *>
{
  protected:
    ChannelConfig cfg() const { return presetByName(GetParam()); }
};

TEST_P(ChannelSweep, DurationMonotoneInPayload)
{
    // Same noise draw for both sizes via twin generators.
    Channel a(cfg(), Rng(5));
    Channel b(cfg(), Rng(5));
    for (int i = 0; i < 200; i++) {
        const Seconds small = a.transfer(fromKiB(50)).duration;
        const Seconds large = b.transfer(fromKiB(400)).duration;
        EXPECT_LT(small, large);
    }
}

TEST_P(ChannelSweep, MeanGoodputNearDeratedNominal)
{
    Channel ch(cfg(), Rng(6));
    RunningStat g;
    for (int i = 0; i < 3000; i++)
        g.add(ch.transfer(fromKiB(100)).goodput);
    const double expected =
        cfg().nominalDownlink * cfg().protocolEfficiency;
    EXPECT_NEAR(g.mean(), expected, expected * 0.05);
}

TEST_P(ChannelSweep, LossMonotonicallyHurts)
{
    double prev_mean = 0.0;
    for (double loss : {0.0, 0.02, 0.05, 0.10}) {
        ChannelConfig c = cfg();
        c.packetLoss = loss;
        c.snrDb = 300.0;  // isolate the loss effect
        Channel ch(c, Rng(7));
        RunningStat t;
        for (int i = 0; i < 200; i++)
            t.add(ch.transfer(fromKiB(200)).duration);
        EXPECT_GT(t.mean(), prev_mean);
        prev_mean = t.mean();
    }
}

TEST_P(ChannelSweep, AckEstimateBounded)
{
    Channel ch(cfg(), Rng(8));
    for (int i = 0; i < 500; i++) {
        ch.transfer(fromKiB(100));
        const double ack = ch.ackThroughput();
        EXPECT_GT(ack, cfg().nominalDownlink * 0.2);
        EXPECT_LT(ack, cfg().nominalDownlink * 1.5);
    }
}

TEST_P(ChannelSweep, OutageDelaysExactlyOnce)
{
    ChannelConfig c = cfg();
    c.snrDb = 300.0;
    Channel a(c, Rng(9));
    Channel b(c, Rng(9));
    const Seconds clean = a.transfer(fromKiB(100)).duration;
    b.injectOutage(0.5);
    const Seconds hit = b.transfer(fromKiB(100)).duration;
    EXPECT_NEAR(hit - clean, 0.5, 1e-9);
    // Consumed: the next transfer is clean again.
    const Seconds clean2 = a.transfer(fromKiB(100)).duration;
    const Seconds after = b.transfer(fromKiB(100)).duration;
    EXPECT_NEAR(after, clean2, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Presets, ChannelSweep,
                         ::testing::Values("Wi-Fi", "4G LTE",
                                           "Early 5G"),
                         [](const auto &param_info) {
                             std::string n = param_info.param;
                             for (char &ch : n) {
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(
                                             ch)))
                                     ch = '_';
                             }
                             return n;
                         });

class CodecSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(CodecSweep, SizeMonotoneInPixels)
{
    VideoCodec codec;
    const double factor = GetParam();
    Bytes prev = 0;
    for (double px : {1e5, 5e5, 1e6, 4e6, 8e6}) {
        const Bytes b = codec.compressedSize(px, 1.0, factor);
        EXPECT_GT(b, prev);
        prev = b;
    }
}

TEST_P(CodecSweep, BppWithinPhysicalBounds)
{
    VideoCodec codec;
    const double factor = GetParam();
    for (double complexity : {0.7, 1.0, 1.4}) {
        const Bytes b =
            codec.compressedSize(1e6, complexity, factor);
        const double bpp = static_cast<double>(b) * 8.0 / 1e6;
        EXPECT_GT(bpp, 0.05);   // H.264 cannot beat this on video
        EXPECT_LT(bpp, 2.0);    // nor be worse than raw-ish
    }
}

INSTANTIATE_TEST_SUITE_P(SubsampleFactors, CodecSweep,
                         ::testing::Values(1.0, 1.5, 2.0, 3.0));

}  // namespace
}  // namespace qvr::net
