/**
 * @file
 * Randomised robustness sweeps: thousands of random inputs through
 * the numeric kernels, asserting the outputs stay finite, bounded
 * and in-contract.  These hunt for NaN/overflow/ordering bugs the
 * targeted unit tests would never hit.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/fp16.hpp"
#include "common/rng.hpp"
#include "core/liwc.hpp"
#include "core/uca.hpp"
#include "foveation/layers.hpp"
#include "gpu/timing.hpp"
#include "net/codec.hpp"

namespace qvr
{
namespace
{

TEST(Fuzz, GpuTimingAlwaysFiniteAndMonotoneInWork)
{
    gpu::MobileGpuModel model;
    Rng rng(101);
    for (int i = 0; i < 5000; i++) {
        gpu::RenderJob job;
        job.triangles = static_cast<std::uint64_t>(
            rng.uniform(0.0, 2e7));
        job.shadedPixels = rng.uniform(0.0, 2e7);
        job.batches = static_cast<std::uint32_t>(
            rng.uniformInt(1, 10000));
        job.shadingCost = rng.uniform(0.1, 5.0);
        job.frequencyScale = rng.uniform(0.2, 1.5);

        const Seconds t = model.renderSeconds(job);
        ASSERT_TRUE(std::isfinite(t));
        ASSERT_GE(t, 0.0);

        // Adding work can never make it faster.
        gpu::RenderJob more = job;
        more.triangles += 100'000;
        more.shadedPixels += 100'000.0;
        ASSERT_GE(model.renderSeconds(more), t - 1e-15);
    }
}

TEST(Fuzz, LayerGeometryNeverProducesNegativePixels)
{
    foveation::LayerGeometry g{foveation::DisplayConfig{},
                               foveation::MarModel{}};
    Rng rng(102);
    for (int i = 0; i < 2000; i++) {
        const double e1 = rng.uniform(0.5, 80.0);
        const double e2 = e1 + rng.uniform(0.0, 60.0);
        const Vec2 gaze{rng.uniform(-60.0, 60.0),
                        rng.uniform(-60.0, 60.0)};
        const auto px = g.pixelCounts(
            foveation::LayerPartition{e1, e2, gaze});
        ASSERT_GE(px.foveaPixels, 0.0);
        ASSERT_GE(px.middlePixels, 0.0);
        ASSERT_GE(px.outerPixels, 0.0);
        ASSERT_TRUE(std::isfinite(px.totalRendered()));
        ASSERT_GE(px.middleFactor, 1.0);
        ASSERT_GE(px.outerFactor, px.middleFactor - 1e-12);
    }
}

TEST(Fuzz, MotionCodecTotalFunction)
{
    core::MotionCodec codec{core::LiwcConfig{}};
    Rng rng(103);
    for (int i = 0; i < 20000; i++) {
        motion::MotionDelta d;
        d.dOrientation = Vec3{rng.normal(0.0, 50.0),
                              rng.normal(0.0, 50.0),
                              rng.normal(0.0, 50.0)};
        d.dPosition = Vec3{rng.normal(0.0, 0.5),
                           rng.normal(0.0, 0.5),
                           rng.normal(0.0, 0.5)};
        d.dGaze = Vec2{rng.normal(0.0, 10.0), rng.normal(0.0, 10.0)};
        const std::uint32_t idx = codec.encode(d);
        ASSERT_LT(idx, core::MotionCodec::kMotionEntries);
        // Pure function: same input, same output.
        ASSERT_EQ(codec.encode(d), idx);
    }
}

TEST(Fuzz, LiwcSurvivesAdversarialFeedback)
{
    foveation::LayerGeometry g{foveation::DisplayConfig{},
                               foveation::MarModel{}};
    core::Liwc liwc(core::LiwcConfig{}, g, 50e6, 134e6, 0.55);
    Rng rng(104);
    for (int i = 0; i < 2000; i++) {
        motion::MotionDelta d;
        d.dOrientation.x = rng.normal(0.0, 2.0);
        d.dGaze = Vec2{rng.normal(0.0, 3.0), rng.normal(0.0, 3.0)};
        const auto decision = liwc.selectEccentricity(
            d,
            static_cast<std::uint64_t>(rng.uniform(1e4, 1e7)),
            Vec2{rng.uniform(-30.0, 30.0), rng.uniform(-20.0, 20.0)});
        ASSERT_GE(decision.e1, foveation::LayerGeometry::kMinE1);
        ASSERT_LE(decision.e1,
                  g.display().maxEccentricity() + 1e-9);

        // Hostile measurements: spikes, zeros, contradictions.
        core::LiwcFeedback fb;
        fb.measuredLocal = rng.chance(0.1)
                               ? 0.0
                               : rng.uniform(1e-5, 0.2);
        fb.measuredRemote = rng.chance(0.1)
                                ? 1.0
                                : rng.uniform(1e-5, 0.2);
        fb.renderedTriangles = static_cast<std::uint64_t>(
            rng.uniform(0.0, 1e7));
        fb.peripheryPixels = rng.uniform(0.0, 1e7);
        fb.peripheryBytes =
            static_cast<Bytes>(rng.uniform(0.0, 1e7));
        fb.ackThroughput = rng.uniform(0.0, 1e9);
        liwc.update(decision, fb);

        // Predictor state must stay usable.
        ASSERT_TRUE(std::isfinite(liwc.predictor().gpuRate()));
        ASSERT_GT(liwc.predictor().gpuRate(), 0.0);
        ASSERT_GT(liwc.predictor().throughput(), 0.0);
    }
}

TEST(Fuzz, Fp16NeverWidensRange)
{
    Rng rng(105);
    for (int i = 0; i < 50000; i++) {
        const float v = static_cast<float>(rng.normal(0.0, 1e3));
        const float q = halfBitsToFloat(floatToHalfBits(v));
        if (std::isfinite(q)) {
            // Quantisation moves toward representable values; it
            // cannot flip sign.
            ASSERT_GE(q * v, 0.0f) << v;
        }
    }
}

TEST(Fuzz, CodecSizesFiniteAndOrdered)
{
    net::VideoCodec codec;
    Rng rng(106);
    for (int i = 0; i < 5000; i++) {
        const double px = rng.uniform(0.0, 2e7);
        const double complexity = rng.uniform(0.2, 2.0);
        const double factor = rng.uniform(1.0, 8.0);
        const Bytes plain =
            codec.compressedSize(px, complexity, factor, false);
        const Bytes with_depth =
            codec.compressedSize(px, complexity, factor, true);
        ASSERT_GE(with_depth, plain);
        ASSERT_LT(static_cast<double>(with_depth), 1e9);
    }
}

TEST(Fuzz, UcaWeightsAlwaysPartitionUnity)
{
    Rng rng(107);
    for (int i = 0; i < 20000; i++) {
        core::PixelPartition p;
        p.foveaRadius = rng.uniform(1.0, 500.0);
        p.middleRadius =
            p.foveaRadius + rng.uniform(0.0, 500.0);
        p.blendBand = rng.uniform(0.5, 64.0);
        const double r = rng.uniform(0.0, 1500.0);
        const core::LayerWeights w = core::layerWeights(p, r);
        ASSERT_NEAR(w.fovea + w.middle + w.outer, 1.0, 1e-9);
        ASSERT_GE(w.fovea, -1e-12);
        ASSERT_GE(w.middle, -1e-12);
        ASSERT_GE(w.outer, -1e-12);
    }
}

}  // namespace
}  // namespace qvr
