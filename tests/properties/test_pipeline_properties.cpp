/**
 * @file
 * Property sweeps over the full (benchmark x network) experiment
 * grid: pipeline invariants that must hold in every environment.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/qvr_system.hpp"

namespace qvr::core
{
namespace
{

using Params = std::tuple<const char *, const char *>;

net::ChannelConfig
channelByName(const std::string &name)
{
    if (name == "Wi-Fi")
        return net::ChannelConfig::wifi();
    if (name == "4G LTE")
        return net::ChannelConfig::lte4g();
    return net::ChannelConfig::early5g();
}

class EnvironmentSweep : public ::testing::TestWithParam<Params>
{
  protected:
    ExperimentSpec
    spec() const
    {
        ExperimentSpec s;
        s.benchmark = std::get<0>(GetParam());
        s.channel = channelByName(std::get<1>(GetParam()));
        s.numFrames = 120;
        return s;
    }
};

TEST_P(EnvironmentSweep, QvrFrameInvariants)
{
    const PipelineResult r = runExperiment(DesignPoint::Qvr, spec());
    const PipelineConfig cfg = spec().toConfig();
    const double e1_max = cfg.display().maxEccentricity();

    Seconds prev_display = 0.0;
    for (const auto &f : r.frames) {
        // Physical floor: sensor + display latencies are always paid.
        EXPECT_GE(f.mtpLatency,
                  cfg.sensorLatency + cfg.displayLatency);
        EXPECT_LT(f.mtpLatency, 0.5);
        // Partition stays legal.
        EXPECT_GE(f.e1, foveation::LayerGeometry::kMinE1 - 1e-9);
        EXPECT_LE(f.e1, e1_max + 1e-9);
        EXPECT_GE(f.e2, f.e1 - 1e-9);
        // Time advances.
        EXPECT_GT(f.displayTime, prev_display);
        prev_display = f.displayTime;
        // Energy components non-negative.
        EXPECT_GE(f.energy.gpu, 0.0);
        EXPECT_GE(f.energy.radio, 0.0);
        EXPECT_GE(f.energy.accelerators, 0.0);
        // Resolution fraction is a fraction.
        EXPECT_GT(f.renderedResolutionFraction, 0.0);
        EXPECT_LE(f.renderedResolutionFraction, 1.0 + 1e-9);
    }
}

TEST_P(EnvironmentSweep, QvrSendsLessThanRemoteOnly)
{
    const double remote =
        runExperiment(DesignPoint::Remote, spec())
            .meanTransmittedBytes();
    const double qvr =
        runExperiment(DesignPoint::Qvr, spec())
            .meanTransmittedBytes();
    EXPECT_LT(qvr, remote * 0.6);
}

TEST_P(EnvironmentSweep, QvrNeverSlowerThanRemoteOnly)
{
    const double remote =
        runExperiment(DesignPoint::Remote, spec()).meanMtp();
    const double qvr =
        runExperiment(DesignPoint::Qvr, spec()).meanMtp();
    EXPECT_LT(qvr, remote * 1.05);
}

TEST_P(EnvironmentSweep, LatencyBalanceReached)
{
    // Universal convergence property: in steady state the mean
    // remote/local ratio sits in a bounded band around 1 for every
    // environment (the fixed remote overheads keep it >= ~0.8).
    const PipelineResult r = runExperiment(DesignPoint::Qvr, spec());
    double ratio_sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 60; i < r.frames.size(); i++) {
        const auto &f = r.frames[i];
        if (f.tLocalRender > 0.0) {
            ratio_sum += f.tRemoteBranch / f.tLocalRender;
            n++;
        }
    }
    ASSERT_GT(n, 0u);
    const double mean_ratio = ratio_sum / static_cast<double>(n);
    EXPECT_GT(mean_ratio, 0.3) << "local-dominated imbalance";
    EXPECT_LT(mean_ratio, 4.0) << "remote-dominated imbalance";
}

TEST_P(EnvironmentSweep, DeterministicAcrossRuns)
{
    const PipelineResult a = runExperiment(DesignPoint::Qvr, spec());
    const PipelineResult b = runExperiment(DesignPoint::Qvr, spec());
    ASSERT_EQ(a.frames.size(), b.frames.size());
    for (std::size_t i = 0; i < a.frames.size(); i += 17) {
        EXPECT_DOUBLE_EQ(a.frames[i].mtpLatency,
                         b.frames[i].mtpLatency);
        EXPECT_DOUBLE_EQ(a.frames[i].e1, b.frames[i].e1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EnvironmentSweep,
    ::testing::Combine(::testing::Values("Doom3-H", "Doom3-L",
                                         "HL2-H", "HL2-L", "GRID",
                                         "UT3", "Wolf"),
                       ::testing::Values("Wi-Fi", "4G LTE",
                                         "Early 5G")),
    [](const ::testing::TestParamInfo<Params> &param_info) {
        std::string name = std::get<0>(param_info.param);
        name += "_";
        name += std::get<1>(param_info.param);
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

}  // namespace
}  // namespace qvr::core
