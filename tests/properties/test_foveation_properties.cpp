/**
 * @file
 * Property sweeps over the foveation geometry: invariants that must
 * hold for EVERY (eccentricity, gaze) combination, not just the
 * hand-picked cases of the unit tests.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "foveation/quality.hpp"

namespace qvr::foveation
{
namespace
{

using Params = std::tuple<double, double, double>;  // e1, gx, gy

class FoveationSweep : public ::testing::TestWithParam<Params>
{
  protected:
    FoveationSweep() : geometry_(DisplayConfig{}, MarModel{}) {}

    double e1() const { return std::get<0>(GetParam()); }
    Vec2
    gaze() const
    {
        return Vec2{std::get<1>(GetParam()), std::get<2>(GetParam())};
    }

    LayerGeometry geometry_;
};

TEST_P(FoveationSweep, NativeAreasPartitionTheScreen)
{
    const double e2 = geometry_.selectOptimalE2(e1(), gaze());
    const LayerPixels px =
        geometry_.pixelCounts(LayerPartition{e1(), e2, gaze()});
    const double native =
        px.foveaPixels +
        px.middlePixels * px.middleFactor * px.middleFactor +
        px.outerPixels * px.outerFactor * px.outerFactor;
    const double total =
        static_cast<double>(geometry_.display().pixelCount());
    EXPECT_NEAR(native, total, total * 2e-3);
}

TEST_P(FoveationSweep, RenderedNeverExceedsNative)
{
    const double e2 = geometry_.selectOptimalE2(e1(), gaze());
    const LayerPartition p{e1(), e2, gaze()};
    const double pixel_fraction =
        geometry_.renderedResolutionFraction(p);
    const double linear_fraction =
        geometry_.linearResolutionFraction(p);
    EXPECT_GT(pixel_fraction, 0.0);
    EXPECT_LE(pixel_fraction, 1.0 + 1e-9);
    EXPECT_GE(linear_fraction, pixel_fraction - 1e-9);
    EXPECT_LE(linear_fraction, 1.0 + 1e-9);
}

TEST_P(FoveationSweep, GrowingFoveaShrinksPeriphery)
{
    if (e1() + 5.0 > geometry_.display().maxEccentricity())
        GTEST_SKIP() << "no headroom to grow";
    const double e2a = geometry_.selectOptimalE2(e1(), gaze());
    const double e2b = geometry_.selectOptimalE2(e1() + 5.0, gaze());
    const double small =
        geometry_.pixelCounts(LayerPartition{e1(), e2a, gaze()})
            .peripheryPixels();
    const double big =
        geometry_
            .pixelCounts(LayerPartition{e1() + 5.0, e2b, gaze()})
            .peripheryPixels();
    EXPECT_LE(big, small * 1.001);
}

TEST_P(FoveationSweep, MarPartitionIsAlwaysLossless)
{
    // The Section 3.1 survey result as a universal property: any
    // partition whose factors come from the MAR model audits clean.
    const double e2 = geometry_.selectOptimalE2(e1(), gaze());
    const QualityReport r = auditPartition(
        geometry_, LayerPartition{e1(), e2, gaze()});
    EXPECT_TRUE(r.perceptuallyLossless)
        << "e1=" << e1() << " gaze=(" << gaze().x << ","
        << gaze().y << ")";
}

TEST_P(FoveationSweep, OracleAgreesWithDirectGeometry)
{
    PartitionOracle oracle(geometry_);
    const auto &r = oracle.resolve(e1(), gaze());
    // The oracle quantises gaze to 1 degree; recompute at the
    // quantised point.
    const Vec2 gq{std::round(gaze().x), std::round(gaze().y)};
    const double direct =
        geometry_.selectOptimalE2(r.partition.e1, gq);
    EXPECT_DOUBLE_EQ(r.partition.e2, direct);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FoveationSweep,
    ::testing::Combine(::testing::Values(5.0, 8.0, 12.0, 18.0, 25.0,
                                         35.0, 50.0),
                       ::testing::Values(-20.0, 0.0, 15.0),
                       ::testing::Values(-10.0, 0.0, 10.0)));

}  // namespace
}  // namespace qvr::foveation
