/**
 * @file
 * Property tests for the RNG-stream independence the parallel
 * experiment runner leans on: identical (config, seed) cells produce
 * identical results even when run concurrently (no hidden shared
 * state anywhere in the pipeline stack), and different seeds produce
 * uncorrelated streams.  Runs under `ctest -L tsan` so TSan vets the
 * concurrent executions.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/qvr_system.hpp"
#include "sim/parallel.hpp"

namespace
{

using namespace qvr;

/** FNV-1a over the bit patterns of every per-frame measurement: two
 *  runs digest equal iff they are bit-identical where it matters. */
std::uint64_t
digest(const core::PipelineResult &r)
{
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    auto mixd = [&mix](double x) {
        mix(std::bit_cast<std::uint64_t>(x));
    };
    for (const auto &f : r.frames) {
        mix(f.index);
        mixd(f.e1);
        mixd(f.e2);
        mixd(f.tLocalRender);
        mixd(f.tRemoteRender);
        mixd(f.tNetwork);
        mixd(f.tRemoteBranch);
        mixd(f.mtpLatency);
        mixd(f.frameInterval);
        mixd(f.displayTime);
        mix(f.transmittedBytes);
        mix(f.localTriangles);
        mixd(f.energy.gpu);
        mixd(f.energy.radio);
        mixd(f.energy.vpu);
        mixd(f.energy.accelerators);
    }
    return h;
}

core::ExperimentSpec
specWithSeed(std::uint64_t seed)
{
    core::ExperimentSpec spec;
    spec.benchmark = "HL2-H";
    spec.numFrames = 80;
    spec.seed = seed;
    return spec;
}

TEST(RngIndependence, SameConfigSameSeedIdenticalUnderConcurrency)
{
    const auto reference =
        core::runExperiment(core::DesignPoint::Qvr, specWithSeed(7));
    const std::uint64_t expected = digest(reference);

    // Eight concurrent replicas of the SAME cell: any hidden shared
    // mutable state (a static cache, a global RNG) would let one
    // replica perturb another.
    const auto replicas = sim::runParallel(
        8,
        [](std::size_t) {
            return core::runExperiment(core::DesignPoint::Qvr,
                                       specWithSeed(7));
        },
        8);
    for (std::size_t i = 0; i < replicas.size(); i++) {
        SCOPED_TRACE("replica " + std::to_string(i));
        EXPECT_EQ(digest(replicas[i]), expected);
    }
}

TEST(RngIndependence, DifferentSeedsDifferentTrajectories)
{
    const auto seeds = sim::runParallel(
        4,
        [](std::size_t i) {
            return digest(core::runExperiment(core::DesignPoint::Qvr,
                                              specWithSeed(i + 1)));
        },
        4);
    for (std::size_t a = 0; a < seeds.size(); a++)
        for (std::size_t b = a + 1; b < seeds.size(); b++)
            EXPECT_NE(seeds[a], seeds[b])
                << "seeds " << a + 1 << " and " << b + 1;
}

TEST(RngIndependence, RawStreamsUncorrelatedAcrossSeeds)
{
    constexpr std::size_t kN = 20000;
    Rng a(1), b(2);
    double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
    for (std::size_t i = 0; i < kN; i++) {
        const double x = a.uniform();
        const double y = b.uniform();
        sa += x;
        sb += y;
        saa += x * x;
        sbb += y * y;
        sab += x * y;
    }
    const double n = static_cast<double>(kN);
    const double cov = sab / n - (sa / n) * (sb / n);
    const double va = saa / n - (sa / n) * (sa / n);
    const double vb = sbb / n - (sb / n) * (sb / n);
    const double rho = cov / std::sqrt(va * vb);
    EXPECT_LT(std::abs(rho), 0.05);
}

TEST(RngIndependence, SplitChildrenUncorrelated)
{
    constexpr std::size_t kN = 20000;
    Rng parent(42);
    Rng a = parent.split(1);
    Rng b = parent.split(2);
    double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
    for (std::size_t i = 0; i < kN; i++) {
        const double x = a.uniform();
        const double y = b.uniform();
        sa += x;
        sb += y;
        saa += x * x;
        sbb += y * y;
        sab += x * y;
    }
    const double n = static_cast<double>(kN);
    const double cov = sab / n - (sa / n) * (sb / n);
    const double va = saa / n - (sa / n) * (sa / n);
    const double vb = sbb / n - (sb / n) * (sb / n);
    const double rho = cov / std::sqrt(va * vb);
    EXPECT_LT(std::abs(rho), 0.05);
}

TEST(RngIndependence, ConcurrentGenerationMatchesSerial)
{
    // Two generators with the same (seed, stream) drained on
    // different threads must emit the serial sequence.
    std::vector<std::uint32_t> serial;
    {
        Rng r(123, 456);
        for (int i = 0; i < 1000; i++)
            serial.push_back(r.next32());
    }
    const auto streams = sim::runParallel(
        4,
        [](std::size_t) {
            Rng r(123, 456);
            std::vector<std::uint32_t> out;
            for (int i = 0; i < 1000; i++)
                out.push_back(r.next32());
            return out;
        },
        4);
    for (const auto &s : streams)
        EXPECT_EQ(s, serial);
}

}  // namespace
