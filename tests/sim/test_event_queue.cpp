/**
 * @file
 * EventQueue: ordering, priorities, cancellation, re-entrant
 * scheduling, runUntil semantics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace qvr::sim
{
namespace
{

TEST(EventQueue, DispatchesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, SameTimePriorityThenInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1.0, [&] { order.push_back(10); }, 5);
    q.schedule(1.0, [&] { order.push_back(20); }, -1);
    q.schedule(1.0, [&] { order.push_back(30); }, 5);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{20, 10, 30}));
}

TEST(EventQueue, ScheduleAfterUsesNow)
{
    EventQueue q;
    Seconds fired_at = -1.0;
    q.schedule(2.0, [&] {
        q.scheduleAfter(0.5, [&] { fired_at = q.now(); });
    });
    q.run();
    EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(EventQueue, CancelPreventsDispatch)
{
    EventQueue q;
    bool fired = false;
    const EventId id = q.schedule(1.0, [&] { fired = true; });
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_TRUE(q.deschedule(id));
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_FALSE(q.deschedule(id));  // double-cancel rejected
    q.run();
    EXPECT_FALSE(fired);
}

// Regression: cancelling an id that has ALREADY FIRED used to be
// accepted — it slipped into the cancelled list (never reclaimed,
// since its record had left the heap) and decremented the pending
// count, eventually underflowing it.  A fired id is not pending, so
// the cancel must be a rejected no-op.
TEST(EventQueue, DescheduleAfterFireIsRejected)
{
    EventQueue q;
    const EventId id = q.schedule(1.0, [] {});
    q.run();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_FALSE(q.deschedule(id));
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_TRUE(q.empty());
}

// The fired-id cancel must not poison later events either: before the
// fix the leaked cancelled entry could only grow, and the corrupted
// count misreported the queue as empty (or wrapped around).
TEST(EventQueue, DescheduleAfterFireDoesNotPerturbLaterEvents)
{
    EventQueue q;
    const EventId fired = q.schedule(1.0, [] {});
    q.run();
    ASSERT_FALSE(q.deschedule(fired));

    int count = 0;
    q.schedule(2.0, [&] { count++; });
    q.schedule(3.0, [&] { count++; });
    EXPECT_EQ(q.pending(), 2u);
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.dispatched(), 3u);
}

TEST(EventQueue, DoubleDescheduleCountsOnce)
{
    EventQueue q;
    bool fired = false;
    q.schedule(1.0, [&] { fired = true; });
    const EventId id = q.schedule(2.0, [] {});
    EXPECT_EQ(q.pending(), 2u);
    EXPECT_TRUE(q.deschedule(id));
    EXPECT_EQ(q.pending(), 1u);
    // Second, third... cancels of the same id are rejected and leave
    // the count alone.
    EXPECT_FALSE(q.deschedule(id));
    EXPECT_FALSE(q.deschedule(id));
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(q.dispatched(), 1u);
}

TEST(EventQueue, UnknownIdDescheduleIsRejected)
{
    EventQueue q;
    q.schedule(1.0, [] {});
    EXPECT_FALSE(q.deschedule(EventId{999999}));
    EXPECT_EQ(q.pending(), 1u);
}

// pending() accounting across a mixed schedule/fire/cancel history:
// every transition is exercised and the count must track the live
// set exactly.
TEST(EventQueue, PendingTracksLiveSetThroughMixedHistory)
{
    EventQueue q;
    std::vector<EventId> ids;
    for (int i = 1; i <= 6; i++)
        ids.push_back(
            q.schedule(static_cast<double>(i), [] {}));
    EXPECT_EQ(q.pending(), 6u);

    EXPECT_TRUE(q.deschedule(ids[1]));   // cancel t=2
    EXPECT_TRUE(q.deschedule(ids[4]));   // cancel t=5
    EXPECT_EQ(q.pending(), 4u);

    q.runUntil(3.5);                     // fires t=1, t=3
    EXPECT_EQ(q.pending(), 2u);
    EXPECT_EQ(q.dispatched(), 2u);

    EXPECT_FALSE(q.deschedule(ids[0]));  // fired
    EXPECT_FALSE(q.deschedule(ids[1]));  // already cancelled
    EXPECT_EQ(q.pending(), 2u);

    q.run();                             // fires t=4, t=6
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.dispatched(), 4u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ReentrantSchedulingChain)
{
    EventQueue q;
    int count = 0;
    std::function<void()> tick = [&] {
        count++;
        if (count < 10)
            q.scheduleAfter(1.0, tick);
    };
    q.schedule(0.0, tick);
    q.run();
    EXPECT_EQ(count, 10);
    EXPECT_DOUBLE_EQ(q.now(), 9.0);
    EXPECT_EQ(q.dispatched(), 10u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int count = 0;
    for (int i = 1; i <= 5; i++)
        q.schedule(static_cast<double>(i), [&] { count++; });
    q.runUntil(2.5);
    EXPECT_EQ(count, 2);
    EXPECT_DOUBLE_EQ(q.now(), 2.5);
    EXPECT_EQ(q.pending(), 3u);
    q.run();
    EXPECT_EQ(count, 5);
}

TEST(EventQueue, EmptyRunIsSafe)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_DOUBLE_EQ(q.run(), 0.0);
}

TEST(EventQueueDeath, SchedulingInPastPanics)
{
    EventQueue q;
    q.schedule(5.0, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(1.0, [] {}), "scheduling into the past");
}

}  // namespace
}  // namespace qvr::sim
