/**
 * @file
 * EventQueue: ordering, priorities, cancellation, re-entrant
 * scheduling, runUntil semantics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace qvr::sim
{
namespace
{

TEST(EventQueue, DispatchesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, SameTimePriorityThenInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1.0, [&] { order.push_back(10); }, 5);
    q.schedule(1.0, [&] { order.push_back(20); }, -1);
    q.schedule(1.0, [&] { order.push_back(30); }, 5);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{20, 10, 30}));
}

TEST(EventQueue, ScheduleAfterUsesNow)
{
    EventQueue q;
    Seconds fired_at = -1.0;
    q.schedule(2.0, [&] {
        q.scheduleAfter(0.5, [&] { fired_at = q.now(); });
    });
    q.run();
    EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(EventQueue, CancelPreventsDispatch)
{
    EventQueue q;
    bool fired = false;
    const EventId id = q.schedule(1.0, [&] { fired = true; });
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_TRUE(q.deschedule(id));
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_FALSE(q.deschedule(id));  // double-cancel rejected
    q.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, ReentrantSchedulingChain)
{
    EventQueue q;
    int count = 0;
    std::function<void()> tick = [&] {
        count++;
        if (count < 10)
            q.scheduleAfter(1.0, tick);
    };
    q.schedule(0.0, tick);
    q.run();
    EXPECT_EQ(count, 10);
    EXPECT_DOUBLE_EQ(q.now(), 9.0);
    EXPECT_EQ(q.dispatched(), 10u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int count = 0;
    for (int i = 1; i <= 5; i++)
        q.schedule(static_cast<double>(i), [&] { count++; });
    q.runUntil(2.5);
    EXPECT_EQ(count, 2);
    EXPECT_DOUBLE_EQ(q.now(), 2.5);
    EXPECT_EQ(q.pending(), 3u);
    q.run();
    EXPECT_EQ(count, 5);
}

TEST(EventQueue, EmptyRunIsSafe)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_DOUBLE_EQ(q.run(), 0.0);
}

TEST(EventQueueDeath, SchedulingInPastPanics)
{
    EventQueue q;
    q.schedule(5.0, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(1.0, [] {}), "scheduling into the past");
}

}  // namespace
}  // namespace qvr::sim
