/**
 * @file
 * The parallel experiment runner's determinism contract: a sweep
 * fanned across 1, 2 or 8 workers must produce FrameStats sequences
 * that are BIT-identical to the serial loop, for pipeline cells and
 * for whole collaborative sessions.  Built with -DQVR_SANITIZE=thread
 * and run via `ctest -L tsan`, this is also the data-race gate for
 * the shared component models the cells touch.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "collab/session.hpp"
#include "core/qvr_system.hpp"
#include "sim/parallel.hpp"
#include "sim/thread_pool.hpp"

namespace
{

using namespace qvr;

/** Bit pattern of a double: the comparison the contract is stated
 *  in.  (EXPECT_DOUBLE_EQ tolerates ULP noise; we tolerate none.) */
std::uint64_t
bits(double x)
{
    return std::bit_cast<std::uint64_t>(x);
}

void
expectBitIdentical(const core::FrameStats &a, const core::FrameStats &b)
{
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(bits(a.e1), bits(b.e1));
    EXPECT_EQ(bits(a.e2), bits(b.e2));
    EXPECT_EQ(bits(a.tLocalRender), bits(b.tLocalRender));
    EXPECT_EQ(bits(a.tRemoteRender), bits(b.tRemoteRender));
    EXPECT_EQ(bits(a.tNetwork), bits(b.tNetwork));
    EXPECT_EQ(bits(a.tDecode), bits(b.tDecode));
    EXPECT_EQ(bits(a.tComposition), bits(b.tComposition));
    EXPECT_EQ(bits(a.tAtw), bits(b.tAtw));
    EXPECT_EQ(bits(a.tRemoteBranch), bits(b.tRemoteBranch));
    EXPECT_EQ(bits(a.mtpLatency), bits(b.mtpLatency));
    EXPECT_EQ(bits(a.frameInterval), bits(b.frameInterval));
    EXPECT_EQ(bits(a.displayTime), bits(b.displayTime));
    EXPECT_EQ(bits(a.gpuBusy), bits(b.gpuBusy));
    EXPECT_EQ(a.transmittedBytes, b.transmittedBytes);
    EXPECT_EQ(bits(a.renderedResolutionFraction),
              bits(b.renderedResolutionFraction));
    EXPECT_EQ(a.localTriangles, b.localTriangles);
    EXPECT_EQ(bits(a.energy.gpu), bits(b.energy.gpu));
    EXPECT_EQ(bits(a.energy.radio), bits(b.energy.radio));
    EXPECT_EQ(bits(a.energy.vpu), bits(b.energy.vpu));
    EXPECT_EQ(bits(a.energy.accelerators), bits(b.energy.accelerators));
    EXPECT_EQ(a.meetsFrameRate, b.meetsFrameRate);
    EXPECT_EQ(a.meetsMtp, b.meetsMtp);
    EXPECT_EQ(a.reprojected, b.reprojected);
    EXPECT_EQ(bits(a.reprojectionErrorDeg), bits(b.reprojectionErrorDeg));
    EXPECT_EQ(bits(a.peripheryQuality), bits(b.peripheryQuality));
    EXPECT_EQ(a.degradationLevel, b.degradationLevel);
    EXPECT_EQ(a.localFallback, b.localFallback);
    EXPECT_EQ(a.linkRetries, b.linkRetries);
    EXPECT_EQ(a.lostLayers, b.lostLayers);
    EXPECT_EQ(bits(a.linkStall), bits(b.linkStall));
}

void
expectBitIdentical(const core::PipelineResult &a,
                   const core::PipelineResult &b)
{
    EXPECT_EQ(a.design, b.design);
    EXPECT_EQ(a.benchmark, b.benchmark);
    ASSERT_EQ(a.frames.size(), b.frames.size());
    for (std::size_t i = 0; i < a.frames.size(); i++) {
        SCOPED_TRACE("frame " + std::to_string(i));
        expectBitIdentical(a.frames[i], b.frames[i]);
    }
}

/** The sweep under test: every design on two benchmarks. */
std::vector<std::pair<core::DesignPoint, const char *>>
pipelineGrid()
{
    std::vector<std::pair<core::DesignPoint, const char *>> grid;
    for (auto d : {core::DesignPoint::Local, core::DesignPoint::Remote,
                   core::DesignPoint::Static, core::DesignPoint::Ffr,
                   core::DesignPoint::Dfr, core::DesignPoint::SwQvr,
                   core::DesignPoint::Qvr,
                   core::DesignPoint::Resilient}) {
        grid.emplace_back(d, "Doom3-H");
        grid.emplace_back(d, "GRID");
    }
    return grid;
}

core::PipelineResult
runPipelineCell(std::size_t i)
{
    const auto grid = pipelineGrid();
    core::ExperimentSpec spec;
    spec.benchmark = grid[i].second;
    spec.numFrames = 60;
    spec.seed = 7;
    return core::runExperiment(grid[i].first, spec);
}

collab::SessionConfig
sessionCell(std::size_t i)
{
    const std::size_t users[] = {1, 2, 4};
    collab::SessionConfig cfg;
    cfg.users = users[i % 3];
    cfg.design = i < 3 ? collab::SessionDesign::Static
                       : collab::SessionDesign::Qvr;
    cfg.benchmark = "HL2-H";
    cfg.numFrames = 40;
    return cfg;
}

TEST(ParallelRunner, PipelineSweepBitExactAcrossThreadCounts)
{
    const std::size_t n = pipelineGrid().size();

    std::vector<core::PipelineResult> serial;
    for (std::size_t i = 0; i < n; i++)
        serial.push_back(runPipelineCell(i));

    for (std::size_t threads : {1u, 2u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        const auto parallel =
            sim::runParallel(n, runPipelineCell, threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < n; i++) {
            SCOPED_TRACE("cell " + std::to_string(i));
            expectBitIdentical(serial[i], parallel[i]);
        }
    }
}

TEST(ParallelRunner, SessionSweepBitExactAcrossThreadCounts)
{
    const std::size_t n = 6;
    auto run = [](std::size_t i) {
        return collab::runSession(sessionCell(i));
    };

    std::vector<collab::SessionResult> serial;
    for (std::size_t i = 0; i < n; i++)
        serial.push_back(run(i));

    for (std::size_t threads : {1u, 2u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        const auto parallel = sim::runParallel(n, run, threads);
        for (std::size_t i = 0; i < n; i++) {
            SCOPED_TRACE("session " + std::to_string(i));
            EXPECT_EQ(bits(serial[i].egressUtilisation),
                      bits(parallel[i].egressUtilisation));
            EXPECT_EQ(bits(serial[i].serverUtilisation),
                      bits(parallel[i].serverUtilisation));
            ASSERT_EQ(serial[i].perUser.size(),
                      parallel[i].perUser.size());
            for (std::size_t u = 0; u < serial[i].perUser.size(); u++) {
                SCOPED_TRACE("user " + std::to_string(u));
                expectBitIdentical(serial[i].perUser[u],
                                   parallel[i].perUser[u]);
            }
        }
    }
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    sim::ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; i++)
        pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    sim::ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 3; batch++) {
        for (int i = 0; i < 10; i++)
            pool.submit([&count] { count.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(count.load(), (batch + 1) * 10);
    }
}

TEST(ThreadPool, DefaultParallelismIsPositive)
{
    EXPECT_GE(sim::ThreadPool::defaultParallelism(), 1u);
}

TEST(ParallelRunner, ResultsLandInIndexOrder)
{
    const auto out = sim::runParallel(
        257, [](std::size_t i) { return i * i; }, 8);
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); i++)
        EXPECT_EQ(out[i], i * i);
}

TEST(ParallelRunner, SharedPoolOverloadMatchesOneShot)
{
    sim::ThreadPool pool(3);
    const auto a = sim::runParallel(
        pool, 50, [](std::size_t i) { return 3 * i + 1; });
    const auto b = sim::runParallel(
        50, [](std::size_t i) { return 3 * i + 1; }, 2);
    EXPECT_EQ(a, b);
}

TEST(ParallelRunner, PropagatesTaskExceptions)
{
    EXPECT_THROW(
        sim::runParallel(
            16,
            [](std::size_t i) {
                if (i == 11)
                    throw std::runtime_error("cell 11 exploded");
                return i;
            },
            4),
        std::runtime_error);
}

TEST(ParallelRunner, EmptyGridIsFine)
{
    const auto out =
        sim::runParallel(0, [](std::size_t i) { return i; }, 4);
    EXPECT_TRUE(out.empty());
}

}  // namespace
