/**
 * @file
 * Property/fuzz test of the event kernel against a naive reference.
 *
 * The reference model is a plain sorted vector of (when, priority,
 * id) records with O(n) operations — slow but obviously correct.
 * Randomised interleavings of schedule / scheduleAfter / deschedule /
 * runUntil are applied to both implementations and every observable
 * must agree at every step: the dispatch order, the dispatched()
 * counter, deschedule()'s accept/reject verdicts, pending(), and
 * runUntil()'s clock semantics (now() parks at the limit while
 * events remain, or at the last dispatch when the queue drains).
 *
 * This is the safety net under the kernel's hash-set cancellation
 * rework: any divergence in tie-breaking or liveness accounting
 * between the heap implementation and the sorted-vector semantics
 * fails here with the offending seed.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"

namespace qvr::sim
{
namespace
{

/** Sorted-vector reference model of the kernel's contract. */
class ReferenceQueue
{
  public:
    std::uint64_t schedule(Seconds when, Priority prio)
    {
        const std::uint64_t id = nextId_++;
        pending_.push_back(Rec{when, prio, id});
        return id;
    }

    bool deschedule(std::uint64_t id)
    {
        const auto it = std::find_if(
            pending_.begin(), pending_.end(),
            [id](const Rec &r) { return r.id == id; });
        if (it == pending_.end())
            return false;
        pending_.erase(it);
        return true;
    }

    /** Dispatch every event with when <= limit, in (when, prio, id)
     *  order; append ids to @p fired.  Returns the final clock. */
    Seconds runUntil(Seconds limit, std::vector<std::uint64_t> &fired)
    {
        for (;;) {
            const auto it = std::min_element(
                pending_.begin(), pending_.end(),
                [](const Rec &a, const Rec &b) {
                    if (a.when != b.when)
                        return a.when < b.when;
                    if (a.prio != b.prio)
                        return a.prio < b.prio;
                    return a.id < b.id;
                });
            if (it == pending_.end())
                return now_;  // drained: clock stays at last fire
            if (it->when > limit) {
                now_ = limit;
                return now_;
            }
            now_ = it->when;
            dispatched_++;
            fired.push_back(it->id);
            pending_.erase(it);
        }
    }

    Seconds now() const { return now_; }
    std::size_t pending() const { return pending_.size(); }
    std::uint64_t dispatched() const { return dispatched_; }

  private:
    struct Rec
    {
        Seconds when;
        Priority prio;
        std::uint64_t id;
    };
    std::vector<Rec> pending_;
    Seconds now_ = 0.0;
    std::uint64_t nextId_ = 1;
    std::uint64_t dispatched_ = 0;
};

/** One fuzzed episode: random op mix, full observable comparison. */
void
fuzzEpisode(std::uint64_t seed)
{
    Rng rng(seed, 0xe7e27u);
    EventQueue q;
    ReferenceQueue ref;

    // Parallel id spaces: ids_[k].first is the kernel's id for the
    // reference's ids_[k].second.  Retired (fired/cancelled) ids stay
    // in the pool so deschedule gets exercised against them too.
    std::vector<std::pair<EventId, std::uint64_t>> ids;
    std::vector<std::uint64_t> fired_actual;
    std::vector<std::uint64_t> fired_expected;

    const auto onFire = [&fired_actual](std::uint64_t ref_id) {
        fired_actual.push_back(ref_id);
    };

    for (int step = 0; step < 400; step++) {
        const double dice = rng.uniform();
        if (dice < 0.55) {
            // Coarse-grained times force heavy (when, prio, id)
            // tie-breaking; a few distinct priorities force the
            // middle key.
            const Seconds when =
                q.now() +
                static_cast<double>(rng.next32() % 8) * 0.25;
            const Priority prio =
                static_cast<Priority>(rng.next32() % 3) - 1;
            const std::uint64_t ref_id = ref.schedule(when, prio);
            EventId id;
            if (rng.uniform() < 0.5) {
                id = q.schedule(
                    when, [onFire, ref_id] { onFire(ref_id); },
                    prio);
            } else {
                id = q.scheduleAfter(
                    when - q.now(),
                    [onFire, ref_id] { onFire(ref_id); }, prio);
            }
            ids.emplace_back(id, ref_id);
        } else if (dice < 0.75 && !ids.empty()) {
            // Cancel a random known id — possibly live, possibly
            // already fired or already cancelled.  Verdicts must
            // match, and a rejected cancel must not shift counts.
            const auto &pick =
                ids[rng.next32() % static_cast<std::uint32_t>(
                                       ids.size())];
            EXPECT_EQ(q.deschedule(pick.first),
                      ref.deschedule(pick.second))
                << "seed " << seed << " step " << step;
        } else {
            const Seconds limit =
                q.now() +
                static_cast<double>(rng.next32() % 5) * 0.5;
            const Seconds t_actual = q.runUntil(limit);
            const Seconds t_expected =
                ref.runUntil(limit, fired_expected);
            EXPECT_EQ(t_actual, t_expected)
                << "seed " << seed << " step " << step;
            EXPECT_EQ(q.now(), ref.now())
                << "seed " << seed << " step " << step;
        }
        ASSERT_EQ(q.pending(), ref.pending())
            << "seed " << seed << " step " << step;
        ASSERT_EQ(fired_actual, fired_expected)
            << "seed " << seed << " step " << step;
    }

    // Drain and compare the tail.
    const Seconds t_actual = q.run();
    const Seconds t_expected =
        ref.runUntil(kNoDeadline, fired_expected);
    EXPECT_EQ(t_actual, t_expected) << "seed " << seed;
    EXPECT_EQ(fired_actual, fired_expected) << "seed " << seed;
    EXPECT_EQ(q.dispatched(), ref.dispatched()) << "seed " << seed;
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueFuzz, MatchesSortedVectorReference)
{
    for (std::uint64_t seed = 1; seed <= 40; seed++)
        fuzzEpisode(seed);
}

// Re-entrant flavour: every fired event reschedules a follow-up with
// probability derived from its id, so the heap is reshaped mid-
// dispatch.  The reference replays the same deterministic rule.
TEST(EventQueueFuzz, ReentrantChainsMatchReference)
{
    for (std::uint64_t seed = 100; seed < 110; seed++) {
        Rng rng(seed, 0x5eedu);
        EventQueue q;

        // Deterministic follow-up rule: event k schedules event
        // k + 16 at when + 0.75 while k + 16 < 64.
        std::vector<std::uint64_t> fired;
        std::function<void(std::uint64_t, Seconds)> fire =
            [&](std::uint64_t k, Seconds when) {
                fired.push_back(k);
                if (k + 16 < 64)
                    q.schedule(when + 0.75,
                               [&fire, k, when] {
                                   fire(k + 16, when + 0.75);
                               },
                               static_cast<Priority>(k % 3));
            };
        for (std::uint64_t k = 0; k < 16; k++) {
            const Seconds when =
                static_cast<double>(rng.next32() % 4) * 0.5;
            q.schedule(when, [&fire, k, when] { fire(k, when); },
                       static_cast<Priority>(k % 3));
        }
        q.run();

        // Reference: expand the same rule eagerly, then sort by the
        // kernel's (when, prio, insertion-order) discipline.  The
        // insertion order of a follow-up equals its parent's fire
        // rank, which the sort itself determines — so replay
        // iteratively instead: smallest (when, prio, seq) next.
        struct Rec
        {
            Seconds when;
            Priority prio;
            std::uint64_t seq;
            std::uint64_t k;
        };
        std::vector<Rec> pending;
        std::uint64_t seq = 0;
        {
            Rng rng2(seed, 0x5eedu);
            for (std::uint64_t k = 0; k < 16; k++) {
                const Seconds when =
                    static_cast<double>(rng2.next32() % 4) * 0.5;
                pending.push_back(
                    Rec{when, static_cast<Priority>(k % 3), seq++,
                        k});
            }
        }
        std::vector<std::uint64_t> expected;
        while (!pending.empty()) {
            const auto it = std::min_element(
                pending.begin(), pending.end(),
                [](const Rec &a, const Rec &b) {
                    if (a.when != b.when)
                        return a.when < b.when;
                    if (a.prio != b.prio)
                        return a.prio < b.prio;
                    return a.seq < b.seq;
                });
            const Rec r = *it;
            pending.erase(it);
            expected.push_back(r.k);
            if (r.k + 16 < 64)
                pending.push_back(Rec{
                    r.when + 0.75,
                    static_cast<Priority>(r.k % 3), seq++,
                    r.k + 16});
        }
        EXPECT_EQ(fired, expected) << "seed " << seed;
    }
}

}  // namespace
}  // namespace qvr::sim
