/**
 * @file
 * BusyResource / MultiServerResource queueing semantics.
 */

#include <gtest/gtest.h>

#include "sim/resource.hpp"

namespace qvr::sim
{
namespace
{

TEST(BusyResource, IdleServesImmediately)
{
    BusyResource r;
    EXPECT_DOUBLE_EQ(r.serve(1.0, 0.5), 1.5);
    EXPECT_DOUBLE_EQ(r.nextFree(), 1.5);
}

TEST(BusyResource, BusyQueues)
{
    BusyResource r;
    r.serve(0.0, 2.0);               // busy until 2.0
    EXPECT_DOUBLE_EQ(r.serve(1.0, 1.0), 3.0);  // waits
    EXPECT_DOUBLE_EQ(r.serve(5.0, 1.0), 6.0);  // idle gap
}

TEST(BusyResource, BusyTimeAccumulates)
{
    BusyResource r;
    r.serve(0.0, 2.0);
    r.serve(10.0, 3.0);
    EXPECT_DOUBLE_EQ(r.busyTime(), 5.0);
    EXPECT_DOUBLE_EQ(r.utilisation(20.0), 0.25);
    EXPECT_DOUBLE_EQ(r.utilisation(0.0), 0.0);
}

TEST(BusyResource, ResetClears)
{
    BusyResource r;
    r.serve(0.0, 2.0);
    r.reset();
    EXPECT_DOUBLE_EQ(r.nextFree(), 0.0);
    EXPECT_DOUBLE_EQ(r.busyTime(), 0.0);
}

TEST(BusyResource, ZeroServiceIsFine)
{
    BusyResource r;
    EXPECT_DOUBLE_EQ(r.serve(3.0, 0.0), 3.0);
}

TEST(BusyResource, FifoIsCallOrderNotArrivalOrder)
{
    // The serving stack leans on this: serve() is FIFO in *call*
    // order, so a later call with an earlier arrival still queues
    // behind work already accepted.
    BusyResource r;
    r.serve(5.0, 2.0);  // busy 5..7
    EXPECT_DOUBLE_EQ(r.serve(0.0, 1.0), 8.0);  // arrived first, waits
}

TEST(BusyResource, NextFreeIsMonotoneAcrossServes)
{
    BusyResource r;
    Seconds prev = r.nextFree();
    const double arrivals[] = {0.0, 0.5, 10.0, 3.0, 11.0};
    for (const double a : arrivals) {
        r.serve(a, 0.25);
        EXPECT_GE(r.nextFree(), prev);
        prev = r.nextFree();
    }
}

TEST(BusyResource, BusyTimeCountsServiceOnly)
{
    // Neither queueing delay nor idle gaps count toward busyTime —
    // utilisation derived from it measures work, not waiting.
    BusyResource r;
    r.serve(0.0, 2.0);   // service 2
    r.serve(1.0, 1.0);   // waits 1s, service 1
    r.serve(50.0, 3.0);  // 47s idle gap, service 3
    EXPECT_DOUBLE_EQ(r.busyTime(), 6.0);
}

TEST(MultiServerResource, ParallelismUpToServerCount)
{
    MultiServerResource r(2);
    EXPECT_DOUBLE_EQ(r.serve(0.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(r.serve(0.0, 1.0), 1.0);  // second server
    EXPECT_DOUBLE_EQ(r.serve(0.0, 1.0), 2.0);  // queues
    EXPECT_DOUBLE_EQ(r.busyTime(), 3.0);
}

TEST(MultiServerResource, LeastLoadedDispatch)
{
    MultiServerResource r(2);
    r.serve(0.0, 10.0);  // server A busy to 10
    r.serve(0.0, 1.0);   // server B busy to 1
    // New arrival at 2 should land on B (free at 1), not queue on A.
    EXPECT_DOUBLE_EQ(r.serve(2.0, 1.0), 3.0);
}

TEST(MultiServerResource, NextFreeIsEarliestServer)
{
    MultiServerResource r(3);
    r.serve(0.0, 5.0);
    EXPECT_DOUBLE_EQ(r.nextFree(), 0.0);  // two idle servers
    r.serve(0.0, 4.0);
    r.serve(0.0, 3.0);
    EXPECT_DOUBLE_EQ(r.nextFree(), 3.0);
}

TEST(MultiServerResourceDeath, ZeroServersPanics)
{
    EXPECT_DEATH(MultiServerResource(0), "at least one server");
}

}  // namespace
}  // namespace qvr::sim
