/**
 * @file
 * Draw-call-level frame simulator: stage accounting, pipelining
 * behaviour, and agreement with the analytic MobileGpuModel.
 */

#include <gtest/gtest.h>

#include "core/qvr_system.hpp"
#include "gpu/frame_simulator.hpp"
#include "gpu/timing.hpp"

namespace qvr::gpu
{
namespace
{

scene::FrameWorkload
workloadFrame(const std::string &bench, std::size_t index = 10)
{
    core::ExperimentSpec spec;
    spec.benchmark = bench;
    spec.numFrames = index + 1;
    return core::generateExperimentWorkload(spec)[index];
}

TEST(FrameSimulator, AccountingMatchesInputStream)
{
    const auto frame = workloadFrame("HL2-H");
    FrameSimulator sim;
    const auto &info = scene::findBenchmark("HL2-H");
    const FrameSimResult r = sim.simulate(
        frame, info.shadingCost,
        static_cast<double>(info.pixelsPerEye()));
    EXPECT_EQ(r.batches, frame.batches.size() * 2);
    EXPECT_EQ(r.triangles, frame.totalTriangles() * 2);
    EXPECT_NEAR(r.shadedPixels,
                static_cast<double>(info.pixelsPerEye()) * 2.0,
                static_cast<double>(info.pixelsPerEye()) * 0.01);
}

TEST(FrameSimulator, StagesOverlap)
{
    // Pipelined total must be far below the sum of stage busy times
    // and at least the busiest stage.
    const auto frame = workloadFrame("GRID");
    FrameSimulator sim;
    const auto &info = scene::findBenchmark("GRID");
    const FrameSimResult r = sim.simulate(
        frame, info.shadingCost,
        static_cast<double>(info.pixelsPerEye()));
    const double busiest =
        std::max({r.cpBusy, r.geometryBusy, r.fragmentBusy});
    const double sum = r.cpBusy + r.geometryBusy + r.fragmentBusy;
    EXPECT_GE(r.frameTime, busiest - 1e-12);
    EXPECT_LT(r.frameTime, sum * 0.85);
    EXPECT_GT(r.bottleneckUtilisation(), 0.6);
}

TEST(FrameSimulator, AgreesWithAnalyticModel)
{
    // The batch-granular simulation and the aggregate analytic model
    // must tell the same story (within the pipeline-fill slack) on
    // every Table-3 benchmark.
    for (const auto &info : scene::table3Benchmarks()) {
        const auto frame = workloadFrame(info.name);
        FrameSimulator sim;
        const FrameSimResult detailed = sim.simulate(
            frame, info.shadingCost,
            static_cast<double>(info.pixelsPerEye()));

        MobileGpuModel analytic;
        RenderJob job;
        job.triangles = frame.totalTriangles() * 2;
        job.shadedPixels =
            static_cast<double>(info.pixelsPerEye()) * 2.0;
        job.batches =
            static_cast<std::uint32_t>(frame.batches.size() * 2);
        job.shadingCost = info.shadingCost;
        const Seconds coarse = analytic.renderSeconds(job);

        EXPECT_NEAR(detailed.frameTime, coarse, coarse * 0.30)
            << info.name;
    }
}

TEST(FrameSimulator, FrequencyScalesInverse)
{
    const auto frame = workloadFrame("UT3");
    FrameSimulator sim;
    const auto &info = scene::findBenchmark("UT3");
    const double px = static_cast<double>(info.pixelsPerEye());
    const FrameSimResult full =
        sim.simulate(frame, info.shadingCost, px, 1.0, 1.0);
    const FrameSimResult half =
        sim.simulate(frame, info.shadingCost, px, 1.0, 0.5);
    EXPECT_NEAR(half.frameTime, full.frameTime * 2.0,
                full.frameTime * 0.02);
}

TEST(FrameSimulator, FoveaShareCutsFragmentWork)
{
    const auto frame = workloadFrame("Wolf");
    FrameSimulator sim;
    const auto &info = scene::findBenchmark("Wolf");
    const double px = static_cast<double>(info.pixelsPerEye());
    const FrameSimResult full =
        sim.simulate(frame, info.shadingCost, px, 1.0);
    const FrameSimResult fovea =
        sim.simulate(frame, info.shadingCost, px, 0.08);
    EXPECT_NEAR(fovea.fragmentBusy, full.fragmentBusy * 0.08,
                full.fragmentBusy * 0.01);
    // Geometry and CP are unchanged: culling is not coverage-based.
    EXPECT_NEAR(fovea.geometryBusy, full.geometryBusy,
                full.geometryBusy * 1e-9);
    EXPECT_LT(fovea.frameTime, full.frameTime);
}

TEST(FrameSimulator, ManySmallBatchesStressCp)
{
    // GRID's 3680 batches/eye make the command processor a visible
    // cost; Doom3's 382 do not.
    FrameSimulator sim;
    const auto grid = workloadFrame("GRID");
    const auto doom = workloadFrame("Doom3-H");
    const auto &gi = scene::findBenchmark("GRID");
    const auto &di = scene::findBenchmark("Doom3-H");
    const FrameSimResult rg = sim.simulate(
        grid, gi.shadingCost, static_cast<double>(gi.pixelsPerEye()));
    const FrameSimResult rd = sim.simulate(
        doom, di.shadingCost, static_cast<double>(di.pixelsPerEye()));
    EXPECT_GT(rg.cpBusy, rd.cpBusy * 5.0);
}

TEST(FrameSimulatorDeath, BadShareRejected)
{
    FrameSimulator sim;
    const auto frame = workloadFrame("HL2-L");
    EXPECT_DEATH(sim.simulate(frame, 1.0, 1e6, 1.5),
                 "pixel share");
}

}  // namespace
}  // namespace qvr::gpu
