/**
 * @file
 * GPU-resident composition/ATW kernel costs.
 */

#include <gtest/gtest.h>

#include "gpu/postprocess.hpp"

namespace qvr::gpu::postprocess
{
namespace
{

TEST(Postprocess, AtwScalesWithPixels)
{
    MobileGpuModel gpu;
    const Seconds small = atwTime(gpu, 1e6);
    const Seconds big = atwTime(gpu, 4e6);
    EXPECT_NEAR(big, small * 4.0, small * 0.01);
    EXPECT_GT(small, 0.0);
}

TEST(Postprocess, AtwOfStereoFrameIsMilliseconds)
{
    // 2x 1920x2160 at 18 ops/px on the Table-2 array: order 1-2 ms —
    // enough to matter for FPS when it contends with rendering.
    MobileGpuModel gpu;
    const Seconds t = atwTime(gpu, 2.0 * 1920 * 2160);
    EXPECT_GT(t, 0.3e-3);
    EXPECT_LT(t, 5e-3);
}

TEST(Postprocess, MsaaEdgesAddCost)
{
    MobileGpuModel gpu;
    const Seconds no_edges = foveatedCompositionTime(gpu, 4e6, 0.0);
    const Seconds edges = foveatedCompositionTime(gpu, 4e6, 0.1);
    EXPECT_GT(edges, no_edges);
}

TEST(Postprocess, DepthCompositionCostlierThanFoveated)
{
    // The static design's depth-based embedding (plus collision
    // detection) must exceed Q-VR's simple layer overlap: that is
    // the "high composition overhead" of Section 1.
    MobileGpuModel gpu;
    const double px = 2.0 * 1920 * 2160;
    EXPECT_GT(depthCompositionTime(gpu, px),
              foveatedCompositionTime(gpu, px, 0.05));
}

TEST(Postprocess, CollisionDetectionIsFixedCost)
{
    MobileGpuModel gpu;
    PostprocessCosts costs;
    const Seconds base = depthCompositionTime(gpu, 1e6, costs);
    costs.collisionDetectCycles *= 2.0;
    const Seconds more = depthCompositionTime(gpu, 1e6, costs);
    const Seconds delta = more - base;
    EXPECT_NEAR(delta,
                250'000.0 / gpu.config().coreFrequency,
                delta * 0.01);
}

}  // namespace
}  // namespace qvr::gpu::postprocess
