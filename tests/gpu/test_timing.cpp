/**
 * @file
 * MobileGpuModel: monotonicity, stage attribution, DVFS, memory
 * boundedness, and the Figure-3-class calibration pins (full-frame
 * stereo render times for the Table-3 benchmarks land in the ranges
 * a Gen9/A10-class local renderer exhibits).
 */

#include <gtest/gtest.h>

#include "gpu/timing.hpp"
#include "scene/benchmarks.hpp"

namespace qvr::gpu
{
namespace
{

RenderJob
stereoJob(const scene::BenchmarkInfo &b)
{
    RenderJob j;
    j.triangles = b.meanTriangles * 2;
    j.shadedPixels = static_cast<double>(b.pixelsPerEye()) * 2.0;
    j.batches = b.numBatches * 2;
    j.shadingCost = b.shadingCost;
    return j;
}

TEST(MobileGpuModel, MoreWorkTakesLonger)
{
    MobileGpuModel gpu;
    RenderJob small;
    small.triangles = 100'000;
    small.shadedPixels = 1e6;
    RenderJob big = small;
    big.triangles = 1'000'000;
    big.shadedPixels = 8e6;
    EXPECT_GT(gpu.renderSeconds(big), gpu.renderSeconds(small));
}

TEST(MobileGpuModel, ShadingCostScalesFragmentStage)
{
    MobileGpuModel gpu;
    RenderJob j;
    j.triangles = 10'000;  // fragment-dominated
    j.shadedPixels = 8e6;
    const RenderTiming cheap = gpu.time(j);
    j.shadingCost = 2.0;
    const RenderTiming dear = gpu.time(j);
    EXPECT_NEAR(static_cast<double>(dear.fragmentCycles),
                2.0 * static_cast<double>(cheap.fragmentCycles),
                static_cast<double>(cheap.fragmentCycles) * 0.01);
}

TEST(MobileGpuModel, DvfsScalesTimeNotCycles)
{
    MobileGpuModel gpu;
    RenderJob j;
    j.triangles = 500'000;
    j.shadedPixels = 4e6;
    const RenderTiming full = gpu.time(j);
    j.frequencyScale = 0.5;
    const RenderTiming half = gpu.time(j);
    EXPECT_EQ(full.totalCycles, half.totalCycles);
    EXPECT_NEAR(half.seconds, full.seconds * 2.0, full.seconds * 1e-9);
}

TEST(MobileGpuModel, GeometryAndFragmentOverlap)
{
    // Total compute is close to the max of the stages, not their sum.
    MobileGpuModel gpu;
    RenderJob j;
    j.triangles = 2'000'000;
    j.shadedPixels = 8e6;
    j.batches = 1;
    const RenderTiming t = gpu.time(j);
    const double geom = static_cast<double>(t.geometryCycles);
    const double frag = static_cast<double>(t.fragmentCycles);
    const double total = static_cast<double>(t.totalCycles);
    EXPECT_LT(total, (geom + frag) * 0.95);
    EXPECT_GE(total, std::max(geom, frag));
}

TEST(MobileGpuModel, MemoryBoundJobsSlowDown)
{
    GpuConfig cfg;
    GpuCostModel cost;
    cost.bytesPerPixel = 400.0;  // absurdly heavy traffic
    MobileGpuModel heavy(cfg, cost);
    RenderJob j;
    j.triangles = 1000;
    j.shadedPixels = 4e6;
    const RenderTiming t = heavy.time(j);
    EXPECT_GT(t.memoryStallFactor, 1.5);

    MobileGpuModel normal(cfg, GpuCostModel{});
    EXPECT_NEAR(normal.time(j).memoryStallFactor, 1.0, 0.5);
}

TEST(MobileGpuModel, TriangleThroughputConsistentWithJobTime)
{
    // Rendering N triangles at the sustained rate should take about
    // N / rate seconds when the job matches the assumed ratio.
    MobileGpuModel gpu;
    const double px_per_tri = 4.0;
    const double rate = gpu.triangleThroughput(1.0, px_per_tri);
    RenderJob j;
    j.triangles = 1'000'000;
    j.shadedPixels = static_cast<double>(j.triangles) * px_per_tri;
    j.batches = 1;
    const Seconds predicted =
        static_cast<double>(j.triangles) / rate;
    const Seconds actual = gpu.renderSeconds(j);
    EXPECT_NEAR(actual, predicted, predicted * 0.25);
}

TEST(MobileGpuModel, Fig3CalibrationLocalRenderTimes)
{
    // Figure 3 shows high-quality apps missing 90 Hz badly on local
    // mobile hardware: full-frame stereo render times in the tens of
    // milliseconds for heavy scenes, near budget for light ones.
    MobileGpuModel gpu;
    const Seconds budget = vr_requirements::kFrameBudget;

    const Seconds grid =
        gpu.renderSeconds(stereoJob(scene::findBenchmark("GRID")));
    EXPECT_GT(grid, 3.0 * budget);   // far over budget
    EXPECT_LT(grid, 100e-3);         // still playable-ish

    const Seconds d3l =
        gpu.renderSeconds(stereoJob(scene::findBenchmark("Doom3-L")));
    EXPECT_GT(d3l, 0.8 * budget);
    EXPECT_LT(d3l, 3.0 * budget);

    // Heavier benchmarks must take longer.
    const Seconds wolf =
        gpu.renderSeconds(stereoJob(scene::findBenchmark("Wolf")));
    const Seconds d3h =
        gpu.renderSeconds(stereoJob(scene::findBenchmark("Doom3-H")));
    EXPECT_GT(grid, wolf);
    EXPECT_GT(wolf, d3h);
    EXPECT_GT(d3h, d3l);
}

TEST(MobileGpuModel, Fig6FoveaWithin15DegreesMeetsBudget)
{
    // Figure 6: at eccentricity <= 15 degrees every tested scene
    // complexity renders within the 11 ms budget on the local SoC.
    MobileGpuModel gpu;
    for (const auto &b : scene::table3Benchmarks()) {
        RenderJob j = stereoJob(b);
        // 15-degree fovea on the 110-degree display: ~6.5% of the
        // screen area, centre-weighted workload share ~11%.
        const double share = 0.11;
        j.triangles = static_cast<std::uint64_t>(
            static_cast<double>(j.triangles) * share);
        j.shadedPixels *= 0.065;
        j.batches = std::max(2u, static_cast<std::uint32_t>(
                                     j.batches * share));
        EXPECT_LT(gpu.renderSeconds(j), vr_requirements::kFrameBudget)
            << b.name;
    }
}

TEST(MobileGpuModelDeath, BadJobPanics)
{
    MobileGpuModel gpu;
    RenderJob j;
    j.shadedPixels = -1.0;
    EXPECT_DEATH(gpu.time(j), "negative pixel count");
}

}  // namespace
}  // namespace qvr::gpu
