/**
 * @file
 * Set-associative LRU cache: hits, conflict behaviour, LRU order,
 * flush, and a texture-streaming calibration property.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gpu/cache.hpp"

namespace qvr::gpu
{
namespace
{

CacheConfig
tiny()
{
    CacheConfig c;
    c.sizeBytes = 1024;  // 16 lines
    c.lineBytes = 64;
    c.ways = 4;          // 4 sets
    return c;
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(tiny());
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x13f));  // same 64B line
    EXPECT_FALSE(c.access(0x140)); // next line
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEvictionOrder)
{
    Cache c(tiny());  // 4 sets -> set stride is 4*64 = 256 bytes
    // Five distinct lines mapping to set 0: addresses k * 256.
    for (int k = 0; k < 4; k++)
        EXPECT_FALSE(c.access(static_cast<std::uint64_t>(k) * 256));
    // All four resident.
    for (int k = 0; k < 4; k++)
        EXPECT_TRUE(c.access(static_cast<std::uint64_t>(k) * 256));
    // Touch 0 to refresh it, then insert a fifth line: LRU is line 1.
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(4 * 256));
    EXPECT_TRUE(c.access(0));        // still resident
    EXPECT_FALSE(c.access(1 * 256)); // evicted
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c(tiny());
    c.access(0x0);
    c.access(0x40);
    c.flush();
    EXPECT_FALSE(c.access(0x0));
    EXPECT_FALSE(c.access(0x40));
}

TEST(Cache, SequentialStreamMissRateIsLineRate)
{
    // Streaming reads at 4 bytes/access: one miss per 64-byte line.
    Cache c(tiny());
    for (std::uint64_t a = 0; a < 64 * 1024; a += 4)
        c.access(a);
    EXPECT_NEAR(c.stats().missRate(), 4.0 / 64.0, 1e-3);
}

TEST(Cache, WorkingSetFitsMeansNoSteadyMisses)
{
    CacheConfig cfg;
    cfg.sizeBytes = 16 * 1024;  // Table 2's L1
    cfg.lineBytes = 64;
    cfg.ways = 4;
    Cache c(cfg);
    // 8 KB working set, re-walked 10 times.
    for (int rep = 0; rep < 10; rep++) {
        for (std::uint64_t a = 0; a < 8 * 1024; a += 64)
            c.access(a);
    }
    // Only the first pass misses.
    EXPECT_EQ(c.stats().misses, 128u);
}

TEST(Cache, TextureTileLocalityCalibration)
{
    // The GpuCostModel's bytes-per-pixel figure assumes most texel
    // fetches hit in L1 when fragments are shaded in 16x16 tiles.
    // Emulate a tile walk over a 1024-wide texture (4 B texels, 1:1
    // mapping): within a tile, rows reuse lines fetched by earlier
    // rows of the same tile only across x, so miss rate stays near
    // the compulsory rate of 1 miss per 16 texels.
    CacheConfig cfg;
    cfg.sizeBytes = 16 * 1024;
    cfg.lineBytes = 64;
    cfg.ways = 4;
    Cache c(cfg);

    const std::uint64_t tex_width = 1024;
    for (std::uint64_t ty = 0; ty < 64; ty += 16) {
        for (std::uint64_t tx = 0; tx < tex_width; tx += 16) {
            for (std::uint64_t y = ty; y < ty + 16; y++) {
                for (std::uint64_t x = tx; x < tx + 16; x++)
                    c.access((y * tex_width + x) * 4);
            }
        }
    }
    // 64-byte lines hold 16 texels: compulsory rate 1/16.
    EXPECT_LT(c.stats().missRate(), 1.5 / 16.0);
    EXPECT_GT(c.stats().missRate(), 0.5 / 16.0);
}

TEST(CacheDeath, BadGeometryPanics)
{
    CacheConfig cfg;
    cfg.sizeBytes = 100;  // not a power-of-two line multiple
    cfg.lineBytes = 63;
    EXPECT_DEATH(Cache c(cfg), "2\\^n");
}

}  // namespace
}  // namespace qvr::gpu
