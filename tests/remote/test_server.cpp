/**
 * @file
 * Remote multi-chiplet server: scaling, overheads, capability vs.
 * the mobile part.
 */

#include <gtest/gtest.h>

#include "remote/server.hpp"
#include "scene/benchmarks.hpp"

namespace qvr::remote
{
namespace
{

gpu::RenderJob
heavyJob()
{
    gpu::RenderJob j;
    j.triangles = 5'200'000;  // GRID-class stereo
    j.shadedPixels = 2.0 * 1920 * 2160;
    j.batches = 7360;
    j.shadingCost = 1.3;
    return j;
}

TEST(RemoteServer, FarFasterThanMobileGpu)
{
    RemoteServer server;
    gpu::MobileGpuModel mobile;
    const gpu::RenderJob j = heavyJob();
    const Seconds remote = server.renderSeconds(j);
    const Seconds local = mobile.renderSeconds(j);
    EXPECT_LT(remote, local / 8.0);
    // Heavy frames render in a few ms on the server (so the network,
    // not the server, dominates remote latency — Fig. 3's point).
    EXPECT_LT(remote, 8e-3);
    EXPECT_GT(remote, 0.2e-3);
}

TEST(RemoteServer, MoreChipletsFaster)
{
    ServerConfig one;
    one.chiplets = 1;
    ServerConfig eight;
    eight.chiplets = 8;
    const gpu::RenderJob j = heavyJob();
    const Seconds t1 = RemoteServer(one).renderSeconds(j);
    const Seconds t8 = RemoteServer(eight).renderSeconds(j);
    EXPECT_LT(t8, t1);
    // Sub-linear speedup: command broadcast + imbalance + sync.
    EXPECT_GT(t8, t1 / 8.0);
}

TEST(RemoteServer, SyncOverheadIsFloor)
{
    ServerConfig cfg;
    RemoteServer server(cfg);
    gpu::RenderJob tiny;
    tiny.triangles = 10;
    tiny.shadedPixels = 100.0;
    tiny.batches = 1;
    EXPECT_GE(server.renderSeconds(tiny), cfg.syncOverhead);
}

TEST(RemoteServer, ImbalanceSlowsCompletion)
{
    ServerConfig balanced;
    balanced.loadImbalance = 1.0;
    ServerConfig skewed;
    skewed.loadImbalance = 1.5;
    const gpu::RenderJob j = heavyJob();
    EXPECT_GT(RemoteServer(skewed).renderSeconds(j),
              RemoteServer(balanced).renderSeconds(j));
}

TEST(RemoteServer, TriangleThroughputScalesWithChiplets)
{
    ServerConfig one;
    one.chiplets = 1;
    ServerConfig four;
    four.chiplets = 4;
    const double r1 =
        RemoteServer(one).triangleThroughput(1.0, 4.0);
    const double r4 =
        RemoteServer(four).triangleThroughput(1.0, 4.0);
    EXPECT_NEAR(r4, r1 * 4.0, r1 * 0.01);
}

TEST(RemoteServer, StragglerWindowSlowsOnlyCoveredRenders)
{
    RemoteServer server;
    fault::FaultSchedule sched;
    fault::ServerFaultWindow w;
    w.start = 1.0;
    w.duration = 0.5;
    w.stragglerFactor = 3.0;
    sched.addServerFault(w);
    server.setFaultSchedule(sched);

    const gpu::RenderJob j = heavyJob();
    const Seconds clean = server.renderSeconds(j);
    // Outside the window (and with no schedule at all): identical.
    EXPECT_EQ(server.renderSeconds(j, 0.5), clean);
    EXPECT_EQ(server.renderSeconds(j, 1.5), clean);
    // Inside: the critical-path chiplet runs 3x slower.
    EXPECT_GT(server.renderSeconds(j, 1.2), clean * 1.5);
}

TEST(RemoteServer, FailedChipletsShrinkTheSplit)
{
    RemoteServer server;
    fault::FaultSchedule sched;
    fault::ServerFaultWindow w;
    w.start = 0.0;
    w.duration = 1.0;
    w.failedChiplets = 4;  // half the default 8 offline
    sched.addServerFault(w);
    server.setFaultSchedule(sched);

    const gpu::RenderJob j = heavyJob();
    const Seconds degraded = server.renderSeconds(j, 0.5);
    const Seconds clean = server.renderSeconds(j);
    EXPECT_GT(degraded, clean * 1.3);
    EXPECT_LT(degraded, clean * 4.0);  // capacity loss, not collapse
}

TEST(RemoteServerDeath, ZeroChipletsPanics)
{
    ServerConfig cfg;
    cfg.chiplets = 0;
    EXPECT_DEATH(RemoteServer{cfg}, "at least one chiplet");
}

TEST(RemoteServerDeath, RejectsEachImpossibleConfig)
{
    ServerConfig imbalance;
    imbalance.loadImbalance = 0.9;
    EXPECT_DEATH(imbalance.validate(), "imbalance");
    ServerConfig sync;
    sync.syncOverhead = -1e-6;
    EXPECT_DEATH(sync.validate(), "sync overhead");
}

}  // namespace
}  // namespace qvr::remote
