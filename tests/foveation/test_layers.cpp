/**
 * @file
 * Layer geometry: disc-screen intersection, pixel accounting, Eq. 1
 * e2 selection, resolution metrics, oracle caching.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "foveation/layers.hpp"

namespace qvr::foveation
{
namespace
{

LayerGeometry
geo()
{
    return LayerGeometry(DisplayConfig{}, MarModel{});
}

TEST(DiscScreenArea, FullyInsideMatchesCircle)
{
    DisplayConfig d;
    const double r_deg = 5.0;
    const double r_px = r_deg * d.pixelsPerDegree();
    const double area = discScreenAreaPixels(d, Vec2{0.0, 0.0}, r_deg);
    EXPECT_NEAR(area, kPi * r_px * r_px, kPi * r_px * r_px * 1e-4);
}

TEST(DiscScreenArea, HugeRadiusCoversScreen)
{
    DisplayConfig d;
    const double area =
        discScreenAreaPixels(d, Vec2{0.0, 0.0}, 1000.0);
    EXPECT_NEAR(area, static_cast<double>(d.pixelCount()), 1.0);
}

TEST(DiscScreenArea, OffscreenGazeClipsArea)
{
    DisplayConfig d;
    const double centered =
        discScreenAreaPixels(d, Vec2{0.0, 0.0}, 10.0);
    const double cornered =
        discScreenAreaPixels(d, Vec2{58.0, 58.0}, 10.0);
    EXPECT_LT(cornered, centered * 0.5);
}

TEST(DiscScreenArea, ZeroRadiusIsZero)
{
    DisplayConfig d;
    EXPECT_DOUBLE_EQ(discScreenAreaPixels(d, Vec2{}, 0.0), 0.0);
}

TEST(LayerGeometry, PixelCountsPartitionTheScreen)
{
    const LayerGeometry g = geo();
    LayerPartition p{10.0, 30.0, Vec2{}};
    const LayerPixels px = g.pixelCounts(p);

    EXPECT_GT(px.foveaPixels, 0.0);
    EXPECT_GT(px.middlePixels, 0.0);
    EXPECT_GT(px.outerPixels, 0.0);

    // Native areas (undo the subsampling) must sum to the screen.
    const double native =
        px.foveaPixels +
        px.middlePixels * px.middleFactor * px.middleFactor +
        px.outerPixels * px.outerFactor * px.outerFactor;
    EXPECT_NEAR(native,
                static_cast<double>(g.display().pixelCount()),
                static_cast<double>(g.display().pixelCount()) * 1e-3);
}

TEST(LayerGeometry, BiggerFoveaMoreLocalFewerRemote)
{
    const LayerGeometry g = geo();
    const LayerPixels small =
        g.pixelCounts(LayerPartition{5.0, 30.0, Vec2{}});
    const LayerPixels big =
        g.pixelCounts(LayerPartition{20.0, 30.0, Vec2{}});
    EXPECT_GT(big.foveaPixels, small.foveaPixels);
    EXPECT_LT(big.peripheryPixels(), small.peripheryPixels());
}

TEST(LayerGeometry, SubsamplingFactorsOrdered)
{
    const LayerGeometry g = geo();
    const LayerPixels px =
        g.pixelCounts(LayerPartition{8.0, 35.0, Vec2{}});
    EXPECT_GE(px.outerFactor, px.middleFactor);
    EXPECT_GE(px.middleFactor, 1.0);
}

TEST(LayerGeometry, OptimalE2BeatsArbitraryChoices)
{
    const LayerGeometry g = geo();
    const double e1 = 8.0;
    const Vec2 gaze{};
    const double e2 = g.selectOptimalE2(e1, gaze);
    ASSERT_GT(e2, e1);

    const double best =
        g.pixelCounts(LayerPartition{e1, e2, gaze}).peripheryPixels();
    for (double cand : {e1 + 1.0, 20.0, 40.0, 60.0}) {
        if (cand <= e1 || cand > g.display().maxEccentricity())
            continue;
        const double cost =
            g.pixelCounts(LayerPartition{e1, cand, gaze})
                .peripheryPixels();
        EXPECT_LE(best, cost * 1.001) << "e2 candidate " << cand;
    }
}

TEST(LayerGeometry, FoveaAreaFractionMonotone)
{
    const LayerGeometry g = geo();
    double prev = 0.0;
    for (double e1 = 5.0; e1 <= 60.0; e1 += 5.0) {
        const double frac = g.foveaAreaFraction(e1, Vec2{});
        EXPECT_GE(frac, prev);
        EXPECT_LE(frac, 1.0 + 1e-9);
        prev = frac;
    }
    EXPECT_GT(prev, 0.5);  // 60-degree fovea covers most of the view
}

TEST(LayerGeometry, ResolutionFractionsBehave)
{
    const LayerGeometry g = geo();
    const LayerPartition small{5.0, 25.0, Vec2{}};
    const LayerPartition large{40.0, 60.0, Vec2{}};

    const double pix_small = g.renderedResolutionFraction(small);
    const double pix_large = g.renderedResolutionFraction(large);
    EXPECT_LT(pix_small, pix_large);  // small fovea = more savings
    EXPECT_GT(pix_small, 0.0);
    EXPECT_LE(pix_large, 1.0 + 1e-9);

    // Linear metric is gentler than the pixel metric.
    EXPECT_GE(g.linearResolutionFraction(small), pix_small);
    EXPECT_LE(g.linearResolutionFraction(small), 1.0);
}

TEST(LayerGeometry, ClampE1Range)
{
    const LayerGeometry g = geo();
    EXPECT_DOUBLE_EQ(g.clampE1(1.0), LayerGeometry::kMinE1);
    EXPECT_DOUBLE_EQ(g.clampE1(12.0), 12.0);
    EXPECT_DOUBLE_EQ(g.clampE1(1000.0),
                     g.display().maxEccentricity());
}

TEST(PartitionOracle, CachesQuantisedQueries)
{
    const LayerGeometry g = geo();
    PartitionOracle oracle(g);
    const auto &a = oracle.resolve(10.0, Vec2{1.2, 0.4});
    EXPECT_EQ(oracle.cacheSize(), 1u);
    // Sub-quantum changes hit the same entry.
    const auto &b = oracle.resolve(10.1, Vec2{1.4, 0.1});
    EXPECT_EQ(oracle.cacheSize(), 1u);
    EXPECT_EQ(&a, &b);
    // A clearly different query allocates a new entry.
    oracle.resolve(20.0, Vec2{1.2, 0.4});
    EXPECT_EQ(oracle.cacheSize(), 2u);
}

TEST(PartitionOracle, MatchesDirectComputation)
{
    const LayerGeometry g = geo();
    PartitionOracle oracle(g);
    const auto &r = oracle.resolve(12.0, Vec2{3.0, -2.0});
    EXPECT_DOUBLE_EQ(r.partition.e1, 12.0);
    const double direct_e2 =
        g.selectOptimalE2(12.0, Vec2{3.0, -2.0});
    EXPECT_DOUBLE_EQ(r.partition.e2, direct_e2);
}

}  // namespace
}  // namespace qvr::foveation
