/**
 * @file
 * MAR acuity model: Eq. 1 behaviour, clamps, native-limit radius.
 */

#include <gtest/gtest.h>

#include "foveation/mar.hpp"

namespace qvr::foveation
{
namespace
{

TEST(MarModel, LinearFalloff)
{
    MarModel m;
    EXPECT_DOUBLE_EQ(m.mar(0.0), m.omega0);
    EXPECT_DOUBLE_EQ(m.mar(10.0), m.omega0 + 10.0 * m.slope);
    EXPECT_GT(m.mar(30.0), m.mar(10.0));
}

TEST(MarModel, SamplingFactorClampedToOneInFovea)
{
    MarModel m;
    DisplayConfig d;  // ~17.5 ppd: display pitch >> foveal MAR
    EXPECT_DOUBLE_EQ(m.samplingFactor(0.0, d), 1.0);
    EXPECT_DOUBLE_EQ(m.samplingFactor(1.0, d), 1.0);
}

TEST(MarModel, SamplingFactorGrowsWithEccentricity)
{
    MarModel m;
    DisplayConfig d;
    const double s10 = m.samplingFactor(10.0, d);
    const double s20 = m.samplingFactor(20.0, d);
    EXPECT_GE(s20, s10);
    EXPECT_GT(s20, 1.0);
}

TEST(MarModel, SamplingFactorCapped)
{
    MarModel m;
    DisplayConfig d;
    EXPECT_DOUBLE_EQ(m.samplingFactor(80.0, d), m.maxSamplingFactor);
}

TEST(MarModel, QualityMarginShrinksFactor)
{
    MarModel strict;
    strict.qualityMargin = 2.0;
    MarModel loose;
    DisplayConfig d;
    const double e = 15.0;
    EXPECT_LE(strict.samplingFactor(e, d),
              loose.samplingFactor(e, d));
}

TEST(MarModel, NativeLimitEccentricityConsistent)
{
    MarModel m;
    DisplayConfig d;
    const double e_lim = m.nativeLimitEccentricity(d);
    ASSERT_GT(e_lim, 0.0);
    // At the limit, mar == pixel pitch exactly.
    EXPECT_NEAR(m.mar(e_lim), d.pixelPitchDeg(), 1e-12);
    // Just inside: factor 1; well outside: factor > 1.
    EXPECT_DOUBLE_EQ(m.samplingFactor(e_lim * 0.5, d), 1.0);
    EXPECT_GT(m.samplingFactor(e_lim * 2.0 + 5.0, d), 1.0);
}

TEST(DisplayConfig, DerivedQuantities)
{
    DisplayConfig d;
    EXPECT_NEAR(d.pixelsPerDegree(), 1920.0 / 110.0, 1e-12);
    EXPECT_DOUBLE_EQ(d.pixelPitchDeg() * d.pixelsPerDegree(), 1.0);
    EXPECT_EQ(d.pixelCount(), 1920ll * 2160ll);
    EXPECT_NEAR(d.maxEccentricity(), std::hypot(55.0, 55.0), 1e-12);
}

}  // namespace
}  // namespace qvr::foveation
