/**
 * @file
 * Perceptual audit: MAR-constrained partitions are lossless (the
 * Section 3.1 user-survey result), violations are scored down.
 */

#include <gtest/gtest.h>

#include "foveation/quality.hpp"

namespace qvr::foveation
{
namespace
{

TEST(Quality, MarConstrainedPartitionIsLossless)
{
    // Any partition whose factors come from the MAR model itself
    // must audit as perceptually lossless (the survey result).
    LayerGeometry g(DisplayConfig{}, MarModel{});
    for (double e1 : {5.0, 10.0, 20.0, 40.0}) {
        LayerPartition p{e1, g.selectOptimalE2(e1, Vec2{}), Vec2{}};
        const QualityReport r = auditPartition(g, p);
        EXPECT_TRUE(r.perceptuallyLossless) << "e1=" << e1;
        EXPECT_DOUBLE_EQ(r.meanOpinionScore, 10.0);
    }
}

TEST(Quality, OverAggressiveSubsamplingIsFlagged)
{
    // Force factors beyond the MAR bound by removing the safety cap
    // and shrinking the slope used for auditing: audit with a
    // *stricter* (flatter) acuity model than the one that chose the
    // factors.
    MarModel generous;
    generous.slope = 0.10;             // permits huge factors
    generous.maxSamplingFactor = 16.0;
    MarModel strict;                    // human baseline
    strict.maxSamplingFactor = 16.0;

    DisplayConfig d;
    LayerGeometry chooser(d, generous);
    LayerGeometry auditor(d, strict);

    LayerPartition p{5.0, 20.0, Vec2{}};
    // The chooser's factors violate the strict model's budget.
    const LayerPixels px = chooser.pixelCounts(p);
    ASSERT_GT(px.outerFactor, strict.samplingFactor(20.0, d));

    // Audit the partition as if rendered with the generous factors:
    // emulate by auditing under a geometry whose MAR model IS the
    // generous one but scoring with the strict one via margin check.
    const QualityReport honest = auditPartition(auditor, p);
    // Under the strict auditor the partition itself is fine (factors
    // recomputed from the strict model), so this stays lossless...
    EXPECT_TRUE(honest.perceptuallyLossless);
    // ...but auditing under the generous chooser must reveal the
    // violation relative to the strict budget when margins shrink.
    const QualityReport risky = auditPartition(chooser, p);
    EXPECT_LE(risky.worstMarginDeg, honest.worstMarginDeg + 1e-12);
}

TEST(Quality, ScoreDegradesWithViolationDepth)
{
    // Construct a report scenario with a violation by using a margin
    // model where the display is *sharper* than the acuity line and
    // the factor cap is disabled.
    MarModel m;
    m.maxSamplingFactor = 1000.0;
    m.qualityMargin = 0.25;  // deliberately renders too coarse
    DisplayConfig d;
    LayerGeometry g(d, m);
    LayerPartition p{5.0, 15.0, Vec2{}};
    const QualityReport r = auditPartition(g, p);
    EXPECT_FALSE(r.perceptuallyLossless);
    EXPECT_LT(r.meanOpinionScore, 10.0);
    EXPECT_GE(r.meanOpinionScore, 1.0);
}

TEST(Quality, WorstEccentricityAtLayerEdge)
{
    LayerGeometry g(DisplayConfig{}, MarModel{});
    LayerPartition p{10.0, 30.0, Vec2{}};
    const QualityReport r = auditPartition(g, p);
    // The binding constraint sits at a layer inner edge (or centre).
    EXPECT_TRUE(r.worstEccentricity == 0.0 ||
                std::abs(r.worstEccentricity - p.e1) < 0.01 ||
                std::abs(r.worstEccentricity - p.e2) < 0.01);
}

}  // namespace
}  // namespace qvr::foveation
