/**
 * @file
 * StreamSession: link serialisation, ready-order shipping, decode
 * overlap, cross-frame queueing.
 */

#include <gtest/gtest.h>

#include "net/stream.hpp"

namespace qvr::net
{
namespace
{

ChannelConfig
quiet()
{
    ChannelConfig cfg = ChannelConfig::wifi();
    cfg.snrDb = 300.0;  // deterministic timing for the tests
    return cfg;
}

TEST(StreamSession, EmptyFrameIsTrivial)
{
    Channel ch(quiet(), Rng(1));
    VideoCodec codec;
    StreamSession s(ch, codec);
    const StreamResult r = s.streamFrame({});
    EXPECT_DOUBLE_EQ(r.allDecoded, 0.0);
    EXPECT_EQ(r.totalBytes, 0u);
}

TEST(StreamSession, SingleLayerTiming)
{
    Channel ch(quiet(), Rng(2));
    VideoCodec codec;
    StreamSession s(ch, codec);

    LayerPayload p;
    p.renderReady = 0.010;
    p.pixels = 1e6;
    p.compressed = fromKiB(100);
    const StreamResult r = s.streamFrame({p});

    const double serialise = static_cast<double>(p.compressed) * 8.0 /
                             (quiet().nominalDownlink *
                              quiet().protocolEfficiency);
    const double expected = 0.010 + serialise +
                            quiet().baseLatency +
                            codec.decodeTime(p.pixels);
    EXPECT_NEAR(r.allDecoded, expected, expected * 0.01);
    EXPECT_EQ(r.totalBytes, p.compressed);
}

TEST(StreamSession, EarlyLayersShipFirst)
{
    Channel ch(quiet(), Rng(3));
    VideoCodec codec;
    StreamSession s(ch, codec);

    LayerPayload late;
    late.renderReady = 0.050;
    late.pixels = 1e5;
    late.compressed = fromKiB(10);
    LayerPayload early;
    early.renderReady = 0.001;
    early.pixels = 1e5;
    early.compressed = fromKiB(10);

    const StreamResult r = s.streamFrame({late, early});
    ASSERT_EQ(r.perLayerArrival.size(), 2u);
    // Arrivals sorted by readiness: the early layer lands well before
    // the late one becomes ready.
    EXPECT_LT(r.perLayerArrival[0], 0.050);
    EXPECT_GT(r.perLayerArrival[1], 0.050);
}

TEST(StreamSession, LinkIsSerialisedAcrossLayers)
{
    Channel ch(quiet(), Rng(4));
    VideoCodec codec;
    StreamSession s(ch, codec);

    // Two layers ready simultaneously: second waits for the first.
    LayerPayload a;
    a.renderReady = 0.0;
    a.pixels = 1e5;
    a.compressed = fromKiB(200);
    const StreamResult r = s.streamFrame({a, a});
    const double one = static_cast<double>(a.compressed) * 8.0 /
                       (quiet().nominalDownlink *
                        quiet().protocolEfficiency);
    EXPECT_NEAR(r.perLayerArrival[1] - r.perLayerArrival[0], one,
                one * 0.02);
    EXPECT_NEAR(r.networkTime, 2.0 * one, one * 0.02);
}

TEST(StreamSession, DecodersRunInParallel)
{
    CodecConfig slow;
    slow.decodePixelsPerSecond = 1e7;  // decode dominates
    VideoCodec codec(slow);
    Channel ch(quiet(), Rng(5));
    StreamSession s(ch, codec);

    LayerPayload p;
    p.renderReady = 0.0;
    p.pixels = 1e6;          // 100 ms decode each
    p.compressed = fromKiB(1);
    const StreamResult two = s.streamFrame({p, p});
    // With 2 decode units and negligible transfer, both decode
    // almost concurrently: total ~ 1 decode, not 2.
    EXPECT_LT(two.allDecoded, 0.125);
}

TEST(StreamSession, BackToBackFramesQueueOnLink)
{
    Channel ch(quiet(), Rng(6));
    VideoCodec codec;
    StreamSession s(ch, codec);

    LayerPayload p;
    p.renderReady = 0.0;
    p.pixels = 1e5;
    p.compressed = fromKiB(500);  // ~30 ms serialisation
    const StreamResult f1 = s.streamFrame({p});
    EXPECT_GT(s.linkNextFree(), 0.02);
    const StreamResult f2 = s.streamFrame({p});
    EXPECT_GT(f2.allDecoded, f1.allDecoded + 0.02);
}

TEST(StreamSession, LostTransfersRetryWithBackoff)
{
    Channel ch(quiet(), Rng(7));
    fault::FaultSchedule sched;
    fault::GilbertElliottConfig ge;
    ge.pGoodToBad = 1.0;  // permanently Bad
    ge.pBadToGood = 1e-9;
    ge.transferDropBad = 0.999;  // ~every transfer lost
    sched.setGilbertElliott(ge);
    fault::LinkDegradationWindow w;
    w.duration = 100.0;
    w.bursty = true;
    sched.addLinkDegradation(w);
    ch.setFaultSchedule(sched);

    VideoCodec codec;
    StreamSession s(ch, codec);
    RetryPolicy policy;
    policy.maxRetries = 3;
    s.setRetryPolicy(policy);

    LayerPayload p;
    p.pixels = 1e5;
    p.compressed = fromKiB(100);
    const StreamResult r = s.streamFrame({p});
    // Budget exhausted: all retries spent, the layer counted lost,
    // but the attempt still produced a timeline (no hang).
    EXPECT_EQ(r.retries, policy.maxRetries);
    EXPECT_EQ(r.lostLayers, 1u);
    EXPECT_GT(r.allDecoded, 0.0);

    // Zero budget: no retries, immediate loss.
    Channel ch0(quiet(), Rng(7));
    ch0.setFaultSchedule(sched);
    StreamSession s0(ch0, codec);
    RetryPolicy none;
    none.maxRetries = 0;
    s0.setRetryPolicy(none);
    const StreamResult r0 = s0.streamFrame({p});
    EXPECT_EQ(r0.retries, 0u);
    EXPECT_EQ(r0.lostLayers, 1u);
}

TEST(StreamSession, RetryTimelineIsSeedDeterministic)
{
    fault::FaultSchedule sched;
    fault::LinkDegradationWindow w;
    w.duration = 100.0;
    w.bursty = true;  // default GE: stochastic drops
    sched.addLinkDegradation(w);

    VideoCodec codec;
    auto run = [&] {
        Channel ch(ChannelConfig::wifi(), Rng(21, 5));
        ch.setFaultSchedule(sched);
        StreamSession s(ch, codec);
        StreamResult total;
        for (int f = 0; f < 100; f++) {
            LayerPayload p;
            p.renderReady = 0.011 * f;
            p.pixels = 1e5;
            p.compressed = fromKiB(120);
            const StreamResult r = s.streamFrame({p, p});
            total.retries += r.retries;
            total.lostLayers += r.lostLayers;
            total.allDecoded = r.allDecoded;
        }
        return total;
    };
    const StreamResult a = run();
    const StreamResult b = run();
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.lostLayers, b.lostLayers);
    EXPECT_EQ(a.allDecoded, b.allDecoded);  // bitwise
    EXPECT_GT(a.retries, 0u);  // the scenario actually exercised loss
}

TEST(StreamSession, OutageStallSurfacesInStallTime)
{
    Channel ch(quiet(), Rng(8));
    ch.injectOutageWindow(0.0, 0.3);
    VideoCodec codec;
    StreamSession s(ch, codec);
    LayerPayload p;
    p.pixels = 1e5;
    p.compressed = fromKiB(10);
    const StreamResult r = s.streamFrame({p});
    EXPECT_DOUBLE_EQ(r.stallTime, 0.3);
    EXPECT_GT(r.allDecoded, 0.3);
}

TEST(RetryPolicyDeath, RejectsImpossibleBackoff)
{
    RetryPolicy negative;
    negative.backoffBase = -1e-3;
    EXPECT_DEATH(negative.validate(), "backoff");
    RetryPolicy shrinking;
    shrinking.backoffFactor = 0.5;
    EXPECT_DEATH(shrinking.validate(), "factor");
}

}  // namespace
}  // namespace qvr::net
