/**
 * @file
 * Codec rate model: Table-1 size calibration, subsampling and depth
 * effects, decode/encode latency.
 */

#include <gtest/gtest.h>

#include "net/codec.hpp"

namespace qvr::net
{
namespace
{

TEST(VideoCodec, Table1CompressedSizeCalibration)
{
    // Full-resolution stereo 1920x2160 photoreal frames compress to
    // ~480-650 KB in Table 1.
    VideoCodec codec;
    const double stereo_px = 2.0 * 1920.0 * 2160.0;
    const Bytes typical = codec.compressedSize(stereo_px, 1.0, 1.0);
    EXPECT_GT(typical, fromKiB(400));
    EXPECT_LT(typical, fromKiB(750));
}

TEST(VideoCodec, ComplexityScalesSize)
{
    VideoCodec codec;
    const Bytes calm = codec.compressedSize(1e6, 0.8, 1.0);
    const Bytes busy = codec.compressedSize(1e6, 1.3, 1.0);
    EXPECT_NEAR(static_cast<double>(busy),
                static_cast<double>(calm) * 1.3 / 0.8,
                static_cast<double>(calm) * 0.01);
}

TEST(VideoCodec, SubsampledLayersCompressBetterPerPixel)
{
    VideoCodec codec;
    const Bytes native = codec.compressedSize(1e6, 1.0, 1.0);
    const Bytes coarse = codec.compressedSize(1e6, 1.0, 3.0);
    EXPECT_LT(coarse, native);
    // ...but not absurdly so (exponent 0.3 -> ~28% smaller at s=3).
    EXPECT_GT(static_cast<double>(coarse),
              static_cast<double>(native) * 0.6);
}

TEST(VideoCodec, DepthMapAddsBytes)
{
    VideoCodec codec;
    const Bytes rgb = codec.compressedSize(1e6, 1.0, 1.0, false);
    const Bytes with_depth = codec.compressedSize(1e6, 1.0, 1.0, true);
    EXPECT_GT(with_depth, rgb);
    const double extra_bits =
        static_cast<double>(with_depth - rgb) * 8.0 / 1e6;
    EXPECT_NEAR(extra_bits, 0.10, 0.01);
}

TEST(VideoCodec, DecodeFasterThanBudgetForPeriphery)
{
    // Periphery layers (~1 Mpixel after subsampling) must decode in
    // a small fraction of the 11 ms budget.
    VideoCodec codec;
    EXPECT_LT(codec.decodeTime(1e6), 2e-3);
}

TEST(VideoCodec, LatenciesScaleWithPixels)
{
    VideoCodec codec;
    const Seconds d1 = codec.decodeTime(1e6);
    const Seconds d2 = codec.decodeTime(2e6);
    EXPECT_GT(d2, d1);
    const Seconds e1 = codec.encodeTime(1e6);
    const Seconds e2 = codec.encodeTime(2e6);
    EXPECT_GT(e2, e1);
    // Server-class encoder beats the mobile decoder per pixel.
    EXPECT_LT(e2 - e1, d2 - d1);
}

TEST(VideoCodec, ZeroPixelsGivesOverheadOnly)
{
    VideoCodec codec;
    EXPECT_EQ(codec.compressedSize(0.0, 1.0, 1.0), 0u);
    EXPECT_NEAR(codec.decodeTime(0.0),
                codec.config().perStreamOverhead, 1e-12);
}

}  // namespace
}  // namespace qvr::net
