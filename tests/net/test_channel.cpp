/**
 * @file
 * Channel model: presets, serialisation-time scaling, SNR jitter,
 * ACK-visible throughput estimation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "net/channel.hpp"

namespace qvr::net
{
namespace
{

TEST(ChannelConfig, Table2Presets)
{
    EXPECT_DOUBLE_EQ(ChannelConfig::wifi().nominalDownlink,
                     fromMbps(200.0));
    EXPECT_DOUBLE_EQ(ChannelConfig::lte4g().nominalDownlink,
                     fromMbps(100.0));
    EXPECT_DOUBLE_EQ(ChannelConfig::early5g().nominalDownlink,
                     fromMbps(500.0));
    EXPECT_GT(ChannelConfig::lte4g().baseLatency,
              ChannelConfig::wifi().baseLatency);
}

TEST(Channel, TransferTimeScalesWithPayload)
{
    ChannelConfig cfg = ChannelConfig::wifi();
    cfg.snrDb = 200.0;  // effectively noiseless
    Channel ch(cfg, Rng(1));
    const Seconds t1 = ch.transfer(fromKiB(100)).duration;
    const Seconds t4 = ch.transfer(fromKiB(400)).duration;
    const Seconds base = cfg.baseLatency;
    EXPECT_NEAR(t4 - base, (t1 - base) * 4.0, (t1 - base) * 0.02);
}

TEST(Channel, NoiselessMatchesAnalyticFormula)
{
    ChannelConfig cfg = ChannelConfig::wifi();
    cfg.snrDb = 300.0;
    Channel ch(cfg, Rng(2));
    const Bytes payload = fromKiB(530);
    const Seconds t = ch.transfer(payload).duration;
    const double expected =
        cfg.baseLatency + static_cast<double>(payload) * 8.0 /
                              (cfg.nominalDownlink *
                               cfg.protocolEfficiency);
    EXPECT_NEAR(t, expected, expected * 0.01);
}

TEST(Channel, Table1ClassTransferLatency)
{
    // A ~530 KB compressed background over Wi-Fi lands around the
    // ~31 ms Table 1 reports.
    Channel ch(ChannelConfig::wifi(), Rng(3));
    RunningStat t;
    for (int i = 0; i < 200; i++)
        t.add(toMs(ch.transfer(fromKiB(530)).duration));
    EXPECT_GT(t.mean(), 22.0);
    EXPECT_LT(t.mean(), 45.0);
}

TEST(Channel, SnrControlsJitter)
{
    ChannelConfig noisy = ChannelConfig::wifi();
    noisy.snrDb = 10.0;
    ChannelConfig clean = ChannelConfig::wifi();
    clean.snrDb = 40.0;

    Channel a(noisy, Rng(4));
    Channel b(clean, Rng(4));
    RunningStat ga, gb;
    for (int i = 0; i < 2000; i++) {
        ga.add(a.transfer(fromKiB(100)).goodput);
        gb.add(b.transfer(fromKiB(100)).goodput);
    }
    const double cv_a = ga.stddev() / ga.mean();
    const double cv_b = gb.stddev() / gb.mean();
    EXPECT_GT(cv_a, cv_b * 3.0);
    // 20 dB default should sit near 10% relative jitter.
    Channel c(ChannelConfig::wifi(), Rng(5));
    RunningStat gc;
    for (int i = 0; i < 2000; i++)
        gc.add(c.transfer(fromKiB(100)).goodput);
    EXPECT_NEAR(gc.stddev() / gc.mean(), 0.10, 0.04);
}

TEST(Channel, AckThroughputTracksGoodput)
{
    Channel ch(ChannelConfig::wifi(), Rng(6));
    // Before any transfer: derated nominal.
    EXPECT_NEAR(ch.ackThroughput(),
                fromMbps(200.0) * 0.67, fromMbps(1.0));
    RunningStat g;
    for (int i = 0; i < 500; i++)
        g.add(ch.transfer(fromKiB(200)).goodput);
    EXPECT_NEAR(ch.ackThroughput(), g.mean(), g.mean() * 0.25);
}

TEST(Channel, GoodputNeverCollapses)
{
    ChannelConfig cfg = ChannelConfig::wifi();
    cfg.snrDb = 3.0;  // terrible link
    Channel ch(cfg, Rng(7));
    for (int i = 0; i < 5000; i++) {
        EXPECT_GE(ch.transfer(fromKiB(10)).goodput,
                  cfg.nominalDownlink * cfg.protocolEfficiency * 0.3);
    }
}

TEST(Channel, EmptyScheduleTransferAtMatchesTransferBitExactly)
{
    // transferAt with no fault schedule must reproduce the fault-free
    // arithmetic and RNG draw order exactly.
    Channel a(ChannelConfig::wifi(), Rng(11));
    Channel b(ChannelConfig::wifi(), Rng(11));
    for (int i = 0; i < 300; i++) {
        const TransferResult ra = a.transfer(fromKiB(100 + i));
        const TransferResult rb =
            b.transferAt(fromKiB(100 + i), 0.011 * i);
        EXPECT_EQ(ra.duration, rb.duration);
        EXPECT_EQ(ra.goodput, rb.goodput);
        EXPECT_EQ(rb.stall, 0.0);
        EXPECT_FALSE(rb.lost);
    }
}

TEST(Channel, OutageWindowStallsOnlyTransfersInsideIt)
{
    ChannelConfig cfg = ChannelConfig::wifi();
    cfg.snrDb = 300.0;  // deterministic timing
    Channel ch(cfg, Rng(12));
    ch.injectOutageWindow(1.0, 0.5);

    // Before the window: untouched.
    EXPECT_EQ(ch.transferAt(fromKiB(100), 0.9).stall, 0.0);
    // Inside: stalled until the window closes.
    EXPECT_DOUBLE_EQ(ch.transferAt(fromKiB(100), 1.0).stall, 0.5);
    EXPECT_DOUBLE_EQ(ch.transferAt(fromKiB(100), 1.2).stall, 0.3);
    const TransferResult in = ch.transferAt(fromKiB(100), 1.2);
    EXPECT_GT(in.duration, 0.3);  // stall included in duration
    // After: untouched — unlike the legacy one-shot outage, the
    // window does NOT accumulate into later transfers.
    EXPECT_EQ(ch.transferAt(fromKiB(100), 1.5).stall, 0.0);
    EXPECT_EQ(ch.transferAt(fromKiB(100), 9.0).stall, 0.0);
}

TEST(Channel, LegacyOutageHitsNextTransferOnceWheneverIssued)
{
    ChannelConfig cfg = ChannelConfig::wifi();
    cfg.snrDb = 300.0;
    Channel ch(cfg, Rng(13));
    ch.injectOutage(0.2);
    // The whole duration lands on the next transfer, regardless of
    // its issue time...
    EXPECT_DOUBLE_EQ(ch.transferAt(fromKiB(100), 99.0).stall, 0.2);
    // ...and is consumed by it.
    EXPECT_EQ(ch.transferAt(fromKiB(100), 99.1).stall, 0.0);

    ch.injectOutage(0.1);
    ch.injectOutage(0.1);  // outages accumulate until consumed
    EXPECT_DOUBLE_EQ(ch.transfer(fromKiB(100)).stall, 0.2);
}

TEST(Channel, BurstyWindowCanDropWholeTransfers)
{
    ChannelConfig cfg = ChannelConfig::wifi();
    Channel ch(cfg, Rng(14));
    fault::FaultSchedule sched;
    fault::GilbertElliottConfig ge;
    ge.pGoodToBad = 1.0;  // always Bad
    ge.pBadToGood = 1e-9;
    ge.transferDropBad = 0.999;  // ~certain (validation caps at <1)
    sched.setGilbertElliott(ge);
    fault::LinkDegradationWindow w;
    w.start = 0.0;
    w.duration = 100.0;
    w.bursty = true;
    sched.addLinkDegradation(w);
    ch.setFaultSchedule(sched);

    for (int i = 0; i < 20; i++)
        EXPECT_TRUE(ch.transferAt(fromKiB(100), 1.0).lost);
    // Outside the window the chain is not consulted.
    EXPECT_FALSE(ch.transferAt(fromKiB(100), 200.0).lost);
}

TEST(ChannelConfigDeath, RejectsEachImpossibleValue)
{
    auto with = [](auto mutate) {
        ChannelConfig cfg = ChannelConfig::wifi();
        mutate(cfg);
        return cfg;
    };
    using C = ChannelConfig;
    EXPECT_DEATH(
        with([](C &c) { c.nominalDownlink = 0.0; }).validate(),
        "downlink");
    EXPECT_DEATH(
        with([](C &c) { c.protocolEfficiency = 0.0; }).validate(),
        "efficiency");
    EXPECT_DEATH(
        with([](C &c) { c.protocolEfficiency = 1.2; }).validate(),
        "efficiency");
    EXPECT_DEATH(with([](C &c) { c.baseLatency = -1e-3; }).validate(),
                 "latency");
    EXPECT_DEATH(with([](C &c) { c.packetLoss = 1.0; }).validate(),
                 "loss");
    EXPECT_DEATH(with([](C &c) { c.packetLoss = -0.1; }).validate(),
                 "loss");
    EXPECT_DEATH(with([](C &c) { c.packetBytes = 0; }).validate(),
                 "packet size");
    EXPECT_DEATH(
        with([](C &c) { c.snrDb = std::nan(""); }).validate(), "SNR");
    // The constructor runs the same checks.
    ChannelConfig bad = ChannelConfig::wifi();
    bad.nominalDownlink = -1.0;
    EXPECT_DEATH(Channel{bad}, "downlink");
}

}  // namespace
}  // namespace qvr::net
