/**
 * @file
 * Channel model: presets, serialisation-time scaling, SNR jitter,
 * ACK-visible throughput estimation.
 */

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "net/channel.hpp"

namespace qvr::net
{
namespace
{

TEST(ChannelConfig, Table2Presets)
{
    EXPECT_DOUBLE_EQ(ChannelConfig::wifi().nominalDownlink,
                     fromMbps(200.0));
    EXPECT_DOUBLE_EQ(ChannelConfig::lte4g().nominalDownlink,
                     fromMbps(100.0));
    EXPECT_DOUBLE_EQ(ChannelConfig::early5g().nominalDownlink,
                     fromMbps(500.0));
    EXPECT_GT(ChannelConfig::lte4g().baseLatency,
              ChannelConfig::wifi().baseLatency);
}

TEST(Channel, TransferTimeScalesWithPayload)
{
    ChannelConfig cfg = ChannelConfig::wifi();
    cfg.snrDb = 200.0;  // effectively noiseless
    Channel ch(cfg, Rng(1));
    const Seconds t1 = ch.transfer(fromKiB(100)).duration;
    const Seconds t4 = ch.transfer(fromKiB(400)).duration;
    const Seconds base = cfg.baseLatency;
    EXPECT_NEAR(t4 - base, (t1 - base) * 4.0, (t1 - base) * 0.02);
}

TEST(Channel, NoiselessMatchesAnalyticFormula)
{
    ChannelConfig cfg = ChannelConfig::wifi();
    cfg.snrDb = 300.0;
    Channel ch(cfg, Rng(2));
    const Bytes payload = fromKiB(530);
    const Seconds t = ch.transfer(payload).duration;
    const double expected =
        cfg.baseLatency + static_cast<double>(payload) * 8.0 /
                              (cfg.nominalDownlink *
                               cfg.protocolEfficiency);
    EXPECT_NEAR(t, expected, expected * 0.01);
}

TEST(Channel, Table1ClassTransferLatency)
{
    // A ~530 KB compressed background over Wi-Fi lands around the
    // ~31 ms Table 1 reports.
    Channel ch(ChannelConfig::wifi(), Rng(3));
    RunningStat t;
    for (int i = 0; i < 200; i++)
        t.add(toMs(ch.transfer(fromKiB(530)).duration));
    EXPECT_GT(t.mean(), 22.0);
    EXPECT_LT(t.mean(), 45.0);
}

TEST(Channel, SnrControlsJitter)
{
    ChannelConfig noisy = ChannelConfig::wifi();
    noisy.snrDb = 10.0;
    ChannelConfig clean = ChannelConfig::wifi();
    clean.snrDb = 40.0;

    Channel a(noisy, Rng(4));
    Channel b(clean, Rng(4));
    RunningStat ga, gb;
    for (int i = 0; i < 2000; i++) {
        ga.add(a.transfer(fromKiB(100)).goodput);
        gb.add(b.transfer(fromKiB(100)).goodput);
    }
    const double cv_a = ga.stddev() / ga.mean();
    const double cv_b = gb.stddev() / gb.mean();
    EXPECT_GT(cv_a, cv_b * 3.0);
    // 20 dB default should sit near 10% relative jitter.
    Channel c(ChannelConfig::wifi(), Rng(5));
    RunningStat gc;
    for (int i = 0; i < 2000; i++)
        gc.add(c.transfer(fromKiB(100)).goodput);
    EXPECT_NEAR(gc.stddev() / gc.mean(), 0.10, 0.04);
}

TEST(Channel, AckThroughputTracksGoodput)
{
    Channel ch(ChannelConfig::wifi(), Rng(6));
    // Before any transfer: derated nominal.
    EXPECT_NEAR(ch.ackThroughput(),
                fromMbps(200.0) * 0.67, fromMbps(1.0));
    RunningStat g;
    for (int i = 0; i < 500; i++)
        g.add(ch.transfer(fromKiB(200)).goodput);
    EXPECT_NEAR(ch.ackThroughput(), g.mean(), g.mean() * 0.25);
}

TEST(Channel, GoodputNeverCollapses)
{
    ChannelConfig cfg = ChannelConfig::wifi();
    cfg.snrDb = 3.0;  // terrible link
    Channel ch(cfg, Rng(7));
    for (int i = 0; i < 5000; i++) {
        EXPECT_GE(ch.transfer(fromKiB(10)).goodput,
                  cfg.nominalDownlink * cfg.protocolEfficiency * 0.3);
    }
}

}  // namespace
}  // namespace qvr::net
