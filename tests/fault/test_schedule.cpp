/**
 * @file
 * FaultSchedule: window semantics, state combination over overlapping
 * windows, Gilbert-Elliott burst process, scenario generators'
 * determinism, and parameter validation.
 */

#include <gtest/gtest.h>

#include "fault/schedule.hpp"

namespace qvr::fault
{
namespace
{

TEST(FaultWindows, ContainsIsHalfOpen)
{
    const OutageWindow w{1.0, 0.5};
    EXPECT_FALSE(w.contains(0.999));
    EXPECT_TRUE(w.contains(1.0));
    EXPECT_TRUE(w.contains(1.499));
    EXPECT_FALSE(w.contains(1.5));  // [start, end)
    EXPECT_DOUBLE_EQ(w.end(), 1.5);
}

TEST(FaultSchedule, EmptyByDefault)
{
    FaultSchedule s;
    EXPECT_TRUE(s.empty());
    const LinkState l = s.linkStateAt(1.0);
    EXPECT_FALSE(l.outage);
    EXPECT_DOUBLE_EQ(l.bandwidthFactor, 1.0);
    EXPECT_DOUBLE_EQ(l.extraLoss, 0.0);
    EXPECT_FALSE(l.bursty);
    const ServerState sv = s.serverStateAt(1.0);
    EXPECT_DOUBLE_EQ(sv.stragglerFactor, 1.0);
    EXPECT_EQ(sv.failedChiplets, 0u);
    EXPECT_DOUBLE_EQ(s.outageEndAfter(1.0), 1.0);
    EXPECT_DOUBLE_EQ(s.firstFaultTime(), 0.0);
    EXPECT_DOUBLE_EQ(s.lastFaultTime(), 0.0);
}

TEST(FaultSchedule, OutageStateAndEnd)
{
    FaultSchedule s;
    s.addOutage(1.0, 0.5);
    EXPECT_FALSE(s.linkStateAt(0.9).outage);
    EXPECT_TRUE(s.linkStateAt(1.2).outage);
    EXPECT_DOUBLE_EQ(s.linkStateAt(1.2).outageEnd, 1.5);
    EXPECT_FALSE(s.linkStateAt(1.5).outage);
    EXPECT_DOUBLE_EQ(s.outageEndAfter(1.2), 1.5);
    EXPECT_DOUBLE_EQ(s.outageEndAfter(0.9), 0.9);
}

TEST(FaultSchedule, ChainedOutagesResolveToFinalEnd)
{
    // Leaving the first window lands inside the second: the stall
    // must carry through to the last window's close.
    FaultSchedule s;
    s.addOutage(1.0, 0.5);
    s.addOutage(1.4, 0.5);
    EXPECT_DOUBLE_EQ(s.outageEndAfter(1.1), 1.9);
}

TEST(FaultSchedule, OverlappingDegradationsCombine)
{
    FaultSchedule s;
    LinkDegradationWindow a;
    a.start = 0.0;
    a.duration = 2.0;
    a.bandwidthFactor = 0.5;
    a.extraLoss = 0.10;
    s.addLinkDegradation(a);
    LinkDegradationWindow b;
    b.start = 1.0;
    b.duration = 2.0;
    b.bandwidthFactor = 0.4;
    b.extraLoss = 0.20;
    s.addLinkDegradation(b);

    // Only a active.
    EXPECT_DOUBLE_EQ(s.linkStateAt(0.5).bandwidthFactor, 0.5);
    EXPECT_DOUBLE_EQ(s.linkStateAt(0.5).extraLoss, 0.10);
    // Overlap: factors multiply, loss adds.
    EXPECT_DOUBLE_EQ(s.linkStateAt(1.5).bandwidthFactor, 0.2);
    EXPECT_NEAR(s.linkStateAt(1.5).extraLoss, 0.30, 1e-12);
    // Only b active.
    EXPECT_DOUBLE_EQ(s.linkStateAt(2.5).bandwidthFactor, 0.4);
}

TEST(FaultSchedule, ExtraLossClampsBelowOne)
{
    FaultSchedule s;
    for (int i = 0; i < 3; i++) {
        LinkDegradationWindow w;
        w.start = 0.0;
        w.duration = 1.0;
        w.extraLoss = 0.5;
        s.addLinkDegradation(w);
    }
    EXPECT_LE(s.linkStateAt(0.5).extraLoss, 0.95);
}

TEST(FaultSchedule, BurstyWindowFlagsWithoutFlatShaping)
{
    FaultSchedule s;
    LinkDegradationWindow w;
    w.start = 0.0;
    w.duration = 1.0;
    w.bursty = true;
    s.addLinkDegradation(w);
    const LinkState l = s.linkStateAt(0.5);
    EXPECT_TRUE(l.bursty);
    // GE drives the shaping; the flat path stays neutral.
    EXPECT_DOUBLE_EQ(l.bandwidthFactor, 1.0);
    EXPECT_DOUBLE_EQ(l.extraLoss, 0.0);
    EXPECT_FALSE(s.linkStateAt(1.5).bursty);
}

TEST(FaultSchedule, ServerWindowsTakeTheWorst)
{
    FaultSchedule s;
    ServerFaultWindow a;
    a.start = 0.0;
    a.duration = 2.0;
    a.stragglerFactor = 2.0;
    a.failedChiplets = 1;
    s.addServerFault(a);
    ServerFaultWindow b;
    b.start = 1.0;
    b.duration = 2.0;
    b.stragglerFactor = 3.0;
    s.addServerFault(b);

    EXPECT_DOUBLE_EQ(s.serverStateAt(1.5).stragglerFactor, 3.0);
    EXPECT_EQ(s.serverStateAt(1.5).failedChiplets, 1u);
    EXPECT_DOUBLE_EQ(s.serverStateAt(2.5).stragglerFactor, 3.0);
    EXPECT_EQ(s.serverStateAt(2.5).failedChiplets, 0u);
}

TEST(FaultSchedule, FirstAndLastSpanAllFamilies)
{
    FaultSchedule s;
    s.addOutage(2.0, 0.5);
    LinkDegradationWindow w;
    w.start = 1.0;
    w.duration = 0.5;
    w.bandwidthFactor = 0.5;
    s.addLinkDegradation(w);
    ServerFaultWindow sv;
    sv.start = 3.0;
    sv.duration = 1.0;
    sv.stragglerFactor = 2.0;
    s.addServerFault(sv);
    EXPECT_DOUBLE_EQ(s.firstFaultTime(), 1.0);
    EXPECT_DOUBLE_EQ(s.lastFaultTime(), 4.0);
}

TEST(GilbertElliottChain, ForcedTransitionsAlternate)
{
    GilbertElliottConfig cfg;
    cfg.pGoodToBad = 1.0;
    cfg.pBadToGood = 1.0;
    GilbertElliott ge(cfg);
    Rng rng(1);
    EXPECT_FALSE(ge.bad());
    EXPECT_TRUE(ge.step(rng));   // Good -> Bad, certainly
    EXPECT_FALSE(ge.step(rng));  // Bad -> Good, certainly
    EXPECT_TRUE(ge.step(rng));
    ge.reset();
    EXPECT_FALSE(ge.bad());
}

TEST(GilbertElliottChain, DeterministicForFixedSeed)
{
    GilbertElliottConfig cfg;  // defaults: stochastic
    GilbertElliott a(cfg), b(cfg);
    Rng ra(9, 77), rb(9, 77);
    for (int i = 0; i < 500; i++)
        EXPECT_EQ(a.step(ra), b.step(rb));
}

TEST(GilbertElliottChain, BurstLengthsFollowDwellParameter)
{
    GilbertElliottConfig cfg;
    cfg.pGoodToBad = 0.05;
    cfg.pBadToGood = 0.25;  // mean burst: 4 transfers
    GilbertElliott ge(cfg);
    Rng rng(123);
    int bursts = 0, bad_steps = 0;
    bool prev_bad = false;
    for (int i = 0; i < 200000; i++) {
        const bool bad = ge.step(rng);
        if (bad) {
            bad_steps++;
            if (!prev_bad)
                bursts++;
        }
        prev_bad = bad;
    }
    ASSERT_GT(bursts, 0);
    const double mean_burst =
        static_cast<double>(bad_steps) / bursts;
    EXPECT_NEAR(mean_burst, 1.0 / cfg.pBadToGood, 0.3);
}

TEST(Scenarios, GeneratorsAreSeedDeterministic)
{
    for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
        const FaultSchedule a = makeBurstyScenario(seed, 5.0);
        const FaultSchedule b = makeBurstyScenario(seed, 5.0);
        ASSERT_EQ(a.linkDegradations().size(),
                  b.linkDegradations().size());
        for (std::size_t i = 0; i < a.linkDegradations().size(); i++) {
            EXPECT_DOUBLE_EQ(a.linkDegradations()[i].start,
                             b.linkDegradations()[i].start);
            EXPECT_DOUBLE_EQ(a.linkDegradations()[i].duration,
                             b.linkDegradations()[i].duration);
        }
        const FaultSchedule c = makeOutageStormScenario(seed, 5.0);
        const FaultSchedule d = makeOutageStormScenario(seed, 5.0);
        ASSERT_EQ(c.outages().size(), d.outages().size());
        for (std::size_t i = 0; i < c.outages().size(); i++)
            EXPECT_DOUBLE_EQ(c.outages()[i].start,
                             d.outages()[i].start);
    }
}

TEST(Scenarios, DifferentSeedsDiffer)
{
    const FaultSchedule a = makeOutageStormScenario(1, 5.0);
    const FaultSchedule b = makeOutageStormScenario(2, 5.0);
    ASSERT_FALSE(a.outages().empty());
    ASSERT_FALSE(b.outages().empty());
    // The first window's start is scripted (horizon-relative); the
    // seed drives the durations and the rest of the storm.
    EXPECT_NE(a.outages()[0].duration, b.outages()[0].duration);
}

TEST(Scenarios, WindowsStayInsideHorizon)
{
    const Seconds horizon = 4.0;
    for (const auto &sc : standardSuite(7, horizon)) {
        for (const auto &w : sc.schedule.linkDegradations())
            EXPECT_LE(w.end(), horizon + 1.3)  // worst case stretches
                << sc.name;                    // past its outage
        for (const auto &w : sc.schedule.serverFaults())
            EXPECT_LE(w.end(), horizon) << sc.name;
    }
}

TEST(Scenarios, WorstCaseShapeMatchesAcceptanceCriteria)
{
    const FaultSchedule s = makeWorstCaseSchedule(1.0);
    ASSERT_EQ(s.outages().size(), 1u);
    EXPECT_DOUBLE_EQ(s.outages()[0].start, 1.0);
    EXPECT_DOUBLE_EQ(s.outages()[0].duration, 0.500);
    ASSERT_EQ(s.linkDegradations().size(), 1u);
    const auto &w = s.linkDegradations()[0];
    EXPECT_TRUE(w.bursty);
    // The loss episode starts before the outage and outlasts it.
    EXPECT_LT(w.start, 1.0);
    EXPECT_GT(w.end(), 1.5);
    EXPECT_DOUBLE_EQ(s.gilbertElliott().lossBad, 0.10);
}

TEST(Scenarios, StandardSuiteOrder)
{
    const auto suite = standardSuite(7, 3.0);
    ASSERT_EQ(suite.size(), 5u);
    EXPECT_EQ(suite[0].name, "clean");
    EXPECT_TRUE(suite[0].schedule.empty());
    EXPECT_EQ(suite[1].name, "bursty");
    EXPECT_EQ(suite[2].name, "outage-storm");
    EXPECT_EQ(suite[3].name, "straggler");
    EXPECT_EQ(suite[4].name, "worst-case");
}

TEST(FaultScheduleDeath, RejectsBadWindows)
{
    FaultSchedule s;
    EXPECT_DEATH(s.addOutage(-1.0, 0.5), "before t=0");
    EXPECT_DEATH(s.addOutage(1.0, 0.0), "positive duration");

    LinkDegradationWindow w;
    w.start = 0.0;
    w.duration = 1.0;
    w.bandwidthFactor = 0.0;
    EXPECT_DEATH(s.addLinkDegradation(w), "bandwidth factor");
    w.bandwidthFactor = 1.0;
    w.extraLoss = 1.0;
    EXPECT_DEATH(s.addLinkDegradation(w), "extra loss");

    ServerFaultWindow sv;
    sv.start = 0.0;
    sv.duration = 1.0;
    sv.stragglerFactor = 0.5;
    EXPECT_DEATH(s.addServerFault(sv), "straggler factor");
}

TEST(FaultScheduleDeath, RejectsBadGilbertElliott)
{
    GilbertElliottConfig stuck;
    stuck.pBadToGood = 0.0;  // Bad would be absorbing
    EXPECT_DEATH(GilbertElliott{stuck}, "escapable");

    FaultSchedule s;
    GilbertElliottConfig lossy;
    lossy.lossBad = 1.0;
    EXPECT_DEATH(s.setGilbertElliott(lossy), "lossBad");
}

TEST(ScenariosDeath, RejectsNonPositiveHorizon)
{
    EXPECT_DEATH(makeBurstyScenario(1, 0.0), "horizon");
    EXPECT_DEATH(makeWorstCaseSchedule(-1.0), "before t=0");
}

}  // namespace
}  // namespace qvr::fault
