/**
 * @file
 * Sensor front-ends: own-frequency sampling, transport latency,
 * bounded noise.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "motion/tracker.hpp"

namespace qvr::motion
{
namespace
{

TEST(EyeTracker, DeliversWithTransportLatency)
{
    EyeTrackerConfig cfg;
    cfg.accuracyDeg = 0.0;  // isolate the latency path
    cfg.jitterDeg = 0.0;
    EyeTracker t(cfg, Rng(1));

    t.observe(0.000, GazeAngles{1.0, 0.0});
    // Before the transport latency elapses, nothing newer than the
    // (only) old sample is visible — the tracker returns its oldest
    // knowledge.
    t.observe(0.010, GazeAngles{2.0, 0.0});
    const GazeAngles at_11ms = t.delivered(0.011);
    EXPECT_DOUBLE_EQ(at_11ms.x, 1.0);  // 10 ms sample not yet visible
    const GazeAngles at_13ms = t.delivered(0.013);
    EXPECT_DOUBLE_EQ(at_13ms.x, 2.0);  // now it is
}

TEST(EyeTracker, SamplesAtOwnFrequencyOnly)
{
    EyeTrackerConfig cfg;
    cfg.sampleRate = 100.0;  // 10 ms period
    cfg.accuracyDeg = 0.0;
    cfg.jitterDeg = 0.0;
    EyeTracker t(cfg, Rng(2));

    t.observe(0.000, GazeAngles{1.0, 0.0});
    t.observe(0.005, GazeAngles{5.0, 0.0});  // between samples: dropped
    t.observe(0.010, GazeAngles{2.0, 0.0});
    EXPECT_DOUBLE_EQ(t.delivered(0.05).x, 2.0);
}

TEST(EyeTracker, NoiseMatchesAccuracySpec)
{
    EyeTrackerConfig cfg;
    cfg.accuracyDeg = 1.0;
    cfg.transportLatency = 0.0;
    EyeTracker t(cfg, Rng(3));
    RunningStat err;
    Seconds now = 0.0;
    for (int i = 0; i < 5000; i++) {
        now += t.samplePeriod();
        t.observe(now, GazeAngles{3.0, -2.0});
        const GazeAngles d = t.delivered(now);
        err.add(std::hypot(d.x - 3.0, d.y + 2.0));
    }
    // RMS angular error ~ accuracyDeg.
    const double rms = std::sqrt(err.mean() * err.mean() +
                                 err.variance());
    EXPECT_GT(rms, 0.5);
    EXPECT_LT(rms, 1.6);
}

TEST(MotionSensor, DeliversLatestVisiblePose)
{
    MotionSensorConfig cfg;
    cfg.positionNoise = 0.0;
    cfg.orientationNoise = 0.0;
    MotionSensor s(cfg, Rng(4));

    HeadPose p1;
    p1.orientation.x = 10.0;
    HeadPose p2;
    p2.orientation.x = 20.0;
    s.observe(0.000, p1);
    s.observe(0.002, p2);
    EXPECT_DOUBLE_EQ(s.delivered(0.0021).orientation.x, 10.0);
}

TEST(MotionSensor, EmptyHistoryReturnsDefault)
{
    MotionSensor s(MotionSensorConfig{}, Rng(5));
    const HeadPose p = s.delivered(1.0);
    EXPECT_DOUBLE_EQ(p.orientation.x, 0.0);
}

TEST(MotionSensor, HistoryStaysBounded)
{
    MotionSensorConfig cfg;
    MotionSensor s(cfg, Rng(6));
    Seconds now = 0.0;
    for (int i = 0; i < 100000; i++) {
        now += s.samplePeriod();
        s.observe(now, HeadPose{});
    }
    // Just verifying this doesn't blow up memory / stay responsive.
    SUCCEED();
}

}  // namespace
}  // namespace qvr::motion
