/**
 * @file
 * Frame-aligned trace generation: shape, determinism, deltas,
 * interaction episodes, sensor-vs-truth error bounds.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "motion/trace.hpp"

namespace qvr::motion
{
namespace
{

TEST(MotionTrace, ShapeAndTimestamps)
{
    TraceConfig cfg;
    cfg.numFrames = 90;
    cfg.frameRate = 90.0;
    const MotionTrace t = generateTrace(cfg);
    ASSERT_EQ(t.size(), 90u);
    ASSERT_EQ(t.groundTruth.size(), 90u);
    for (std::size_t i = 1; i < t.size(); i++) {
        EXPECT_NEAR(t.samples[i].timestamp -
                        t.samples[i - 1].timestamp,
                    1.0 / 90.0, 1e-9);
    }
}

TEST(MotionTrace, DeterministicInSeed)
{
    TraceConfig cfg;
    cfg.numFrames = 50;
    cfg.seed = 77;
    const MotionTrace a = generateTrace(cfg);
    const MotionTrace b = generateTrace(cfg);
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a.samples[i].head.orientation,
                  b.samples[i].head.orientation);
        EXPECT_EQ(a.samples[i].gaze, b.samples[i].gaze);
    }
}

TEST(MotionTrace, DifferentSeedsDiffer)
{
    TraceConfig cfg;
    cfg.numFrames = 50;
    cfg.seed = 1;
    const MotionTrace a = generateTrace(cfg);
    cfg.seed = 2;
    const MotionTrace b = generateTrace(cfg);
    double diff = 0.0;
    for (std::size_t i = 0; i < a.size(); i++) {
        diff += std::abs(a.samples[i].head.orientation.x -
                         b.samples[i].head.orientation.x);
    }
    EXPECT_GT(diff, 1.0);
}

TEST(MotionTrace, DeltaAtMatchesSamples)
{
    TraceConfig cfg;
    cfg.numFrames = 20;
    const MotionTrace t = generateTrace(cfg);
    const MotionDelta d0 = t.deltaAt(0);
    EXPECT_DOUBLE_EQ(d0.dGaze.norm(), 0.0);
    const MotionDelta d5 = t.deltaAt(5);
    EXPECT_NEAR(d5.dOrientation.x,
                t.samples[5].head.orientation.x -
                    t.samples[4].head.orientation.x,
                1e-12);
}

TEST(MotionTrace, SensorLagsTruth)
{
    // The delivered gaze must lag ground truth: correlation of the
    // sensor stream with truth shifted back should beat unshifted.
    TraceConfig cfg;
    cfg.numFrames = 2000;
    cfg.seed = 3;
    const MotionTrace t = generateTrace(cfg);
    RunningStat err_now, err_lag;
    for (std::size_t i = 2; i < t.size(); i++) {
        err_now.add(std::abs(t.samples[i].gaze.x -
                             t.groundTruth[i].gaze.x));
        err_lag.add(std::abs(t.samples[i].gaze.x -
                             t.groundTruth[i - 1].gaze.x));
    }
    EXPECT_LT(err_lag.mean(), err_now.mean() * 1.25);
}

TEST(MotionTrace, InteractionEpisodesOccur)
{
    TraceConfig cfg;
    cfg.numFrames = 5000;
    cfg.interactionRate = 0.5;
    cfg.interactionDuration = 1.0;
    cfg.seed = 4;
    const MotionTrace t = generateTrace(cfg);
    std::size_t interacting = 0;
    for (const auto &s : t.samples) {
        if (s.interacting)
            interacting++;
    }
    const double frac =
        static_cast<double>(interacting) / static_cast<double>(t.size());
    EXPECT_GT(frac, 0.02);
    EXPECT_LT(frac, 0.9);
}

TEST(MotionTrace, HeadSpeedSummaryNonNegative)
{
    TraceConfig cfg;
    cfg.numFrames = 100;
    const MotionTrace t = generateTrace(cfg);
    for (std::size_t i = 0; i < t.size(); i++)
        EXPECT_GE(t.deltaAt(i).headSpeed(), 0.0);
}

}  // namespace
}  // namespace qvr::motion
