/**
 * @file
 * Pose predictors: hold-last vs constant-velocity accuracy on
 * synthetic and trace-driven motion; integration with the static
 * pipeline's prefetch hit rate.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "motion/predictor.hpp"
#include "motion/trace.hpp"

namespace qvr::motion
{
namespace
{

MotionSample
sampleAt(Seconds t, double yaw)
{
    MotionSample s;
    s.timestamp = t;
    s.head.orientation.x = yaw;
    return s;
}

TEST(PosePredictor, HoldLastFreezes)
{
    PosePredictor p(PredictorKind::HoldLast);
    p.observe(sampleAt(0.0, 10.0));
    p.observe(sampleAt(0.011, 12.0));
    const MotionSample out = p.predict(0.033);
    EXPECT_DOUBLE_EQ(out.head.orientation.x, 12.0);
    EXPECT_DOUBLE_EQ(out.timestamp, 0.011 + 0.033);
}

TEST(PosePredictor, ConstantVelocityExtrapolatesExactly)
{
    // Pure linear motion: CV prediction is exact.
    PosePredictor p(PredictorKind::ConstantVelocity, 1.0);
    for (int i = 0; i < 10; i++) {
        p.observe(sampleAt(i * 0.011, 90.0 * i * 0.011));
    }
    const MotionSample out = p.predict(0.033);
    EXPECT_NEAR(out.head.orientation.x, 90.0 * (9 * 0.011 + 0.033),
                1e-9);
}

TEST(PosePredictor, UnprimedFallsBackToHoldLast)
{
    PosePredictor p(PredictorKind::ConstantVelocity);
    p.observe(sampleAt(0.0, 5.0));
    EXPECT_FALSE(p.primed());
    EXPECT_DOUBLE_EQ(p.predict(0.1).head.orientation.x, 5.0);
}

TEST(PosePredictor, CvBeatsHoldLastOnRealTraces)
{
    // On realistic head motion, extrapolating 3 frames out must beat
    // freezing the pose — the whole argument for predictive
    // prefetch.
    TraceConfig cfg;
    cfg.numFrames = 2000;
    cfg.seed = 9;
    const MotionTrace trace = generateTrace(cfg);
    const Seconds horizon = 3.0 / cfg.frameRate;

    PosePredictor hold(PredictorKind::HoldLast);
    PosePredictor cv(PredictorKind::ConstantVelocity);
    RunningStat err_hold, err_cv;
    for (std::size_t i = 0; i + 3 < trace.size(); i++) {
        hold.observe(trace.samples[i]);
        cv.observe(trace.samples[i]);
        const double actual =
            trace.samples[i + 3].head.orientation.x;
        err_hold.add(std::abs(
            hold.predict(horizon).head.orientation.x - actual));
        err_cv.add(std::abs(
            cv.predict(horizon).head.orientation.x - actual));
    }
    EXPECT_LT(err_cv.mean(), err_hold.mean() * 0.8);
}

TEST(PosePredictor, CvStillMissesDuringTurns)
{
    // During rapid reorientations the velocity estimate lags: the
    // tail error stays large, which is why prediction alone cannot
    // save the static design (the paper's point).
    TraceConfig cfg;
    cfg.numFrames = 3000;
    cfg.head.turnRate = 1.0;  // frequent fast turns
    cfg.seed = 10;
    const MotionTrace trace = generateTrace(cfg);
    const Seconds horizon = 3.0 / cfg.frameRate;

    PosePredictor cv(PredictorKind::ConstantVelocity);
    SampleSeries err;
    for (std::size_t i = 0; i + 3 < trace.size(); i++) {
        cv.observe(trace.samples[i]);
        err.add(std::abs(
            cv.predict(horizon).head.orientation.x -
            trace.samples[i + 3].head.orientation.x));
    }
    // 99th-percentile error stays above any plausible validity
    // threshold for a prefetched panorama.
    EXPECT_GT(err.percentile(99), 1.0);
}

TEST(PosePredictorDeath, BadAlphaRejected)
{
    EXPECT_DEATH(
        PosePredictor(PredictorKind::ConstantVelocity, 0.0),
        "velocity alpha");
}

}  // namespace
}  // namespace qvr::motion
