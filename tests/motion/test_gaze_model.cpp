/**
 * @file
 * Gaze model: fixation/saccade alternation, amplitude limits,
 * oculomotor range, central bias.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "motion/gaze_model.hpp"

namespace qvr::motion
{
namespace
{

TEST(GazeModel, StaysWithinOculomotorRange)
{
    GazeModelConfig cfg;
    GazeModel g(cfg, Rng(3));
    for (int i = 0; i < 50000; i++) {
        const GazeAngles &a = g.step(0.002);
        ASSERT_LE(std::abs(a.x), cfg.gazeRangeH + 1.0);
        ASSERT_LE(std::abs(a.y), cfg.gazeRangeV + 1.0);
    }
}

TEST(GazeModel, SaccadesHappenAtPlausibleRate)
{
    GazeModelConfig cfg;
    GazeModel g(cfg, Rng(5));
    const double seconds = 60.0;
    const double dt = 0.002;
    for (int i = 0; i < static_cast<int>(seconds / dt); i++)
        g.step(dt);
    // Humans make ~1-4 saccades/s with 300 ms mean fixations.
    const double rate = static_cast<double>(g.saccadeCount()) / seconds;
    EXPECT_GT(rate, 0.5);
    EXPECT_LT(rate, 5.0);
}

TEST(GazeModel, FixationDriftIsSmall)
{
    GazeModelConfig cfg;
    cfg.fixationMeanDuration = 1000.0;  // never saccade
    GazeModel g(cfg, Rng(6));
    const GazeAngles start = g.gaze();
    for (int i = 0; i < 500; i++)  // 1 s of fixation
        g.step(0.002);
    EXPECT_LT((g.gaze() - start).norm(), 2.0);
    EXPECT_EQ(g.saccadeCount(), 0u);
}

TEST(GazeModel, SaccadeIsBallistic)
{
    // During a saccade, per-step displacement peaks far above the
    // fixation drift level.
    GazeModelConfig cfg;
    GazeModel g(cfg, Rng(7));
    RunningStat step_move;
    GazeAngles prev = g.gaze();
    for (int i = 0; i < 20000; i++) {
        const GazeAngles &now = g.step(0.002);
        step_move.add((now - prev).norm());
        prev = now;
    }
    // Peak instantaneous speed must far exceed the mean.
    EXPECT_GT(step_move.max(), step_move.mean() * 10.0);
}

TEST(GazeModel, CentralBiasKeepsMeanNearCentre)
{
    GazeModelConfig cfg;
    GazeModel g(cfg, Rng(8));
    RunningStat x, y;
    for (int i = 0; i < 100000; i++) {
        const GazeAngles &a = g.step(0.002);
        x.add(a.x);
        y.add(a.y);
    }
    EXPECT_LT(std::abs(x.mean()), 8.0);
    EXPECT_LT(std::abs(y.mean()), 8.0);
}

TEST(GazeModel, InSaccadeFlagTogglesWithMotion)
{
    GazeModelConfig cfg;
    cfg.fixationMeanDuration = 0.02;
    GazeModel g(cfg, Rng(9));
    bool saw_saccade = false;
    bool saw_fixation = false;
    for (int i = 0; i < 5000; i++) {
        g.step(0.002);
        (g.inSaccade() ? saw_saccade : saw_fixation) = true;
    }
    EXPECT_TRUE(saw_saccade);
    EXPECT_TRUE(saw_fixation);
}

}  // namespace
}  // namespace qvr::motion
