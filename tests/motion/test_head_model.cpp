/**
 * @file
 * Head-motion model: determinism, stationarity, limits, turn events.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "motion/head_model.hpp"

namespace qvr::motion
{
namespace
{

TEST(HeadMotionModel, DeterministicForSeed)
{
    HeadModelConfig cfg;
    HeadMotionModel a(cfg, Rng(9));
    HeadMotionModel b(cfg, Rng(9));
    for (int i = 0; i < 200; i++) {
        a.step(0.011);
        b.step(0.011);
    }
    EXPECT_EQ(a.pose().orientation, b.pose().orientation);
    EXPECT_EQ(a.pose().position, b.pose().position);
}

TEST(HeadMotionModel, PitchAndRollStayBounded)
{
    HeadModelConfig cfg;
    HeadMotionModel m(cfg, Rng(4));
    for (int i = 0; i < 20000; i++) {
        const HeadPose &p = m.step(0.005);
        ASSERT_LE(std::abs(p.orientation.y), cfg.pitchLimit + 1e-9);
        ASSERT_LE(std::abs(p.orientation.z), cfg.rollLimit + 1e-9);
    }
}

TEST(HeadMotionModel, AngularSpeedStationaryScale)
{
    // The OU process should keep angular speed around its stationary
    // sigma, not diverge.
    HeadModelConfig cfg;
    cfg.turnRate = 0.0;  // isolate the OU part
    HeadMotionModel m(cfg, Rng(12));
    RunningStat speed;
    for (int i = 0; i < 20000; i++) {
        m.step(0.005);
        if (i > 1000)
            speed.add(m.angularSpeed());
    }
    // |(wx, wy, wz)| with sigmas (30, 18, 9): mean of order ~30-40.
    EXPECT_GT(speed.mean(), 10.0);
    EXPECT_LT(speed.mean(), 80.0);
}

TEST(HeadMotionModel, TurnsProduceLargeYawExcursions)
{
    HeadModelConfig calm;
    calm.turnRate = 0.0;
    calm.angularSigma = 5.0;
    HeadModelConfig turny = calm;
    turny.turnRate = 2.0;  // frequent rapid turns

    HeadMotionModel a(calm, Rng(5));
    HeadMotionModel b(turny, Rng(5));
    RunningStat yaw_rate_a, yaw_rate_b;
    double prev_a = 0.0, prev_b = 0.0;
    for (int i = 0; i < 5000; i++) {
        const double ya = a.step(0.011).orientation.x;
        const double yb = b.step(0.011).orientation.x;
        if (i) {
            yaw_rate_a.add(std::abs(ya - prev_a) / 0.011);
            yaw_rate_b.add(std::abs(yb - prev_b) / 0.011);
        }
        prev_a = ya;
        prev_b = yb;
    }
    EXPECT_GT(yaw_rate_b.max(), yaw_rate_a.max() * 2.0);
}

TEST(HeadMotionModel, PositionDriftsSlowly)
{
    HeadModelConfig cfg;
    HeadMotionModel m(cfg, Rng(8));
    for (int i = 0; i < 9000; i++)  // ~45 s
        m.step(0.005);
    // A standing VR user wanders but stays room-scale.
    EXPECT_LT(m.pose().position.norm(), 10.0);
}

TEST(HeadMotionModelDeath, NonPositiveDtPanics)
{
    HeadMotionModel m(HeadModelConfig{}, Rng(1));
    EXPECT_DEATH(m.step(0.0), "non-positive dt");
}

}  // namespace
}  // namespace qvr::motion
