/**
 * @file
 * The paper's headline quantitative *shapes* (Section 6), with
 * generous tolerance: our substrate is a calibrated model, not the
 * authors' testbed, so we pin directions and rough magnitudes.
 */

#include <gtest/gtest.h>

#include "core/qvr_system.hpp"

namespace qvr::core
{
namespace
{

std::vector<PipelineResult>
runAll(DesignPoint d, std::size_t frames = 200)
{
    std::vector<PipelineResult> out;
    for (const auto &b : scene::table3Benchmarks()) {
        ExperimentSpec spec;
        spec.benchmark = b.name;
        spec.numFrames = frames;
        out.push_back(runExperiment(d, spec));
    }
    return out;
}

TEST(PaperShapes, QvrSpeedupOverLocalBaseline)
{
    // Paper: 3.4x mean (up to 6.7x) end-to-end speedup over Local.
    const auto base = runAll(DesignPoint::Local);
    const auto qvr = runAll(DesignPoint::Qvr);
    const double mean = meanSpeedup(base, qvr);
    EXPECT_GT(mean, 2.0);
    EXPECT_LT(mean, 6.0);

    double best = 0.0;
    for (std::size_t i = 0; i < base.size(); i++)
        best = std::max(best, base[i].meanMtp() / qvr[i].meanMtp());
    EXPECT_GT(best, 3.0);   // some benchmark gains a lot more
}

TEST(PaperShapes, FfrSpeedupOverBaseline)
{
    // Paper: FFR ~1.75x mean over Baseline.
    const auto base = runAll(DesignPoint::Local);
    const auto ffr = runAll(DesignPoint::Ffr);
    const double mean = meanSpeedup(base, ffr);
    EXPECT_GT(mean, 1.2);
    EXPECT_LT(mean, 4.0);
}

TEST(PaperShapes, QvrFpsGainOverStatic)
{
    // Paper: 4.1x frame-rate improvement over Static.
    const auto st = runAll(DesignPoint::Static);
    const auto qvr = runAll(DesignPoint::Qvr);
    double ratio = 0.0;
    for (std::size_t i = 0; i < st.size(); i++)
        ratio += qvr[i].meanFps() / st[i].meanFps();
    ratio /= static_cast<double>(st.size());
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 7.0);
}

TEST(PaperShapes, QvrFpsGainOverSoftware)
{
    // Paper: 2.8x FPS over the pure software implementation.
    const auto sw = runAll(DesignPoint::SwQvr);
    const auto qvr = runAll(DesignPoint::Qvr);
    double ratio = 0.0;
    for (std::size_t i = 0; i < sw.size(); i++)
        ratio += qvr[i].meanFps() / sw[i].meanFps();
    ratio /= static_cast<double>(sw.size());
    EXPECT_GT(ratio, 1.0);
}

TEST(PaperShapes, TransmittedDataReductionVsRemote)
{
    // Fig. 13: Q-VR cuts transmitted data by ~85% vs. remote-only
    // (static cuts ~nothing).
    const auto remote = runAll(DesignPoint::Remote, 120);
    const auto qvr = runAll(DesignPoint::Qvr, 120);
    double reduction = 0.0;
    for (std::size_t i = 0; i < remote.size(); i++) {
        reduction += 1.0 - qvr[i].meanTransmittedBytes() /
                               remote[i].meanTransmittedBytes();
    }
    reduction /= static_cast<double>(remote.size());
    EXPECT_GT(reduction, 0.60);
    EXPECT_LT(reduction, 0.99);
}

TEST(PaperShapes, ResolutionReductionModerate)
{
    // Fig. 13: ~41% mean resolution reduction (linear metric), with
    // light benchmarks reduced far less (Doom3-L: ~7%).
    const auto qvr = runAll(DesignPoint::Qvr, 120);
    double reduction = 0.0;
    double d3l_reduction = -1.0;
    for (const auto &r : qvr) {
        const double red = 1.0 - r.meanResolutionFraction();
        reduction += red;
        if (r.benchmark == "Doom3-L")
            d3l_reduction = red;
    }
    reduction /= static_cast<double>(qvr.size());
    EXPECT_GT(reduction, 0.20);
    EXPECT_LT(reduction, 0.65);
    // The lightest workload keeps most of its frame local and
    // reduces resolution the least.
    EXPECT_LT(d3l_reduction, reduction);
}

TEST(PaperShapes, EnergyReductionVsLocal)
{
    // Fig. 15: ~73% mean energy reduction over local-only rendering.
    const auto base = runAll(DesignPoint::Local, 120);
    const auto qvr = runAll(DesignPoint::Qvr, 120);
    double reduction = 0.0;
    for (std::size_t i = 0; i < base.size(); i++)
        reduction += 1.0 - qvr[i].meanEnergy() / base[i].meanEnergy();
    reduction /= static_cast<double>(base.size());
    EXPECT_GT(reduction, 0.35);
    EXPECT_LT(reduction, 0.95);
}

TEST(PaperShapes, Table1StaticLocalLatencyCanExceedBudget)
{
    // Table 1 / Challenge I: static collaboration's local rendering
    // of interactive objects can blow the 11 ms budget on its own.
    ExperimentSpec spec;
    spec.benchmark = "Foveated3D";
    spec.numFrames = 300;
    const PipelineResult r = runExperiment(DesignPoint::Static, spec);
    double max_local = 0.0;
    for (const auto &f : r.frames)
        max_local = std::max(max_local, f.tLocalRender);
    EXPECT_GT(max_local, vr_requirements::kFrameBudget);
}

}  // namespace
}  // namespace qvr::core
