/**
 * @file
 * Failure injection: packet loss, bandwidth collapse, hard outages —
 * and the UCA reprojection fallback that keeps frames flowing.
 */

#include <gtest/gtest.h>

#include "core/pipeline_foveated.hpp"
#include "core/qvr_system.hpp"

namespace qvr::core
{
namespace
{

ExperimentSpec
spec(std::size_t frames = 200)
{
    ExperimentSpec s;
    s.benchmark = "HL2-H";
    s.numFrames = frames;
    return s;
}

TEST(FailureInjection, PacketLossDegradesGracefully)
{
    const auto workload = generateExperimentWorkload(spec());

    FoveatedPipeline clean(spec().toConfig(), FoveatedPolicy::qvr());
    const PipelineResult base = clean.run(workload);

    auto lossy_cfg = spec().toConfig();
    lossy_cfg.channelConfig.packetLoss = 0.05;
    FoveatedPipeline lossy(lossy_cfg, FoveatedPolicy::qvr());
    const PipelineResult hit = lossy.run(workload);

    // Loss costs latency but the controller re-balances: still
    // functional, no collapse.
    EXPECT_GT(hit.meanMtp(), base.meanMtp());
    EXPECT_LT(hit.meanMtp(), base.meanMtp() * 2.0);
    EXPECT_GT(hit.meanFps(), 45.0);
    // The controller pushes work local to compensate.
    EXPECT_GT(hit.meanE1(), base.meanE1() * 0.95);
}

TEST(FailureInjection, BandwidthCollapseRebalancesE1)
{
    const auto workload = generateExperimentWorkload(spec(400));
    FoveatedPipeline qvr(spec(400).toConfig(), FoveatedPolicy::qvr());

    double e1_before = 0.0, e1_after = 0.0;
    std::size_t n_before = 0, n_after = 0;
    for (const auto &frame : workload) {
        if (frame.index == 200)
            qvr.channel().setNominalDownlink(fromMbps(40.0));
        const FrameStats s = qvr.step(frame);
        if (frame.index >= 100 && frame.index < 200) {
            e1_before += s.e1;
            n_before++;
        }
        if (frame.index >= 300) {
            e1_after += s.e1;
            n_after++;
        }
    }
    e1_before /= static_cast<double>(n_before);
    e1_after /= static_cast<double>(n_after);
    // Slow link -> remote path costlier -> bigger local fovea.
    EXPECT_GT(e1_after, e1_before + 3.0);
}

TEST(FailureInjection, OutageTriggersReprojectionFallback)
{
    const auto workload = generateExperimentWorkload(spec());
    FoveatedPipeline qvr(spec().toConfig(), FoveatedPolicy::qvr());

    std::size_t reprojected = 0;
    double worst_interval = 0.0;
    for (const auto &frame : workload) {
        if (frame.index == 100)
            qvr.channel().injectOutage(0.200);  // 200 ms blackout
        const FrameStats s = qvr.step(frame);
        if (s.reprojected) {
            reprojected++;
            EXPECT_GT(s.reprojectionErrorDeg, 0.0);
        }
        if (frame.index > 50)
            worst_interval = std::max(worst_interval,
                                      s.frameInterval);
    }
    EXPECT_EQ(qvr.reprojectedFrames(), reprojected);
    EXPECT_GE(reprojected, 1u);
    // The fallback fills in frames: display cadence never stalls for
    // the whole 200 ms outage.
    EXPECT_LT(worst_interval, 0.15);
}

TEST(FailureInjection, WithoutFallbackOutageStallsDisplay)
{
    const auto workload = generateExperimentWorkload(spec());
    FoveatedPolicy no_fallback = FoveatedPolicy::qvr();
    no_fallback.reprojectionDeadline = 0.0;
    FoveatedPipeline qvr(spec().toConfig(), no_fallback);

    double worst_interval = 0.0;
    for (const auto &frame : workload) {
        if (frame.index == 100)
            qvr.channel().injectOutage(0.200);
        const FrameStats s = qvr.step(frame);
        EXPECT_FALSE(s.reprojected);
        if (frame.index > 50)
            worst_interval = std::max(worst_interval,
                                      s.frameInterval);
    }
    // The stalled transfer shows up as a display gap.
    EXPECT_GT(worst_interval, 0.15);
}

TEST(FailureInjection, ReprojectionErrorAccumulatesWhileStale)
{
    const auto workload = generateExperimentWorkload(spec());
    FoveatedPipeline qvr(spec().toConfig(), FoveatedPolicy::qvr());

    double prev_error = 0.0;
    bool in_stale_run = false;
    bool saw_accumulation = false;
    for (const auto &frame : workload) {
        if (frame.index == 100)
            qvr.channel().injectOutage(0.300);
        const FrameStats s = qvr.step(frame);
        if (s.reprojected) {
            if (in_stale_run && s.reprojectionErrorDeg > prev_error)
                saw_accumulation = true;
            prev_error = s.reprojectionErrorDeg;
            in_stale_run = true;
        } else {
            in_stale_run = false;
            prev_error = 0.0;
        }
    }
    EXPECT_TRUE(saw_accumulation);
}

TEST(FailureInjection, RecoveryAfterOutageIsClean)
{
    const auto workload = generateExperimentWorkload(spec(300));
    FoveatedPipeline qvr(spec(300).toConfig(), FoveatedPolicy::qvr());

    std::size_t late_reprojections = 0;
    for (const auto &frame : workload) {
        if (frame.index == 100)
            qvr.channel().injectOutage(0.100);
        const FrameStats s = qvr.step(frame);
        if (frame.index > 200 && s.reprojected)
            late_reprojections++;
    }
    EXPECT_EQ(late_reprojections, 0u);
}

}  // namespace
}  // namespace qvr::core
