/**
 * @file
 * Adaptive periphery-quality (ABR) controller: stability on good
 * links, pressure response, recovery, and interplay with LIWC.
 */

#include <gtest/gtest.h>

#include "core/pipeline_foveated.hpp"
#include "core/qvr_system.hpp"

namespace qvr::core
{
namespace
{

FoveatedPolicy
abrPolicy()
{
    FoveatedPolicy p = FoveatedPolicy::qvr();
    p.adaptiveQuality = true;
    return p;
}

ExperimentSpec
spec(std::size_t frames = 250)
{
    ExperimentSpec s;
    s.benchmark = "HL2-H";
    s.numFrames = frames;
    return s;
}

double
meanQuality(const PipelineResult &r, std::size_t from)
{
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = from; i < r.frames.size(); i++) {
        sum += r.frames[i].peripheryQuality;
        n++;
    }
    return sum / static_cast<double>(n);
}

TEST(AdaptiveQuality, StaysNominalOnHealthyLink)
{
    FoveatedPipeline p(spec().toConfig(), abrPolicy());
    const auto r = p.run(generateExperimentWorkload(spec()));
    // Wi-Fi has headroom at the balanced point: no quality sacrifice.
    EXPECT_GT(meanQuality(r, 50), 0.95);
}

TEST(AdaptiveQuality, DropsUnderSustainedPressure)
{
    auto cfg = spec().toConfig();
    cfg.channelConfig.nominalDownlink = fromMbps(50.0);
    FoveatedPipeline p(cfg, abrPolicy());
    const auto r = p.run(generateExperimentWorkload(spec()));
    EXPECT_LT(meanQuality(r, 100), 0.95);
    // Floor respected.
    for (const auto &f : r.frames)
        EXPECT_GE(f.peripheryQuality, 0.6 - 1e-9);
}

TEST(AdaptiveQuality, ImprovesLatencyOnSlowLink)
{
    auto cfg = spec().toConfig();
    cfg.channelConfig.nominalDownlink = fromMbps(50.0);
    const auto workload = generateExperimentWorkload(spec());

    FoveatedPipeline plain(cfg, FoveatedPolicy::qvr());
    const auto base = plain.run(workload);
    FoveatedPipeline abr(cfg, abrPolicy());
    const auto helped = abr.run(workload);

    EXPECT_LT(helped.meanMtp(), base.meanMtp());
    EXPECT_LT(helped.meanTransmittedBytes(),
              base.meanTransmittedBytes());
}

TEST(AdaptiveQuality, RecoversAfterDegradation)
{
    const auto workload = generateExperimentWorkload(spec(500));
    FoveatedPipeline p(spec(500).toConfig(), abrPolicy());

    double during = 0.0, after = 0.0;
    std::size_t n_during = 0, n_after = 0;
    for (const auto &frame : workload) {
        if (frame.index == 150)
            p.channel().setNominalDownlink(fromMbps(40.0));
        if (frame.index == 300)
            p.channel().setNominalDownlink(fromMbps(200.0));
        const FrameStats s = p.step(frame);
        if (frame.index >= 220 && frame.index < 300) {
            during += s.peripheryQuality;
            n_during++;
        }
        if (frame.index >= 440) {
            after += s.peripheryQuality;
            n_after++;
        }
    }
    during /= static_cast<double>(n_during);
    after /= static_cast<double>(n_after);
    EXPECT_LT(during, 0.97);
    EXPECT_GT(after, during + 0.02);
}

TEST(AdaptiveQuality, DefaultOffKeepsReproductionPure)
{
    // Q-VR's canonical policy must not silently enable ABR: the
    // paper-reproduction numbers assume nominal periphery bitrate.
    const FoveatedPolicy canonical = FoveatedPolicy::qvr();
    EXPECT_FALSE(canonical.adaptiveQuality);
    FoveatedPipeline p(spec().toConfig(), canonical);
    const auto r = p.run(generateExperimentWorkload(spec(60)));
    for (const auto &f : r.frames)
        EXPECT_DOUBLE_EQ(f.peripheryQuality, 1.0);
}

}  // namespace
}  // namespace qvr::core
