/**
 * @file
 * The resilience suite through the parallel experiment runner:
 * every fault scenario x {Q-VR, Q-VR-R} cell must be byte-identical
 * at 1, 2 and 8 worker threads — fault injection and the degradation
 * controller add no nondeterminism.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/qvr_system.hpp"
#include "fault/schedule.hpp"
#include "sim/parallel.hpp"

namespace qvr
{
namespace
{

/** Hexfloat leaves no rounding: equal strings mean equal bits. */
std::string
digest(const core::PipelineResult &r)
{
    std::ostringstream os;
    os << std::hexfloat;
    for (const auto &f : r.frames) {
        os << f.mtpLatency << ';' << f.displayTime << ';'
           << f.frameInterval << ';' << f.transmittedBytes << ';'
           << f.e1 << ';' << f.reprojected << ';'
           << f.degradationLevel << ';' << f.localFallback << ';'
           << f.linkRetries << ';' << f.lostLayers << ';'
           << f.linkStall << '\n';
    }
    return os.str();
}

TEST(ResilienceDeterminism, SuiteIsBitExactAcrossThreadCounts)
{
    constexpr std::size_t kFrames = 120;
    constexpr Seconds kHorizon = 1.3;  // inside the 120-frame run

    struct Cell
    {
        std::string scenario;
        core::DesignPoint design;
        fault::FaultSchedule schedule;
    };
    std::vector<Cell> cells;
    for (const auto &sc : fault::standardSuite(7, kHorizon))
        for (const auto d :
             {core::DesignPoint::Qvr, core::DesignPoint::Resilient})
            cells.push_back({sc.name, d, sc.schedule});

    auto runCell = [&](std::size_t i) {
        core::ExperimentSpec spec;
        spec.benchmark = "Doom3-H";
        spec.numFrames = kFrames;
        spec.seed = 7;
        spec.faults = cells[i].schedule;
        return core::runExperiment(cells[i].design, spec);
    };

    std::vector<std::vector<std::string>> digests;
    for (const std::size_t jobs : {1u, 2u, 8u}) {
        const auto results =
            sim::runParallel(cells.size(), runCell, jobs);
        std::vector<std::string> d;
        for (const auto &r : results)
            d.push_back(digest(r));
        digests.push_back(std::move(d));
    }

    for (std::size_t j = 1; j < digests.size(); j++) {
        for (std::size_t i = 0; i < cells.size(); i++) {
            SCOPED_TRACE(cells[i].scenario + " / " +
                         core::designName(cells[i].design));
            EXPECT_EQ(digests[0][i], digests[j][i]);
        }
    }

    // Sanity: the faulted Q-VR-R cells actually exercised the
    // degradation machinery (otherwise this test proves nothing).
    const auto serial = sim::runParallel(cells.size(), runCell, 1);
    std::uint64_t degraded = 0;
    for (std::size_t i = 0; i < cells.size(); i++) {
        if (cells[i].design == core::DesignPoint::Resilient &&
            !cells[i].schedule.empty())
            degraded += serial[i].faultCounters().degradedFrames;
    }
    EXPECT_GT(degraded, 0u);
}

TEST(ResilienceDeterminism, RepeatedRunsAreBitExact)
{
    core::ExperimentSpec spec;
    spec.benchmark = "Doom3-H";
    spec.numFrames = 150;
    spec.seed = 11;
    spec.faults = fault::makeWorstCaseSchedule(0.5);

    const auto a =
        core::runExperiment(core::DesignPoint::Resilient, spec);
    const auto b =
        core::runExperiment(core::DesignPoint::Resilient, spec);
    EXPECT_EQ(digest(a), digest(b));
}

}  // namespace
}  // namespace qvr
