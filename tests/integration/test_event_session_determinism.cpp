/**
 * @file
 * Determinism gate for the event-driven session engine: a downscaled
 * replica of `bench_fleet_capacity --large`'s sweep cell must produce
 * byte-identical results when the cell grid is fanned out on 1, 2 and
 * 8 sim::runParallel worker threads.  Joins the `ctest -L tsan`
 * concurrency suite, so with -DQVR_SANITIZE=thread the fan-out is
 * also vetted for data races.
 *
 * Each session is single-threaded by design (one EventQueue per
 * experiment); parallelism only places whole cells on workers, so
 * bit-exactness is the proof that no shared mutable state leaks
 * between cells.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "collab/session.hpp"
#include "sim/parallel.hpp"

namespace qvr::collab
{
namespace
{

/** The --large sweep cell, downscaled: EDF + admission on one shard,
 *  streaming workloads, aggregate telemetry. */
SessionConfig
largeCell(std::size_t users, std::uint64_t seed)
{
    SessionConfig cfg;
    cfg.design = SessionDesign::Served;
    cfg.engine = SessionEngine::Event;
    cfg.aggregateTelemetry = true;
    cfg.benchmark = "HL2-H";
    cfg.users = users;
    cfg.numFrames = 40;
    cfg.totalChiplets = 4;
    cfg.chipletsPerRequest = 2;
    cfg.serverEgress = fromMbps(2000.0);
    cfg.serving.scheduler.policy = serve::SchedulerPolicy::Edf;
    cfg.serving.admission.enabled = true;
    cfg.seed = seed;
    return cfg;
}

/** Byte-faithful digest (hexfloat: no rounding). */
std::string
digest(const SessionResult &r)
{
    const SessionAggregate &a = r.aggregate;
    std::ostringstream os;
    os << std::hexfloat << a.users << ';' << a.framesPerUser << ';'
       << a.meanFps << ';' << a.worstUserFps << ';' << a.meanMtp
       << ';' << a.fpsCompliance << ';' << a.bytesPerFrame << ';'
       << a.p50QueueWait << ';' << a.p99QueueWait << ';'
       << a.deadlineMissRate << ';' << a.shedFrames << ';'
       << a.downgradedFrames << ';' << r.serveCounters.submitted
       << ';' << r.serveCounters.admitted << ';'
       << r.serveCounters.shed << ';' << r.serveCounters.downgraded
       << ';' << r.serveCounters.deadlineMisses << ';'
       << r.egressUtilisation << ';' << r.serverUtilisation;
    for (const double u : r.shardUtilisation)
        os << ';' << u;
    return os.str();
}

TEST(EventSessionDeterminism, SweepBytesIdenticalAt128Workers)
{
    // A small user-count sweep, like the --large capacity cell runs
    // (each grid point is one independent event-driven session).
    const std::vector<std::size_t> grid = {1, 2, 4, 8, 12};

    const auto sweep = [&grid](std::size_t threads) {
        return sim::runParallel(
            grid.size(),
            [&grid](std::size_t i) {
                return digest(
                    runSession(largeCell(grid[i], 1 + i)));
            },
            threads);
    };

    const std::vector<std::string> baseline = sweep(1);
    for (const std::size_t threads : {2u, 8u}) {
        const std::vector<std::string> rerun = sweep(threads);
        ASSERT_EQ(baseline.size(), rerun.size());
        for (std::size_t i = 0; i < grid.size(); i++) {
            EXPECT_EQ(baseline[i], rerun[i])
                << grid[i] << " users not byte-identical at "
                << threads << " workers";
        }
    }
}

TEST(EventSessionDeterminism, RepeatedRunsBytesIdentical)
{
    const SessionConfig cfg = largeCell(6, 3);
    const std::string first = digest(runSession(cfg));
    for (int rep = 0; rep < 3; rep++)
        EXPECT_EQ(first, digest(runSession(cfg))) << "rep " << rep;
}

}  // namespace
}  // namespace qvr::collab
