/**
 * @file
 * Fig. 14 behaviour: starting from e1 = 5, Q-VR's latency ratio
 * T_remote/T_local starts high, converges toward balance, and the
 * controller adapts across environments.
 */

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/qvr_system.hpp"

namespace qvr::core
{
namespace
{

PipelineResult
runQvr(const std::string &bench, net::ChannelConfig channel,
       double freq_scale = 1.0, std::size_t frames = 300)
{
    ExperimentSpec spec;
    spec.benchmark = bench;
    spec.channel = channel;
    spec.gpuFrequencyScale = freq_scale;
    spec.numFrames = frames;
    return runExperiment(DesignPoint::Qvr, spec);
}

double
latencyRatio(const FrameStats &f)
{
    if (f.tLocalRender <= 0.0)
        return 0.0;
    return f.tRemoteBranch / f.tLocalRender;
}

TEST(Convergence, RatioStartsHighAndSettles)
{
    const PipelineResult r =
        runQvr("HL2-H", net::ChannelConfig::wifi());
    ASSERT_GE(r.frames.size(), 300u);

    // First frames: small fovea renders fast locally while the
    // remote path dominates -> ratio well above 1.
    RunningStat early, late;
    for (std::size_t i = 0; i < 10; i++)
        early.add(latencyRatio(r.frames[i]));
    for (std::size_t i = 200; i < 300; i++)
        late.add(latencyRatio(r.frames[i]));

    EXPECT_GT(early.mean(), 2.0);
    EXPECT_LT(late.mean(), early.mean() / 1.5);
    // Settled near balance (the remote branch carries fixed
    // overheads, so "balanced" sits within a small band, not at 1).
    EXPECT_GT(late.mean(), 0.4);
    EXPECT_LT(late.mean(), 3.5);
}

TEST(Convergence, EccentricityGrowsFromInitialValue)
{
    const PipelineResult r =
        runQvr("Doom3-H", net::ChannelConfig::wifi());
    EXPECT_NEAR(r.frames.front().e1, 5.0, 5.0 + 1e-9);
    RunningStat settled;
    for (std::size_t i = 150; i < r.frames.size(); i++)
        settled.add(r.frames[i].e1);
    EXPECT_GT(settled.mean(), 10.0);
}

TEST(Convergence, SteadyStateIsStable)
{
    const PipelineResult r =
        runQvr("UT3", net::ChannelConfig::wifi());
    RunningStat e1;
    for (std::size_t i = 150; i < r.frames.size(); i++)
        e1.add(r.frames[i].e1);
    // e1 keeps adapting to scene/motion but stays in a band rather
    // than oscillating wall to wall.
    EXPECT_LT(e1.stddev(), 0.5 * e1.mean());
}

TEST(Convergence, FasterNetworkShrinksFovea)
{
    // Table 4 column shape: early 5G gives smaller e1 than 4G LTE on
    // the same benchmark/frequency (faster remote path -> offload
    // more).
    const double e1_lte =
        runQvr("HL2-H", net::ChannelConfig::lte4g()).meanE1();
    const double e1_5g =
        runQvr("HL2-H", net::ChannelConfig::early5g()).meanE1();
    EXPECT_LT(e1_5g, e1_lte);
}

TEST(Convergence, SlowerGpuShrinksFovea)
{
    // Table 4 row shape: at 300 MHz the SoC affords a smaller fovea
    // than at 500 MHz.
    const double e1_full =
        runQvr("HL2-H", net::ChannelConfig::wifi(), 1.0).meanE1();
    const double e1_slow =
        runQvr("HL2-H", net::ChannelConfig::wifi(), 0.6).meanE1();
    EXPECT_LT(e1_slow, e1_full);
}

TEST(Convergence, HeavierSceneShrinksFovea)
{
    // Table 4 row shape: GRID (heaviest) runs a smaller fovea than
    // Doom3-L (lightest) under identical environments.
    const double e1_grid =
        runQvr("GRID", net::ChannelConfig::wifi()).meanE1();
    const double e1_d3l =
        runQvr("Doom3-L", net::ChannelConfig::wifi()).meanE1();
    EXPECT_LT(e1_grid, e1_d3l);
}

TEST(Convergence, SwQvrConvergesSlowerThanLiwc)
{
    // The software controller sees stale measurements and pays CPU
    // overhead: its early latency ratios stay unbalanced longer.
    ExperimentSpec spec;
    spec.benchmark = "HL2-H";
    spec.numFrames = 60;
    const PipelineResult hw = runExperiment(DesignPoint::Qvr, spec);
    const PipelineResult sw = runExperiment(DesignPoint::SwQvr, spec);

    auto settle_frame = [](const PipelineResult &r) {
        for (std::size_t i = 0; i < r.frames.size(); i++) {
            if (latencyRatio(r.frames[i]) < 2.0)
                return i;
        }
        return r.frames.size();
    };
    EXPECT_LE(settle_frame(hw), settle_frame(sw));
}

}  // namespace
}  // namespace qvr::core
