/**
 * @file
 * Cross-design integration: every design point runs every Table-3
 * benchmark and the qualitative ordering of Section 6 holds.
 */

#include <gtest/gtest.h>

#include "core/qvr_system.hpp"

namespace qvr::core
{
namespace
{

PipelineResult
runCell(DesignPoint d, const std::string &bench, std::size_t frames = 150)
{
    ExperimentSpec spec;
    spec.benchmark = bench;
    spec.numFrames = frames;
    return runExperiment(d, spec);
}

class DesignsOnBenchmark
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DesignsOnBenchmark, AllDesignsProduceValidFrames)
{
    const std::string bench = GetParam();
    for (DesignPoint d : {DesignPoint::Local, DesignPoint::Remote,
                          DesignPoint::Static, DesignPoint::Ffr,
                          DesignPoint::Dfr, DesignPoint::SwQvr,
                          DesignPoint::Qvr}) {
        const PipelineResult r = runCell(d, bench, 80);
        ASSERT_EQ(r.frames.size(), 80u) << designName(d);
        for (const auto &f : r.frames) {
            EXPECT_GT(f.mtpLatency, 0.0) << designName(d);
            EXPECT_LT(f.mtpLatency, 1.0) << designName(d);
            EXPECT_GE(f.energy.total(), 0.0) << designName(d);
        }
        EXPECT_GT(r.meanFps(), 5.0) << designName(d);
        EXPECT_LE(r.meanFps(), 500.0) << designName(d);
    }
}

TEST_P(DesignsOnBenchmark, QvrBeatsLocalBaseline)
{
    const std::string bench = GetParam();
    const double base = runCell(DesignPoint::Local, bench).meanMtp();
    const double qvr = runCell(DesignPoint::Qvr, bench).meanMtp();
    EXPECT_LT(qvr, base) << bench;
}

TEST_P(DesignsOnBenchmark, QvrMeetsFrameRate)
{
    // Fig. 14(b): Q-VR sustains ~90 Hz on every benchmark under the
    // default Wi-Fi / 500 MHz environment.
    const PipelineResult r = runCell(DesignPoint::Qvr, GetParam());
    EXPECT_GT(r.meanFps(), 80.0);
}

TEST_P(DesignsOnBenchmark, QvrTransmitsLessThanStatic)
{
    const std::string bench = GetParam();
    const double st =
        runCell(DesignPoint::Static, bench).meanTransmittedBytes();
    const double qvr =
        runCell(DesignPoint::Qvr, bench).meanTransmittedBytes();
    EXPECT_LT(qvr, st * 0.5) << bench;
}

INSTANTIATE_TEST_SUITE_P(
    Table3, DesignsOnBenchmark,
    ::testing::Values("Doom3-H", "Doom3-L", "HL2-H", "HL2-L", "GRID",
                      "UT3", "Wolf"),
    [](const ::testing::TestParamInfo<const char *> &param_info) {
        std::string name = param_info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(DesignOrdering, FoveatedDesignsImproveProgressively)
{
    // Fig. 12's qualitative ordering on a heavy benchmark:
    // Local slowest; FFR well ahead of Local; DFR >= FFR; Q-VR best.
    const std::string bench = "GRID";
    const double local = runCell(DesignPoint::Local, bench).meanMtp();
    const double ffr = runCell(DesignPoint::Ffr, bench).meanMtp();
    const double dfr = runCell(DesignPoint::Dfr, bench).meanMtp();
    const double qvr = runCell(DesignPoint::Qvr, bench).meanMtp();

    EXPECT_LT(ffr, local / 1.4);
    EXPECT_LT(dfr, ffr * 1.1);   // DFR ~1.1x over FFR
    EXPECT_LT(qvr, dfr * 1.02);  // UCA adds on top
}

TEST(DesignOrdering, QvrFpsBeatsSoftwareImplementation)
{
    // Fig. 12's FPS comparison: hardware co-design beats the pure
    // software Q-VR.
    const std::string bench = "Wolf";
    const double sw = runCell(DesignPoint::SwQvr, bench).meanFps();
    const double hw = runCell(DesignPoint::Qvr, bench).meanFps();
    EXPECT_GT(hw, sw);
}

}  // namespace
}  // namespace qvr::core
