/**
 * @file
 * Determinism gate for open-loop (arrival-driven) sessions: a
 * balancer x shard-count grid of MMPP flash-crowd cells — with
 * mid-sweep autoscaling and roaming — must replay byte-identical
 * when fanned out on 1, 2 and 8 sim::runParallel worker threads.
 * Joins the `ctest -L tsan` concurrency suite, so with
 * -DQVR_SANITIZE=thread the fan-out is also vetted for data races.
 *
 * Also the functional smoke for the open-loop lifecycle: every
 * arrival must eventually depart (connect -> active -> disconnect),
 * the population accounting must be self-consistent, and scale
 * events must actually retire drained shards.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "collab/session.hpp"
#include "sim/parallel.hpp"

namespace qvr::collab
{
namespace
{

/** One open-loop cell: MMPP flash crowd, heterogeneous scene mix,
 *  roaming users, and a mid-sweep scale-out. */
SessionConfig
openLoopCell(std::uint32_t shards, serve::BalancerPolicy policy,
             std::uint64_t seed)
{
    SessionConfig cfg;
    cfg.design = SessionDesign::Served;
    cfg.engine = SessionEngine::Event;
    cfg.aggregateTelemetry = true;
    cfg.benchmark = "HL2-H";
    cfg.users = 1;  // ignored: open loop sizes the population
    cfg.numFrames = 1;
    cfg.totalChiplets = 4 * shards;
    cfg.chipletsPerRequest = 2;
    cfg.serverEgress = fromMbps(2000.0);
    cfg.serving.shards = shards;
    cfg.serving.balancer.policy = policy;
    cfg.serving.scheduler.policy = serve::SchedulerPolicy::Edf;
    cfg.serving.admission.enabled = true;
    cfg.seed = seed;

    cfg.openLoop.enabled = true;
    cfg.openLoop.horizon = 4.0;
    core::ArrivalConfig &a = cfg.openLoop.arrivals;
    a.kind = core::ArrivalKind::Mmpp;
    a.states = {{6.0, 1.0}, {30.0, 0.25}};  // calm vs flash crowd
    a.minFrames = 8;
    a.maxFrames = 24;
    a.roamRate = 0.5;
    a.mix = {{"HL2-H", 2.0}, {"Doom3-H", 1.0}, {"Viking", 1.0}};
    a.seed = seed;
    cfg.openLoop.scaleEvents = {{1.5, shards + 1},
                                {3.0, shards}};
    return cfg;
}

/** Byte-faithful digest (hexfloat: no rounding). */
std::string
digest(const SessionResult &r)
{
    const SessionAggregate &a = r.aggregate;
    std::ostringstream os;
    os << std::hexfloat << a.users << ';' << a.meanFps << ';'
       << a.worstUserFps << ';' << a.meanMtp << ';'
       << a.fpsCompliance << ';' << a.bytesPerFrame << ';'
       << a.p50QueueWait << ';' << a.p99QueueWait << ';'
       << a.deadlineMissRate << ';' << a.shedFrames << ';'
       << a.downgradedFrames << ';' << r.openLoop.arrivals << ';'
       << r.openLoop.departures << ';' << r.openLoop.roams << ';'
       << r.openLoop.meanActiveUsers << ';'
       << r.openLoop.peakActiveUsers << ';'
       << r.serveCounters.submitted << ';'
       << r.serveCounters.admitted << ';' << r.serveCounters.shed
       << ';' << r.serveCounters.downgraded << ';'
       << r.serveCounters.deadlineMisses << ';'
       << r.serveCounters.scaleEvents << ';'
       << r.serveCounters.retiredShards;
    for (const double u : r.shardUtilisation)
        os << ';' << u;
    return os.str();
}

struct Cell
{
    std::uint32_t shards;
    serve::BalancerPolicy policy;
};

const std::vector<Cell> kGrid = {
    {1, serve::BalancerPolicy::JoinShortestQueue},
    {2, serve::BalancerPolicy::HashUser},
    {2, serve::BalancerPolicy::BoundedLoadConsistentHash},
    {4, serve::BalancerPolicy::PowerOfTwoChoices},
    {4, serve::BalancerPolicy::HashUserUnbounded},
};

TEST(OpenLoopDeterminism, SweepBytesIdenticalAcrossWorkers)
{
    const auto sweep = [](std::size_t threads) {
        return sim::runParallel(
            kGrid.size(),
            [](std::size_t i) {
                return digest(runSession(openLoopCell(
                    kGrid[i].shards, kGrid[i].policy, 11 + i)));
            },
            threads);
    };

    const std::vector<std::string> baseline = sweep(1);
    for (const std::size_t threads : {2u, 8u}) {
        const std::vector<std::string> rerun = sweep(threads);
        ASSERT_EQ(baseline.size(), rerun.size());
        for (std::size_t i = 0; i < kGrid.size(); i++) {
            EXPECT_EQ(baseline[i], rerun[i])
                << "cell " << i << " not byte-identical at "
                << threads << " workers";
        }
    }
}

TEST(OpenLoopDeterminism, RepeatedRunsBytesIdentical)
{
    const SessionConfig cfg = openLoopCell(
        2, serve::BalancerPolicy::BoundedLoadConsistentHash, 7);
    const std::string first = digest(runSession(cfg));
    for (int rep = 0; rep < 3; rep++)
        EXPECT_EQ(first, digest(runSession(cfg))) << "rep " << rep;
}

TEST(OpenLoopLifecycle, EveryArrivalDeparts)
{
    const SessionResult r = runSession(openLoopCell(
        2, serve::BalancerPolicy::BoundedLoadConsistentHash, 3));
    ASSERT_TRUE(r.openLoop.enabled);
    EXPECT_GT(r.openLoop.arrivals, 0u);
    EXPECT_EQ(r.openLoop.departures, r.openLoop.arrivals);
    EXPECT_GE(r.openLoop.peakActiveUsers, 1u);
    EXPECT_GT(r.openLoop.meanActiveUsers, 0.0);
    EXPECT_LE(r.openLoop.meanActiveUsers,
              static_cast<double>(r.openLoop.peakActiveUsers));
    EXPECT_GT(r.openLoop.roams, 0u);
    // Telemetry covers the dynamic population.
    EXPECT_EQ(r.aggregate.users, r.openLoop.arrivals);
}

TEST(OpenLoopLifecycle, ScaleEventsRetireDrainedShards)
{
    const SessionResult r = runSession(openLoopCell(
        2, serve::BalancerPolicy::JoinShortestQueue, 5));
    // One grow (2 -> 3) and one shrink (3 -> 2): both must register,
    // and the shrink must eventually retire the drained shard.
    EXPECT_EQ(r.serveCounters.scaleEvents, 2u);
    EXPECT_EQ(r.serveCounters.retiredShards, 1u);
    // Utilisation telemetry spans every shard ever created.
    EXPECT_EQ(r.shardUtilisation.size(), 3u);
}

TEST(OpenLoopLifecycle, HigherArrivalRateServesMoreUsers)
{
    SessionConfig lo = openLoopCell(
        2, serve::BalancerPolicy::JoinShortestQueue, 9);
    lo.openLoop.arrivals.kind = core::ArrivalKind::Poisson;
    lo.openLoop.arrivals.rate = 4.0;
    lo.openLoop.arrivals.states.clear();
    SessionConfig hi = lo;
    hi.openLoop.arrivals.rate = 16.0;
    const SessionResult rlo = runSession(lo);
    const SessionResult rhi = runSession(hi);
    EXPECT_GT(rhi.openLoop.arrivals, rlo.openLoop.arrivals);
    EXPECT_GT(rhi.openLoop.meanActiveUsers,
              rlo.openLoop.meanActiveUsers);
}

}  // namespace
}  // namespace qvr::collab
