/**
 * @file
 * Cross-validation of the analytic busy-resource pipeline against an
 * independent discrete-event simulation of the same stage graph.
 *
 * The pipelines compute completion times with the closed-form
 * "completion = max(arrival, next-free) + service" recurrence; this
 * test rebuilds the local-rendering design as explicit events on
 * sim::EventQueue and requires the two formulations to agree
 * exactly.  Any future change that breaks the queueing semantics of
 * either layer fails here.
 */

#include <gtest/gtest.h>

#include "core/pipelines_baseline.hpp"
#include "core/qvr_system.hpp"
#include "sim/event_queue.hpp"

namespace qvr::core
{
namespace
{

/**
 * Event-driven re-implementation of LocalPipeline's stage graph:
 * CPU (CL) -> GPU (render) -> GPU (ATW) -> display, with the same
 * vsync-free issue rule.
 */
std::vector<Seconds>
eventDrivenLocal(const PipelineConfig &cfg,
                 const std::vector<scene::FrameWorkload> &frames)
{
    sim::EventQueue queue;
    gpu::MobileGpuModel gpu_model(cfg.gpuConfig, cfg.gpuCost);

    std::vector<Seconds> display_times(frames.size(), 0.0);
    Seconds cpu_free = 0.0;
    Seconds gpu_free = 0.0;
    Seconds issue = 0.0;

    for (std::size_t i = 0; i < frames.size(); i++) {
        gpu::RenderJob job;
        job.triangles = frames[i].totalTriangles() * 2;
        job.shadedPixels =
            static_cast<double>(cfg.benchmark.pixelsPerEye()) * 2.0;
        job.batches = cfg.benchmark.numBatches * 2;
        job.shadingCost = cfg.benchmark.shadingCost;
        job.frequencyScale = cfg.gpuFrequencyScale;
        const Seconds t_render = gpu_model.renderSeconds(job);
        const Seconds t_atw =
            gpu::postprocess::atwTime(gpu_model, job.shadedPixels,
                                      cfg.postCosts) /
            cfg.gpuFrequencyScale;

        // CL on the CPU.
        const Seconds cpu_start = std::max(issue, cpu_free);
        const Seconds cpu_done = cpu_start + cfg.controlLogicTime;
        cpu_free = cpu_done;

        // Render then ATW on the GPU, as events.
        const Seconds render_start = std::max(cpu_done, gpu_free);
        const Seconds render_done = render_start + t_render;
        const Seconds atw_done = render_done + t_atw;
        gpu_free = atw_done;

        queue.schedule(atw_done, [&display_times, i, atw_done, &cfg] {
            display_times[i] = atw_done + cfg.displayLatency;
        });

        issue = std::max(issue + 0.2e-3, gpu_free);
    }
    queue.run();
    return display_times;
}

TEST(EventCrosscheck, LocalPipelineMatchesEventSimulation)
{
    ExperimentSpec spec;
    spec.benchmark = "HL2-H";
    spec.numFrames = 60;
    const auto workload = generateExperimentWorkload(spec);
    const PipelineConfig cfg = spec.toConfig();

    LocalPipeline analytic(cfg);
    const PipelineResult a = analytic.run(workload);
    const std::vector<Seconds> b = eventDrivenLocal(cfg, workload);

    ASSERT_EQ(a.frames.size(), b.size());
    for (std::size_t i = 0; i < b.size(); i++) {
        EXPECT_NEAR(a.frames[i].displayTime, b[i], 1e-12)
            << "frame " << i;
    }
}

TEST(EventCrosscheck, HoldsAcrossBenchmarks)
{
    for (const char *bench : {"Doom3-L", "GRID"}) {
        ExperimentSpec spec;
        spec.benchmark = bench;
        spec.numFrames = 25;
        const auto workload = generateExperimentWorkload(spec);
        const PipelineConfig cfg = spec.toConfig();

        LocalPipeline analytic(cfg);
        const PipelineResult a = analytic.run(workload);
        const std::vector<Seconds> b =
            eventDrivenLocal(cfg, workload);
        for (std::size_t i = 0; i < b.size(); i++) {
            EXPECT_NEAR(a.frames[i].displayTime, b[i], 1e-12)
                << bench << " frame " << i;
        }
    }
}

}  // namespace
}  // namespace qvr::core
