/**
 * @file
 * Cross-validation of the analytic busy-resource pipeline against an
 * independent discrete-event simulation of the same stage graph.
 *
 * The pipelines compute completion times with the closed-form
 * "completion = max(arrival, next-free) + service" recurrence; this
 * test rebuilds the local-rendering design as explicit events on
 * sim::EventQueue and requires the two formulations to agree
 * exactly.  Any future change that breaks the queueing semantics of
 * either layer fails here.
 */

#include <gtest/gtest.h>

#include "collab/session.hpp"
#include "core/pipelines_baseline.hpp"
#include "core/qvr_system.hpp"
#include "sim/event_queue.hpp"

namespace qvr::core
{
namespace
{

/**
 * Event-driven re-implementation of LocalPipeline's stage graph:
 * CPU (CL) -> GPU (render) -> GPU (ATW) -> display, with the same
 * vsync-free issue rule.
 */
std::vector<Seconds>
eventDrivenLocal(const PipelineConfig &cfg,
                 const std::vector<scene::FrameWorkload> &frames)
{
    sim::EventQueue queue;
    gpu::MobileGpuModel gpu_model(cfg.gpuConfig, cfg.gpuCost);

    std::vector<Seconds> display_times(frames.size(), 0.0);
    Seconds cpu_free = 0.0;
    Seconds gpu_free = 0.0;
    Seconds issue = 0.0;

    for (std::size_t i = 0; i < frames.size(); i++) {
        gpu::RenderJob job;
        job.triangles = frames[i].totalTriangles() * 2;
        job.shadedPixels =
            static_cast<double>(cfg.benchmark.pixelsPerEye()) * 2.0;
        job.batches = cfg.benchmark.numBatches * 2;
        job.shadingCost = cfg.benchmark.shadingCost;
        job.frequencyScale = cfg.gpuFrequencyScale;
        const Seconds t_render = gpu_model.renderSeconds(job);
        const Seconds t_atw =
            gpu::postprocess::atwTime(gpu_model, job.shadedPixels,
                                      cfg.postCosts) /
            cfg.gpuFrequencyScale;

        // CL on the CPU.
        const Seconds cpu_start = std::max(issue, cpu_free);
        const Seconds cpu_done = cpu_start + cfg.controlLogicTime;
        cpu_free = cpu_done;

        // Render then ATW on the GPU, as events.
        const Seconds render_start = std::max(cpu_done, gpu_free);
        const Seconds render_done = render_start + t_render;
        const Seconds atw_done = render_done + t_atw;
        gpu_free = atw_done;

        queue.schedule(atw_done, [&display_times, i, atw_done, &cfg] {
            display_times[i] = atw_done + cfg.displayLatency;
        });

        issue = std::max(issue + 0.2e-3, gpu_free);
    }
    queue.run();
    return display_times;
}

TEST(EventCrosscheck, LocalPipelineMatchesEventSimulation)
{
    ExperimentSpec spec;
    spec.benchmark = "HL2-H";
    spec.numFrames = 60;
    const auto workload = generateExperimentWorkload(spec);
    const PipelineConfig cfg = spec.toConfig();

    LocalPipeline analytic(cfg);
    const PipelineResult a = analytic.run(workload);
    const std::vector<Seconds> b = eventDrivenLocal(cfg, workload);

    ASSERT_EQ(a.frames.size(), b.size());
    for (std::size_t i = 0; i < b.size(); i++) {
        EXPECT_NEAR(a.frames[i].displayTime, b[i], 1e-12)
            << "frame " << i;
    }
}

TEST(EventCrosscheck, HoldsAcrossBenchmarks)
{
    for (const char *bench : {"Doom3-L", "GRID"}) {
        ExperimentSpec spec;
        spec.benchmark = bench;
        spec.numFrames = 25;
        const auto workload = generateExperimentWorkload(spec);
        const PipelineConfig cfg = spec.toConfig();

        LocalPipeline analytic(cfg);
        const PipelineResult a = analytic.run(workload);
        const std::vector<Seconds> b =
            eventDrivenLocal(cfg, workload);
        for (std::size_t i = 0; i < b.size(); i++) {
            EXPECT_NEAR(a.frames[i].displayTime, b[i], 1e-12)
                << bench << " frame " << i;
        }
    }
}

/**
 * The second oracle pair: the event-driven served-session engine
 * (collab/event_session.cpp) against the lockstep round loop it
 * replaced for large sweeps.  The contract is bit-exactness — every
 * FrameStats field, every SLO percentile, every fleet counter — not
 * approximate agreement, because the event engine is sold as "the
 * same simulation, differently orchestrated".
 */
class ServedSessionCrosscheck
    : public ::testing::TestWithParam<collab::SessionConfig>
{
};

void
expectResultsIdentical(const collab::SessionResult &a,
                       const collab::SessionResult &b)
{
    ASSERT_EQ(a.perUser.size(), b.perUser.size());
    for (std::size_t u = 0; u < a.perUser.size(); u++) {
        const auto &fa = a.perUser[u].frames;
        const auto &fb = b.perUser[u].frames;
        ASSERT_EQ(fa.size(), fb.size()) << "user " << u;
        for (std::size_t i = 0; i < fa.size(); i++) {
            const core::FrameStats &x = fa[i];
            const core::FrameStats &y = fb[i];
            ASSERT_EQ(x.index, y.index) << "user " << u;
            // EXPECT_EQ on doubles = bitwise-exact agreement.
            ASSERT_EQ(x.displayTime, y.displayTime)
                << "user " << u << " frame " << i;
            ASSERT_EQ(x.mtpLatency, y.mtpLatency)
                << "user " << u << " frame " << i;
            ASSERT_EQ(x.frameInterval, y.frameInterval)
                << "user " << u << " frame " << i;
            ASSERT_EQ(x.e1, y.e1) << "user " << u << " frame " << i;
            ASSERT_EQ(x.e2, y.e2) << "user " << u << " frame " << i;
            ASSERT_EQ(x.tLocalRender, y.tLocalRender)
                << "user " << u << " frame " << i;
            ASSERT_EQ(x.tRemoteRender, y.tRemoteRender)
                << "user " << u << " frame " << i;
            ASSERT_EQ(x.tRemoteBranch, y.tRemoteBranch)
                << "user " << u << " frame " << i;
            ASSERT_EQ(x.tComposition, y.tComposition)
                << "user " << u << " frame " << i;
            ASSERT_EQ(x.tNetwork, y.tNetwork)
                << "user " << u << " frame " << i;
            ASSERT_EQ(x.transmittedBytes, y.transmittedBytes)
                << "user " << u << " frame " << i;
            ASSERT_EQ(x.localTriangles, y.localTriangles)
                << "user " << u << " frame " << i;
            ASSERT_EQ(x.gpuBusy, y.gpuBusy)
                << "user " << u << " frame " << i;
            ASSERT_EQ(x.renderedResolutionFraction,
                      y.renderedResolutionFraction)
                << "user " << u << " frame " << i;
            ASSERT_EQ(x.meetsFrameRate, y.meetsFrameRate)
                << "user " << u << " frame " << i;
            ASSERT_EQ(x.meetsMtp, y.meetsMtp)
                << "user " << u << " frame " << i;
            ASSERT_EQ(x.serveQueueWait, y.serveQueueWait)
                << "user " << u << " frame " << i;
            ASSERT_EQ(x.serveAdmitted, y.serveAdmitted)
                << "user " << u << " frame " << i;
            ASSERT_EQ(x.serveDeadlineMet, y.serveDeadlineMet)
                << "user " << u << " frame " << i;
            ASSERT_EQ(x.degradationLevel, y.degradationLevel)
                << "user " << u << " frame " << i;
            ASSERT_EQ(x.localFallback, y.localFallback)
                << "user " << u << " frame " << i;
            ASSERT_EQ(x.peripheryQuality, y.peripheryQuality)
                << "user " << u << " frame " << i;
        }
    }

    // Per-user SLO telemetry, field for field.
    ASSERT_EQ(a.perUserSlo.size(), b.perUserSlo.size());
    for (std::size_t u = 0; u < a.perUserSlo.size(); u++) {
        ASSERT_EQ(a.perUserSlo[u].p50QueueWait,
                  b.perUserSlo[u].p50QueueWait)
            << "user " << u;
        ASSERT_EQ(a.perUserSlo[u].p99QueueWait,
                  b.perUserSlo[u].p99QueueWait)
            << "user " << u;
        ASSERT_EQ(a.perUserSlo[u].deadlineMissRate,
                  b.perUserSlo[u].deadlineMissRate)
            << "user " << u;
        ASSERT_EQ(a.perUserSlo[u].shedFrames,
                  b.perUserSlo[u].shedFrames)
            << "user " << u;
        ASSERT_EQ(a.perUserSlo[u].downgradedFrames,
                  b.perUserSlo[u].downgradedFrames)
            << "user " << u;
    }

    // Fleet counters and shared-infrastructure utilisations.
    ASSERT_EQ(a.serveCounters.submitted, b.serveCounters.submitted);
    ASSERT_EQ(a.serveCounters.admitted, b.serveCounters.admitted);
    ASSERT_EQ(a.serveCounters.shed, b.serveCounters.shed);
    ASSERT_EQ(a.serveCounters.downgraded, b.serveCounters.downgraded);
    ASSERT_EQ(a.serveCounters.deadlineMisses,
              b.serveCounters.deadlineMisses);
    ASSERT_EQ(a.serveCounters.batches, b.serveCounters.batches);
    ASSERT_EQ(a.serveCounters.batchedRequests,
              b.serveCounters.batchedRequests);
    ASSERT_EQ(a.egressUtilisation, b.egressUtilisation);
    ASSERT_EQ(a.serverUtilisation, b.serverUtilisation);
    ASSERT_EQ(a.shardUtilisation, b.shardUtilisation);
}

TEST_P(ServedSessionCrosscheck, EventEngineMatchesLockstepOracle)
{
    collab::SessionConfig cfg = GetParam();
    cfg.engine = collab::SessionEngine::Lockstep;
    const collab::SessionResult lockstep = collab::runSession(cfg);
    cfg.engine = collab::SessionEngine::Event;
    const collab::SessionResult event = collab::runSession(cfg);
    expectResultsIdentical(lockstep, event);
}

// Aggregate telemetry must equal the numbers the full-telemetry
// accessors compute — bitwise, because the accumulators replicate
// meanOver's warm-up skip and summation order.
TEST_P(ServedSessionCrosscheck, AggregateTelemetryMatchesFull)
{
    collab::SessionConfig cfg = GetParam();
    cfg.engine = collab::SessionEngine::Lockstep;
    const collab::SessionResult full = collab::runSession(cfg);
    cfg.engine = collab::SessionEngine::Event;
    cfg.aggregateTelemetry = true;
    const collab::SessionResult agg = collab::runSession(cfg);

    ASSERT_TRUE(agg.aggregate.enabled);
    EXPECT_TRUE(agg.perUser.empty());
    ASSERT_EQ(agg.aggregate.users, cfg.users);
    EXPECT_EQ(agg.meanFps(), full.meanFps());
    EXPECT_EQ(agg.worstUserFps(), full.worstUserFps());
    EXPECT_EQ(agg.meanMtp(), full.meanMtp());
    EXPECT_EQ(agg.fpsCompliance(), full.fpsCompliance());
    EXPECT_EQ(agg.aggregateBytesPerFrame(),
              full.aggregateBytesPerFrame());
    EXPECT_EQ(agg.serverUtilisation, full.serverUtilisation);
    EXPECT_EQ(agg.egressUtilisation, full.egressUtilisation);
    EXPECT_EQ(agg.serveCounters.shed, full.serveCounters.shed);
    EXPECT_EQ(agg.serveCounters.admitted,
              full.serveCounters.admitted);

    // Shed/downgraded totals equal the per-user SLO sums.
    std::uint64_t shed = 0, downgraded = 0;
    for (const auto &slo : full.perUserSlo) {
        shed += slo.shedFrames;
        downgraded += slo.downgradedFrames;
    }
    EXPECT_EQ(agg.aggregate.shedFrames, shed);
    EXPECT_EQ(agg.aggregate.downgradedFrames, downgraded);
}

std::vector<collab::SessionConfig>
crosscheckConfigs()
{
    std::vector<collab::SessionConfig> cfgs;

    const auto base = [] {
        collab::SessionConfig cfg;
        cfg.design = collab::SessionDesign::Served;
        cfg.benchmark = "HL2-H";
        cfg.totalChiplets = 4;
        cfg.chipletsPerRequest = 2;
        cfg.serverEgress = fromMbps(2000.0);
        cfg.numFrames = 50;
        return cfg;
    };

    // EDF + admission, the bench's headline cell.
    collab::SessionConfig c1 = base();
    c1.users = 3;
    c1.serving.scheduler.policy = serve::SchedulerPolicy::Edf;
    c1.serving.admission.enabled = true;
    cfgs.push_back(c1);

    // FIFO, saturated (6 users on a 2-slot pool): sheds, backlog,
    // deadline misses all exercised.
    collab::SessionConfig c2 = base();
    c2.users = 6;
    c2.numFrames = 40;
    cfgs.push_back(c2);

    // Batching + 2-shard JSQ fleet.
    collab::SessionConfig c3 = base();
    c3.users = 5;
    c3.numFrames = 40;
    c3.totalChiplets = 8;
    c3.serving.scheduler.policy = serve::SchedulerPolicy::Edf;
    c3.serving.admission.enabled = true;
    c3.serving.batching.enabled = true;
    c3.serving.shards = 2;
    cfgs.push_back(c3);

    // Hash-affinity balancer, different benchmark and seed.
    collab::SessionConfig c4 = base();
    c4.users = 4;
    c4.numFrames = 40;
    c4.benchmark = "Doom3-L";
    c4.seed = 7;
    c4.serving.shards = 2;
    c4.serving.balancer.policy = serve::BalancerPolicy::HashUser;
    c4.serving.scheduler.policy = serve::SchedulerPolicy::Sjf;
    cfgs.push_back(c4);

    // More users than libstdc++'s insertion-sort threshold (16):
    // pins the round-0 issueOrder tie handling, where std::sort is
    // only identity on all-equal keys below that size.
    collab::SessionConfig c5 = base();
    c5.users = 20;
    c5.numFrames = 25;
    c5.serving.scheduler.policy = serve::SchedulerPolicy::Edf;
    c5.serving.admission.enabled = true;
    cfgs.push_back(c5);

    return cfgs;
}

INSTANTIATE_TEST_SUITE_P(
    Sessions, ServedSessionCrosscheck,
    ::testing::ValuesIn(crosscheckConfigs()),
    [](const ::testing::TestParamInfo<collab::SessionConfig> &pi) {
        const auto &c = pi.param;
        return c.benchmark.substr(0, c.benchmark.find('-')) + "u" +
               std::to_string(c.users) + "s" +
               std::to_string(c.serving.shards) + "i" +
               std::to_string(pi.index);
    });

}  // namespace
}  // namespace qvr::core
