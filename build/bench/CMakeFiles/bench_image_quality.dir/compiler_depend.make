# Empty compiler generated dependencies file for bench_image_quality.
# This may be replaced when dependencies are built.
