file(REMOVE_RECURSE
  "CMakeFiles/bench_image_quality.dir/bench_image_quality.cpp.o"
  "CMakeFiles/bench_image_quality.dir/bench_image_quality.cpp.o.d"
  "bench_image_quality"
  "bench_image_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_image_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
