
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_static_characterization.cpp" "bench/CMakeFiles/bench_table1_static_characterization.dir/bench_table1_static_characterization.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_static_characterization.dir/bench_table1_static_characterization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/collab/CMakeFiles/qvr_collab.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/qvr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/foveation/CMakeFiles/qvr_foveation.dir/DependInfo.cmake"
  "/root/repo/build/src/remote/CMakeFiles/qvr_remote.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/qvr_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/qvr_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/motion/CMakeFiles/qvr_motion.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/qvr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qvr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/qvr_power.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qvr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
