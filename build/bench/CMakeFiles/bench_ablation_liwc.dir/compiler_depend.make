# Empty compiler generated dependencies file for bench_ablation_liwc.
# This may be replaced when dependencies are built.
