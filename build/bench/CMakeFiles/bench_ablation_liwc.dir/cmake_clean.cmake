file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_liwc.dir/bench_ablation_liwc.cpp.o"
  "CMakeFiles/bench_ablation_liwc.dir/bench_ablation_liwc.cpp.o.d"
  "bench_ablation_liwc"
  "bench_ablation_liwc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_liwc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
