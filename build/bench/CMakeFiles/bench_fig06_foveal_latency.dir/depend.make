# Empty dependencies file for bench_fig06_foveal_latency.
# This may be replaced when dependencies are built.
