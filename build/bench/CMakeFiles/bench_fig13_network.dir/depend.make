# Empty dependencies file for bench_fig13_network.
# This may be replaced when dependencies are built.
