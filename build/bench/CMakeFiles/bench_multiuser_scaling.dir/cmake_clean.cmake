file(REMOVE_RECURSE
  "CMakeFiles/bench_multiuser_scaling.dir/bench_multiuser_scaling.cpp.o"
  "CMakeFiles/bench_multiuser_scaling.dir/bench_multiuser_scaling.cpp.o.d"
  "bench_multiuser_scaling"
  "bench_multiuser_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiuser_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
