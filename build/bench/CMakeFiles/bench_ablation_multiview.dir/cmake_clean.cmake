file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multiview.dir/bench_ablation_multiview.cpp.o"
  "CMakeFiles/bench_ablation_multiview.dir/bench_ablation_multiview.cpp.o.d"
  "bench_ablation_multiview"
  "bench_ablation_multiview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
