# Empty dependencies file for bench_ablation_multiview.
# This may be replaced when dependencies are built.
