file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_uca.dir/bench_ablation_uca.cpp.o"
  "CMakeFiles/bench_ablation_uca.dir/bench_ablation_uca.cpp.o.d"
  "bench_ablation_uca"
  "bench_ablation_uca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_uca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
