# Empty dependencies file for bench_ablation_uca.
# This may be replaced when dependencies are built.
