# Empty compiler generated dependencies file for bench_table4_eccentricity.
# This may be replaced when dependencies are built.
