file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_eccentricity.dir/bench_table4_eccentricity.cpp.o"
  "CMakeFiles/bench_table4_eccentricity.dir/bench_table4_eccentricity.cpp.o.d"
  "bench_table4_eccentricity"
  "bench_table4_eccentricity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_eccentricity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
