file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_abr.dir/bench_ablation_abr.cpp.o"
  "CMakeFiles/bench_ablation_abr.dir/bench_ablation_abr.cpp.o.d"
  "bench_ablation_abr"
  "bench_ablation_abr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_abr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
