# Empty compiler generated dependencies file for network_handover.
# This may be replaced when dependencies are built.
