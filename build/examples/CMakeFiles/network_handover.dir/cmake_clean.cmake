file(REMOVE_RECURSE
  "CMakeFiles/network_handover.dir/network_handover.cpp.o"
  "CMakeFiles/network_handover.dir/network_handover.cpp.o.d"
  "network_handover"
  "network_handover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_handover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
