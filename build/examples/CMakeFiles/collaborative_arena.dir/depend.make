# Empty dependencies file for collaborative_arena.
# This may be replaced when dependencies are built.
