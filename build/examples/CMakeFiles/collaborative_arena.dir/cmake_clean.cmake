file(REMOVE_RECURSE
  "CMakeFiles/collaborative_arena.dir/collaborative_arena.cpp.o"
  "CMakeFiles/collaborative_arena.dir/collaborative_arena.cpp.o.d"
  "collaborative_arena"
  "collaborative_arena.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collaborative_arena.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
