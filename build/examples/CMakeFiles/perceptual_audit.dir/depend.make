# Empty dependencies file for perceptual_audit.
# This may be replaced when dependencies are built.
