file(REMOVE_RECURSE
  "CMakeFiles/perceptual_audit.dir/perceptual_audit.cpp.o"
  "CMakeFiles/perceptual_audit.dir/perceptual_audit.cpp.o.d"
  "perceptual_audit"
  "perceptual_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perceptual_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
