# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(qvr_cli_runs "/root/repo/build/tools/qvr_cli" "--design" "Q-VR" "--benchmark" "Doom3-L" "--frames" "40")
set_tests_properties(qvr_cli_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(qvr_cli_lists "/root/repo/build/tools/qvr_cli" "--list")
set_tests_properties(qvr_cli_lists PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(qvr_cli_rejects_bad_design "/root/repo/build/tools/qvr_cli" "--design" "Nonsense" "--frames" "5")
set_tests_properties(qvr_cli_rejects_bad_design PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
