file(REMOVE_RECURSE
  "CMakeFiles/qvr_cli.dir/qvr_cli.cpp.o"
  "CMakeFiles/qvr_cli.dir/qvr_cli.cpp.o.d"
  "qvr_cli"
  "qvr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
