# Empty dependencies file for qvr_cli.
# This may be replaced when dependencies are built.
