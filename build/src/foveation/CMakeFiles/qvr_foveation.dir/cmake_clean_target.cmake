file(REMOVE_RECURSE
  "libqvr_foveation.a"
)
