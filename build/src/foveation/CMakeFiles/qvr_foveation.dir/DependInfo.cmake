
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/foveation/layers.cpp" "src/foveation/CMakeFiles/qvr_foveation.dir/layers.cpp.o" "gcc" "src/foveation/CMakeFiles/qvr_foveation.dir/layers.cpp.o.d"
  "/root/repo/src/foveation/quality.cpp" "src/foveation/CMakeFiles/qvr_foveation.dir/quality.cpp.o" "gcc" "src/foveation/CMakeFiles/qvr_foveation.dir/quality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qvr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
