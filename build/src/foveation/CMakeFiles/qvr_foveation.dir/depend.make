# Empty dependencies file for qvr_foveation.
# This may be replaced when dependencies are built.
