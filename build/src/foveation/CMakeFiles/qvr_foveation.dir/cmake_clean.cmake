file(REMOVE_RECURSE
  "CMakeFiles/qvr_foveation.dir/layers.cpp.o"
  "CMakeFiles/qvr_foveation.dir/layers.cpp.o.d"
  "CMakeFiles/qvr_foveation.dir/quality.cpp.o"
  "CMakeFiles/qvr_foveation.dir/quality.cpp.o.d"
  "libqvr_foveation.a"
  "libqvr_foveation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvr_foveation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
