file(REMOVE_RECURSE
  "libqvr_common.a"
)
