# Empty compiler generated dependencies file for qvr_common.
# This may be replaced when dependencies are built.
