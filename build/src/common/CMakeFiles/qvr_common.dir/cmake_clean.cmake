file(REMOVE_RECURSE
  "CMakeFiles/qvr_common.dir/fp16.cpp.o"
  "CMakeFiles/qvr_common.dir/fp16.cpp.o.d"
  "CMakeFiles/qvr_common.dir/log.cpp.o"
  "CMakeFiles/qvr_common.dir/log.cpp.o.d"
  "CMakeFiles/qvr_common.dir/rng.cpp.o"
  "CMakeFiles/qvr_common.dir/rng.cpp.o.d"
  "CMakeFiles/qvr_common.dir/stats.cpp.o"
  "CMakeFiles/qvr_common.dir/stats.cpp.o.d"
  "CMakeFiles/qvr_common.dir/table.cpp.o"
  "CMakeFiles/qvr_common.dir/table.cpp.o.d"
  "libqvr_common.a"
  "libqvr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
