# Empty dependencies file for qvr_net.
# This may be replaced when dependencies are built.
