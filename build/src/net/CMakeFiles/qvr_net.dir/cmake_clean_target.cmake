file(REMOVE_RECURSE
  "libqvr_net.a"
)
