file(REMOVE_RECURSE
  "CMakeFiles/qvr_net.dir/channel.cpp.o"
  "CMakeFiles/qvr_net.dir/channel.cpp.o.d"
  "CMakeFiles/qvr_net.dir/codec.cpp.o"
  "CMakeFiles/qvr_net.dir/codec.cpp.o.d"
  "CMakeFiles/qvr_net.dir/stream.cpp.o"
  "CMakeFiles/qvr_net.dir/stream.cpp.o.d"
  "libqvr_net.a"
  "libqvr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
