file(REMOVE_RECURSE
  "libqvr_sim.a"
)
