# Empty compiler generated dependencies file for qvr_sim.
# This may be replaced when dependencies are built.
