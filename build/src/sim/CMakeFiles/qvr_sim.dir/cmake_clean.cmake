file(REMOVE_RECURSE
  "CMakeFiles/qvr_sim.dir/event_queue.cpp.o"
  "CMakeFiles/qvr_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/qvr_sim.dir/resource.cpp.o"
  "CMakeFiles/qvr_sim.dir/resource.cpp.o.d"
  "libqvr_sim.a"
  "libqvr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
