file(REMOVE_RECURSE
  "libqvr_motion.a"
)
