
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/motion/gaze_model.cpp" "src/motion/CMakeFiles/qvr_motion.dir/gaze_model.cpp.o" "gcc" "src/motion/CMakeFiles/qvr_motion.dir/gaze_model.cpp.o.d"
  "/root/repo/src/motion/head_model.cpp" "src/motion/CMakeFiles/qvr_motion.dir/head_model.cpp.o" "gcc" "src/motion/CMakeFiles/qvr_motion.dir/head_model.cpp.o.d"
  "/root/repo/src/motion/predictor.cpp" "src/motion/CMakeFiles/qvr_motion.dir/predictor.cpp.o" "gcc" "src/motion/CMakeFiles/qvr_motion.dir/predictor.cpp.o.d"
  "/root/repo/src/motion/trace.cpp" "src/motion/CMakeFiles/qvr_motion.dir/trace.cpp.o" "gcc" "src/motion/CMakeFiles/qvr_motion.dir/trace.cpp.o.d"
  "/root/repo/src/motion/tracker.cpp" "src/motion/CMakeFiles/qvr_motion.dir/tracker.cpp.o" "gcc" "src/motion/CMakeFiles/qvr_motion.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qvr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
