file(REMOVE_RECURSE
  "CMakeFiles/qvr_motion.dir/gaze_model.cpp.o"
  "CMakeFiles/qvr_motion.dir/gaze_model.cpp.o.d"
  "CMakeFiles/qvr_motion.dir/head_model.cpp.o"
  "CMakeFiles/qvr_motion.dir/head_model.cpp.o.d"
  "CMakeFiles/qvr_motion.dir/predictor.cpp.o"
  "CMakeFiles/qvr_motion.dir/predictor.cpp.o.d"
  "CMakeFiles/qvr_motion.dir/trace.cpp.o"
  "CMakeFiles/qvr_motion.dir/trace.cpp.o.d"
  "CMakeFiles/qvr_motion.dir/tracker.cpp.o"
  "CMakeFiles/qvr_motion.dir/tracker.cpp.o.d"
  "libqvr_motion.a"
  "libqvr_motion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvr_motion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
