# Empty dependencies file for qvr_motion.
# This may be replaced when dependencies are built.
