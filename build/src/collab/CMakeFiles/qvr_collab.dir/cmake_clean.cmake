file(REMOVE_RECURSE
  "CMakeFiles/qvr_collab.dir/session.cpp.o"
  "CMakeFiles/qvr_collab.dir/session.cpp.o.d"
  "libqvr_collab.a"
  "libqvr_collab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvr_collab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
