# Empty dependencies file for qvr_collab.
# This may be replaced when dependencies are built.
