file(REMOVE_RECURSE
  "libqvr_collab.a"
)
