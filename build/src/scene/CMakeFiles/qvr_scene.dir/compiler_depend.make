# Empty compiler generated dependencies file for qvr_scene.
# This may be replaced when dependencies are built.
