
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scene/benchmarks.cpp" "src/scene/CMakeFiles/qvr_scene.dir/benchmarks.cpp.o" "gcc" "src/scene/CMakeFiles/qvr_scene.dir/benchmarks.cpp.o.d"
  "/root/repo/src/scene/scene_model.cpp" "src/scene/CMakeFiles/qvr_scene.dir/scene_model.cpp.o" "gcc" "src/scene/CMakeFiles/qvr_scene.dir/scene_model.cpp.o.d"
  "/root/repo/src/scene/trace_io.cpp" "src/scene/CMakeFiles/qvr_scene.dir/trace_io.cpp.o" "gcc" "src/scene/CMakeFiles/qvr_scene.dir/trace_io.cpp.o.d"
  "/root/repo/src/scene/workload.cpp" "src/scene/CMakeFiles/qvr_scene.dir/workload.cpp.o" "gcc" "src/scene/CMakeFiles/qvr_scene.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qvr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/motion/CMakeFiles/qvr_motion.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
