file(REMOVE_RECURSE
  "CMakeFiles/qvr_scene.dir/benchmarks.cpp.o"
  "CMakeFiles/qvr_scene.dir/benchmarks.cpp.o.d"
  "CMakeFiles/qvr_scene.dir/scene_model.cpp.o"
  "CMakeFiles/qvr_scene.dir/scene_model.cpp.o.d"
  "CMakeFiles/qvr_scene.dir/trace_io.cpp.o"
  "CMakeFiles/qvr_scene.dir/trace_io.cpp.o.d"
  "CMakeFiles/qvr_scene.dir/workload.cpp.o"
  "CMakeFiles/qvr_scene.dir/workload.cpp.o.d"
  "libqvr_scene.a"
  "libqvr_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvr_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
