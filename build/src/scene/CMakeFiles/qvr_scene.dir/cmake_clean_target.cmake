file(REMOVE_RECURSE
  "libqvr_scene.a"
)
