
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/cache.cpp" "src/gpu/CMakeFiles/qvr_gpu.dir/cache.cpp.o" "gcc" "src/gpu/CMakeFiles/qvr_gpu.dir/cache.cpp.o.d"
  "/root/repo/src/gpu/frame_simulator.cpp" "src/gpu/CMakeFiles/qvr_gpu.dir/frame_simulator.cpp.o" "gcc" "src/gpu/CMakeFiles/qvr_gpu.dir/frame_simulator.cpp.o.d"
  "/root/repo/src/gpu/postprocess.cpp" "src/gpu/CMakeFiles/qvr_gpu.dir/postprocess.cpp.o" "gcc" "src/gpu/CMakeFiles/qvr_gpu.dir/postprocess.cpp.o.d"
  "/root/repo/src/gpu/timing.cpp" "src/gpu/CMakeFiles/qvr_gpu.dir/timing.cpp.o" "gcc" "src/gpu/CMakeFiles/qvr_gpu.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qvr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qvr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/qvr_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/motion/CMakeFiles/qvr_motion.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
