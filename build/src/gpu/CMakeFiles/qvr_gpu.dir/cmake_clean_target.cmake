file(REMOVE_RECURSE
  "libqvr_gpu.a"
)
