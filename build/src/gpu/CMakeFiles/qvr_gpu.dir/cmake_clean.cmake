file(REMOVE_RECURSE
  "CMakeFiles/qvr_gpu.dir/cache.cpp.o"
  "CMakeFiles/qvr_gpu.dir/cache.cpp.o.d"
  "CMakeFiles/qvr_gpu.dir/frame_simulator.cpp.o"
  "CMakeFiles/qvr_gpu.dir/frame_simulator.cpp.o.d"
  "CMakeFiles/qvr_gpu.dir/postprocess.cpp.o"
  "CMakeFiles/qvr_gpu.dir/postprocess.cpp.o.d"
  "CMakeFiles/qvr_gpu.dir/timing.cpp.o"
  "CMakeFiles/qvr_gpu.dir/timing.cpp.o.d"
  "libqvr_gpu.a"
  "libqvr_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvr_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
