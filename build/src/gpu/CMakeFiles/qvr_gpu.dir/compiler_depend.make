# Empty compiler generated dependencies file for qvr_gpu.
# This may be replaced when dependencies are built.
