file(REMOVE_RECURSE
  "CMakeFiles/qvr_remote.dir/server.cpp.o"
  "CMakeFiles/qvr_remote.dir/server.cpp.o.d"
  "libqvr_remote.a"
  "libqvr_remote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvr_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
