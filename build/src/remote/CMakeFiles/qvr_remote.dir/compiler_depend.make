# Empty compiler generated dependencies file for qvr_remote.
# This may be replaced when dependencies are built.
