file(REMOVE_RECURSE
  "libqvr_remote.a"
)
