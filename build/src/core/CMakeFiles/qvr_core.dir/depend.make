# Empty dependencies file for qvr_core.
# This may be replaced when dependencies are built.
