
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/foveated_render.cpp" "src/core/CMakeFiles/qvr_core.dir/foveated_render.cpp.o" "gcc" "src/core/CMakeFiles/qvr_core.dir/foveated_render.cpp.o.d"
  "/root/repo/src/core/framebuffer.cpp" "src/core/CMakeFiles/qvr_core.dir/framebuffer.cpp.o" "gcc" "src/core/CMakeFiles/qvr_core.dir/framebuffer.cpp.o.d"
  "/root/repo/src/core/liwc.cpp" "src/core/CMakeFiles/qvr_core.dir/liwc.cpp.o" "gcc" "src/core/CMakeFiles/qvr_core.dir/liwc.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/qvr_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/qvr_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/pipeline_foveated.cpp" "src/core/CMakeFiles/qvr_core.dir/pipeline_foveated.cpp.o" "gcc" "src/core/CMakeFiles/qvr_core.dir/pipeline_foveated.cpp.o.d"
  "/root/repo/src/core/pipelines_baseline.cpp" "src/core/CMakeFiles/qvr_core.dir/pipelines_baseline.cpp.o" "gcc" "src/core/CMakeFiles/qvr_core.dir/pipelines_baseline.cpp.o.d"
  "/root/repo/src/core/qvr_system.cpp" "src/core/CMakeFiles/qvr_core.dir/qvr_system.cpp.o" "gcc" "src/core/CMakeFiles/qvr_core.dir/qvr_system.cpp.o.d"
  "/root/repo/src/core/raster.cpp" "src/core/CMakeFiles/qvr_core.dir/raster.cpp.o" "gcc" "src/core/CMakeFiles/qvr_core.dir/raster.cpp.o.d"
  "/root/repo/src/core/uca.cpp" "src/core/CMakeFiles/qvr_core.dir/uca.cpp.o" "gcc" "src/core/CMakeFiles/qvr_core.dir/uca.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qvr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qvr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/qvr_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/motion/CMakeFiles/qvr_motion.dir/DependInfo.cmake"
  "/root/repo/build/src/foveation/CMakeFiles/qvr_foveation.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/qvr_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/remote/CMakeFiles/qvr_remote.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/qvr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/qvr_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
