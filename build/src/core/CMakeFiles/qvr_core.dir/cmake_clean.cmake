file(REMOVE_RECURSE
  "CMakeFiles/qvr_core.dir/foveated_render.cpp.o"
  "CMakeFiles/qvr_core.dir/foveated_render.cpp.o.d"
  "CMakeFiles/qvr_core.dir/framebuffer.cpp.o"
  "CMakeFiles/qvr_core.dir/framebuffer.cpp.o.d"
  "CMakeFiles/qvr_core.dir/liwc.cpp.o"
  "CMakeFiles/qvr_core.dir/liwc.cpp.o.d"
  "CMakeFiles/qvr_core.dir/pipeline.cpp.o"
  "CMakeFiles/qvr_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/qvr_core.dir/pipeline_foveated.cpp.o"
  "CMakeFiles/qvr_core.dir/pipeline_foveated.cpp.o.d"
  "CMakeFiles/qvr_core.dir/pipelines_baseline.cpp.o"
  "CMakeFiles/qvr_core.dir/pipelines_baseline.cpp.o.d"
  "CMakeFiles/qvr_core.dir/qvr_system.cpp.o"
  "CMakeFiles/qvr_core.dir/qvr_system.cpp.o.d"
  "CMakeFiles/qvr_core.dir/raster.cpp.o"
  "CMakeFiles/qvr_core.dir/raster.cpp.o.d"
  "CMakeFiles/qvr_core.dir/uca.cpp.o"
  "CMakeFiles/qvr_core.dir/uca.cpp.o.d"
  "libqvr_core.a"
  "libqvr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
