file(REMOVE_RECURSE
  "libqvr_core.a"
)
