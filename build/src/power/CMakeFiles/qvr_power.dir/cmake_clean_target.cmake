file(REMOVE_RECURSE
  "libqvr_power.a"
)
