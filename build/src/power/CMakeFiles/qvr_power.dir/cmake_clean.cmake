file(REMOVE_RECURSE
  "CMakeFiles/qvr_power.dir/dvfs.cpp.o"
  "CMakeFiles/qvr_power.dir/dvfs.cpp.o.d"
  "CMakeFiles/qvr_power.dir/energy.cpp.o"
  "CMakeFiles/qvr_power.dir/energy.cpp.o.d"
  "libqvr_power.a"
  "libqvr_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qvr_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
