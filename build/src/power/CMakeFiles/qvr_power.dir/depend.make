# Empty dependencies file for qvr_power.
# This may be replaced when dependencies are built.
