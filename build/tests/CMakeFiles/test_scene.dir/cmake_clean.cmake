file(REMOVE_RECURSE
  "CMakeFiles/test_scene.dir/scene/test_benchmarks.cpp.o"
  "CMakeFiles/test_scene.dir/scene/test_benchmarks.cpp.o.d"
  "CMakeFiles/test_scene.dir/scene/test_scene_model.cpp.o"
  "CMakeFiles/test_scene.dir/scene/test_scene_model.cpp.o.d"
  "CMakeFiles/test_scene.dir/scene/test_trace_io.cpp.o"
  "CMakeFiles/test_scene.dir/scene/test_trace_io.cpp.o.d"
  "CMakeFiles/test_scene.dir/scene/test_workload.cpp.o"
  "CMakeFiles/test_scene.dir/scene/test_workload.cpp.o.d"
  "test_scene"
  "test_scene.pdb"
  "test_scene[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
