file(REMOVE_RECURSE
  "CMakeFiles/test_motion.dir/motion/test_gaze_model.cpp.o"
  "CMakeFiles/test_motion.dir/motion/test_gaze_model.cpp.o.d"
  "CMakeFiles/test_motion.dir/motion/test_head_model.cpp.o"
  "CMakeFiles/test_motion.dir/motion/test_head_model.cpp.o.d"
  "CMakeFiles/test_motion.dir/motion/test_predictor.cpp.o"
  "CMakeFiles/test_motion.dir/motion/test_predictor.cpp.o.d"
  "CMakeFiles/test_motion.dir/motion/test_trace.cpp.o"
  "CMakeFiles/test_motion.dir/motion/test_trace.cpp.o.d"
  "CMakeFiles/test_motion.dir/motion/test_tracker.cpp.o"
  "CMakeFiles/test_motion.dir/motion/test_tracker.cpp.o.d"
  "test_motion"
  "test_motion.pdb"
  "test_motion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_motion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
