file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/test_abr.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_abr.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_convergence.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_convergence.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_designs.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_designs.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_event_crosscheck.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_event_crosscheck.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_failure_injection.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_failure_injection.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_paper_shapes.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_paper_shapes.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
