file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_foveated_render.cpp.o"
  "CMakeFiles/test_core.dir/core/test_foveated_render.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_framebuffer.cpp.o"
  "CMakeFiles/test_core.dir/core/test_framebuffer.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_liwc.cpp.o"
  "CMakeFiles/test_core.dir/core/test_liwc.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_pipeline.cpp.o"
  "CMakeFiles/test_core.dir/core/test_pipeline.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_qvr_system.cpp.o"
  "CMakeFiles/test_core.dir/core/test_qvr_system.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_raster.cpp.o"
  "CMakeFiles/test_core.dir/core/test_raster.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_uca.cpp.o"
  "CMakeFiles/test_core.dir/core/test_uca.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
