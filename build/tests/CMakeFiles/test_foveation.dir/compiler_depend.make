# Empty compiler generated dependencies file for test_foveation.
# This may be replaced when dependencies are built.
