file(REMOVE_RECURSE
  "CMakeFiles/test_foveation.dir/foveation/test_layers.cpp.o"
  "CMakeFiles/test_foveation.dir/foveation/test_layers.cpp.o.d"
  "CMakeFiles/test_foveation.dir/foveation/test_mar.cpp.o"
  "CMakeFiles/test_foveation.dir/foveation/test_mar.cpp.o.d"
  "CMakeFiles/test_foveation.dir/foveation/test_quality.cpp.o"
  "CMakeFiles/test_foveation.dir/foveation/test_quality.cpp.o.d"
  "test_foveation"
  "test_foveation.pdb"
  "test_foveation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_foveation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
