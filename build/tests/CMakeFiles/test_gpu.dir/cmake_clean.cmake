file(REMOVE_RECURSE
  "CMakeFiles/test_gpu.dir/gpu/test_cache.cpp.o"
  "CMakeFiles/test_gpu.dir/gpu/test_cache.cpp.o.d"
  "CMakeFiles/test_gpu.dir/gpu/test_frame_simulator.cpp.o"
  "CMakeFiles/test_gpu.dir/gpu/test_frame_simulator.cpp.o.d"
  "CMakeFiles/test_gpu.dir/gpu/test_postprocess.cpp.o"
  "CMakeFiles/test_gpu.dir/gpu/test_postprocess.cpp.o.d"
  "CMakeFiles/test_gpu.dir/gpu/test_timing.cpp.o"
  "CMakeFiles/test_gpu.dir/gpu/test_timing.cpp.o.d"
  "test_gpu"
  "test_gpu.pdb"
  "test_gpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
