file(REMOVE_RECURSE
  "CMakeFiles/test_collab.dir/collab/test_session.cpp.o"
  "CMakeFiles/test_collab.dir/collab/test_session.cpp.o.d"
  "test_collab"
  "test_collab.pdb"
  "test_collab[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
