/**
 * @file
 * Pixel-throughput benchmark for the UCA functional paths: Mpix/s of
 * the scalar reference loops vs the tiled PixelEngine, serial and
 * thread-parallel, for both the unified (Eq. 4) and the two-pass
 * sequential (Eq. 3) composition.  This is the repo's first
 * throughput benchmark — future PRs regress against its JSON.
 *
 * Output: a TextTable on stdout and BENCH_pixel_throughput.json
 * (path overridable with --json <path>); --quick shrinks the canvas
 * set and repetition count for CI smoke runs (the `perf` CTest
 * label).  Every tiled variant is verified bit-identical
 * (maxAbsDiff == 0) against its scalar reference before timing.
 */

#include "bench_util.hpp"

#include <chrono>
#include <fstream>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "core/pixel_engine.hpp"

namespace
{

using namespace qvr;

core::Image
makePattern(std::int32_t w, std::int32_t h)
{
    core::Image img(w, h);
    for (std::int32_t y = 0; y < h; y++) {
        core::Rgb *row = img.rowSpan(y);
        for (std::int32_t x = 0; x < w; x++) {
            const double fx = x + 0.5;
            const double fy = y + 0.5;
            row[x] = core::Rgb{
                static_cast<float>(
                    0.5 + 0.5 * std::sin(fx * 0.11)),
                static_cast<float>(
                    0.5 + 0.5 * std::cos(fy * 0.07)),
                static_cast<float>(
                    0.5 + 0.25 * std::sin((fx + fy) * 0.05))};
        }
    }
    return img;
}

core::Image
downsample(const core::Image &src, double s)
{
    const auto w =
        std::max(1, static_cast<std::int32_t>(src.width() / s));
    const auto h =
        std::max(1, static_cast<std::int32_t>(src.height() / s));
    core::Image out(w, h);
    for (std::int32_t y = 0; y < h; y++) {
        for (std::int32_t x = 0; x < w; x++) {
            out.at(x, y) = src.sampleBilinear((x + 0.5) * s,
                                              (y + 0.5) * s);
        }
    }
    return out;
}

/** Best-of-N wall time of fn(), seconds. */
double
bestSeconds(int reps, const std::function<void()> &fn)
{
    using clock = std::chrono::steady_clock;
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < reps; i++) {
        const auto t0 = clock::now();
        fn();
        const auto t1 = clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

struct Row
{
    std::string path;     ///< uca_unified | sequential
    std::string engine;   ///< scalar | tiled
    std::size_t threads;
    std::int32_t size;
    double mpixPerS;
    double maxAbsDiff;    ///< vs the scalar reference (0 required)
    double speedup;       ///< vs the scalar reference
};

}  // namespace

int
main(int argc, char **argv)
{
    using namespace qvr;
    using namespace qvr::bench;

    bool quick = false;
    std::string json_path = "BENCH_pixel_throughput.json";
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::cerr << "usage: bench_pixel_throughput [--quick]"
                         " [--json <path>]\n";
            return 2;
        }
    }

    printHeader("pixel throughput — scalar vs tiled UCA pipeline");

    const int reps = quick ? 2 : 5;
    std::vector<std::int32_t> sizes{512};
    if (!quick)
        sizes.push_back(1024);

    const std::size_t n_threads =
        sim::ThreadPool::defaultParallelism();

    TextTable table("UCA pixel throughput (best of " +
                    std::to_string(reps) + ")");
    table.setHeader({"path", "engine", "threads", "canvas",
                     "Mpix/s", "speedup", "maxAbsDiff"});

    std::vector<Row> rows;
    for (const std::int32_t size : sizes) {
        const core::Image native = makePattern(size, size);
        const core::Image middle = downsample(native, 2.0);
        const core::Image outer = downsample(native, 4.0);

        core::UcaFrameInputs in;
        in.fovea = &native;
        in.middle = &middle;
        in.outer = &outer;
        in.sMiddle = 2.0;
        in.sOuter = 4.0;
        // Paper-shaped partition: fovea ~1/6 of the canvas, blend
        // bands crossing many tile boundaries.
        in.partition.centerX = size / 2.0;
        in.partition.centerY = size / 2.0;
        in.partition.foveaRadius = size / 6.0;
        in.partition.middleRadius = size / 3.0;
        in.partition.blendBand = 16.0;
        in.atwShift = Vec2{1.7, -2.3};

        const double mpix =
            static_cast<double>(size) * size / 1e6;

        core::PixelEngine serial(1);
        core::PixelEngine parallel(n_threads);

        struct Variant
        {
            std::string path;
            std::string engine;
            std::size_t threads;
            std::function<core::Image()> run;
        };
        const std::vector<Variant> variants{
            {"uca_unified", "scalar", 1,
             [&] { return core::ucaUnified(in); }},
            {"uca_unified", "tiled", 1,
             [&] { return serial.ucaUnified(in); }},
            {"uca_unified", "tiled", n_threads,
             [&] { return parallel.ucaUnified(in); }},
            {"sequential", "scalar", 1,
             [&] { return core::sequentialCompositeAtw(in); }},
            {"sequential", "tiled", 1,
             [&] { return serial.sequentialCompositeAtw(in); }},
            {"sequential", "tiled", n_threads,
             [&] { return parallel.sequentialCompositeAtw(in); }},
        };

        double scalar_mpixps[2] = {0.0, 0.0};
        core::Image reference[2];
        for (const Variant &v : variants) {
            const int which = v.path == "uca_unified" ? 0 : 1;
            const core::Image out = v.run();  // warm-up + checksum
            double diff = 0.0;
            if (v.engine == "scalar")
                reference[which] = out;
            else
                diff = out.maxAbsDiff(reference[which]);

            const double secs =
                bestSeconds(reps, [&v] { (void)v.run(); });
            const double rate = mpix / secs;
            if (v.engine == "scalar")
                scalar_mpixps[which] = rate;
            const double speedup = rate / scalar_mpixps[which];

            rows.push_back(Row{v.path, v.engine, v.threads, size,
                               rate, diff, speedup});
            table.addRow({v.path, v.engine,
                          std::to_string(v.threads),
                          std::to_string(size) + "x" +
                              std::to_string(size),
                          TextTable::num(rate, 1),
                          TextTable::num(speedup, 2) + "x",
                          TextTable::num(diff, 1)});
            if (diff != 0.0) {
                std::cerr << "FAIL: tiled output differs from the "
                             "scalar reference (path="
                          << v.path << ", threads=" << v.threads
                          << ", maxAbsDiff=" << diff << ")\n";
                return 1;
            }
        }
    }
    table.print(std::cout);

    std::cout << "\nReading: interior tiles skip radius, weights and"
                 " two of three layer samples; blend-band tiles alone"
                 " pay the trilinear cost, and tiles fan across "
              << n_threads << " workers — all bit-identical to the"
                              " scalar loops.\n";

    std::ofstream os(json_path);
    if (!os) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    os << "{\n  \"bench\": \"pixel_throughput\",\n"
       << "  \"tile_size\": " << core::kPixelTileSize << ",\n"
       << "  \"default_threads\": " << n_threads << ",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); i++) {
        const Row &r = rows[i];
        os << "    {\"path\": \"" << r.path << "\", \"engine\": \""
           << r.engine << "\", \"threads\": " << r.threads
           << ", \"canvas\": " << r.size
           << ", \"mpix_per_s\": " << r.mpixPerS
           << ", \"speedup_vs_scalar\": " << r.speedup
           << ", \"max_abs_diff_vs_scalar\": " << r.maxAbsDiff
           << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
    return 0;
}
