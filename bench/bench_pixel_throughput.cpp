/**
 * @file
 * Pixel-throughput benchmark for the UCA functional paths: Mpix/s of
 * the scalar reference loops vs the tiled PixelEngine across the
 * compiled SIMD dispatch backends (scalar / AVX2 / NEON), serial and
 * thread-parallel, for the unified (Eq. 4) and two-pass sequential
 * (Eq. 3) composition, plus a per-kernel breakdown (interior
 * bilinear vs blend-band trilinear) on synthetic all-interior /
 * all-blend partitions whose tile census is verified before timing.
 *
 * Output: a TextTable on stdout and BENCH_pixel_throughput.json
 * (path overridable with --json <path>); --quick shrinks the
 * repetition count for CI smoke runs (the `perf` CTest label);
 * --dispatch <scalar|avx2|neon> restricts the backend sweep.  Every
 * tiled variant is verified bit-identical (maxAbsDiff == 0) against
 * its scalar reference before timing, and the run FAILS (exit 1)
 * unless the best SIMD backend reaches the pinned >= 4x serial
 * speedup over the scalar composite loop on the largest canvas
 * (skipped, loudly, when no SIMD backend is compiled/supported).
 */

#include "bench_util.hpp"

#include <chrono>
#include <fstream>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/pixel_engine.hpp"

namespace
{

using namespace qvr;

/** Pinned acceptance gate: SIMD serial composite vs scalar loop. */
constexpr double kRequiredSpeedup = 4.0;

core::Image
makePattern(std::int32_t w, std::int32_t h)
{
    core::Image img(w, h);
    for (std::int32_t y = 0; y < h; y++) {
        core::Rgb *row = img.rowSpan(y);
        for (std::int32_t x = 0; x < w; x++) {
            const double fx = x + 0.5;
            const double fy = y + 0.5;
            row[x] = core::Rgb{
                static_cast<float>(
                    0.5 + 0.5 * std::sin(fx * 0.11)),
                static_cast<float>(
                    0.5 + 0.5 * std::cos(fy * 0.07)),
                static_cast<float>(
                    0.5 + 0.25 * std::sin((fx + fy) * 0.05))};
        }
    }
    return img;
}

core::Image
downsample(const core::Image &src, double s)
{
    const auto w =
        std::max(1, static_cast<std::int32_t>(src.width() / s));
    const auto h =
        std::max(1, static_cast<std::int32_t>(src.height() / s));
    core::Image out(w, h);
    for (std::int32_t y = 0; y < h; y++) {
        for (std::int32_t x = 0; x < w; x++) {
            out.at(x, y) = src.sampleBilinear((x + 0.5) * s,
                                              (y + 0.5) * s);
        }
    }
    return out;
}

/** Best-of-N wall time of fn(), seconds. */
double
bestSeconds(int reps, const std::function<void()> &fn)
{
    using clock = std::chrono::steady_clock;
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < reps; i++) {
        const auto t0 = clock::now();
        fn();
        const auto t1 = clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

struct Row
{
    std::string path;      ///< uca_unified | sequential |
                           ///< interior_bilinear | blend_trilinear
    std::string engine;    ///< scalar (reference loop) | tiled
    std::string dispatch;  ///< ref | scalar | avx2 | neon
    std::size_t threads;
    std::int32_t size;
    double mpixPerS;
    double maxAbsDiff;     ///< vs the scalar reference (0 required)
    double speedup;        ///< vs the scalar reference loop
};

}  // namespace

int
main(int argc, char **argv)
{
    using namespace qvr;
    using namespace qvr::bench;

    bool quick = false;
    std::string json_path = "BENCH_pixel_throughput.json";
    std::string only_dispatch;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--dispatch" && i + 1 < argc) {
            only_dispatch = argv[++i];
        } else {
            std::cerr << "usage: bench_pixel_throughput [--quick]"
                         " [--json <path>]"
                         " [--dispatch <scalar|avx2|neon>]\n";
            return 2;
        }
    }

    printHeader("pixel throughput — scalar vs tiled+SIMD UCA "
                "pipeline");

    // Backend sweep: every backend compiled in AND runnable on this
    // host (each is bit-exact, so the sweep is timing-only).
    std::vector<core::simd::Backend> backends;
    for (const auto b :
         {core::simd::Backend::Scalar, core::simd::Backend::Avx2,
          core::simd::Backend::Neon}) {
        if (!core::simd::backendSupported(b))
            continue;
        if (!only_dispatch.empty() &&
            only_dispatch != core::simd::backendName(b))
            continue;
        backends.push_back(b);
    }
    if (backends.empty()) {
        std::cerr << "no requested SIMD backend is supported here\n";
        return 2;
    }

    const int reps = quick ? 2 : 5;
    const std::vector<std::int32_t> sizes{512, 1024};
    const std::int32_t gate_size = sizes.back();

    const std::size_t n_threads =
        sim::ThreadPool::defaultParallelism();

    TextTable table("UCA pixel throughput (best of " +
                    std::to_string(reps) + ")");
    table.setHeader({"path", "engine", "dispatch", "threads",
                     "canvas", "Mpix/s", "speedup", "maxAbsDiff"});

    std::vector<Row> rows;
    double gate_speedup = 0.0;  ///< best SIMD serial composite
    for (const std::int32_t size : sizes) {
        const core::Image native = makePattern(size, size);
        const core::Image middle = downsample(native, 2.0);
        const core::Image outer = downsample(native, 4.0);

        core::UcaFrameInputs in;
        in.fovea = &native;
        in.middle = &middle;
        in.outer = &outer;
        in.sMiddle = 2.0;
        in.sOuter = 4.0;
        // Paper-shaped partition: fovea ~1/6 of the canvas, blend
        // bands crossing many tile boundaries.
        in.partition.centerX = size / 2.0;
        in.partition.centerY = size / 2.0;
        in.partition.foveaRadius = size / 6.0;
        in.partition.middleRadius = size / 3.0;
        in.partition.blendBand = 16.0;
        in.atwShift = Vec2{1.7, -2.3};

        // Kernel-breakdown inputs: a partition whose fovea covers
        // the whole canvas (every tile takes the interior bilinear
        // fast path) and one whose blend band does (every tile pays
        // the trilinear path).  The tile census asserts both.
        core::UcaFrameInputs interior = in;
        interior.partition.foveaRadius = 4.0 * size;
        interior.partition.middleRadius = 5.0 * size;
        core::UcaFrameInputs blend = in;
        blend.partition.foveaRadius = 0.0;
        blend.partition.middleRadius = 3.0 * size;
        blend.partition.blendBand = 3.0 * size;

        const double mpix =
            static_cast<double>(size) * size / 1e6;

        struct Variant
        {
            std::string path;
            std::string engine;
            std::string dispatch;
            std::size_t threads;
            std::function<core::Image()> run;
            /** Census required after run() (0 = don't check). */
            std::uint32_t wantFovea = 0, wantBlend = 0;
            core::PixelEngine *census = nullptr;
        };
        std::vector<Variant> variants{
            {"uca_unified", "scalar", "ref", 1,
             [&] { return core::ucaUnified(in); }},
            {"sequential", "scalar", "ref", 1,
             [&] { return core::sequentialCompositeAtw(in); }},
            {"interior_bilinear", "scalar", "ref", 1,
             [&] { return core::ucaUnified(interior); }},
            {"blend_trilinear", "scalar", "ref", 1,
             [&] { return core::ucaUnified(blend); }},
        };

        std::vector<std::unique_ptr<core::PixelEngine>> engines;
        const std::uint32_t tiles_per_side =
            (size + core::kPixelTileSize - 1) / core::kPixelTileSize;
        const std::uint32_t tiles = tiles_per_side * tiles_per_side;
        for (const auto b : backends) {
            engines.push_back(
                std::make_unique<core::PixelEngine>(1, b));
            core::PixelEngine *serial = engines.back().get();
            const std::string name = core::simd::backendName(b);
            variants.push_back({"uca_unified", "tiled", name, 1,
                                [&, serial] {
                                    return serial->ucaUnified(in);
                                }});
            variants.push_back(
                {"sequential", "tiled", name, 1, [&, serial] {
                     return serial->sequentialCompositeAtw(in);
                 }});
            variants.push_back({"interior_bilinear", "tiled", name,
                                1,
                                [&, serial] {
                                    return serial->ucaUnified(
                                        interior);
                                },
                                tiles, 0, serial});
            variants.push_back({"blend_trilinear", "tiled", name, 1,
                                [&, serial] {
                                    return serial->ucaUnified(blend);
                                },
                                0, tiles, serial});
        }
        if (n_threads > 1) {
            engines.push_back(std::make_unique<core::PixelEngine>(
                n_threads, backends.back()));
            core::PixelEngine *par = engines.back().get();
            variants.push_back(
                {"uca_unified", "tiled",
                 core::simd::backendName(backends.back()), n_threads,
                 [&, par] { return par->ucaUnified(in); }});
        }

        std::map<std::string, double> scalar_rate;
        std::map<std::string, core::Image> reference;
        for (const Variant &v : variants) {
            const core::Image out = v.run();  // warm-up + checksum
            if (v.census) {
                const auto &st = v.census->lastStats();
                if (st.tiles != tiles ||
                    st.foveaTiles != v.wantFovea ||
                    st.blendTiles != v.wantBlend) {
                    std::cerr << "FAIL: synthetic partition census "
                                 "mismatch (path="
                              << v.path << ", fovea="
                              << st.foveaTiles << "/" << v.wantFovea
                              << ", blend=" << st.blendTiles << "/"
                              << v.wantBlend << ")\n";
                    return 1;
                }
            }
            double diff = 0.0;
            if (v.engine == "scalar")
                reference.emplace(v.path, out);
            else
                diff = out.maxAbsDiff(reference.at(v.path));

            const double secs =
                bestSeconds(reps, [&v] { (void)v.run(); });
            const double rate = mpix / secs;
            if (v.engine == "scalar")
                scalar_rate[v.path] = rate;
            const double speedup = rate / scalar_rate.at(v.path);
            if (v.path == "uca_unified" && v.threads == 1 &&
                v.dispatch != "ref" && v.dispatch != "scalar" &&
                size == gate_size)
                gate_speedup = std::max(gate_speedup, speedup);

            rows.push_back(Row{v.path, v.engine, v.dispatch,
                               v.threads, size, rate, diff, speedup});
            table.addRow({v.path, v.engine, v.dispatch,
                          std::to_string(v.threads),
                          std::to_string(size) + "x" +
                              std::to_string(size),
                          TextTable::num(rate, 1),
                          TextTable::num(speedup, 2) + "x",
                          TextTable::num(diff, 1)});
            if (diff != 0.0) {
                std::cerr << "FAIL: tiled output differs from the "
                             "scalar reference (path="
                          << v.path << ", dispatch=" << v.dispatch
                          << ", threads=" << v.threads
                          << ", maxAbsDiff=" << diff << ")\n";
                return 1;
            }
        }
    }
    table.print(std::cout);

    std::cout << "\nReading: interior tiles skip radius, weights and"
                 " two of three layer samples and run the hoisted"
                 " SIMD bilinear kernel; blend-band tiles alone pay"
                 " the trilinear cost (scalar weights, vector"
                 " samples).  Every variant is bit-identical to the"
                 " scalar loops.\n";

    // ---- Acceptance gate: >= 4x serial composite on SIMD. --------
    bool gate_checked = false;
    bool gate_passed = false;
    const bool have_simd =
        gate_speedup > 0.0;  // a non-scalar backend was swept
    if (have_simd) {
        gate_checked = true;
        gate_passed = gate_speedup >= kRequiredSpeedup;
        std::cout << "\nSIMD gate: serial uca_unified speedup "
                  << TextTable::num(gate_speedup, 2) << "x vs scalar"
                  << " loop at " << gate_size << "x" << gate_size
                  << " (required " << kRequiredSpeedup << "x): "
                  << (gate_passed ? "PASS" : "FAIL") << "\n";
    } else {
        std::cout << "\nSIMD gate: SKIPPED — no vector backend"
                     " compiled/supported on this host (scalar-only"
                     " sweep)\n";
    }

    std::ofstream os(json_path);
    if (!os) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    os << "{\n  \"bench\": \"pixel_throughput\",\n"
       << "  \"tile_size\": " << core::kPixelTileSize << ",\n"
       << "  \"default_threads\": " << n_threads << ",\n"
       << "  \"dispatch_default\": \""
       << core::simd::backendName(core::simd::dispatch()) << "\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"simd_gate\": {\"required_speedup\": "
       << kRequiredSpeedup << ", \"measured_speedup\": "
       << gate_speedup << ", \"status\": \""
       << (gate_checked ? (gate_passed ? "pass" : "fail")
                        : "skipped")
       << "\"},\n"
       << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); i++) {
        const Row &r = rows[i];
        os << "    {\"path\": \"" << r.path << "\", \"engine\": \""
           << r.engine << "\", \"dispatch\": \"" << r.dispatch
           << "\", \"threads\": " << r.threads
           << ", \"canvas\": " << r.size
           << ", \"mpix_per_s\": " << r.mpixPerS
           << ", \"speedup_vs_scalar\": " << r.speedup
           << ", \"max_abs_diff_vs_scalar\": " << r.maxAbsDiff
           << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
    return gate_checked && !gate_passed ? 1 : 0;
}
