/**
 * @file
 * Fleet-capacity benchmark: how many 90 Hz users one chiplet pool
 * sustains under each serving policy, at equal hardware.
 *
 * The multiuser bench showed the default session is egress-bound; this
 * bench pins a pool-bound operating point (4 chiplets, 2 per request,
 * 2 Gbps egress) so the *scheduling* policy decides capacity, and
 * sweeps the qvr::serve stack: FIFO (the pre-serve baseline), EDF and
 * SJF orderings, deadline-aware admission control, cross-user
 * batching, and 2-shard fleets under both balancers.
 *
 * Self-verifying acceptance criteria (exit 1 on violation):
 *  1. EDF + admission sustains strictly more 90 Hz users than FIFO
 *     (at least FIFO capacity + 1) on identical silicon;
 *  2. admission control's contract holds: across every admission-
 *     enabled session this bench runs, zero admitted requests miss
 *     their render deadline;
 *  3. the policy grid is bit-exact across 1/2/8 worker threads and
 *     across repeated runs.
 *
 * `--large` switches to the scale mode enabled by the event-driven
 * session engine (SessionEngine::Event + aggregate telemetry): an
 * oracle gate pins the event engine bit-identical to the lockstep
 * loop at small N, then a user-count sweep climbs to 10,000 users on
 * one shard, the whole grid replayed at 1/2/8 worker threads and
 * required byte-identical.  From the sweep it calibrates a capacity
 * model — per-shard admitted throughput mu and per-user demand
 * lambda — that must predict the largest cell's admitted count
 * within 10%, and extrapolates the shard count needed for 100k and
 * 1M users.  Writes BENCH_fleet_capacity_large.json; exit 1 on any
 * violation.  `--large --quick` is the downscaled CI smoke.
 *
 * `--open-loop` switches to arrival-driven traffic: users connect on
 * a seeded MMPP flash-crowd schedule (core/arrivals.hpp), play a
 * drawn session length, and depart — demand no longer throttles to
 * what the fleet serves.  A balancer duel (JSQ, bounded-load CH,
 * power-of-two-choices, bounded and legacy unbounded rendezvous)
 * runs under one burst trace, then a shard-scaling grid (2 -> 64
 * shards, quick: 8) scales load and hardware together.  Self-
 * verified: bit-exact at 1/2/8 workers, zero admitted-deadline
 * misses, bounded-load CH sheds <= 2x JSQ, per-shard admitted
 * throughput within 10% across the grid.  Writes
 * BENCH_fleet_openloop.json; `--open-loop --quick` is the CI smoke.
 *
 * Output: TextTables on stdout and BENCH_fleet_capacity.json (path
 * overridable with --json <path>); --quick shrinks the run for the
 * CI smoke check (`perf` CTest label).
 */

#include "bench_util.hpp"

#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "collab/session.hpp"

namespace
{

using namespace qvr;

struct PolicyCell
{
    std::string name;
    serve::SchedulerPolicy policy = serve::SchedulerPolicy::Fifo;
    bool admission = false;
    bool batching = false;
    std::uint32_t shards = 1;
    serve::BalancerPolicy balancer =
        serve::BalancerPolicy::JoinShortestQueue;
};

/** Pool-bound operating point: the chiplet pool (2 concurrent
 *  renders), not the egress pipe, is the scarce resource. */
collab::SessionConfig
makeConfig(const PolicyCell &cell, std::size_t users,
           std::size_t frames)
{
    collab::SessionConfig cfg;
    cfg.benchmark = "HL2-H";
    cfg.design = collab::SessionDesign::Served;
    cfg.users = users;
    cfg.numFrames = frames;
    cfg.totalChiplets = 4;
    cfg.chipletsPerRequest = 2;
    cfg.serverEgress = fromMbps(2000.0);
    cfg.serving.scheduler.policy = cell.policy;
    cfg.serving.admission.enabled = cell.admission;
    cfg.serving.batching.enabled = cell.batching;
    cfg.serving.shards = cell.shards;
    cfg.serving.balancer.policy = cell.balancer;
    return cfg;
}

/** Byte-faithful digest of a session (hexfloat: no rounding). */
std::string
digest(const collab::SessionResult &r)
{
    std::ostringstream os;
    os << std::hexfloat;
    for (const auto &u : r.perUser) {
        for (const auto &f : u.frames) {
            os << f.displayTime << ';' << f.mtpLatency << ';'
               << f.frameInterval << ';' << f.transmittedBytes << ';'
               << f.serveQueueWait << ';' << f.serveAdmitted << ';'
               << f.serveDeadlineMet << ';' << f.degradationLevel
               << ';' << f.localFallback << '\n';
        }
    }
    os << r.serveCounters.submitted << ';' << r.serveCounters.admitted
       << ';' << r.serveCounters.shed << ';'
       << r.serveCounters.downgraded << ';'
       << r.serveCounters.deadlineMisses << ';'
       << r.serveCounters.batches << ';'
       << r.serveCounters.batchedRequests << '\n';
    return os.str();
}

struct CapacityOutcome
{
    std::size_t capacity = 0;       ///< users sustained at 90 Hz
    bool hitLimit = false;          ///< capacity == search limit
    std::uint64_t admMisses = 0;    ///< admission-enabled misses
    std::uint64_t sessions = 0;
};

/** Step-1 capacity search: largest n with worst-user FPS >= 90. */
CapacityOutcome
findCapacity(const PolicyCell &cell, std::size_t frames,
             std::size_t limit)
{
    CapacityOutcome out;
    for (std::size_t n = 1; n <= limit; n++) {
        const collab::SessionResult r =
            collab::runSession(makeConfig(cell, n, frames));
        out.sessions++;
        if (cell.admission)
            out.admMisses += r.serveCounters.deadlineMisses;
        if (r.worstUserFps() >= 90.0)
            out.capacity = n;
        else
            break;
    }
    out.hitLimit = out.capacity == limit;
    return out;
}

/** Worst per-user p99 queue wait across the session, seconds. */
Seconds
worstP99Wait(const collab::SessionResult &r)
{
    Seconds worst = 0.0;
    for (const auto &slo : r.perUserSlo)
        worst = std::max(worst, slo.p99QueueWait);
    return worst;
}

// ------------------------------------------------------------------
// --large: event-engine scale sweep + calibrated capacity model.
// ------------------------------------------------------------------

/** The --large operating point: EDF + admission on one shard (the
 *  per-shard capacity is what the model calibrates), pool-bound as
 *  above.  Engine and telemetry vary per phase. */
collab::SessionConfig
largeConfig(std::size_t users, std::size_t frames,
            collab::SessionEngine engine, bool aggregate)
{
    collab::SessionConfig cfg;
    cfg.benchmark = "HL2-H";
    cfg.design = collab::SessionDesign::Served;
    cfg.engine = engine;
    cfg.aggregateTelemetry = aggregate;
    cfg.users = users;
    cfg.numFrames = frames;
    cfg.totalChiplets = 4;
    cfg.chipletsPerRequest = 2;
    cfg.serverEgress = fromMbps(2000.0);
    cfg.serving.scheduler.policy = serve::SchedulerPolicy::Edf;
    cfg.serving.admission.enabled = true;
    return cfg;
}

/** Byte-faithful digest of an aggregate-telemetry session. */
std::string
aggregateDigest(const collab::SessionResult &r)
{
    const collab::SessionAggregate &a = r.aggregate;
    std::ostringstream os;
    os << std::hexfloat << a.users << ';' << a.framesPerUser << ';'
       << a.meanFps << ';' << a.worstUserFps << ';' << a.meanMtp
       << ';' << a.fpsCompliance << ';' << a.bytesPerFrame << ';'
       << a.horizon << ';' << a.p50QueueWait << ';' << a.p99QueueWait
       << ';' << a.deadlineMissRate << ';' << a.shedFrames << ';'
       << a.downgradedFrames << ';' << r.serveCounters.submitted
       << ';' << r.serveCounters.admitted << ';'
       << r.serveCounters.shed << ';' << r.serveCounters.downgraded
       << ';' << r.serveCounters.deadlineMisses << ';'
       << r.egressUtilisation << ';' << r.serverUtilisation;
    for (const double u : r.shardUtilisation)
        os << ';' << u;
    return os.str();
}

/**
 * Oracle gate: before trusting the event engine at 10k users, pin it
 * bit-identical to the lockstep loop at a size the lockstep engine
 * can afford — full telemetry digests must match byte for byte, and
 * the aggregate-telemetry summaries must equal the full-telemetry
 * accessors bitwise.
 */
bool
runOracleGate(std::size_t frames)
{
    bool ok = true;
    const std::size_t users = 6;

    const collab::SessionResult lockstep = collab::runSession(
        largeConfig(users, frames, collab::SessionEngine::Lockstep,
                    /*aggregate=*/false));
    const collab::SessionResult event = collab::runSession(
        largeConfig(users, frames, collab::SessionEngine::Event,
                    /*aggregate=*/false));
    if (digest(lockstep) != digest(event)) {
        std::cerr << "FAIL: event engine diverges from the lockstep"
                     " oracle at " << users << " users\n";
        ok = false;
    }

    const collab::SessionResult agg = collab::runSession(
        largeConfig(users, frames, collab::SessionEngine::Event,
                    /*aggregate=*/true));
    const bool summaries_equal =
        agg.meanFps() == event.meanFps() &&
        agg.worstUserFps() == event.worstUserFps() &&
        agg.meanMtp() == event.meanMtp() &&
        agg.fpsCompliance() == event.fpsCompliance() &&
        agg.aggregateBytesPerFrame() ==
            event.aggregateBytesPerFrame() &&
        agg.serveCounters.admitted == event.serveCounters.admitted &&
        agg.serveCounters.shed == event.serveCounters.shed;
    if (!summaries_equal) {
        std::cerr << "FAIL: aggregate telemetry diverges from the"
                     " full-telemetry accessors\n";
        ok = false;
    }
    std::cout << "oracle gate: event==lockstep "
              << (ok ? "OK" : "FAILED") << " (" << users << " users, "
              << frames << " frames, full + aggregate telemetry)\n";
    return ok;
}

/** One sweep cell's outcome (aggregate session + wall time). */
struct LargeCell
{
    collab::SessionResult result;
    double wallSeconds = 0.0;
};

/** The calibrated capacity model (requests/second of sim time). */
struct CapacityModel
{
    double muPerShard = 0.0;     ///< admitted throughput per shard
    double lambdaPerUser = 0.0;  ///< per-user submit rate
    double predictedAdmitted = 0.0;  ///< for the largest cell
    double relativeError = 0.0;

    /** Shards needed to admit every request from @p users users. */
    std::uint64_t shardsFor(double users) const
    {
        return static_cast<std::uint64_t>(
            std::ceil(users * lambdaPerUser / muPerShard));
    }
};

int
runLarge(bool quick, const std::string &json_path)
{
    bench::printHeader(
        "fleet capacity --large — event-engine scale sweep");

    const std::size_t frames = quick ? 24 : 48;
    const std::vector<std::size_t> grid =
        quick ? std::vector<std::size_t>{40, 120, 400}
              : std::vector<std::size_t>{100, 300, 1000, 3000, 10000};
    const std::size_t scale_target = quick ? 400 : 10000;

    bool ok = runOracleGate(quick ? 24 : 40);

    // The sweep runs three times — at 1, 2 and 8 worker threads —
    // and every cell must digest byte-identically: with ~10k
    // single-threaded event queues fanned out across workers,
    // bit-exactness is the proof that no shared mutable state leaks
    // between sessions.  The 1-thread pass is the reporting
    // baseline.
    const auto sweep = [&grid, frames](std::size_t threads) {
        return sim::runParallel(
            grid.size(),
            [&grid, frames](std::size_t i) {
                using clock = std::chrono::steady_clock;
                LargeCell cell;
                const auto t0 = clock::now();
                cell.result = collab::runSession(largeConfig(
                    grid[i], frames, collab::SessionEngine::Event,
                    /*aggregate=*/true));
                cell.wallSeconds = std::chrono::duration<double>(
                                       clock::now() - t0)
                                       .count();
                return cell;
            },
            threads);
    };

    const std::vector<LargeCell> baseline = sweep(1);
    bool bit_exact = true;
    for (const std::size_t threads : {2u, 8u}) {
        const std::vector<LargeCell> rerun = sweep(threads);
        for (std::size_t i = 0; i < grid.size(); i++) {
            if (aggregateDigest(baseline[i].result) !=
                aggregateDigest(rerun[i].result)) {
                std::cerr << "FAIL: " << grid[i]
                          << "-user cell is not bit-exact at "
                          << threads << " worker threads\n";
                bit_exact = false;
            }
        }
    }
    if (!bit_exact)
        ok = false;

    // Largest cell must actually reach the scale the mode claims.
    if (grid.back() < scale_target) {
        std::cerr << "FAIL: sweep tops out at " << grid.back()
                  << " users (target " << scale_target << ")\n";
        ok = false;
    }

    // Admission contract holds at every scale.
    std::uint64_t adm_misses = 0;
    for (const LargeCell &c : baseline)
        adm_misses += c.result.serveCounters.deadlineMisses;
    if (adm_misses != 0) {
        std::cerr << "FAIL: " << adm_misses
                  << " admitted requests missed their deadline\n";
        ok = false;
    }

    // Calibrate the capacity model.  Every cell saturates the pool
    // (2 concurrent renders vs >=40 users), so admitted/horizon is
    // the shard's service throughput mu; submitted/(users*horizon)
    // is the per-user demand lambda (shed frames fall back to local
    // rendering, so users keep issuing at full rate regardless of
    // saturation).  mu creeps up with saturation depth — a deeper
    // backlog makes admission downgrade more aggressively, shrinking
    // the mean admitted service time — so it is calibrated
    // regime-matched: on the two largest cells BELOW the target,
    // which it must then predict.
    CapacityModel model;
    {
        std::vector<double> mu_rates;
        double lambda_sum = 0.0;
        for (std::size_t i = 0; i < grid.size(); i++) {
            const auto &r = baseline[i].result;
            const double horizon = r.aggregate.horizon;
            lambda_sum +=
                static_cast<double>(r.serveCounters.submitted) /
                (static_cast<double>(grid[i]) * horizon);
            if (i + 1 < grid.size())
                mu_rates.push_back(
                    static_cast<double>(r.serveCounters.admitted) /
                    horizon);
        }
        const std::size_t calib = std::min<std::size_t>(
            2, mu_rates.size());
        for (std::size_t k = mu_rates.size() - calib;
             k < mu_rates.size(); k++)
            model.muPerShard += mu_rates[k];
        model.muPerShard /= static_cast<double>(calib);
        model.lambdaPerUser =
            lambda_sum / static_cast<double>(grid.size());

        const auto &last = baseline.back().result;
        model.predictedAdmitted =
            model.muPerShard * last.aggregate.horizon;
        model.relativeError =
            std::abs(model.predictedAdmitted -
                     static_cast<double>(
                         last.serveCounters.admitted)) /
            static_cast<double>(last.serveCounters.admitted);
    }
    if (!(model.relativeError <= 0.10)) {
        std::cerr << "FAIL: capacity model misses the " << grid.back()
                  << "-user cell by "
                  << TextTable::percent(model.relativeError) << "\n";
        ok = false;
    }

    TextTable sweep_table(
        "Event-engine scale sweep (EDF + admission, 1 shard, " +
        std::to_string(frames) + " frames/user)");
    sweep_table.setHeader({"users", "wall s", "sim fr/s", "mean FPS",
                           "worst FPS", "shed", "adm/s", "p99 wait ms",
                           "pool util"});
    for (std::size_t i = 0; i < grid.size(); i++) {
        const auto &r = baseline[i].result;
        const double sim_frames = static_cast<double>(grid[i]) *
                                  static_cast<double>(frames);
        sweep_table.addRow(
            {std::to_string(grid[i]),
             TextTable::num(baseline[i].wallSeconds, 1),
             TextTable::num(sim_frames / baseline[i].wallSeconds, 0),
             TextTable::num(r.meanFps(), 1),
             TextTable::num(r.worstUserFps(), 1),
             std::to_string(r.serveCounters.shed),
             TextTable::num(
                 static_cast<double>(r.serveCounters.admitted) /
                     r.aggregate.horizon,
                 0),
             TextTable::num(toMs(r.aggregate.p99QueueWait), 2),
             TextTable::percent(r.serverUtilisation)});
    }
    sweep_table.print(std::cout);

    TextTable model_table("Calibrated capacity model (per shard)");
    model_table.setHeader({"quantity", "value"});
    model_table.addRow({"mu (admitted req/s/shard)",
                        TextTable::num(model.muPerShard, 1)});
    model_table.addRow({"lambda (req/s/user)",
                        TextTable::num(model.lambdaPerUser, 1)});
    model_table.addRow(
        {"predicted admitted @" + std::to_string(grid.back()),
         TextTable::num(model.predictedAdmitted, 0)});
    model_table.addRow(
        {"actual admitted @" + std::to_string(grid.back()),
         std::to_string(
             baseline.back().result.serveCounters.admitted)});
    model_table.addRow({"relative error",
                        TextTable::percent(model.relativeError)});
    model_table.addRow({"shards to admit 100k users",
                        std::to_string(model.shardsFor(1e5))});
    model_table.addRow({"shards to admit 1M users",
                        std::to_string(model.shardsFor(1e6))});
    model_table.print(std::cout);

    std::cout << "\nReading: one pool-bound shard admits a fixed"
                 " mu requests/s no matter how many users contend"
                 " for it — demand above that is shed to local"
                 " fallback, which is why worst-user FPS stays near"
                 " 90 Hz even at 10k users while the admitted share"
                 " collapses.  Serving a planet-scale fleet is"
                 " therefore a sharding problem: users*lambda/mu"
                 " shards, with the event engine making the 10k-user"
                 " calibration runs tractable (O(users) memory,"
                 " O(log pending) scheduling).\n";

    std::ofstream os(json_path);
    if (!os) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    os << "{\n  \"bench\": \"fleet_capacity_large\",\n"
       << "  \"frames\": " << frames << ",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"scale_target_users\": " << scale_target << ",\n"
       << "  \"bit_exact_across_threads\": "
       << (bit_exact ? "true" : "false") << ",\n"
       << "  \"admitted_deadline_misses\": " << adm_misses << ",\n"
       << "  \"model\": {\"mu_per_shard\": " << model.muPerShard
       << ", \"lambda_per_user\": " << model.lambdaPerUser
       << ", \"predicted_admitted\": " << model.predictedAdmitted
       << ", \"relative_error\": " << model.relativeError
       << ", \"shards_100k\": " << model.shardsFor(1e5)
       << ", \"shards_1m\": " << model.shardsFor(1e6) << "},\n"
       << "  \"cells\": [\n";
    for (std::size_t i = 0; i < grid.size(); i++) {
        const auto &r = baseline[i].result;
        os << "    {\"users\": " << grid[i]
           << ", \"wall_seconds\": " << baseline[i].wallSeconds
           << ", \"mean_fps\": " << r.meanFps()
           << ", \"worst_fps\": " << r.worstUserFps()
           << ", \"fps_compliance\": " << r.fpsCompliance()
           << ", \"horizon_s\": " << r.aggregate.horizon
           << ", \"submitted\": " << r.serveCounters.submitted
           << ", \"admitted\": " << r.serveCounters.admitted
           << ", \"shed\": " << r.serveCounters.shed
           << ", \"downgraded\": " << r.serveCounters.downgraded
           << ", \"p99_wait_ms\": "
           << toMs(r.aggregate.p99QueueWait)
           << ", \"pool_utilisation\": " << r.serverUtilisation
           << "}" << (i + 1 < grid.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
    return ok ? 0 : 1;
}

// ------------------------------------------------------------------
// --open-loop: arrival-driven fleet bench (flash-crowd MMPP trace,
// bounded-load balancing, shard scaling).
// ------------------------------------------------------------------

/** Per-shard offered load (users/s of sim time): the calm MMPP state
 *  and the flash-crowd burst state.  Rates scale with the shard
 *  count while the state *chain* stays seed-identical, so every
 *  shard count faces the same burst timeline at matched per-shard
 *  intensity. */
constexpr double kCalmUsersPerShard = 30.0;
constexpr double kFlashUsersPerShard = 150.0;

/** One open-loop cell: MMPP flash crowd, heterogeneous scene mix,
 *  roaming users, hardware scaled with the shard count. */
collab::SessionConfig
openLoopConfig(std::uint32_t shards, serve::BalancerPolicy policy,
               Seconds horizon, std::uint64_t seed)
{
    collab::SessionConfig cfg;
    cfg.benchmark = "HL2-H";
    cfg.design = collab::SessionDesign::Served;
    cfg.engine = collab::SessionEngine::Event;
    cfg.aggregateTelemetry = true;
    cfg.users = 1;   // ignored: the arrival process sizes the
    cfg.numFrames = 1;  // population and per-user session lengths
    cfg.totalChiplets = 4 * shards;
    cfg.chipletsPerRequest = 2;
    cfg.serverEgress = fromMbps(2000.0 * shards);
    cfg.serving.shards = shards;
    cfg.serving.balancer.policy = policy;
    cfg.serving.scheduler.policy = serve::SchedulerPolicy::Edf;
    cfg.serving.admission.enabled = true;
    cfg.seed = seed;

    cfg.openLoop.enabled = true;
    cfg.openLoop.horizon = horizon;
    core::ArrivalConfig &a = cfg.openLoop.arrivals;
    a.kind = core::ArrivalKind::Mmpp;
    const double s = static_cast<double>(shards);
    a.states = {{kCalmUsersPerShard * s, 1.0},
                {kFlashUsersPerShard * s, 0.25}};
    a.minFrames = 8;
    a.maxFrames = 24;
    a.roamRate = 0.3;
    a.mix = {{"HL2-H", 2.0}, {"Doom3-H", 1.0}, {"Viking", 1.0}};
    a.seed = seed;  // shared across cells: ONE flash-crowd trace
    return cfg;
}

/** Byte-faithful digest including the open-loop lifecycle stats. */
std::string
openDigest(const collab::SessionResult &r)
{
    std::ostringstream os;
    os << aggregateDigest(r) << ';' << std::hexfloat
       << r.openLoop.arrivals << ';' << r.openLoop.departures << ';'
       << r.openLoop.roams << ';' << r.openLoop.meanActiveUsers
       << ';' << r.openLoop.peakActiveUsers << ';'
       << r.serveCounters.scaleEvents << ';'
       << r.serveCounters.retiredShards;
    return os.str();
}

int
runOpenLoop(bool quick, const std::string &json_path)
{
    bench::printHeader(
        "fleet capacity --open-loop — arrival-driven flash crowds");

    const Seconds horizon = quick ? 1.5 : 3.0;
    const std::uint64_t seed = 2026;

    // Phase 1 — balancer duel at fixed hardware (4 shards) under the
    // same flash-crowd trace.  The legacy unbounded rendezvous hash
    // is kept as the regression cell: PR 5 measured a 360-vs-7 shed
    // gap against JSQ because it ignored queue depth.
    struct DuelCell
    {
        std::string name;
        serve::BalancerPolicy balancer;
    };
    const std::vector<DuelCell> duel = {
        {"jsq", serve::BalancerPolicy::JoinShortestQueue},
        {"bounded-ch", serve::BalancerPolicy::BoundedLoadConsistentHash},
        {"p2c", serve::BalancerPolicy::PowerOfTwoChoices},
        {"hash", serve::BalancerPolicy::HashUser},
        {"hash-unbounded", serve::BalancerPolicy::HashUserUnbounded},
    };
    const std::uint32_t duel_shards = 4;

    // Phase 2 — shard scaling under bounded-load consistent hashing:
    // per-shard capacity must hold steady as the fleet and the
    // offered load scale together from 2 to 64 shards (quick: 8).
    const std::vector<std::uint32_t> scale_grid =
        quick ? std::vector<std::uint32_t>{2, 8}
              : std::vector<std::uint32_t>{2, 8, 64};

    // One flat cell list so a single runParallel sweep covers both
    // phases; rerun at 2 and 8 workers for the bit-exact gate.
    struct OpenCell
    {
        std::string name;
        std::uint32_t shards;
        serve::BalancerPolicy balancer;
    };
    std::vector<OpenCell> cells;
    for (const DuelCell &d : duel)
        cells.push_back({d.name, duel_shards, d.balancer});
    for (const std::uint32_t n : scale_grid)
        cells.push_back(
            {"scale-" + std::to_string(n) + "x", n,
             serve::BalancerPolicy::BoundedLoadConsistentHash});

    const auto sweep = [&cells, horizon, seed](std::size_t threads) {
        return sim::runParallel(
            cells.size(),
            [&cells, horizon, seed](std::size_t i) {
                using clock = std::chrono::steady_clock;
                LargeCell cell;
                const auto t0 = clock::now();
                cell.result = collab::runSession(openLoopConfig(
                    cells[i].shards, cells[i].balancer, horizon,
                    seed));
                cell.wallSeconds = std::chrono::duration<double>(
                                       clock::now() - t0)
                                       .count();
                return cell;
            },
            threads);
    };

    bool ok = true;
    const std::vector<LargeCell> baseline = sweep(1);

    // Acceptance 1 — determinism: byte-identical at 1/2/8 workers.
    bool bit_exact = true;
    for (const std::size_t threads : {2u, 8u}) {
        const std::vector<LargeCell> rerun = sweep(threads);
        for (std::size_t i = 0; i < cells.size(); i++) {
            if (openDigest(baseline[i].result) !=
                openDigest(rerun[i].result)) {
                std::cerr << "FAIL: cell '" << cells[i].name
                          << "' is not bit-exact at " << threads
                          << " worker threads\n";
                bit_exact = false;
            }
        }
    }
    if (!bit_exact)
        ok = false;

    // Acceptance 2 — the admission contract holds under open-loop
    // bursts: zero admitted requests miss their render deadline.
    std::uint64_t adm_misses = 0;
    for (const LargeCell &c : baseline)
        adm_misses += c.result.serveCounters.deadlineMisses;
    if (adm_misses != 0) {
        std::cerr << "FAIL: " << adm_misses
                  << " admitted requests missed their deadline\n";
        ok = false;
    }

    // Acceptance 3 — bounded-load consistent hashing sheds no more
    // than twice JSQ under the flash crowd (the gap the unbounded
    // hash left open).  The duel must actually stress the balancers:
    // JSQ itself has to shed under the bursts for 2x to mean
    // anything.
    const std::uint64_t shed_jsq =
        baseline[0].result.serveCounters.shed;
    const std::uint64_t shed_ch =
        baseline[1].result.serveCounters.shed;
    if (shed_jsq < 1) {
        std::cerr << "FAIL: flash crowd too mild — JSQ shed nothing,"
                     " the 2x criterion is vacuous\n";
        ok = false;
    }
    if (shed_ch > 2 * shed_jsq) {
        std::cerr << "FAIL: bounded-load CH shed " << shed_ch
                  << " > 2x JSQ (" << shed_jsq << ")\n";
        ok = false;
    }

    // Acceptance 4 — per-shard capacity holds across the scaling
    // grid: admitted/(horizon*shards) within 10% of the smallest
    // fleet's, under the same per-shard offered load and the same
    // burst timeline.
    const std::size_t scale0 = duel.size();
    const auto perShard = [&](std::size_t i) {
        const auto &r = baseline[i].result;
        return static_cast<double>(r.serveCounters.admitted) /
               (r.aggregate.horizon *
                static_cast<double>(cells[i].shards));
    };
    const double ref_rate = perShard(scale0);
    double worst_scale_err = 0.0;
    for (std::size_t i = scale0; i < cells.size(); i++) {
        const double err =
            std::abs(perShard(i) - ref_rate) / ref_rate;
        worst_scale_err = std::max(worst_scale_err, err);
        if (!(err <= 0.10)) {
            std::cerr << "FAIL: per-shard capacity at "
                      << cells[i].shards << " shards drifts "
                      << TextTable::percent(err)
                      << " from the " << cells[scale0].shards
                      << "-shard reference\n";
            ok = false;
        }
    }

    // Lifecycle sanity: every arrival departs in every cell.
    for (std::size_t i = 0; i < cells.size(); i++) {
        const auto &ol = baseline[i].result.openLoop;
        if (ol.arrivals == 0 || ol.departures != ol.arrivals) {
            std::cerr << "FAIL: cell '" << cells[i].name << "' left "
                      << (ol.arrivals - ol.departures)
                      << " sessions undrained\n";
            ok = false;
        }
    }

    TextTable duel_table(
        "Balancer duel under one flash-crowd trace (" +
        std::to_string(duel_shards) + " shards, MMPP " +
        TextTable::num(kCalmUsersPerShard, 0) + "/" +
        TextTable::num(kFlashUsersPerShard, 0) + " users/s/shard)");
    duel_table.setHeader({"balancer", "arrivals", "peak act",
                          "mean act", "shed", "downgr", "worst FPS",
                          "p99 wait ms", "pool util"});
    for (std::size_t i = 0; i < duel.size(); i++) {
        const auto &r = baseline[i].result;
        duel_table.addRow(
            {cells[i].name, std::to_string(r.openLoop.arrivals),
             std::to_string(r.openLoop.peakActiveUsers),
             TextTable::num(r.openLoop.meanActiveUsers, 1),
             std::to_string(r.serveCounters.shed),
             std::to_string(r.serveCounters.downgraded),
             TextTable::num(r.worstUserFps(), 1),
             TextTable::num(toMs(r.aggregate.p99QueueWait), 2),
             TextTable::percent(r.serverUtilisation)});
    }
    duel_table.print(std::cout);

    TextTable scale_table(
        "Shard scaling under bounded-load CH (load and hardware "
        "scale together)");
    scale_table.setHeader({"shards", "arrivals", "admitted",
                           "adm/s/shard", "shed", "worst FPS",
                           "pool util", "wall s"});
    for (std::size_t i = scale0; i < cells.size(); i++) {
        const auto &r = baseline[i].result;
        scale_table.addRow(
            {std::to_string(cells[i].shards),
             std::to_string(r.openLoop.arrivals),
             std::to_string(r.serveCounters.admitted),
             TextTable::num(perShard(i), 0),
             std::to_string(r.serveCounters.shed),
             TextTable::num(r.worstUserFps(), 1),
             TextTable::percent(r.serverUtilisation),
             TextTable::num(baseline[i].wallSeconds, 1)});
    }
    scale_table.print(std::cout);

    std::cout << "\nReading: the open loop decouples demand from"
                 " service — users arrive on an MMPP burst schedule"
                 " whether or not the fleet keeps up, so flash crowds"
                 " hit as transient overload instead of the closed"
                 " loop's self-throttling backlog.  Bounded-load"
                 " consistent hashing keeps per-user shard affinity"
                 " yet spills past any shard above c*mean load, which"
                 " holds its shed within 2x of queue-depth-aware JSQ;"
                 " the legacy unbounded hash pins hot keys and sheds"
                 " whatever its overloaded shard cannot absorb."
                 "  Scaling rates and hardware together keeps"
                 " per-shard admitted throughput flat, so fleet"
                 " sizing stays a per-shard-capacity calculation"
                 " even under bursty arrivals.\n";

    std::ofstream os(json_path);
    if (!os) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    os << "{\n  \"bench\": \"fleet_openloop\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"horizon_s\": " << horizon << ",\n"
       << "  \"bit_exact_across_threads\": "
       << (bit_exact ? "true" : "false") << ",\n"
       << "  \"admitted_deadline_misses\": " << adm_misses << ",\n"
       << "  \"shed_jsq\": " << shed_jsq << ",\n"
       << "  \"shed_bounded_ch\": " << shed_ch << ",\n"
       << "  \"worst_per_shard_capacity_error\": " << worst_scale_err
       << ",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); i++) {
        const auto &r = baseline[i].result;
        os << "    {\"cell\": \"" << cells[i].name
           << "\", \"shards\": " << cells[i].shards
           << ", \"balancer\": \""
           << serve::balancerPolicyName(cells[i].balancer)
           << "\", \"arrivals\": " << r.openLoop.arrivals
           << ", \"departures\": " << r.openLoop.departures
           << ", \"roams\": " << r.openLoop.roams
           << ", \"peak_active\": " << r.openLoop.peakActiveUsers
           << ", \"mean_active\": " << r.openLoop.meanActiveUsers
           << ", \"submitted\": " << r.serveCounters.submitted
           << ", \"admitted\": " << r.serveCounters.admitted
           << ", \"shed\": " << r.serveCounters.shed
           << ", \"downgraded\": " << r.serveCounters.downgraded
           << ", \"worst_fps\": " << r.worstUserFps()
           << ", \"p99_wait_ms\": "
           << toMs(r.aggregate.p99QueueWait)
           << ", \"pool_utilisation\": " << r.serverUtilisation
           << ", \"wall_seconds\": " << baseline[i].wallSeconds
           << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
    return ok ? 0 : 1;
}

}  // namespace

int
main(int argc, char **argv)
{
    using namespace qvr;
    using namespace qvr::bench;

    bool quick = false;
    bool large = false;
    bool open_loop = false;
    std::string json_path;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--large") {
            large = true;
        } else if (arg == "--open-loop") {
            open_loop = true;
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::cerr << "usage: bench_fleet_capacity [--quick]"
                         " [--large] [--open-loop] [--json <path>]\n";
            return 2;
        }
    }
    if (json_path.empty())
        json_path = open_loop ? "BENCH_fleet_openloop.json"
                  : large    ? "BENCH_fleet_capacity_large.json"
                             : "BENCH_fleet_capacity.json";

    if (open_loop)
        return runOpenLoop(quick, json_path);
    if (large)
        return runLarge(quick, json_path);

    printHeader("fleet capacity — serving policies at equal silicon");

    const std::size_t frames = quick ? 120 : 240;
    const std::size_t limit = quick ? 16 : 20;
    const std::size_t detail_users = 10;

    const std::vector<PolicyCell> cells = {
        {"fifo", serve::SchedulerPolicy::Fifo, false, false},
        {"edf", serve::SchedulerPolicy::Edf, false, false},
        {"sjf", serve::SchedulerPolicy::Sjf, false, false},
        {"edf+adm", serve::SchedulerPolicy::Edf, true, false},
        {"edf+adm+batch", serve::SchedulerPolicy::Edf, true, true},
        {"edf+adm 2xJSQ", serve::SchedulerPolicy::Edf, true, false, 2,
         serve::BalancerPolicy::JoinShortestQueue},
        {"edf+adm 2xHash", serve::SchedulerPolicy::Edf, true, false, 2,
         serve::BalancerPolicy::HashUser},
    };

    // Capacity sweeps are independent per policy; fan them out.
    const auto capacities =
        sim::runParallel(cells.size(), [&](std::size_t i) {
            return findCapacity(cells[i], frames, limit);
        });

    // Fixed-load detail grid — also the determinism witness: rerun
    // it at 1/2/8 worker threads and demand identical bytes.
    const auto runDetail = [&](std::size_t threads) {
        return sim::runParallel(
            cells.size(),
            [&](std::size_t i) {
                return collab::runSession(
                    makeConfig(cells[i], detail_users, frames));
            },
            threads);
    };
    const auto detail = runDetail(0);
    bool bit_exact = true;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        const auto rerun = runDetail(threads);
        for (std::size_t i = 0; i < cells.size(); i++) {
            if (digest(detail[i]) != digest(rerun[i])) {
                std::cerr << "FAIL: cell '" << cells[i].name
                          << "' is not bit-exact at " << threads
                          << " worker threads\n";
                bit_exact = false;
            }
        }
    }

    TextTable cap_table(
        "90 Hz user capacity per serving policy (4 chiplets, 2 per "
        "request, 2 Gbps egress, " +
        std::to_string(frames) + " frames)");
    cap_table.setHeader(
        {"policy", "shards", "balancer", "capacity @90"});
    for (std::size_t i = 0; i < cells.size(); i++) {
        cap_table.addRow(
            {cells[i].name, std::to_string(cells[i].shards),
             serve::balancerPolicyName(cells[i].balancer),
             std::to_string(capacities[i].capacity) +
                 (capacities[i].hitLimit ? "+" : "")});
    }
    cap_table.print(std::cout);

    TextTable det_table("Serving telemetry at " +
                        std::to_string(detail_users) + " users");
    det_table.setHeader({"policy", "worst FPS", "MTP ms", "p99 wait ms",
                         "shed", "downgr", "batched", "misses",
                         "pool util"});
    std::uint64_t adm_misses = 0;
    for (std::size_t i = 0; i < cells.size(); i++) {
        const collab::SessionResult &r = detail[i];
        if (cells[i].admission)
            adm_misses += r.serveCounters.deadlineMisses;
        det_table.addRow(
            {cells[i].name, TextTable::num(r.worstUserFps(), 1),
             TextTable::num(toMs(r.meanMtp()), 1),
             TextTable::num(toMs(worstP99Wait(r)), 2),
             std::to_string(r.serveCounters.shed),
             std::to_string(r.serveCounters.downgraded),
             std::to_string(r.serveCounters.batchedRequests),
             std::to_string(r.serveCounters.deadlineMisses),
             TextTable::percent(r.serverUtilisation)});
    }
    det_table.print(std::cout);

    // Acceptance 1: EDF + admission beats the FIFO baseline by at
    // least one user on identical hardware.
    bool ok = true;
    const std::size_t cap_fifo = capacities[0].capacity;
    const std::size_t cap_edf_adm = capacities[3].capacity;
    if (cap_edf_adm < cap_fifo + 1) {
        std::cerr << "FAIL: edf+adm capacity (" << cap_edf_adm
                  << ") does not beat fifo (" << cap_fifo << ")\n";
        ok = false;
    }

    // Acceptance 2: zero admitted-request deadline misses in every
    // admission-enabled session this bench ran.
    for (std::size_t i = 0; i < cells.size(); i++)
        if (cells[i].admission)
            adm_misses += capacities[i].admMisses;
    if (adm_misses != 0) {
        std::cerr << "FAIL: " << adm_misses
                  << " admitted requests missed their deadline under"
                     " admission control\n";
        ok = false;
    }

    // Acceptance 3: thread-count invariance (checked above).
    if (!bit_exact)
        ok = false;

    std::cout << "\nReading: past the pool's throughput, FIFO/EDF"
                 " backlogs snowball — completions drift later every"
                 " round and the whole session sinks below 90 Hz."
                 "  Admission control sheds or downgrades exactly the"
                 " requests that cannot make their deadline, so the"
                 " pool never builds a backlog and capacity moves up"
                 " to the next bottleneck; contention-gated batching"
                 " buys back sync overhead on top.  Splitting the same"
                 " silicon into two shards costs statistical"
                 " multiplexing either way, but the bounded-load hash"
                 " now spills past an overloaded home shard instead of"
                 " shedding on it, so its shed count tracks JSQ's"
                 " (the legacy unbounded pathology is pinned in"
                 " tests/serve/test_balancer.cpp and measured by"
                 " --open-loop's hash-unbounded cell).\n";

    std::ofstream os(json_path);
    if (!os) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    os << "{\n  \"bench\": \"fleet_capacity\",\n"
       << "  \"frames\": " << frames << ",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"search_limit\": " << limit << ",\n"
       << "  \"bit_exact_across_threads\": "
       << (bit_exact ? "true" : "false") << ",\n"
       << "  \"admitted_deadline_misses\": " << adm_misses << ",\n"
       << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); i++) {
        const collab::SessionResult &r = detail[i];
        os << "    {\"policy\": \"" << cells[i].name
           << "\", \"shards\": " << cells[i].shards
           << ", \"capacity_90hz\": " << capacities[i].capacity
           << ", \"hit_limit\": "
           << (capacities[i].hitLimit ? "true" : "false")
           << ", \"detail_users\": " << detail_users
           << ", \"worst_fps\": " << r.worstUserFps()
           << ", \"mean_mtp_ms\": " << toMs(r.meanMtp())
           << ", \"p99_wait_ms\": "
           << toMs(worstP99Wait(r))
           << ", \"shed\": " << r.serveCounters.shed
           << ", \"downgraded\": " << r.serveCounters.downgraded
           << ", \"batched_requests\": "
           << r.serveCounters.batchedRequests
           << ", \"deadline_misses\": "
           << r.serveCounters.deadlineMisses
           << ", \"pool_utilisation\": " << r.serverUtilisation
           << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
    return ok ? 0 : 1;
}
