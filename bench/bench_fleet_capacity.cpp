/**
 * @file
 * Fleet-capacity benchmark: how many 90 Hz users one chiplet pool
 * sustains under each serving policy, at equal hardware.
 *
 * The multiuser bench showed the default session is egress-bound; this
 * bench pins a pool-bound operating point (4 chiplets, 2 per request,
 * 2 Gbps egress) so the *scheduling* policy decides capacity, and
 * sweeps the qvr::serve stack: FIFO (the pre-serve baseline), EDF and
 * SJF orderings, deadline-aware admission control, cross-user
 * batching, and 2-shard fleets under both balancers.
 *
 * Self-verifying acceptance criteria (exit 1 on violation):
 *  1. EDF + admission sustains strictly more 90 Hz users than FIFO
 *     (at least FIFO capacity + 1) on identical silicon;
 *  2. admission control's contract holds: across every admission-
 *     enabled session this bench runs, zero admitted requests miss
 *     their render deadline;
 *  3. the policy grid is bit-exact across 1/2/8 worker threads and
 *     across repeated runs.
 *
 * Output: TextTables on stdout and BENCH_fleet_capacity.json (path
 * overridable with --json <path>); --quick shrinks the run for the
 * CI smoke check (`perf` CTest label).
 */

#include "bench_util.hpp"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "collab/session.hpp"

namespace
{

using namespace qvr;

struct PolicyCell
{
    std::string name;
    serve::SchedulerPolicy policy = serve::SchedulerPolicy::Fifo;
    bool admission = false;
    bool batching = false;
    std::uint32_t shards = 1;
    serve::BalancerPolicy balancer =
        serve::BalancerPolicy::JoinShortestQueue;
};

/** Pool-bound operating point: the chiplet pool (2 concurrent
 *  renders), not the egress pipe, is the scarce resource. */
collab::SessionConfig
makeConfig(const PolicyCell &cell, std::size_t users,
           std::size_t frames)
{
    collab::SessionConfig cfg;
    cfg.benchmark = "HL2-H";
    cfg.design = collab::SessionDesign::Served;
    cfg.users = users;
    cfg.numFrames = frames;
    cfg.totalChiplets = 4;
    cfg.chipletsPerRequest = 2;
    cfg.serverEgress = fromMbps(2000.0);
    cfg.serving.scheduler.policy = cell.policy;
    cfg.serving.admission.enabled = cell.admission;
    cfg.serving.batching.enabled = cell.batching;
    cfg.serving.shards = cell.shards;
    cfg.serving.balancer = cell.balancer;
    return cfg;
}

/** Byte-faithful digest of a session (hexfloat: no rounding). */
std::string
digest(const collab::SessionResult &r)
{
    std::ostringstream os;
    os << std::hexfloat;
    for (const auto &u : r.perUser) {
        for (const auto &f : u.frames) {
            os << f.displayTime << ';' << f.mtpLatency << ';'
               << f.frameInterval << ';' << f.transmittedBytes << ';'
               << f.serveQueueWait << ';' << f.serveAdmitted << ';'
               << f.serveDeadlineMet << ';' << f.degradationLevel
               << ';' << f.localFallback << '\n';
        }
    }
    os << r.serveCounters.submitted << ';' << r.serveCounters.admitted
       << ';' << r.serveCounters.shed << ';'
       << r.serveCounters.downgraded << ';'
       << r.serveCounters.deadlineMisses << ';'
       << r.serveCounters.batches << ';'
       << r.serveCounters.batchedRequests << '\n';
    return os.str();
}

struct CapacityOutcome
{
    std::size_t capacity = 0;       ///< users sustained at 90 Hz
    bool hitLimit = false;          ///< capacity == search limit
    std::uint64_t admMisses = 0;    ///< admission-enabled misses
    std::uint64_t sessions = 0;
};

/** Step-1 capacity search: largest n with worst-user FPS >= 90. */
CapacityOutcome
findCapacity(const PolicyCell &cell, std::size_t frames,
             std::size_t limit)
{
    CapacityOutcome out;
    for (std::size_t n = 1; n <= limit; n++) {
        const collab::SessionResult r =
            collab::runSession(makeConfig(cell, n, frames));
        out.sessions++;
        if (cell.admission)
            out.admMisses += r.serveCounters.deadlineMisses;
        if (r.worstUserFps() >= 90.0)
            out.capacity = n;
        else
            break;
    }
    out.hitLimit = out.capacity == limit;
    return out;
}

/** Worst per-user p99 queue wait across the session, seconds. */
Seconds
worstP99Wait(const collab::SessionResult &r)
{
    Seconds worst = 0.0;
    for (const auto &slo : r.perUserSlo)
        worst = std::max(worst, slo.p99QueueWait);
    return worst;
}

}  // namespace

int
main(int argc, char **argv)
{
    using namespace qvr;
    using namespace qvr::bench;

    bool quick = false;
    std::string json_path = "BENCH_fleet_capacity.json";
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::cerr << "usage: bench_fleet_capacity [--quick]"
                         " [--json <path>]\n";
            return 2;
        }
    }

    printHeader("fleet capacity — serving policies at equal silicon");

    const std::size_t frames = quick ? 120 : 240;
    const std::size_t limit = quick ? 16 : 20;
    const std::size_t detail_users = 10;

    const std::vector<PolicyCell> cells = {
        {"fifo", serve::SchedulerPolicy::Fifo, false, false},
        {"edf", serve::SchedulerPolicy::Edf, false, false},
        {"sjf", serve::SchedulerPolicy::Sjf, false, false},
        {"edf+adm", serve::SchedulerPolicy::Edf, true, false},
        {"edf+adm+batch", serve::SchedulerPolicy::Edf, true, true},
        {"edf+adm 2xJSQ", serve::SchedulerPolicy::Edf, true, false, 2,
         serve::BalancerPolicy::JoinShortestQueue},
        {"edf+adm 2xHash", serve::SchedulerPolicy::Edf, true, false, 2,
         serve::BalancerPolicy::HashUser},
    };

    // Capacity sweeps are independent per policy; fan them out.
    const auto capacities =
        sim::runParallel(cells.size(), [&](std::size_t i) {
            return findCapacity(cells[i], frames, limit);
        });

    // Fixed-load detail grid — also the determinism witness: rerun
    // it at 1/2/8 worker threads and demand identical bytes.
    const auto runDetail = [&](std::size_t threads) {
        return sim::runParallel(
            cells.size(),
            [&](std::size_t i) {
                return collab::runSession(
                    makeConfig(cells[i], detail_users, frames));
            },
            threads);
    };
    const auto detail = runDetail(0);
    bool bit_exact = true;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        const auto rerun = runDetail(threads);
        for (std::size_t i = 0; i < cells.size(); i++) {
            if (digest(detail[i]) != digest(rerun[i])) {
                std::cerr << "FAIL: cell '" << cells[i].name
                          << "' is not bit-exact at " << threads
                          << " worker threads\n";
                bit_exact = false;
            }
        }
    }

    TextTable cap_table(
        "90 Hz user capacity per serving policy (4 chiplets, 2 per "
        "request, 2 Gbps egress, " +
        std::to_string(frames) + " frames)");
    cap_table.setHeader(
        {"policy", "shards", "balancer", "capacity @90"});
    for (std::size_t i = 0; i < cells.size(); i++) {
        cap_table.addRow(
            {cells[i].name, std::to_string(cells[i].shards),
             serve::balancerPolicyName(cells[i].balancer),
             std::to_string(capacities[i].capacity) +
                 (capacities[i].hitLimit ? "+" : "")});
    }
    cap_table.print(std::cout);

    TextTable det_table("Serving telemetry at " +
                        std::to_string(detail_users) + " users");
    det_table.setHeader({"policy", "worst FPS", "MTP ms", "p99 wait ms",
                         "shed", "downgr", "batched", "misses",
                         "pool util"});
    std::uint64_t adm_misses = 0;
    for (std::size_t i = 0; i < cells.size(); i++) {
        const collab::SessionResult &r = detail[i];
        if (cells[i].admission)
            adm_misses += r.serveCounters.deadlineMisses;
        det_table.addRow(
            {cells[i].name, TextTable::num(r.worstUserFps(), 1),
             TextTable::num(toMs(r.meanMtp()), 1),
             TextTable::num(toMs(worstP99Wait(r)), 2),
             std::to_string(r.serveCounters.shed),
             std::to_string(r.serveCounters.downgraded),
             std::to_string(r.serveCounters.batchedRequests),
             std::to_string(r.serveCounters.deadlineMisses),
             TextTable::percent(r.serverUtilisation)});
    }
    det_table.print(std::cout);

    // Acceptance 1: EDF + admission beats the FIFO baseline by at
    // least one user on identical hardware.
    bool ok = true;
    const std::size_t cap_fifo = capacities[0].capacity;
    const std::size_t cap_edf_adm = capacities[3].capacity;
    if (cap_edf_adm < cap_fifo + 1) {
        std::cerr << "FAIL: edf+adm capacity (" << cap_edf_adm
                  << ") does not beat fifo (" << cap_fifo << ")\n";
        ok = false;
    }

    // Acceptance 2: zero admitted-request deadline misses in every
    // admission-enabled session this bench ran.
    for (std::size_t i = 0; i < cells.size(); i++)
        if (cells[i].admission)
            adm_misses += capacities[i].admMisses;
    if (adm_misses != 0) {
        std::cerr << "FAIL: " << adm_misses
                  << " admitted requests missed their deadline under"
                     " admission control\n";
        ok = false;
    }

    // Acceptance 3: thread-count invariance (checked above).
    if (!bit_exact)
        ok = false;

    std::cout << "\nReading: past the pool's throughput, FIFO/EDF"
                 " backlogs snowball — completions drift later every"
                 " round and the whole session sinks below 90 Hz."
                 "  Admission control sheds or downgrades exactly the"
                 " requests that cannot make their deadline, so the"
                 " pool never builds a backlog and capacity moves up"
                 " to the next bottleneck; contention-gated batching"
                 " buys back sync overhead on top.  Splitting the same"
                 " silicon into two shards costs statistical"
                 " multiplexing: JSQ keeps sheds low but loses"
                 " capacity, while affinity hashing holds FPS by"
                 " shedding far more aggressively on whichever shard"
                 " the hash overloads.\n";

    std::ofstream os(json_path);
    if (!os) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    os << "{\n  \"bench\": \"fleet_capacity\",\n"
       << "  \"frames\": " << frames << ",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"search_limit\": " << limit << ",\n"
       << "  \"bit_exact_across_threads\": "
       << (bit_exact ? "true" : "false") << ",\n"
       << "  \"admitted_deadline_misses\": " << adm_misses << ",\n"
       << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); i++) {
        const collab::SessionResult &r = detail[i];
        os << "    {\"policy\": \"" << cells[i].name
           << "\", \"shards\": " << cells[i].shards
           << ", \"capacity_90hz\": " << capacities[i].capacity
           << ", \"hit_limit\": "
           << (capacities[i].hitLimit ? "true" : "false")
           << ", \"detail_users\": " << detail_users
           << ", \"worst_fps\": " << r.worstUserFps()
           << ", \"mean_mtp_ms\": " << toMs(r.meanMtp())
           << ", \"p99_wait_ms\": "
           << toMs(worstP99Wait(r))
           << ", \"shed\": " << r.serveCounters.shed
           << ", \"downgraded\": " << r.serveCounters.downgraded
           << ", \"batched_requests\": "
           << r.serveCounters.batchedRequests
           << ", \"deadline_misses\": "
           << r.serveCounters.deadlineMisses
           << ", \"pool_utilisation\": " << r.serverUtilisation
           << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
    return ok ? 0 : 1;
}
