/**
 * @file
 * Table 1 reproduction: characterisation of static collaborative VR
 * rendering across the five high-quality VR applications — the
 * interactive-object workload share f, the local rendering latency
 * of the interactive objects (avg/min/max), the compressed background
 * size, and the remote fetch latency under Wi-Fi.  Paper reference
 * values are printed alongside our measurements.
 */

#include "bench_util.hpp"

#include "common/stats.hpp"

int
main()
{
    using namespace qvr;
    using namespace qvr::bench;

    printHeader("Table 1 — static collaborative characterisation");

    TextTable table("Table 1 (measured | paper)");
    table.setHeader({"App", "#Tri", "Interactive", "f range",
                     "avg Tl (ms)", "min Tl", "max Tl",
                     "Back (KB)", "Tremote (ms)"});

    for (const auto &app : scene::table1Apps()) {
        const auto r =
            runCell(core::DesignPoint::Static, app.name);

        RunningStat f_stat, tl, tr, bytes;
        core::ExperimentSpec spec;
        spec.benchmark = app.name;
        spec.numFrames = kFrames;
        const auto workload = core::generateExperimentWorkload(spec);
        for (const auto &w : workload)
            f_stat.add(w.interactiveFraction());
        for (std::size_t i = r.warmupFrames; i < r.frames.size();
             i++) {
            const auto &fr = r.frames[i];
            tl.add(toMs(fr.tLocalRender));
            // Per-fetch network latency (two fetches on a miss).
            tr.add(toMs(fr.tNetwork));
            bytes.add(static_cast<double>(fr.transmittedBytes));
        }

        const auto &ref = *app.table1;
        auto pair = [](const std::string &m, const std::string &p) {
            return m + " | " + p;
        };
        table.addRow(
            {app.name, std::to_string(app.meanTriangles / 1000) + "K",
             app.interactiveObjects,
             pair(TextTable::percent(f_stat.min(), 0) + "-" +
                      TextTable::percent(f_stat.max(), 0),
                  TextTable::percent(ref.fMin, 0) + "-" +
                      TextTable::percent(ref.fMax, 0)),
             pair(TextTable::num(tl.mean(), 1),
                  TextTable::num(ref.tLocalAvgMs, 1)),
             pair(TextTable::num(tl.min(), 1),
                  TextTable::num(ref.tLocalMinMs, 1)),
             pair(TextTable::num(tl.max(), 1),
                  TextTable::num(ref.tLocalMaxMs, 1)),
             pair(TextTable::num(toKiB(static_cast<Bytes>(
                                     bytes.mean() / 2.0)),
                                 0),
                  TextTable::num(toKiB(ref.backgroundBytes), 0)),
             pair(TextTable::num(tr.mean() / 2.0, 1),
                  TextTable::num(ref.tRemoteMs, 1))});
    }
    table.print(std::cout);
    std::cout << "\nNotes: background size/latency are per fetch"
                 " (the harness issues one prefetch per frame plus a"
                 " demand fetch on mispredictions, so per-frame"
                 " traffic is divided by the mean fetch count of"
                 " ~2).\nShape to check: max Tl exceeds the 11 ms"
                 " budget on every app (Challenge I), and background"
                 " fetches cost ~30 ms over Wi-Fi (Challenge II).\n";
    return 0;
}
