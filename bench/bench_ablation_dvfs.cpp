/**
 * @file
 * Ablation: closing the DVFS loop the paper's sensitivity study
 * leaves open.  Fig. 15 observes that statically lowering the GPU
 * clock "will not always increase the energy benefit"; here we
 * compare static clocks against a utilisation-guided governor riding
 * on top of Q-VR, per benchmark.
 */

#include "bench_util.hpp"

#include "core/pipeline_foveated.hpp"
#include "power/dvfs.hpp"

namespace
{

using namespace qvr;
using namespace qvr::bench;

core::PipelineResult
runGoverned(const core::ExperimentSpec &spec,
            double *final_scale = nullptr)
{
    core::FoveatedPipeline p(spec.toConfig(),
                             core::FoveatedPolicy::qvr());
    power::DvfsGovernor governor;
    core::PipelineResult r;
    r.design = "Q-VR+DVFS";
    r.benchmark = spec.benchmark;
    for (const auto &frame :
         core::generateExperimentWorkload(spec)) {
        const core::FrameStats s = p.step(frame);
        r.frames.push_back(s);
        p.setFrequencyScale(governor.update(s.gpuBusy,
                                            s.frameInterval));
    }
    if (final_scale)
        *final_scale = governor.scale();
    return r;
}

core::PipelineResult
runFixedScale(const core::ExperimentSpec &spec, double scale)
{
    auto cfg = spec.toConfig();
    cfg.gpuFrequencyScale = scale;
    core::FoveatedPipeline p(cfg, core::FoveatedPolicy::qvr());
    return p.run(core::generateExperimentWorkload(spec));
}

}  // namespace

int
main()
{
    printHeader("Ablation — static clocks vs DVFS governor (Q-VR)");

    TextTable table("MTP (ms) / energy (mJ/frame) per clock policy");
    table.setHeader({"Benchmark", "500 MHz", "400 MHz", "300 MHz",
                     "governed", "settled clock"});

    const auto &benches = scene::table3Benchmarks();
    const auto rows = sim::runParallel(
        benches.size(),
        [&benches](std::size_t bi) -> std::vector<std::string> {
            const auto &b = benches[bi];
            core::ExperimentSpec spec;
            spec.benchmark = b.name;
            spec.numFrames = 250;

            auto fmt = [](const core::PipelineResult &r) {
                return TextTable::num(toMs(r.meanMtp()), 1) + " / " +
                       TextTable::num(r.meanEnergy() * 1e3, 1);
            };

            double settled = 1.0;
            const auto governed = runGoverned(spec, &settled);
            return {b.name, fmt(runFixedScale(spec, 1.0)),
                    fmt(runFixedScale(spec, 0.8)),
                    fmt(runFixedScale(spec, 0.6)), fmt(governed),
                    TextTable::num(settled * 500.0, 0) + " MHz"};
        });
    for (const auto &row : rows)
        table.addRow(row);
    table.print(std::cout);

    std::cout << "\nReading: static down-clocking trades latency for"
                 " energy blindly (and on LTE-class links loses both,"
                 " per Fig. 15); the governor only sheds frequency"
                 " the balanced pipeline wasn't using.\n";
    return 0;
}
