/**
 * @file
 * Ablation: can better pose prediction save static collaborative
 * rendering?
 *
 * The paper's Challenge II argues that predicting user motion >30 ms
 * ahead "may significantly reduce the prediction accuracy" and that
 * mispredictions trigger even higher latency.  This bench swaps the
 * prototypes' hold-last prefetch for a constant-velocity
 * extrapolator and measures what it buys: the miss rate drops
 * substantially, the end-to-end latency improves some — and the
 * design still loses to Q-VR by a wide margin, because prediction
 * fixes neither the unreduced transmitted data nor the GPU-resident
 * composition.
 */

#include "bench_util.hpp"

#include "core/pipelines_baseline.hpp"

int
main()
{
    using namespace qvr;
    using namespace qvr::bench;

    printHeader("Ablation — prefetch pose prediction (Static)");

    TextTable table("Static with hold-last vs constant-velocity "
                    "prediction (Wi-Fi, 500 MHz)");
    table.setHeader({"Benchmark", "miss% hold", "miss% CV",
                     "MTP hold (ms)", "MTP CV (ms)", "Q-VR (ms)"});

    struct Row
    {
        std::vector<std::string> cells;
        double missHold = 0.0;
        double missCv = 0.0;
    };
    const auto &benches = scene::table3Benchmarks();
    const auto rows = sim::runParallel(
        benches.size(), [&benches](std::size_t bi) {
            const auto &b = benches[bi];
            core::ExperimentSpec spec;
            spec.benchmark = b.name;
            spec.numFrames = 300;
            const auto cfg = spec.toConfig();
            const auto workload =
                core::generateExperimentWorkload(spec);

            core::StaticCollabConfig hold_cfg;
            hold_cfg.predictor = motion::PredictorKind::HoldLast;
            core::StaticPipeline hold(cfg, hold_cfg);
            const auto hold_r = hold.run(workload);

            core::StaticCollabConfig cv_cfg;
            cv_cfg.predictor =
                motion::PredictorKind::ConstantVelocity;
            core::StaticPipeline cv(cfg, cv_cfg);
            const auto cv_r = cv.run(workload);

            const auto qvr =
                core::makePipeline(core::DesignPoint::Qvr, cfg)
                    ->run(workload);

            Row row;
            row.missHold = hold.mispredictRate();
            row.missCv = cv.mispredictRate();
            row.cells = {b.name,
                         TextTable::percent(row.missHold),
                         TextTable::percent(row.missCv),
                         TextTable::num(toMs(hold_r.meanMtp()), 1),
                         TextTable::num(toMs(cv_r.meanMtp()), 1),
                         TextTable::num(toMs(qvr.meanMtp()), 1)};
            return row;
        });

    std::vector<double> miss_hold, miss_cv;
    for (const auto &row : rows) {
        miss_hold.push_back(row.missHold);
        miss_cv.push_back(row.missCv);
        table.addRow(row.cells);
    }
    table.addRow({"MEAN", TextTable::percent(mean(miss_hold)),
                  TextTable::percent(mean(miss_cv)), "", "", ""});
    table.print(std::cout);

    std::cout << "\nReading: extrapolation cuts the miss rate but"
                 " the residual misses cluster exactly where they"
                 " hurt (fast turns, interactions), and the design's"
                 " structural costs — full-resolution background"
                 " traffic, depth-based composition on the GPU —"
                 " are untouched.  Q-VR remains far ahead.\n";
    return 0;
}
