/**
 * @file
 * Ablation: LIWC design-choice sweeps the paper discusses in
 * Section 7 ("Design Choice of LIWC") but does not plot —
 *   (a) the reward parameter alpha of the table-update rule,
 *   (b) the SRAM table depth (quantisation of the motion space),
 *   (c) the delta-tag range.
 * Reported per setting: convergence time (frames until the latency
 * ratio first enters a balanced band), steady-state MTP, and FPS.
 */

#include "bench_util.hpp"

#include "core/pipeline_foveated.hpp"

namespace
{

using namespace qvr;
using namespace qvr::bench;

std::size_t
convergenceFrame(const core::PipelineResult &r)
{
    for (std::size_t i = 0; i < r.frames.size(); i++) {
        const auto &f = r.frames[i];
        if (f.tLocalRender <= 0.0)
            continue;
        const double ratio = f.tRemoteBranch / f.tLocalRender;
        if (ratio > 0.5 && ratio < 2.0)
            return i;
    }
    return r.frames.size();
}

core::PipelineResult
runWith(const std::string &bench, core::LiwcConfig liwc_cfg)
{
    core::ExperimentSpec spec;
    spec.benchmark = bench;
    spec.numFrames = kFrames;
    auto cfg = spec.toConfig();
    cfg.liwcConfig = liwc_cfg;
    core::FoveatedPipeline p(cfg, core::FoveatedPolicy::qvr());
    return p.run(core::generateExperimentWorkload(spec));
}

}  // namespace

int
main()
{
    printHeader("Ablation — LIWC reward rate, table depth, tag range");

    const char *bench = "HL2-H";

    // All three sweeps (5 alphas + 3 depths + 3 ranges) go through
    // the parallel runner as one 11-cell grid, results in cell order.
    const double alphas[] = {0.05, 0.15, 0.30, 0.50, 0.80};
    const std::uint32_t depths[] = {15u, 16u, 17u};
    const int ranges[] = {2, 5, 10};

    std::vector<core::LiwcConfig> cfgs;
    for (double alpha : alphas) {
        core::LiwcConfig cfg;
        cfg.alpha = alpha;
        cfgs.push_back(cfg);
    }
    for (std::uint32_t log2 : depths) {
        core::LiwcConfig cfg;
        cfg.tableDepthLog2 = log2;
        cfgs.push_back(cfg);
    }
    for (int range : ranges) {
        core::LiwcConfig cfg;
        cfg.deltaRange = range;
        cfgs.push_back(cfg);
    }
    const auto results = sim::runParallel(
        cfgs.size(), [&cfgs, bench](std::size_t i) {
            return runWith(bench, cfgs[i]);
        });

    std::size_t idx = 0;
    TextTable alpha_table("(a) reward parameter alpha (HL2-H)");
    alpha_table.setHeader({"alpha", "converge (frames)",
                           "steady MTP (ms)", "FPS"});
    for (double alpha : alphas) {
        const auto &r = results[idx++];
        alpha_table.addRow(
            {TextTable::num(alpha, 2),
             std::to_string(convergenceFrame(r)),
             TextTable::num(toMs(r.meanMtp()), 1),
             TextTable::num(r.meanFps(), 1)});
    }
    alpha_table.print(std::cout);

    TextTable depth_table(
        "(b) SRAM table depth (paper default 2^15 = 64 KB)");
    depth_table.setHeader({"depth", "size", "steady MTP (ms)",
                           "FPS"});
    for (std::uint32_t log2 : depths) {
        const auto &r = results[idx++];
        depth_table.addRow(
            {"2^" + std::to_string(log2),
             std::to_string((1u << log2) * 2 / 1024) + " KB",
             TextTable::num(toMs(r.meanMtp()), 1),
             TextTable::num(r.meanFps(), 1)});
    }
    depth_table.print(std::cout);

    TextTable range_table("(c) delta-tag range (paper: -5..+5 deg)");
    range_table.setHeader({"range", "converge (frames)",
                           "steady MTP (ms)", "FPS"});
    for (int range : ranges) {
        const auto &r = results[idx++];
        range_table.addRow(
            {"+-" + std::to_string(range),
             std::to_string(convergenceFrame(r)),
             TextTable::num(toMs(r.meanMtp()), 1),
             TextTable::num(r.meanFps(), 1)});
    }
    range_table.print(std::cout);

    std::cout << "\nReading: small alpha slows adaptation, large"
                 " alpha chases noise; a deeper table buys nothing"
                 " once the motion codec's 10-bit space is covered;"
                 " a small tag range slows convergence from the"
                 " 5-degree start.\n";
    return 0;
}
