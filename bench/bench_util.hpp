/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: every
 * bench runs design points through the common experiment harness and
 * prints a TextTable mirroring one table/figure of the paper.
 */

#ifndef QVR_BENCH_BENCH_UTIL_HPP
#define QVR_BENCH_BENCH_UTIL_HPP

#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/qvr_system.hpp"

namespace qvr::bench
{

/** Default frame count per experiment cell. */
constexpr std::size_t kFrames = 300;

/** Run one design on one benchmark under an environment. */
inline core::PipelineResult
runCell(core::DesignPoint design, const std::string &benchmark,
        const net::ChannelConfig &channel = net::ChannelConfig::wifi(),
        double freq_scale = 1.0, std::size_t frames = kFrames,
        std::uint64_t seed = 1)
{
    core::ExperimentSpec spec;
    spec.benchmark = benchmark;
    spec.channel = channel;
    spec.gpuFrequencyScale = freq_scale;
    spec.numFrames = frames;
    spec.seed = seed;
    return core::runExperiment(design, spec);
}

/** Run a design on all Table-3 benchmarks. */
inline std::vector<core::PipelineResult>
runTable3(core::DesignPoint design,
          const net::ChannelConfig &channel = net::ChannelConfig::wifi(),
          double freq_scale = 1.0, std::size_t frames = kFrames)
{
    std::vector<core::PipelineResult> out;
    for (const auto &b : scene::table3Benchmarks())
        out.push_back(runCell(design, b.name, channel, freq_scale,
                              frames));
    return out;
}

/** Geometric-mean helper for "average speedup" style rows. */
inline double
mean(const std::vector<double> &xs)
{
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

inline void
printHeader(const std::string &what)
{
    std::cout << "\n### Q-VR reproduction: " << what << " ###\n\n";
}

}  // namespace qvr::bench

#endif  // QVR_BENCH_BENCH_UTIL_HPP
