/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: every
 * bench runs design points through the common experiment harness and
 * prints a TextTable mirroring one table/figure of the paper.
 *
 * Sweep grids are submitted through sim::runParallel, which fans the
 * independent cells across cores (QVR_JOBS overrides the worker
 * count).  Results come back in cell order, and every cell owns its
 * seeded Rng streams, so table output is bit-identical to the old
 * serial loops at any thread count.
 */

#ifndef QVR_BENCH_BENCH_UTIL_HPP
#define QVR_BENCH_BENCH_UTIL_HPP

#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/qvr_system.hpp"
#include "sim/parallel.hpp"

namespace qvr::bench
{

/** Default frame count per experiment cell. */
constexpr std::size_t kFrames = 300;

/** Run one design on one benchmark under an environment. */
inline core::PipelineResult
runCell(core::DesignPoint design, const std::string &benchmark,
        const net::ChannelConfig &channel = net::ChannelConfig::wifi(),
        double freq_scale = 1.0, std::size_t frames = kFrames,
        std::uint64_t seed = 1)
{
    core::ExperimentSpec spec;
    spec.benchmark = benchmark;
    spec.channel = channel;
    spec.gpuFrequencyScale = freq_scale;
    spec.numFrames = frames;
    spec.seed = seed;
    return core::runExperiment(design, spec);
}

/** One sweep cell, for batch submission through runCells(). */
struct Cell
{
    core::DesignPoint design = core::DesignPoint::Qvr;
    std::string benchmark = "Doom3-H";
    net::ChannelConfig channel = net::ChannelConfig::wifi();
    double freqScale = 1.0;
    std::size_t frames = kFrames;
    std::uint64_t seed = 1;
};

/** Run a whole grid of cells across cores, results in cell order. */
inline std::vector<core::PipelineResult>
runCells(const std::vector<Cell> &cells)
{
    return sim::runParallel(cells.size(), [&cells](std::size_t i) {
        const Cell &c = cells[i];
        return runCell(c.design, c.benchmark, c.channel, c.freqScale,
                       c.frames, c.seed);
    });
}

/** Run a design on all Table-3 benchmarks (cells in parallel). */
inline std::vector<core::PipelineResult>
runTable3(core::DesignPoint design,
          const net::ChannelConfig &channel = net::ChannelConfig::wifi(),
          double freq_scale = 1.0, std::size_t frames = kFrames)
{
    std::vector<Cell> cells;
    for (const auto &b : scene::table3Benchmarks())
        cells.push_back({design, b.name, channel, freq_scale, frames, 1});
    return runCells(cells);
}

/** Run several designs over all Table-3 benchmarks as one flat grid;
 *  result index = design_index * numBenchmarks + benchmark_index. */
inline std::vector<core::PipelineResult>
runDesignGrid(const std::vector<core::DesignPoint> &designs,
              const net::ChannelConfig &channel =
                  net::ChannelConfig::wifi(),
              double freq_scale = 1.0, std::size_t frames = kFrames)
{
    std::vector<Cell> cells;
    for (const auto d : designs)
        for (const auto &b : scene::table3Benchmarks())
            cells.push_back({d, b.name, channel, freq_scale, frames, 1});
    return runCells(cells);
}

/** Geometric-mean helper for "average speedup" style rows. */
inline double
mean(const std::vector<double> &xs)
{
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

inline void
printHeader(const std::string &what)
{
    std::cout << "\n### Q-VR reproduction: " << what << " ###\n\n";
}

}  // namespace qvr::bench

#endif  // QVR_BENCH_BENCH_UTIL_HPP
