/**
 * @file
 * Figure 13 reproduction: transmitted data size and rendered
 * resolution, normalised to remote-only rendering (the commercial
 * cloud-server design).
 *
 * Shapes to reproduce: Static transfers ~as much as remote-only
 * (prefetching hides latency, it does not cut bytes); Q-VR cuts
 * transmitted data ~85% and overall resolution ~41%, with light
 * workloads (Doom3-L) cutting bytes ~96% but resolution only ~7%
 * because most of the frame renders locally at full detail.
 */

#include "bench_util.hpp"

int
main()
{
    using namespace qvr;
    using namespace qvr::bench;

    printHeader("Figure 13 — transmitted data and resolution");

    const auto remote = runTable3(core::DesignPoint::Remote);
    const auto stat = runTable3(core::DesignPoint::Static);
    const auto qvr = runTable3(core::DesignPoint::Qvr);

    TextTable table("Normalised to remote-only rendering");
    table.setHeader({"Benchmark", "Static data", "Q-VR data",
                     "Q-VR data cut", "Q-VR res cut",
                     "Q-VR KB/frame"});

    std::vector<double> cut_data, cut_res;
    for (std::size_t i = 0; i < remote.size(); i++) {
        const double rm = remote[i].meanTransmittedBytes();
        const double st_norm =
            stat[i].meanTransmittedBytes() / rm;
        const double qv_norm =
            qvr[i].meanTransmittedBytes() / rm;
        cut_data.push_back(1.0 - qv_norm);
        cut_res.push_back(1.0 - qvr[i].meanResolutionFraction());
        table.addRow(
            {remote[i].benchmark, TextTable::num(st_norm, 2),
             TextTable::num(qv_norm, 2),
             TextTable::percent(cut_data.back()),
             TextTable::percent(cut_res.back()),
             TextTable::num(
                 qvr[i].meanTransmittedBytes() / 1024.0, 0)});
    }
    table.addRow({"MEAN", "", "",
                  TextTable::percent(mean(cut_data)),
                  TextTable::percent(mean(cut_res)), ""});
    table.print(std::cout);

    std::cout << "\nPaper reference: ~85% mean transmitted-data"
                 " reduction and ~41% mean resolution reduction;"
                 " Doom3-L cuts ~96% of bytes with only ~7% of"
                 " resolution.\n";
    return 0;
}
