/**
 * @file
 * Figure 13 reproduction: transmitted data size and rendered
 * resolution, normalised to remote-only rendering (the commercial
 * cloud-server design) — plus the Q-VR+CL column, where the
 * periphery ships as the encoder-aligned compressed frame layout
 * (cropped 32-px-aligned middle window + reduced-resolution outer
 * frame) and the payload bytes are computed from the actual buffer
 * dimensions rather than analytic annulus areas.
 *
 * Shapes to reproduce: Static transfers ~as much as remote-only
 * (prefetching hides latency, it does not cut bytes); Q-VR cuts
 * transmitted data ~85% and overall resolution ~41%, with light
 * workloads (Doom3-L) cutting bytes ~96% but resolution only ~7%
 * because most of the frame renders locally at full detail.
 *
 * Self-check (exit 1 on violation): the compressed layout must show
 * a measured bytes-on-wire drop vs remote-only transport on every
 * benchmark.  Q-VR+CL intentionally ships a little more than
 * analytic Q-VR — the aligned middle window is a rectangle covering
 * the fovea interior and the outer layer is a full reduced-res frame
 * rather than an annulus — so the honest gate is vs the native
 * full-resolution transport, not vs the analytic accounting.
 */

#include "bench_util.hpp"

int
main()
{
    using namespace qvr;
    using namespace qvr::bench;

    printHeader("Figure 13 — transmitted data and resolution");

    const auto grid = runDesignGrid(
        {core::DesignPoint::Remote, core::DesignPoint::Static,
         core::DesignPoint::Qvr, core::DesignPoint::QvrCompressed});
    const std::size_t n = grid.size() / 4;
    const auto *remote = grid.data();
    const auto *stat = grid.data() + n;
    const auto *qvr = grid.data() + 2 * n;
    const auto *qvrcl = grid.data() + 3 * n;

    TextTable table("Normalised to remote-only rendering");
    table.setHeader({"Benchmark", "Static data", "Q-VR data",
                     "Q-VR+CL data", "Q-VR data cut", "CL data cut",
                     "Q-VR res cut", "Q-VR KB/frame"});

    bool wire_drop_ok = true;
    std::vector<double> cut_data, cut_res, cut_cl;
    for (std::size_t i = 0; i < n; i++) {
        const double rm = remote[i].meanTransmittedBytes();
        const double st_norm =
            stat[i].meanTransmittedBytes() / rm;
        const double qv_norm =
            qvr[i].meanTransmittedBytes() / rm;
        const double cl_norm =
            qvrcl[i].meanTransmittedBytes() / rm;
        cut_data.push_back(1.0 - qv_norm);
        cut_cl.push_back(1.0 - cl_norm);
        cut_res.push_back(1.0 - qvr[i].meanResolutionFraction());
        if (cl_norm >= 1.0)
            wire_drop_ok = false;
        table.addRow(
            {remote[i].benchmark, TextTable::num(st_norm, 2),
             TextTable::num(qv_norm, 2),
             TextTable::num(cl_norm, 2),
             TextTable::percent(cut_data.back()),
             TextTable::percent(cut_cl.back()),
             TextTable::percent(cut_res.back()),
             TextTable::num(
                 qvr[i].meanTransmittedBytes() / 1024.0, 0)});
    }
    table.addRow({"MEAN", "", "", "",
                  TextTable::percent(mean(cut_data)),
                  TextTable::percent(mean(cut_cl)),
                  TextTable::percent(mean(cut_res)), ""});
    table.print(std::cout);

    std::cout << "\nPaper reference: ~85% mean transmitted-data"
                 " reduction and ~41% mean resolution reduction;"
                 " Doom3-L cuts ~96% of bytes with only ~7% of"
                 " resolution.  Q-VR+CL bytes come from the aligned"
                 " buffer dimensions the stream actually carries.\n";

    if (!wire_drop_ok) {
        std::cerr << "FAIL: compressed frame layout did not reduce"
                     " bytes on wire vs remote-only transport\n";
        return 1;
    }
    std::cout << "\nbytes-on-wire self-check: PASS (Q-VR+CL <"
                 " remote-only on every benchmark)\n";
    return 0;
}
