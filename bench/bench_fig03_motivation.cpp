/**
 * @file
 * Figure 3 reproduction: end-to-end latency breakdown and FPS of the
 * two commercial mobile-VR designs — local-only rendering and
 * remote-only rendering — on the five high-quality VR applications
 * of Table 1.  The paper's takeaways to reproduce:
 *   (a) local-only: the integrated GPU's raw power is the bottleneck
 *       (render time dominates, FPS far below 90);
 *   (b) remote-only: transmission is ~63% of end-to-end latency.
 */

#include "bench_util.hpp"

int
main()
{
    using namespace qvr;
    using namespace qvr::bench;

    printHeader("Figure 3 — local-only vs remote-only motivation");

    TextTable local_table("Fig.3(a) local-only rendering");
    local_table.setHeader({"App", "render (ms)", "ATW (ms)",
                           "E2E MTP (ms)", "FPS", "meets 25ms?"});

    TextTable remote_table("Fig.3(b) remote-only rendering");
    remote_table.setHeader({"App", "net (ms)", "net share",
                            "E2E MTP (ms)", "FPS", "meets 25ms?"});

    for (const auto &app : scene::table1Apps()) {
        const auto local =
            runCell(core::DesignPoint::Local, app.name);
        double render = 0.0, atw = 0.0;
        for (const auto &f : local.frames) {
            render += toMs(f.tLocalRender);
            atw += toMs(f.tAtw);
        }
        const auto n = static_cast<double>(local.frames.size());
        local_table.addRow(
            {app.name, TextTable::num(render / n),
             TextTable::num(atw / n),
             TextTable::num(toMs(local.meanMtp())),
             TextTable::num(local.meanFps(), 1),
             local.meanMtp() <= 25e-3 ? "yes" : "no"});

        const auto remote =
            runCell(core::DesignPoint::Remote, app.name);
        double net = 0.0, mtp = 0.0;
        for (const auto &f : remote.frames) {
            net += toMs(f.tNetwork);
            mtp += toMs(f.mtpLatency);
        }
        remote_table.addRow(
            {app.name, TextTable::num(net / n),
             TextTable::percent(net / mtp),
             TextTable::num(toMs(remote.meanMtp())),
             TextTable::num(remote.meanFps(), 1),
             remote.meanMtp() <= 25e-3 ? "yes" : "no"});
    }

    local_table.print(std::cout);
    std::cout << '\n';
    remote_table.print(std::cout);
    std::cout << "\nPaper reference: neither design meets the 25 ms /"
                 " 90 Hz bound on high-quality apps; transmission is"
                 " ~63% of remote-only latency.\n";
    return 0;
}
