/**
 * @file
 * Ablation: simultaneous multi-projection (SMP).
 *
 * The paper's Section 5 adds an SMP engine to ATTILA-sim for two-eye
 * rendering but never quantifies its contribution.  This bench does:
 * geometry work shared across eyes (factor 0.55) vs naive per-eye
 * geometry (factor 1.0), for the local Baseline and for Q-VR —
 * showing SMP matters most for geometry-bound content and matters
 * LESS under Q-VR, whose fovea-only local jobs are fragment-bound.
 */

#include "bench_util.hpp"

int
main()
{
    using namespace qvr;
    using namespace qvr::bench;

    printHeader("Ablation — simultaneous multi-projection (SMP)");

    TextTable table("Mean E2E MTP (ms), naive vs SMP geometry");
    table.setHeader({"Benchmark", "Local naive", "Local SMP",
                     "Local gain", "Q-VR naive", "Q-VR SMP",
                     "Q-VR gain"});

    struct Row
    {
        std::vector<std::string> cells;
        double localGain = 0.0;
        double qvrGain = 0.0;
    };
    const auto &benches = scene::table3Benchmarks();
    const auto rows = sim::runParallel(
        benches.size(), [&benches](std::size_t bi) {
            const auto &b = benches[bi];
            core::ExperimentSpec spec;
            spec.benchmark = b.name;
            spec.numFrames = 200;
            const auto workload =
                core::generateExperimentWorkload(spec);

            auto run = [&](core::DesignPoint d, double smp) {
                auto cfg = spec.toConfig();
                cfg.gpuCost.stereoGeometryFactor = smp;
                return core::makePipeline(d, cfg)->run(workload);
            };

            const auto local_naive =
                run(core::DesignPoint::Local, 1.0);
            const auto local_smp =
                run(core::DesignPoint::Local, 0.55);
            const auto qvr_naive = run(core::DesignPoint::Qvr, 1.0);
            const auto qvr_smp = run(core::DesignPoint::Qvr, 0.55);

            Row row;
            row.localGain =
                local_naive.meanMtp() / local_smp.meanMtp();
            row.qvrGain = qvr_naive.meanMtp() / qvr_smp.meanMtp();
            row.cells = {
                b.name, TextTable::num(toMs(local_naive.meanMtp()), 1),
                TextTable::num(toMs(local_smp.meanMtp()), 1),
                TextTable::speedup(row.localGain),
                TextTable::num(toMs(qvr_naive.meanMtp()), 1),
                TextTable::num(toMs(qvr_smp.meanMtp()), 1),
                TextTable::speedup(row.qvrGain)};
            return row;
        });

    std::vector<double> local_gain, qvr_gain;
    for (const auto &row : rows) {
        local_gain.push_back(row.localGain);
        qvr_gain.push_back(row.qvrGain);
        table.addRow(row.cells);
    }
    table.addRow({"MEAN", "", "", TextTable::speedup(mean(local_gain)),
                  "", "", TextTable::speedup(mean(qvr_gain))});
    table.print(std::cout);

    std::cout << "\nReading: SMP's benefit tracks how geometry-bound"
                 " the local job is; Q-VR's small-fovea jobs are"
                 " fragment-dominated, so the co-design is largely"
                 " insensitive to it (the paper could have omitted"
                 " the SMP engine without changing its story).\n";
    return 0;
}
