/**
 * @file
 * Figure 15 reproduction: Q-VR's GPU-system energy per frame,
 * normalised to traditional local rendering, across hardware and
 * network conditions.
 *
 * Shapes to reproduce: ~73% mean energy reduction vs local-only;
 * faster networks improve energy efficiency (less radio-on time and
 * better balance); reducing GPU frequency does not always help (the
 * frame stretches, so static energy and radio tails accumulate).
 */

#include "bench_util.hpp"

int
main()
{
    using namespace qvr;
    using namespace qvr::bench;

    printHeader("Figure 15 — normalised energy efficiency");

    struct Net
    {
        const char *label;
        net::ChannelConfig cfg;
    };
    const Net nets[] = {
        {"Wi-Fi", net::ChannelConfig::wifi()},
        {"4G LTE", net::ChannelConfig::lte4g()},
        {"Early 5G", net::ChannelConfig::early5g()},
    };
    const double freqs[] = {1.0, 0.8, 0.6};
    const char *freq_labels[] = {"500 MHz", "400 MHz", "300 MHz"};

    TextTable table(
        "Q-VR energy / local-only energy (same environment)");
    std::vector<std::string> header{"Freq", "Net"};
    for (const auto &b : scene::table3Benchmarks())
        header.push_back(b.name);
    header.push_back("MEAN");
    table.setHeader(header);

    double default_cell_reduction = 0.0;
    for (int fi = 0; fi < 3; fi++) {
        for (const auto &n : nets) {
            std::vector<std::string> row{freq_labels[fi], n.label};
            std::vector<double> ratios;
            for (const auto &b : scene::table3Benchmarks()) {
                const auto local =
                    runCell(core::DesignPoint::Local, b.name, n.cfg,
                            freqs[fi], 200);
                const auto qvr =
                    runCell(core::DesignPoint::Qvr, b.name, n.cfg,
                            freqs[fi], 200);
                const double ratio =
                    qvr.meanEnergy() / local.meanEnergy();
                ratios.push_back(ratio);
                row.push_back(TextTable::num(ratio, 2));
            }
            row.push_back(TextTable::num(mean(ratios), 2));
            table.addRow(row);
            if (fi == 0 && std::string(n.label) == "Wi-Fi")
                default_cell_reduction = 1.0 - mean(ratios);
        }
    }
    table.print(std::cout);

    std::cout << "\nDefault environment (500 MHz, Wi-Fi): "
              << TextTable::percent(default_cell_reduction)
              << " mean energy reduction vs local-only"
                 "   (paper: ~73%).\n";
    return 0;
}
