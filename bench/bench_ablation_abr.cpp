/**
 * @file
 * Ablation: the periphery-quality knob (Section 3.2) closed into an
 * AIMD controller, on a constrained 50 Mbps link where LIWC's e1
 * knob alone cannot reach balance without ballooning the fovea.
 * Two-knob control: quality reacts within a frame, e1 moves the
 * partition; together they hold latency with a smaller fovea (less
 * local energy) and fewer bytes.
 */

#include "bench_util.hpp"

#include "core/pipeline_foveated.hpp"

int
main()
{
    using namespace qvr;
    using namespace qvr::bench;

    printHeader("Ablation — adaptive periphery quality (50 Mbps)");

    TextTable table(
        "Q-VR vs Q-VR+ABR on a 50 Mbps link");
    table.setHeader({"Benchmark", "MTP (ms)", "+ABR", "e1 (deg)",
                     "+ABR", "KB/frame", "+ABR", "quality"});

    const auto &benches = scene::table3Benchmarks();
    const auto rows = sim::runParallel(
        benches.size(),
        [&benches](std::size_t bi) -> std::vector<std::string> {
            const auto &b = benches[bi];
            core::ExperimentSpec spec;
            spec.benchmark = b.name;
            spec.numFrames = 250;
            auto cfg = spec.toConfig();
            cfg.channelConfig.nominalDownlink = fromMbps(50.0);
            const auto workload =
                core::generateExperimentWorkload(spec);

            core::FoveatedPipeline plain(cfg,
                                         core::FoveatedPolicy::qvr());
            const auto base = plain.run(workload);

            core::FoveatedPolicy policy = core::FoveatedPolicy::qvr();
            policy.adaptiveQuality = true;
            core::FoveatedPipeline abr(cfg, policy);
            const auto helped = abr.run(workload);

            double quality = 0.0;
            std::size_t n = 0;
            for (std::size_t i = helped.warmupFrames;
                 i < helped.frames.size(); i++) {
                quality += helped.frames[i].peripheryQuality;
                n++;
            }
            quality /= static_cast<double>(n);

            return {b.name,
                    TextTable::num(toMs(base.meanMtp()), 1),
                    TextTable::num(toMs(helped.meanMtp()), 1),
                    TextTable::num(base.meanE1(), 1),
                    TextTable::num(helped.meanE1(), 1),
                    TextTable::num(
                        base.meanTransmittedBytes() / 1024.0, 0),
                    TextTable::num(
                        helped.meanTransmittedBytes() / 1024.0, 0),
                    TextTable::num(quality, 2)};
        });
    for (const auto &row : rows)
        table.addRow(row);
    table.print(std::cout);

    std::cout << "\nReading: on a constrained link the quality knob"
                 " absorbs part of the pressure the e1 knob would"
                 " otherwise answer with a bigger (hotter) fovea;"
                 " bytes and latency drop at a bounded, explicit"
                 " bitrate cost.\n";
    return 0;
}
