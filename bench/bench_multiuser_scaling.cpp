/**
 * @file
 * Extension experiment: multi-user scalability on one edge server.
 *
 * The paper positions Q-VR for future *collaborative* VR and cites
 * Firefly/Coterie (multi-user VR on commodity devices) as the state
 * of the art to displace.  This bench answers the deployment
 * question those systems pose: with one shared chiplet pool and one
 * shared egress pipe, how do per-user FPS, fairness and shared-
 * resource utilisation degrade with user count — under static
 * collaborative rendering vs Q-VR — and how many users can the
 * server hold at 60 / 90 FPS?
 */

#include "bench_util.hpp"

#include "collab/session.hpp"

int
main()
{
    using namespace qvr;
    using namespace qvr::bench;

    printHeader("Extension — multi-user scaling on one edge server");

    TextTable table("Per-user performance vs session size (HL2-H, "
                    "Wi-Fi last mile, 1 Gbps egress, 16 chiplets)");
    table.setHeader({"Users", "Design", "mean FPS", "worst FPS",
                     "mean MTP (ms)", "egress util", "chiplet util",
                     "agg KB/frame"});

    // Each session is independent (users *within* a session share an
    // egress pipe and chiplet pool and must stay serial; whole
    // sessions fan out across cores through the parallel runner).
    std::vector<collab::SessionConfig> grid;
    for (std::size_t users : {1u, 2u, 4u, 8u, 12u, 16u}) {
        for (auto design : {collab::SessionDesign::Static,
                            collab::SessionDesign::Qvr}) {
            collab::SessionConfig cfg;
            cfg.users = users;
            cfg.design = design;
            cfg.benchmark = "HL2-H";
            cfg.numFrames = 150;
            grid.push_back(cfg);
        }
    }
    const auto sessions = sim::runParallel(
        grid.size(),
        [&grid](std::size_t i) { return collab::runSession(grid[i]); });

    for (std::size_t i = 0; i < grid.size(); i++) {
        const collab::SessionResult &r = sessions[i];
        table.addRow(
            {std::to_string(grid[i].users),
             grid[i].design == collab::SessionDesign::Qvr ? "Q-VR"
                                                          : "Static",
             TextTable::num(r.meanFps(), 1),
             TextTable::num(r.worstUserFps(), 1),
             TextTable::num(toMs(r.meanMtp()), 1),
             TextTable::percent(r.egressUtilisation),
             TextTable::percent(r.serverUtilisation),
             TextTable::num(r.aggregateBytesPerFrame() / 1024.0, 0)});
    }
    table.print(std::cout);

    struct CapacityQuery
    {
        collab::SessionDesign design;
        double minFps;
    };
    const std::vector<CapacityQuery> queries = {
        {collab::SessionDesign::Qvr, 90.0},
        {collab::SessionDesign::Qvr, 60.0},
        {collab::SessionDesign::Static, 90.0},
        {collab::SessionDesign::Static, 60.0},
    };
    const auto capacities = sim::runParallel(
        queries.size(), [&queries](std::size_t i) {
            collab::SessionConfig cap_cfg;
            cap_cfg.benchmark = "HL2-H";
            cap_cfg.numFrames = 120;
            cap_cfg.design = queries[i].design;
            return collab::findUserCapacity(cap_cfg,
                                            queries[i].minFps, 24);
        });
    const std::size_t qvr90 = capacities[0];
    const std::size_t qvr60 = capacities[1];
    const std::size_t st90 = capacities[2];
    const std::size_t st60 = capacities[3];

    std::cout << "\nUser capacity of one edge server (worst user"
                 " >= target FPS):\n";
    std::cout << "  Q-VR  : " << qvr90 << " users @ 90 FPS, " << qvr60
              << " users @ 60 FPS\n";
    std::cout << "  Static: " << st90 << " users @ 90 FPS, " << st60
              << " users @ 60 FPS\n";
    std::cout << "\nReading: static is last-mile-bound (each user's"
                 " own downlink caps it even alone); Q-VR's ~6x"
                 " smaller per-user payload keeps both the last mile"
                 " and the shared pipe comfortable until the chiplet"
                 " pool runs out.\n";
    return 0;
}
