/**
 * @file
 * Figure 14 reproduction: (a) the latency ratio T_remote/T_local and
 * (b) the FPS across 300 frames of Q-VR execution, starting from the
 * classic 5-degree fovea.
 *
 * Shapes to reproduce: the ratio starts high (small fovea renders
 * locally in no time while the network dominates), converges to a
 * balanced band within a few tens of frames, and FPS holds >= 90 Hz
 * throughout for every benchmark.
 */

#include "bench_util.hpp"

int
main()
{
    using namespace qvr;
    using namespace qvr::bench;

    printHeader("Figure 14 — latency-ratio convergence and FPS");

    TextTable ratio_table(
        "(a) T_remote/T_local across frames (Q-VR, Wi-Fi, 500 MHz)");
    ratio_table.setHeader({"Benchmark", "f1", "f5", "f10", "f20",
                           "f50", "f100", "f200", "f299"});
    TextTable fps_table("(b) FPS across frames");
    fps_table.setHeader({"Benchmark", "first 30 (mean)",
                         "steady (mean)", "steady (min)",
                         ">=90Hz frames"});

    const std::size_t probes[] = {1, 5, 10, 20, 50, 100, 200, 299};

    for (const auto &b : scene::table3Benchmarks()) {
        const auto r = runCell(core::DesignPoint::Qvr, b.name);

        std::vector<std::string> row{b.name};
        for (std::size_t p : probes) {
            const auto &f = r.frames[p];
            const double ratio =
                f.tLocalRender > 0.0
                    ? f.tRemoteBranch / f.tLocalRender
                    : 0.0;
            row.push_back(TextTable::num(ratio, 1));
        }
        ratio_table.addRow(row);

        double early = 0.0;
        double steady = 0.0, steady_min = 1e9;
        std::size_t compliant = 0, steady_n = 0;
        for (std::size_t i = 1; i < r.frames.size(); i++) {
            const double fps = 1.0 / r.frames[i].frameInterval;
            if (i < 30) {
                early += fps / 29.0;
            } else {
                steady += fps;
                steady_n++;
                steady_min = std::min(steady_min, fps);
            }
            if (r.frames[i].meetsFrameRate)
                compliant++;
        }
        fps_table.addRow(
            {b.name, TextTable::num(early, 1),
             TextTable::num(steady / static_cast<double>(steady_n),
                            1),
             TextTable::num(steady_min, 1),
             TextTable::percent(
                 static_cast<double>(compliant) /
                 static_cast<double>(r.frames.size() - 1))});
    }

    ratio_table.print(std::cout);
    std::cout << '\n';
    fps_table.print(std::cout);
    std::cout << "\nPaper reference: ratios start high and settle"
                 " after a short period; all benchmarks sustain the"
                 " >90 Hz requirement.\n";
    return 0;
}
