/**
 * @file
 * Figure 12 reproduction: normalised end-to-end speedup of Static,
 * FFR, DFR and Q-VR over the local-rendering Baseline on the seven
 * Table-3 benchmarks, plus the FPS lines comparing the pure-software
 * implementation (SW-FPS) against the co-designed Q-VR (Q-VR-FPS).
 *
 * Shapes to reproduce: FFR ~1.75x mean over Baseline; DFR ~1.1x over
 * FFR; Q-VR ~3.4x mean (max >5x) over Baseline and ~4.1x FPS over
 * Static / ~2.8x over SW-QVR.
 */

#include "bench_util.hpp"

int
main()
{
    using namespace qvr;
    using namespace qvr::bench;

    printHeader("Figure 12 — end-to-end speedup and FPS");

    // All 6 designs x 7 benchmarks go through the parallel runner as
    // one flat grid instead of six serial Table-3 sweeps.
    const std::vector<core::DesignPoint> designs = {
        core::DesignPoint::Local, core::DesignPoint::Static,
        core::DesignPoint::Ffr,   core::DesignPoint::Dfr,
        core::DesignPoint::SwQvr, core::DesignPoint::Qvr};
    const auto grid = runDesignGrid(designs);
    const std::size_t nb = scene::table3Benchmarks().size();
    const auto slice = [&](std::size_t d) {
        return std::vector<core::PipelineResult>(
            grid.begin() + static_cast<std::ptrdiff_t>(d * nb),
            grid.begin() + static_cast<std::ptrdiff_t>((d + 1) * nb));
    };
    const auto base = slice(0);
    const auto stat = slice(1);
    const auto ffr = slice(2);
    const auto dfr = slice(3);
    const auto sw = slice(4);
    const auto qvr = slice(5);

    TextTable table("Normalised E2E speedup over Baseline");
    table.setHeader({"Benchmark", "Static", "FFR", "DFR", "Q-VR",
                     "SW-FPS", "Q-VR-FPS"});

    std::vector<double> sp_static, sp_ffr, sp_dfr, sp_qvr;
    std::vector<double> fps_ratio_static, fps_ratio_sw;
    for (std::size_t i = 0; i < base.size(); i++) {
        const double b = base[i].meanMtp();
        sp_static.push_back(b / stat[i].meanMtp());
        sp_ffr.push_back(b / ffr[i].meanMtp());
        sp_dfr.push_back(b / dfr[i].meanMtp());
        sp_qvr.push_back(b / qvr[i].meanMtp());
        fps_ratio_static.push_back(qvr[i].meanFps() /
                                   stat[i].meanFps());
        fps_ratio_sw.push_back(qvr[i].meanFps() / sw[i].meanFps());
        table.addRow({base[i].benchmark,
                      TextTable::speedup(sp_static.back()),
                      TextTable::speedup(sp_ffr.back()),
                      TextTable::speedup(sp_dfr.back()),
                      TextTable::speedup(sp_qvr.back()),
                      TextTable::num(sw[i].meanFps(), 1),
                      TextTable::num(qvr[i].meanFps(), 1)});
    }
    table.addRow({"MEAN", TextTable::speedup(mean(sp_static)),
                  TextTable::speedup(mean(sp_ffr)),
                  TextTable::speedup(mean(sp_dfr)),
                  TextTable::speedup(mean(sp_qvr)), "", ""});
    table.print(std::cout);

    double best = 0.0;
    for (double s : sp_qvr)
        best = std::max(best, s);
    std::cout << "\nQ-VR vs Baseline: mean "
              << TextTable::speedup(mean(sp_qvr)) << ", max "
              << TextTable::speedup(best)
              << "   (paper: 3.4x mean, 6.7x max)\n";
    std::cout << "Q-VR FPS vs Static: "
              << TextTable::speedup(mean(fps_ratio_static))
              << "   (paper: 4.1x)\n";
    std::cout << "Q-VR FPS vs SW-QVR: "
              << TextTable::speedup(mean(fps_ratio_sw))
              << "   (paper: 2.8x)\n";
    std::cout << "FFR vs Baseline: "
              << TextTable::speedup(mean(sp_ffr))
              << "   (paper: ~1.75x); DFR vs FFR: "
              << TextTable::speedup(mean(sp_dfr) / mean(sp_ffr))
              << "   (paper: ~1.1x)\n";
    return 0;
}
