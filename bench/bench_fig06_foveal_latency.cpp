/**
 * @file
 * Figure 6 reproduction: average foveal-layer rendering latency as a
 * function of eccentricity, for three scene-complexity classes.
 * Shape to reproduce: latency grows superlinearly with eccentricity,
 * and for e1 <= 15 degrees every complexity class fits inside the
 * 11 ms / 90 Hz budget on the mobile SoC.
 */

#include "bench_util.hpp"

#include "foveation/layers.hpp"
#include "gpu/timing.hpp"

int
main()
{
    using namespace qvr;
    using namespace qvr::bench;

    printHeader("Figure 6 — foveal render latency vs eccentricity");

    // Three complexity classes, as in the Foveated3D chessboard
    // snapshots: simple / medium / complex views.
    struct Class
    {
        const char *name;
        double triangles;
        double shading;
    };
    const Class classes[] = {
        {"simple", 0.8e6, 1.6},
        {"medium", 1.6e6, 2.4},
        {"complex", 2.6e6, 3.2},
    };

    const foveation::DisplayConfig display;
    const foveation::MarModel mar;
    const foveation::LayerGeometry geometry(display, mar);
    const gpu::MobileGpuModel gpu;

    TextTable table("Fovea render latency (ms), stereo, 500 MHz");
    table.setHeader({"e1 (deg)", "simple", "medium", "complex",
                     "all <= 11ms?"});

    for (double e1 = 5.0; e1 <= 40.0 + 1e-9; e1 += 5.0) {
        std::vector<std::string> row{TextTable::num(e1, 0)};
        bool all_ok = true;
        for (const Class &c : classes) {
            const double area =
                geometry.foveaAreaFraction(e1, Vec2{});
            const double work = std::pow(area, 1.0 / 1.25);
            gpu::RenderJob job;
            job.triangles = static_cast<std::uint64_t>(
                c.triangles * 2.0 * work);
            job.shadedPixels =
                area * static_cast<double>(display.pixelCount()) *
                2.0;
            job.batches = std::max(
                2u,
                static_cast<std::uint32_t>(240.0 * work * 2.0));
            job.shadingCost = c.shading;
            const Seconds t = gpu.renderSeconds(job);
            all_ok = all_ok && t <= vr_requirements::kFrameBudget;
            row.push_back(TextTable::num(toMs(t)));
        }
        row.push_back(all_ok ? "yes" : "no");
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\nPaper reference: every complexity class meets the"
                 " 11 ms budget for eccentricity <= 15 degrees.\n";
    return 0;
}
