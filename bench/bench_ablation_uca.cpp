/**
 * @file
 * Ablation: what does UCA contribute on top of each eccentricity
 * policy?  The paper only shows DFR (LIWC, GPU composition) vs Q-VR
 * (LIWC + UCA); this bench also isolates UCA under the fixed-fovea
 * policy, separating "offload the kernels" from "pick a better e1".
 */

#include "bench_util.hpp"

#include "core/pipeline_foveated.hpp"

int
main()
{
    using namespace qvr;
    using namespace qvr::bench;

    printHeader("Ablation — UCA contribution per eccentricity policy");

    TextTable table("Mean E2E MTP (ms) / mean FPS");
    table.setHeader({"Benchmark", "FFR", "FFR+UCA", "DFR",
                     "Q-VR (DFR+UCA)", "UCA gain (DFR->Q-VR)"});

    struct Row
    {
        std::vector<std::string> cells;
        double gain = 0.0;
    };
    const auto &benches = scene::table3Benchmarks();
    const auto rows = sim::runParallel(
        benches.size(), [&benches](std::size_t bi) {
            const auto &b = benches[bi];
            core::ExperimentSpec spec;
            spec.benchmark = b.name;
            spec.numFrames = kFrames;
            const auto cfg = spec.toConfig();
            const auto workload =
                core::generateExperimentWorkload(spec);

            auto run = [&](core::FoveatedPolicy policy) {
                core::FoveatedPipeline p(cfg, policy);
                return p.run(workload);
            };

            auto fmt = [](const core::PipelineResult &r) {
                return TextTable::num(toMs(r.meanMtp()), 1) + " / " +
                       TextTable::num(r.meanFps(), 0);
            };

            core::FoveatedPolicy ffr_uca = core::FoveatedPolicy::ffr();
            ffr_uca.composition = core::CompositionPath::Uca;

            const auto ffr = run(core::FoveatedPolicy::ffr());
            const auto ffru = run(ffr_uca);
            const auto dfr = run(core::FoveatedPolicy::dfr());
            const auto qvr = run(core::FoveatedPolicy::qvr());

            Row row;
            row.gain = dfr.meanMtp() / qvr.meanMtp();
            row.cells = {b.name, fmt(ffr), fmt(ffru), fmt(dfr),
                         fmt(qvr), TextTable::speedup(row.gain)};
            return row;
        });

    std::vector<double> gains;
    for (const auto &row : rows) {
        gains.push_back(row.gain);
        table.addRow(row.cells);
    }
    table.addRow({"MEAN", "", "", "", "",
                  TextTable::speedup(mean(gains))});
    table.print(std::cout);

    std::cout << "\nReading: UCA removes composition+ATW from the GPU"
                 " timeline AND starts periphery tiles before local"
                 " rendering finishes; its gain is largest when the"
                 " GPU is the busier resource.\n";
    return 0;
}
