/**
 * @file
 * Section 3.1 reproduction (quantitative stand-in for the 50-person
 * image-quality survey): render a real scene through the full
 * functional foveated path — native fovea + MAR-subsampled periphery
 * layers fused by the UCA trilinear pass — and measure PSNR against
 * the native render, per eccentricity.
 *
 * Shapes to reproduce: fovea fidelity is independent of e1 (it is
 * always the full-resolution layer); overall quality rises with e1;
 * the periphery degradation stays bounded and, per the MAR audit,
 * below the acuity threshold at its eccentricity — the reason the
 * paper's participants "observe no visible image quality
 * difference".
 */

#include "bench_util.hpp"

#include "core/foveated_render.hpp"
#include "foveation/quality.hpp"

int
main()
{
    using namespace qvr;
    using namespace qvr::bench;

    printHeader(
        "Section 3.1 — functional image quality vs eccentricity");

    // Render at a reduced canvas with the same angular geometry as
    // the real display (110-degree lens) so the MAR factors match.
    constexpr std::int32_t kSize = 512;
    foveation::DisplayConfig display;
    display.width = kSize;
    display.height = kSize;
    const foveation::MarModel mar;
    const foveation::LayerGeometry geometry(display, mar);
    const double ppd = display.pixelsPerDegree();

    const auto scene =
        core::testscene::chessHall(kSize, kSize, 24, 12.0);

    TextTable table("PSNR (dB) of the foveated composite vs native");
    table.setHeader({"e1 (deg)", "e2* (deg)", "s_mid", "s_out",
                     "fovea", "periphery", "overall", "MAR audit"});

    for (double e1 : {5.0, 10.0, 15.0, 25.0, 40.0}) {
        const double e2 = geometry.selectOptimalE2(e1, Vec2{});
        const foveation::LayerPartition lp{e1, e2, Vec2{}};
        const auto px = geometry.pixelCounts(lp);
        const auto audit = foveation::auditPartition(geometry, lp);

        core::PixelPartition pp;
        pp.centerX = kSize / 2.0;
        pp.centerY = kSize / 2.0;
        pp.foveaRadius = e1 * ppd;
        pp.middleRadius = e2 * ppd;
        pp.blendBand = 10.0;

        const core::FoveatedRenderResult r = core::renderFoveated(
            scene, kSize, kSize, pp, px.middleFactor,
            px.outerFactor, Vec2{1.2, -0.8});

        auto db = [](double v) {
            return std::isinf(v) ? std::string("inf")
                                 : TextTable::num(v, 1);
        };
        table.addRow({TextTable::num(e1, 0), TextTable::num(e2, 1),
                      TextTable::num(px.middleFactor, 2),
                      TextTable::num(px.outerFactor, 2),
                      db(r.psnrFovea), db(r.psnrPeriphery),
                      db(r.psnrOverall),
                      audit.perceptuallyLossless ? "lossless"
                                                 : "VIOLATED"});
    }
    table.print(std::cout);

    std::cout << "\nReading: the fovea stays pixel-faithful at every"
                 " e1; the periphery blur the PSNR measures sits"
                 " below the MAR acuity budget at its eccentricity"
                 " (audit column), which is why the paper's survey"
                 " participants saw no difference.\n";
    return 0;
}
