/**
 * @file
 * Table 4 reproduction: the mean steady-state eccentricity e1 chosen
 * by Q-VR for each Table-3 benchmark under {500, 400, 300 MHz} GPU
 * frequencies x {Wi-Fi, 4G LTE, Early 5G} networks.  Cells that fail
 * the 90 Hz requirement are marked with '*' (the paper underlines
 * them).
 *
 * Shapes to reproduce: heavier scenes get smaller fovea (GRID
 * smallest, Doom3-L largest); slower networks push work local
 * (bigger e1 under LTE); faster networks offload (e1 near the
 * 5-degree floor under early 5G); lower GPU frequency shrinks e1.
 */

#include "bench_util.hpp"

int
main()
{
    using namespace qvr;
    using namespace qvr::bench;

    printHeader("Table 4 — steady-state eccentricity per environment");

    struct Net
    {
        const char *label;
        net::ChannelConfig cfg;
    };
    const Net nets[] = {
        {"Wi-Fi", net::ChannelConfig::wifi()},
        {"4G LTE", net::ChannelConfig::lte4g()},
        {"Early 5G", net::ChannelConfig::early5g()},
    };
    const double freqs[] = {1.0, 0.8, 0.6};
    const char *freq_labels[] = {"500 MHz", "400 MHz", "300 MHz"};

    TextTable table(
        "Mean steady e1 (deg); '*' = fails 90 Hz in that cell");
    std::vector<std::string> header{"Freq", "Net"};
    for (const auto &b : scene::table3Benchmarks())
        header.push_back(b.name);
    table.setHeader(header);

    // Flatten the 3 freq x 3 net x 7 benchmark grid into one
    // parallel submission; results come back in cell order.
    const auto &benches = scene::table3Benchmarks();
    std::vector<Cell> cells;
    for (int fi = 0; fi < 3; fi++)
        for (const auto &n : nets)
            for (const auto &b : benches)
                cells.push_back({core::DesignPoint::Qvr, b.name,
                                 n.cfg, freqs[fi], kFrames, 1});
    const auto results = runCells(cells);

    std::size_t idx = 0;
    for (int fi = 0; fi < 3; fi++) {
        for (const auto &n : nets) {
            std::vector<std::string> row{freq_labels[fi], n.label};
            for (std::size_t bi = 0; bi < benches.size(); bi++) {
                const auto &r = results[idx++];
                std::string cell = TextTable::num(r.meanE1(), 1);
                if (r.fpsCompliance() < 0.9)
                    cell += "*";
                row.push_back(cell);
            }
            table.addRow(row);
        }
    }
    table.print(std::cout);

    std::cout << "\nPaper reference shape: at 500 MHz/Wi-Fi the paper"
                 " reports e1 from 9.9 (GRID) to 85.3 (Doom3-L);"
                 " LTE enlarges e1, early 5G shrinks it toward the"
                 " 5-degree floor, and lower frequency shrinks it.\n";
    return 0;
}
