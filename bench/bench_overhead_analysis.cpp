/**
 * @file
 * Section 4.3 reproduction — design-overhead analysis — plus
 * google-benchmark microbenchmarks of the hot simulator kernels.
 *
 * Printed table pins the paper's McPAT-derived accounting: LIWC's
 * 2^15-entry fp16 SRAM (~64 KB, 0.66 mm^2, <=25 mW), UCA at 1.6 mm^2
 * and 94 mW per instance with 532 cycles per 32x32 border tile, and
 * nanosecond-class eccentricity selection that hides behind the
 * pipeline.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "common/fp16.hpp"
#include "core/liwc.hpp"
#include "core/uca.hpp"
#include "net/channel.hpp"

namespace
{

using namespace qvr;

foveation::LayerGeometry &
geometry()
{
    static foveation::LayerGeometry g{foveation::DisplayConfig{},
                                      foveation::MarModel{}};
    return g;
}

core::Liwc
makeLiwc()
{
    return core::Liwc(core::LiwcConfig{}, geometry(), 50e6, 134e6,
                      0.55);
}

void
printOverheadTable()
{
    using namespace qvr::bench;
    printHeader("Section 4.3 — design overhead analysis");

    core::Liwc liwc = makeLiwc();
    core::UcaConfig uca;

    TextTable table("Hardware overhead accounting (model | paper)");
    table.setHeader({"Component", "Quantity", "Model", "Paper"});
    table.addRow({"LIWC", "SRAM table",
                  std::to_string(liwc.tableBytes() / 1024) + " KB",
                  "~64 KB (2^15 x fp16)"});
    table.addRow({"LIWC", "area",
                  TextTable::num(liwc.areaMm2(), 2) + " mm^2",
                  "0.66 mm^2"});
    table.addRow({"LIWC", "power",
                  TextTable::num(liwc.maxPowerW() * 1000, 0) + " mW",
                  "<= 25 mW"});
    table.addRow({"LIWC", "selection latency",
                  TextTable::num(liwc.selectionLatency() * 1e9, 0) +
                      " ns",
                  "nanoseconds (hidden)"});
    table.addRow({"UCA", "border tile",
                  std::to_string(uca.borderTileCycles) + " cycles",
                  "532 cycles / 32x32 block"});
    table.addRow({"UCA", "instances",
                  std::to_string(uca.units) + " @ 500 MHz",
                  "2 @ 500 MHz"});
    table.addRow({"UCA", "area",
                  TextTable::num(uca.areaMm2, 1) + " mm^2",
                  "1.6 mm^2"});
    table.addRow({"UCA", "power",
                  TextTable::num(uca.powerW * 1000, 0) + " mW",
                  "94 mW"});
    table.print(std::cout);

    // Full-frame UCA latency at the default partition.
    core::UcaTimingModel model(uca);
    core::PixelPartition pp;
    pp.centerX = 960.0;
    pp.centerY = 1080.0;
    pp.foveaRadius = 15.0 * (1920.0 / 110.0);
    pp.middleRadius = 35.0 * (1920.0 / 110.0);
    const core::UcaTimingResult r =
        model.processFrame(1920, 2160, pp, 0.0, 0.0);
    std::cout << "\nUCA full-eye pass: " << r.borderTiles
              << " border + " << r.interiorTiles
              << " interior tiles in "
              << TextTable::num(toMs(r.done), 2)
              << " ms (budget 11.1 ms)\n\n";
}

void
BM_LiwcSelection(benchmark::State &state)
{
    core::Liwc liwc = makeLiwc();
    motion::MotionDelta delta;
    delta.dOrientation.x = 0.3;
    delta.dGaze = Vec2{0.5, -0.2};
    for (auto _ : state) {
        auto d = liwc.selectEccentricity(delta, 2'000'000, Vec2{});
        benchmark::DoNotOptimize(d);
        core::LiwcFeedback fb;
        fb.measuredLocal = 5e-3;
        fb.measuredRemote = 6e-3;
        fb.renderedTriangles = 300'000;
        fb.peripheryPixels = 1e6;
        fb.peripheryBytes = 60'000;
        fb.ackThroughput = 134e6;
        liwc.update(d, fb);
    }
}
BENCHMARK(BM_LiwcSelection);

void
BM_UcaUnifiedFilterTile(benchmark::State &state)
{
    // Functional trilinear filtering cost of one 32x32 tile region.
    core::Image fovea(64, 64, core::Rgb{0.5f, 0.5f, 0.5f});
    core::Image middle(32, 32, core::Rgb{0.25f, 0.5f, 0.75f});
    core::Image outer(16, 16, core::Rgb{0.75f, 0.5f, 0.25f});
    core::UcaFrameInputs in;
    in.fovea = &fovea;
    in.middle = &middle;
    in.outer = &outer;
    in.sMiddle = 2.0;
    in.sOuter = 4.0;
    in.partition.centerX = 32.0;
    in.partition.centerY = 32.0;
    in.partition.foveaRadius = 16.0;
    in.partition.middleRadius = 28.0;
    in.atwShift = Vec2{1.0, -1.0};
    for (auto _ : state) {
        core::Image out = core::ucaUnified(in);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_UcaUnifiedFilterTile);

void
BM_UcaTimingFullFrame(benchmark::State &state)
{
    core::PixelPartition pp;
    pp.centerX = 960.0;
    pp.centerY = 1080.0;
    pp.foveaRadius = 260.0;
    pp.middleRadius = 600.0;
    for (auto _ : state) {
        core::UcaTimingModel model;
        auto r = model.processFrame(1920, 2160, pp, 0.0, 0.0);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_UcaTimingFullFrame);

void
BM_ChannelTransfer(benchmark::State &state)
{
    net::Channel ch(net::ChannelConfig::wifi(), Rng(1));
    for (auto _ : state) {
        auto r = ch.transfer(fromKiB(100));
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_ChannelTransfer);

void
BM_Fp16RoundTrip(benchmark::State &state)
{
    float x = 1.2345f;
    for (auto _ : state) {
        const std::uint16_t bits = floatToHalfBits(x);
        x = halfBitsToFloat(bits) + 1e-4f;
        if (x > 100.0f)
            x = 1.0f;
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_Fp16RoundTrip);

}  // namespace

int
main(int argc, char **argv)
{
    printOverheadTable();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
