/**
 * @file
 * Resilience benchmark: the fault-injection scenario suite
 * (clean / bursty / outage storm / straggler / worst case) swept over
 * plain Q-VR and the degradation-hardened Q-VR-R design point.
 *
 * Self-verifying acceptance criteria (exit 1 on violation):
 *  1. under the scripted worst case — a 500 ms hard outage overlapped
 *     by a 10% bursty-loss window — Q-VR-R drops zero frames: every
 *     frame interval stays within two 90 Hz budgets, i.e. each vsync
 *     shows fresh or reprojected content;
 *  2. Q-VR-R recovers to within 10% of its clean-run mean MTP within
 *     30 frames after the last fault window closes;
 *  3. the whole suite is bit-exact: re-running it single-threaded
 *     reproduces the multi-threaded results byte for byte.
 *
 * Output: a TextTable on stdout and BENCH_resilience.json (path
 * overridable with --json <path>); --quick shrinks the run for the
 * CI smoke check (`perf` CTest label).
 */

#include "bench_util.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/schedule.hpp"

namespace
{

using namespace qvr;

struct RunCell
{
    std::string scenario;
    core::DesignPoint design = core::DesignPoint::Qvr;
    fault::FaultSchedule schedule;
};

core::PipelineResult
runFaultCell(const RunCell &cell, std::size_t frames,
             std::uint64_t seed)
{
    core::ExperimentSpec spec;
    spec.benchmark = "Doom3-H";
    spec.numFrames = frames;
    spec.seed = seed;
    spec.faults = cell.schedule;
    return core::runExperiment(cell.design, spec);
}

/** Frames whose interval blew past two 90 Hz budgets: the display
 *  showed a repeated (not fresh, not reprojected) image. */
std::size_t
droppedFrames(const core::PipelineResult &r)
{
    std::size_t dropped = 0;
    for (const auto &f : r.frames) {
        if (f.frameInterval >
            2.0 * vr_requirements::kFrameBudget + 1e-6)
            dropped++;
    }
    return dropped;
}

/**
 * Frames after the last fault window until the MTP settles back to
 * within 10% of @p clean_mean (five consecutive frames under the
 * bar).  Returns -1 when the run never recovers.
 */
int
recoveryFrames(const core::PipelineResult &r,
               const fault::FaultSchedule &schedule, double clean_mean)
{
    const Seconds fault_end = schedule.lastFaultTime();
    std::size_t first = r.frames.size();
    for (std::size_t i = 0; i < r.frames.size(); i++) {
        if (r.frames[i].displayTime >= fault_end) {
            first = i;
            break;
        }
    }
    const double bar = 1.10 * clean_mean;
    constexpr std::size_t kSettle = 5;
    for (std::size_t j = first; j + kSettle <= r.frames.size(); j++) {
        bool settled = true;
        for (std::size_t k = j; k < j + kSettle; k++) {
            if (r.frames[k].mtpLatency > bar) {
                settled = false;
                break;
            }
        }
        if (settled)
            return static_cast<int>(j - first);
    }
    return -1;
}

/** Byte-faithful digest of a result (hexfloat leaves no rounding). */
std::string
digest(const core::PipelineResult &r)
{
    std::ostringstream os;
    os << std::hexfloat;
    for (const auto &f : r.frames) {
        os << f.mtpLatency << ';' << f.displayTime << ';'
           << f.frameInterval << ';' << f.transmittedBytes << ';'
           << f.e1 << ';' << f.reprojected << ';'
           << f.degradationLevel << ';' << f.localFallback << ';'
           << f.linkRetries << ';' << f.lostLayers << ';'
           << f.linkStall << '\n';
    }
    return os.str();
}

struct Row
{
    std::string scenario;
    std::string design;
    double meanMtpMs = 0.0;
    double fpsCompliance = 0.0;
    std::size_t dropped = 0;
    int recovery = -2;  ///< -2 = not applicable (clean run)
    core::FaultCounters counters;
};

}  // namespace

int
main(int argc, char **argv)
{
    using namespace qvr;
    using namespace qvr::bench;

    bool quick = false;
    std::string json_path = "BENCH_resilience.json";
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::cerr << "usage: bench_resilience [--quick]"
                         " [--json <path>]\n";
            return 2;
        }
    }

    printHeader("resilience — fault suites vs graceful degradation");

    const std::size_t frames = quick ? 400 : 600;
    const std::uint64_t seed = 7;
    // The pipeline's FPS is uncapped (paper Fig. 14(b) plots above
    // 90 Hz), so the wall-clock horizon must come from a calibration
    // run, not from frames x vsync budget — otherwise the scenario
    // windows land past the end of the run.
    const Seconds horizon =
        runFaultCell({"calibrate", core::DesignPoint::Qvr, {}},
                     frames, seed)
            .frames.back()
            .displayTime;
    const auto suite = fault::standardSuite(seed, horizon);

    std::vector<RunCell> cells;
    for (const auto &sc : suite)
        for (const auto d :
             {core::DesignPoint::Qvr, core::DesignPoint::Resilient})
            cells.push_back({sc.name, d, sc.schedule});

    const auto results =
        sim::runParallel(cells.size(), [&](std::size_t i) {
            return runFaultCell(cells[i], frames, seed);
        });

    // Acceptance 3: byte-identical on a single-threaded rerun.
    const auto serial =
        sim::runParallel(
            cells.size(),
            [&](std::size_t i) {
                return runFaultCell(cells[i], frames, seed);
            },
            1);
    for (std::size_t i = 0; i < cells.size(); i++) {
        if (digest(results[i]) != digest(serial[i])) {
            std::cerr << "FAIL: scenario '" << cells[i].scenario
                      << "' design "
                      << core::designName(cells[i].design)
                      << " is not bit-exact across thread counts\n";
            return 1;
        }
    }

    // Clean-run reference MTP per design (cells 0 and 1).
    double clean_mean[2] = {results[0].meanMtp(),
                            results[1].meanMtp()};

    TextTable table("fault scenarios x designs (" +
                    std::to_string(frames) + " frames)");
    table.setHeader({"scenario", "design", "MTP ms", "fps-ok",
                     "dropped", "reproj", "local", "degraded",
                     "retries", "lost", "recovery"});

    std::vector<Row> rows;
    bool ok = true;
    for (std::size_t i = 0; i < cells.size(); i++) {
        const RunCell &c = cells[i];
        const core::PipelineResult &r = results[i];
        Row row;
        row.scenario = c.scenario;
        row.design = core::designName(c.design);
        row.meanMtpMs = toMs(r.meanMtp());
        row.fpsCompliance = r.fpsCompliance();
        row.dropped = droppedFrames(r);
        row.counters = r.faultCounters();
        if (!c.schedule.empty())
            row.recovery =
                recoveryFrames(r, c.schedule, clean_mean[i % 2]);
        rows.push_back(row);

        table.addRow(
            {row.scenario, row.design, TextTable::num(row.meanMtpMs, 2),
             TextTable::num(row.fpsCompliance, 3),
             std::to_string(row.dropped),
             std::to_string(row.counters.reprojectedFrames),
             std::to_string(row.counters.localFallbackFrames),
             std::to_string(row.counters.degradedFrames),
             std::to_string(row.counters.linkRetries),
             std::to_string(row.counters.lostLayers),
             row.recovery == -2 ? "-" : std::to_string(row.recovery)});

        if (c.scenario == "worst-case" &&
            c.design == core::DesignPoint::Resilient) {
            // Acceptance 1: zero dropped frames in the worst case.
            if (row.dropped != 0) {
                std::cerr << "FAIL: Q-VR-R dropped " << row.dropped
                          << " frames under the worst-case schedule\n";
                ok = false;
            }
            // Acceptance 2: MTP back within 10% of the clean run
            // inside 30 post-fault frames.
            if (row.recovery < 0 || row.recovery > 30) {
                std::cerr << "FAIL: Q-VR-R recovery took "
                          << row.recovery
                          << " frames (want 0..30; -1 = never)\n";
                ok = false;
            }
        }
    }
    table.print(std::cout);

    std::cout << "\nReading: the degradation controller turns faults"
                 " into quality loss instead of stalls — reprojection"
                 " covers single misses, the ABR ladder sheds periphery"
                 " bitrate under bursts, and the local-only fallback"
                 " keeps vsync alive through hard outages.\n";

    std::ofstream os(json_path);
    if (!os) {
        std::cerr << "cannot write " << json_path << "\n";
        return 1;
    }
    os << "{\n  \"bench\": \"resilience\",\n"
       << "  \"frames\": " << frames << ",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"horizon_s\": " << horizon << ",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"bit_exact_across_threads\": true,\n"
       << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); i++) {
        const Row &r = rows[i];
        os << "    {\"scenario\": \"" << r.scenario
           << "\", \"design\": \"" << r.design
           << "\", \"mean_mtp_ms\": " << r.meanMtpMs
           << ", \"fps_compliance\": " << r.fpsCompliance
           << ", \"dropped_frames\": " << r.dropped
           << ", \"reprojected_frames\": "
           << r.counters.reprojectedFrames
           << ", \"local_fallback_frames\": "
           << r.counters.localFallbackFrames
           << ", \"degraded_frames\": " << r.counters.degradedFrames
           << ", \"link_retries\": " << r.counters.linkRetries
           << ", \"lost_layers\": " << r.counters.lostLayers
           << ", \"max_degradation_level\": "
           << r.counters.maxDegradationLevel
           << ", \"total_link_stall_s\": "
           << r.counters.totalLinkStall
           << ", \"recovery_frames\": " << r.recovery << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
    return ok ? 0 : 1;
}
