#include "net/channel.hpp"

#include <algorithm>
#include <cmath>

#include "common/geometry.hpp"
#include "common/log.hpp"

namespace qvr::net
{

ChannelConfig
ChannelConfig::wifi()
{
    ChannelConfig c;
    c.name = "Wi-Fi";
    c.nominalDownlink = fromMbps(200.0);
    c.baseLatency = 2e-3;
    return c;
}

ChannelConfig
ChannelConfig::lte4g()
{
    ChannelConfig c;
    c.name = "4G LTE";
    c.nominalDownlink = fromMbps(100.0);
    c.baseLatency = 12e-3;
    return c;
}

ChannelConfig
ChannelConfig::early5g()
{
    ChannelConfig c;
    c.name = "Early 5G";
    c.nominalDownlink = fromMbps(500.0);
    c.baseLatency = 1.5e-3;
    return c;
}

void
ChannelConfig::validate() const
{
    QVR_REQUIRE(nominalDownlink > 0.0, "zero downlink bandwidth");
    QVR_REQUIRE(protocolEfficiency > 0.0 && protocolEfficiency <= 1.0,
                "protocol efficiency outside (0,1]");
    QVR_REQUIRE(baseLatency >= 0.0, "negative base latency");
    QVR_REQUIRE(packetLoss >= 0.0 && packetLoss < 1.0,
                "loss rate outside [0,1)");
    QVR_REQUIRE(packetBytes > 0, "zero packet size");
    QVR_REQUIRE(std::isfinite(snrDb), "non-finite SNR");
}

Channel::Channel(const ChannelConfig &cfg, Rng rng)
    : cfg_(cfg), rng_(rng), ackEstimate_(0.25),
      ge_(fault::GilbertElliottConfig{})
{
    cfg.validate();
}

/** Shared transfer arithmetic; @p bw_factor scales goodput and
 *  @p loss is the effective packet-loss rate for this transfer.
 *  With bw_factor == 1 and loss == cfg.packetLoss this is bit-exact
 *  with the fault-free model. */
TransferResult
Channel::shapedTransfer(Bytes payload, double bw_factor, double loss)
{
    // SNR -> relative rate jitter.  For AWGN, capacity per Hz is
    // log2(1 + snr); a noise perturbation dP around the signal power
    // moves capacity by roughly dP/(P ln2 (1 + 1/snr)).  At 20 dB the
    // resulting relative std-dev is ~10%; we scale with 1/sqrt(snr).
    const double snr = std::pow(10.0, cfg_.snrDb / 10.0);
    const double jitter_sigma = 1.0 / std::sqrt(snr);
    const double noise =
        std::max(0.3, 1.0 + jitter_sigma * rng_.normal());

    TransferResult r;
    r.goodput = cfg_.nominalDownlink * cfg_.protocolEfficiency * noise;
    if (bw_factor != 1.0)
        r.goodput *= bw_factor;

    // Loss -> retransmissions: goodput divides by the delivery
    // probability and each lost packet costs a recovery RTT tail
    // (capped: selective repeat recovers many losses in one RTT).
    if (loss > 0.0) {
        const double delivery = clamp(1.0 - loss, 0.05, 1.0);
        r.goodput *= delivery;
        const double packets = std::max(
            1.0, static_cast<double>(payload) /
                     static_cast<double>(cfg_.packetBytes));
        const double expected_loss_events =
            std::min(3.0, packets * loss);
        r.duration += expected_loss_events * 2.0 * cfg_.baseLatency;
    }

    const double bits = static_cast<double>(payload) * 8.0;
    r.duration += cfg_.baseLatency + bits / r.goodput;
    return r;
}

TransferResult
Channel::transfer(Bytes payload)
{
    TransferResult r = shapedTransfer(payload, 1.0, cfg_.packetLoss);

    if (pendingOutage_ > 0.0) {
        r.stall = pendingOutage_;
        r.duration += pendingOutage_;
        pendingOutage_ = 0.0;
    }

    ackEstimate_.add(r.goodput);
    goodputStats_.add(r.goodput);
    return r;
}

TransferResult
Channel::transferAt(Bytes payload, Seconds start)
{
    const fault::LinkState state = faults_.linkStateAt(start);

    double bw_factor = state.bandwidthFactor;
    double loss = cfg_.packetLoss + state.extraLoss;
    bool drop = false;
    if (state.bursty) {
        const auto &ge = faults_.gilbertElliott();
        if (ge_.step(rng_)) {
            bw_factor *= ge.bandwidthFactorBad;
            loss += ge.lossBad;
            drop = rng_.chance(ge.transferDropBad);
        } else {
            loss += ge.lossGood;
        }
    }

    TransferResult r =
        shapedTransfer(payload, bw_factor, clamp(loss, 0.0, 0.95));

    // Window outage: a transfer issued inside an outage stalls until
    // the covering window(s) end, then serialises normally.
    if (state.outage)
        r.stall = faults_.outageEndAfter(start) - start;
    // Legacy one-shot outage: consumed by this transfer on top.
    if (pendingOutage_ > 0.0) {
        r.stall += pendingOutage_;
        pendingOutage_ = 0.0;
    }
    r.duration += r.stall;
    r.lost = drop;

    ackEstimate_.add(r.goodput);
    goodputStats_.add(r.goodput);
    return r;
}

void
Channel::setPacketLoss(double loss)
{
    QVR_REQUIRE(loss >= 0.0 && loss < 1.0, "loss rate outside [0,1)");
    cfg_.packetLoss = loss;
}

void
Channel::injectOutage(Seconds duration)
{
    QVR_REQUIRE(duration >= 0.0, "negative outage duration");
    pendingOutage_ += duration;
}

void
Channel::injectOutageWindow(Seconds start, Seconds duration)
{
    faults_.addOutage(start, duration);
}

void
Channel::setFaultSchedule(const fault::FaultSchedule &schedule)
{
    faults_ = schedule;
    ge_ = fault::GilbertElliott(schedule.gilbertElliott());
}

void
Channel::setNominalDownlink(BitsPerSecond bps)
{
    QVR_REQUIRE(bps > 0.0, "downlink must be positive");
    cfg_.nominalDownlink = bps;
}

BitsPerSecond
Channel::ackThroughput() const
{
    if (!ackEstimate_.primed())
        return cfg_.nominalDownlink * cfg_.protocolEfficiency;
    return ackEstimate_.value();
}

}  // namespace qvr::net
