#include "net/channel.hpp"

#include <algorithm>
#include <cmath>

#include "common/geometry.hpp"
#include "common/log.hpp"

namespace qvr::net
{

ChannelConfig
ChannelConfig::wifi()
{
    ChannelConfig c;
    c.name = "Wi-Fi";
    c.nominalDownlink = fromMbps(200.0);
    c.baseLatency = 2e-3;
    return c;
}

ChannelConfig
ChannelConfig::lte4g()
{
    ChannelConfig c;
    c.name = "4G LTE";
    c.nominalDownlink = fromMbps(100.0);
    c.baseLatency = 12e-3;
    return c;
}

ChannelConfig
ChannelConfig::early5g()
{
    ChannelConfig c;
    c.name = "Early 5G";
    c.nominalDownlink = fromMbps(500.0);
    c.baseLatency = 1.5e-3;
    return c;
}

Channel::Channel(const ChannelConfig &cfg, Rng rng)
    : cfg_(cfg), rng_(rng), ackEstimate_(0.25)
{
    QVR_REQUIRE(cfg.nominalDownlink > 0.0, "zero downlink bandwidth");
    QVR_REQUIRE(cfg.protocolEfficiency > 0.0 &&
                    cfg.protocolEfficiency <= 1.0,
                "protocol efficiency outside (0,1]");
}

TransferResult
Channel::transfer(Bytes payload)
{
    // SNR -> relative rate jitter.  For AWGN, capacity per Hz is
    // log2(1 + snr); a noise perturbation dP around the signal power
    // moves capacity by roughly dP/(P ln2 (1 + 1/snr)).  At 20 dB the
    // resulting relative std-dev is ~10%; we scale with 1/sqrt(snr).
    const double snr = std::pow(10.0, cfg_.snrDb / 10.0);
    const double jitter_sigma = 1.0 / std::sqrt(snr);
    const double noise =
        std::max(0.3, 1.0 + jitter_sigma * rng_.normal());

    TransferResult r;
    r.goodput = cfg_.nominalDownlink * cfg_.protocolEfficiency * noise;

    // Loss -> retransmissions: goodput divides by the delivery
    // probability and each lost packet costs a recovery RTT tail
    // (capped: selective repeat recovers many losses in one RTT).
    if (cfg_.packetLoss > 0.0) {
        const double delivery =
            clamp(1.0 - cfg_.packetLoss, 0.05, 1.0);
        r.goodput *= delivery;
        const double packets = std::max(
            1.0, static_cast<double>(payload) /
                     static_cast<double>(cfg_.packetBytes));
        const double expected_loss_events =
            std::min(3.0, packets * cfg_.packetLoss);
        r.duration += expected_loss_events * 2.0 * cfg_.baseLatency;
    }

    const double bits = static_cast<double>(payload) * 8.0;
    r.duration += cfg_.baseLatency + bits / r.goodput;

    if (pendingOutage_ > 0.0) {
        r.duration += pendingOutage_;
        pendingOutage_ = 0.0;
    }

    ackEstimate_.add(r.goodput);
    goodputStats_.add(r.goodput);
    return r;
}

void
Channel::setPacketLoss(double loss)
{
    QVR_REQUIRE(loss >= 0.0 && loss < 1.0, "loss rate outside [0,1)");
    cfg_.packetLoss = loss;
}

void
Channel::injectOutage(Seconds duration)
{
    QVR_REQUIRE(duration >= 0.0, "negative outage duration");
    pendingOutage_ += duration;
}

void
Channel::setNominalDownlink(BitsPerSecond bps)
{
    QVR_REQUIRE(bps > 0.0, "downlink must be positive");
    cfg_.nominalDownlink = bps;
}

BitsPerSecond
Channel::ackThroughput() const
{
    if (!ackEstimate_.primed())
        return cfg_.nominalDownlink * cfg_.protocolEfficiency;
    return ackEstimate_.value();
}

}  // namespace qvr::net
