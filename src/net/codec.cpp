#include "net/codec.hpp"

#include <cmath>

#include "common/log.hpp"

namespace qvr::net
{

VideoCodec::VideoCodec(const CodecConfig &cfg) : cfg_(cfg)
{
    QVR_REQUIRE(cfg.baseBitsPerPixel > 0.0, "bpp must be positive");
    QVR_REQUIRE(cfg.decodePixelsPerSecond > 0.0 &&
                    cfg.encodePixelsPerSecond > 0.0,
                "codec throughput must be positive");
}

Bytes
VideoCodec::compressedSize(double pixels, double content_complexity,
                           double subsample_factor,
                           bool with_depth) const
{
    QVR_REQUIRE(pixels >= 0.0, "negative pixel count");
    QVR_REQUIRE(subsample_factor >= 1.0, "subsample factor < 1");
    double bpp = cfg_.baseBitsPerPixel * content_complexity *
                 std::pow(subsample_factor, -cfg_.subsampleBppExponent);
    if (with_depth)
        bpp += cfg_.depthBitsPerPixel;
    return static_cast<Bytes>(pixels * bpp / 8.0);
}

Seconds
VideoCodec::decodeTime(double pixels) const
{
    return cfg_.perStreamOverhead + pixels / cfg_.decodePixelsPerSecond;
}

Seconds
VideoCodec::encodeTime(double pixels) const
{
    return cfg_.perStreamOverhead + pixels / cfg_.encodePixelsPerSecond;
}

}  // namespace qvr::net
