/**
 * @file
 * Video codec rate/latency model (H.264-class, as the paper uses
 * lossless H.264 via ffmpeg).
 *
 * Compressed size is pixels x bits-per-pixel; bpp depends on content
 * complexity and drops for MAR-subsampled layers (smooth upscaled
 * periphery content compresses better per pixel).  Encoding happens
 * on the server overlapped with streaming; decoding runs on the
 * mobile video processing unit (VD stage of Fig. 4).
 */

#ifndef QVR_NET_CODEC_HPP
#define QVR_NET_CODEC_HPP

#include "common/types.hpp"

namespace qvr::net
{

/** Codec calibration. */
struct CodecConfig
{
    /** Bits per pixel for full-resolution photoreal content; 0.55
     *  reproduces Table 1's 480-650 KB compressed stereo frames at
     *  2x 1920x2160 (8.3 Mpixel). */
    double baseBitsPerPixel = 0.55;
    /** bpp scales with subsample factor^-exponent: coarser layers
     *  carry less high-frequency energy. */
    double subsampleBppExponent = 0.3;
    /** Extra bits per pixel when a depth map must be shipped
     *  (static collaborative rendering needs depth for composition). */
    double depthBitsPerPixel = 0.10;
    /** Mobile VPU decode throughput (pixels per second). */
    double decodePixelsPerSecond = 1.5e9;
    /** Server-side encode throughput (pixels per second, per stream;
     *  hardware NVENC-class). */
    double encodePixelsPerSecond = 2.5e9;
    /** Fixed per-stream codec latency (bitstream setup). */
    Seconds perStreamOverhead = 0.2e-3;
};

/** Stateless codec model. */
class VideoCodec
{
  public:
    explicit VideoCodec(const CodecConfig &cfg = CodecConfig{});

    const CodecConfig &config() const { return cfg_; }

    /**
     * Compressed payload for @p pixels rendered pixels.
     * @param content_complexity relative entropy of the content
     *        (1.0 = typical; busier scenes compress worse)
     * @param subsample_factor the per-dimension MAR factor the layer
     *        was rendered at (1.0 = native)
     * @param with_depth also encode a depth map (static collab)
     */
    Bytes compressedSize(double pixels, double content_complexity,
                         double subsample_factor,
                         bool with_depth = false) const;

    /** Decode latency on the mobile VPU. */
    Seconds decodeTime(double pixels) const;

    /** Encode latency on the server (overlappable with streaming). */
    Seconds encodeTime(double pixels) const;

  private:
    CodecConfig cfg_;
};

}  // namespace qvr::net

#endif  // QVR_NET_CODEC_HPP
