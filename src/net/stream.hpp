/**
 * @file
 * Layer streaming session: Q-VR's software framework transmits the
 * middle and outer layers of each eye as separate parallel streams
 * from separate framebuffers (Section 3.2), overlapping server
 * rendering, encoding, transmission and mobile decoding.
 *
 * The physical downlink is one shared serial resource; "parallel"
 * streams help by letting early-finished layers start their transfer
 * (and their decode) before late layers render — pipeline overlap,
 * not bandwidth multiplication.
 *
 * Resilience: transfers are issued time-aware (Channel::transferAt),
 * so outage windows stall them realistically, and whole-transfer
 * losses (Gilbert-Elliott Bad bursts) are retried with bounded
 * exponential backoff.  A layer whose retry budget runs out is
 * counted lost; its final (corrupted/partial) delivery still times
 * out the link but the DegradationController treats the frame as a
 * remote miss.
 */

#ifndef QVR_NET_STREAM_HPP
#define QVR_NET_STREAM_HPP

#include <vector>

#include "common/types.hpp"
#include "net/channel.hpp"
#include "net/codec.hpp"
#include "sim/resource.hpp"

namespace qvr::net
{

/** One layer buffer ready to ship. */
struct LayerPayload
{
    Seconds renderReady = 0.0;   ///< server finished rendering it
    double pixels = 0.0;         ///< post-subsampling pixel count
    Bytes compressed = 0;        ///< encoded size

    /** Encoder-aligned buffer dimensions when the payload carries a
     *  compressed foveated layout layer (0 = legacy untagged payload,
     *  pixels is an analytic count).  streamFrame() rejects tagged
     *  payloads whose dimensions are not macroblock-aligned or whose
     *  pixel count disagrees with the buffer. */
    std::int32_t bufWidth = 0;
    std::int32_t bufHeight = 0;
};

/** Macroblock alignment tagged payloads must honour (ALVR/H.264). */
constexpr std::int32_t kPayloadAlignment = 32;

/** Bounded retry-with-backoff for lost transfers. */
struct RetryPolicy
{
    /** Retransmission attempts per layer after the first (0 = off). */
    std::uint32_t maxRetries = 2;
    /** Backoff before the first retry. */
    Seconds backoffBase = 2e-3;
    /** Multiplier applied per further retry. */
    double backoffFactor = 2.0;

    void validate() const;
};

/** Result of streaming one frame's payload set. */
struct StreamResult
{
    Seconds allDecoded = 0.0;    ///< last layer decoded on device
    Seconds networkTime = 0.0;   ///< pure serialisation time (sum)
    Bytes totalBytes = 0;
    std::vector<Seconds> perLayerArrival;

    /** Retransmission attempts this frame (lost transfers redone). */
    std::uint32_t retries = 0;
    /** Layers that exhausted the retry budget and never arrived
     *  intact — the frame's periphery is unusable. */
    std::uint32_t lostLayers = 0;
    /** Total time transfers sat stalled behind outage windows —
     *  the link-down signal the DegradationController watches. */
    Seconds stallTime = 0.0;
};

/**
 * Stateful per-session streamer: owns the link-serialisation and
 * decoder-occupancy timelines so successive frames queue naturally.
 */
class StreamSession
{
  public:
    StreamSession(Channel &channel, const VideoCodec &codec,
                  std::uint32_t decodeUnits = 2);

    /**
     * Stream @p layers (already encoded server-side).  Transfers are
     * serialised on the link in ready-order; each layer decodes as it
     * arrives on one of the parallel decode units.
     */
    StreamResult streamFrame(std::vector<LayerPayload> layers);

    Channel &channel() { return *channel_; }

    /** Replace the retry policy (validated). */
    void setRetryPolicy(const RetryPolicy &policy);
    const RetryPolicy &retryPolicy() const { return retry_; }

    /** Earliest time the downlink can accept another transfer (used
     *  by pipelines to pace frame issue off the network bottleneck). */
    Seconds linkNextFree() const { return link_.nextFree(); }

  private:
    Channel *channel_;
    const VideoCodec *codec_;
    sim::BusyResource link_;
    sim::MultiServerResource decoders_;
    RetryPolicy retry_;
};

}  // namespace qvr::net

#endif  // QVR_NET_STREAM_HPP
