/**
 * @file
 * Layer streaming session: Q-VR's software framework transmits the
 * middle and outer layers of each eye as separate parallel streams
 * from separate framebuffers (Section 3.2), overlapping server
 * rendering, encoding, transmission and mobile decoding.
 *
 * The physical downlink is one shared serial resource; "parallel"
 * streams help by letting early-finished layers start their transfer
 * (and their decode) before late layers render — pipeline overlap,
 * not bandwidth multiplication.
 */

#ifndef QVR_NET_STREAM_HPP
#define QVR_NET_STREAM_HPP

#include <vector>

#include "common/types.hpp"
#include "net/channel.hpp"
#include "net/codec.hpp"
#include "sim/resource.hpp"

namespace qvr::net
{

/** One layer buffer ready to ship. */
struct LayerPayload
{
    Seconds renderReady = 0.0;   ///< server finished rendering it
    double pixels = 0.0;         ///< post-subsampling pixel count
    Bytes compressed = 0;        ///< encoded size
};

/** Result of streaming one frame's payload set. */
struct StreamResult
{
    Seconds allDecoded = 0.0;    ///< last layer decoded on device
    Seconds networkTime = 0.0;   ///< pure serialisation time (sum)
    Bytes totalBytes = 0;
    std::vector<Seconds> perLayerArrival;
};

/**
 * Stateful per-session streamer: owns the link-serialisation and
 * decoder-occupancy timelines so successive frames queue naturally.
 */
class StreamSession
{
  public:
    StreamSession(Channel &channel, const VideoCodec &codec,
                  std::uint32_t decodeUnits = 2);

    /**
     * Stream @p layers (already encoded server-side).  Transfers are
     * serialised on the link in ready-order; each layer decodes as it
     * arrives on one of the parallel decode units.
     */
    StreamResult streamFrame(std::vector<LayerPayload> layers);

    Channel &channel() { return *channel_; }

    /** Earliest time the downlink can accept another transfer (used
     *  by pipelines to pace frame issue off the network bottleneck). */
    Seconds linkNextFree() const { return link_.nextFree(); }

  private:
    Channel *channel_;
    const VideoCodec *codec_;
    sim::BusyResource link_;
    sim::MultiServerResource decoders_;
};

}  // namespace qvr::net

#endif  // QVR_NET_STREAM_HPP
