/**
 * @file
 * Downlink network channel model.
 *
 * The paper computes network latency as compressed-frame-size over
 * bandwidth, with 20 dB-SNR white noise injected to reflect real
 * channels, and validates against netcat.  We model per-transfer
 * goodput as nominal bandwidth x protocol efficiency x a lognormal-ish
 * noise factor derived from the SNR, plus a base propagation delay,
 * and expose the ACK-derived throughput estimate that LIWC monitors
 * (Section 4.1: "monitor the network's ACK packets for assessing the
 * remote latencies").
 *
 * Fault injection: the channel consumes a fault::FaultSchedule.  A
 * transfer issued at time t sees the schedule's link state at t —
 * hard-outage windows stall it until the window closes, degradation
 * windows collapse bandwidth / add loss, and bursty windows drive a
 * Gilbert-Elliott two-state chain that can also mark the whole
 * transfer as lost (the stream layer retries those).  With an empty
 * schedule the arithmetic and RNG draw order are identical to the
 * fault-free model, so seeded runs stay bit-exact.
 */

#ifndef QVR_NET_CHANNEL_HPP
#define QVR_NET_CHANNEL_HPP

#include <string>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "fault/schedule.hpp"

namespace qvr::net
{

/** Link-level configuration. */
struct ChannelConfig
{
    std::string name = "Wi-Fi";
    BitsPerSecond nominalDownlink = fromMbps(200.0);
    /** MAC/transport protocol efficiency (headers, ACK turnaround). */
    double protocolEfficiency = 0.67;
    /** Channel SNR in dB; drives the per-transfer rate jitter. */
    double snrDb = 20.0;
    /** One-way propagation + queuing floor. */
    Seconds baseLatency = 2e-3;
    /**
     * Packet loss probability.  Lost packets are retransmitted:
     * goodput divides by (1 - loss) and each loss event adds one
     * retransmission round trip to the transfer tail.
     */
    double packetLoss = 0.0;
    /** MTU used for loss accounting. */
    Bytes packetBytes = 1400;

    /** Panic on physically impossible values (negative latency, loss
     *  outside [0,1), zero MTU, non-positive bandwidth). */
    void validate() const;

    /** Table 2 presets. */
    static ChannelConfig wifi();
    static ChannelConfig lte4g();
    static ChannelConfig early5g();
};

/** Outcome of one downlink transfer. */
struct TransferResult
{
    Seconds duration = 0.0;       ///< base latency + serialisation
    BitsPerSecond goodput = 0.0;  ///< achieved rate for this transfer
    /** Time spent stalled behind an outage window (included in
     *  duration). */
    Seconds stall = 0.0;
    /** The transfer was dropped wholesale (Gilbert-Elliott Bad
     *  state); the payload did NOT arrive — the caller must retry. */
    bool lost = false;
};

/**
 * Stateful channel: produces per-transfer latencies and maintains the
 * ACK-visible throughput estimate.
 */
class Channel
{
  public:
    Channel(const ChannelConfig &cfg, Rng rng);
    explicit Channel(const ChannelConfig &cfg) : Channel(cfg, Rng(42)) {}

    const ChannelConfig &config() const { return cfg_; }

    /**
     * Simulate transferring @p payload bytes downlink, issued at
     * unspecified time: fault windows do not apply (legacy one-shot
     * outages injected with injectOutage() do).
     */
    TransferResult transfer(Bytes payload);

    /**
     * Simulate transferring @p payload bytes downlink for a transfer
     * that starts at absolute sim time @p start.  Consults the fault
     * schedule: an active outage window stalls the transfer until the
     * window closes; degradation/bursty windows shape goodput, loss,
     * and whole-transfer drops.
     */
    TransferResult transferAt(Bytes payload, Seconds start);

    /**
     * Change the link's nominal downlink mid-session (coverage
     * change, contention, handover).  The ACK estimate keeps its
     * history and converges to the new rate, exactly as LIWC would
     * observe on hardware.
     */
    void setNominalDownlink(BitsPerSecond bps);

    /** Change the loss rate mid-session (interference burst). */
    void setPacketLoss(double loss);

    /**
     * Legacy one-shot outage: the entire @p duration is added to the
     * next transfer, whenever it is issued.  Superseded by
     * injectOutageWindow(), which models the outage as a time window;
     * kept for callers with no notion of sim time.
     */
    void injectOutage(Seconds duration);

    /**
     * Inject a hard outage as a time window: every transfer issued
     * (via transferAt) inside [start, start+duration) stalls until
     * the window closes; transfers before or after are untouched.
     */
    void injectOutageWindow(Seconds start, Seconds duration);

    /** Attach a fault schedule (copied); replaces any previous one
     *  and resets the Gilbert-Elliott burst state. */
    void setFaultSchedule(const fault::FaultSchedule &schedule);

    const fault::FaultSchedule &faultSchedule() const { return faults_; }

    /**
     * Throughput as observable from ACK timing (EWMA over completed
     * transfers) — the hardware-level signal LIWC consumes.  Before
     * any transfer completes, returns the protocol-derated nominal.
     */
    BitsPerSecond ackThroughput() const;

    /** Mean goodput applied so far (diagnostics). */
    const RunningStat &goodputStats() const { return goodputStats_; }

  private:
    TransferResult shapedTransfer(Bytes payload, double bw_factor,
                                  double loss);

    ChannelConfig cfg_;
    Rng rng_;
    Ewma ackEstimate_;
    RunningStat goodputStats_;
    Seconds pendingOutage_ = 0.0;
    fault::FaultSchedule faults_;
    fault::GilbertElliott ge_;
};

}  // namespace qvr::net

#endif  // QVR_NET_CHANNEL_HPP
