/**
 * @file
 * Downlink network channel model.
 *
 * The paper computes network latency as compressed-frame-size over
 * bandwidth, with 20 dB-SNR white noise injected to reflect real
 * channels, and validates against netcat.  We model per-transfer
 * goodput as nominal bandwidth x protocol efficiency x a lognormal-ish
 * noise factor derived from the SNR, plus a base propagation delay,
 * and expose the ACK-derived throughput estimate that LIWC monitors
 * (Section 4.1: "monitor the network's ACK packets for assessing the
 * remote latencies").
 */

#ifndef QVR_NET_CHANNEL_HPP
#define QVR_NET_CHANNEL_HPP

#include <string>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace qvr::net
{

/** Link-level configuration. */
struct ChannelConfig
{
    std::string name = "Wi-Fi";
    BitsPerSecond nominalDownlink = fromMbps(200.0);
    /** MAC/transport protocol efficiency (headers, ACK turnaround). */
    double protocolEfficiency = 0.67;
    /** Channel SNR in dB; drives the per-transfer rate jitter. */
    double snrDb = 20.0;
    /** One-way propagation + queuing floor. */
    Seconds baseLatency = 2e-3;
    /**
     * Packet loss probability.  Lost packets are retransmitted:
     * goodput divides by (1 - loss) and each loss event adds one
     * retransmission round trip to the transfer tail.
     */
    double packetLoss = 0.0;
    /** MTU used for loss accounting. */
    Bytes packetBytes = 1400;

    /** Table 2 presets. */
    static ChannelConfig wifi();
    static ChannelConfig lte4g();
    static ChannelConfig early5g();
};

/** Outcome of one downlink transfer. */
struct TransferResult
{
    Seconds duration = 0.0;       ///< base latency + serialisation
    BitsPerSecond goodput = 0.0;  ///< achieved rate for this transfer
};

/**
 * Stateful channel: produces per-transfer latencies and maintains the
 * ACK-visible throughput estimate.
 */
class Channel
{
  public:
    Channel(const ChannelConfig &cfg, Rng rng);
    explicit Channel(const ChannelConfig &cfg) : Channel(cfg, Rng(42)) {}

    const ChannelConfig &config() const { return cfg_; }

    /** Simulate transferring @p payload bytes downlink. */
    TransferResult transfer(Bytes payload);

    /**
     * Change the link's nominal downlink mid-session (coverage
     * change, contention, handover).  The ACK estimate keeps its
     * history and converges to the new rate, exactly as LIWC would
     * observe on hardware.
     */
    void setNominalDownlink(BitsPerSecond bps);

    /** Change the loss rate mid-session (interference burst). */
    void setPacketLoss(double loss);

    /**
     * Inject a hard outage: transfers issued while the outage is
     * pending stall for @p duration before the link recovers.  Used
     * by the failure-injection tests and the reprojection-fallback
     * demo.  One-shot: consumed by the next transfer.
     */
    void injectOutage(Seconds duration);

    /**
     * Throughput as observable from ACK timing (EWMA over completed
     * transfers) — the hardware-level signal LIWC consumes.  Before
     * any transfer completes, returns the protocol-derated nominal.
     */
    BitsPerSecond ackThroughput() const;

    /** Mean goodput applied so far (diagnostics). */
    const RunningStat &goodputStats() const { return goodputStats_; }

  private:
    ChannelConfig cfg_;
    Rng rng_;
    Ewma ackEstimate_;
    RunningStat goodputStats_;
    Seconds pendingOutage_ = 0.0;
};

}  // namespace qvr::net

#endif  // QVR_NET_CHANNEL_HPP
