#include "net/stream.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace qvr::net
{

void
RetryPolicy::validate() const
{
    QVR_REQUIRE(backoffBase >= 0.0, "negative retry backoff");
    QVR_REQUIRE(backoffFactor >= 1.0, "backoff factor < 1");
}

StreamSession::StreamSession(Channel &channel, const VideoCodec &codec,
                             std::uint32_t decodeUnits)
    : channel_(&channel), codec_(&codec), decoders_(decodeUnits)
{
}

void
StreamSession::setRetryPolicy(const RetryPolicy &policy)
{
    policy.validate();
    retry_ = policy;
}

StreamResult
StreamSession::streamFrame(std::vector<LayerPayload> layers)
{
    StreamResult result;
    if (layers.empty())
        return result;

    for (const auto &layer : layers) {
        if (layer.bufWidth == 0 && layer.bufHeight == 0)
            continue;  // legacy untagged payload, analytic pixels
        QVR_REQUIRE(layer.bufWidth > 0 && layer.bufHeight > 0,
                    "tagged payload with a degenerate buffer");
        QVR_REQUIRE(layer.bufWidth % kPayloadAlignment == 0 &&
                        layer.bufHeight % kPayloadAlignment == 0,
                    "payload buffer is not macroblock-aligned");
        QVR_REQUIRE(layer.pixels ==
                        static_cast<double>(layer.bufWidth) *
                            layer.bufHeight,
                    "payload pixel count disagrees with its buffer");
    }

    // Link is serial: ship layers in render-ready order so an early
    // layer never waits behind a late one.
    std::sort(layers.begin(), layers.end(),
              [](const LayerPayload &a, const LayerPayload &b) {
                  return a.renderReady < b.renderReady;
              });

    for (const auto &layer : layers) {
        Seconds ready = layer.renderReady;
        Seconds backoff = retry_.backoffBase;
        std::uint32_t attempt = 0;
        for (;;) {
            // The transfer physically starts once the serial link
            // frees up; fault windows are evaluated at that instant.
            const Seconds start = std::max(ready, link_.nextFree());
            const TransferResult xfer =
                channel_->transferAt(layer.compressed, start);
            // Serialisation (and any outage stall) occupies the link;
            // the propagation floor does not.
            const Seconds serialise =
                xfer.duration - channel_->config().baseLatency;
            const Seconds sent = link_.serve(ready, serialise);
            result.networkTime += serialise;
            result.stallTime += xfer.stall;

            if (xfer.lost && attempt < retry_.maxRetries) {
                // Loss detected one propagation delay after the tail;
                // resend after the (exponential) backoff.
                attempt++;
                result.retries++;
                ready = sent + channel_->config().baseLatency + backoff;
                backoff *= retry_.backoffFactor;
                continue;
            }

            if (xfer.lost)
                result.lostLayers++;
            const Seconds arrived =
                sent + channel_->config().baseLatency;
            const Seconds decoded = decoders_.serve(
                arrived, codec_->decodeTime(layer.pixels));

            result.perLayerArrival.push_back(arrived);
            result.allDecoded = std::max(result.allDecoded, decoded);
            result.totalBytes += layer.compressed;
            break;
        }
    }
    return result;
}

}  // namespace qvr::net
