#include "net/stream.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace qvr::net
{

StreamSession::StreamSession(Channel &channel, const VideoCodec &codec,
                             std::uint32_t decodeUnits)
    : channel_(&channel), codec_(&codec), decoders_(decodeUnits)
{
}

StreamResult
StreamSession::streamFrame(std::vector<LayerPayload> layers)
{
    StreamResult result;
    if (layers.empty())
        return result;

    // Link is serial: ship layers in render-ready order so an early
    // layer never waits behind a late one.
    std::sort(layers.begin(), layers.end(),
              [](const LayerPayload &a, const LayerPayload &b) {
                  return a.renderReady < b.renderReady;
              });

    for (const auto &layer : layers) {
        const TransferResult xfer = channel_->transfer(layer.compressed);
        // Serialisation occupies the link for the payload time; the
        // propagation floor does not.
        const Seconds serialise =
            xfer.duration - channel_->config().baseLatency;
        const Seconds sent =
            link_.serve(layer.renderReady, serialise);
        const Seconds arrived = sent + channel_->config().baseLatency;
        const Seconds decoded =
            decoders_.serve(arrived, codec_->decodeTime(layer.pixels));

        result.perLayerArrival.push_back(arrived);
        result.allDecoded = std::max(result.allDecoded, decoded);
        result.networkTime += serialise;
        result.totalBytes += layer.compressed;
    }
    return result;
}

}  // namespace qvr::net
