/**
 * @file
 * Foveated layer partition geometry and pixel accounting.
 *
 * Q-VR reorganises the classic three-layer foveation into a local
 * fovea (radius e1, full resolution) and two remote periphery layers
 * (middle annulus to *e2, outer beyond), each streamed at the reduced
 * resolution the MAR model permits (Section 3.1).  This module turns
 * an (e1, e2, gaze) triple into pixel counts, workload fractions and
 * transmitted-resolution fractions — the quantities every pipeline
 * model and the LIWC latency predictor consume.
 */

#ifndef QVR_FOVEATION_LAYERS_HPP
#define QVR_FOVEATION_LAYERS_HPP

#include <cstdint>
#include <unordered_map>

#include "common/geometry.hpp"
#include "foveation/display.hpp"
#include "foveation/mar.hpp"

namespace qvr::foveation
{

/** A concrete per-frame partition, angles in degrees. */
struct LayerPartition
{
    double e1 = 5.0;   ///< fovea radius (local, full resolution)
    double e2 = 25.0;  ///< middle/outer boundary (*e2 of Eq. 1)
    Vec2 gaze;         ///< fovea centre, degrees from screen centre
};

/** Pixel accounting for one eye under a partition. */
struct LayerPixels
{
    double foveaPixels = 0.0;    ///< full-resolution local pixels
    double middlePixels = 0.0;   ///< post-subsampling middle pixels
    double outerPixels = 0.0;    ///< post-subsampling outer pixels
    double middleFactor = 1.0;   ///< s_1 applied to the middle layer
    double outerFactor = 1.0;    ///< s_2 applied to the outer layer

    double
    peripheryPixels() const
    {
        return middlePixels + outerPixels;
    }

    double
    totalRendered() const
    {
        return foveaPixels + middlePixels + outerPixels;
    }
};

/**
 * Area, in square pixels, of the intersection of the disc of angular
 * radius @p radius_deg centred at gaze offset @p gaze (degrees from
 * screen centre) with the visible screen rectangle.  Uses the
 * small-angle planar approximation (angular distance proportional to
 * on-screen distance), which is the approximation foveated-rendering
 * systems themselves apply.
 */
double discScreenAreaPixels(const DisplayConfig &display, Vec2 gaze,
                            double radius_deg);

/**
 * Geometry/accounting engine binding a display and a MAR model.
 */
class LayerGeometry
{
  public:
    LayerGeometry(const DisplayConfig &display, const MarModel &mar);

    const DisplayConfig &display() const { return display_; }
    const MarModel &mar() const { return mar_; }

    /** Pixel accounting for @p partition (one eye). */
    LayerPixels pixelCounts(const LayerPartition &partition) const;

    /**
     * Eq. 1: pick *e2 in (e1, max eccentricity] minimising the
     * post-subsampling periphery pixel total P_middle + P_outer.
     */
    double selectOptimalE2(double e1, Vec2 gaze) const;

    /** Fraction of the screen area inside the fovea disc ("%fovea"
     *  of Eq. 2, the local workload fraction). */
    double foveaAreaFraction(double e1, Vec2 gaze) const;

    /**
     * Rendered-resolution fraction: total rendered pixels (all
     * layers, post-subsampling) relative to the full native frame.
     * Figure 13's "resolution reduction" is 1 minus this.
     */
    double renderedResolutionFraction(const LayerPartition &p) const;

    /**
     * Area-weighted *linear* resolution fraction: each layer
     * contributes its native-area share times 1/s_i.  This is the
     * "resolution reduction" metric of Figure 13 (1 minus this
     * value); it is gentler than the pixel-count fraction because
     * sub-sampling by s removes s^2 pixels but only s of linear
     * detail.
     */
    double linearResolutionFraction(const LayerPartition &p) const;

    /** Clamp an eccentricity request into the legal [min, max]. */
    double clampE1(double e1) const;

    /** Smallest legal fovea radius (classic 5-degree fovea). */
    static constexpr double kMinE1 = 5.0;

  private:
    DisplayConfig display_;
    MarModel mar_;
};

/**
 * Memoising front-end for per-frame partition queries.  The
 * simulation asks for (e1, gaze) -> (optimal e2, pixel accounting)
 * thousands of times per run with heavily repeated, coarsely
 * quantised arguments; hardware would realise the same function as a
 * small lookup structure.  Quantisation: e1 to 0.25 deg, gaze to
 * 1 deg — both below the tuning granularity of the system.
 */
class PartitionOracle
{
  public:
    explicit PartitionOracle(const LayerGeometry &geometry);

    /** Resolved partition plus pixel accounting. */
    struct Resolved
    {
        LayerPartition partition;
        LayerPixels pixels;
    };

    /** Quantised, cached equivalent of selectOptimalE2+pixelCounts. */
    const Resolved &resolve(double e1, Vec2 gaze) const;

    const LayerGeometry &geometry() const { return *geometry_; }

    std::size_t cacheSize() const { return cache_.size(); }

  private:
    const LayerGeometry *geometry_;
    mutable std::unordered_map<std::uint64_t, Resolved> cache_;
};

}  // namespace qvr::foveation

#endif  // QVR_FOVEATION_LAYERS_HPP
