/**
 * @file
 * Minimum-angle-of-resolution (MAR) acuity model.
 *
 * Human visual acuity falls off linearly with eccentricity e:
 *     omega(e) = m * e + omega_0                      (paper Eq. 1)
 * where omega_0 is the foveal MAR (~1 arcmin for 20/20 vision) and m
 * the acuity fall-off slope from the user studies the paper cites
 * (Guenter et al. 2012; Albert et al. 2017; Meng et al. 2018).
 *
 * A display layer sub-sampled by factor s shows angular detail of
 * s * omega_star (omega_star = angular pixel pitch); perception is
 * preserved while s * omega_star <= omega(e) for every eccentricity
 * the layer covers, i.e. the constraint binds at the layer's inner
 * edge.
 */

#ifndef QVR_FOVEATION_MAR_HPP
#define QVR_FOVEATION_MAR_HPP

#include "foveation/display.hpp"

namespace qvr::foveation
{

/** Linear MAR model parameters (degrees). */
struct MarModel
{
    /** Foveal MAR omega_0: 1 arcmin = 1/60 degree. */
    double omega0 = 1.0 / 60.0;
    /** MAR slope m (deg of MAR per deg of eccentricity);
     *  Guenter et al. report 0.022-0.034, we take their mid value. */
    double slope = 0.028;
    /**
     * Cap on the per-dimension sub-sampling factor.  Production
     * foveated pipelines bound periphery blur regardless of what the
     * raw MAR line permits (reconstruction/aliasing artefacts appear
     * under motion well before static acuity predicts); 2x per
     * dimension in the streamed-periphery setting (video-coded
     * layers tolerate less sub-sampling than locally rendered ones).
     */
    double maxSamplingFactor = 2.0;
    /**
     * Safety margin applied before the MAR bound is converted to a
     * sampling factor (>1 renders the periphery finer than the bare
     * constraint requires).
     */
    double qualityMargin = 1.0;

    /** omega(e): smallest resolvable angular detail at ecc. e. */
    double
    mar(double eccentricity_deg) const
    {
        return slope * eccentricity_deg + omega0;
    }

    /**
     * Maximum perception-safe sub-sampling factor for a layer whose
     * inner edge sits at @p inner_ecc_deg (Eq. 1's s_i), clamped to
     * >= 1 because a layer cannot be rendered above display
     * resolution.
     */
    double
    samplingFactor(double inner_ecc_deg, const DisplayConfig &display) const
    {
        const double s =
            mar(inner_ecc_deg) / (display.pixelPitchDeg() * qualityMargin);
        if (s < 1.0)
            return 1.0;
        return s > maxSamplingFactor ? maxSamplingFactor : s;
    }

    /**
     * Eccentricity below which the display itself is the limit
     * (sampling factor 1): inside this radius, rendering at reduced
     * resolution WOULD be perceptible.
     */
    double
    nativeLimitEccentricity(const DisplayConfig &display) const
    {
        const double e = (display.pixelPitchDeg() - omega0) / slope;
        return e < 0.0 ? 0.0 : e;
    }
};

}  // namespace qvr::foveation

#endif  // QVR_FOVEATION_MAR_HPP
