/**
 * @file
 * Encoder-aligned compressed foveated frame layout.
 *
 * ALVR's foveated-encoding path (MakeFoveatedDecodeParams) sizes the
 * transported eye buffers to encoder-friendly multiples of 32 pixels
 * and compensates with an edge-ratio rescale: the optimized dimension
 * is aligned UP, and the sampling ratio is recomputed from the aligned
 * size so the mapping stays exact.  We adopt the same discipline for
 * Q-VR's periphery layers: each layer gets an axis-aligned buffer
 * whose dimensions are multiples of the codec macroblock, covering
 * exactly the native-space window the composition pass will sample,
 * at (or slightly finer than) the requested subsample factor.
 *
 * The derivation is pure geometry on doubles so the remote server,
 * the network layer and the pixel engine can all share it without
 * depending on image buffers.
 */

#ifndef QVR_FOVEATION_COMPRESSED_LAYOUT_HPP
#define QVR_FOVEATION_COMPRESSED_LAYOUT_HPP

#include <cstdint>

namespace qvr::foveation
{

/**
 * Affine map from native display coordinates to a layer's texel
 * coordinates: texel = (native - origin) / scale, per axis.  The
 * legacy full-frame layers are the special case origin = 0,
 * scale = subsample factor (LayerTransform::uniform), for which the
 * generalized expression is bit-identical to the historical
 * `native / s` (subtracting an exact 0.0 never changes the value).
 */
struct LayerTransform
{
    double originX = 0.0;  ///< native x of the buffer's left edge
    double originY = 0.0;  ///< native y of the buffer's top edge
    double scaleX = 1.0;   ///< native pixels per buffer texel
    double scaleY = 1.0;

    static LayerTransform
    uniform(double s)
    {
        return LayerTransform{0.0, 0.0, s, s};
    }
};

/** One transported layer buffer: aligned dimensions + its map. */
struct CompressedLayer
{
    std::int32_t bufWidth = 0;   ///< multiple of the alignment
    std::int32_t bufHeight = 0;  ///< multiple of the alignment
    LayerTransform map;          ///< native -> texel

    double
    pixels() const
    {
        return static_cast<double>(bufWidth) * bufHeight;
    }
};

/** Inputs to the layout derivation (all in native display pixels). */
struct CompressedLayoutParams
{
    double centerX = 0.0;       ///< fovea centre
    double centerY = 0.0;
    double foveaRadius = 0.0;   ///< e1, pixels
    double middleRadius = 0.0;  ///< e2, pixels
    double blendBand = 16.0;    ///< cross-fade band width, pixels
    double sMiddle = 1.0;       ///< requested per-dim subsample
    double sOuter = 1.0;
    std::int32_t frameWidth = 0;
    std::int32_t frameHeight = 0;
    /** Encoder macroblock alignment (32 per ALVR / H.264 SIMD row). */
    std::int32_t alignment = 32;

    /** Panic on impossible values. */
    void validate() const;
};

/** Derived per-frame layout for the two transported periphery layers. */
struct CompressedFrameLayout
{
    CompressedLayer middle;  ///< cropped to the blend-annulus window
    CompressedLayer outer;   ///< full frame at reduced resolution

    /** Total transported periphery pixels for one eye. */
    double
    peripheryPixels() const
    {
        return middle.pixels() + outer.pixels();
    }
};

/**
 * Derive the encoder-aligned layout.
 *
 * Outer layer: the whole frame at ~sOuter; buffer dims are
 * ceil(frame / sOuter) aligned up to @p alignment, and the effective
 * scale is recomputed as frame / buf (the edge-ratio rescale — the
 * aligned buffer is never coarser than requested).
 *
 * Middle layer: only the disc that composition can ever sample from
 * it (radius e2 + blendBand/2, plus a bilinear-footprint margin) is
 * covered, clipped to the frame; the window is aligned the same way.
 */
CompressedFrameLayout makeCompressedLayout(
    const CompressedLayoutParams &p);

/** Smallest multiple of @p alignment that is >= @p v (v >= 0). */
std::int32_t alignUp(std::int32_t v, std::int32_t alignment);

}  // namespace qvr::foveation

#endif  // QVR_FOVEATION_COMPRESSED_LAYOUT_HPP
