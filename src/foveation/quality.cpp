#include "foveation/quality.hpp"

#include <algorithm>
#include <cmath>

namespace qvr::foveation
{

QualityReport
auditPartition(const LayerGeometry &geometry,
               const LayerPartition &partition)
{
    const DisplayConfig &display = geometry.display();
    const MarModel &mar = geometry.mar();
    const double pitch = display.pixelPitchDeg();
    const LayerPixels px = geometry.pixelCounts(partition);

    // Shown angular detail per layer: full resolution in the fovea,
    // s_i * pitch in the periphery layers.
    auto shown_detail = [&](double ecc) {
        if (ecc <= partition.e1)
            return pitch;
        if (ecc <= partition.e2)
            return px.middleFactor * pitch;
        return px.outerFactor * pitch;
    };

    QualityReport report;
    report.worstMarginDeg = std::numeric_limits<double>::infinity();

    // The margin mar(e) - shown(e) is monotone increasing inside each
    // layer (mar grows, shown is constant), so the candidates are the
    // layer inner edges plus e = 0.
    const double candidates[] = {0.0, partition.e1 + 1e-9,
                                 partition.e2 + 1e-9};
    for (double ecc : candidates) {
        if (ecc > display.maxEccentricity())
            continue;
        const double margin = mar.mar(ecc) - shown_detail(ecc);
        if (margin < report.worstMarginDeg) {
            report.worstMarginDeg = margin;
            report.worstEccentricity = ecc;
        }
    }

    // At e=0 the display itself may already be coarser than retinal
    // acuity (shown = pitch > mar(0)); that is the native-display
    // floor, not a foveation artefact, so compare against it.
    const double native_floor = std::min(0.0, mar.mar(0.0) - pitch);
    report.perceptuallyLossless =
        report.worstMarginDeg >= native_floor - 1e-12;

    if (report.perceptuallyLossless) {
        report.meanOpinionScore = 10.0;
    } else {
        // Score decays with relative violation depth; saturates at 1.
        const double violation =
            (native_floor - report.worstMarginDeg) / pitch;
        report.meanOpinionScore =
            std::max(1.0, 10.0 - 3.0 * violation);
    }
    return report;
}

}  // namespace qvr::foveation
