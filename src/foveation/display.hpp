/**
 * @file
 * Per-eye display geometry: resolution, field of view, and the
 * angular pixel pitch that anchors the MAR model.
 */

#ifndef QVR_FOVEATION_DISPLAY_HPP
#define QVR_FOVEATION_DISPLAY_HPP

#include <cstdint>

#include "common/geometry.hpp"

namespace qvr::foveation
{

/**
 * One eye of the HMD.  Default matches the paper's evaluation
 * resolution (1920x2160 per eye) with a typical ~110-degree lens.
 */
struct DisplayConfig
{
    std::int32_t width = 1920;    ///< pixels per eye, horizontal
    std::int32_t height = 2160;   ///< pixels per eye, vertical
    double fovHorizontal = 110.0; ///< degrees
    double fovVertical = 110.0;   ///< degrees

    /** Pixels per degree, horizontal (the binding axis for MAR). */
    double
    pixelsPerDegree() const
    {
        return static_cast<double>(width) / fovHorizontal;
    }

    /** Angular pixel pitch omega* in degrees (Eq. 1 denominator). */
    double
    pixelPitchDeg() const
    {
        return 1.0 / pixelsPerDegree();
    }

    /** Total pixels per eye. */
    std::int64_t
    pixelCount() const
    {
        return static_cast<std::int64_t>(width) * height;
    }

    /** Angular eccentricity of the farthest screen corner from the
     *  screen centre (degrees), i.e. the largest useful e2. */
    double
    maxEccentricity() const
    {
        const double half_w = fovHorizontal / 2.0;
        const double half_h = fovVertical / 2.0;
        return Vec2{half_w, half_h}.norm();
    }
};

}  // namespace qvr::foveation

#endif  // QVR_FOVEATION_DISPLAY_HPP
