/**
 * @file
 * Perceptual-quality accounting for a foveated partition.
 *
 * Section 3.1's user survey found no visible quality difference as
 * long as the target MAR is satisfied at every eccentricity.  This
 * module checks that constraint analytically (worst-case MAR margin
 * over the frame) and maps violations to a mean-opinion-score-style
 * penalty, so tests and examples can assert "perception preserved"
 * without human subjects.
 */

#ifndef QVR_FOVEATION_QUALITY_HPP
#define QVR_FOVEATION_QUALITY_HPP

#include "foveation/layers.hpp"

namespace qvr::foveation
{

/** Result of a perceptual audit of one partition. */
struct QualityReport
{
    /**
     * Minimum over the frame of mar(e) - shown_detail(e), degrees.
     * >= 0 means every pixel meets its acuity budget (imperceptible
     * from native rendering per the cited studies).
     */
    double worstMarginDeg = 0.0;

    /** Eccentricity (deg) where the worst margin occurs. */
    double worstEccentricity = 0.0;

    /** True iff worstMarginDeg >= 0 (perception preserved). */
    bool perceptuallyLossless = false;

    /**
     * Survey-style mean opinion score in [1, 10]: 10 when lossless,
     * decaying with the relative depth of the worst violation.
     */
    double meanOpinionScore = 10.0;
};

/** Audit @p partition against @p geometry's display and MAR model. */
QualityReport auditPartition(const LayerGeometry &geometry,
                             const LayerPartition &partition);

}  // namespace qvr::foveation

#endif  // QVR_FOVEATION_QUALITY_HPP
