#include "foveation/layers.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace qvr::foveation
{

namespace
{

/**
 * Area of the intersection of a disc (centre (cx, cy), radius r) with
 * the rectangle [0, w] x [0, h], by integrating the vertical extent of
 * the disc across x with Simpson's rule.  512 panels give relative
 * error below 1e-6 for all the radii this module uses.
 */
double
discRectArea(double cx, double cy, double r, double w, double h)
{
    if (r <= 0.0 || w <= 0.0 || h <= 0.0)
        return 0.0;
    const double x_lo = std::max(0.0, cx - r);
    const double x_hi = std::min(w, cx + r);
    if (x_hi <= x_lo)
        return 0.0;

    auto extent = [cx, cy, r, h](double x) {
        const double dx = x - cx;
        const double disc = r * r - dx * dx;
        if (disc <= 0.0)
            return 0.0;
        const double half = std::sqrt(disc);
        const double top = std::min(h, cy + half);
        const double bot = std::max(0.0, cy - half);
        return std::max(0.0, top - bot);
    };

    constexpr int kPanels = 512;  // even
    const double dx = (x_hi - x_lo) / kPanels;
    double sum = extent(x_lo) + extent(x_hi);
    for (int i = 1; i < kPanels; i++) {
        const double x = x_lo + dx * i;
        sum += extent(x) * ((i % 2) ? 4.0 : 2.0);
    }
    return sum * dx / 3.0;
}

}  // namespace

double
discScreenAreaPixels(const DisplayConfig &display, Vec2 gaze,
                     double radius_deg)
{
    const double ppd = display.pixelsPerDegree();
    const double cx = display.width / 2.0 + gaze.x * ppd;
    const double cy = display.height / 2.0 + gaze.y * ppd;
    return discRectArea(cx, cy, radius_deg * ppd,
                        static_cast<double>(display.width),
                        static_cast<double>(display.height));
}

LayerGeometry::LayerGeometry(const DisplayConfig &display,
                             const MarModel &mar)
    : display_(display), mar_(mar)
{
    QVR_REQUIRE(display.width > 0 && display.height > 0,
                "display must have positive resolution");
}

LayerPixels
LayerGeometry::pixelCounts(const LayerPartition &partition) const
{
    QVR_REQUIRE(partition.e1 > 0.0, "e1 must be positive");
    QVR_REQUIRE(partition.e2 >= partition.e1, "e2 must be >= e1");

    const double total =
        static_cast<double>(display_.pixelCount());
    const double fovea_native =
        discScreenAreaPixels(display_, partition.gaze, partition.e1);
    const double inner2_native =
        discScreenAreaPixels(display_, partition.gaze, partition.e2);

    LayerPixels out;
    out.foveaPixels = fovea_native;
    // Middle layer constraint binds at its inner edge e1; outer at e2.
    out.middleFactor = mar_.samplingFactor(partition.e1, display_);
    out.outerFactor = mar_.samplingFactor(partition.e2, display_);

    const double middle_native =
        std::max(0.0, inner2_native - fovea_native);
    const double outer_native = std::max(0.0, total - inner2_native);
    out.middlePixels =
        middle_native / (out.middleFactor * out.middleFactor);
    out.outerPixels =
        outer_native / (out.outerFactor * out.outerFactor);
    return out;
}

double
LayerGeometry::selectOptimalE2(double e1, Vec2 gaze) const
{
    const double e_max = display_.maxEccentricity();
    if (e1 >= e_max)
        return e_max;

    // Grid search at 0.5-degree granularity: the objective is smooth
    // and shallow, so this matches the hardware's coarse tuning knob.
    double best_e2 = e_max;
    double best_cost = std::numeric_limits<double>::infinity();
    for (double e2 = e1 + 0.5; e2 <= e_max + 1e-9; e2 += 0.5) {
        LayerPartition p{e1, std::min(e2, e_max), gaze};
        const LayerPixels px = pixelCounts(p);
        const double cost = px.peripheryPixels();
        if (cost < best_cost) {
            best_cost = cost;
            best_e2 = p.e2;
        }
    }
    return best_e2;
}

double
LayerGeometry::foveaAreaFraction(double e1, Vec2 gaze) const
{
    const double total = static_cast<double>(display_.pixelCount());
    return discScreenAreaPixels(display_, gaze, e1) / total;
}

double
LayerGeometry::renderedResolutionFraction(const LayerPartition &p) const
{
    const LayerPixels px = pixelCounts(p);
    return px.totalRendered() /
           static_cast<double>(display_.pixelCount());
}

double
LayerGeometry::linearResolutionFraction(const LayerPartition &p) const
{
    const double total = static_cast<double>(display_.pixelCount());
    const double fovea_native =
        discScreenAreaPixels(display_, p.gaze, p.e1);
    const double inner2_native =
        discScreenAreaPixels(display_, p.gaze, p.e2);
    const double middle_native =
        std::max(0.0, inner2_native - fovea_native);
    const double outer_native = std::max(0.0, total - inner2_native);

    const double s1 = mar_.samplingFactor(p.e1, display_);
    const double s2 = mar_.samplingFactor(p.e2, display_);
    return (fovea_native + middle_native / s1 + outer_native / s2) /
           total;
}

double
LayerGeometry::clampE1(double e1) const
{
    return clamp(e1, kMinE1, display_.maxEccentricity());
}

PartitionOracle::PartitionOracle(const LayerGeometry &geometry)
    : geometry_(&geometry)
{
}

const PartitionOracle::Resolved &
PartitionOracle::resolve(double e1, Vec2 gaze) const
{
    const double e1q = std::round(e1 * 4.0) / 4.0;
    const auto gx = static_cast<std::int64_t>(std::round(gaze.x));
    const auto gy = static_cast<std::int64_t>(std::round(gaze.y));

    // Pack the quantised key: e1 in quarter degrees (<= 2^12), gaze
    // components offset to non-negative (<= 2^10 each).
    const auto e1_key =
        static_cast<std::uint64_t>(std::llround(e1q * 4.0));
    const auto gx_key = static_cast<std::uint64_t>(gx + 512);
    const auto gy_key = static_cast<std::uint64_t>(gy + 512);
    const std::uint64_t key =
        (e1_key << 24) | (gx_key << 12) | gy_key;

    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    Resolved r;
    const Vec2 gq{static_cast<double>(gx), static_cast<double>(gy)};
    r.partition.e1 = geometry_->clampE1(e1q);
    r.partition.gaze = gq;
    r.partition.e2 =
        geometry_->selectOptimalE2(r.partition.e1, gq);
    r.pixels = geometry_->pixelCounts(r.partition);
    return cache_.emplace(key, r).first->second;
}

}  // namespace qvr::foveation
