#include "foveation/compressed_layout.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace qvr::foveation
{

std::int32_t
alignUp(std::int32_t v, std::int32_t alignment)
{
    QVR_REQUIRE(alignment > 0, "alignment must be positive");
    QVR_REQUIRE(v >= 0, "cannot align a negative extent");
    const std::int32_t rem = v % alignment;
    return rem == 0 ? std::max(v, alignment) : v + (alignment - rem);
}

void
CompressedLayoutParams::validate() const
{
    QVR_REQUIRE(frameWidth > 0 && frameHeight > 0,
                "layout needs a non-empty frame");
    QVR_REQUIRE(sMiddle >= 1.0 && sOuter >= 1.0,
                "subsample factors must be >= 1");
    QVR_REQUIRE(middleRadius >= foveaRadius,
                "e2 must be >= e1");
    QVR_REQUIRE(foveaRadius >= 0.0 && blendBand >= 0.0,
                "radii and band must be non-negative");
    QVR_REQUIRE(alignment > 0, "alignment must be positive");
}

namespace
{

/** Aligned buffer extent + edge-ratio rescale for one axis: the
 *  buffer must cover @p used native pixels at a scale no coarser
 *  than @p s.  Mirrors ALVR's eyeWidthRatioAligned =
 *  optimizedEyeWidth / optimizedEyeWidthAligned. */
void
axisLayout(double used, double s, std::int32_t alignment,
           std::int32_t &buf, double &scale)
{
    const double texels = used / s;
    const auto needed =
        static_cast<std::int32_t>(std::ceil(texels));
    buf = alignUp(std::max(needed, 1), alignment);
    // Recompute the effective scale from the aligned size: sampling
    // `buf` texels across `used` native pixels.  buf >= used/s, so
    // scale <= s — alignment never coarsens the layer.
    scale = used / static_cast<double>(buf);
}

}  // namespace

CompressedFrameLayout
makeCompressedLayout(const CompressedLayoutParams &p)
{
    p.validate();
    CompressedFrameLayout out;

    // Outer layer: full frame.
    out.outer.map.originX = 0.0;
    out.outer.map.originY = 0.0;
    axisLayout(static_cast<double>(p.frameWidth), p.sOuter,
               p.alignment, out.outer.bufWidth,
               out.outer.map.scaleX);
    axisLayout(static_cast<double>(p.frameHeight), p.sOuter,
               p.alignment, out.outer.bufHeight,
               out.outer.map.scaleY);

    // Middle layer: composition samples it only where its blend
    // weight is positive, i.e. inside radius e2 + band/2.  The
    // bilinear footprint reaches one texel (= sMiddle native pixels)
    // past the sample, plus slack for the tile classifier's rounding
    // guard; cover that disc, clipped to the frame.
    const double reach =
        p.middleRadius + p.blendBand / 2.0 + 2.0 * p.sMiddle + 2.0;
    const double fw = static_cast<double>(p.frameWidth);
    const double fh = static_cast<double>(p.frameHeight);
    const double x0 =
        std::clamp(std::floor(p.centerX - reach), 0.0, fw - 1.0);
    const double y0 =
        std::clamp(std::floor(p.centerY - reach), 0.0, fh - 1.0);
    const double x1 =
        std::clamp(std::ceil(p.centerX + reach), x0 + 1.0, fw);
    const double y1 =
        std::clamp(std::ceil(p.centerY + reach), y0 + 1.0, fh);

    out.middle.map.originX = x0;
    out.middle.map.originY = y0;
    axisLayout(x1 - x0, p.sMiddle, p.alignment, out.middle.bufWidth,
               out.middle.map.scaleX);
    axisLayout(y1 - y0, p.sMiddle, p.alignment, out.middle.bufHeight,
               out.middle.map.scaleY);

    return out;
}

}  // namespace qvr::foveation
