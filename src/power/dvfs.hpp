/**
 * @file
 * GPU DVFS governor.
 *
 * The paper's sensitivity study (Table 4 / Fig. 15) sweeps *static*
 * GPU frequencies and notes that "reducing GPU frequency will not
 * always increase the energy benefit".  The natural follow-on —
 * implemented here as an extension — is to close that loop: a
 * utilisation-guided governor that lowers the clock while Q-VR's
 * balanced pipeline leaves GPU headroom and raises it the moment the
 * local branch becomes critical.  It composes with LIWC: the
 * controller's measured-GPU-rate term adapts to whatever frequency
 * the governor picks.
 */

#ifndef QVR_POWER_DVFS_HPP
#define QVR_POWER_DVFS_HPP

#include <cstddef>

#include "common/types.hpp"

namespace qvr::power
{

/** Governor tunables. */
struct DvfsConfig
{
    double minScale = 0.5;          ///< floor (e.g. 250 MHz)
    double maxScale = 1.0;          ///< nominal clock
    /** Keep busy/interval near this; below it, clock down. */
    double targetUtilisation = 0.80;
    /** Hysteresis band around the target. */
    double hysteresis = 0.10;
    /** Multiplicative step per decision. */
    double stepUp = 1.15;
    double stepDown = 0.94;
    /** Frames per decision window. */
    std::size_t window = 6;
    /**
     * Utilisation denominator floor.  A VR pipeline that renders
     * faster than the display needs is wasting energy, so busy time
     * is judged against max(actual interval, this floor) — by
     * default the 90 Hz frame budget.
     */
    Seconds referenceFloor = vr_requirements::kFrameBudget;
};

/**
 * Windowed utilisation governor.  Feed per-frame GPU busy time and
 * frame interval; read back the frequency scale to apply.
 */
class DvfsGovernor
{
  public:
    explicit DvfsGovernor(const DvfsConfig &cfg = DvfsConfig{});

    /** Record one frame; may adjust the scale at window boundaries.
     *  @return the scale to use for the NEXT frame. */
    double update(Seconds gpu_busy, Seconds frame_interval);

    double scale() const { return scale_; }
    std::size_t decisions() const { return decisions_; }

  private:
    DvfsConfig cfg_;
    double scale_;
    double busyAccum_ = 0.0;
    double intervalAccum_ = 0.0;
    std::size_t framesInWindow_ = 0;
    std::size_t decisions_ = 0;
};

}  // namespace qvr::power

#endif  // QVR_POWER_DVFS_HPP
