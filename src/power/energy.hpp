/**
 * @file
 * SoC + radio energy model for Figure 15's energy-efficiency study.
 *
 * GPU dynamic power scales cubically with frequency (voltage tracks
 * frequency on mobile rails), static power linearly with voltage;
 * radio power follows the LTE/Wi-Fi measurement literature the paper
 * cites ([23] Huang et al., [25] Jin et al.): an active receive power
 * plus a tail after each burst.  LIWC (25 mW) and UCA (94 mW) use the
 * paper's McPAT figures (Section 4.3).
 */

#ifndef QVR_POWER_ENERGY_HPP
#define QVR_POWER_ENERGY_HPP

#include <string>

#include "common/types.hpp"

namespace qvr::power
{

/** Joules, plain double but named for clarity. */
using Joules = double;

/** Radio power profile for one network type. */
struct RadioProfile
{
    double activeReceiveW = 0.8;
    double tailW = 0.3;
    Seconds tailDuration = 20e-3;

    static RadioProfile forNetwork(const std::string &name);
};

/** Power-model calibration. */
struct PowerConfig
{
    double gpuStaticW = 0.5;       ///< leakage at nominal voltage
    double gpuDynamicMaxW = 3.5;   ///< busy at nominal f, full util
    Hertz gpuNominalFreq = fromMHz(500.0);
    double vpuDecodeW = 0.30;      ///< video decode unit when active
    double liwcW = 0.025;          ///< paper Section 4.3 (McPAT)
    double ucaW = 0.094;           ///< per UCA instance, 500 MHz
    std::uint32_t ucaInstances = 2;
    RadioProfile radio;
};

/** Energy breakdown of one rendered frame. */
struct FrameEnergy
{
    Joules gpu = 0.0;
    Joules radio = 0.0;
    Joules vpu = 0.0;
    Joules accelerators = 0.0;  ///< LIWC + UCA
    Joules
    total() const
    {
        return gpu + radio + vpu + accelerators;
    }
};

/** Analytic energy model. */
class EnergyModel
{
  public:
    explicit EnergyModel(const PowerConfig &cfg = PowerConfig{});

    const PowerConfig &config() const { return cfg_; }

    /**
     * GPU energy for a frame interval of @p frame_time where the GPU
     * was busy for @p busy_time at @p freq_scale of nominal clock.
     */
    Joules gpuEnergy(Seconds busy_time, Seconds frame_time,
                     double freq_scale) const;

    /** Radio energy: active receive for @p active_time, tail capped
     *  by the remaining frame interval. */
    Joules radioEnergy(Seconds active_time, Seconds frame_time) const;

    /** VPU decode energy. */
    Joules vpuEnergy(Seconds decode_time) const;

    /** LIWC + UCA energy over one frame (they idle-gate outside
     *  their active windows; active fractions are tiny but counted). */
    Joules acceleratorEnergy(Seconds frame_time, bool liwc_enabled,
                             bool uca_enabled) const;

  private:
    PowerConfig cfg_;
};

}  // namespace qvr::power

#endif  // QVR_POWER_ENERGY_HPP
