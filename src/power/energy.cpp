#include "power/energy.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace qvr::power
{

RadioProfile
RadioProfile::forNetwork(const std::string &name)
{
    RadioProfile p;
    if (name == "Wi-Fi") {
        p.activeReceiveW = 0.8;
        p.tailW = 0.25;
        p.tailDuration = 15e-3;
    } else if (name == "4G LTE") {
        // LTE radios burn more in RRC_CONNECTED and hold a long tail.
        p.activeReceiveW = 1.4;
        p.tailW = 1.0;
        p.tailDuration = 60e-3;
    } else if (name == "Early 5G") {
        p.activeReceiveW = 1.8;
        p.tailW = 0.8;
        p.tailDuration = 30e-3;
    } else {
        QVR_WARN("unknown network '", name, "', using Wi-Fi profile");
    }
    return p;
}

EnergyModel::EnergyModel(const PowerConfig &cfg) : cfg_(cfg)
{
    QVR_REQUIRE(cfg.gpuNominalFreq > 0.0, "zero nominal frequency");
}

Joules
EnergyModel::gpuEnergy(Seconds busy_time, Seconds frame_time,
                       double freq_scale) const
{
    QVR_REQUIRE(freq_scale > 0.0, "non-positive frequency scale");
    // Voltage tracks frequency on mobile rails: P_dyn ~ f V^2 ~ f^3,
    // P_static ~ V ~ f.
    const double dyn =
        cfg_.gpuDynamicMaxW * freq_scale * freq_scale * freq_scale;
    const double stat = cfg_.gpuStaticW * freq_scale;
    return dyn * busy_time + stat * frame_time;
}

Joules
EnergyModel::radioEnergy(Seconds active_time, Seconds frame_time) const
{
    if (active_time <= 0.0)
        return 0.0;
    const Seconds tail =
        std::min(cfg_.radio.tailDuration,
                 std::max(0.0, frame_time - active_time));
    return cfg_.radio.activeReceiveW * active_time +
           cfg_.radio.tailW * tail;
}

Joules
EnergyModel::vpuEnergy(Seconds decode_time) const
{
    return cfg_.vpuDecodeW * decode_time;
}

Joules
EnergyModel::acceleratorEnergy(Seconds frame_time, bool liwc_enabled,
                               bool uca_enabled) const
{
    Joules e = 0.0;
    if (liwc_enabled)
        e += cfg_.liwcW * frame_time;
    if (uca_enabled)
        e += cfg_.ucaW * cfg_.ucaInstances * frame_time;
    return e;
}

}  // namespace qvr::power
