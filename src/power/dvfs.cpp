#include "power/dvfs.hpp"

#include <algorithm>

#include "common/geometry.hpp"
#include "common/log.hpp"

namespace qvr::power
{

DvfsGovernor::DvfsGovernor(const DvfsConfig &cfg)
    : cfg_(cfg), scale_(cfg.maxScale)
{
    QVR_REQUIRE(cfg.minScale > 0.0 && cfg.minScale <= cfg.maxScale,
                "bad DVFS scale range");
    QVR_REQUIRE(cfg.window >= 1, "window must be at least one frame");
    QVR_REQUIRE(cfg.stepUp > 1.0 && cfg.stepDown < 1.0,
                "steps must move in opposite directions");
}

double
DvfsGovernor::update(Seconds gpu_busy, Seconds frame_interval)
{
    busyAccum_ += gpu_busy;
    intervalAccum_ += std::max(frame_interval, cfg_.referenceFloor);
    framesInWindow_++;
    if (framesInWindow_ < cfg_.window)
        return scale_;

    const double utilisation =
        intervalAccum_ > 0.0 ? busyAccum_ / intervalAccum_ : 0.0;
    busyAccum_ = 0.0;
    intervalAccum_ = 0.0;
    framesInWindow_ = 0;
    decisions_++;

    if (utilisation > cfg_.targetUtilisation + cfg_.hysteresis) {
        scale_ = clamp(scale_ * cfg_.stepUp, cfg_.minScale,
                       cfg_.maxScale);
    } else if (utilisation <
               cfg_.targetUtilisation - cfg_.hysteresis) {
        scale_ = clamp(scale_ * cfg_.stepDown, cfg_.minScale,
                       cfg_.maxScale);
    }
    return scale_;
}

}  // namespace qvr::power
