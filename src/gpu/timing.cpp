#include "gpu/timing.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace qvr::gpu
{

MobileGpuModel::MobileGpuModel(const GpuConfig &cfg,
                               const GpuCostModel &cost)
    : cfg_(cfg), cost_(cost)
{
    QVR_REQUIRE(cfg.coreFrequency > 0.0, "zero GPU frequency");
    QVR_REQUIRE(cfg.totalLanes() > 0, "GPU without ALU lanes");
}

RenderTiming
MobileGpuModel::time(const RenderJob &job) const
{
    QVR_REQUIRE(job.shadedPixels >= 0.0, "negative pixel count");
    QVR_REQUIRE(job.frequencyScale > 0.0, "non-positive DVFS scale");

    RenderTiming t;

    // Command processor: serial driver/CP work per draw batch.
    t.commandCycles = static_cast<Cycles>(
        cost_.cyclesPerBatch * job.batches + cost_.passOverheadCycles);

    // Geometry front end: vertex shade + setup + bin.  Stereo jobs
    // may share vertex work across eyes (SMP).
    const double geometry_share =
        job.stereo ? cost_.stereoGeometryFactor : 1.0;
    t.geometryCycles = static_cast<Cycles>(
        static_cast<double>(job.triangles) * geometry_share /
        cost_.trianglesPerCycle);

    // Fragment back end: shaded fragments over the ALU array.
    const double fragments = job.shadedPixels * cost_.overdraw;
    const double ops = fragments * cost_.aluOpsPerPixel *
                       job.shadingCost;
    const double lane_rate = static_cast<double>(cfg_.totalLanes()) *
                             cost_.laneUtilisation;
    t.fragmentCycles = static_cast<Cycles>(ops / lane_rate);

    // TBDR overlap: geometry of tile N+1 overlaps fragment of tile N,
    // so the compute-limited total is max(geom, frag) plus the
    // pipeline fill from the shorter stage (approximated at 10%).
    const double geom = static_cast<double>(t.geometryCycles);
    const double frag = static_cast<double>(t.fragmentCycles);
    double compute =
        std::max(geom, frag) + 0.10 * std::min(geom, frag);
    compute += static_cast<double>(t.commandCycles);

    // Memory-boundedness: required DRAM rate vs. Table 2's 16 B/cyc.
    const double traffic = fragments * cost_.bytesPerPixel;
    const double bytes_per_cycle_needed =
        compute > 0.0 ? traffic / compute : 0.0;
    t.memoryStallFactor = std::max(
        1.0, bytes_per_cycle_needed /
                 static_cast<double>(cfg_.l2BytesPerCycle));

    t.totalCycles = static_cast<Cycles>(compute * t.memoryStallFactor);
    t.seconds = cyclesToSeconds(
        t.totalCycles, cfg_.coreFrequency * job.frequencyScale);
    return t;
}

Seconds
MobileGpuModel::renderSeconds(const RenderJob &job) const
{
    return time(job).seconds;
}

double
MobileGpuModel::triangleThroughput(double shading_cost,
                                   double pixels_per_tri) const
{
    // Cycles consumed per triangle once its share of fragment work is
    // attributed to it; inverse is the sustained triangle rate.
    const double geom_cpt = 1.0 / cost_.trianglesPerCycle;
    const double lane_rate = static_cast<double>(cfg_.totalLanes()) *
                             cost_.laneUtilisation;
    const double frag_cpt = pixels_per_tri * cost_.overdraw *
                            cost_.aluOpsPerPixel * shading_cost /
                            lane_rate;
    const double cpt = std::max(geom_cpt, frag_cpt) +
                       0.10 * std::min(geom_cpt, frag_cpt);
    return cfg_.coreFrequency / cpt;
}

}  // namespace qvr::gpu
