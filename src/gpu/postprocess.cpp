#include "gpu/postprocess.hpp"

namespace qvr::gpu::postprocess
{

namespace
{

/** Seconds for @p ops ALU operations on the GPU's lane array. */
Seconds
opsTime(const MobileGpuModel &gpu, double ops)
{
    const double lane_rate =
        static_cast<double>(gpu.config().totalLanes()) *
        gpu.cost().laneUtilisation;
    const double cycles = ops / lane_rate;
    return cycles / gpu.config().coreFrequency;
}

}  // namespace

Seconds
atwTime(const MobileGpuModel &gpu, double pixels,
        const PostprocessCosts &costs)
{
    return opsTime(gpu, pixels * costs.atwOpsPerPixel);
}

Seconds
foveatedCompositionTime(const MobileGpuModel &gpu, double pixels,
                        double edge_fraction,
                        const PostprocessCosts &costs)
{
    const double blend_ops = pixels * costs.foveaBlendOpsPerPixel;
    const double msaa_ops =
        pixels * edge_fraction * costs.msaaEdgeOpsPerPixel;
    return opsTime(gpu, blend_ops + msaa_ops);
}

Seconds
depthCompositionTime(const MobileGpuModel &gpu, double pixels,
                     const PostprocessCosts &costs)
{
    const Seconds compose =
        opsTime(gpu, pixels * costs.depthCompositeOpsPerPixel);
    const Seconds collide =
        costs.collisionDetectCycles / gpu.config().coreFrequency;
    return compose + collide;
}

}  // namespace qvr::gpu::postprocess
