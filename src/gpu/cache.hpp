/**
 * @file
 * Set-associative LRU cache model.
 *
 * Used two ways: (1) directly, by the texture-access microbenchmarks
 * and calibration tests that justify the analytic bytes-per-pixel
 * figure in GpuCostModel; (2) as the building block for the UCA's
 * small tile buffer.  It is a functional+statistical model: it tracks
 * hits/misses per access but does not store data.
 */

#ifndef QVR_GPU_CACHE_HPP
#define QVR_GPU_CACHE_HPP

#include <cstdint>
#include <vector>

namespace qvr::gpu
{

/** Geometry of a cache instance. */
struct CacheConfig
{
    std::uint32_t sizeBytes = 16 * 1024;
    std::uint32_t lineBytes = 64;
    std::uint32_t ways = 4;
};

/** Access statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/** Set-associative cache with true-LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /** Access byte address @p addr; @return true on hit. */
    bool access(std::uint64_t addr);

    /** Invalidate all lines (e.g. between frames). */
    void flush();

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }

    std::uint32_t numSets() const { return numSets_; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    CacheConfig cfg_;
    std::uint32_t numSets_;
    std::vector<Line> lines_;  ///< numSets_ x ways, row-major
    std::uint64_t clock_ = 0;
    CacheStats stats_;
};

}  // namespace qvr::gpu

#endif  // QVR_GPU_CACHE_HPP
