#include "gpu/cache.hpp"

#include "common/log.hpp"

namespace qvr::gpu
{

namespace
{

bool
isPowerOfTwo(std::uint32_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

}  // namespace

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    QVR_REQUIRE(isPowerOfTwo(cfg.lineBytes), "line size must be 2^n");
    QVR_REQUIRE(cfg.ways > 0, "cache needs at least one way");
    const std::uint32_t lines = cfg.sizeBytes / cfg.lineBytes;
    QVR_REQUIRE(lines >= cfg.ways, "cache smaller than one set");
    numSets_ = lines / cfg.ways;
    QVR_REQUIRE(isPowerOfTwo(numSets_), "set count must be 2^n");
    lines_.resize(static_cast<std::size_t>(numSets_) * cfg.ways);
}

bool
Cache::access(std::uint64_t addr)
{
    clock_++;
    stats_.accesses++;

    const std::uint64_t line_addr = addr / cfg_.lineBytes;
    const std::uint32_t set =
        static_cast<std::uint32_t>(line_addr) & (numSets_ - 1);
    const std::uint64_t tag = line_addr / numSets_;

    Line *base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
    Line *victim = base;
    for (std::uint32_t w = 0; w < cfg_.ways; w++) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = clock_;
            stats_.hits++;
            return true;
        }
        if (!line.valid) {
            victim = &line;  // prefer an invalid way
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    stats_.misses++;
    victim->tag = tag;
    victim->valid = true;
    victim->lastUse = clock_;
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
}

}  // namespace qvr::gpu
