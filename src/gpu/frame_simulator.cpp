#include "gpu/frame_simulator.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace qvr::gpu
{

double
FrameSimResult::bottleneckUtilisation() const
{
    if (frameTime <= 0.0)
        return 0.0;
    return std::max({cpBusy, geometryBusy, fragmentBusy}) / frameTime;
}

FrameSimulator::FrameSimulator(const GpuConfig &cfg,
                               const GpuCostModel &cost)
    : cfg_(cfg), cost_(cost)
{
    QVR_REQUIRE(cfg.coreFrequency > 0.0, "zero GPU frequency");
}

FrameSimResult
FrameSimulator::simulate(const scene::FrameWorkload &frame,
                         double shading_cost, double pixels_per_eye,
                         double pixel_share, double freq_scale) const
{
    QVR_REQUIRE(pixel_share > 0.0 && pixel_share <= 1.0,
                "pixel share outside (0, 1]");
    QVR_REQUIRE(freq_scale > 0.0, "non-positive frequency scale");
    QVR_REQUIRE(pixels_per_eye > 0.0, "empty render target");

    const Hertz freq = cfg_.coreFrequency * freq_scale;
    const double lane_rate =
        static_cast<double>(cfg_.totalLanes()) * cost_.laneUtilisation;

    FrameSimResult r;
    r.batches = frame.batches.size() * 2;  // both eyes

    // Batch screenCoverage values are relative weights; the frame's
    // shaded-fragment budget is pixels x overdraw, exactly the
    // aggregate the analytic model uses.
    double coverage_sum = 0.0;
    for (const auto &b : frame.batches)
        coverage_sum += b.screenCoverage;
    if (coverage_sum <= 0.0)
        coverage_sum = 1.0;
    const double fragment_budget =
        pixels_per_eye * pixel_share * cost_.overdraw;

    // Per-batch service times for the three stages.
    struct BatchWork
    {
        Seconds cp;
        Seconds geometry;
        Seconds fragment;
    };
    std::vector<BatchWork> work;
    work.reserve(frame.batches.size() * 2);

    for (int eye = 0; eye < 2; eye++) {
        for (const auto &b : frame.batches) {
            BatchWork w;
            w.cp = cost_.cyclesPerBatch / freq;
            const double geom_share =
                cost_.stereoGeometryFactor;  // vertex work shared
            w.geometry = static_cast<double>(b.triangles) *
                         geom_share / cost_.trianglesPerCycle / freq;
            const double fragments = fragment_budget *
                                     (b.screenCoverage /
                                      coverage_sum);
            const double ops =
                fragments * cost_.aluOpsPerPixel * shading_cost;
            w.fragment = ops / lane_rate / freq;

            r.triangles += b.triangles;
            r.shadedPixels += fragments / cost_.overdraw;
            work.push_back(w);
        }
    }

    // Event-driven three-stage pipeline: each stage is serial, a
    // batch enters stage k+1 when both it has left stage k and the
    // stage is free.
    sim::EventQueue queue;
    Seconds cp_free = cost_.passOverheadCycles / freq;
    Seconds geom_free = 0.0;
    Seconds frag_free = 0.0;
    Seconds last_retire = 0.0;

    for (std::size_t i = 0; i < work.size(); i++) {
        const BatchWork &w = work[i];
        const Seconds cp_done = cp_free + w.cp;
        cp_free = cp_done;
        r.cpBusy += w.cp;

        const Seconds geom_start = std::max(cp_done, geom_free);
        const Seconds geom_done = geom_start + w.geometry;
        geom_free = geom_done;
        r.geometryBusy += w.geometry;

        const Seconds frag_start = std::max(geom_done, frag_free);
        const Seconds frag_done = frag_start + w.fragment;
        frag_free = frag_done;
        r.fragmentBusy += w.fragment;

        // Retirement is observable through the event queue so other
        // components (tests, future per-batch hooks) can attach.
        queue.schedule(frag_done, [&last_retire, frag_done] {
            last_retire = std::max(last_retire, frag_done);
        });
    }
    queue.run();

    // Memory-boundedness correction, as in the analytic model.
    const double traffic = r.shadedPixels * cost_.overdraw *
                           cost_.bytesPerPixel;
    (void)queue;  // drained above
    const double seconds_at_peak =
        traffic / (static_cast<double>(cfg_.l2BytesPerCycle) * freq);
    r.frameTime = std::max(last_retire, seconds_at_peak);
    return r;
}

}  // namespace qvr::gpu
