/**
 * @file
 * Mobile GPU render-time model.
 *
 * Converts a render job (triangles, shaded pixels, batch count,
 * shading cost) into cycles through a four-stage tile-based pipeline
 * (command processing, geometry+binning, fragment shading, memory),
 * with the fragment and geometry stages overlapped as in a real TBDR
 * part and a memory-boundedness correction from Table 2's bandwidth.
 */

#ifndef QVR_GPU_TIMING_HPP
#define QVR_GPU_TIMING_HPP

#include "common/types.hpp"
#include "gpu/config.hpp"

namespace qvr::gpu
{

/** One rendering pass submitted to the GPU. */
struct RenderJob
{
    std::uint64_t triangles = 0;    ///< post-culling triangles
    double shadedPixels = 0.0;      ///< visible pixels to shade
    std::uint32_t batches = 1;      ///< draw calls (CP cost)
    double shadingCost = 1.0;       ///< relative shader complexity
    /** Stereo pair rendered with multiview geometry sharing. */
    bool stereo = true;
    /** Fraction of default frequency actually available (DVFS). */
    double frequencyScale = 1.0;
};

/** Cycle breakdown of a completed job. */
struct RenderTiming
{
    Cycles commandCycles = 0;
    Cycles geometryCycles = 0;
    Cycles fragmentCycles = 0;
    Cycles totalCycles = 0;     ///< after overlap + memory correction
    double memoryStallFactor = 1.0;
    Seconds seconds = 0.0;
};

/**
 * Analytic-but-calibrated GPU timing model.  Stateless; one instance
 * can serve many pipelines.
 */
class MobileGpuModel
{
  public:
    MobileGpuModel(const GpuConfig &cfg, const GpuCostModel &cost);
    explicit MobileGpuModel(const GpuConfig &cfg)
        : MobileGpuModel(cfg, GpuCostModel{}) {}
    MobileGpuModel() : MobileGpuModel(GpuConfig{}, GpuCostModel{}) {}

    const GpuConfig &config() const { return cfg_; }
    const GpuCostModel &cost() const { return cost_; }

    /** Full timing breakdown for @p job. */
    RenderTiming time(const RenderJob &job) const;

    /** Convenience: just the wall-clock render time. */
    Seconds renderSeconds(const RenderJob &job) const;

    /**
     * Effective processing capability P(GPU_m) used by LIWC's Eq. 2
     * latency predictor: sustained triangles per second for a
     * workload of typical pixel/triangle ratio @p pixels_per_tri.
     */
    double triangleThroughput(double shading_cost,
                              double pixels_per_tri) const;

  private:
    GpuConfig cfg_;
    GpuCostModel cost_;
};

}  // namespace qvr::gpu

#endif  // QVR_GPU_TIMING_HPP
