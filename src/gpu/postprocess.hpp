/**
 * @file
 * Costs of the post-rendering kernels when they run ON the GPU
 * (composition and ATW).  Q-VR's UCA removes these from the GPU; the
 * baseline/static/software pipelines keep them here, where they
 * contend with local rendering for the shader cores (the Fig. 4-(c)
 * contention the paper highlights).
 */

#ifndef QVR_GPU_POSTPROCESS_HPP
#define QVR_GPU_POSTPROCESS_HPP

#include "common/types.hpp"
#include "gpu/timing.hpp"

namespace qvr::gpu::postprocess
{

/** Per-pixel ALU op counts of the post-processing kernels. */
struct PostprocessCosts
{
    /** ATW: lens distortion + chromatic-aberration-corrected
     *  coordinate remap + bilinear filter (per-channel warp). */
    double atwOpsPerPixel = 40.0;
    /** Foveated composition: layer blend, plus MSAA on layer edges. */
    double foveaBlendOpsPerPixel = 10.0;
    double msaaEdgeOpsPerPixel = 40.0;
    /** Static-collab composition: depth compare + embed, plus a fixed
     *  collision-detection pass (paper Section 1: "high composition
     *  overhead ... more complex collision detection and embedding"). */
    double depthCompositeOpsPerPixel = 22.0;
    double collisionDetectCycles = 250'000.0;
    /**
     * Render-time inflation when composition/ATW kernels share the
     * GPU with rendering in a collaborative pipeline: they preempt
     * warps mid-frame (composition cannot start until the remote
     * layers arrive, which is mid-way through the NEXT frame's
     * render) and thrash the L1/L2 working set.  Leng et al. [32]
     * and PIM-VR [65] measure bursty FPS drops from exactly this;
     * the paper's Fig. 4-(c) calls it out as a first-order effect.
     * UCA removes it entirely.
     */
    double contentionInflation = 0.25;
};

/** ATW of a @p pixels-sized frame executed on the GPU cores. */
Seconds atwTime(const MobileGpuModel &gpu, double pixels,
                const PostprocessCosts &costs = {});

/**
 * Foveated composition (Q-VR software path / FFR-DFR without UCA):
 * blends three layers over @p pixels with MSAA applied to
 * @p edge_fraction of them.
 */
Seconds foveatedCompositionTime(const MobileGpuModel &gpu, double pixels,
                                double edge_fraction,
                                const PostprocessCosts &costs = {});

/** Static collaborative composition: depth-based embedding of the
 *  locally rendered interactive objects into the remote background. */
Seconds depthCompositionTime(const MobileGpuModel &gpu, double pixels,
                             const PostprocessCosts &costs = {});

}  // namespace qvr::gpu::postprocess

#endif  // QVR_GPU_POSTPROCESS_HPP
