/**
 * @file
 * Draw-call-level GPU frame simulation.
 *
 * The analytic MobileGpuModel collapses a frame to aggregate triangle
 * and pixel counts.  This simulator consumes the actual per-batch
 * command stream — the granularity ATTILA-sim works at — and walks it
 * through a three-stage pipeline (command processor, geometry front
 * end, fragment back end) as events on sim::EventQueue, modelling the
 * stage-level overlap explicitly: the CP decodes batch N+1 while
 * geometry processes batch N and the fragment array shades batch
 * N-1.  It reports per-stage busy time and the critical-path frame
 * time, and doubles as an independent check of the analytic model
 * (tests pin the two within tolerance on realistic streams).
 */

#ifndef QVR_GPU_FRAME_SIMULATOR_HPP
#define QVR_GPU_FRAME_SIMULATOR_HPP

#include <vector>

#include "gpu/config.hpp"
#include "scene/workload.hpp"
#include "sim/event_queue.hpp"

namespace qvr::gpu
{

/** Outcome of one simulated frame. */
struct FrameSimResult
{
    Seconds frameTime = 0.0;       ///< last fragment retires
    Seconds cpBusy = 0.0;          ///< command-processor busy time
    Seconds geometryBusy = 0.0;    ///< geometry front-end busy time
    Seconds fragmentBusy = 0.0;    ///< shader-array busy time
    std::uint64_t batches = 0;
    std::uint64_t triangles = 0;
    double shadedPixels = 0.0;

    /** Utilisation of the binding stage (== busiest/frameTime). */
    double bottleneckUtilisation() const;
};

/**
 * Event-driven, batch-granular GPU pipeline.  Stateless between
 * frames; construct once and call simulate() per frame.
 */
class FrameSimulator
{
  public:
    FrameSimulator(const GpuConfig &cfg, const GpuCostModel &cost);
    explicit FrameSimulator(const GpuConfig &cfg)
        : FrameSimulator(cfg, GpuCostModel{}) {}
    FrameSimulator() : FrameSimulator(GpuConfig{}, GpuCostModel{}) {}

    /**
     * Simulate rendering @p frame (stereo pair) at @p freq_scale of
     * the nominal clock.
     *
     * @param pixels_per_eye  render-target size; each batch's
     *        screenCoverage acts as a relative weight and the total
     *        shaded-fragment budget is pixels x overdraw (matching
     *        the analytic model's aggregate)
     * @param pixel_share     scales the target (a fovea pass passes
     *        its area fraction; 1.0 = full frame)
     */
    FrameSimResult simulate(const scene::FrameWorkload &frame,
                            double shading_cost,
                            double pixels_per_eye,
                            double pixel_share = 1.0,
                            double freq_scale = 1.0) const;

    const GpuConfig &config() const { return cfg_; }

  private:
    GpuConfig cfg_;
    GpuCostModel cost_;
};

}  // namespace qvr::gpu

#endif  // QVR_GPU_FRAME_SIMULATOR_HPP
