/**
 * @file
 * Mobile GPU configuration, mirroring the paper's Table 2 baseline
 * (ARM Mali-G76-class SoC GPU): 500 MHz, 8 shader cores with 8
 * SIMD4-scale ALUs each, 16 KB unified L1, one texture unit per core
 * with 4x anisotropic filtering, 16x16 tiled rasterisation, 256 KB
 * 8-way shared L2 with 16 bytes/cycle, 8 DRAM channels.
 */

#ifndef QVR_GPU_CONFIG_HPP
#define QVR_GPU_CONFIG_HPP

#include <cstdint>

#include "common/types.hpp"

namespace qvr::gpu
{

/** Static hardware parameters of the mobile GPU (Table 2). */
struct GpuConfig
{
    Hertz coreFrequency = fromMHz(500.0);
    std::uint32_t numCores = 8;
    std::uint32_t simd4PerCore = 8;        ///< 8 SIMD4-scale ALUs
    std::uint32_t lanesPerSimd4 = 4;
    std::uint32_t l1KiB = 16;              ///< unified L1 per core
    std::uint32_t textureUnitsPerCore = 1;
    std::uint32_t anisotropy = 4;          ///< 4x anisotropic filtering
    std::uint32_t tileSize = 16;           ///< 16x16 tiled rasterisation
    std::uint32_t l2KiB = 256;             ///< shared, 8-way
    std::uint32_t l2Ways = 8;
    std::uint32_t l2BytesPerCycle = 16;
    std::uint32_t dramChannels = 8;

    /** Total ALU lanes across the device. */
    std::uint32_t
    totalLanes() const
    {
        return numCores * simd4PerCore * lanesPerSimd4;
    }

    /** Peak L2/memory bandwidth in bytes per second. */
    double
    memoryBandwidth() const
    {
        return static_cast<double>(l2BytesPerCycle) * coreFrequency;
    }
};

/**
 * Microarchitectural cost calibration.  These constants were tuned
 * (tests/gpu/test_timing.cpp pins them) so full-frame stereo render
 * times of the Table-3 benchmarks land in the ranges the paper's
 * Figure 3 implies for a Gen9/A10-class local renderer.
 */
struct GpuCostModel
{
    /** ALU ops to shade one visible pixel at shadingCost = 1.0
     *  (lighting + texturing, before the texture-stall factor). */
    double aluOpsPerPixel = 260.0;
    /** Sustained ALU-lane utilisation (divergence, scheduling). */
    double laneUtilisation = 0.70;
    /** Geometry front-end throughput, triangles per cycle
     *  (vertex fetch + shade + setup + bin, device-wide). */
    double trianglesPerCycle = 0.5;
    /** Command-processor + driver cycles per draw batch. */
    double cyclesPerBatch = 200.0;
    /** Average overdraw: shaded fragments per visible pixel. */
    double overdraw = 1.5;
    /** DRAM traffic per shaded pixel (texture + framebuffer), bytes;
     *  already discounted by typical L1/L2 hit rates (the cache model
     *  in gpu/cache.hpp reproduces this figure in calibration tests). */
    double bytesPerPixel = 12.0;
    /** Fixed per-render-pass overhead (state setup, tile flush). */
    double passOverheadCycles = 40'000.0;
    /**
     * Stereo geometry-sharing factor (simultaneous multi-projection:
     * the paper adds an SMP engine to ATTILA-sim for two-eye
     * rendering).  1.0 = both eyes run the full geometry front end;
     * ~0.55 = vertex work shared, only per-eye setup/binning repeats.
     * Applied to the geometry stage of stereo jobs.
     */
    double stereoGeometryFactor = 1.0;
};

}  // namespace qvr::gpu

#endif  // QVR_GPU_CONFIG_HPP
