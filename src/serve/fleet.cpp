#include "serve/fleet.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace qvr::serve
{

namespace
{

/** splitmix64 finaliser: the rendezvous-hash mixing function. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace

void
FleetConfig::validate() const
{
    QVR_REQUIRE(shards >= 1, "fleet needs at least one shard");
    scheduler.validate();
    admission.validate();
    batching.validate();
    server.validate();
}

Fleet::Fleet(const FleetConfig &cfg) : cfg_(cfg)
{
    cfg.validate();
    shards_.reserve(cfg.shards);
    for (std::uint32_t i = 0; i < cfg.shards; i++) {
        shards_.push_back(Shard{
            remote::RemoteServer(cfg.server),
            ChipletScheduler(cfg.scheduler, cfg.admission,
                             cfg.batching)});
    }
}

Seconds
Fleet::requestRenderSeconds(const gpu::RenderJob &job) const
{
    return shards_.front().server.renderSeconds(job);
}

std::uint32_t
Fleet::shardForUser(std::uint32_t user) const
{
    // Rendezvous hashing: every (user, shard) pair gets a stable
    // weight; the user goes to the highest.  Adding or removing a
    // shard only moves the users whose maximum moved.
    std::uint32_t best = 0;
    std::uint64_t best_weight = 0;
    for (std::uint32_t s = 0;
         s < static_cast<std::uint32_t>(shards_.size()); s++) {
        const std::uint64_t w = mix64(
            (static_cast<std::uint64_t>(user) << 32) | s);
        if (s == 0 || w > best_weight) {
            best = s;
            best_weight = w;
        }
    }
    return best;
}

std::vector<ServeOutcome>
Fleet::submitTick(const std::vector<RenderRequest> &reqs)
{
    const std::size_t n_shards = shards_.size();
    std::vector<std::vector<RenderRequest>> per(n_shards);
    std::vector<std::vector<std::size_t>> origin(n_shards);
    std::vector<Seconds> pending(n_shards, 0.0);

    for (std::size_t i = 0; i < reqs.size(); i++) {
        const RenderRequest &r = reqs[i];
        std::uint32_t s;
        if (cfg_.balancer == BalancerPolicy::HashUser) {
            s = shardForUser(r.user);
        } else {
            // Predicted backlog = committed slot work still pending
            // at this request's arrival plus what this tick already
            // assigned here; lowest shard id breaks ties.
            s = 0;
            Seconds best = shards_[0].scheduler.backlog(r.arrival) +
                           pending[0];
            for (std::uint32_t c = 1; c < n_shards; c++) {
                const Seconds load =
                    shards_[c].scheduler.backlog(r.arrival) +
                    pending[c];
                if (load < best) {
                    best = load;
                    s = c;
                }
            }
        }
        per[s].push_back(r);
        origin[s].push_back(i);
        pending[s] += r.service;
    }

    std::vector<ServeOutcome> out(reqs.size());
    for (std::size_t s = 0; s < n_shards; s++) {
        if (per[s].empty())
            continue;
        const TickReport rep =
            shards_[s].scheduler.scheduleTick(per[s]);
        counters_.batches += rep.batches;
        counters_.batchedRequests += rep.batchedRequests;
        for (std::size_t j = 0; j < per[s].size(); j++) {
            ServeOutcome o = rep.outcomes[j];
            o.shard = static_cast<std::uint32_t>(s);
            out[origin[s][j]] = o;
        }
    }

    counters_.submitted += reqs.size();
    for (const ServeOutcome &o : out) {
        if (!o.admitted) {
            counters_.shed++;
            continue;
        }
        counters_.admitted++;
        if (o.level > 0)
            counters_.downgraded++;
        if (!o.deadlineMet)
            counters_.deadlineMisses++;
    }
    return out;
}

Seconds
Fleet::shardBusyTime(std::size_t i) const
{
    return shards_[i].scheduler.busyTime();
}

Seconds
Fleet::busyTime() const
{
    Seconds sum = 0.0;
    for (const Shard &s : shards_)
        sum += s.scheduler.busyTime();
    return sum;
}

std::size_t
Fleet::slotsPerShard() const
{
    return shards_.front().scheduler.slots();
}

}  // namespace qvr::serve
