#include "serve/fleet.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace qvr::serve
{

void
FleetConfig::validate() const
{
    QVR_REQUIRE(shards >= 1, "fleet needs at least one shard");
    balancer.validate();
    scheduler.validate();
    admission.validate();
    batching.validate();
    server.validate();
}

Fleet::Fleet(const FleetConfig &cfg) : cfg_(cfg)
{
    cfg.validate();
    shards_.reserve(cfg.shards);
    for (std::uint32_t i = 0; i < cfg.shards; i++) {
        shards_.push_back(Shard{
            remote::RemoteServer(cfg.server),
            ChipletScheduler(cfg.scheduler, cfg.admission,
                             cfg.batching),
            false, false});
    }
    balancer_ = makeBalancer(cfg.balancer);
    rebuildActive();
}

void
Fleet::rebuildActive()
{
    active_.clear();
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(shards_.size()); i++) {
        if (!shards_[i].draining && !shards_[i].retired)
            active_.push_back(i);
    }
    QVR_REQUIRE(!active_.empty(), "fleet has no active shard");
    balancer_->rebuild(active_);
}

void
Fleet::scaleTo(std::uint32_t n)
{
    QVR_REQUIRE(n >= 1, "fleet needs at least one shard");
    if (n == active_.size())
        return;
    counters_.scaleEvents++;
    if (n > active_.size()) {
        // Grow: append fresh shards.  Draining shards keep draining —
        // reviving a half-drained queue would make placement depend
        // on drain progress, which scale replay must not.
        const std::size_t add = n - active_.size();
        for (std::size_t i = 0; i < add; i++) {
            shards_.push_back(Shard{
                remote::RemoteServer(cfg_.server),
                ChipletScheduler(cfg_.scheduler, cfg_.admission,
                                 cfg_.batching),
                false, false});
        }
    } else {
        // Shrink: drain the highest-id active shards.  They stop
        // taking new work now and retire once their backlog runs dry.
        std::size_t drop = active_.size() - n;
        for (std::size_t i = active_.size(); drop > 0 && i > 0;
             i--, drop--) {
            shards_[active_[i - 1]].draining = true;
        }
    }
    rebuildActive();
}

void
Fleet::retireDrained(Seconds at)
{
    bool changed = false;
    for (Shard &s : shards_) {
        if (s.draining && !s.retired &&
            s.scheduler.backlog(at) <= 0.0) {
            s.retired = true;
            counters_.retiredShards++;
            changed = true;
        }
    }
    // Retiring does not change the routable set (draining shards were
    // already excluded), so no rebuild is needed; @p changed only
    // gates the counter bookkeeping above.
    (void)changed;
}

Seconds
Fleet::requestRenderSeconds(const gpu::RenderJob &job) const
{
    return shards_.front().server.renderSeconds(job);
}

std::uint32_t
Fleet::shardForUser(std::uint32_t user) const
{
    // Rendezvous hashing over the active set: every (user, shard)
    // pair gets a stable weight; the user goes to the highest.
    // Adding or removing a shard only moves the users whose maximum
    // moved.
    std::uint32_t best = active_.front();
    std::uint64_t best_weight = 0;
    for (std::size_t i = 0; i < active_.size(); i++) {
        const std::uint32_t s = active_[i];
        const std::uint64_t w = placementMix(
            (static_cast<std::uint64_t>(user) << 32) | s);
        if (i == 0 || w > best_weight) {
            best = s;
            best_weight = w;
        }
    }
    return best;
}

std::uint32_t
Fleet::probePlacement(const RenderRequest &r) const
{
    RenderRequest keyed = r;
    keyed.placement = placementKey(r);
    std::vector<Seconds> committed(shards_.size(), 0.0);
    std::vector<Seconds> pending(shards_.size(), 0.0);
    for (const std::uint32_t s : active_)
        committed[s] = shards_[s].scheduler.backlog(r.arrival);
    const ShardLoadView view{&committed, &pending, &active_};
    return balancer_->pick(keyed, view);
}

std::vector<ServeOutcome>
Fleet::submitTick(const std::vector<RenderRequest> &reqs)
{
    if (!reqs.empty())
        retireDrained(reqs.front().arrival);

    const std::size_t n_shards = shards_.size();
    std::vector<std::vector<RenderRequest>> per(n_shards);
    std::vector<std::vector<std::size_t>> origin(n_shards);
    std::vector<Seconds> pending(n_shards, 0.0);
    std::vector<Seconds> committed(n_shards, 0.0);
    const ShardLoadView view{&committed, &pending, &active_};

    for (std::size_t i = 0; i < reqs.size(); i++) {
        RenderRequest r = reqs[i];
        r.placement = placementKey(r);
        // Predicted load = committed slot work still pending at this
        // request's arrival plus what this tick already assigned.
        for (const std::uint32_t s : active_)
            committed[s] = shards_[s].scheduler.backlog(r.arrival);
        const std::uint32_t s = balancer_->pick(r, view);
        per[s].push_back(reqs[i]);
        origin[s].push_back(i);
        pending[s] += r.service;
    }

    std::vector<ServeOutcome> out(reqs.size());
    for (std::size_t s = 0; s < n_shards; s++) {
        if (per[s].empty())
            continue;
        const TickReport rep =
            shards_[s].scheduler.scheduleTick(per[s]);
        counters_.batches += rep.batches;
        counters_.batchedRequests += rep.batchedRequests;
        for (std::size_t j = 0; j < per[s].size(); j++) {
            ServeOutcome o = rep.outcomes[j];
            o.shard = static_cast<std::uint32_t>(s);
            out[origin[s][j]] = o;
        }
    }

    counters_.submitted += reqs.size();
    for (const ServeOutcome &o : out) {
        if (!o.admitted) {
            counters_.shed++;
            continue;
        }
        counters_.admitted++;
        if (o.level > 0)
            counters_.downgraded++;
        if (!o.deadlineMet)
            counters_.deadlineMisses++;
    }
    return out;
}

Seconds
Fleet::shardBusyTime(std::size_t i) const
{
    return shards_[i].scheduler.busyTime();
}

Seconds
Fleet::busyTime() const
{
    Seconds sum = 0.0;
    for (const Shard &s : shards_)
        sum += s.scheduler.busyTime();
    return sum;
}

std::size_t
Fleet::slotsPerShard() const
{
    return shards_.front().scheduler.slots();
}

}  // namespace qvr::serve
