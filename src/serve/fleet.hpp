/**
 * @file
 * Fleet sharding: N remote-server shards behind a load balancer.
 *
 * One chiplet pool saturates; the ROADMAP's north star does not.
 * The Fleet scales the serving stack horizontally: each shard is a
 * RemoteServer (the hardware model for one request's chiplet share)
 * plus its own deadline-aware ChipletScheduler, and a pluggable
 * Balancer (serve/balancer.hpp) maps requests onto shards — JSQ,
 * bounded-load rendezvous, legacy unbounded rendezvous, bounded-load
 * consistent hashing, or power-of-two-choices.
 *
 * The fleet also scales *elastically*: scaleTo(n) grows the shard set
 * with fresh shards or shrinks it by draining — a shrinking shard
 * stops receiving new work immediately but keeps its committed
 * backlog until it runs dry, and only then retires (drain-before-
 * retire).  Affinity balancers re-place only the keys whose shard
 * left, so scale events migrate a deterministic, minimal key set.
 *
 * The fleet is deterministic: no RNG, no wall clock — outcomes are a
 * pure function of the request stream and the scale-event sequence,
 * so sessions replay bit-exact at any worker-thread count.
 */

#ifndef QVR_SERVE_FLEET_HPP
#define QVR_SERVE_FLEET_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "remote/server.hpp"
#include "serve/balancer.hpp"
#include "serve/scheduler.hpp"

namespace qvr::serve
{

/** Whole-fleet description. */
struct FleetConfig
{
    std::uint32_t shards = 1;
    /** Placement policy and its tuning knobs. */
    BalancerConfig balancer;
    /** Per-shard queueing discipline and slot pool. */
    SchedulerConfig scheduler;
    AdmissionConfig admission;
    BatchConfig batching;
    /** Hardware of one request's chiplet share (every shard is
     *  homogeneous; chiplets = chiplets-per-request). */
    remote::ServerConfig server;

    void validate() const;
};

/** Whole-run serving telemetry. */
struct FleetCounters
{
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t downgraded = 0;       ///< admitted at rung > 0
    std::uint64_t deadlineMisses = 0;   ///< admitted but late
    std::uint64_t batches = 0;          ///< coalesced dispatches
    std::uint64_t batchedRequests = 0;  ///< members of those
    std::uint64_t scaleEvents = 0;      ///< scaleTo calls that acted
    std::uint64_t retiredShards = 0;    ///< drained and shut down
};

/** N shards behind a deterministic balancer. */
class Fleet
{
  public:
    explicit Fleet(const FleetConfig &cfg);

    const FleetConfig &config() const { return cfg_; }

    /** Next submission sequence number (the FIFO/tie-break key). */
    std::uint64_t nextSeq() { return seq_++; }

    /** Full-quality render service of @p job on one shard's chiplet
     *  share (shards are homogeneous). */
    Seconds requestRenderSeconds(const gpu::RenderJob &job) const;

    /**
     * Serve one scheduling tick: assign every request to a shard,
     * run each shard's dispatch walk, and return outcomes in input
     * order (ServeOutcome::shard records the placement).  Draining
     * shards whose backlog ran dry before the tick retire first.
     */
    std::vector<ServeOutcome>
    submitTick(const std::vector<RenderRequest> &reqs);

    /**
     * Autoscale to @p n active shards.  Growing appends fresh shards
     * (new ids; retired ids are never reused, so telemetry stays
     * stable).  Shrinking marks the highest-id active shards as
     * draining: they take no new work and retire once their committed
     * backlog drains.  No-op when already at @p n.
     */
    void scaleTo(std::uint32_t n);

    /** Every shard ever created (including draining/retired ones —
     *  ids are stable for telemetry). */
    std::size_t shards() const { return shards_.size(); }
    /** Shards currently accepting new work. */
    std::size_t activeShards() const { return active_.size(); }
    bool shardDraining(std::size_t i) const
    {
        return shards_[i].draining && !shards_[i].retired;
    }
    bool shardRetired(std::size_t i) const
    {
        return shards_[i].retired;
    }

    const FleetCounters &counters() const { return counters_; }

    /** Chiplet-slot busy seconds of shard @p i. */
    Seconds shardBusyTime(std::size_t i) const;
    /** Sum of slot busy seconds across the fleet. */
    Seconds busyTime() const;
    /** Slots per shard (for utilisation accounting). */
    std::size_t slotsPerShard() const;

    /** The shard pure rendezvous hashing maps @p user to over the
     *  active set (exposed for tests). */
    std::uint32_t shardForUser(std::uint32_t user) const;

    /** The shard the configured balancer would pick for @p r if it
     *  arrived now with an otherwise idle tick (exposed so scaling
     *  tests can measure key migration without dispatching). */
    std::uint32_t probePlacement(const RenderRequest &r) const;

  private:
    struct Shard
    {
        remote::RemoteServer server;
        ChipletScheduler scheduler;
        bool draining = false;
        bool retired = false;
    };

    /** Placement key: explicit when set, else the user id (keeps the
     *  pre-placement request streams bit-identical). */
    static std::uint64_t placementKey(const RenderRequest &r)
    {
        return r.placement != 0 ? r.placement : r.user;
    }

    void rebuildActive();
    void retireDrained(Seconds at);

    FleetConfig cfg_;
    std::vector<Shard> shards_;
    std::vector<std::uint32_t> active_;  ///< routable ids, ascending
    std::unique_ptr<Balancer> balancer_;
    FleetCounters counters_;
    std::uint64_t seq_ = 0;
};

}  // namespace qvr::serve

#endif  // QVR_SERVE_FLEET_HPP
