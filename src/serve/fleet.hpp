/**
 * @file
 * Fleet sharding: N remote-server shards behind a load balancer.
 *
 * One chiplet pool saturates; the ROADMAP's north star does not.
 * The Fleet scales the serving stack horizontally: each shard is a
 * RemoteServer (the hardware model for one request's chiplet share)
 * plus its own deadline-aware ChipletScheduler, and a balancer maps
 * requests onto shards:
 *
 *  - JoinShortestQueue: least predicted backlog (committed slot work
 *    plus this tick's tentative assignments), lowest shard id on
 *    ties — the throughput-optimal choice for homogeneous shards;
 *  - HashUser: rendezvous (highest-random-weight) hash of the user
 *    id — stateless, stable when the shard count changes, and keeps
 *    each user's frames on one shard (cache/session affinity).
 *
 * The fleet is deterministic: no RNG, no wall clock — outcomes are a
 * pure function of the request stream, so sessions replay bit-exact
 * at any worker-thread count.
 */

#ifndef QVR_SERVE_FLEET_HPP
#define QVR_SERVE_FLEET_HPP

#include <cstdint>
#include <vector>

#include "remote/server.hpp"
#include "serve/scheduler.hpp"

namespace qvr::serve
{

/** Whole-fleet description. */
struct FleetConfig
{
    std::uint32_t shards = 1;
    BalancerPolicy balancer = BalancerPolicy::JoinShortestQueue;
    /** Per-shard queueing discipline and slot pool. */
    SchedulerConfig scheduler;
    AdmissionConfig admission;
    BatchConfig batching;
    /** Hardware of one request's chiplet share (every shard is
     *  homogeneous; chiplets = chiplets-per-request). */
    remote::ServerConfig server;

    void validate() const;
};

/** Whole-run serving telemetry. */
struct FleetCounters
{
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t downgraded = 0;       ///< admitted at rung > 0
    std::uint64_t deadlineMisses = 0;   ///< admitted but late
    std::uint64_t batches = 0;          ///< coalesced dispatches
    std::uint64_t batchedRequests = 0;  ///< members of those
};

/** N shards behind a deterministic balancer. */
class Fleet
{
  public:
    explicit Fleet(const FleetConfig &cfg);

    const FleetConfig &config() const { return cfg_; }

    /** Next submission sequence number (the FIFO/tie-break key). */
    std::uint64_t nextSeq() { return seq_++; }

    /** Full-quality render service of @p job on one shard's chiplet
     *  share (shards are homogeneous). */
    Seconds requestRenderSeconds(const gpu::RenderJob &job) const;

    /**
     * Serve one scheduling tick: assign every request to a shard,
     * run each shard's dispatch walk, and return outcomes in input
     * order (ServeOutcome::shard records the placement).
     */
    std::vector<ServeOutcome>
    submitTick(const std::vector<RenderRequest> &reqs);

    std::size_t shards() const { return shards_.size(); }
    const FleetCounters &counters() const { return counters_; }

    /** Chiplet-slot busy seconds of shard @p i. */
    Seconds shardBusyTime(std::size_t i) const;
    /** Sum of slot busy seconds across the fleet. */
    Seconds busyTime() const;
    /** Slots per shard (for utilisation accounting). */
    std::size_t slotsPerShard() const;

    /** The shard HashUser maps @p user to (exposed for tests). */
    std::uint32_t shardForUser(std::uint32_t user) const;

  private:
    struct Shard
    {
        remote::RemoteServer server;
        ChipletScheduler scheduler;
    };

    FleetConfig cfg_;
    std::vector<Shard> shards_;
    FleetCounters counters_;
    std::uint64_t seq_ = 0;
};

}  // namespace qvr::serve

#endif  // QVR_SERVE_FLEET_HPP
