#include "serve/queue.hpp"

#include "common/log.hpp"

namespace qvr::serve
{

const char *
schedulerPolicyName(SchedulerPolicy p)
{
    switch (p) {
    case SchedulerPolicy::Fifo:
        return "FIFO";
    case SchedulerPolicy::Edf:
        return "EDF";
    case SchedulerPolicy::Sjf:
        return "SJF";
    }
    QVR_PANIC("unknown scheduler policy");
}

const char *
balancerPolicyName(BalancerPolicy p)
{
    switch (p) {
    case BalancerPolicy::JoinShortestQueue:
        return "JSQ";
    case BalancerPolicy::HashUser:
        return "hash-user";
    case BalancerPolicy::HashUserUnbounded:
        return "hash-unbounded";
    case BalancerPolicy::BoundedLoadConsistentHash:
        return "bounded-ch";
    case BalancerPolicy::PowerOfTwoChoices:
        return "p2c";
    }
    QVR_PANIC("unknown balancer policy");
}

bool
requestBefore(SchedulerPolicy policy, const RenderRequest &a,
              const RenderRequest &b)
{
    switch (policy) {
    case SchedulerPolicy::Fifo:
        return a.seq < b.seq;
    case SchedulerPolicy::Edf:
        if (a.deadline != b.deadline)
            return a.deadline < b.deadline;
        return a.seq < b.seq;
    case SchedulerPolicy::Sjf:
        if (a.service != b.service)
            return a.service < b.service;
        return a.seq < b.seq;
    }
    QVR_PANIC("unknown scheduler policy");
}

RequestQueue::RequestQueue(SchedulerPolicy policy) : policy_(policy) {}

void
RequestQueue::push(const RenderRequest &r)
{
    pending_.push_back(r);
}

std::size_t
RequestQueue::minIndex() const
{
    QVR_REQUIRE(!pending_.empty(), "pop/peek on an empty queue");
    std::size_t best = 0;
    for (std::size_t i = 1; i < pending_.size(); i++) {
        if (requestBefore(policy_, pending_[i], pending_[best]))
            best = i;
    }
    return best;
}

const RenderRequest &
RequestQueue::peek() const
{
    return pending_[minIndex()];
}

RenderRequest
RequestQueue::pop()
{
    const std::size_t i = minIndex();
    const RenderRequest r = pending_[i];
    pending_.erase(pending_.begin() +
                   static_cast<std::ptrdiff_t>(i));
    return r;
}

}  // namespace qvr::serve
