/**
 * @file
 * Request vocabulary of the edge-serving subsystem.
 *
 * The collaborative pipeline models the shared edge server as a bare
 * call-order resource pool; qvr::serve replaces that with a real
 * serving stack: every periphery render becomes a RenderRequest with
 * an arrival time, an absolute completion deadline and an Eq. 2-style
 * size estimate, and the stack answers with a ServeOutcome — when the
 * render started and finished, at what quality rung, on which shard,
 * or that the request was shed to the client's local fallback.
 *
 * Everything here is plain data: the scheduler, admission controller,
 * batch composer and fleet are pure functions of the request stream,
 * so a seeded session replays bit-exactly at any thread count.
 */

#ifndef QVR_SERVE_REQUEST_HPP
#define QVR_SERVE_REQUEST_HPP

#include <cstdint>

#include "common/types.hpp"

namespace qvr::serve
{

/** Queue-ordering policy of the chiplet scheduler. */
enum class SchedulerPolicy
{
    Fifo,  ///< submission order (the pre-serve baseline semantics)
    Edf,   ///< earliest absolute deadline first
    Sjf,   ///< shortest predicted service first (Eq. 2 triangle
           ///< estimate feeds the prediction)
};

const char *schedulerPolicyName(SchedulerPolicy p);

/** How the fleet balancer maps requests onto shards. */
enum class BalancerPolicy
{
    JoinShortestQueue,  ///< least predicted backlog, lowest id on ties
    HashUser,           ///< rendezvous hash of the placement key with
                        ///< a bounded-load spill (affinity kept while
                        ///< the home shard has room)
    HashUserUnbounded,  ///< legacy pure-affinity rendezvous hash —
                        ///< ignores load; kept so the shedding
                        ///< pathology regression stays pinned
    BoundedLoadConsistentHash,  ///< virtual-node hash ring under a
                                ///< c * mean load bound (minimal key
                                ///< migration on scale events)
    PowerOfTwoChoices,  ///< d hash-derived candidates, least loaded
};

const char *balancerPolicyName(BalancerPolicy p);

/** One periphery render submitted to the serving stack. */
struct RenderRequest
{
    /** Submission order; the FIFO key and every policy's tie-break,
     *  which is what makes the queue deterministic. */
    std::uint64_t seq = 0;
    std::uint32_t user = 0;
    /** Affinity key the hash balancers place on.  0 means "derive
     *  from the user id"; roam events re-key it so a roaming user
     *  deterministically migrates shards. */
    std::uint64_t placement = 0;
    FrameIndex frame = 0;

    /** When the request reaches the server (uplink included). */
    Seconds arrival = 0.0;
    /** Absolute render-completion bound: finishing later leaves the
     *  client too little time to ship, decode and compose inside its
     *  motion-to-photon budget. */
    Seconds deadline = kNoDeadline;
    /** Full-quality render service time on one chiplet share. */
    Seconds service = 0.0;
    /** Triangle count observed at render setup — the hardware-level
     *  intermediate the Eq. 2 latency predictor sorts SJF on. */
    std::uint64_t triangles = 0;
    /** Only requests rendering the same content shape may coalesce
     *  into one chiplet dispatch (same benchmark scene). */
    std::uint32_t batchKey = 0;
};

/**
 * Policy-order comparator: does @p a dispatch before @p b?  A strict
 * weak ordering for every policy — ties fall through to the seq
 * number, which is unique per request.
 */
bool requestBefore(SchedulerPolicy policy, const RenderRequest &a,
                   const RenderRequest &b);

/** What the stack decided and measured for one request. */
struct ServeOutcome
{
    /** False when the request was shed: nothing rendered remotely,
     *  the client falls back to an on-device low-res periphery. */
    bool admitted = true;
    /** Quality rung the admission controller applied (0 = full). */
    std::uint32_t level = 0;
    /** Periphery encode-quality multiplier at that rung (<= 1). */
    double qualityFactor = 1.0;
    /** Periphery linear-resolution multiplier at that rung (<= 1). */
    double resolutionScale = 1.0;
    /** Service actually dispatched (downgrade shrinks it). */
    Seconds service = 0.0;
    Seconds start = 0.0;
    Seconds completion = 0.0;
    /** start - arrival: time spent queued behind other users. */
    Seconds queueWait = 0.0;
    /** completion <= deadline (always true for admitted requests
     *  when admission control is on — that is its contract). */
    bool deadlineMet = true;
    /** Shard that served (or would have served) the request. */
    std::uint32_t shard = 0;
    /** Requests sharing this dispatch (1 = not coalesced). */
    std::uint32_t batchSize = 1;
};

}  // namespace qvr::serve

#endif  // QVR_SERVE_REQUEST_HPP
