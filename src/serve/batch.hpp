/**
 * @file
 * Cross-user batch composition for periphery renders.
 *
 * Every chiplet dispatch pays a fixed synchronisation/NUMA overhead
 * (remote::ServerConfig::syncOverhead) on top of the pixel work.
 * When several users of the same benchmark scene request periphery
 * layers in the same scheduling tick, the composer coalesces them
 * into one dispatch: the batch renders the union of the layers and
 * pays the sync overhead once, so a batch of k saves (k-1) sync
 * overheads of chiplet time.
 *
 * The cost is latency coupling — every member completes when the
 * batch completes — so the composer is deadline-aware: a request
 * joins an open batch only if the merged completion still meets
 * every member's deadline (admission's zero-miss contract survives
 * batching).
 */

#ifndef QVR_SERVE_BATCH_HPP
#define QVR_SERVE_BATCH_HPP

#include <cstdint>
#include <vector>

#include "serve/request.hpp"

namespace qvr::serve
{

/** Composition limits. */
struct BatchConfig
{
    bool enabled = false;
    /** Most requests one dispatch may coalesce. */
    std::uint32_t maxBatch = 4;
    /** Per-dispatch cost amortised by coalescing; should equal the
     *  server's syncOverhead so the saving matches the hardware
     *  model. */
    Seconds syncOverhead = 150e-6;

    void validate() const;
};

/** An open (not yet dispatched) coalesced render. */
struct Batch
{
    /** Tick-local indices of the member requests. */
    std::vector<std::size_t> members;
    /** Each member's own (downgraded) solo service; the client's
     *  stream-overlap model needs the per-member share. */
    std::vector<Seconds> services;
    /** Quality rung shared by every member. */
    std::uint32_t level = 0;
    /** Content key shared by every member. */
    std::uint32_t key = 0;
    /** Latest member arrival: the dispatch cannot start earlier. */
    Seconds arrival = 0.0;
    /** Amortised total service of the dispatch. */
    Seconds service = 0.0;
    /** Tightest member deadline. */
    Seconds minDeadline = kNoDeadline;
};

/** Greedy, deadline-aware run coalescing. */
class BatchComposer
{
  public:
    explicit BatchComposer(const BatchConfig &cfg);

    const BatchConfig &config() const { return cfg_; }

    /** Start a batch from one admitted request. */
    Batch open(std::size_t index, const RenderRequest &r,
               std::uint32_t level, Seconds service) const;

    /**
     * May @p r (admitted at @p level with downgraded @p service)
     * join @p b, given the slot the batch would dispatch on frees at
     * @p slot_free and the completion @p solo_completion the request
     * would get dispatched alone after the batch commits?  True only
     * when the batch has room, the content key and rung match, the
     * merged completion meets every member deadline, AND joining does
     * not finish @p r later than going solo — so coalescing kicks in
     * exactly under slot contention, where amortising the sync
     * overhead pays, and never at light load, where it would only
     * add latency.
     */
    bool canJoin(const Batch &b, const RenderRequest &r,
                 std::uint32_t level, Seconds service,
                 Seconds slot_free, Seconds solo_completion) const;

    /** Merge @p r into @p b (caller checked canJoin). */
    void join(Batch &b, std::size_t index, const RenderRequest &r,
              Seconds service) const;

    /** Amortised service of @p b extended by one member of
     *  @p service: the member's own sync overhead is saved. */
    Seconds mergedService(const Batch &b, Seconds service) const;

  private:
    BatchConfig cfg_;
};

}  // namespace qvr::serve

#endif  // QVR_SERVE_BATCH_HPP
