/**
 * @file
 * Deadline-aware admission control for periphery renders.
 *
 * When the chiplet pool is saturated, serving every request at full
 * quality makes *every* user late — the failure mode the paper's MTP
 * budget cannot absorb.  The admission controller instead walks each
 * request down the same quality ladder the DegradationController uses
 * (encode-quality and linear-resolution multipliers per rung): it
 * picks the shallowest rung whose predicted completion still meets
 * the request's deadline, and sheds the request entirely when even
 * the deepest rung misses — the client then renders its periphery
 * on-device at a fraction of native resolution, exactly like the
 * degradation ladder's LocalOnly fallback.
 *
 * The controller is pure: the decision is a function of the request
 * and the earliest start time the scheduler can offer, so admitted
 * requests *never* miss their deadline by construction (the
 * fleet-capacity bench asserts this).
 */

#ifndef QVR_SERVE_ADMISSION_HPP
#define QVR_SERVE_ADMISSION_HPP

#include <cstdint>

#include "serve/request.hpp"

namespace qvr::serve
{

/** Ladder shape and shed behaviour (mirrors DegradationConfig). */
struct AdmissionConfig
{
    bool enabled = false;

    /** Deepest quality rung before shedding. */
    std::uint32_t maxLevel = 3;
    /** Periphery encode-quality multiplier per rung. */
    double qualityStep = 0.8;
    /** Periphery linear-resolution multiplier per rung (service
     *  scales with shaded pixels, i.e. with this squared). */
    double resolutionStep = 0.85;
    /** Part of the service time a downgrade cannot shrink (chiplet
     *  sync / command-stream overhead). */
    Seconds fixedOverhead = 150e-6;

    void validate() const;
};

/** What admission decided for one request. */
struct AdmissionDecision
{
    bool admit = true;
    std::uint32_t level = 0;
    double qualityFactor = 1.0;
    double resolutionScale = 1.0;
    /** Service at the chosen rung (== request service at rung 0). */
    Seconds service = 0.0;
};

/** Pure deadline-aware ladder walk. */
class AdmissionController
{
  public:
    explicit AdmissionController(const AdmissionConfig &cfg);

    const AdmissionConfig &config() const { return cfg_; }

    /**
     * Decide the rung for @p r given the earliest start the scheduler
     * can offer.  Disabled controllers always admit at rung 0 (the
     * request may then miss — the scheduler records that).
     */
    AdmissionDecision decide(const RenderRequest &r,
                             Seconds earliest_start) const;

    /** Service time of @p full_service downgraded to @p level: the
     *  pixel-proportional part shrinks with resolutionStep^2 per
     *  rung, the fixed overhead does not. */
    Seconds serviceAtLevel(Seconds full_service,
                           std::uint32_t level) const;

  private:
    AdmissionConfig cfg_;
};

}  // namespace qvr::serve

#endif  // QVR_SERVE_ADMISSION_HPP
