/**
 * @file
 * Deterministic policy-ordered request queue.
 *
 * A tiny priority queue over RenderRequests whose ordering is the
 * scheduler policy (FIFO / EDF / SJF) with the submission sequence
 * number as the universal tie-break.  Implemented as a linear
 * min-scan over a vector: queue depth is one scheduling tick's worth
 * of requests (at most the user count), so asymptotics lose to
 * determinism and simplicity here — unlike std::priority_queue the
 * pop order is fully specified, which the serve determinism suite
 * pins.
 */

#ifndef QVR_SERVE_QUEUE_HPP
#define QVR_SERVE_QUEUE_HPP

#include <cstddef>
#include <vector>

#include "serve/request.hpp"

namespace qvr::serve
{

/** Policy-ordered queue with specified (testable) pop order. */
class RequestQueue
{
  public:
    explicit RequestQueue(SchedulerPolicy policy);

    SchedulerPolicy policy() const { return policy_; }

    void push(const RenderRequest &r);

    bool empty() const { return pending_.empty(); }
    std::size_t size() const { return pending_.size(); }

    /** Next request in policy order, without removing it. */
    const RenderRequest &peek() const;

    /** Remove and return the next request in policy order. */
    RenderRequest pop();

  private:
    std::size_t minIndex() const;

    SchedulerPolicy policy_;
    std::vector<RenderRequest> pending_;
};

}  // namespace qvr::serve

#endif  // QVR_SERVE_QUEUE_HPP
