#include "serve/admission.hpp"

#include <cmath>

#include "common/log.hpp"

namespace qvr::serve
{

void
AdmissionConfig::validate() const
{
    QVR_REQUIRE(qualityStep > 0.0 && qualityStep <= 1.0,
                "quality step outside (0, 1]");
    QVR_REQUIRE(resolutionStep > 0.0 && resolutionStep <= 1.0,
                "resolution step outside (0, 1]");
    QVR_REQUIRE(fixedOverhead >= 0.0, "negative fixed overhead");
}

AdmissionController::AdmissionController(const AdmissionConfig &cfg)
    : cfg_(cfg)
{
    cfg.validate();
}

Seconds
AdmissionController::serviceAtLevel(Seconds full_service,
                                    std::uint32_t level) const
{
    if (level == 0)
        return full_service;
    const double pixel_scale = std::pow(
        cfg_.resolutionStep * cfg_.resolutionStep,
        static_cast<double>(level));
    const Seconds scalable =
        full_service > cfg_.fixedOverhead
            ? full_service - cfg_.fixedOverhead
            : 0.0;
    return std::min(full_service,
                    cfg_.fixedOverhead + scalable * pixel_scale);
}

AdmissionDecision
AdmissionController::decide(const RenderRequest &r,
                            Seconds earliest_start) const
{
    AdmissionDecision d;
    d.service = r.service;
    if (!cfg_.enabled)
        return d;

    for (std::uint32_t level = 0; level <= cfg_.maxLevel; level++) {
        const Seconds service = serviceAtLevel(r.service, level);
        if (earliest_start + service <= r.deadline) {
            d.level = level;
            d.service = service;
            d.qualityFactor = std::pow(
                cfg_.qualityStep, static_cast<double>(level));
            d.resolutionScale = std::pow(
                cfg_.resolutionStep, static_cast<double>(level));
            return d;
        }
    }
    // Even the deepest rung misses: shed, the client renders its
    // periphery locally instead of receiving it late.
    d.admit = false;
    d.level = cfg_.maxLevel;
    d.service = 0.0;
    return d;
}

}  // namespace qvr::serve
