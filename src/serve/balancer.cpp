#include "serve/balancer.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace qvr::serve
{

namespace
{

/** Predicted-load bound: c * mean load if this request joined the
 *  average shard.  Since min <= mean < bound for c > 1, at least one
 *  active shard is always under the bound. */
Seconds
loadBound(const ShardLoadView &view, double factor, Seconds service)
{
    Seconds total = service;
    for (const std::uint32_t s : *view.active)
        total += view.load(s);
    return factor * total /
           static_cast<double>(view.active->size());
}

/** Least-loaded active shard, lowest id on ties — the JSQ rule and
 *  every bounded walk's terminal fallback. */
std::uint32_t
leastLoaded(const ShardLoadView &view)
{
    const std::vector<std::uint32_t> &active = *view.active;
    std::uint32_t best = active.front();
    Seconds best_load = view.load(best);
    for (std::size_t i = 1; i < active.size(); i++) {
        const Seconds load = view.load(active[i]);
        if (load < best_load) {
            best_load = load;
            best = active[i];
        }
    }
    return best;
}

/** Rendezvous weight of (placement, shard): stable per pair. */
std::uint64_t
rendezvousWeight(std::uint64_t placement, std::uint32_t shard)
{
    return placementMix((placement << 32) | shard);
}

class JsqBalancer final : public Balancer
{
  public:
    std::uint32_t
    pick(const RenderRequest &, const ShardLoadView &view) const override
    {
        return leastLoaded(view);
    }
};

/** Legacy pure-affinity rendezvous: highest weight wins, load
 *  ignored — the PR-5 behaviour, kept for the regression pin. */
class UnboundedHashBalancer final : public Balancer
{
  public:
    std::uint32_t
    pick(const RenderRequest &r, const ShardLoadView &view) const override
    {
        const std::vector<std::uint32_t> &active = *view.active;
        std::uint32_t best = active.front();
        std::uint64_t best_w = 0;
        for (std::size_t i = 0; i < active.size(); i++) {
            const std::uint64_t w =
                rendezvousWeight(r.placement, active[i]);
            if (i == 0 || w > best_w) {
                best = active[i];
                best_w = w;
            }
        }
        return best;
    }
};

/** Rendezvous with bounded-load spill: walk the preference order
 *  (weight descending) and take the first shard under the bound. */
class BoundedHashBalancer final : public Balancer
{
  public:
    explicit BoundedHashBalancer(double factor) : factor_(factor) {}

    std::uint32_t
    pick(const RenderRequest &r, const ShardLoadView &view) const override
    {
        const std::vector<std::uint32_t> &active = *view.active;
        std::vector<std::pair<std::uint64_t, std::uint32_t>> pref;
        pref.reserve(active.size());
        for (const std::uint32_t s : active)
            pref.emplace_back(rendezvousWeight(r.placement, s), s);
        std::sort(pref.begin(), pref.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first > b.first;
                      return a.second < b.second;
                  });
        const Seconds bound = loadBound(view, factor_, r.service);
        for (const auto &[w, s] : pref) {
            (void)w;
            if (view.load(s) < bound)
                return s;
        }
        return leastLoaded(view);  // numeric safety net
    }

  private:
    double factor_;
};

/** Consistent hashing with bounded loads: virtual-node ring, walked
 *  clockwise from the placement key under the c * mean bound. */
class BoundedRingBalancer final : public Balancer
{
  public:
    BoundedRingBalancer(double factor, std::uint32_t vnodes)
        : factor_(factor), vnodes_(vnodes)
    {
    }

    void
    rebuild(const std::vector<std::uint32_t> &active) override
    {
        ring_.clear();
        ring_.reserve(active.size() * vnodes_);
        for (const std::uint32_t s : active)
            for (std::uint32_t v = 0; v < vnodes_; v++)
                ring_.emplace_back(
                    placementMix((static_cast<std::uint64_t>(v) << 32) |
                                 s),
                    s);
        std::sort(ring_.begin(), ring_.end());
    }

    std::uint32_t
    pick(const RenderRequest &r, const ShardLoadView &view) const override
    {
        QVR_REQUIRE(!ring_.empty(), "consistent-hash ring not built");
        const Seconds bound = loadBound(view, factor_, r.service);
        const std::uint64_t key = placementMix(r.placement);
        std::size_t i =
            std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(key, 0u)) -
            ring_.begin();
        std::size_t seen = 0;
        for (std::size_t step = 0;
             step < ring_.size() && seen < view.active->size();
             step++, i++) {
            if (i == ring_.size())
                i = 0;
            const std::uint32_t s = ring_[i].second;
            // Each shard's first ring hit decides; later vnodes of an
            // already-rejected shard are skipped via the load check
            // (re-testing is harmless: load has not changed).
            seen++;
            if (view.load(s) < bound)
                return s;
        }
        return leastLoaded(view);  // numeric safety net
    }

  private:
    double factor_;
    std::uint32_t vnodes_;
    /** (position, shard id), sorted by position. */
    std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

/** Power-of-d-choices: d hash-derived candidates, least loaded wins
 *  (lowest id on ties). */
class PowerOfTwoBalancer final : public Balancer
{
  public:
    explicit PowerOfTwoBalancer(std::uint32_t choices)
        : choices_(choices)
    {
    }

    std::uint32_t
    pick(const RenderRequest &r, const ShardLoadView &view) const override
    {
        const std::vector<std::uint32_t> &active = *view.active;
        const std::uint64_t h =
            placementMix(r.placement ^ (r.seq * 0x9e3779b97f4a7c15ull));
        std::uint32_t best = 0;
        Seconds best_load = 0.0;
        for (std::uint32_t d = 0; d < choices_; d++) {
            const std::uint32_t s =
                active[placementMix(h + d) % active.size()];
            const Seconds load = view.load(s);
            if (d == 0 || load < best_load ||
                (load == best_load && s < best)) {
                best = s;
                best_load = load;
            }
        }
        return best;
    }

  private:
    std::uint32_t choices_;
};

}  // namespace

std::uint64_t
placementMix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

void
BalancerConfig::validate() const
{
    QVR_REQUIRE(loadFactor > 1.0,
                "balancer load factor must exceed 1");
    QVR_REQUIRE(choices >= 2,
                "power-of-two-choices needs at least 2 choices");
    QVR_REQUIRE(virtualNodes >= 1,
                "consistent-hash ring needs at least 1 virtual node");
}

void
Balancer::rebuild(const std::vector<std::uint32_t> &)
{
}

std::unique_ptr<Balancer>
makeBalancer(const BalancerConfig &cfg)
{
    cfg.validate();
    switch (cfg.policy) {
    case BalancerPolicy::JoinShortestQueue:
        return std::make_unique<JsqBalancer>();
    case BalancerPolicy::HashUser:
        return std::make_unique<BoundedHashBalancer>(cfg.loadFactor);
    case BalancerPolicy::HashUserUnbounded:
        return std::make_unique<UnboundedHashBalancer>();
    case BalancerPolicy::BoundedLoadConsistentHash:
        return std::make_unique<BoundedRingBalancer>(cfg.loadFactor,
                                                     cfg.virtualNodes);
    case BalancerPolicy::PowerOfTwoChoices:
        return std::make_unique<PowerOfTwoBalancer>(cfg.choices);
    }
    QVR_PANIC("unknown balancer policy");
}

}  // namespace qvr::serve
