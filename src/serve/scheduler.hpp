/**
 * @file
 * Deadline-aware chiplet scheduler: one shard's dispatch engine.
 *
 * The scheduler owns a pool of chiplet *slots* (pool size divided by
 * chiplets-per-request: how many renders the shard runs at once) and
 * serves one scheduling tick at a time — a tick is one round of the
 * collaborative session, i.e. every user's next periphery request.
 * Within a tick it:
 *
 *  1. orders the requests by the configured policy (FIFO baseline,
 *     EDF, or SJF on the Eq. 2 triangle-count service estimate),
 *  2. runs each request through admission control against the exact
 *     start time the slot pool can offer (so admitted requests never
 *     miss their deadline — the prediction *is* the dispatch),
 *  3. greedily coalesces policy-adjacent requests admitted at the
 *     same quality rung into one dispatch via the batch composer,
 *  4. commits dispatches to the earliest-free slot (lowest index on
 *     ties) and reports per-request outcomes in input order.
 *
 * Everything is sequential and seed-free, so a session replays
 * bit-exactly at any worker-thread count.
 */

#ifndef QVR_SERVE_SCHEDULER_HPP
#define QVR_SERVE_SCHEDULER_HPP

#include <cstdint>
#include <vector>

#include "serve/admission.hpp"
#include "serve/batch.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"

namespace qvr::serve
{

/** One shard's queueing discipline and slot pool. */
struct SchedulerConfig
{
    SchedulerPolicy policy = SchedulerPolicy::Fifo;
    /** Concurrent renders (chiplet pool / chiplets per request).
     *  0 means "derive from the session's chiplet fields". */
    std::uint32_t slots = 0;

    void validate() const;
};

/** Outcomes plus tick-level batching telemetry. */
struct TickReport
{
    /** Per-request outcomes, in the order requests were passed. */
    std::vector<ServeOutcome> outcomes;
    /** Coalesced dispatches (2+ members) this tick. */
    std::uint64_t batches = 0;
    /** Requests that rode in a coalesced dispatch this tick. */
    std::uint64_t batchedRequests = 0;
};

/** One shard's deterministic dispatch engine. */
class ChipletScheduler
{
  public:
    ChipletScheduler(const SchedulerConfig &cfg,
                     const AdmissionConfig &admission,
                     const BatchConfig &batching);

    const SchedulerConfig &config() const { return cfg_; }

    /** Schedule one tick's requests (seq numbers must be unique). */
    TickReport scheduleTick(const std::vector<RenderRequest> &reqs);

    /** Earliest time any slot is free. */
    Seconds nextFree() const;

    /** Committed work still pending at @p now across all slots —
     *  the join-shortest-queue balancer's load signal. */
    Seconds backlog(Seconds now) const;

    /** Total chiplet-slot busy seconds accumulated so far. */
    Seconds busyTime() const { return busy_; }

    std::size_t slots() const { return slotFree_.size(); }

    void reset();

  private:
    std::size_t earliestSlot() const;
    /** Earliest free time if the open batch were committed first. */
    Seconds freeAfterCommit(const Batch &b) const;
    void dispatchSolo(std::size_t index, const RenderRequest &r,
                      const AdmissionDecision &dec, TickReport &rep);
    void commitBatch(const Batch &b,
                     const std::vector<RenderRequest> &reqs,
                     TickReport &rep);

    SchedulerConfig cfg_;
    AdmissionController admission_;
    BatchComposer composer_;
    std::vector<Seconds> slotFree_;
    Seconds busy_ = 0.0;
};

}  // namespace qvr::serve

#endif  // QVR_SERVE_SCHEDULER_HPP
