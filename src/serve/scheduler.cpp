#include "serve/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/log.hpp"

namespace qvr::serve
{

void
SchedulerConfig::validate() const
{
    QVR_REQUIRE(slots >= 1, "scheduler needs at least one slot");
}

ChipletScheduler::ChipletScheduler(const SchedulerConfig &cfg,
                                   const AdmissionConfig &admission,
                                   const BatchConfig &batching)
    : cfg_(cfg), admission_(admission), composer_(batching)
{
    cfg.validate();
    slotFree_.assign(cfg.slots, 0.0);
}

Seconds
ChipletScheduler::nextFree() const
{
    return *std::min_element(slotFree_.begin(), slotFree_.end());
}

Seconds
ChipletScheduler::backlog(Seconds now) const
{
    Seconds sum = 0.0;
    for (const Seconds f : slotFree_)
        sum += std::max(0.0, f - now);
    return sum;
}

void
ChipletScheduler::reset()
{
    std::fill(slotFree_.begin(), slotFree_.end(), 0.0);
    busy_ = 0.0;
}

std::size_t
ChipletScheduler::earliestSlot() const
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < slotFree_.size(); i++) {
        if (slotFree_[i] < slotFree_[best])
            best = i;
    }
    return best;
}

Seconds
ChipletScheduler::freeAfterCommit(const Batch &b) const
{
    std::vector<Seconds> f = slotFree_;
    const std::size_t s = earliestSlot();
    f[s] = std::max(b.arrival, f[s]) + b.service;
    return *std::min_element(f.begin(), f.end());
}

void
ChipletScheduler::dispatchSolo(std::size_t index,
                               const RenderRequest &r,
                               const AdmissionDecision &dec,
                               TickReport &rep)
{
    const std::size_t s = earliestSlot();
    const Seconds start = std::max(r.arrival, slotFree_[s]);
    const Seconds completion = start + dec.service;
    slotFree_[s] = completion;
    busy_ += dec.service;

    ServeOutcome &o = rep.outcomes[index];
    o.admitted = true;
    o.level = dec.level;
    o.qualityFactor = dec.qualityFactor;
    o.resolutionScale = dec.resolutionScale;
    o.service = dec.service;
    o.start = start;
    o.completion = completion;
    o.queueWait = start - r.arrival;
    o.deadlineMet = completion <= r.deadline;
    o.batchSize = 1;
}

void
ChipletScheduler::commitBatch(const Batch &b,
                              const std::vector<RenderRequest> &reqs,
                              TickReport &rep)
{
    const std::size_t s = earliestSlot();
    const Seconds start = std::max(b.arrival, slotFree_[s]);
    const Seconds completion = start + b.service;
    slotFree_[s] = completion;
    busy_ += b.service;

    const double qf = std::pow(admission_.config().qualityStep,
                               static_cast<double>(b.level));
    const double rs = std::pow(admission_.config().resolutionStep,
                               static_cast<double>(b.level));
    for (std::size_t m = 0; m < b.members.size(); m++) {
        const std::size_t index = b.members[m];
        const RenderRequest &r = reqs[index];
        ServeOutcome &o = rep.outcomes[index];
        o.admitted = true;
        o.level = b.level;
        o.qualityFactor = b.level > 0 ? qf : 1.0;
        o.resolutionScale = b.level > 0 ? rs : 1.0;
        o.service = b.services[m];
        o.start = start;
        o.completion = completion;
        o.queueWait = start - r.arrival;
        o.deadlineMet = completion <= r.deadline;
        o.batchSize = static_cast<std::uint32_t>(b.members.size());
    }
    if (b.members.size() > 1) {
        rep.batches++;
        rep.batchedRequests += b.members.size();
    }
}

TickReport
ChipletScheduler::scheduleTick(const std::vector<RenderRequest> &reqs)
{
    TickReport rep;
    rep.outcomes.assign(reqs.size(), ServeOutcome{});

    RequestQueue q(cfg_.policy);
    std::map<std::uint64_t, std::size_t> position;
    for (std::size_t i = 0; i < reqs.size(); i++) {
        QVR_REQUIRE(position.emplace(reqs[i].seq, i).second,
                    "duplicate request seq within one tick");
        q.push(reqs[i]);
    }

    const auto shed = [&rep](std::size_t index,
                             const AdmissionDecision &dec) {
        ServeOutcome &o = rep.outcomes[index];
        o.admitted = false;
        o.level = dec.level;
        o.service = 0.0;
        o.deadlineMet = true;  // nothing was promised
    };

    bool have_open = false;
    Batch open;
    while (!q.empty()) {
        const RenderRequest r = q.pop();
        const std::size_t index = position.at(r.seq);

        if (have_open) {
            // Admission preview assuming the open batch commits
            // first — which is exactly what happens if r does not
            // join it, so the predicted start equals the dispatch
            // start and admitted requests cannot miss.  (For a shed
            // the preview start is a lower bound: the batch can only
            // grow, so shedding stays conservative.)
            const Seconds start0 =
                std::max(r.arrival, freeAfterCommit(open));
            const AdmissionDecision dec =
                admission_.decide(r, start0);
            if (!dec.admit) {
                shed(index, dec);
                continue;  // the batch stays open for later joins
            }
            if (dec.level == open.level &&
                composer_.canJoin(open, r, dec.level, dec.service,
                                  slotFree_[earliestSlot()],
                                  start0 + dec.service)) {
                composer_.join(open, index, r, dec.service);
                continue;
            }
            commitBatch(open, reqs, rep);
            have_open = false;
            if (composer_.config().enabled) {
                open = composer_.open(index, r, dec.level,
                                      dec.service);
                have_open = true;
            } else {
                dispatchSolo(index, r, dec, rep);
            }
        } else {
            const Seconds start0 =
                std::max(r.arrival, slotFree_[earliestSlot()]);
            const AdmissionDecision dec =
                admission_.decide(r, start0);
            if (!dec.admit) {
                shed(index, dec);
                continue;
            }
            if (composer_.config().enabled) {
                open = composer_.open(index, r, dec.level,
                                      dec.service);
                have_open = true;
            } else {
                dispatchSolo(index, r, dec, rep);
            }
        }
    }
    if (have_open)
        commitBatch(open, reqs, rep);
    return rep;
}

}  // namespace qvr::serve
