/**
 * @file
 * Pluggable fleet balancers behind one deterministic interface.
 *
 * The PR-5 fleet hard-wired two placement rules inside submitTick:
 * join-shortest-queue and a *pure* rendezvous hash.  The hash variant
 * had a pathology the capacity bench exposed (360 sheds vs JSQ's 7):
 * it ignored queue depth entirely, so whichever shard the hash
 * overloaded kept shedding while its neighbours idled.  This module
 * replaces the hard-wiring with a Balancer interface and four load-
 * aware implementations plus the legacy one:
 *
 *  - JoinShortestQueue: least predicted backlog, lowest shard id on
 *    ties (unchanged, bit-exact with the PR-5 behaviour);
 *  - HashUser: rendezvous hash with a *bounded-load spill* — the
 *    request walks its preference order (highest-random-weight first)
 *    and takes the first shard whose predicted load is under
 *    c * mean; affinity is kept whenever the home shard has room;
 *  - HashUserUnbounded: the legacy pure-affinity rendezvous hash,
 *    kept so the shedding-pathology regression test can pin the gap;
 *  - BoundedLoadConsistentHash: a virtual-node hash ring walked
 *    clockwise from the placement key under the same c * mean bound
 *    (consistent hashing with bounded loads, Mirrokni et al.) —
 *    minimal key migration when the shard set changes;
 *  - PowerOfTwoChoices: d >= 2 hash-derived candidate shards, least
 *    loaded wins (lowest id on ties) — near-JSQ balance from O(d)
 *    load probes.
 *
 * Load is the same signal JSQ always used: the shard's committed
 * backlog at the request's arrival plus this tick's tentative
 * assignments.  The c * mean bound always admits at least one shard
 * (min <= mean < c * mean for c > 1), so the walks terminate.  No
 * RNG, no wall clock: placement is a pure function of the request
 * stream, so sessions replay bit-exactly at any worker count.
 */

#ifndef QVR_SERVE_BALANCER_HPP
#define QVR_SERVE_BALANCER_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/request.hpp"

namespace qvr::serve
{

/** Balancer choice plus its tuning knobs. */
struct BalancerConfig
{
    BalancerPolicy policy = BalancerPolicy::JoinShortestQueue;
    /** Bounded-load factor c: a shard is eligible while its load is
     *  under c * (mean load).  Applies to HashUser and
     *  BoundedLoadConsistentHash. */
    double loadFactor = 1.25;
    /** Candidate count d for PowerOfTwoChoices. */
    std::uint32_t choices = 2;
    /** Virtual nodes per shard on the consistent-hash ring. */
    std::uint32_t virtualNodes = 64;

    void validate() const;
};

/**
 * Per-tick load view the fleet hands the balancer: both vectors are
 * indexed by shard id; only ids in @p active are routable (shards
 * that are draining or retired never receive new work).
 */
struct ShardLoadView
{
    /** Committed backlog at this request's arrival, per shard. */
    const std::vector<Seconds> *committed = nullptr;
    /** Service already tentatively assigned this tick, per shard. */
    const std::vector<Seconds> *pending = nullptr;
    /** Routable shard ids, ascending. */
    const std::vector<std::uint32_t> *active = nullptr;

    Seconds load(std::uint32_t s) const
    {
        return (*committed)[s] + (*pending)[s];
    }
};

/** Deterministic placement rule. */
class Balancer
{
  public:
    virtual ~Balancer() = default;

    /** Shard id (from view.active) that serves @p r. */
    virtual std::uint32_t pick(const RenderRequest &r,
                               const ShardLoadView &view) const = 0;

    /** Rebuild placement state after the active shard set changed
     *  (scale events).  Stateless balancers ignore this. */
    virtual void rebuild(const std::vector<std::uint32_t> &active);
};

/** Construct the balancer @p cfg names (validates @p cfg). */
std::unique_ptr<Balancer> makeBalancer(const BalancerConfig &cfg);

/** The rendezvous-hash mixing function (splitmix64 finaliser),
 *  exposed so roam events can re-key placements deterministically. */
std::uint64_t placementMix(std::uint64_t x);

}  // namespace qvr::serve

#endif  // QVR_SERVE_BALANCER_HPP
