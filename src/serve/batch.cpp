#include "serve/batch.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace qvr::serve
{

void
BatchConfig::validate() const
{
    QVR_REQUIRE(maxBatch >= 1, "batch limit must be at least one");
    QVR_REQUIRE(syncOverhead >= 0.0, "negative sync overhead");
}

BatchComposer::BatchComposer(const BatchConfig &cfg) : cfg_(cfg)
{
    cfg.validate();
}

Batch
BatchComposer::open(std::size_t index, const RenderRequest &r,
                    std::uint32_t level, Seconds service) const
{
    Batch b;
    b.members.push_back(index);
    b.services.push_back(service);
    b.level = level;
    b.key = r.batchKey;
    b.arrival = r.arrival;
    b.service = service;
    b.minDeadline = r.deadline;
    return b;
}

Seconds
BatchComposer::mergedService(const Batch &b, Seconds service) const
{
    // Each solo service includes one sync overhead; the coalesced
    // dispatch pays it once.  Never let the amortisation make a
    // member's contribution negative.
    return b.service + std::max(0.0, service - cfg_.syncOverhead);
}

bool
BatchComposer::canJoin(const Batch &b, const RenderRequest &r,
                       std::uint32_t level, Seconds service,
                       Seconds slot_free,
                       Seconds solo_completion) const
{
    if (!cfg_.enabled)
        return false;
    if (b.members.size() >= cfg_.maxBatch)
        return false;
    if (b.key != r.batchKey || b.level != level)
        return false;
    const Seconds arrival = std::max(b.arrival, r.arrival);
    const Seconds completion =
        std::max(arrival, slot_free) + mergedService(b, service);
    if (completion > solo_completion)
        return false;  // joining would be slower than going alone
    const Seconds deadline = std::min(b.minDeadline, r.deadline);
    return completion <= deadline;
}

void
BatchComposer::join(Batch &b, std::size_t index,
                    const RenderRequest &r, Seconds service) const
{
    b.service = mergedService(b, service);
    b.members.push_back(index);
    b.services.push_back(service);
    b.arrival = std::max(b.arrival, r.arrival);
    b.minDeadline = std::min(b.minDeadline, r.deadline);
}

}  // namespace qvr::serve
