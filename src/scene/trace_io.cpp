#include "scene/trace_io.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/log.hpp"

namespace qvr::scene
{

namespace
{

constexpr const char *kMagic = "qvr-trace v1";

}  // namespace

void
writeTrace(std::ostream &os, const std::vector<FrameWorkload> &frames)
{
    os << kMagic << '\n';
    os << "# frames: " << frames.size() << '\n';
    os << std::setprecision(17);
    for (const auto &f : frames) {
        const auto &m = f.motionSeen;
        os << "frame " << f.index << ' ' << m.timestamp << ' '
           << m.head.orientation.x << ' ' << m.head.orientation.y
           << ' ' << m.head.orientation.z << ' ' << m.head.position.x
           << ' ' << m.head.position.y << ' ' << m.head.position.z
           << ' ' << m.gaze.x << ' ' << m.gaze.y << ' '
           << (m.interacting ? 1 : 0) << '\n';
        for (const auto &b : f.batches) {
            os << "batch " << b.id << ' ' << b.triangles << ' '
               << b.depth << ' ' << b.screenCoverage << ' '
               << (b.interactive ? 1 : 0) << '\n';
        }
    }
}

std::vector<FrameWorkload>
readTrace(std::istream &is)
{
    std::vector<FrameWorkload> frames;
    std::string line;
    std::size_t line_no = 0;

    auto bad = [&line_no](const std::string &why) {
        QVR_FATAL("trace parse error at line ", line_no, ": ", why);
    };

    if (!std::getline(is, line) || line != kMagic)
        QVR_FATAL("not a qvr trace (missing '", kMagic, "' header)");
    line_no = 1;

    while (std::getline(is, line)) {
        line_no++;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        std::string kind;
        ss >> kind;
        if (kind == "frame") {
            FrameWorkload f;
            auto &m = f.motionSeen;
            int interacting = 0;
            ss >> f.index >> m.timestamp >> m.head.orientation.x >>
                m.head.orientation.y >> m.head.orientation.z >>
                m.head.position.x >> m.head.position.y >>
                m.head.position.z >> m.gaze.x >> m.gaze.y >>
                interacting;
            if (!ss)
                bad("malformed frame record");
            m.interacting = interacting != 0;
            frames.push_back(std::move(f));
        } else if (kind == "batch") {
            if (frames.empty())
                bad("batch before any frame");
            DrawBatch b;
            int interactive = 0;
            ss >> b.id >> b.triangles >> b.depth >>
                b.screenCoverage >> interactive;
            if (!ss)
                bad("malformed batch record");
            b.interactive = interactive != 0;
            frames.back().batches.push_back(b);
        } else {
            bad("unknown record kind '" + kind + "'");
        }
    }

    // Deltas are derived state: recompute from consecutive samples.
    for (std::size_t i = 1; i < frames.size(); i++) {
        frames[i].motionDelta = motion::deltaBetween(
            frames[i - 1].motionSeen, frames[i].motionSeen);
    }
    return frames;
}

void
saveTrace(const std::string &path,
          const std::vector<FrameWorkload> &frames)
{
    std::ofstream os(path);
    if (!os)
        QVR_FATAL("cannot open '", path, "' for writing");
    writeTrace(os, frames);
    if (!os)
        QVR_FATAL("write failed for '", path, "'");
}

std::vector<FrameWorkload>
loadTrace(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        QVR_FATAL("cannot open '", path, "' for reading");
    return readTrace(is);
}

}  // namespace qvr::scene
