/**
 * @file
 * Workload-trace serialisation.
 *
 * The paper drives ATTILA-sim with recorded graphics-API traces; the
 * equivalent artefact here is a frame-workload trace: per frame, the
 * motion sample the pipeline saw plus every draw batch.  This module
 * reads/writes those traces in a line-oriented text format, so
 * experiments can be recorded once and replayed bit-exactly (or
 * produced by external tools and fed to the simulator).
 *
 * Format (one record per line, '#' comments ignored):
 *   qvr-trace v1
 *   frame <index> <timestamp> <yaw> <pitch> <roll> <px> <py> <pz>
 *         <gx> <gy> <interacting>
 *   batch <id> <triangles> <depth> <coverage> <interactive>
 *   ...
 */

#ifndef QVR_SCENE_TRACE_IO_HPP
#define QVR_SCENE_TRACE_IO_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "scene/workload.hpp"

namespace qvr::scene
{

/** Serialise @p frames to @p os.  @return bytes-ish lines written. */
void writeTrace(std::ostream &os,
                const std::vector<FrameWorkload> &frames);

/**
 * Parse a trace from @p is.  Fatal (user error) on malformed input,
 * with a line number in the message.
 */
std::vector<FrameWorkload> readTrace(std::istream &is);

/** File convenience wrappers (fatal on I/O failure). */
void saveTrace(const std::string &path,
               const std::vector<FrameWorkload> &frames);
std::vector<FrameWorkload> loadTrace(const std::string &path);

}  // namespace qvr::scene

#endif  // QVR_SCENE_TRACE_IO_HPP
