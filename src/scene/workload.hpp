/**
 * @file
 * Rendering-workload value types: draw batches and per-frame
 * workloads.  These are the simulator's stand-in for graphics API
 * traces — everything the timing models consume is batch/triangle/
 * depth/coverage statistics, which is exactly what the paper's
 * evaluation extracts from its ATTILA traces.
 */

#ifndef QVR_SCENE_WORKLOAD_HPP
#define QVR_SCENE_WORKLOAD_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "motion/pose.hpp"

namespace qvr::scene
{

/** One draw call as seen by the command processor. */
struct DrawBatch
{
    std::uint32_t id = 0;
    std::uint64_t triangles = 0;
    double depth = 1.0;          ///< normalised view depth in (0, 1]
    double screenCoverage = 0.0; ///< fraction of frame pixels touched
    bool interactive = false;    ///< foreground interactive object
};

/** The full rendering workload of one frame (one eye; the pipeline
 *  models double it for stereo). */
struct FrameWorkload
{
    FrameIndex index = 0;
    std::vector<DrawBatch> batches;
    motion::MotionSample motionSeen;   ///< sensor data at frame start
    motion::MotionDelta motionDelta;   ///< vs. previous frame

    /** Total triangles across batches. */
    std::uint64_t totalTriangles() const;

    /** Triangles in interactive batches. */
    std::uint64_t interactiveTriangles() const;

    /**
     * Workload-partition parameter f of Table 1: fraction of the
     * frame rendering cost attributable to interactive objects
     * (triangle-weighted, the first-order cost driver).
     */
    double interactiveFraction() const;
};

}  // namespace qvr::scene

#endif  // QVR_SCENE_WORKLOAD_HPP
