#include "scene/scene_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/geometry.hpp"
#include "common/log.hpp"

namespace qvr::scene
{

ComplexityField::ComplexityField(double base_frequency, std::uint64_t seed)
{
    Rng rng(seed);
    constexpr int kHarmonics = 8;
    double weight_sum = 0.0;
    for (int k = 0; k < kHarmonics; k++) {
        Harmonic h;
        const double freq =
            base_frequency * rng.uniform(0.5, 2.0);
        const double theta = rng.uniform(0.0, 2.0 * kPi);
        h.fx = freq * std::cos(theta);
        h.fy = freq * std::sin(theta);
        h.phase = rng.uniform(0.0, 2.0 * kPi);
        h.weight = rng.uniform(0.5, 1.0);
        weight_sum += h.weight;
        harmonics_.push_back(h);
    }
    // Normalise so typical excursions stay within ~[-1, 1]:
    // independent sinusoids add in quadrature.
    norm_ = weight_sum / std::sqrt(static_cast<double>(kHarmonics));
}

double
ComplexityField::sample(double yaw_deg, double pitch_deg) const
{
    double v = 0.0;
    for (const auto &h : harmonics_) {
        v += h.weight *
             std::sin(2.0 * kPi *
                          (h.fx * yaw_deg + h.fy * pitch_deg) +
                      h.phase);
    }
    return v / norm_;
}

SceneModel::SceneModel(const BenchmarkInfo &info, std::uint64_t seed)
    : info_(info),
      densityField_(info.complexityFrequency, seed * 2654435761u + 1),
      interactiveField_(info.complexityFrequency * 1.7,
                        seed * 2654435761u + 2),
      batchRng_(seed, 0x5851f42d4c957f2dULL),
      seed_(seed)
{
    QVR_REQUIRE(info.meanTriangles > 0, "benchmark without triangles");
    QVR_REQUIRE(info.numBatches > 0, "benchmark without batches");
}

double
SceneModel::complexityMultiplier(double yaw_deg, double pitch_deg) const
{
    const double field = densityField_.sample(yaw_deg, pitch_deg);
    const double v = 1.0 + info_.complexityVariation * field;
    return std::max(0.2, v);
}

double
SceneModel::interactiveFractionAt(double yaw_deg, double pitch_deg,
                                  bool interacting) const
{
    const double field =
        interactiveField_.sample(yaw_deg, pitch_deg);  // [-1, 1]
    double f = info_.interactiveBase * (1.0 + 0.5 * field);
    if (interacting)
        f *= info_.interactiveBoost;
    return clamp(f, 0.001, 0.9);
}

FrameWorkload
SceneModel::frame(FrameIndex index, const motion::MotionSample &seen,
                  const motion::MotionSample &truth,
                  const motion::MotionDelta &delta) const
{
    FrameWorkload w;
    w.index = index;
    w.motionSeen = seen;
    w.motionDelta = delta;

    // Scene content depends on where the user is *actually* looking;
    // gaze shifts the effective sampling point because the content in
    // the attended region dominates the fine-geometry budget (LoD).
    const double yaw = truth.head.orientation.x + truth.gaze.x * 0.5;
    const double pitch = truth.head.orientation.y + truth.gaze.y * 0.5;

    const double mult = complexityMultiplier(yaw, pitch);
    const auto total = static_cast<std::uint64_t>(
        static_cast<double>(info_.meanTriangles) * mult);
    const double f =
        interactiveFractionAt(yaw, pitch, truth.interacting);

    // Deterministic per-frame batch shaping: reseed from (seed,frame)
    // so a frame's batch list never depends on generation order.
    Rng rng(seed_ ^ (index * 0x9e3779b97f4a7c15ULL), seed_ + 11);

    const auto interactive_tris =
        static_cast<std::uint64_t>(static_cast<double>(total) * f);
    const std::uint64_t background_tris = total - interactive_tris;

    // A handful of interactive batches, the rest background.  Batch
    // sizes follow a power-ish law: a few dominate, many are small.
    const std::uint32_t n_interactive = std::max<std::uint32_t>(
        1, info_.numBatches / 50);
    const std::uint32_t n_background =
        std::max<std::uint32_t>(1, info_.numBatches - n_interactive);

    auto spread = [&rng](std::uint64_t tris, std::uint32_t n,
                         std::vector<double> &out) {
        out.resize(n);
        double sum = 0.0;
        for (std::uint32_t i = 0; i < n; i++) {
            // Pareto-like: weight = u^-0.7 (bounded).
            const double u = std::max(1e-3, rng.uniform());
            out[i] = std::pow(u, -0.7);
            sum += out[i];
        }
        for (auto &x : out)
            x = x / sum * static_cast<double>(tris);
    };

    std::vector<double> shares;
    std::uint32_t next_id = 0;

    spread(interactive_tris, n_interactive, shares);
    for (double s : shares) {
        DrawBatch b;
        b.id = next_id++;
        b.triangles = static_cast<std::uint64_t>(s);
        b.interactive = true;
        // Interactive objects sit close to the viewer.
        b.depth = rng.uniform(0.05, 0.35);
        b.screenCoverage = rng.uniform(0.01, 0.25);
        w.batches.push_back(b);
    }

    spread(background_tris, n_background, shares);
    for (double s : shares) {
        DrawBatch b;
        b.id = next_id++;
        b.triangles = static_cast<std::uint64_t>(s);
        b.interactive = false;
        b.depth = rng.uniform(0.4, 1.0);
        b.screenCoverage = rng.uniform(0.002, 0.08);
        w.batches.push_back(b);
    }

    return w;
}

std::vector<FrameWorkload>
generateWorkloads(const BenchmarkInfo &info,
                  const motion::MotionTrace &trace, std::uint64_t seed)
{
    SceneModel model(info, seed);
    std::vector<FrameWorkload> frames;
    frames.reserve(trace.size());
    for (std::size_t i = 0; i < trace.size(); i++) {
        frames.push_back(model.frame(i, trace.samples[i],
                                     trace.groundTruth[i],
                                     trace.deltaAt(i)));
    }
    return frames;
}

}  // namespace qvr::scene
