#include "scene/benchmarks.hpp"

#include "common/log.hpp"

namespace qvr::scene
{

namespace
{

std::vector<BenchmarkInfo>
makeTable3()
{
    // Triangle counts and shading costs are the synthetic-workload
    // calibration: they order the benchmarks by scene complexity the
    // way the paper's Table 4 eccentricities imply (GRID heaviest,
    // then Wolf, HL2-H/UT3, HL2-L, Doom3-H, Doom3-L lightest).
    std::vector<BenchmarkInfo> v;

    BenchmarkInfo d3h;
    d3h.name = "Doom3-H";
    d3h.api = GraphicsApi::OpenGL;
    d3h.width = 1920;
    d3h.height = 2160;
    d3h.numBatches = 382;
    d3h.meanTriangles = 400'000;
    d3h.shadingCost = 1.0;
    d3h.complexityVariation = 0.35;
    d3h.interactiveObjects = "weapon + enemies";
    v.push_back(d3h);

    BenchmarkInfo d3l = d3h;
    d3l.name = "Doom3-L";
    d3l.width = 1280;
    d3l.height = 1600;
    v.push_back(d3l);

    BenchmarkInfo h2h;
    h2h.name = "HL2-H";
    h2h.api = GraphicsApi::Direct3D;
    h2h.width = 1920;
    h2h.height = 2160;
    h2h.numBatches = 656;
    h2h.meanTriangles = 900'000;
    h2h.shadingCost = 1.1;
    h2h.complexityVariation = 0.35;
    h2h.interactiveObjects = "gravity-gun props";
    v.push_back(h2h);

    BenchmarkInfo h2l = h2h;
    h2l.name = "HL2-L";
    h2l.width = 1280;
    h2l.height = 1600;
    v.push_back(h2l);

    BenchmarkInfo grid;
    grid.name = "GRID";
    grid.api = GraphicsApi::Direct3D;
    grid.numBatches = 3680;
    grid.meanTriangles = 3'800'000;
    grid.shadingCost = 1.45;
    grid.complexityVariation = 0.40;
    grid.interactiveObjects = "player car";
    v.push_back(grid);

    BenchmarkInfo ut3;
    ut3.name = "UT3";
    ut3.api = GraphicsApi::Direct3D;
    ut3.numBatches = 1752;
    ut3.meanTriangles = 1'100'000;
    ut3.shadingCost = 1.2;
    ut3.complexityVariation = 0.40;
    ut3.interactiveObjects = "weapons + players";
    v.push_back(ut3);

    BenchmarkInfo wolf;
    wolf.name = "Wolf";
    wolf.api = GraphicsApi::Direct3D;
    wolf.numBatches = 3394;
    wolf.meanTriangles = 1'800'000;
    wolf.shadingCost = 1.25;
    wolf.complexityVariation = 0.35;
    wolf.interactiveObjects = "weapons + enemies";
    v.push_back(wolf);

    return v;
}

std::vector<BenchmarkInfo>
makeTable1()
{
    std::vector<BenchmarkInfo> v;

    // Published reference values copied verbatim from Table 1.
    BenchmarkInfo fov3d;
    fov3d.name = "Foveated3D";
    fov3d.api = GraphicsApi::Direct3D;
    fov3d.numBatches = 120;
    fov3d.meanTriangles = 231'000;
    fov3d.shadingCost = 3.2;  // photorealistic shading on few triangles
    fov3d.complexityVariation = 0.45;
    fov3d.interactiveBase = 0.30;
    fov3d.interactiveBoost = 1.7;
    fov3d.interactiveObjects = "9 Chess";
    fov3d.table1 = Table1Reference{0.16, 0.52, 43.0, 18.0, 75.0,
                                   fromKiB(646), 38.0};
    v.push_back(fov3d);

    BenchmarkInfo viking;
    viking.name = "Viking";
    viking.api = GraphicsApi::Direct3D;
    viking.numBatches = 900;
    viking.meanTriangles = 2'800'000;
    viking.shadingCost = 1.1;
    viking.complexityVariation = 0.15;
    viking.interactiveBase = 0.115;
    viking.interactiveBoost = 1.12;
    viking.interactiveObjects = "1 Carriage";
    viking.table1 = Table1Reference{0.10, 0.13, 13.0, 12.0, 16.0,
                                    fromKiB(530), 31.0};
    v.push_back(viking);

    BenchmarkInfo nature;
    nature.name = "Nature";
    nature.api = GraphicsApi::Direct3D;
    nature.numBatches = 600;
    nature.meanTriangles = 1'400'000;
    nature.shadingCost = 1.3;
    nature.complexityVariation = 0.30;
    nature.interactiveBase = 0.15;
    nature.interactiveBoost = 1.55;
    nature.interactiveObjects = "1 Tree";
    nature.table1 = Table1Reference{0.10, 0.24, 16.0, 12.0, 26.0,
                                    fromKiB(482), 28.0};
    v.push_back(nature);

    BenchmarkInfo sponza;
    sponza.name = "Sponza";
    sponza.api = GraphicsApi::Direct3D;
    sponza.numBatches = 250;
    sponza.meanTriangles = 282'000;
    sponza.shadingCost = 1.6;
    sponza.complexityVariation = 0.40;
    sponza.interactiveBase = 0.07;
    sponza.interactiveBoost = 2.6;
    sponza.interactiveObjects = "Lion Shield";
    sponza.table1 = Table1Reference{0.001, 0.20, 5.8, 0.5, 12.0,
                                    fromKiB(537), 31.0};
    v.push_back(sponza);

    BenchmarkInfo miguel;
    miguel.name = "San Miguel";
    miguel.api = GraphicsApi::Direct3D;
    miguel.numBatches = 1400;
    miguel.meanTriangles = 4'200'000;
    miguel.shadingCost = 1.0;
    miguel.complexityVariation = 0.25;
    miguel.interactiveBase = 0.10;
    miguel.interactiveBoost = 1.4;
    miguel.interactiveObjects = "4 Chairs, 1 Table";
    miguel.table1 = Table1Reference{0.06, 0.15, 11.0, 5.4, 14.0,
                                    fromKiB(572), 33.0};
    v.push_back(miguel);

    return v;
}

}  // namespace

const std::vector<BenchmarkInfo> &
table3Benchmarks()
{
    static const std::vector<BenchmarkInfo> v = makeTable3();
    return v;
}

const std::vector<BenchmarkInfo> &
table1Apps()
{
    static const std::vector<BenchmarkInfo> v = makeTable1();
    return v;
}

const BenchmarkInfo &
findBenchmark(const std::string &name)
{
    for (const auto &b : table3Benchmarks()) {
        if (b.name == name)
            return b;
    }
    for (const auto &b : table1Apps()) {
        if (b.name == name)
            return b;
    }
    QVR_FATAL("unknown benchmark: ", name);
}

}  // namespace qvr::scene
