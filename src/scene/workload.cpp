#include "scene/workload.hpp"

namespace qvr::scene
{

std::uint64_t
FrameWorkload::totalTriangles() const
{
    std::uint64_t sum = 0;
    for (const auto &b : batches)
        sum += b.triangles;
    return sum;
}

std::uint64_t
FrameWorkload::interactiveTriangles() const
{
    std::uint64_t sum = 0;
    for (const auto &b : batches) {
        if (b.interactive)
            sum += b.triangles;
    }
    return sum;
}

double
FrameWorkload::interactiveFraction() const
{
    const std::uint64_t total = totalTriangles();
    if (total == 0)
        return 0.0;
    return static_cast<double>(interactiveTriangles()) /
           static_cast<double>(total);
}

}  // namespace qvr::scene
