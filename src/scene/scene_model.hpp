/**
 * @file
 * Motion-correlated synthetic scene model.
 *
 * LIWC's first key insight (Section 4.1) is that scene-complexity
 * change across frames is strongly correlated with head and eye
 * motion: as the view direction sweeps the environment, the triangle
 * load entering the pipeline changes smoothly.  We model the
 * environment as a smooth pseudo-random "complexity field" over view
 * direction (a fixed sum of random-phase harmonics, deterministic per
 * seed), so identical motion always meets identical complexity — the
 * property LIWC's motion-indexed table learns to exploit.
 */

#ifndef QVR_SCENE_SCENE_MODEL_HPP
#define QVR_SCENE_SCENE_MODEL_HPP

#include <vector>

#include "common/rng.hpp"
#include "motion/trace.hpp"
#include "scene/benchmarks.hpp"
#include "scene/workload.hpp"

namespace qvr::scene
{

/**
 * Deterministic smooth scalar field over (yaw, pitch) degrees,
 * normalised to approximately [-1, 1].
 */
class ComplexityField
{
  public:
    ComplexityField(double base_frequency, std::uint64_t seed);

    /** Sample the field at a view direction (degrees). */
    double sample(double yaw_deg, double pitch_deg) const;

  private:
    struct Harmonic
    {
        double fx;      ///< cycles per degree along x
        double fy;      ///< cycles per degree along y
        double phase;
        double weight;
    };

    std::vector<Harmonic> harmonics_;
    double norm_ = 1.0;
};

/**
 * Generates per-frame workloads for one benchmark along a motion
 * trace.
 */
class SceneModel
{
  public:
    SceneModel(const BenchmarkInfo &info, std::uint64_t seed);

    const BenchmarkInfo &info() const { return info_; }

    /**
     * Workload for frame @p index given the motion the pipeline saw.
     * Complexity depends on ground-truth view direction; the pipeline
     * only observes it indirectly (triangle counts at render setup),
     * exactly like real hardware.
     */
    FrameWorkload frame(FrameIndex index,
                        const motion::MotionSample &seen,
                        const motion::MotionSample &truth,
                        const motion::MotionDelta &delta) const;

    /** Instantaneous total-triangle multiplier at a view direction. */
    double complexityMultiplier(double yaw_deg, double pitch_deg) const;

    /** Instantaneous interactive fraction f at a view direction. */
    double interactiveFractionAt(double yaw_deg, double pitch_deg,
                                 bool interacting) const;

  private:
    BenchmarkInfo info_;
    ComplexityField densityField_;
    ComplexityField interactiveField_;
    mutable Rng batchRng_;  ///< per-frame batch shaping (reseeded)
    std::uint64_t seed_;
};

/** Generate the whole workload stream for @p trace. */
std::vector<FrameWorkload>
generateWorkloads(const BenchmarkInfo &info,
                  const motion::MotionTrace &trace,
                  std::uint64_t seed = 7);

}  // namespace qvr::scene

#endif  // QVR_SCENE_SCENE_MODEL_HPP
