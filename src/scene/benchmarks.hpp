/**
 * @file
 * Benchmark catalog.
 *
 * Two application sets appear in the paper:
 *  - Table 3's gaming benchmarks (Doom3-H/L, HL2-H/L, GRID, UT3,
 *    Wolf) drive the main evaluation (Figures 12-15, Table 4);
 *  - Table 1's high-quality VR apps (Foveated3D, Viking, Nature,
 *    Sponza, San Miguel) drive the motivation study (Fig. 3, Table 1).
 *
 * Substitution note (DESIGN.md S2): the original API traces are
 * proprietary; each catalog entry carries the published aggregate
 * statistics (resolution, batch count, triangle count, interactive-
 * object fraction range) plus model parameters tuned so the synthetic
 * workload generator reproduces those statistics.  Published
 * reference values from the paper's tables are retained verbatim so
 * bench harnesses can print paper-vs-measured.
 */

#ifndef QVR_SCENE_BENCHMARKS_HPP
#define QVR_SCENE_BENCHMARKS_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace qvr::scene
{

/** Graphics API of the original trace (descriptive only). */
enum class GraphicsApi
{
    OpenGL,
    Direct3D,
};

/** Reference values quoted by the paper for Table-1 applications. */
struct Table1Reference
{
    double fMin = 0.0;           ///< interactive-fraction range low
    double fMax = 0.0;           ///< interactive-fraction range high
    double tLocalAvgMs = 0.0;    ///< avg static-collab local latency
    double tLocalMinMs = 0.0;
    double tLocalMaxMs = 0.0;
    Bytes backgroundBytes = 0;   ///< compressed background size
    double tRemoteMs = 0.0;      ///< remote fetch latency (Wi-Fi)
};

/** Everything the workload generator needs for one application. */
struct BenchmarkInfo
{
    std::string name;
    GraphicsApi api = GraphicsApi::Direct3D;
    std::int32_t width = 1920;     ///< per-eye render width
    std::int32_t height = 2160;    ///< per-eye render height
    std::uint32_t numBatches = 0;  ///< draw batches per frame (Table 3)
    std::uint64_t meanTriangles = 0;  ///< mean triangles per frame

    /** Relative per-pixel shading cost (1.0 = simple forward pass). */
    double shadingCost = 1.0;
    /** Amplitude of motion-correlated complexity variation in
     *  [0, 1): triangles swing by +-this fraction as the view moves. */
    double complexityVariation = 0.35;
    /** Spatial frequency of the complexity field (higher = complexity
     *  changes faster per degree of head rotation). */
    double complexityFrequency = 0.02;
    /** Concentration of geometry toward the view centre: the fovea
     *  disc holding area fraction a carries workload fraction
     *  a^(1/gamma); gamma >= 1 models centre-weighted content. */
    double centerConcentration = 1.25;

    /** Interactive-object model: base fraction and interaction boost. */
    double interactiveBase = 0.10;
    double interactiveBoost = 2.0;
    std::string interactiveObjects;  ///< description (Table 1 column)

    /** Paper reference values (only Table-1 apps carry these). */
    std::optional<Table1Reference> table1;

    std::int64_t
    pixelsPerEye() const
    {
        return static_cast<std::int64_t>(width) * height;
    }
};

/** Table-3 gaming benchmarks (the main evaluation set), in paper
 *  order: Doom3-H, Doom3-L, HL2-H, HL2-L, GRID, UT3, Wolf. */
const std::vector<BenchmarkInfo> &table3Benchmarks();

/** Table-1 high-quality VR apps (the motivation set): Foveated3D,
 *  Viking, Nature, Sponza, San Miguel. */
const std::vector<BenchmarkInfo> &table1Apps();

/** Look up any catalog entry by name (fatal if unknown). */
const BenchmarkInfo &findBenchmark(const std::string &name);

}  // namespace qvr::scene

#endif  // QVR_SCENE_BENCHMARKS_HPP
