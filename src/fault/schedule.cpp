#include "fault/schedule.hpp"

#include <algorithm>

#include "common/geometry.hpp"
#include "common/log.hpp"

namespace qvr::fault
{

GilbertElliott::GilbertElliott(const GilbertElliottConfig &cfg)
    : cfg_(cfg)
{
    QVR_REQUIRE(cfg.pGoodToBad >= 0.0 && cfg.pGoodToBad <= 1.0,
                "pGoodToBad outside [0,1]");
    QVR_REQUIRE(cfg.pBadToGood > 0.0 && cfg.pBadToGood <= 1.0,
                "pBadToGood outside (0,1] (Bad must be escapable)");
    QVR_REQUIRE(cfg.lossGood >= 0.0 && cfg.lossGood < 1.0,
                "lossGood outside [0,1)");
    QVR_REQUIRE(cfg.lossBad >= 0.0 && cfg.lossBad < 1.0,
                "lossBad outside [0,1)");
    QVR_REQUIRE(cfg.bandwidthFactorBad > 0.0 &&
                    cfg.bandwidthFactorBad <= 1.0,
                "bandwidthFactorBad outside (0,1]");
    QVR_REQUIRE(cfg.transferDropBad >= 0.0 && cfg.transferDropBad < 1.0,
                "transferDropBad outside [0,1)");
}

bool
GilbertElliott::step(Rng &rng)
{
    bad_ = bad_ ? !rng.chance(cfg_.pBadToGood)
                : rng.chance(cfg_.pGoodToBad);
    return bad_;
}

void
FaultSchedule::addOutage(Seconds start, Seconds duration)
{
    QVR_REQUIRE(start >= 0.0, "outage start before t=0");
    QVR_REQUIRE(duration > 0.0, "outage needs a positive duration");
    outages_.push_back(OutageWindow{start, duration});
}

void
FaultSchedule::addLinkDegradation(const LinkDegradationWindow &w)
{
    QVR_REQUIRE(w.start >= 0.0, "degradation start before t=0");
    QVR_REQUIRE(w.duration > 0.0,
                "degradation needs a positive duration");
    QVR_REQUIRE(w.bandwidthFactor > 0.0 && w.bandwidthFactor <= 1.0,
                "bandwidth factor outside (0,1]");
    QVR_REQUIRE(w.extraLoss >= 0.0 && w.extraLoss < 1.0,
                "extra loss outside [0,1)");
    link_.push_back(w);
}

void
FaultSchedule::addServerFault(const ServerFaultWindow &w)
{
    QVR_REQUIRE(w.start >= 0.0, "server fault start before t=0");
    QVR_REQUIRE(w.duration > 0.0,
                "server fault needs a positive duration");
    QVR_REQUIRE(w.stragglerFactor >= 1.0, "straggler factor < 1");
    server_.push_back(w);
}

void
FaultSchedule::setGilbertElliott(const GilbertElliottConfig &cfg)
{
    GilbertElliott validate(cfg);  // runs the parameter checks
    (void)validate;
    ge_ = cfg;
}

bool
FaultSchedule::empty() const
{
    return outages_.empty() && link_.empty() && server_.empty();
}

LinkState
FaultSchedule::linkStateAt(Seconds t) const
{
    LinkState s;
    for (const auto &w : outages_) {
        if (w.contains(t)) {
            s.outage = true;
            s.outageEnd = std::max(s.outageEnd, w.end());
        }
    }
    for (const auto &w : link_) {
        if (!w.contains(t))
            continue;
        if (w.bursty) {
            s.bursty = true;
        } else {
            s.bandwidthFactor *= w.bandwidthFactor;
            s.extraLoss += w.extraLoss;
        }
    }
    s.extraLoss = clamp(s.extraLoss, 0.0, 0.95);
    return s;
}

ServerState
FaultSchedule::serverStateAt(Seconds t) const
{
    ServerState s;
    for (const auto &w : server_) {
        if (!w.contains(t))
            continue;
        s.stragglerFactor = std::max(s.stragglerFactor,
                                     w.stragglerFactor);
        s.failedChiplets = std::max(s.failedChiplets, w.failedChiplets);
    }
    return s;
}

Seconds
FaultSchedule::outageEndAfter(Seconds t) const
{
    // Chained windows: leaving one outage may land inside another
    // (storm scenarios script them back to back), so iterate until
    // the time is outage-free.
    Seconds cur = t;
    bool moved = true;
    while (moved) {
        moved = false;
        for (const auto &w : outages_) {
            if (w.contains(cur)) {
                cur = w.end();
                moved = true;
            }
        }
    }
    return cur;
}

namespace
{

template <typename W>
void
minMaxTimes(const std::vector<W> &ws, Seconds &first, Seconds &last,
            bool &any)
{
    for (const auto &w : ws) {
        if (!any || w.start < first)
            first = w.start;
        if (!any || w.end() > last)
            last = w.end();
        any = true;
    }
}

}  // namespace

Seconds
FaultSchedule::firstFaultTime() const
{
    Seconds first = 0.0, last = 0.0;
    bool any = false;
    minMaxTimes(outages_, first, last, any);
    minMaxTimes(link_, first, last, any);
    minMaxTimes(server_, first, last, any);
    return any ? first : 0.0;
}

Seconds
FaultSchedule::lastFaultTime() const
{
    Seconds first = 0.0, last = 0.0;
    bool any = false;
    minMaxTimes(outages_, first, last, any);
    minMaxTimes(link_, first, last, any);
    minMaxTimes(server_, first, last, any);
    return any ? last : 0.0;
}

FaultSchedule
makeBurstyScenario(std::uint64_t seed, Seconds horizon)
{
    QVR_REQUIRE(horizon > 0.0, "scenario horizon must be positive");
    FaultSchedule s;
    GilbertElliottConfig ge;
    ge.pGoodToBad = 0.08;
    ge.pBadToGood = 0.25;
    ge.lossBad = 0.10;
    ge.bandwidthFactorBad = 0.5;
    ge.transferDropBad = 0.2;
    s.setGilbertElliott(ge);

    // Interference arrives in episodes: alternate clear gaps and GE
    // windows until the horizon is covered.
    Rng rng(seed, 0xb425);
    Seconds t = horizon * 0.1;
    while (t < horizon) {
        const Seconds burst = rng.uniform(0.2, 0.8);
        LinkDegradationWindow w;
        w.start = t;
        w.duration = std::min(burst, horizon - t);
        w.bursty = true;
        if (w.duration > 0.0)
            s.addLinkDegradation(w);
        t += burst + rng.uniform(0.3, 1.0);
    }
    return s;
}

FaultSchedule
makeOutageStormScenario(std::uint64_t seed, Seconds horizon)
{
    QVR_REQUIRE(horizon > 0.0, "scenario horizon must be positive");
    FaultSchedule s;
    Rng rng(seed, 0x07a6e);
    Seconds t = horizon * 0.15;
    while (t < horizon * 0.9) {
        const Seconds dur = rng.uniform(0.1, 0.5);
        s.addOutage(t, dur);
        t += dur + rng.uniform(0.4, 1.2);
    }
    return s;
}

FaultSchedule
makeStragglerScenario(std::uint64_t seed, Seconds horizon)
{
    QVR_REQUIRE(horizon > 0.0, "scenario horizon must be positive");
    FaultSchedule s;
    Rng rng(seed, 0x5e77e7);
    Seconds t = horizon * 0.1;
    while (t < horizon * 0.9) {
        ServerFaultWindow w;
        w.start = t;
        w.duration = rng.uniform(0.3, 0.9);
        w.stragglerFactor = rng.uniform(2.0, 4.0);
        // Some episodes also take chiplets offline entirely.
        w.failedChiplets = rng.chance(0.4)
                               ? static_cast<std::uint32_t>(
                                     rng.uniformInt(1, 4))
                               : 0;
        if (w.start + w.duration > horizon)
            w.duration = horizon - w.start;
        if (w.duration > 0.0)
            s.addServerFault(w);
        t += w.duration + rng.uniform(0.3, 0.8);
    }
    return s;
}

FaultSchedule
makeWorstCaseSchedule(Seconds outage_start)
{
    QVR_REQUIRE(outage_start >= 0.0, "outage start before t=0");
    FaultSchedule s;
    // 500 ms hard outage...
    s.addOutage(outage_start, 0.500);
    // ...inside a longer 10% bursty-loss episode that starts before
    // and outlasts it, so recovery happens on a still-lossy link.
    GilbertElliottConfig ge;
    ge.pGoodToBad = 0.10;
    ge.pBadToGood = 0.30;
    ge.lossBad = 0.10;
    ge.bandwidthFactorBad = 0.5;
    ge.transferDropBad = 0.25;
    s.setGilbertElliott(ge);
    LinkDegradationWindow w;
    w.start = std::max(0.0, outage_start - 0.2);
    w.duration = (outage_start - w.start) + 0.500 + 0.7;
    w.bursty = true;
    s.addLinkDegradation(w);
    return s;
}

std::vector<Scenario>
standardSuite(std::uint64_t seed, Seconds horizon)
{
    std::vector<Scenario> suite;
    suite.push_back({"clean", FaultSchedule{}});
    suite.push_back({"bursty", makeBurstyScenario(seed, horizon)});
    suite.push_back(
        {"outage-storm", makeOutageStormScenario(seed, horizon)});
    suite.push_back(
        {"straggler", makeStragglerScenario(seed, horizon)});
    suite.push_back(
        {"worst-case", makeWorstCaseSchedule(horizon * 0.35)});
    return suite;
}

}  // namespace qvr::fault
