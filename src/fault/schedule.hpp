/**
 * @file
 * Deterministic fault-injection schedules for the collaborative
 * pipeline.
 *
 * Q-VR's premise is a real wireless downlink (Section 4.1 monitors
 * ACK packets precisely because links misbehave), and real links fail
 * in *bursts* — interference windows, coverage dips, hard outages —
 * not as i.i.d. per-packet coin flips.  A FaultSchedule is a scripted
 * timeline of such windows, either written by hand (tests, the
 * worst-case acceptance scenario) or generated from a seed by the
 * stochastic scenario builders (bench_resilience's suites).  The
 * schedule itself is immutable during a run and purely a function of
 * its construction inputs, so every consumer (net::Channel,
 * remote::RemoteServer) stays bit-exact across repeated runs and
 * thread counts.
 *
 * Three fault families:
 *  - outage windows: the link is dead; transfers issued inside the
 *    window stall until it closes;
 *  - link degradation windows: bandwidth collapse and/or extra loss,
 *    optionally driven by a Gilbert-Elliott two-state burst process
 *    (good/bad channel with geometric dwell times) instead of a flat
 *    loss rate;
 *  - server fault windows: a straggling chiplet (slowdown factor) or
 *    outright chiplet failures (capacity loss) on the remote MCM GPU.
 */

#ifndef QVR_FAULT_SCHEDULE_HPP
#define QVR_FAULT_SCHEDULE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace qvr::fault
{

/**
 * Gilbert-Elliott burst-loss parameters.  The chain advances one step
 * per transfer: from Good it enters Bad with pGoodToBad, from Bad it
 * recovers with pBadToGood, giving geometric burst lengths of mean
 * 1/pBadToGood transfers — the bursty regime the MEC-VR literature
 * optimises for, as opposed to i.i.d. loss.
 */
struct GilbertElliottConfig
{
    double pGoodToBad = 0.05;
    double pBadToGood = 0.25;
    /** Packet-loss probability while Good / Bad. */
    double lossGood = 0.0;
    double lossBad = 0.10;
    /** Goodput multiplier while Bad (fading collapses rate too). */
    double bandwidthFactorBad = 0.5;
    /** Probability that a whole transfer is lost (needs retransmit by
     *  the stream layer) while Bad. */
    double transferDropBad = 0.25;
};

/** Two-state burst process over transfers (state lives in Channel). */
class GilbertElliott
{
  public:
    explicit GilbertElliott(const GilbertElliottConfig &cfg);

    /** Advance one transfer; @return true when the channel is Bad. */
    bool step(Rng &rng);

    bool bad() const { return bad_; }
    const GilbertElliottConfig &config() const { return cfg_; }
    void reset() { bad_ = false; }

  private:
    GilbertElliottConfig cfg_;
    bool bad_ = false;
};

/** Hard outage: the link is unusable in [start, start+duration). */
struct OutageWindow
{
    Seconds start = 0.0;
    Seconds duration = 0.0;

    Seconds end() const { return start + duration; }
    bool contains(Seconds t) const { return t >= start && t < end(); }
};

/** Soft link degradation in [start, start+duration). */
struct LinkDegradationWindow
{
    Seconds start = 0.0;
    Seconds duration = 0.0;
    /** Goodput multiplier (coverage dip / contention), <= 1. */
    double bandwidthFactor = 1.0;
    /** Added to the configured packet-loss rate. */
    double extraLoss = 0.0;
    /** Drive loss/bandwidth through the Gilbert-Elliott chain
     *  instead of the flat extraLoss/bandwidthFactor. */
    bool bursty = false;

    Seconds end() const { return start + duration; }
    bool contains(Seconds t) const { return t >= start && t < end(); }
};

/** Remote-server fault in [start, start+duration). */
struct ServerFaultWindow
{
    Seconds start = 0.0;
    Seconds duration = 0.0;
    /** The slowest chiplet runs this much slower (straggler). */
    double stragglerFactor = 1.0;
    /** Chiplets offline during the window (capacity loss). */
    std::uint32_t failedChiplets = 0;

    Seconds end() const { return start + duration; }
    bool contains(Seconds t) const { return t >= start && t < end(); }
};

/** Effective link condition at one instant. */
struct LinkState
{
    bool outage = false;
    Seconds outageEnd = 0.0;       ///< valid when outage
    double bandwidthFactor = 1.0;  ///< product over active windows
    double extraLoss = 0.0;        ///< sum over active windows
    bool bursty = false;           ///< any active GE window
};

/** Effective server condition at one instant. */
struct ServerState
{
    double stragglerFactor = 1.0;      ///< max over active windows
    std::uint32_t failedChiplets = 0;  ///< max over active windows
};

/**
 * Immutable-after-setup fault timeline.  Windows may overlap; queries
 * combine them (outages union, bandwidth factors multiply, extra loss
 * adds and clamps, server slowdowns take the worst).
 */
class FaultSchedule
{
  public:
    FaultSchedule() = default;

    /** Append a hard outage window. */
    void addOutage(Seconds start, Seconds duration);
    /** Append a soft link-degradation window. */
    void addLinkDegradation(const LinkDegradationWindow &w);
    /** Append a server fault window. */
    void addServerFault(const ServerFaultWindow &w);

    /** Gilbert-Elliott parameters used by bursty windows. */
    void setGilbertElliott(const GilbertElliottConfig &cfg);
    const GilbertElliottConfig &gilbertElliott() const { return ge_; }

    bool empty() const;

    /** Link condition for a transfer starting at @p t. */
    LinkState linkStateAt(Seconds t) const;

    /** Server condition for a render starting at @p t. */
    ServerState serverStateAt(Seconds t) const;

    /** When @p t falls inside an outage, the latest end among the
     *  outage windows covering it; otherwise @p t unchanged. */
    Seconds outageEndAfter(Seconds t) const;

    /** Earliest start / latest end over every window (0/0 if empty);
     *  bench_resilience uses this to place its recovery probe. */
    Seconds firstFaultTime() const;
    Seconds lastFaultTime() const;

    const std::vector<OutageWindow> &outages() const { return outages_; }
    const std::vector<LinkDegradationWindow> &linkDegradations() const
    {
        return link_;
    }
    const std::vector<ServerFaultWindow> &serverFaults() const
    {
        return server_;
    }

  private:
    std::vector<OutageWindow> outages_;
    std::vector<LinkDegradationWindow> link_;
    std::vector<ServerFaultWindow> server_;
    GilbertElliottConfig ge_;
};

/** A named schedule, as bench_resilience sweeps them. */
struct Scenario
{
    std::string name;
    FaultSchedule schedule;
};

/**
 * Stochastic scenario generators.  Each expands a seed into a
 * concrete scripted timeline over [0, horizon) — the randomness is
 * consumed here, once, so two runs (or two thread counts) replaying
 * the same scenario see byte-identical fault timing.
 */

/** Interference bursts: GE windows covering ~half the horizon. */
FaultSchedule makeBurstyScenario(std::uint64_t seed, Seconds horizon);

/** Repeated hard outages (100-500 ms) with recovery gaps. */
FaultSchedule makeOutageStormScenario(std::uint64_t seed,
                                      Seconds horizon);

/** Server-side straggler + chiplet-failure windows. */
FaultSchedule makeStragglerScenario(std::uint64_t seed,
                                    Seconds horizon);

/**
 * The scripted worst case of the acceptance criteria: a 500 ms hard
 * outage at @p outage_start overlapped by a 10% bursty-loss window
 * stretching well past it.
 */
FaultSchedule makeWorstCaseSchedule(Seconds outage_start);

/** The standard suite: clean / bursty / outage storm / straggler /
 *  worst case, in that order. */
std::vector<Scenario> standardSuite(std::uint64_t seed,
                                    Seconds horizon);

}  // namespace qvr::fault

#endif  // QVR_FAULT_SCHEDULE_HPP
