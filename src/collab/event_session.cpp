#include "collab/event_session.hpp"

#include <algorithm>
#include <vector>

#include "collab/session_model.hpp"
#include "common/log.hpp"
#include "sim/event_queue.hpp"

namespace qvr::collab
{

namespace
{

/**
 * Stage priorities at an equal timestamp: a round's dispatch barrier
 * runs before completions, completions before the next round's
 * issues.  Within one priority the kernel's seq tie-break preserves
 * scheduling order, which the engine exploits to complete a round's
 * users in issue order (the shared egress timeline is call-order
 * FIFO, so this order is semantic, not cosmetic).
 */
constexpr sim::Priority kDispatch = 0;
constexpr sim::Priority kComplete = 1;
constexpr sim::Priority kIssue = 2;

/** One Served session run as per-user state machines on the event
 *  kernel.  See event_session.hpp for the equivalence contract. */
class EventEngine
{
  public:
    explicit EventEngine(const SessionConfig &cfg)
        : cfg_(cfg),
          setup_(model::makeSetup(cfg, /*streaming=*/true,
                                  cfg.aggregateTelemetry)),
          pending_(cfg.users), arrivedIssue_(cfg.users)
    {
        QVR_REQUIRE(setup_.fleet != nullptr,
                    "event engine requires the Served design");
    }

    SessionResult run()
    {
        // Sense stage: every user's first issue event at its issue
        // clock (all zero at t = 0; the kernel's seq tie-break makes
        // the firing order user-index order, which is immaterial —
        // phase A touches only private state).
        for (std::size_t ui = 0; ui < setup_.users.size(); ui++)
            scheduleIssue(ui);
        queue_.run();
        QVR_REQUIRE(round_ == cfg_.numFrames,
                    "event session drained early: round ", round_,
                    " of ", cfg_.numFrames);
        return cfg_.aggregateTelemetry
                   ? model::finaliseAggregate(cfg_, setup_)
                   : model::finaliseFull(cfg_, setup_);
    }

  private:
    void scheduleIssue(std::size_t ui)
    {
        // A user's issue clock can lag the round barrier (its
        // resources freed early); the clamp only moves the EVENT
        // time, not the model time — phase A reads u.issue from
        // state, so the computed frame is unchanged.
        model::UserState &u = setup_.users[ui];
        queue_.schedule(std::max(u.issue, queue_.now()),
                        [this, ui] { onIssue(ui); }, kIssue);
    }

    void onIssue(std::size_t ui)
    {
        model::UserState &u = setup_.users[ui];
        arrivedIssue_[ui] = u.issue;
        pending_[ui] = model::prepareServedFrame(
            *setup_.shared, *setup_.fleet, u, ui, u.fetchFrame());
        arrived_++;
        if (arrived_ == setup_.users.size()) {
            // Round cohort complete: dispatch barrier at this
            // instant, ahead of any equal-time issue events.
            queue_.schedule(queue_.now(), [this] { onDispatch(); },
                            kDispatch);
        }
    }

    void onDispatch()
    {
        // Phase B: submission seq numbers, the request batch and the
        // fleet tick all in issue order — the exact inputs the
        // lockstep engine hands the serving stack.
        const std::vector<std::size_t> order =
            issueOrder(arrivedIssue_);
        std::vector<serve::RenderRequest> reqs;
        reqs.reserve(order.size());
        for (std::size_t ui : order) {
            pending_[ui].request.seq = setup_.fleet->nextSeq();
            reqs.push_back(pending_[ui].request);
        }
        const std::vector<serve::ServeOutcome> outcomes =
            setup_.fleet->submitTick(reqs);

        // Phase C as events: equal time and priority, scheduled in
        // issue order, so the kernel's seq tie-break fires them in
        // issue order.
        for (std::size_t k = 0; k < order.size(); k++) {
            const std::size_t ui = order[k];
            const serve::ServeOutcome o = outcomes[k];
            queue_.schedule(queue_.now(),
                            [this, ui, o] { onComplete(ui, o); },
                            kComplete);
        }
        arrived_ = 0;
        round_++;
    }

    void onComplete(std::size_t ui, const serve::ServeOutcome &o)
    {
        model::UserState &u = setup_.users[ui];
        model::commitFrame(
            *setup_.shared, u,
            model::finishServedFrame(*setup_.shared, u, pending_[ui],
                                     o));
        if (u.nextFrame < cfg_.numFrames)
            scheduleIssue(ui);
    }

    const SessionConfig &cfg_;
    model::SessionSetup setup_;
    sim::EventQueue queue_;

    /** Round collector, indexed by user. */
    std::vector<model::ServedPending> pending_;
    std::vector<Seconds> arrivedIssue_;
    std::size_t arrived_ = 0;
    std::size_t round_ = 0;
};

}  // namespace

SessionResult
runEventSession(const SessionConfig &cfg)
{
    cfg.validate();
    QVR_REQUIRE(cfg.engine == SessionEngine::Event,
                "runEventSession called with the lockstep engine");
    return EventEngine(cfg).run();
}

}  // namespace qvr::collab
