#include "collab/event_session.hpp"

#include <algorithm>
#include <vector>

#include "collab/session_model.hpp"
#include "common/log.hpp"
#include "sim/event_queue.hpp"

namespace qvr::collab
{

namespace
{

/**
 * Stage priorities at an equal timestamp: a round's dispatch barrier
 * runs before completions, completions before the next round's
 * issues.  Within one priority the kernel's seq tie-break preserves
 * scheduling order, which the engine exploits to complete a round's
 * users in issue order (the shared egress timeline is call-order
 * FIFO, so this order is semantic, not cosmetic).
 */
constexpr sim::Priority kDispatch = 0;
constexpr sim::Priority kComplete = 1;
constexpr sim::Priority kIssue = 2;

/**
 * Open-loop stage priorities.  There is no fixed cohort, so the round
 * barrier generalises to a *flush*: at one timestamp, connects fire
 * first (new users join), then every issue at that instant, then one
 * flush dispatches the accumulated cohort to the fleet, then
 * completions.  Time ordering dominates, so issues at later instants
 * can never join an earlier cohort.
 */
constexpr sim::Priority kOpenConnect = 0;
constexpr sim::Priority kOpenIssue = 1;
constexpr sim::Priority kOpenFlush = 2;
constexpr sim::Priority kOpenComplete = 3;

/** One Served session run as per-user state machines on the event
 *  kernel.  See event_session.hpp for the equivalence contract. */
class EventEngine
{
  public:
    explicit EventEngine(const SessionConfig &cfg)
        : cfg_(cfg),
          setup_(model::makeSetup(cfg, /*streaming=*/true,
                                  cfg.aggregateTelemetry)),
          pending_(cfg.users), arrivedIssue_(cfg.users)
    {
        QVR_REQUIRE(setup_.fleet != nullptr,
                    "event engine requires the Served design");
    }

    SessionResult run()
    {
        // Sense stage: every user's first issue event at its issue
        // clock (all zero at t = 0; the kernel's seq tie-break makes
        // the firing order user-index order, which is immaterial —
        // phase A touches only private state).
        for (std::size_t ui = 0; ui < setup_.users.size(); ui++)
            scheduleIssue(ui);
        queue_.run();
        QVR_REQUIRE(round_ == cfg_.numFrames,
                    "event session drained early: round ", round_,
                    " of ", cfg_.numFrames);
        return cfg_.aggregateTelemetry
                   ? model::finaliseAggregate(cfg_, setup_)
                   : model::finaliseFull(cfg_, setup_);
    }

  private:
    void scheduleIssue(std::size_t ui)
    {
        // A user's issue clock can lag the round barrier (its
        // resources freed early); the clamp only moves the EVENT
        // time, not the model time — phase A reads u.issue from
        // state, so the computed frame is unchanged.
        model::UserState &u = setup_.users[ui];
        queue_.schedule(std::max(u.issue, queue_.now()),
                        [this, ui] { onIssue(ui); }, kIssue);
    }

    void onIssue(std::size_t ui)
    {
        model::UserState &u = setup_.users[ui];
        arrivedIssue_[ui] = u.issue;
        pending_[ui] = model::prepareServedFrame(
            *setup_.shared, *setup_.fleet, u, ui, u.fetchFrame());
        arrived_++;
        if (arrived_ == setup_.users.size()) {
            // Round cohort complete: dispatch barrier at this
            // instant, ahead of any equal-time issue events.
            queue_.schedule(queue_.now(), [this] { onDispatch(); },
                            kDispatch);
        }
    }

    void onDispatch()
    {
        // Phase B: submission seq numbers, the request batch and the
        // fleet tick all in issue order — the exact inputs the
        // lockstep engine hands the serving stack.
        const std::vector<std::size_t> order =
            issueOrder(arrivedIssue_);
        std::vector<serve::RenderRequest> reqs;
        reqs.reserve(order.size());
        for (std::size_t ui : order) {
            pending_[ui].request.seq = setup_.fleet->nextSeq();
            reqs.push_back(pending_[ui].request);
        }
        const std::vector<serve::ServeOutcome> outcomes =
            setup_.fleet->submitTick(reqs);

        // Phase C as events: equal time and priority, scheduled in
        // issue order, so the kernel's seq tie-break fires them in
        // issue order.
        for (std::size_t k = 0; k < order.size(); k++) {
            const std::size_t ui = order[k];
            const serve::ServeOutcome o = outcomes[k];
            queue_.schedule(queue_.now(),
                            [this, ui, o] { onComplete(ui, o); },
                            kComplete);
        }
        arrived_ = 0;
        round_++;
    }

    void onComplete(std::size_t ui, const serve::ServeOutcome &o)
    {
        model::UserState &u = setup_.users[ui];
        model::commitFrame(
            *setup_.shared, u,
            model::finishServedFrame(*setup_.shared, u, pending_[ui],
                                     o));
        if (u.nextFrame < cfg_.numFrames)
            scheduleIssue(ui);
    }

    const SessionConfig &cfg_;
    model::SessionSetup setup_;
    sim::EventQueue queue_;

    /** Round collector, indexed by user. */
    std::vector<model::ServedPending> pending_;
    std::vector<Seconds> arrivedIssue_;
    std::size_t arrived_ = 0;
    std::size_t round_ = 0;
};

/**
 * Arrival-driven Served session: users connect when the arrival
 * process says so, play a session of their own length, and
 * disconnect.  Same timing models, same flush-cohort dispatch
 * discipline as the closed-loop event engine — the population is just
 * dynamic.  Deterministic: arrivals are materialised up front from
 * the seeded process, roam gaps come from per-user split RNG streams,
 * and the kernel's (time, priority, seq) tie-break orders everything
 * else.
 */
class OpenLoopEngine
{
  public:
    explicit OpenLoopEngine(const SessionConfig &cfg)
        : cfg_(cfg),
          setup_(model::makeSetup(cfg, /*streaming=*/true,
                                  cfg.aggregateTelemetry)),
          arrivals_(core::generateArrivals(cfg.openLoop.arrivals,
                                           cfg.openLoop.horizon))
    {
        QVR_REQUIRE(setup_.fleet != nullptr,
                    "open-loop traffic requires the Served design");
        setup_.users.reserve(arrivals_.size());
        pending_.reserve(arrivals_.size());
        roamRng_.reserve(arrivals_.size());
        departed_.reserve(arrivals_.size());
    }

    SessionResult run()
    {
        for (std::size_t ai = 0; ai < arrivals_.size(); ai++)
            queue_.schedule(arrivals_[ai].connect,
                            [this, ai] { onConnect(ai); },
                            kOpenConnect);
        queue_.run();
        QVR_REQUIRE(active_ == 0,
                    "open-loop session did not drain: ", active_,
                    " users still connected");

        SessionResult result =
            cfg_.aggregateTelemetry
                ? model::finaliseAggregate(cfg_, setup_)
                : model::finaliseFull(cfg_, setup_);
        result.openLoop.enabled = true;
        result.openLoop.arrivals = setup_.users.size();
        result.openLoop.departures = departures_;
        result.openLoop.roams = roams_;
        result.openLoop.peakActiveUsers = peak_;
        if (lastPop_ > 0.0)
            result.openLoop.meanActiveUsers = popIntegral_ / lastPop_;
        return result;
    }

  private:
    /** Advance the population time-integral to @p t. */
    void accountPopulation(Seconds t)
    {
        popIntegral_ +=
            static_cast<double>(active_) * (t - lastPop_);
        lastPop_ = t;
    }

    void onConnect(std::size_t ai)
    {
        const core::UserArrival &a = arrivals_[ai];
        accountPopulation(queue_.now());
        active_++;
        peak_ = std::max(peak_, active_);

        const std::size_t ui = setup_.users.size();
        setup_.users.emplace_back();
        pending_.emplace_back();
        departed_.push_back(0);
        model::UserState &u = setup_.users.back();

        const auto &mix = cfg_.openLoop.arrivals.mix;
        const std::string &benchmark =
            mix.empty() ? cfg_.benchmark : mix[a.profile].benchmark;
        model::initUser(cfg_, setup_, u, benchmark,
                        /*workload_seed=*/a.seed,
                        /*channel_seed=*/a.seed,
                        /*channel_stream=*/0xbeef, a.frames,
                        /*streaming=*/true, cfg_.aggregateTelemetry);
        u.batchKey =
            mix.empty() ? 0 : static_cast<std::uint32_t>(a.profile);
        u.issue = a.connect;

        roamRng_.emplace_back(a.seed, 0xa777);
        if (cfg_.openLoop.arrivals.roamRate > 0.0)
            scheduleRoam(ui);
        scheduleIssue(ui);
    }

    void scheduleIssue(std::size_t ui)
    {
        model::UserState &u = setup_.users[ui];
        queue_.schedule(std::max(u.issue, queue_.now()),
                        [this, ui] { onIssue(ui); }, kOpenIssue);
    }

    void onIssue(std::size_t ui)
    {
        model::UserState &u = setup_.users[ui];
        pending_[ui] = model::prepareServedFrame(
            *setup_.shared, *setup_.fleet, u, ui, u.fetchFrame());
        cohort_.emplace_back(u.issue, ui);
        if (!flushArmed_) {
            flushArmed_ = true;
            queue_.schedule(queue_.now(), [this] { onFlush(); },
                            kOpenFlush);
        }
    }

    void onFlush()
    {
        flushArmed_ = false;

        // Scheduled autoscaling takes effect at dispatch boundaries:
        // the shard set is fixed within one fleet tick.
        const auto &scale = cfg_.openLoop.scaleEvents;
        while (scaleIdx_ < scale.size() &&
               scale[scaleIdx_].at <= queue_.now()) {
            setup_.fleet->scaleTo(scale[scaleIdx_].shards);
            scaleIdx_++;
        }

        // Dispatch the cohort in (issue clock, user index) order — a
        // total order, so the schedule is byte-identical regardless
        // of arrival interleaving.
        std::sort(cohort_.begin(), cohort_.end());
        std::vector<serve::RenderRequest> reqs;
        reqs.reserve(cohort_.size());
        for (const auto &[issue, ui] : cohort_) {
            (void)issue;
            pending_[ui].request.seq = setup_.fleet->nextSeq();
            reqs.push_back(pending_[ui].request);
        }
        const std::vector<serve::ServeOutcome> outcomes =
            setup_.fleet->submitTick(reqs);
        for (std::size_t k = 0; k < cohort_.size(); k++) {
            const std::size_t ui = cohort_[k].second;
            const serve::ServeOutcome o = outcomes[k];
            queue_.schedule(queue_.now(),
                            [this, ui, o] { onComplete(ui, o); },
                            kOpenComplete);
        }
        cohort_.clear();
    }

    void onComplete(std::size_t ui, const serve::ServeOutcome &o)
    {
        model::UserState &u = setup_.users[ui];
        model::commitFrame(
            *setup_.shared, u,
            model::finishServedFrame(*setup_.shared, u, pending_[ui],
                                     o));
        if (u.nextFrame < u.totalFrames) {
            scheduleIssue(ui);
        } else {
            departed_[ui] = 1;
            accountPopulation(queue_.now());
            active_--;
            departures_++;
        }
    }

    void scheduleRoam(std::size_t ui)
    {
        const Seconds gap = roamRng_[ui].exponential(
            cfg_.openLoop.arrivals.roamRate);
        queue_.schedule(queue_.now() + gap,
                        [this, ui] { onRoam(ui); }, kOpenConnect);
    }

    void onRoam(std::size_t ui)
    {
        if (departed_[ui])
            return;
        model::UserState &u = setup_.users[ui];
        // Re-key the placement hash: affinity balancers migrate the
        // user to a fresh shard preference, deterministically.
        u.placement = serve::placementMix(
            u.placement != 0
                ? u.placement
                : static_cast<std::uint64_t>(ui) +
                      0x51ed2701a3c5e9bfull);
        roams_++;
        scheduleRoam(ui);
    }

    const SessionConfig &cfg_;
    model::SessionSetup setup_;
    sim::EventQueue queue_;
    std::vector<core::UserArrival> arrivals_;

    /** Per-user round state, indexed like setup_.users. */
    std::vector<model::ServedPending> pending_;
    std::vector<Rng> roamRng_;
    std::vector<char> departed_;

    /** Issues accumulated since the last flush: (issue clock, ui). */
    std::vector<std::pair<Seconds, std::size_t>> cohort_;
    bool flushArmed_ = false;
    std::size_t scaleIdx_ = 0;

    std::size_t active_ = 0;
    std::size_t peak_ = 0;
    std::uint64_t departures_ = 0;
    std::uint64_t roams_ = 0;
    double popIntegral_ = 0.0;
    Seconds lastPop_ = 0.0;
};

}  // namespace

SessionResult
runEventSession(const SessionConfig &cfg)
{
    cfg.validate();
    QVR_REQUIRE(cfg.engine == SessionEngine::Event,
                "runEventSession called with the lockstep engine");
    if (cfg.openLoop.enabled)
        return OpenLoopEngine(cfg).run();
    return EventEngine(cfg).run();
}

}  // namespace qvr::collab
