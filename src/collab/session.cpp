#include "collab/session.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "collab/event_session.hpp"
#include "collab/session_model.hpp"
#include "common/log.hpp"

namespace qvr::collab
{

void
SessionConfig::validate() const
{
    QVR_REQUIRE(users >= 1, "session needs at least one user");
    QVR_REQUIRE(numFrames >= 1, "session needs at least one frame");
    QVR_REQUIRE(totalChiplets >= 1,
                "session needs at least one chiplet");
    QVR_REQUIRE(chipletsPerRequest >= 1,
                "chiplets per request must be at least one");
    QVR_REQUIRE(chipletsPerRequest <= totalChiplets,
                "a request cannot span more chiplets than the pool");
    QVR_REQUIRE(serverEgress > 0.0, "server egress must be positive");
    QVR_REQUIRE(design == SessionDesign::Static ||
                    design == SessionDesign::Qvr ||
                    design == SessionDesign::Served,
                "unsupported session design");
    if (design == SessionDesign::Served) {
        QVR_REQUIRE(renderDeadline > 0.0,
                    "render deadline must be positive");
        QVR_REQUIRE(shedPeripheryScale > 0.0 &&
                        shedPeripheryScale <= 1.0,
                    "shed periphery scale outside (0, 1]");
        QVR_REQUIRE(serving.shards >= 1,
                    "fleet needs at least one shard");
        serving.admission.validate();
        serving.batching.validate();
    }
    QVR_REQUIRE(engine == SessionEngine::Lockstep ||
                    design == SessionDesign::Served,
                "the event engine only runs the Served design");
    if (openLoop.enabled) {
        QVR_REQUIRE(design == SessionDesign::Served,
                    "open-loop traffic requires the Served design");
        QVR_REQUIRE(engine == SessionEngine::Event,
                    "open-loop traffic requires the event engine");
        QVR_REQUIRE(openLoop.horizon > 0.0,
                    "open-loop horizon must be positive");
        openLoop.arrivals.validate();
        Seconds prev = 0.0;
        for (const FleetScaleEvent &e : openLoop.scaleEvents) {
            QVR_REQUIRE(e.shards >= 1,
                        "scale event needs at least one shard");
            QVR_REQUIRE(e.at >= prev,
                        "scale events must be sorted by time");
            prev = e.at;
        }
    }
    QVR_REQUIRE(!aggregateTelemetry ||
                    engine == SessionEngine::Event,
                "aggregate telemetry requires the event engine");
    // The LIWC SRAM indexing needs motion-bits + 5 = 15 bits, so the
    // override can only deepen the table.
    QVR_REQUIRE(liwcTableDepthLog2 == 0 ||
                    (liwcTableDepthLog2 >= 15 &&
                     liwcTableDepthLog2 <= 20),
                "LIWC table depth override outside [15, 20]");
}

std::vector<std::size_t>
issueOrder(const std::vector<Seconds> &issue)
{
    std::vector<std::size_t> order(issue.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&issue](std::size_t a, std::size_t b) {
                  return issue[a] < issue[b];
              });
    return order;
}

double
SessionResult::meanFps() const
{
    if (aggregate.enabled)
        return aggregate.meanFps;
    double sum = 0.0;
    for (const auto &u : perUser)
        sum += u.meanFps();
    return perUser.empty() ? 0.0
                           : sum / static_cast<double>(perUser.size());
}

double
SessionResult::worstUserFps() const
{
    if (aggregate.enabled)
        return aggregate.worstUserFps;
    double worst = std::numeric_limits<double>::infinity();
    for (const auto &u : perUser)
        worst = std::min(worst, u.meanFps());
    return perUser.empty() ? 0.0 : worst;
}

double
SessionResult::meanMtp() const
{
    if (aggregate.enabled)
        return aggregate.meanMtp;
    double sum = 0.0;
    for (const auto &u : perUser)
        sum += u.meanMtp();
    return perUser.empty() ? 0.0
                           : sum / static_cast<double>(perUser.size());
}

double
SessionResult::fpsCompliance() const
{
    if (aggregate.enabled)
        return aggregate.fpsCompliance;
    double sum = 0.0;
    for (const auto &u : perUser)
        sum += u.fpsCompliance();
    return perUser.empty() ? 0.0
                           : sum / static_cast<double>(perUser.size());
}

double
SessionResult::aggregateBytesPerFrame() const
{
    if (aggregate.enabled)
        return aggregate.bytesPerFrame;
    double sum = 0.0;
    for (const auto &u : perUser)
        sum += u.meanTransmittedBytes();
    return sum;
}

SessionResult
runSession(const SessionConfig &cfg)
{
    cfg.validate();
    if (cfg.engine == SessionEngine::Event)
        return runEventSession(cfg);

    model::SessionSetup su = model::makeSetup(
        cfg, /*streaming=*/false, /*aggregate=*/false);
    model::Shared &shared = *su.shared;
    std::vector<model::UserState> &users = su.users;
    serve::Fleet *fleet = su.fleet.get();

    // Round-based simulation: each round serves every user's next
    // frame in issue-clock order, keeping the shared timelines
    // time-consistent.  (A deliberate non-feature: priority
    // scheduling at frame granularity was prototyped and REMOVED —
    // in a call-order-FIFO resource model, reordering whole frames
    // distorts causality and punishes everyone; genuine priority
    // needs preemption inside the shared resources.)
    for (std::size_t round = 0; round < cfg.numFrames; round++) {
        std::vector<Seconds> issues(cfg.users);
        for (std::size_t i = 0; i < cfg.users; i++)
            issues[i] = users[i].issue;
        const std::vector<std::size_t> order = issueOrder(issues);

        if (cfg.design == SessionDesign::Served) {
            // Phase A: local work + request creation in issue order
            // (the dispatch order, so submission seq numbers are
            // assigned here); phase B: one fleet scheduling tick over
            // the round's requests (this is what lets EDF/SJF reorder
            // across users and the composer coalesce them); phase C:
            // completion, in the same order.
            std::vector<model::ServedPending> pending;
            pending.reserve(cfg.users);
            std::vector<serve::RenderRequest> reqs;
            reqs.reserve(cfg.users);
            for (std::size_t ui : order) {
                model::UserState &u = users[ui];
                pending.push_back(model::prepareServedFrame(
                    shared, *fleet, u, ui, u.fetchFrame()));
                pending.back().request.seq = fleet->nextSeq();
                reqs.push_back(pending.back().request);
            }
            const std::vector<serve::ServeOutcome> outcomes =
                fleet->submitTick(reqs);
            for (std::size_t k = 0; k < order.size(); k++) {
                model::UserState &u = users[order[k]];
                model::commitFrame(
                    shared, u,
                    model::finishServedFrame(shared, u, pending[k],
                                             outcomes[k]));
            }
            continue;
        }

        for (std::size_t ui : order) {
            model::UserState &u = users[ui];
            const auto &frame = u.fetchFrame();
            core::FrameStats s =
                cfg.design == SessionDesign::Qvr
                    ? model::simulateQvrFrame(shared, u, frame)
                    : model::simulateStaticFrame(shared, u, frame);
            model::commitFrame(shared, u, s);
        }
    }

    return model::finaliseFull(cfg, su);
}

std::size_t
findUserCapacity(SessionConfig cfg, double min_fps, std::size_t limit)
{
    std::size_t best = 0;
    for (std::size_t n = 1; n <= limit; n = (n < 4 ? n + 1 : n + 2)) {
        cfg.users = n;
        const SessionResult r = runSession(cfg);
        if (r.worstUserFps() >= min_fps) {
            best = n;
        } else {
            break;
        }
    }
    return best;
}

}  // namespace qvr::collab
