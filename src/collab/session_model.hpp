/**
 * @file
 * Session timing layer ("core_simulate"): the per-frame models every
 * session engine shares.
 *
 * runSession() historically kept its user state, shared
 * infrastructure and frame simulation in one translation unit; the
 * event-driven engine (event_session.hpp) needs the exact same
 * computations, so they live here, split by role:
 *
 *  - UserState / Shared: everything one user owns privately, and the
 *    shared infrastructure all users contend on;
 *  - simulateQvrFrame / simulateStaticFrame: the closed-form designs;
 *  - prepareServedFrame / finishServedFrame: the Served design's
 *    phase A (sense + local render + request build) and phase C
 *    (streaming, fallback, composition) around the serving stack's
 *    phase B (Fleet::submitTick);
 *  - commitFrame: the per-frame bookkeeping tail, which feeds either
 *    full per-frame telemetry (PipelineResult) or the O(1)-per-user
 *    streaming aggregate the 10k-user sweeps need.
 *
 * Engines ("core_system") own *when* these run: the lockstep engine
 * loops rounds directly; the event engine schedules them as events on
 * sim::EventQueue.  Policies stay in qvr::serve.  Keeping the three
 * layers separable is what lets the lockstep path act as a bit-exact
 * oracle for the event-driven one (DESIGN.md section 10).
 *
 * Internal header: everything here is an implementation detail of
 * qvr::collab; the stable surface is session.hpp.
 */

#ifndef QVR_COLLAB_SESSION_MODEL_HPP
#define QVR_COLLAB_SESSION_MODEL_HPP

#include <memory>
#include <vector>

#include "collab/session.hpp"
#include "core/workload_stream.hpp"

namespace qvr::collab::model
{

/** Pipeline stage constants shared by every design (seconds). */
constexpr Seconds kControlLogic = 0.8e-3;
constexpr Seconds kUplink = 1.0e-3;
constexpr Seconds kSensor = 2e-3;
constexpr Seconds kDisplay = 5e-3;

/**
 * Streaming per-user telemetry: the running sums PipelineResult's
 * aggregate helpers would compute from the stored frames, accumulated
 * in frame order so the finalised numbers are bit-identical to the
 * full-telemetry path — without the O(frames) per-user storage.
 */
struct UserAggregate
{
    /** First frame the mean* helpers count (warm-up skip). */
    std::size_t warmupStart = 0;

    std::uint64_t frames = 0;
    double sumInterval = 0.0;    ///< post-warmup
    double sumMtp = 0.0;         ///< post-warmup
    double sumBytes = 0.0;       ///< post-warmup
    std::uint64_t counted = 0;   ///< post-warmup frame count
    std::uint64_t meetsRate = 0; ///< post-warmup 90 Hz frames

    /** SLO counters over ALL frames (computeUserSlo semantics). */
    std::uint64_t shed = 0;
    std::uint64_t downgraded = 0;
    std::uint64_t late = 0;
    /** Queue waits of admitted requests (fleet-level percentiles). */
    std::vector<Seconds> waits;

    void add(const core::FrameStats &s);

    double meanFps() const;
    double meanMtp() const;
    double meanBytes() const;
    double fpsCompliance() const;
};

/** Everything one user owns privately. */
struct UserState
{
    /** Eager workload (lockstep engines). */
    std::vector<scene::FrameWorkload> workload;
    /** Lazy workload (event engine): same frames, O(1) memory. */
    std::unique_ptr<core::WorkloadStream> stream;

    std::unique_ptr<core::Liwc> liwc;       // Qvr/Served designs
    sim::BusyResource cpu;
    sim::BusyResource gpu;
    sim::BusyResource lastMile;
    sim::MultiServerResource decoders{2};
    std::unique_ptr<net::Channel> channel;
    core::UcaTimingModel uca;
    /** Scene profile this user renders (closed loop: the session
     *  benchmark; open loop: drawn from the arrival mix). */
    const scene::BenchmarkInfo *bench = nullptr;
    /** Affinity key for the hash balancers; 0 derives from the user
     *  index, roam events re-key it. */
    std::uint64_t placement = 0;
    /** Batching compatibility class (the scene profile index — only
     *  same-profile requests may coalesce). */
    std::uint32_t batchKey = 0;
    /** Frames this user plays before disconnecting (closed loop:
     *  cfg.numFrames; open loop: the arrival's session length). */
    std::size_t totalFrames = 0;
    Seconds issue = 0.0;
    Seconds lastDisplay = 0.0;
    bool hasLastDisplay = false;
    std::size_t nextFrame = 0;
    /** Static design: completion times of in-flight prefetches. */
    std::vector<Seconds> prefetchReady;

    /** Full telemetry (empty when aggregateOnly). */
    core::PipelineResult result;
    /** Streaming telemetry (used when aggregateOnly). */
    UserAggregate agg;
    bool aggregateOnly = false;

    /** The next frame's workload; advances nextFrame.  Returns a
     *  reference valid until the following call. */
    const scene::FrameWorkload &fetchFrame();
};

/** Shared infrastructure + immutable models. */
struct Shared
{
    const SessionConfig *cfg;
    foveation::LayerGeometry geometry;
    foveation::PartitionOracle oracle;
    gpu::MobileGpuModel gpuModel;
    remote::RemoteServer requestServer;  // one request's chiplet share
    net::VideoCodec codec;
    gpu::postprocess::PostprocessCosts postCosts;
    sim::MultiServerResource serverPool;
    sim::BusyResource egress;

    Shared(const SessionConfig &c, const core::PipelineConfig &pc,
           const remote::ServerConfig &request_cfg);
};

/** Ship one payload: shared egress, then the user's last mile. */
Seconds shipAndDecode(Shared &sh, UserState &u, Seconds ready,
                      Bytes bytes, double pixels);

core::FrameStats simulateQvrFrame(Shared &sh, UserState &u,
                                  const scene::FrameWorkload &frame);

core::FrameStats simulateStaticFrame(Shared &sh, UserState &u,
                                     const scene::FrameWorkload &frame);

/** Per-user state carried from a Served round's phase A (local work
 *  and request creation) to phase C (completion). */
struct ServedPending
{
    core::FrameStats s;
    Vec2 gaze;
    foveation::PartitionOracle::Resolved resolved;
    core::LiwcDecision decision;
    gpu::RenderJob remoteJob;
    serve::RenderRequest request;
    Seconds cpuDone = 0.0;
    Seconds localDone = 0.0;
};

/**
 * Served phase A: everything up to and including the render request —
 * identical to the Qvr frame's front half, except the periphery job
 * becomes a RenderRequest for the serving stack instead of a direct
 * call-order grab of the shared pool.  Touches only @p u's private
 * state plus const shared models, so engines may run different
 * users' phase A in any order.  The request's seq is NOT assigned
 * here: the engine assigns it in round dispatch order (the lockstep
 * and event engines must hand the fleet identical seq numbers).
 */
ServedPending prepareServedFrame(Shared &sh, const serve::Fleet &fleet,
                                 UserState &u, std::size_t user_index,
                                 const scene::FrameWorkload &frame);

/**
 * Served phase C: turn the scheduler's outcome into photons.
 * Admitted requests stream their (possibly downgraded) layers from
 * the dispatch times; shed requests render the periphery on-device
 * at shedPeripheryScale — the degradation ladder's LocalOnly cost
 * model — serialised after the fovea on the same mobile GPU.
 * Mutates the SHARED egress timeline: engines must run a round's
 * phase Cs in issue order.
 */
core::FrameStats finishServedFrame(Shared &sh, UserState &u,
                                   ServedPending &p,
                                   const serve::ServeOutcome &o);

/** Shared per-frame bookkeeping tail: interval, SLO flags, issue
 *  clock (the exact statements every design has always run), routed
 *  into full or aggregate telemetry. */
void commitFrame(Shared &sh, UserState &u, core::FrameStats s);

/** Nearest-rank percentile over admitted-frame queue waits. */
UserSloStats computeUserSlo(const core::PipelineResult &pu);

/** Everything an engine needs to run a session. */
struct SessionSetup
{
    core::PipelineConfig pc;
    std::unique_ptr<Shared> shared;
    /** Null unless design == Served. */
    std::unique_ptr<serve::Fleet> fleet;
    std::vector<UserState> users;
};

/**
 * Initialise one user's private state in place: seeded workload
 * (eager or streaming), channel, LIWC, telemetry mode.  Closed-loop
 * setup calls it with the historical seed derivations (workload seed
 * cfg.seed + i*101, channel Rng(cfg.seed + i, 0xbeef + i)); the
 * open-loop engine calls it at connect time with the arrival's seed
 * and scene profile.
 */
void initUser(const SessionConfig &cfg, SessionSetup &su, UserState &u,
              const std::string &benchmark,
              std::uint64_t workload_seed, std::uint64_t channel_seed,
              std::uint64_t channel_stream, std::size_t num_frames,
              bool streaming, bool aggregate);

/**
 * Build the shared infrastructure, fleet (Served only; slot count 0
 * derives equal hardware from the session's chiplet fields) and
 * per-user states — seeded workloads, channels, LIWC instances.
 * @p streaming selects lazy frame generation (event engine);
 * @p aggregate selects streaming telemetry.  @p cfg must outlive the
 * returned setup.  Open-loop sessions start with zero users — the
 * engine materialises them from the arrival process.
 */
SessionSetup makeSetup(const SessionConfig &cfg, bool streaming,
                       bool aggregate);

/**
 * Full-telemetry result assembly: horizon, utilisations, serving
 * counters, per-user SLO summaries — the statements runSession has
 * always ended with, shared verbatim by both engines so the lockstep
 * path stays a field-for-field oracle.  Consumes the users' results.
 */
SessionResult finaliseFull(const SessionConfig &cfg, SessionSetup &su);

/** Streaming-telemetry result assembly (event engine, large N). */
SessionResult finaliseAggregate(const SessionConfig &cfg,
                                SessionSetup &su);

}  // namespace qvr::collab::model

#endif  // QVR_COLLAB_SESSION_MODEL_HPP
