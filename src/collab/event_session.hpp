/**
 * @file
 * Event-driven session engine.
 *
 * Each user is a state machine — sense → issue request → queue /
 * dispatch on a shard → complete → compose — whose stages run as
 * events on sim::EventQueue under the deterministic (time, priority,
 * seq) tie-break discipline.  Workloads stream frame by frame
 * (core::WorkloadStream) and telemetry can accumulate instead of
 * storing every frame, so memory is O(users): the engine sweeps
 * 10,000+ simulated users per shard where the lockstep engine's
 * eager workload vectors would need gigabytes.
 *
 * Equivalence contract: the serving policies (EDF, admission,
 * batching) are defined over round cohorts and the shared egress
 * timeline is call-order FIFO, so the engine schedules dispatch as a
 * barrier event that fires when the round's last request has been
 * issued, hands the fleet the identical request batch in the
 * identical issue order, and completes users in that same order.
 * The result is bit-identical to the lockstep engine at EVERY user
 * count — the lockstep path stays alive as the oracle, pinned by
 * tests/integration/test_event_crosscheck.cpp (DESIGN.md §10).
 *
 * Internal header: callers go through runSession(), which dispatches
 * on SessionConfig::engine.
 */

#ifndef QVR_COLLAB_EVENT_SESSION_HPP
#define QVR_COLLAB_EVENT_SESSION_HPP

#include "collab/session.hpp"

namespace qvr::collab
{

/** Run a Served-design session on the discrete-event kernel.
 *  Requires cfg.engine == SessionEngine::Event. */
SessionResult runEventSession(const SessionConfig &cfg);

}  // namespace qvr::collab

#endif  // QVR_COLLAB_EVENT_SESSION_HPP
