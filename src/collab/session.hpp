/**
 * @file
 * Multi-user collaborative VR sessions.
 *
 * The paper frames Q-VR as the building block for planet-scale
 * *collaborative* VR: many headsets sharing one edge server.  This
 * module models that deployment — N users, each with their own
 * mobile SoC, LIWC instance and last-mile link, all contending for a
 * shared chiplet pool on the render server and a shared egress pipe.
 *
 * The experiment it enables (bench_multiuser_scaling) is the
 * Firefly/Coterie-style question the paper cites as related work:
 * how many users can one edge server sustain at 90 Hz?  Q-VR's
 * per-user transmitted-data reduction translates directly into user
 * capacity; the static design saturates the egress pipe almost
 * immediately.
 *
 * SessionDesign::Served swaps the bare call-order chiplet pool for
 * the qvr::serve stack (deadline-aware scheduling, admission
 * control, cross-user batching, fleet sharding) — the serving-policy
 * question bench_fleet_capacity sweeps.
 */

#ifndef QVR_COLLAB_SESSION_HPP
#define QVR_COLLAB_SESSION_HPP

#include <string>
#include <vector>

#include "core/arrivals.hpp"
#include "core/pipeline.hpp"
#include "core/qvr_system.hpp"
#include "serve/fleet.hpp"

namespace qvr::collab
{

/** How each user's frames are partitioned. */
enum class SessionDesign
{
    Static,  ///< interactive-local / background-remote, prefetched
    Qvr,     ///< collaborative foveated with LIWC + UCA
    Served,  ///< Qvr with the qvr::serve edge-serving stack
};

/**
 * How the session is executed.  Both engines run the same timing
 * models (collab/session_model.hpp) and produce bit-identical
 * results; they differ in orchestration and memory footprint.
 */
enum class SessionEngine
{
    /** Round loop materialising every user's workload up front — the
     *  original engine, kept as the bit-exact oracle. */
    Lockstep,
    /** Per-user state machines (sense → issue → dispatch → complete →
     *  compose) scheduled on sim::EventQueue with the deterministic
     *  (time, priority, seq) tie-break; workloads stream frame by
     *  frame, so memory is O(users), not O(users × frames).  Served
     *  design only. */
    Event,
};


/** A scheduled fleet-resize during an open-loop run. */
struct FleetScaleEvent
{
    Seconds at = 0.0;          ///< simulated time of the resize
    std::uint32_t shards = 1;  ///< target active shard count
};

/**
 * Open-loop traffic: instead of a fixed closed-loop cohort issuing
 * frames back to back, users connect when the arrival process says
 * so, play a session of their own length, and disconnect.  The
 * arrival horizon caps admissions, not sessions — users connected
 * before the horizon play out in full, so the fleet always drains.
 * Requires the Served design on the event engine.
 */
struct OpenLoopConfig
{
    bool enabled = false;
    /** Who connects, and when (Poisson/MMPP/diurnal/mix). */
    core::ArrivalConfig arrivals;
    /** Admit arrivals with connect < horizon (seconds). */
    Seconds horizon = 10.0;
    /** Autoscaling schedule, applied at dispatch time in order (must
     *  be sorted by FleetScaleEvent::at). */
    std::vector<FleetScaleEvent> scaleEvents;
};

/** Population telemetry of an open-loop run. */
struct OpenLoopStats
{
    bool enabled = false;
    std::uint64_t arrivals = 0;    ///< users that connected
    std::uint64_t departures = 0;  ///< users that finished
    std::uint64_t roams = 0;       ///< placement re-keys
    /** Time-weighted mean of the connected-user count (the per-epoch
     *  population integral over the run). */
    double meanActiveUsers = 0.0;
    std::size_t peakActiveUsers = 0;
};

/** Shared-infrastructure session description. */
struct SessionConfig
{
    std::size_t users = 4;
    std::string benchmark = "HL2-H";
    SessionDesign design = SessionDesign::Qvr;

    /** Per-user last-mile link (each user gets an independent
     *  instance with its own noise stream). */
    net::ChannelConfig lastMile = net::ChannelConfig::wifi();

    /** Shared edge-server egress capacity. */
    BitsPerSecond serverEgress = fromMbps(1000.0);

    /** Shared chiplet pool: total chiplets and how many one render
     *  request occupies (pool/chipletsPerRequest concurrent jobs). */
    std::uint32_t totalChiplets = 16;
    std::uint32_t chipletsPerRequest = 2;

    std::size_t numFrames = 300;
    std::uint64_t seed = 1;

    /** Serving stack used by SessionDesign::Served.  A scheduler
     *  slot count of 0 derives pool/chipletsPerRequest/shards from
     *  the chiplet fields above (equal hardware at any shard
     *  count). */
    serve::FleetConfig serving;

    /** Served: render-completion deadline, measured from a request's
     *  arrival at the server — finishing later leaves too little of
     *  the MTP budget for shipping, decode and composition. */
    Seconds renderDeadline = 6e-3;

    /** Served: linear resolution of the on-device periphery when a
     *  request is shed (the degradation ladder's LocalOnly scale). */
    double shedPeripheryScale = 0.25;

    /** Execution engine (Event requires design == Served). */
    SessionEngine engine = SessionEngine::Lockstep;

    /** Open-loop traffic (off: the classic closed-loop cohort of
     *  `users` users x `numFrames` frames).  When enabled, `users`
     *  and `numFrames` are ignored — the arrival process decides the
     *  population and per-user session lengths. */
    OpenLoopConfig openLoop;

    /**
     * Event engine only: accumulate per-user running sums instead of
     * storing every FrameStats, shrinking a 10k-user sweep's result
     * from gigabytes to kilobytes.  SessionResult::perUser stays
     * empty; the summary accessors read SessionResult::aggregate,
     * whose numbers are bit-identical to what the full-telemetry
     * helpers would have computed.
     */
    bool aggregateTelemetry = false;

    /**
     * Override of LiwcConfig::tableDepthLog2 (0 = keep the model's
     * default of 15, i.e. 64 KB of fp16 per user).  The motion-tag
     * indexing needs 15 bits, so only deepening is legal ([15, 20]);
     * 64 KB/user is also the dominant per-user memory cost of a
     * fleet sweep — 10k users ≈ 640 MB of simulated SRAM.
     */
    std::uint32_t liwcTableDepthLog2 = 0;

    /** Panic on impossible values (runSession calls this). */
    void validate() const;
};

/** Per-user serving SLO summary (Served design only). */
struct UserSloStats
{
    /** Median queue wait of admitted requests (seconds). */
    Seconds p50QueueWait = 0.0;
    /** 99th-percentile queue wait of admitted requests (seconds). */
    Seconds p99QueueWait = 0.0;
    /** Admitted-but-late requests over all frames (zero whenever
     *  admission control is enabled — its contract). */
    double deadlineMissRate = 0.0;
    /** Frames whose periphery request was shed. */
    std::uint64_t shedFrames = 0;
    /** Frames admitted at a reduced quality rung. */
    std::uint64_t downgradedFrames = 0;
};

/**
 * Streaming telemetry summary (SessionConfig::aggregateTelemetry).
 * Every number equals what the full-telemetry accessors would have
 * computed from SessionResult::perUser — accumulated in frame order
 * with the same warm-up skip, so the equality is bitwise.
 */
struct SessionAggregate
{
    bool enabled = false;
    std::size_t users = 0;
    std::size_t framesPerUser = 0;

    double meanFps = 0.0;
    double worstUserFps = 0.0;
    double meanMtp = 0.0;
    double fpsCompliance = 0.0;
    double bytesPerFrame = 0.0;

    /** Simulated-time horizon of the run (latest display across
     *  users, seconds) — turns the serve counters into rates, which
     *  is what the capacity model in bench_fleet_capacity --large
     *  calibrates against. */
    Seconds horizon = 0.0;

    /** Fleet-wide nearest-rank percentiles over every admitted
     *  request's queue wait (pooled across users). */
    Seconds p50QueueWait = 0.0;
    Seconds p99QueueWait = 0.0;
    double deadlineMissRate = 0.0;
    std::uint64_t shedFrames = 0;
    std::uint64_t downgradedFrames = 0;
};

/** Aggregate outcome of a session. */
struct SessionResult
{
    SessionConfig config;
    std::vector<core::PipelineResult> perUser;

    /** Streaming summary (enabled == aggregateTelemetry runs). */
    SessionAggregate aggregate;

    /** Across-user mean of per-user mean FPS. */
    double meanFps() const;
    /** Slowest user's mean FPS (the fairness-critical number). */
    double worstUserFps() const;
    /** Across-user mean MTP (seconds). */
    double meanMtp() const;
    /** Fraction of (user, frame) pairs meeting 90 Hz. */
    double fpsCompliance() const;
    /** Total downlink bytes per frame across users. */
    double aggregateBytesPerFrame() const;
    /** Shared-egress utilisation over the run. */
    double egressUtilisation = 0.0;
    /** Shared chiplet-pool utilisation over the run. */
    double serverUtilisation = 0.0;

    /** Population telemetry (enabled only for open-loop runs). */
    OpenLoopStats openLoop;

    /** Serving telemetry (all zero unless design == Served). */
    serve::FleetCounters serveCounters;
    /** Per-shard chiplet-slot utilisation over the run. */
    std::vector<double> shardUtilisation;
    /** Per-user SLO summaries, indexed like perUser. */
    std::vector<UserSloStats> perUserSlo;
};

/**
 * Round scheduling order: user indices sorted by issue clock with
 * std::sort and `<` on Seconds — the exact comparator runSession has
 * always used, exposed so tests can pin it (strict weak ordering,
 * byte-identical schedule across repeated runs).
 */
std::vector<std::size_t> issueOrder(const std::vector<Seconds> &issue);

/** Run a session end to end (deterministic in config.seed). */
SessionResult runSession(const SessionConfig &cfg);

/**
 * Capacity search: largest user count in [1, limit] for which the
 * slowest user still averages at least @p min_fps.
 */
std::size_t findUserCapacity(SessionConfig cfg, double min_fps,
                             std::size_t limit = 32);

}  // namespace qvr::collab

#endif  // QVR_COLLAB_SESSION_HPP
