/**
 * @file
 * Multi-user collaborative VR sessions.
 *
 * The paper frames Q-VR as the building block for planet-scale
 * *collaborative* VR: many headsets sharing one edge server.  This
 * module models that deployment — N users, each with their own
 * mobile SoC, LIWC instance and last-mile link, all contending for a
 * shared chiplet pool on the render server and a shared egress pipe.
 *
 * The experiment it enables (bench_multiuser_scaling) is the
 * Firefly/Coterie-style question the paper cites as related work:
 * how many users can one edge server sustain at 90 Hz?  Q-VR's
 * per-user transmitted-data reduction translates directly into user
 * capacity; the static design saturates the egress pipe almost
 * immediately.
 */

#ifndef QVR_COLLAB_SESSION_HPP
#define QVR_COLLAB_SESSION_HPP

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/qvr_system.hpp"

namespace qvr::collab
{

/** How each user's frames are partitioned. */
enum class SessionDesign
{
    Static,  ///< interactive-local / background-remote, prefetched
    Qvr,     ///< collaborative foveated with LIWC + UCA
};


/** Shared-infrastructure session description. */
struct SessionConfig
{
    std::size_t users = 4;
    std::string benchmark = "HL2-H";
    SessionDesign design = SessionDesign::Qvr;

    /** Per-user last-mile link (each user gets an independent
     *  instance with its own noise stream). */
    net::ChannelConfig lastMile = net::ChannelConfig::wifi();

    /** Shared edge-server egress capacity. */
    BitsPerSecond serverEgress = fromMbps(1000.0);

    /** Shared chiplet pool: total chiplets and how many one render
     *  request occupies (pool/chipletsPerRequest concurrent jobs). */
    std::uint32_t totalChiplets = 16;
    std::uint32_t chipletsPerRequest = 2;

    std::size_t numFrames = 300;
    std::uint64_t seed = 1;
};

/** Aggregate outcome of a session. */
struct SessionResult
{
    SessionConfig config;
    std::vector<core::PipelineResult> perUser;

    /** Across-user mean of per-user mean FPS. */
    double meanFps() const;
    /** Slowest user's mean FPS (the fairness-critical number). */
    double worstUserFps() const;
    /** Across-user mean MTP (seconds). */
    double meanMtp() const;
    /** Fraction of (user, frame) pairs meeting 90 Hz. */
    double fpsCompliance() const;
    /** Total downlink bytes per frame across users. */
    double aggregateBytesPerFrame() const;
    /** Shared-egress utilisation over the run. */
    double egressUtilisation = 0.0;
    /** Shared chiplet-pool utilisation over the run. */
    double serverUtilisation = 0.0;
};

/** Run a session end to end (deterministic in config.seed). */
SessionResult runSession(const SessionConfig &cfg);

/**
 * Capacity search: largest user count in [1, limit] for which the
 * slowest user still averages at least @p min_fps.
 */
std::size_t findUserCapacity(SessionConfig cfg, double min_fps,
                             std::size_t limit = 32);

}  // namespace qvr::collab

#endif  // QVR_COLLAB_SESSION_HPP
