#include "collab/session_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hpp"

namespace qvr::collab::model
{

using core::FrameStats;
using core::PipelineResult;

namespace
{

double
safeInverse(double x)
{
    return x > 0.0 ? 1.0 / x : 0.0;
}

/** Nearest-rank percentile over a sorted sample (the exact rank
 *  arithmetic computeUserSlo has always used). */
Seconds
nearestRank(const std::vector<Seconds> &sorted, double q)
{
    const std::size_t n = sorted.size();
    std::size_t i = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (i == 0)
        i = 1;
    if (i > n)
        i = n;
    return sorted[i - 1];
}

}  // namespace

void
UserAggregate::add(const FrameStats &s)
{
    // Mirror of PipelineResult::meanOver: frames before warmupStart
    // are skipped by every mean* helper; accumulation stays in frame
    // order so the double sums round identically.
    if (frames >= warmupStart) {
        sumInterval += s.frameInterval;
        sumMtp += s.mtpLatency;
        sumBytes += static_cast<double>(s.transmittedBytes);
        if (s.meetsFrameRate)
            meetsRate++;
        counted++;
    }
    frames++;

    // Mirror of computeUserSlo: SLO counters span ALL frames.
    if (!s.serveAdmitted) {
        shed++;
        return;
    }
    waits.push_back(s.serveQueueWait);
    if (s.degradationLevel > 0)
        downgraded++;
    if (!s.serveDeadlineMet)
        late++;
}

double
UserAggregate::meanFps() const
{
    return safeInverse(
        counted ? sumInterval / static_cast<double>(counted) : 0.0);
}

double
UserAggregate::meanMtp() const
{
    return counted ? sumMtp / static_cast<double>(counted) : 0.0;
}

double
UserAggregate::meanBytes() const
{
    return counted ? sumBytes / static_cast<double>(counted) : 0.0;
}

double
UserAggregate::fpsCompliance() const
{
    return counted ? static_cast<double>(meetsRate) /
                         static_cast<double>(counted)
                   : 0.0;
}

const scene::FrameWorkload &
UserState::fetchFrame()
{
    if (stream) {
        nextFrame++;
        return stream->next();
    }
    return workload[nextFrame++];
}

Shared::Shared(const SessionConfig &c, const core::PipelineConfig &pc,
               const remote::ServerConfig &request_cfg)
    : cfg(&c), geometry(pc.display(), pc.mar), oracle(geometry),
      gpuModel(pc.gpuConfig, pc.gpuCost), requestServer(request_cfg),
      codec(pc.codecConfig), postCosts(pc.postCosts),
      serverPool(std::max<std::uint32_t>(
          1, c.totalChiplets / c.chipletsPerRequest)),
      egress()
{
}

Seconds
shipAndDecode(Shared &sh, UserState &u, Seconds ready, Bytes bytes,
              double pixels)
{
    const double egress_serialise =
        static_cast<double>(bytes) * 8.0 / sh.cfg->serverEgress;
    const Seconds left_edge = sh.egress.serve(ready, egress_serialise);

    const net::TransferResult xfer = u.channel->transfer(bytes);
    const Seconds serialise =
        xfer.duration - u.channel->config().baseLatency;
    const Seconds sent = u.lastMile.serve(left_edge, serialise);
    const Seconds arrived = sent + u.channel->config().baseLatency;
    return u.decoders.serve(arrived, sh.codec.decodeTime(pixels));
}

FrameStats
simulateQvrFrame(Shared &sh, UserState &u,
                 const scene::FrameWorkload &frame)
{
    const auto &bench = *u.bench;
    FrameStats s;
    s.index = frame.index;
    const Seconds cpu_done = u.cpu.serve(u.issue, kControlLogic);

    const Vec2 gaze{frame.motionSeen.gaze.x, frame.motionSeen.gaze.y};
    const core::LiwcDecision decision = u.liwc->selectEccentricity(
        frame.motionDelta, frame.totalTriangles() * 2, gaze);
    const auto &resolved = sh.oracle.resolve(decision.e1, gaze);
    s.e1 = resolved.partition.e1;
    s.e2 = resolved.partition.e2;

    const double area =
        sh.geometry.foveaAreaFraction(resolved.partition.e1, gaze);
    const double work =
        std::pow(std::max(1e-9, area),
                 1.0 / bench.centerConcentration);

    gpu::RenderJob local;
    local.triangles = static_cast<std::uint64_t>(
        static_cast<double>(frame.totalTriangles()) * 2.0 * work);
    local.shadedPixels = resolved.pixels.foveaPixels * 2.0;
    local.batches = std::max<std::uint32_t>(
        1,
        static_cast<std::uint32_t>(bench.numBatches * work * 2.0));
    local.shadingCost = bench.shadingCost;
    s.tLocalRender = sh.gpuModel.renderSeconds(local);
    s.localTriangles = local.triangles;
    const Seconds local_done = u.gpu.serve(cpu_done, s.tLocalRender);

    // Server render on the shared chiplet pool.
    gpu::RenderJob remote_job;
    remote_job.triangles = static_cast<std::uint64_t>(
        static_cast<double>(frame.totalTriangles()) * 2.0 *
        (1.0 - work));
    remote_job.shadedPixels = resolved.pixels.peripheryPixels() * 2.0;
    remote_job.batches = bench.numBatches * 2;
    remote_job.shadingCost = bench.shadingCost;
    s.tRemoteRender = sh.requestServer.renderSeconds(remote_job);
    const Seconds render_done = sh.serverPool.serve(
        cpu_done + kUplink, s.tRemoteRender);
    const Seconds stream_start = render_done - 0.7 * s.tRemoteRender;

    Seconds all_decoded = 0.0;
    double periphery_pixels = 0.0;
    for (int eye = 0; eye < 2; eye++) {
        for (int layer = 0; layer < 2; layer++) {
            const double pixels =
                layer == 0 ? resolved.pixels.middlePixels
                           : resolved.pixels.outerPixels;
            const double factor =
                layer == 0 ? resolved.pixels.middleFactor
                           : resolved.pixels.outerFactor;
            const Bytes bytes =
                sh.codec.compressedSize(pixels, 1.0, factor);
            const Seconds ready =
                stream_start + 0.3 * sh.codec.encodeTime(pixels);
            const Seconds decoded =
                shipAndDecode(sh, u, ready, bytes, pixels);
            all_decoded = std::max(all_decoded, decoded);
            s.transmittedBytes += bytes;
            s.tNetwork +=
                static_cast<double>(bytes) * 8.0 /
                u.channel->ackThroughput();
            periphery_pixels += pixels;
        }
    }
    s.tRemoteBranch = std::max(0.0, all_decoded - cpu_done);

    const auto &display = sh.geometry.display();
    core::PixelPartition pp;
    const double ppd = display.pixelsPerDegree();
    pp.centerX = display.width / 2.0 + gaze.x * ppd;
    pp.centerY = display.height / 2.0 + gaze.y * ppd;
    pp.foveaRadius = resolved.partition.e1 * ppd;
    pp.middleRadius = resolved.partition.e2 * ppd;
    const core::UcaTimingResult eye0 = u.uca.processFrame(
        display.width, display.height, pp, local_done, all_decoded);
    const core::UcaTimingResult eye1 = u.uca.processFrame(
        display.width, display.height, pp, local_done, all_decoded);
    const Seconds done = std::max(eye0.done, eye1.done);
    s.tComposition = (eye0.busy + eye1.busy) / 2.0;

    s.displayTime = done + kDisplay;
    s.mtpLatency = kSensor + (s.displayTime - u.issue);
    s.gpuBusy = s.tLocalRender;
    s.renderedResolutionFraction =
        sh.geometry.linearResolutionFraction(resolved.partition);

    core::LiwcFeedback fb;
    fb.measuredLocal = s.tLocalRender;
    fb.measuredRemote = s.tRemoteBranch;
    fb.renderedTriangles = local.triangles;
    fb.peripheryPixels = periphery_pixels;
    fb.peripheryBytes = s.transmittedBytes;
    fb.ackThroughput = u.channel->ackThroughput();
    u.liwc->update(decision, fb);
    return s;
}

FrameStats
simulateStaticFrame(Shared &sh, UserState &u,
                    const scene::FrameWorkload &frame)
{
    const auto &bench = *u.bench;
    FrameStats s;
    s.index = frame.index;
    const Seconds cpu_done = u.cpu.serve(u.issue, kControlLogic);

    // Local: the interactive objects.
    gpu::RenderJob local;
    local.triangles = frame.interactiveTriangles() * 2;
    double coverage = 0.0;
    for (const auto &b : frame.batches) {
        if (b.interactive)
            coverage += b.screenCoverage;
    }
    coverage = clamp(coverage, 0.01, 0.6);
    local.shadedPixels =
        static_cast<double>(bench.pixelsPerEye()) * 2.0 * coverage;
    local.batches = 8;
    local.shadingCost = bench.shadingCost;
    s.tLocalRender =
        sh.gpuModel.renderSeconds(local) *
        (1.0 + sh.postCosts.contentionInflation);
    const Seconds local_done = u.gpu.serve(cpu_done, s.tLocalRender);

    // Remote: full background + depth, prefetched one frame ahead.
    const double bg_pixels =
        static_cast<double>(bench.pixelsPerEye()) * 2.0;
    gpu::RenderJob bg;
    bg.triangles =
        (frame.totalTriangles() - frame.interactiveTriangles()) * 2;
    bg.shadedPixels = bg_pixels;
    bg.batches = bench.numBatches * 2;
    bg.shadingCost = bench.shadingCost;
    s.tRemoteRender = sh.requestServer.renderSeconds(bg);
    const Seconds render_done = sh.serverPool.serve(
        cpu_done + kUplink, s.tRemoteRender);

    const Bytes bytes = sh.codec.compressedSize(bg_pixels, 1.0, 1.0,
                                                /*with_depth=*/true);
    const Seconds decoded = shipAndDecode(
        sh, u, render_done + 0.3 * sh.codec.encodeTime(bg_pixels),
        bytes, bg_pixels);
    s.transmittedBytes = bytes;
    s.tNetwork = static_cast<double>(bytes) * 8.0 /
                 u.channel->ackThroughput();

    // Prefetch pipelining: this fetch serves the NEXT frame; the
    // current frame composites the previous fetch.
    Seconds bg_ready = cpu_done;
    u.prefetchReady.push_back(decoded);
    if (u.prefetchReady.size() > 1) {
        bg_ready = u.prefetchReady.front();
        u.prefetchReady.erase(u.prefetchReady.begin());
    } else {
        bg_ready = decoded;  // cold start: wait for the first fetch
    }
    s.tRemoteBranch = std::max(0.0, bg_ready - cpu_done);

    s.tComposition = gpu::postprocess::depthCompositionTime(
        sh.gpuModel, bg_pixels, sh.postCosts);
    s.tAtw = gpu::postprocess::atwTime(sh.gpuModel, bg_pixels,
                                       sh.postCosts);
    const Seconds comp_start = std::max(local_done, bg_ready) +
                               0.6 * (s.tComposition + s.tAtw);
    const Seconds done =
        u.gpu.serve(comp_start, s.tComposition + s.tAtw);

    s.displayTime = done + kDisplay;
    s.mtpLatency = kSensor + (s.displayTime - u.issue);
    s.gpuBusy = s.tLocalRender + s.tComposition + s.tAtw;
    s.renderedResolutionFraction = 1.0;
    return s;
}

ServedPending
prepareServedFrame(Shared &sh, const serve::Fleet &fleet, UserState &u,
                   std::size_t user_index,
                   const scene::FrameWorkload &frame)
{
    const auto &bench = *u.bench;
    ServedPending p;
    FrameStats &s = p.s;
    s.index = frame.index;
    p.cpuDone = u.cpu.serve(u.issue, kControlLogic);

    p.gaze = Vec2{frame.motionSeen.gaze.x, frame.motionSeen.gaze.y};
    p.decision = u.liwc->selectEccentricity(
        frame.motionDelta, frame.totalTriangles() * 2, p.gaze);
    p.resolved = sh.oracle.resolve(p.decision.e1, p.gaze);
    s.e1 = p.resolved.partition.e1;
    s.e2 = p.resolved.partition.e2;

    const double area =
        sh.geometry.foveaAreaFraction(p.resolved.partition.e1,
                                      p.gaze);
    const double work = std::pow(std::max(1e-9, area),
                                 1.0 / bench.centerConcentration);

    gpu::RenderJob local;
    local.triangles = static_cast<std::uint64_t>(
        static_cast<double>(frame.totalTriangles()) * 2.0 * work);
    local.shadedPixels = p.resolved.pixels.foveaPixels * 2.0;
    local.batches = std::max<std::uint32_t>(
        1,
        static_cast<std::uint32_t>(bench.numBatches * work * 2.0));
    local.shadingCost = bench.shadingCost;
    s.tLocalRender = sh.gpuModel.renderSeconds(local);
    s.localTriangles = local.triangles;
    p.localDone = u.gpu.serve(p.cpuDone, s.tLocalRender);

    p.remoteJob.triangles = static_cast<std::uint64_t>(
        static_cast<double>(frame.totalTriangles()) * 2.0 *
        (1.0 - work));
    p.remoteJob.shadedPixels =
        p.resolved.pixels.peripheryPixels() * 2.0;
    p.remoteJob.batches = bench.numBatches * 2;
    p.remoteJob.shadingCost = bench.shadingCost;
    s.tRemoteRender = fleet.requestRenderSeconds(p.remoteJob);

    serve::RenderRequest &r = p.request;
    r.user = static_cast<std::uint32_t>(user_index);
    r.placement = u.placement;  // 0: the fleet derives it from user
    r.frame = frame.index;
    r.arrival = p.cpuDone + kUplink;
    r.deadline = r.arrival + sh.cfg->renderDeadline;
    r.service = s.tRemoteRender;
    r.triangles = p.remoteJob.triangles;
    // Scene-profile compatibility class: closed-loop sessions run one
    // benchmark (key 0, all coalescible); open-loop mixes coalesce
    // only within a profile.
    r.batchKey = u.batchKey;
    return p;
}

FrameStats
finishServedFrame(Shared &sh, UserState &u, ServedPending &p,
                  const serve::ServeOutcome &o)
{
    FrameStats &s = p.s;
    s.serveQueueWait = o.queueWait;
    s.serveAdmitted = o.admitted;
    s.serveDeadlineMet = o.deadlineMet;
    s.degradationLevel = o.level;

    Seconds all_decoded = 0.0;
    double periphery_pixels = 0.0;
    if (o.admitted) {
        const Seconds stream_start = o.completion - 0.7 * o.service;
        const double rs2 = o.resolutionScale * o.resolutionScale;
        for (int eye = 0; eye < 2; eye++) {
            for (int layer = 0; layer < 2; layer++) {
                const double pixels =
                    (layer == 0 ? p.resolved.pixels.middlePixels
                                : p.resolved.pixels.outerPixels) *
                    rs2;
                const double factor =
                    layer == 0 ? p.resolved.pixels.middleFactor
                               : p.resolved.pixels.outerFactor;
                const Bytes bytes = sh.codec.compressedSize(
                    pixels, o.qualityFactor, factor);
                const Seconds ready =
                    stream_start + 0.3 * sh.codec.encodeTime(pixels);
                const Seconds decoded =
                    shipAndDecode(sh, u, ready, bytes, pixels);
                all_decoded = std::max(all_decoded, decoded);
                s.transmittedBytes += bytes;
                s.tNetwork += static_cast<double>(bytes) * 8.0 /
                              u.channel->ackThroughput();
                periphery_pixels += pixels;
            }
        }
        s.peripheryQuality = o.qualityFactor;
        s.gpuBusy = s.tLocalRender;
        s.renderedResolutionFraction =
            sh.geometry.linearResolutionFraction(
                p.resolved.partition) *
            o.resolutionScale;
    } else {
        const double lp = sh.cfg->shedPeripheryScale;
        gpu::RenderJob fallback = p.remoteJob;
        fallback.triangles = static_cast<std::uint64_t>(
            static_cast<double>(p.remoteJob.triangles) * lp);
        fallback.shadedPixels = p.remoteJob.shadedPixels * lp * lp;
        const Seconds t_fallback =
            sh.gpuModel.renderSeconds(fallback);
        all_decoded = u.gpu.serve(p.localDone, t_fallback);
        s.localFallback = true;
        s.gpuBusy = s.tLocalRender + t_fallback;
        s.renderedResolutionFraction =
            sh.geometry.linearResolutionFraction(
                p.resolved.partition) *
            lp;
    }
    s.tRemoteBranch = std::max(0.0, all_decoded - p.cpuDone);

    const auto &display = sh.geometry.display();
    core::PixelPartition pp;
    const double ppd = display.pixelsPerDegree();
    pp.centerX = display.width / 2.0 + p.gaze.x * ppd;
    pp.centerY = display.height / 2.0 + p.gaze.y * ppd;
    pp.foveaRadius = p.resolved.partition.e1 * ppd;
    pp.middleRadius = p.resolved.partition.e2 * ppd;
    const core::UcaTimingResult eye0 = u.uca.processFrame(
        display.width, display.height, pp, p.localDone, all_decoded);
    const core::UcaTimingResult eye1 = u.uca.processFrame(
        display.width, display.height, pp, p.localDone, all_decoded);
    const Seconds done = std::max(eye0.done, eye1.done);
    s.tComposition = (eye0.busy + eye1.busy) / 2.0;

    s.displayTime = done + kDisplay;
    s.mtpLatency = kSensor + (s.displayTime - u.issue);

    if (o.admitted) {
        // Shed frames carry no remote measurement, so the LIWC
        // controller only learns from admitted ones.
        core::LiwcFeedback fb;
        fb.measuredLocal = s.tLocalRender;
        fb.measuredRemote = s.tRemoteBranch;
        fb.renderedTriangles = s.localTriangles;
        fb.peripheryPixels = periphery_pixels;
        fb.peripheryBytes = s.transmittedBytes;
        fb.ackThroughput = u.channel->ackThroughput();
        u.liwc->update(p.decision, fb);
    }
    return s;
}

void
commitFrame(Shared &sh, UserState &u, FrameStats s)
{
    s.frameInterval = u.hasLastDisplay ? s.displayTime - u.lastDisplay
                                       : s.displayTime;
    u.lastDisplay = s.displayTime;
    u.hasLastDisplay = true;
    s.meetsFrameRate =
        s.frameInterval <= vr_requirements::kFrameBudget + 1e-9;
    s.meetsMtp =
        s.mtpLatency <= vr_requirements::kMaxMotionToPhoton + 1e-9;
    if (u.aggregateOnly)
        u.agg.add(s);
    else
        u.result.frames.push_back(s);

    u.issue = std::max({u.issue + 0.2e-3, u.gpu.nextFree(),
                        u.lastMile.nextFree(), sh.egress.nextFree()});
}

UserSloStats
computeUserSlo(const PipelineResult &pu)
{
    UserSloStats slo;
    std::vector<Seconds> waits;
    std::uint64_t late = 0;
    for (const FrameStats &f : pu.frames) {
        if (!f.serveAdmitted) {
            slo.shedFrames++;
            continue;
        }
        waits.push_back(f.serveQueueWait);
        if (f.degradationLevel > 0)
            slo.downgradedFrames++;
        if (!f.serveDeadlineMet)
            late++;
    }
    if (!pu.frames.empty())
        slo.deadlineMissRate =
            static_cast<double>(late) /
            static_cast<double>(pu.frames.size());
    if (!waits.empty()) {
        std::sort(waits.begin(), waits.end());
        slo.p50QueueWait = nearestRank(waits, 0.50);
        slo.p99QueueWait = nearestRank(waits, 0.99);
    }
    return slo;
}

void
initUser(const SessionConfig &cfg, SessionSetup &su, UserState &u,
         const std::string &benchmark, std::uint64_t workload_seed,
         std::uint64_t channel_seed, std::uint64_t channel_stream,
         std::size_t num_frames, bool streaming, bool aggregate)
{
    const auto &bench = scene::findBenchmark(benchmark);
    u.bench = &bench;
    u.totalFrames = num_frames;

    core::ExperimentSpec user_spec;
    user_spec.benchmark = benchmark;
    user_spec.channel = cfg.lastMile;
    user_spec.numFrames = num_frames;
    user_spec.seed = workload_seed;
    if (streaming)
        u.stream = std::make_unique<core::WorkloadStream>(user_spec);
    else
        u.workload = core::generateExperimentWorkload(user_spec);
    u.channel = std::make_unique<net::Channel>(
        cfg.lastMile, Rng(channel_seed, channel_stream));
    if (cfg.design != SessionDesign::Static) {
        const double pixels_per_tri =
            static_cast<double>(bench.pixelsPerEye()) /
            static_cast<double>(bench.meanTriangles);
        u.liwc = std::make_unique<core::Liwc>(
            su.pc.liwcConfig, su.shared->geometry,
            su.shared->gpuModel.triangleThroughput(
                bench.shadingCost, pixels_per_tri),
            cfg.lastMile.nominalDownlink *
                cfg.lastMile.protocolEfficiency,
            su.pc.codecConfig.baseBitsPerPixel, 5.0,
            bench.centerConcentration);
    }
    u.aggregateOnly = aggregate;
    if (aggregate) {
        u.agg.warmupStart = num_frames > u.result.warmupFrames
                                ? u.result.warmupFrames
                                : 0;
    }
    u.result.design =
        cfg.design == SessionDesign::Qvr      ? "Q-VR"
        : cfg.design == SessionDesign::Served ? "Served"
                                              : "Static";
    u.result.benchmark = benchmark;
}

SessionSetup
makeSetup(const SessionConfig &cfg, bool streaming, bool aggregate)
{
    SessionSetup su;

    core::ExperimentSpec spec;
    spec.benchmark = cfg.benchmark;
    spec.channel = cfg.lastMile;
    spec.numFrames = cfg.numFrames;
    su.pc = spec.toConfig();
    if (cfg.liwcTableDepthLog2 != 0)
        su.pc.liwcConfig.tableDepthLog2 = cfg.liwcTableDepthLog2;

    remote::ServerConfig request_cfg = remote::ServerConfig{};
    request_cfg.chiplets = cfg.chipletsPerRequest;

    su.shared = std::make_unique<Shared>(cfg, su.pc, request_cfg);

    // Served: stand up the serving stack.  Slot count 0 derives
    // equal hardware from the session's chiplet fields, split across
    // the shards; every shard's per-request hardware share matches
    // the bare pool's so designs compare at identical silicon.
    if (cfg.design == SessionDesign::Served) {
        serve::FleetConfig fc = cfg.serving;
        fc.server.chiplets = cfg.chipletsPerRequest;
        fc.batching.syncOverhead = fc.server.syncOverhead;
        if (fc.scheduler.slots == 0) {
            const std::uint32_t pool_slots = std::max<std::uint32_t>(
                1, cfg.totalChiplets / cfg.chipletsPerRequest);
            fc.scheduler.slots =
                std::max<std::uint32_t>(1, pool_slots / fc.shards);
        }
        su.fleet = std::make_unique<serve::Fleet>(fc);
    }

    // Open loop: the population is the arrival process's to decide —
    // the engine calls initUser at each connect.
    if (cfg.openLoop.enabled)
        return su;

    su.users.resize(cfg.users);
    for (std::size_t i = 0; i < cfg.users; i++) {
        initUser(cfg, su, su.users[i], cfg.benchmark,
                 cfg.seed + i * 101, cfg.seed + i, 0xbeef + i,
                 cfg.numFrames, streaming, aggregate);
    }
    return su;
}

SessionResult
finaliseFull(const SessionConfig &cfg, SessionSetup &su)
{
    SessionResult result;
    result.config = cfg;
    Seconds horizon = 0.0;
    for (auto &u : su.users) {
        horizon = std::max(horizon, u.lastDisplay);
        result.perUser.push_back(std::move(u.result));
    }
    if (horizon > 0.0) {
        result.egressUtilisation =
            su.shared->egress.busyTime() / horizon;
        result.serverUtilisation =
            su.shared->serverPool.busyTime() /
            (horizon *
             static_cast<double>(su.shared->serverPool.servers()));
    }
    if (su.fleet) {
        result.serveCounters = su.fleet->counters();
        const double slots =
            static_cast<double>(su.fleet->slotsPerShard());
        result.shardUtilisation.assign(su.fleet->shards(), 0.0);
        if (horizon > 0.0) {
            for (std::size_t s = 0; s < su.fleet->shards(); s++)
                result.shardUtilisation[s] =
                    su.fleet->shardBusyTime(s) / (horizon * slots);
            result.serverUtilisation =
                su.fleet->busyTime() /
                (horizon * slots *
                 static_cast<double>(su.fleet->shards()));
        }
        for (const auto &pu : result.perUser)
            result.perUserSlo.push_back(computeUserSlo(pu));
    }
    return result;
}

SessionResult
finaliseAggregate(const SessionConfig &cfg, SessionSetup &su)
{
    SessionResult result;
    result.config = cfg;
    SessionAggregate &a = result.aggregate;
    a.enabled = true;
    a.users = su.users.size();
    a.framesPerUser = cfg.numFrames;

    Seconds horizon = 0.0;
    double sum_fps = 0.0, sum_mtp = 0.0, sum_comp = 0.0;
    a.worstUserFps = std::numeric_limits<double>::infinity();
    std::vector<Seconds> waits;
    std::uint64_t late = 0, total_frames = 0;
    for (auto &u : su.users) {
        horizon = std::max(horizon, u.lastDisplay);
        const double fps = u.agg.meanFps();
        sum_fps += fps;
        a.worstUserFps = std::min(a.worstUserFps, fps);
        sum_mtp += u.agg.meanMtp();
        sum_comp += u.agg.fpsCompliance();
        a.bytesPerFrame += u.agg.meanBytes();
        a.shedFrames += u.agg.shed;
        a.downgradedFrames += u.agg.downgraded;
        late += u.agg.late;
        total_frames += u.agg.frames;
        waits.insert(waits.end(), u.agg.waits.begin(),
                     u.agg.waits.end());
    }
    a.horizon = horizon;
    const double n = static_cast<double>(su.users.size());
    if (su.users.empty()) {
        a.worstUserFps = 0.0;
    } else {
        a.meanFps = sum_fps / n;
        a.meanMtp = sum_mtp / n;
        a.fpsCompliance = sum_comp / n;
    }
    if (total_frames > 0)
        a.deadlineMissRate = static_cast<double>(late) /
                             static_cast<double>(total_frames);
    if (!waits.empty()) {
        std::sort(waits.begin(), waits.end());
        a.p50QueueWait = nearestRank(waits, 0.50);
        a.p99QueueWait = nearestRank(waits, 0.99);
    }

    if (horizon > 0.0) {
        result.egressUtilisation =
            su.shared->egress.busyTime() / horizon;
        result.serverUtilisation =
            su.shared->serverPool.busyTime() /
            (horizon *
             static_cast<double>(su.shared->serverPool.servers()));
    }
    if (su.fleet) {
        result.serveCounters = su.fleet->counters();
        const double slots =
            static_cast<double>(su.fleet->slotsPerShard());
        result.shardUtilisation.assign(su.fleet->shards(), 0.0);
        if (horizon > 0.0) {
            for (std::size_t s = 0; s < su.fleet->shards(); s++)
                result.shardUtilisation[s] =
                    su.fleet->shardBusyTime(s) / (horizon * slots);
            result.serverUtilisation =
                su.fleet->busyTime() /
                (horizon * slots *
                 static_cast<double>(su.fleet->shards()));
        }
    }
    return result;
}

}  // namespace qvr::collab::model
