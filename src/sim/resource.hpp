/**
 * @file
 * Analytic busy-resource models.
 *
 * Many Q-VR pipeline stages are serially occupied units (the mobile
 * GPU, a UCA instance, the video decoder, one network stream).  For
 * these, queueing behaviour reduces to "completion = max(arrival,
 * next-free) + service"; tracking that directly is faster and clearer
 * than event callbacks, and composes with the EventQueue when stages
 * genuinely interleave.
 */

#ifndef QVR_SIM_RESOURCE_HPP
#define QVR_SIM_RESOURCE_HPP

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace qvr::sim
{

/** Single-server FIFO resource with utilisation accounting. */
class BusyResource
{
  public:
    /**
     * Serve a request arriving at @p arrival needing @p service
     * seconds.  @return completion time.
     */
    Seconds serve(Seconds arrival, Seconds service);

    /** Earliest time a new request could start. */
    Seconds nextFree() const { return nextFree_; }

    /** Total busy seconds accumulated so far. */
    Seconds busyTime() const { return busy_; }

    /** Utilisation over [0, horizon]. */
    double utilisation(Seconds horizon) const;

    void reset();

  private:
    Seconds nextFree_ = 0.0;
    Seconds busy_ = 0.0;
};

/** k identical servers, least-loaded dispatch (models chiplets,
 *  parallel decode units or parallel network streams). */
class MultiServerResource
{
  public:
    explicit MultiServerResource(std::size_t servers);

    /** Serve on the earliest-free server. @return completion time. */
    Seconds serve(Seconds arrival, Seconds service);

    std::size_t servers() const { return free_.size(); }
    Seconds busyTime() const { return busy_; }

    /** Earliest time any server is free. */
    Seconds nextFree() const;

    void reset();

  private:
    std::vector<Seconds> free_;
    Seconds busy_ = 0.0;
};

}  // namespace qvr::sim

#endif  // QVR_SIM_RESOURCE_HPP
