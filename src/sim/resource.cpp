#include "sim/resource.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace qvr::sim
{

Seconds
BusyResource::serve(Seconds arrival, Seconds service)
{
    QVR_REQUIRE(service >= 0.0, "negative service time");
    const Seconds start = std::max(arrival, nextFree_);
    nextFree_ = start + service;
    busy_ += service;
    return nextFree_;
}

double
BusyResource::utilisation(Seconds horizon) const
{
    if (horizon <= 0.0)
        return 0.0;
    return std::min(1.0, busy_ / horizon);
}

void
BusyResource::reset()
{
    nextFree_ = 0.0;
    busy_ = 0.0;
}

MultiServerResource::MultiServerResource(std::size_t servers)
    : free_(servers, 0.0)
{
    QVR_REQUIRE(servers > 0, "resource needs at least one server");
}

Seconds
MultiServerResource::serve(Seconds arrival, Seconds service)
{
    QVR_REQUIRE(service >= 0.0, "negative service time");
    auto it = std::min_element(free_.begin(), free_.end());
    const Seconds start = std::max(arrival, *it);
    *it = start + service;
    busy_ += service;
    return *it;
}

Seconds
MultiServerResource::nextFree() const
{
    return *std::min_element(free_.begin(), free_.end());
}

void
MultiServerResource::reset()
{
    std::fill(free_.begin(), free_.end(), 0.0);
    busy_ = 0.0;
}

}  // namespace qvr::sim
