/**
 * @file
 * Deterministic parallel experiment runner.
 *
 * runParallel(n, fn) evaluates fn(0) … fn(n-1) on a ThreadPool and
 * returns the results in index order.  The contract is bit-exact
 * determinism: because every task writes only its own result slot and
 * each experiment cell owns its seeded Rng streams (common/rng.hpp),
 * the returned sequence is byte-identical to the serial loop
 *
 *     for (i = 0; i < n; i++) out.push_back(fn(i));
 *
 * for EVERY thread count and EVERY scheduling order.  The caller's
 * side of the contract: fn must not touch shared mutable state —
 * tests/sim/test_parallel_runner.cpp enforces this for the pipeline
 * and session runners, under ThreadSanitizer when QVR_SANITIZE=thread.
 */

#ifndef QVR_SIM_PARALLEL_HPP
#define QVR_SIM_PARALLEL_HPP

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <type_traits>
#include <vector>

#include "sim/thread_pool.hpp"

namespace qvr::sim
{

/**
 * Fan fn(0..n-1) across @p pool; results land in index order.
 *
 * fn is invoked concurrently from pool workers and must be safe to
 * call from multiple threads at once.  If any invocation throws, the
 * lowest-index exception is rethrown after every task has finished
 * (no partial results escape).
 */
template <typename Fn>
auto
runParallel(ThreadPool &pool, std::size_t n, Fn &&fn)
    -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
{
    using R = std::invoke_result_t<Fn &, std::size_t>;
    static_assert(std::is_default_constructible_v<R>,
                  "runParallel results must be default-constructible");
    std::vector<R> out(n);
    if (n == 0)
        return out;
    std::vector<std::exception_ptr> errors(n);
    for (std::size_t i = 0; i < n; i++) {
        pool.submit([&out, &errors, &fn, i] {
            try {
                out[i] = fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    pool.wait();
    for (const auto &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return out;
}

/**
 * Fan fn(0..n-1) across @p pool for side effects only (no result
 * collection).  One task per worker pulls indices from a shared
 * atomic counter, so cheap and expensive indices balance across
 * threads without per-index task overhead — the dispatch the tiled
 * pixel engine (core/pixel_engine.hpp) uses for its tile sweep.
 *
 * Determinism contract mirrors runParallel(): fn(i) must write only
 * state owned by index i (e.g. a disjoint output tile), in which case
 * the aggregate result is identical to the serial loop for every
 * worker count and every index-to-thread assignment.  If any
 * invocation throws, the lowest-index exception is rethrown after all
 * indices have finished.
 */
template <typename Fn>
void
forEachParallel(ThreadPool &pool, std::size_t n, Fn &&fn)
{
    if (n == 0)
        return;
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(n);
    const std::size_t tasks =
        std::min(std::max<std::size_t>(pool.threadCount(), 1), n);
    for (std::size_t t = 0; t < tasks; t++) {
        pool.submit([&next, &errors, &fn, n] {
            for (std::size_t i = next.fetch_add(1); i < n;
                 i = next.fetch_add(1)) {
                try {
                    fn(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            }
        });
    }
    pool.wait();
    for (const auto &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

/** Convenience overload: a one-shot pool with @p threads workers
 *  (0 = ThreadPool::defaultParallelism()). */
template <typename Fn>
auto
runParallel(std::size_t n, Fn &&fn, std::size_t threads = 0)
    -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
{
    ThreadPool pool(threads);
    return runParallel(pool, n, fn);
}

}  // namespace qvr::sim

#endif  // QVR_SIM_PARALLEL_HPP
