#include "sim/event_queue.hpp"

#include "common/log.hpp"

namespace qvr::sim
{

EventId
EventQueue::schedule(Seconds when, std::function<void()> fn, Priority prio)
{
    QVR_REQUIRE(when >= now_, "scheduling into the past: ", when,
                " < ", now_);
    QVR_REQUIRE(static_cast<bool>(fn), "scheduling empty callback");
    const EventId id = nextId_++;
    heap_.push(Record{when, prio, id, std::move(fn)});
    live_.insert(id);
    return id;
}

EventId
EventQueue::scheduleAfter(Seconds delay, std::function<void()> fn,
                          Priority prio)
{
    QVR_REQUIRE(delay >= 0.0, "negative delay: ", delay);
    return schedule(now_ + delay, std::move(fn), prio);
}

bool
EventQueue::deschedule(EventId id)
{
    // Only a live (scheduled, unfired, uncancelled) id may be
    // cancelled.  Fired and double-cancelled ids fall out here, so
    // neither can corrupt pending() or leak into cancelled_.
    if (live_.erase(id) == 0)
        return false;
    cancelled_.insert(id);
    return true;
}

void
EventQueue::popCancelled()
{
    while (!heap_.empty() && cancelled_.erase(heap_.top().id) > 0)
        heap_.pop();
}

Seconds
EventQueue::run()
{
    return runUntil(kNoDeadline);
}

Seconds
EventQueue::runUntil(Seconds limit)
{
    for (;;) {
        popCancelled();
        if (heap_.empty())
            break;
        if (heap_.top().when > limit) {
            now_ = limit;
            return now_;
        }
        // Move the record out before dispatch: the callback may
        // schedule new events and reshape the heap.
        Record rec = heap_.top();
        heap_.pop();
        live_.erase(rec.id);
        now_ = rec.when;
        dispatched_++;
        rec.fn();
    }
    return now_;
}

}  // namespace qvr::sim
