#include "sim/event_queue.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace qvr::sim
{

EventId
EventQueue::schedule(Seconds when, std::function<void()> fn, Priority prio)
{
    QVR_REQUIRE(when >= now_, "scheduling into the past: ", when,
                " < ", now_);
    QVR_REQUIRE(static_cast<bool>(fn), "scheduling empty callback");
    const EventId id = nextId_++;
    heap_.push(Record{when, prio, id, std::move(fn)});
    size_++;
    return id;
}

EventId
EventQueue::scheduleAfter(Seconds delay, std::function<void()> fn,
                          Priority prio)
{
    QVR_REQUIRE(delay >= 0.0, "negative delay: ", delay);
    return schedule(now_ + delay, std::move(fn), prio);
}

bool
EventQueue::deschedule(EventId id)
{
    if (id == 0 || id >= nextId_)
        return false;
    if (cancelled(id))
        return false;
    cancelled_.push_back(id);
    if (size_ == 0)
        return false;
    size_--;
    return true;
}

bool
EventQueue::cancelled(EventId id) const
{
    return std::find(cancelled_.begin(), cancelled_.end(), id) !=
           cancelled_.end();
}

void
EventQueue::popCancelled()
{
    while (!heap_.empty() && cancelled(heap_.top().id)) {
        const EventId id = heap_.top().id;
        cancelled_.erase(
            std::find(cancelled_.begin(), cancelled_.end(), id));
        heap_.pop();
    }
}

Seconds
EventQueue::run()
{
    return runUntil(kNoDeadline);
}

Seconds
EventQueue::runUntil(Seconds limit)
{
    for (;;) {
        popCancelled();
        if (heap_.empty())
            break;
        if (heap_.top().when > limit) {
            now_ = limit;
            return now_;
        }
        // Move the record out before dispatch: the callback may
        // schedule new events and reshape the heap.
        Record rec = heap_.top();
        heap_.pop();
        size_--;
        now_ = rec.when;
        dispatched_++;
        rec.fn();
    }
    return now_;
}

}  // namespace qvr::sim
