/**
 * @file
 * Discrete-event simulation kernel.
 *
 * Q-VR's pipeline is a set of concurrently operating units (mobile
 * GPU, UCA, LIWC, network streams, remote chiplets, sensors) whose
 * overlap determines the end-to-end latency.  Each pipeline model
 * drives an EventQueue: components schedule callbacks at absolute
 * simulated times and the kernel dispatches them in (time, priority,
 * insertion-order) order, exactly like gem5's event queue but in
 * seconds rather than ticks.
 */

#ifndef QVR_SIM_EVENT_QUEUE_HPP
#define QVR_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace qvr::sim
{

/** Dispatch priority for events scheduled at the same instant;
 *  lower value runs first. */
using Priority = std::int32_t;

constexpr Priority kDefaultPriority = 0;

/** Opaque handle used to cancel a pending event. */
using EventId = std::uint64_t;

/**
 * Time-ordered event queue.  Not thread-safe by design: one queue per
 * simulated experiment, driven from a single thread.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time; advances only inside run(). */
    Seconds now() const { return now_; }

    /**
     * Schedule @p fn at absolute time @p when (>= now()).
     * @return id usable with deschedule().
     */
    EventId schedule(Seconds when, std::function<void()> fn,
                     Priority prio = kDefaultPriority);

    /** Schedule @p fn at now() + @p delay. */
    EventId scheduleAfter(Seconds delay, std::function<void()> fn,
                          Priority prio = kDefaultPriority);

    /**
     * Cancel a pending event.  @return false if the id is unknown,
     * already cancelled, or — crucially — already fired: a fired id
     * is no longer pending, so cancelling it must not perturb the
     * pending count (this was a corruption bug; see the regression
     * tests).
     */
    bool deschedule(EventId id);

    /** Run until the queue drains. @return final simulated time. */
    Seconds run();

    /** Run until the queue drains or time would pass @p limit. */
    Seconds runUntil(Seconds limit);

    /** Pending (non-cancelled, non-fired) event count. */
    std::size_t pending() const { return live_.size(); }

    bool empty() const { return live_.empty(); }

    /** Total number of events dispatched since construction. */
    std::uint64_t dispatched() const { return dispatched_; }

  private:
    struct Record
    {
        Seconds when;
        Priority prio;
        EventId id;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Record &a, const Record &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.id > b.id;  // insertion order ties
        }
    };

    void popCancelled();

    std::priority_queue<Record, std::vector<Record>, Later> heap_;
    /** Scheduled ids that have neither fired nor been cancelled.
     *  Hash sets keep deschedule()/popCancelled() O(1) — million-
     *  event fleet sweeps cannot afford the linear scan these were
     *  before. */
    std::unordered_set<EventId> live_;
    /** Cancelled ids whose records are still parked in the heap. */
    std::unordered_set<EventId> cancelled_;
    Seconds now_ = 0.0;
    EventId nextId_ = 1;
    std::uint64_t dispatched_ = 0;
};

}  // namespace qvr::sim

#endif  // QVR_SIM_EVENT_QUEUE_HPP
