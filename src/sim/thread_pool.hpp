/**
 * @file
 * Fixed-size worker pool for fanning independent experiment cells
 * across cores.
 *
 * The pool is deliberately minimal: a FIFO task queue, N workers, and
 * a wait() barrier.  Determinism is the caller's concern — tasks must
 * not share mutable state — and is what runParallel() (parallel.hpp)
 * layers on top by binding every task to its own result slot.
 */

#ifndef QVR_SIM_THREAD_POOL_HPP
#define QVR_SIM_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qvr::sim
{

class ThreadPool
{
  public:
    /** Start @p threads workers; 0 means defaultParallelism(). */
    explicit ThreadPool(std::size_t threads = 0);

    /** Drains nothing: queued-but-unstarted tasks are dropped only
     *  after wait(); the destructor joins once the queue is empty. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t threadCount() const { return workers_.size(); }

    /** Enqueue one task; runs on some worker, FIFO dispatch. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    /**
     * Worker count when none is requested: the QVR_JOBS environment
     * variable if set to a positive integer, else the hardware
     * concurrency (at least 1).
     */
    static std::size_t defaultParallelism();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    std::size_t inFlight_ = 0;
    bool stopping_ = false;
};

}  // namespace qvr::sim

#endif  // QVR_SIM_THREAD_POOL_HPP
