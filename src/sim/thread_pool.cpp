#include "sim/thread_pool.hpp"

#include <cstdlib>

#include "common/log.hpp"

namespace qvr::sim
{

std::size_t
ThreadPool::defaultParallelism()
{
    if (const char *env = std::getenv("QVR_JOBS")) {
        char *end = nullptr;
        const unsigned long n = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && n >= 1)
            return static_cast<std::size_t>(n);
        QVR_WARN("ignoring malformed QVR_JOBS='", env, "'");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        threads = defaultParallelism();
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; i++)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        QVR_REQUIRE(!stopping_, "submit() on a stopping ThreadPool");
        queue_.push_back(std::move(task));
    }
    workAvailable_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock,
                  [this] { return queue_.empty() && inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return;  // stopping_ and nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
            inFlight_++;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            inFlight_--;
            if (queue_.empty() && inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

}  // namespace qvr::sim
