#include "remote/server.hpp"

#include "common/log.hpp"

namespace qvr::remote
{

RemoteServer::RemoteServer(const ServerConfig &cfg)
    : cfg_(cfg), chipletModel_(cfg.chiplet)
{
    QVR_REQUIRE(cfg.chiplets > 0, "server needs at least one chiplet");
    QVR_REQUIRE(cfg.loadImbalance >= 1.0, "imbalance factor < 1");
}

Seconds
RemoteServer::renderSeconds(const gpu::RenderJob &job) const
{
    // Screen-space split: each chiplet gets 1/n of the pixels and
    // (because triangles straddle tile boundaries) slightly more than
    // 1/n of the triangles; the imbalance factor covers both effects.
    const double n = static_cast<double>(cfg_.chiplets);
    gpu::RenderJob share = job;
    share.triangles = static_cast<std::uint64_t>(
        static_cast<double>(job.triangles) / n * cfg_.loadImbalance);
    share.shadedPixels = job.shadedPixels / n * cfg_.loadImbalance;
    // The command stream is broadcast, not split.
    share.batches = job.batches;

    return chipletModel_.renderSeconds(share) + cfg_.syncOverhead;
}

double
RemoteServer::triangleThroughput(double shading_cost,
                                 double pixels_per_tri) const
{
    return chipletModel_.triangleThroughput(shading_cost,
                                            pixels_per_tri) *
           static_cast<double>(cfg_.chiplets) / cfg_.loadImbalance;
}

}  // namespace qvr::remote
