#include "remote/server.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace qvr::remote
{

void
ServerConfig::validate() const
{
    QVR_REQUIRE(chiplets > 0, "server needs at least one chiplet");
    QVR_REQUIRE(loadImbalance >= 1.0, "imbalance factor < 1");
    QVR_REQUIRE(syncOverhead >= 0.0, "negative sync overhead");
}

RemoteServer::RemoteServer(const ServerConfig &cfg)
    : cfg_(cfg), chipletModel_(cfg.chiplet)
{
    cfg.validate();
}

Seconds
RemoteServer::renderWith(const gpu::RenderJob &job, double chiplets,
                         double straggler) const
{
    // Screen-space split: each chiplet gets 1/n of the pixels and
    // (because triangles straddle tile boundaries) slightly more than
    // 1/n of the triangles; the imbalance factor covers both effects.
    const double n = chiplets;
    gpu::RenderJob share = job;
    share.triangles = static_cast<std::uint64_t>(
        static_cast<double>(job.triangles) / n * cfg_.loadImbalance);
    share.shadedPixels = job.shadedPixels / n * cfg_.loadImbalance;
    // The command stream is broadcast, not split.
    share.batches = job.batches;

    return chipletModel_.renderSeconds(share) * straggler +
           cfg_.syncOverhead;
}

Seconds
RemoteServer::renderSeconds(const gpu::RenderJob &job) const
{
    return renderWith(job, static_cast<double>(cfg_.chiplets), 1.0);
}

Seconds
RemoteServer::renderPeriphery(
    gpu::RenderJob job, const foveation::CompressedFrameLayout &layout,
    Seconds when) const
{
    // Both eyes shade the same layout geometry (per-eye gaze deltas
    // are below the macroblock granularity the buffers are aligned
    // to), so the stereo pixel load is twice one layout.
    job.shadedPixels = layout.peripheryPixels() * 2.0;
    return renderSeconds(job, when);
}

Seconds
RemoteServer::renderSeconds(const gpu::RenderJob &job,
                            Seconds when) const
{
    const fault::ServerState state = faults_.serverStateAt(when);
    if (state.stragglerFactor == 1.0 && state.failedChiplets == 0)
        return renderSeconds(job);
    // At least one chiplet keeps rendering even in the worst window.
    const std::uint32_t alive = cfg_.chiplets > state.failedChiplets
                                    ? cfg_.chiplets -
                                          state.failedChiplets
                                    : 1;
    return renderWith(job, static_cast<double>(alive),
                      state.stragglerFactor);
}

void
RemoteServer::setFaultSchedule(const fault::FaultSchedule &schedule)
{
    faults_ = schedule;
}

double
RemoteServer::triangleThroughput(double shading_cost,
                                 double pixels_per_tri) const
{
    return chipletModel_.triangleThroughput(shading_cost,
                                            pixels_per_tri) *
           static_cast<double>(cfg_.chiplets) / cfg_.loadImbalance;
}

}  // namespace qvr::remote
