/**
 * @file
 * Remote rendering server model: a chiplet-based multi-GPU (MCM)
 * system in the style the paper references (OO-VR, ISCA'19) — up to
 * 8 GPU modules doing screen-space parallel rendering with NUMA-aware
 * distribution.  Q-VR's server renders the periphery layers; the
 * remote-only baseline renders whole frames here.
 */

#ifndef QVR_REMOTE_SERVER_HPP
#define QVR_REMOTE_SERVER_HPP

#include "common/types.hpp"
#include "fault/schedule.hpp"
#include "foveation/compressed_layout.hpp"
#include "gpu/timing.hpp"

namespace qvr::remote
{

/** Multi-chiplet server configuration (Table 2 "Remote GPU"). */
struct ServerConfig
{
    std::uint32_t chiplets = 8;
    /** Each chiplet is a desktop-class module: wider and faster than
     *  the mobile part. */
    gpu::GpuConfig chiplet = desktopChiplet();
    /** Screen-space load imbalance: slowest chiplet carries this
     *  multiple of the mean share. */
    double loadImbalance = 1.10;
    /** Inter-chiplet synchronisation/NUMA overhead per frame. */
    Seconds syncOverhead = 150e-6;

    /** Panic on impossible values (zero chiplets, imbalance < 1,
     *  negative sync overhead). */
    void validate() const;

    static gpu::GpuConfig
    desktopChiplet()
    {
        gpu::GpuConfig c;
        c.coreFrequency = fromMHz(1000.0);
        c.numCores = 16;
        c.simd4PerCore = 8;
        c.l2KiB = 1024;
        c.l2BytesPerCycle = 64;
        return c;
    }
};

/**
 * Render-time model for the server.  Work is split across chiplets in
 * screen space; the frame completes when the most-loaded chiplet
 * finishes.
 */
class RemoteServer
{
  public:
    explicit RemoteServer(const ServerConfig &cfg = ServerConfig{});

    const ServerConfig &config() const { return cfg_; }

    /** Wall-clock time to render @p job across the chiplets. */
    Seconds renderSeconds(const gpu::RenderJob &job) const;

    /**
     * Wall-clock render time for a job starting at sim time @p when,
     * consulting the fault schedule: an active straggler window slows
     * the critical-path chiplet by its factor, and failed chiplets
     * shrink the screen-space split (their share is redistributed).
     * With no schedule (or outside every window) this matches
     * renderSeconds(job) exactly.
     */
    Seconds renderSeconds(const gpu::RenderJob &job, Seconds when) const;

    /** Attach a fault schedule (copied); only its server-fault
     *  windows are consulted here. */
    void setFaultSchedule(const fault::FaultSchedule &schedule);

    /**
     * Render one stereo frame's periphery under the encoder-aligned
     * compressed layout: the server shades exactly the transported
     * buffers (cropped middle window + reduced-resolution outer
     * frame, both eyes), nothing more — @p job supplies the geometry
     * load and shading cost, its shadedPixels is replaced by the
     * layout's.  This is where the layout's pixel saving becomes a
     * server-time saving.
     */
    Seconds renderPeriphery(
        gpu::RenderJob job,
        const foveation::CompressedFrameLayout &layout,
        Seconds when) const;

    /** Aggregate triangle throughput (for capacity sanity checks). */
    double triangleThroughput(double shading_cost,
                              double pixels_per_tri) const;

  private:
    Seconds renderWith(const gpu::RenderJob &job, double chiplets,
                       double straggler) const;

    ServerConfig cfg_;
    gpu::MobileGpuModel chipletModel_;
    fault::FaultSchedule faults_;
};

}  // namespace qvr::remote

#endif  // QVR_REMOTE_SERVER_HPP
