/**
 * @file
 * Remote rendering server model: a chiplet-based multi-GPU (MCM)
 * system in the style the paper references (OO-VR, ISCA'19) — up to
 * 8 GPU modules doing screen-space parallel rendering with NUMA-aware
 * distribution.  Q-VR's server renders the periphery layers; the
 * remote-only baseline renders whole frames here.
 */

#ifndef QVR_REMOTE_SERVER_HPP
#define QVR_REMOTE_SERVER_HPP

#include "common/types.hpp"
#include "gpu/timing.hpp"

namespace qvr::remote
{

/** Multi-chiplet server configuration (Table 2 "Remote GPU"). */
struct ServerConfig
{
    std::uint32_t chiplets = 8;
    /** Each chiplet is a desktop-class module: wider and faster than
     *  the mobile part. */
    gpu::GpuConfig chiplet = desktopChiplet();
    /** Screen-space load imbalance: slowest chiplet carries this
     *  multiple of the mean share. */
    double loadImbalance = 1.10;
    /** Inter-chiplet synchronisation/NUMA overhead per frame. */
    Seconds syncOverhead = 150e-6;

    static gpu::GpuConfig
    desktopChiplet()
    {
        gpu::GpuConfig c;
        c.coreFrequency = fromMHz(1000.0);
        c.numCores = 16;
        c.simd4PerCore = 8;
        c.l2KiB = 1024;
        c.l2BytesPerCycle = 64;
        return c;
    }
};

/**
 * Render-time model for the server.  Work is split across chiplets in
 * screen space; the frame completes when the most-loaded chiplet
 * finishes.
 */
class RemoteServer
{
  public:
    explicit RemoteServer(const ServerConfig &cfg = ServerConfig{});

    const ServerConfig &config() const { return cfg_; }

    /** Wall-clock time to render @p job across the chiplets. */
    Seconds renderSeconds(const gpu::RenderJob &job) const;

    /** Aggregate triangle throughput (for capacity sanity checks). */
    double triangleThroughput(double shading_cost,
                              double pixels_per_tri) const;

  private:
    ServerConfig cfg_;
    gpu::MobileGpuModel chipletModel_;
};

}  // namespace qvr::remote

#endif  // QVR_REMOTE_SERVER_HPP
