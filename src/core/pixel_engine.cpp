#include "core/pixel_engine.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/log.hpp"
#include "sim/parallel.hpp"

namespace qvr::core
{

namespace
{

/** Same validation as the scalar reference paths in uca.cpp. */
void
requireValidInputs(const UcaFrameInputs &in)
{
    QVR_REQUIRE(in.fovea && in.middle && in.outer,
                "UCA inputs must provide all three layers");
    QVR_REQUIRE(in.sMiddle >= 1.0 && in.sOuter >= 1.0,
                "subsample factors must be >= 1");
    QVR_REQUIRE(in.partition.middleRadius >= in.partition.foveaRadius,
                "e2 must be >= e1");
}

/**
 * One output row of single-layer bilinear sampling with the
 * row-invariant work hoisted: the vertical weight, the (clamped)
 * source row pointers and — when the whole span's 2x2 footprints are
 * interior — the horizontal edge clamps.  The per-pixel arithmetic
 * is operation-for-operation Image::sampleBilinear evaluated at
 * ((x + 0.5 - shift.x) / s, (y + 0.5 - shift.y) / s), so the sampled
 * values are bit-identical to the scalar reference (division by
 * s == 1.0 is exact, matching the undivided fovea-layer call).
 *
 * @p write is invoked as write(x, sample) for x in [x0, x1).
 */
template <typename Write>
inline void
forRowBilinear(const Image &img, double s, Vec2 shift, std::int32_t y,
               std::int32_t x0, std::int32_t x1, Write &&write)
{
    const double sy = (y + 0.5 - shift.y) / s;
    const double fy = sy - 0.5;
    const auto y0 = static_cast<std::int32_t>(std::floor(fy));
    const float wy = static_cast<float>(fy - y0);
    const std::int32_t w = img.width();
    const std::int32_t h = img.height();
    const Rgb *row0 = img.rowSpan(clamp(y0, 0, h - 1));
    const Rgb *row1 = img.rowSpan(clamp(y0 + 1, 0, h - 1));

    // fx is increasing in x (s >= 1), and floor is monotone, so the
    // first and last pixel bound every footprint in the span.
    const double fx_first = (x0 + 0.5 - shift.x) / s - 0.5;
    const double fx_last = ((x1 - 1) + 0.5 - shift.x) / s - 0.5;
    const auto ix_first =
        static_cast<std::int32_t>(std::floor(fx_first));
    const auto ix_last =
        static_cast<std::int32_t>(std::floor(fx_last));

    if (ix_first >= 0 && ix_last + 1 <= w - 1) {
        for (std::int32_t x = x0; x < x1; x++) {
            const double fx = (x + 0.5 - shift.x) / s - 0.5;
            const auto xi =
                static_cast<std::int32_t>(std::floor(fx));
            const float wx = static_cast<float>(fx - xi);
            const Rgb &c00 = row0[xi];
            const Rgb &c10 = row0[xi + 1];
            const Rgb &c01 = row1[xi];
            const Rgb &c11 = row1[xi + 1];
            const Rgb top = c00 * (1.0f - wx) + c10 * wx;
            const Rgb bot = c01 * (1.0f - wx) + c11 * wx;
            write(x, top * (1.0f - wy) + bot * wy);
        }
    } else {
        for (std::int32_t x = x0; x < x1; x++) {
            const double fx = (x + 0.5 - shift.x) / s - 0.5;
            const auto xi =
                static_cast<std::int32_t>(std::floor(fx));
            const float wx = static_cast<float>(fx - xi);
            const std::int32_t xa = clamp(xi, 0, w - 1);
            const std::int32_t xb = clamp(xi + 1, 0, w - 1);
            const Rgb &c00 = row0[xa];
            const Rgb &c10 = row0[xb];
            const Rgb &c01 = row1[xa];
            const Rgb &c11 = row1[xb];
            const Rgb top = c00 * (1.0f - wx) + c10 * wx;
            const Rgb bot = c01 * (1.0f - wx) + c11 * wx;
            write(x, top * (1.0f - wy) + bot * wy);
        }
    }
}

/** Single-layer fast-path tile: the reference inner loop with the
 *  one-hot weights substituted (add-to-zero and multiply-by-1.0f
 *  kept, so the written bits match the blend path's). */
void
blitSingleLayerTile(Image &out, const Image &layer, double s,
                    Vec2 shift, const RectI &tile)
{
    for (std::int32_t y = tile.y0; y < tile.y1; y++) {
        Rgb *row = out.rowSpan(y);
        forRowBilinear(layer, s, shift, y, tile.x0, tile.x1,
                       [row](std::int32_t x, const Rgb &smp) {
                           Rgb c;
                           c = c + smp * 1.0f;
                           row[x] = c;
                       });
    }
}

}  // namespace

TileCoverage
classifyCoverage(const PixelPartition &p, double sx0, double sy0,
                 double sx1, double sy1)
{
    // Effective band width, exactly as layerWeights() computes it.
    const double band =
        std::min(p.blendBand,
                 std::max(1.0, p.middleRadius - p.foveaRadius));
    if (!(band >= 0.0))
        return TileCoverage::Blend;  // degenerate/NaN: safe path

    // Nearest and farthest point of the rectangle from the centre
    // give conservative bounds on every pixel's sample radius.
    const double nx = clamp(p.centerX, sx0, sx1);
    const double ny = clamp(p.centerY, sy0, sy1);
    const double rmin = std::hypot(nx - p.centerX, ny - p.centerY);
    const double fx = (p.centerX - sx0 > sx1 - p.centerX) ? sx0 : sx1;
    const double fy = (p.centerY - sy0 > sy1 - p.centerY) ? sy0 : sy1;
    const double rmax = std::hypot(fx - p.centerX, fy - p.centerY);

    // Guard band against std::hypot rounding (the per-pixel radius
    // and these bounds are each within an ulp of exact): a tile gets
    // a fast path only when it clears the threshold by more than the
    // combined rounding; borderline tiles blend, which is always
    // bit-correct, merely slower.
    const double eps = 1e-9 + 1e-12 * rmax;

    const double lo1 = p.foveaRadius - band / 2.0;
    const double hi1 = p.foveaRadius + band / 2.0;
    const double lo2 = p.middleRadius - band / 2.0;
    const double hi2 = p.middleRadius + band / 2.0;

    // smooth(r, lo, hi) is exactly 0 for r <= lo and exactly 1 for
    // r >= hi, so these regions have exactly one-hot weights.
    if (rmax + eps <= lo1)
        return TileCoverage::Fovea;
    if (rmin - eps >= hi2)
        return TileCoverage::Outer;
    if (rmin - eps >= hi1 && rmax + eps <= lo2)
        return TileCoverage::Middle;
    return TileCoverage::Blend;
}

PixelEngine::PixelEngine(std::size_t threads)
    : threads_(threads == 0 ? sim::ThreadPool::defaultParallelism()
                            : threads)
{
    if (threads_ > 1)
        pool_ = std::make_unique<sim::ThreadPool>(threads_);
}

PixelEngine::~PixelEngine() = default;

template <typename Fn>
void
PixelEngine::forEachTile(std::int32_t width, std::int32_t height,
                         Fn &&fn)
{
    const std::int32_t tiles_x =
        (width + kPixelTileSize - 1) / kPixelTileSize;
    const std::int32_t tiles_y =
        (height + kPixelTileSize - 1) / kPixelTileSize;
    const auto n =
        static_cast<std::size_t>(tiles_x) * tiles_y;

    // Stable tile enumeration: tile t is the t-th tile in row-major
    // order, whichever worker runs it.  Tiles write disjoint output
    // rows spans, so the frame is identical for every assignment.
    auto run_tile = [&](std::size_t t) {
        const std::int32_t x0 =
            static_cast<std::int32_t>(t % tiles_x) * kPixelTileSize;
        const std::int32_t y0 =
            static_cast<std::int32_t>(t / tiles_x) * kPixelTileSize;
        const RectI tile{x0, y0,
                         std::min(x0 + kPixelTileSize, width),
                         std::min(y0 + kPixelTileSize, height)};
        fn(t, tile);
    };

    if (!pool_) {
        for (std::size_t t = 0; t < n; t++)
            run_tile(t);
        return;
    }
    sim::forEachParallel(*pool_, n, run_tile);
}

Image
PixelEngine::composite(const UcaFrameInputs &in, Vec2 shift)
{
    const std::int32_t w = in.fovea->width();
    const std::int32_t h = in.fovea->height();
    Image out(w, h);

    const std::int32_t tiles_x =
        (w + kPixelTileSize - 1) / kPixelTileSize;
    const std::int32_t tiles_y =
        (h + kPixelTileSize - 1) / kPixelTileSize;
    std::vector<TileCoverage> classes(
        static_cast<std::size_t>(tiles_x) * tiles_y,
        TileCoverage::Blend);

    const PixelPartition &p = in.partition;
    const double s_mid = in.sMiddle;
    const double s_out = in.sOuter;

    forEachTile(w, h, [&](std::size_t t, const RectI &tile) {
        // Closed rectangle of the tile's pixel-centre sample
        // coordinates (already reprojected by the shift).
        const double sx0 = tile.x0 + 0.5 - shift.x;
        const double sy0 = tile.y0 + 0.5 - shift.y;
        const double sx1 = (tile.x1 - 1) + 0.5 - shift.x;
        const double sy1 = (tile.y1 - 1) + 0.5 - shift.y;
        const TileCoverage cls =
            classifyCoverage(p, sx0, sy0, sx1, sy1);
        classes[t] = cls;

        // Fast paths do the SAME arithmetic as the blend path with
        // the one-hot weights substituted: terms with weight exactly
        // 0.0 are skipped (the reference skips them too, via the
        // `> 0.0` guards) and the surviving weight is exactly 1.0f.
        // No reassociation, so the output bits match the reference.
        switch (cls) {
        case TileCoverage::Fovea:
            blitSingleLayerTile(out, *in.fovea, 1.0, shift, tile);
            break;
        case TileCoverage::Middle:
            blitSingleLayerTile(out, *in.middle, s_mid, shift, tile);
            break;
        case TileCoverage::Outer:
            blitSingleLayerTile(out, *in.outer, s_out, shift, tile);
            break;
        case TileCoverage::Blend:
            for (std::int32_t y = tile.y0; y < tile.y1; y++) {
                Rgb *row = out.rowSpan(y);
                for (std::int32_t x = tile.x0; x < tile.x1; x++) {
                    const double sx = x + 0.5 - shift.x;
                    const double sy = y + 0.5 - shift.y;
                    const double r = std::hypot(sx - p.centerX,
                                                sy - p.centerY);
                    const LayerWeights lw = layerWeights(p, r);
                    Rgb c;
                    if (lw.fovea > 0.0) {
                        c = c + in.fovea->sampleBilinear(sx, sy) *
                                    static_cast<float>(lw.fovea);
                    }
                    if (lw.middle > 0.0) {
                        c = c + in.middle->sampleBilinear(
                                    sx / s_mid, sy / s_mid) *
                                    static_cast<float>(lw.middle);
                    }
                    if (lw.outer > 0.0) {
                        c = c + in.outer->sampleBilinear(
                                    sx / s_out, sy / s_out) *
                                    static_cast<float>(lw.outer);
                    }
                    row[x] = c;
                }
            }
            break;
        }
    });

    stats_ = PixelEngineStats{};
    stats_.tiles = static_cast<std::uint32_t>(classes.size());
    for (TileCoverage cls : classes) {
        switch (cls) {
        case TileCoverage::Fovea:
            stats_.foveaTiles++;
            break;
        case TileCoverage::Middle:
            stats_.middleTiles++;
            break;
        case TileCoverage::Outer:
            stats_.outerTiles++;
            break;
        case TileCoverage::Blend:
            stats_.blendTiles++;
            break;
        }
    }
    return out;
}

Image
PixelEngine::ucaUnified(const UcaFrameInputs &in)
{
    requireValidInputs(in);
    return composite(in, in.atwShift);
}

Image
PixelEngine::sequentialCompositeAtw(const UcaFrameInputs &in)
{
    requireValidInputs(in);
    // Pass 1 (Eq. 3-left): composition at native resolution — the
    // unshifted sample grid, so `x + 0.5 - 0.0` reproduces the
    // reference's `x + 0.5` bit-for-bit.
    const Image composed = composite(in, Vec2{0.0, 0.0});
    // Pass 2 (Eq. 3-right): ATW resample of the composed frame.
    return resampleShift(composed, in.atwShift);
}

Image
PixelEngine::resampleShift(const Image &src, Vec2 shift)
{
    const std::int32_t w = src.width();
    const std::int32_t h = src.height();
    Image out(w, h);
    forEachTile(w, h, [&](std::size_t, const RectI &tile) {
        for (std::int32_t y = tile.y0; y < tile.y1; y++) {
            Rgb *row = out.rowSpan(y);
            forRowBilinear(src, 1.0, shift, y, tile.x0, tile.x1,
                           [row](std::int32_t x, const Rgb &smp) {
                               row[x] = smp;
                           });
        }
    });
    return out;
}

}  // namespace qvr::core
