#include "core/pixel_engine.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/log.hpp"
#include "core/simd/kernels.hpp"
#include "sim/parallel.hpp"

namespace qvr::core
{

namespace
{

/** Same validation as the scalar reference paths in uca.cpp. */
void
requireValidInputs(const UcaFrameInputs &in)
{
    QVR_REQUIRE(in.fovea && in.middle && in.outer,
                "UCA inputs must provide all three layers");
    QVR_REQUIRE(in.sMiddle >= 1.0 && in.sOuter >= 1.0,
                "subsample factors must be >= 1");
    QVR_REQUIRE(in.partition.middleRadius >= in.partition.foveaRadius,
                "e2 must be >= e1");
}

/** Borrowed kernel view of an image's pixel raster. */
simd::LayerRaster
rasterOf(const Image &img)
{
    return simd::LayerRaster{
        reinterpret_cast<const float *>(img.rowSpan(0)), img.width(),
        img.height()};
}

simd::LayerMap
mapOf(const foveation::LayerTransform &t)
{
    return simd::LayerMap{t.originX, t.originY, t.scaleX, t.scaleY};
}

/**
 * Single-layer fast-path tile: the generalized, tile-hoisted
 * bilinear kernel on the selected backend, in the compose-one form
 * (0 + sample * 1.0f) so the written bits match the blend path's
 * one-hot arithmetic.  With a uniform map this is exactly the PR-2
 * fast path; every backend is bit-exact against the scalar
 * reference.
 */
void
blitSingleLayerTile(simd::Backend backend, float *outBase,
                    std::int32_t outStride,
                    const simd::LayerRaster &src,
                    const simd::LayerMap &map, Vec2 shift,
                    const RectI &tile)
{
    simd::BilinearTileArgs ba;
    ba.src = src;
    ba.map = map;
    ba.shiftX = shift.x;
    ba.shiftY = shift.y;
    ba.span = simd::TileSpan{tile.x0, tile.y0, tile.x1, tile.y1};
    ba.outBase = outBase;
    ba.outStride = outStride;
    ba.composeOne = true;
    simd::bilinearTile(backend, ba);
}

}  // namespace

TileCoverage
classifyCoverage(const PixelPartition &p, double sx0, double sy0,
                 double sx1, double sy1)
{
    // Effective band width, exactly as layerWeights() computes it.
    const double band =
        std::min(p.blendBand,
                 std::max(1.0, p.middleRadius - p.foveaRadius));
    if (!(band >= 0.0))
        return TileCoverage::Blend;  // degenerate/NaN: safe path

    // Nearest and farthest point of the rectangle from the centre
    // give conservative bounds on every pixel's sample radius.
    const double nx = clamp(p.centerX, sx0, sx1);
    const double ny = clamp(p.centerY, sy0, sy1);
    const double rmin = std::hypot(nx - p.centerX, ny - p.centerY);
    const double fx = (p.centerX - sx0 > sx1 - p.centerX) ? sx0 : sx1;
    const double fy = (p.centerY - sy0 > sy1 - p.centerY) ? sy0 : sy1;
    const double rmax = std::hypot(fx - p.centerX, fy - p.centerY);

    // Guard band against std::hypot rounding (the per-pixel radius
    // and these bounds are each within an ulp of exact): a tile gets
    // a fast path only when it clears the threshold by more than the
    // combined rounding; borderline tiles blend, which is always
    // bit-correct, merely slower.
    const double eps = 1e-9 + 1e-12 * rmax;

    const double lo1 = p.foveaRadius - band / 2.0;
    const double hi1 = p.foveaRadius + band / 2.0;
    const double lo2 = p.middleRadius - band / 2.0;
    const double hi2 = p.middleRadius + band / 2.0;

    // smooth(r, lo, hi) is exactly 0 for r <= lo and exactly 1 for
    // r >= hi, so these regions have exactly one-hot weights.
    if (rmax + eps <= lo1)
        return TileCoverage::Fovea;
    if (rmin - eps >= hi2)
        return TileCoverage::Outer;
    if (rmin - eps >= hi1 && rmax + eps <= lo2)
        return TileCoverage::Middle;
    return TileCoverage::Blend;
}

PixelEngine::PixelEngine(std::size_t threads)
    : PixelEngine(threads, simd::dispatch())
{
}

PixelEngine::PixelEngine(std::size_t threads, simd::Backend backend)
    : threads_(threads == 0 ? sim::ThreadPool::defaultParallelism()
                            : threads),
      backend_(backend)
{
    QVR_REQUIRE(simd::backendSupported(backend),
                "pixel engine asked for an unsupported SIMD backend");
    if (threads_ > 1)
        pool_ = std::make_unique<sim::ThreadPool>(threads_);
}

PixelEngine::~PixelEngine() = default;

template <typename Fn>
void
PixelEngine::forEachTile(std::int32_t width, std::int32_t height,
                         Fn &&fn)
{
    const std::int32_t tiles_x =
        (width + kPixelTileSize - 1) / kPixelTileSize;
    const std::int32_t tiles_y =
        (height + kPixelTileSize - 1) / kPixelTileSize;
    const auto n =
        static_cast<std::size_t>(tiles_x) * tiles_y;

    // Stable tile enumeration: tile t is the t-th tile in row-major
    // order, whichever worker runs it.  Tiles write disjoint output
    // rows spans, so the frame is identical for every assignment.
    auto run_tile = [&](std::size_t t) {
        const std::int32_t x0 =
            static_cast<std::int32_t>(t % tiles_x) * kPixelTileSize;
        const std::int32_t y0 =
            static_cast<std::int32_t>(t / tiles_x) * kPixelTileSize;
        const RectI tile{x0, y0,
                         std::min(x0 + kPixelTileSize, width),
                         std::min(y0 + kPixelTileSize, height)};
        fn(t, tile);
    };

    if (!pool_) {
        for (std::size_t t = 0; t < n; t++)
            run_tile(t);
        return;
    }
    sim::forEachParallel(*pool_, n, run_tile);
}

Image
PixelEngine::compositeLayers(const Image &fovea, const Image &middle,
                             const Image &outer,
                             const foveation::LayerTransform &middleMap,
                             const foveation::LayerTransform &outerMap,
                             const PixelPartition &p, Vec2 shift,
                             std::int32_t w, std::int32_t h)
{
    Image out(w, h);

    const std::int32_t tiles_x =
        (w + kPixelTileSize - 1) / kPixelTileSize;
    const std::int32_t tiles_y =
        (h + kPixelTileSize - 1) / kPixelTileSize;
    std::vector<TileCoverage> classes(
        static_cast<std::size_t>(tiles_x) * tiles_y,
        TileCoverage::Blend);

    const simd::LayerRaster foveaR = rasterOf(fovea);
    const simd::LayerRaster middleR = rasterOf(middle);
    const simd::LayerRaster outerR = rasterOf(outer);
    const simd::LayerMap identity = mapOf(foveation::LayerTransform{});
    const simd::LayerMap middleM = mapOf(middleMap);
    const simd::LayerMap outerM = mapOf(outerMap);
    const simd::Backend backend = backend_;
    float *const outBase = reinterpret_cast<float *>(out.rowSpan(0));

    // Dispatch one classified rectangle.  Fast paths do the SAME
    // arithmetic as the blend path with the one-hot weights
    // substituted: terms with weight exactly 0.0 are skipped (the
    // reference skips them too, via the `> 0.0` guards) and the
    // surviving weight is exactly 1.0f.  No reassociation, so the
    // output bits match the reference.
    auto runRect = [&](TileCoverage cls, const RectI &rect) {
        switch (cls) {
        case TileCoverage::Fovea:
            blitSingleLayerTile(backend, outBase, w, foveaR,
                                identity, shift, rect);
            break;
        case TileCoverage::Middle:
            blitSingleLayerTile(backend, outBase, w, middleR,
                                middleM, shift, rect);
            break;
        case TileCoverage::Outer:
            blitSingleLayerTile(backend, outBase, w, outerR,
                                outerM, shift, rect);
            break;
        case TileCoverage::Blend: {
            simd::BlendTileArgs ba;
            ba.fovea = foveaR;
            ba.middle = middleR;
            ba.outer = outerR;
            ba.foveaMap = identity;
            ba.middleMap = middleM;
            ba.outerMap = outerM;
            ba.geom =
                simd::BlendGeometry{p.centerX, p.centerY,
                                    p.foveaRadius, p.middleRadius,
                                    p.blendBand};
            ba.shiftX = shift.x;
            ba.shiftY = shift.y;
            ba.span =
                simd::TileSpan{rect.x0, rect.y0, rect.x1, rect.y1};
            ba.outBase = outBase;
            ba.outStride = w;
            simd::blendTile(backend, ba);
            break;
        }
        }
    };

    forEachTile(w, h, [&](std::size_t t, const RectI &tile) {
        // Closed rectangle of the tile's pixel-centre sample
        // coordinates (already reprojected by the shift).
        const double sx0 = tile.x0 + 0.5 - shift.x;
        const double sy0 = tile.y0 + 0.5 - shift.y;
        const double sx1 = (tile.x1 - 1) + 0.5 - shift.x;
        const double sy1 = (tile.y1 - 1) + 0.5 - shift.y;
        const TileCoverage cls =
            classifyCoverage(p, sx0, sy0, sx1, sy1);
        classes[t] = cls;

        if (cls != TileCoverage::Blend) {
            runRect(cls, tile);
            return;
        }

        // A tile that straddles a band edge is mostly NOT in the
        // band: the annulus crosses only a few of its rows.  Re-run
        // the (conservative, hence bit-exact) classifier on each
        // row's 1-px-tall rectangle and give contiguous single-layer
        // row runs the bilinear fast path; only rows the band
        // actually touches pay for weights.  Tile-level stats keep
        // the Blend label — the census is about tiles, not rows.
        auto rowClass = [&](std::int32_t y) {
            const double sy = y + 0.5 - shift.y;
            return classifyCoverage(p, sx0, sy, sx1, sy);
        };
        std::int32_t y = tile.y0;
        TileCoverage runCls = rowClass(y);
        std::int32_t runStart = y;
        for (y++; y < tile.y1; y++) {
            const TileCoverage rc = rowClass(y);
            if (rc == runCls)
                continue;
            runRect(runCls,
                    RectI{tile.x0, runStart, tile.x1, y});
            runCls = rc;
            runStart = y;
        }
        runRect(runCls, RectI{tile.x0, runStart, tile.x1, tile.y1});
    });

    stats_ = PixelEngineStats{};
    stats_.tiles = static_cast<std::uint32_t>(classes.size());
    for (TileCoverage cls : classes) {
        switch (cls) {
        case TileCoverage::Fovea:
            stats_.foveaTiles++;
            break;
        case TileCoverage::Middle:
            stats_.middleTiles++;
            break;
        case TileCoverage::Outer:
            stats_.outerTiles++;
            break;
        case TileCoverage::Blend:
            stats_.blendTiles++;
            break;
        }
    }
    return out;
}

Image
PixelEngine::composite(const UcaFrameInputs &in, Vec2 shift)
{
    return compositeLayers(
        *in.fovea, *in.middle, *in.outer,
        foveation::LayerTransform::uniform(in.sMiddle),
        foveation::LayerTransform::uniform(in.sOuter), in.partition,
        shift, in.fovea->width(), in.fovea->height());
}

Image
PixelEngine::ucaUnified(const UcaFrameInputs &in)
{
    requireValidInputs(in);
    return composite(in, in.atwShift);
}

Image
PixelEngine::ucaUnifiedCompressed(const CompressedUcaInputs &in)
{
    QVR_REQUIRE(in.fovea && in.middle && in.outer,
                "UCA inputs must provide all three layers");
    QVR_REQUIRE(in.middleMap.scaleX > 0.0 &&
                    in.middleMap.scaleY > 0.0 &&
                    in.outerMap.scaleX > 0.0 &&
                    in.outerMap.scaleY > 0.0,
                "layer scales must be positive");
    QVR_REQUIRE(in.partition.middleRadius >= in.partition.foveaRadius,
                "e2 must be >= e1");
    QVR_REQUIRE(in.width > 0 && in.height > 0,
                "output frame must be non-empty");
    return compositeLayers(*in.fovea, *in.middle, *in.outer,
                           in.middleMap, in.outerMap, in.partition,
                           in.atwShift, in.width, in.height);
}

Image
PixelEngine::sequentialCompositeAtw(const UcaFrameInputs &in)
{
    requireValidInputs(in);
    // Pass 1 (Eq. 3-left): composition at native resolution — the
    // unshifted sample grid, so `x + 0.5 - 0.0` reproduces the
    // reference's `x + 0.5` bit-for-bit.
    const Image composed = composite(in, Vec2{0.0, 0.0});
    // Pass 2 (Eq. 3-right): ATW resample of the composed frame.
    return resampleShift(composed, in.atwShift);
}

Image
PixelEngine::resampleShift(const Image &src, Vec2 shift)
{
    const std::int32_t w = src.width();
    const std::int32_t h = src.height();
    Image out(w, h);
    const simd::LayerRaster srcR = rasterOf(src);
    const simd::Backend backend = backend_;
    float *const outBase = reinterpret_cast<float *>(out.rowSpan(0));
    forEachTile(w, h, [&](std::size_t, const RectI &tile) {
        simd::BilinearTileArgs ra;
        ra.src = srcR;
        ra.map = simd::LayerMap{};
        ra.shiftX = shift.x;
        ra.shiftY = shift.y;
        ra.span = simd::TileSpan{tile.x0, tile.y0, tile.x1, tile.y1};
        ra.outBase = outBase;
        ra.outStride = w;
        ra.composeOne = false;
        simd::bilinearTile(backend, ra);
    });
    return out;
}

}  // namespace qvr::core
