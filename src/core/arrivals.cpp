#include "core/arrivals.hpp"

#include <cmath>

#include "common/log.hpp"

namespace qvr::core
{

namespace
{

constexpr std::size_t kDwellLogCap = 65536;

/** splitmix64 finaliser: derives per-user seeds from (seed, id). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace

const char *
arrivalKindName(ArrivalKind k)
{
    switch (k) {
    case ArrivalKind::Poisson:
        return "poisson";
    case ArrivalKind::Mmpp:
        return "mmpp";
    }
    QVR_PANIC("unknown arrival kind");
}

void
ArrivalConfig::validate() const
{
    if (kind == ArrivalKind::Poisson) {
        QVR_REQUIRE(rate > 0.0, "arrival rate must be positive");
    } else {
        QVR_REQUIRE(states.size() >= 2,
                    "MMPP needs at least two states");
        for (const MmppState &s : states) {
            QVR_REQUIRE(s.rate > 0.0,
                        "MMPP state rate must be positive");
            QVR_REQUIRE(s.meanDwell > 0.0,
                        "MMPP state dwell must be positive");
        }
    }
    QVR_REQUIRE(diurnalAmplitude >= 0.0 && diurnalAmplitude < 1.0,
                "diurnal amplitude outside [0, 1)");
    QVR_REQUIRE(diurnalAmplitude == 0.0 || diurnalPeriod > 0.0,
                "diurnal period must be positive");
    QVR_REQUIRE(minFrames >= 1, "sessions need at least one frame");
    QVR_REQUIRE(maxFrames >= minFrames,
                "max session frames below min");
    QVR_REQUIRE(roamRate >= 0.0, "roam rate must be nonnegative");
    for (const ArrivalMixEntry &m : mix)
        QVR_REQUIRE(m.weight > 0.0,
                    "mix weight must be positive for ", m.benchmark);
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig &cfg)
    : cfg_(cfg), chainRng_(cfg.seed, 0xa441), arrivalRng_(cfg.seed,
      0xa442), userRng_(cfg.seed, 0xa443)
{
    cfg.validate();
    if (cfg_.kind == ArrivalKind::Mmpp)
        stateUntil_ =
            chainRng_.exponential(1.0 / cfg_.states[0].meanDwell);
}

double
ArrivalProcess::baseRate() const
{
    return cfg_.kind == ArrivalKind::Poisson ? cfg_.rate
                                             : cfg_.states[state_].rate;
}

double
ArrivalProcess::rateAt(Seconds t) const
{
    double r = baseRate();
    if (cfg_.diurnalAmplitude > 0.0)
        r *= 1.0 + cfg_.diurnalAmplitude *
                       std::sin(2.0 * M_PI * t / cfg_.diurnalPeriod);
    return r;
}

void
ArrivalProcess::advanceState()
{
    if (dwells_.size() < kDwellLogCap)
        dwells_.push_back(stateUntil_ - stateStart_);
    now_ = stateUntil_;
    stateStart_ = stateUntil_;
    state_ = (state_ + 1) % cfg_.states.size();
    stateUntil_ =
        now_ +
        chainRng_.exponential(1.0 / cfg_.states[state_].meanDwell);
}

UserArrival
ArrivalProcess::next()
{
    // Thinning (Lewis-Shedder): draw candidate gaps at the state's
    // peak modulated rate and accept with probability
    // rate(t)/peak — exact for the sinusoidal curve.  A candidate
    // falling past an MMPP state boundary is discarded and the draw
    // restarts at the boundary, which the exponential's memorylessness
    // makes statistically exact.
    for (;;) {
        if (cfg_.kind == ArrivalKind::Mmpp && now_ >= stateUntil_)
            advanceState();
        const double peak =
            baseRate() * (1.0 + cfg_.diurnalAmplitude);
        const Seconds candidate =
            now_ + arrivalRng_.exponential(peak);
        if (cfg_.kind == ArrivalKind::Mmpp &&
            candidate >= stateUntil_) {
            advanceState();
            continue;
        }
        now_ = candidate;
        if (cfg_.diurnalAmplitude > 0.0 &&
            arrivalRng_.uniform() * peak > rateAt(now_))
            continue;  // thinned out

        UserArrival a;
        a.id = count_;
        a.connect = now_;
        a.frames =
            cfg_.maxFrames > cfg_.minFrames
                ? cfg_.minFrames +
                      static_cast<std::uint32_t>(userRng_.uniformInt(
                          0, cfg_.maxFrames - cfg_.minFrames))
                : cfg_.minFrames;
        a.profile = 0;
        if (cfg_.mix.size() > 1) {
            double total = 0.0;
            for (const ArrivalMixEntry &m : cfg_.mix)
                total += m.weight;
            double draw = userRng_.uniform() * total;
            for (std::size_t i = 0; i < cfg_.mix.size(); i++) {
                draw -= cfg_.mix[i].weight;
                if (draw < 0.0) {
                    a.profile = static_cast<std::uint32_t>(i);
                    break;
                }
            }
        }
        a.seed = mix64(cfg_.seed ^ (a.id * 0xc2b2ae3d27d4eb4full));
        count_++;
        return a;
    }
}

std::vector<UserArrival>
generateArrivals(const ArrivalConfig &cfg, Seconds horizon)
{
    QVR_REQUIRE(horizon > 0.0, "arrival horizon must be positive");
    std::vector<UserArrival> out;
    ArrivalProcess p(cfg);
    for (;;) {
        const UserArrival a = p.next();
        if (a.connect >= horizon)
            break;
        out.push_back(a);
    }
    return out;
}

}  // namespace qvr::core
