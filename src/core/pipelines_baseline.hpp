/**
 * @file
 * The three non-foveated design points of Section 6:
 *
 *  - LocalPipeline   — "Baseline": traditional local rendering in a
 *    commercial mobile VR device (full frame on the mobile GPU, ATW
 *    on the GPU too);
 *  - RemotePipeline  — remote-only rendering: full frame rendered on
 *    the server, streamed compressed, decoded and ATW'd locally;
 *  - StaticPipeline  — "Static": state-of-the-art static
 *    collaborative rendering (interactive objects local, background
 *    remote with one-frame-granularity prefetching, depth-based
 *    composition on the GPU).
 */

#ifndef QVR_CORE_PIPELINES_BASELINE_HPP
#define QVR_CORE_PIPELINES_BASELINE_HPP

#include "core/pipeline.hpp"
#include "motion/predictor.hpp"

namespace qvr::core
{

/** Traditional local rendering (the paper's normalisation target). */
class LocalPipeline : public Pipeline
{
  public:
    explicit LocalPipeline(const PipelineConfig &cfg);

    std::string name() const override { return "Local"; }

  protected:
    FrameStats simulateFrame(const scene::FrameWorkload &frame,
                             Seconds issue_time) override;
    Seconds bottleneckFree() const override;
};

/** Remote-only rendering over the modelled channel. */
class RemotePipeline : public Pipeline
{
  public:
    explicit RemotePipeline(const PipelineConfig &cfg);

    std::string name() const override { return "Remote"; }

  protected:
    FrameStats simulateFrame(const scene::FrameWorkload &frame,
                             Seconds issue_time) override;
    Seconds bottleneckFree() const override;
};

/** Static collaborative rendering parameters. */
struct StaticCollabConfig
{
    /** Background is prefetched this many frames ahead (the paper:
     *  ">30 ms ahead (about 3 frames)"). */
    std::uint32_t prefetchAhead = 3;
    /** Head rotation (deg) between the predicted and actual pose
     *  beyond which the prefetched background is unusable and must
     *  be re-fetched on demand. */
    double mispredictThresholdDeg = 2.0;
    /** Pose predictor driving the prefetch (the paper's prototypes
     *  hold the last pose; shipping stacks extrapolate). */
    motion::PredictorKind predictor =
        motion::PredictorKind::HoldLast;
};

/** Static collaborative rendering (FlashBack/Furion-style). */
class StaticPipeline : public Pipeline
{
  public:
    StaticPipeline(const PipelineConfig &cfg,
                   const StaticCollabConfig &collab = {});

    std::string name() const override { return "Static"; }

    /** Fraction of frames whose prefetch mispredicted (diagnostics). */
    double mispredictRate() const;

  protected:
    FrameStats simulateFrame(const scene::FrameWorkload &frame,
                             Seconds issue_time) override;
    Seconds bottleneckFree() const override;

  private:
    StaticCollabConfig collab_;
    motion::PosePredictor posePredictor_;
    /** Yaw predictions issued prefetchAhead frames ago, oldest
     *  first; entry for frame i was predicted at frame
     *  i - prefetchAhead. */
    std::vector<double> predictedYaw_;
    /** Completion times of in-flight prefetches, oldest first; the
     *  entry issued at frame i serves frame i + prefetchAhead. */
    std::vector<Seconds> prefetchReady_;
    std::uint64_t mispredicts_ = 0;
    std::uint64_t framesSeen_ = 0;
};

}  // namespace qvr::core

#endif  // QVR_CORE_PIPELINES_BASELINE_HPP
