#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace qvr::core
{

foveation::DisplayConfig
PipelineConfig::display() const
{
    foveation::DisplayConfig d;
    d.width = benchmark.width;
    d.height = benchmark.height;
    return d;
}

PipelineConfig
PipelineConfig::forBenchmark(const scene::BenchmarkInfo &b)
{
    PipelineConfig cfg;
    cfg.benchmark = b;
    cfg.powerConfig.radio =
        power::RadioProfile::forNetwork(cfg.channelConfig.name);
    return cfg;
}

namespace
{

double
safeInverse(double x)
{
    return x > 0.0 ? 1.0 / x : 0.0;
}

}  // namespace

template <typename F>
double
PipelineResult::meanOver(F &&f) const
{
    if (frames.empty())
        return 0.0;
    const std::size_t start =
        frames.size() > warmupFrames ? warmupFrames : 0;
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = start; i < frames.size(); i++) {
        sum += f(frames[i]);
        n++;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
PipelineResult::meanMtp() const
{
    return meanOver([](const FrameStats &s) { return s.mtpLatency; });
}

double
PipelineResult::meanFps() const
{
    const double interval = meanOver(
        [](const FrameStats &s) { return s.frameInterval; });
    return safeInverse(interval);
}

double
PipelineResult::meanE1() const
{
    return meanOver([](const FrameStats &s) { return s.e1; });
}

double
PipelineResult::meanTransmittedBytes() const
{
    return meanOver([](const FrameStats &s) {
        return static_cast<double>(s.transmittedBytes);
    });
}

double
PipelineResult::meanResolutionFraction() const
{
    return meanOver([](const FrameStats &s) {
        return s.renderedResolutionFraction;
    });
}

double
PipelineResult::meanEnergy() const
{
    return meanOver(
        [](const FrameStats &s) { return s.energy.total(); });
}

double
PipelineResult::meanGpuBusy() const
{
    return meanOver([](const FrameStats &s) { return s.gpuBusy; });
}

double
PipelineResult::fpsCompliance() const
{
    return meanOver([](const FrameStats &s) {
        return s.meetsFrameRate ? 1.0 : 0.0;
    });
}

FaultCounters
PipelineResult::faultCounters() const
{
    FaultCounters c;
    for (const FrameStats &s : frames) {
        if (s.reprojected)
            c.reprojectedFrames++;
        if (s.localFallback)
            c.localFallbackFrames++;
        if (s.degradationLevel > 0)
            c.degradedFrames++;
        c.linkRetries += s.linkRetries;
        c.lostLayers += s.lostLayers;
        c.maxDegradationLevel =
            std::max(c.maxDegradationLevel, s.degradationLevel);
        c.totalLinkStall += s.linkStall;
    }
    return c;
}

Pipeline::Pipeline(const PipelineConfig &cfg)
    : geometry_(cfg.display(), cfg.mar),
      oracle_(geometry_),
      gpuModel_(cfg.gpuConfig, cfg.gpuCost),
      server_(cfg.serverConfig),
      codec_(cfg.codecConfig),
      energy_(cfg.powerConfig),
      channel_(cfg.channelConfig, Rng(cfg.seed, 0xc0ffee)),
      stream_(channel_, codec_),
      cfg_(cfg)
{
    stream_.setRetryPolicy(cfg_.retryPolicy);
    if (!cfg_.faults.empty()) {
        channel_.setFaultSchedule(cfg_.faults);
        server_.setFaultSchedule(cfg_.faults);
    }
}

void
Pipeline::setFrequencyScale(double scale)
{
    QVR_REQUIRE(scale > 0.0 && scale <= 2.0,
                "implausible DVFS scale ", scale);
    cfg_.gpuFrequencyScale = scale;
}

FrameStats
Pipeline::step(const scene::FrameWorkload &frame)
{
    FrameStats s = simulateFrame(frame, issue_);
    s.index = frame.index;

    if (hasLastDisplay_) {
        s.frameInterval = s.displayTime - lastDisplay_;
    } else {
        s.frameInterval = s.displayTime;  // first frame
    }
    lastDisplay_ = s.displayTime;
    hasLastDisplay_ = true;

    s.meetsFrameRate =
        s.frameInterval <= vr_requirements::kFrameBudget + 1e-9;
    s.meetsMtp =
        s.mtpLatency <= vr_requirements::kMaxMotionToPhoton + 1e-9;

    // Next frame: issue as soon as the serial bottleneck can accept
    // more work (the paper's FPS is uncapped: Fig. 14(b) plots rates
    // above 90 Hz; a real runtime would vsync-align, which only
    // quantises these numbers).  A small floor avoids zero-length
    // frames for degenerate workloads.
    constexpr Seconds kMinIssueInterval = 0.2e-3;
    issue_ = std::max(issue_ + kMinIssueInterval, bottleneckFree());
    return s;
}

PipelineResult
Pipeline::run(const std::vector<scene::FrameWorkload> &frames)
{
    PipelineResult result;
    result.design = name();
    result.benchmark = cfg_.benchmark.name;
    result.frames.reserve(frames.size());
    for (const auto &frame : frames)
        result.frames.push_back(step(frame));
    return result;
}

power::FrameEnergy
Pipeline::frameEnergy(Seconds gpu_busy, Seconds net_active,
                      Seconds decode_time, Seconds frame_interval,
                      bool liwc_on, bool uca_on) const
{
    power::FrameEnergy e;
    e.gpu = energy_.gpuEnergy(gpu_busy, frame_interval,
                              cfg_.gpuFrequencyScale);
    e.radio = energy_.radioEnergy(net_active, frame_interval);
    e.vpu = energy_.vpuEnergy(decode_time);
    e.accelerators =
        energy_.acceleratorEnergy(frame_interval, liwc_on, uca_on);
    return e;
}

double
Pipeline::foveaWorkloadFraction(double e1, Vec2 gaze) const
{
    const double area = geometry_.foveaAreaFraction(e1, gaze);
    if (area <= 0.0)
        return 0.0;
    return std::pow(area, 1.0 / cfg_.benchmark.centerConcentration);
}

double
meanSpeedup(const std::vector<PipelineResult> &baseline,
            const std::vector<PipelineResult> &candidate)
{
    QVR_REQUIRE(baseline.size() == candidate.size() &&
                    !baseline.empty(),
                "speedup needs matched, non-empty result sets");
    double sum = 0.0;
    for (std::size_t i = 0; i < baseline.size(); i++) {
        const double b = baseline[i].meanMtp();
        const double c = candidate[i].meanMtp();
        QVR_REQUIRE(c > 0.0, "candidate latency must be positive");
        sum += b / c;
    }
    return sum / static_cast<double>(baseline.size());
}

}  // namespace qvr::core
