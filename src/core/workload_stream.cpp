#include "core/workload_stream.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace qvr::core
{

namespace
{

motion::TraceConfig
traceConfigFor(const ExperimentSpec &spec)
{
    motion::TraceConfig cfg;
    cfg.numFrames = spec.numFrames;
    cfg.seed = spec.seed;
    return cfg;
}

}  // namespace

WorkloadStream::WorkloadStream(const ExperimentSpec &spec)
    : WorkloadStream(spec, Rng(spec.seed))
{
}

// The member initialisers run in declaration order and split @p root
// sequentially — the same root state and salts generateTrace() uses,
// so every model sees the exact stream the eager generator feeds it.
WorkloadStream::WorkloadStream(const ExperimentSpec &spec, Rng root)
    : traceCfg_(traceConfigFor(spec)),
      head_(traceCfg_.head, root.split(1)),
      gaze_(traceCfg_.gaze, root.split(2)),
      eye_(traceCfg_.eyeTracker, root.split(3)),
      imu_(traceCfg_.motionSensor, root.split(4)),
      interactionRng_(root.split(5)),
      scene_(scene::findBenchmark(spec.benchmark), spec.seed + 1000),
      numFrames_(spec.numFrames)
{
    QVR_REQUIRE(traceCfg_.frameRate > 0.0 && traceCfg_.numFrames > 0,
                "bad trace shape");
    const Seconds frame_dt = 1.0 / traceCfg_.frameRate;
    fineDt_ = std::min({frame_dt, eye_.samplePeriod(),
                        imu_.samplePeriod()}) /
              2.0;
    nextInteraction_ =
        interactionRng_.exponential(traceCfg_.interactionRate);
}

const scene::FrameWorkload &
WorkloadStream::next()
{
    QVR_REQUIRE(frame_ < numFrames_, "workload stream exhausted");

    // One iteration of generateTrace()'s frame loop, statement for
    // statement (trace.cpp) — floating-point identical.
    const Seconds frame_dt = 1.0 / traceCfg_.frameRate;
    const Seconds frame_time =
        static_cast<double>(frame_ + 1) * frame_dt;
    while (now_ < frame_time) {
        const Seconds dt = std::min(fineDt_, frame_time - now_);
        now_ += dt;
        const motion::HeadPose &pose = head_.step(dt);
        const motion::GazeAngles &g = gaze_.step(dt);
        imu_.observe(now_, pose);
        eye_.observe(now_, g);
    }

    if (now_ >= nextInteraction_) {
        interactionUntil_ =
            now_ + interactionRng_.exponential(
                       1.0 / traceCfg_.interactionDuration);
        nextInteraction_ =
            now_ +
            interactionRng_.exponential(traceCfg_.interactionRate);
    }
    const bool interacting = now_ < interactionUntil_;

    motion::MotionSample seen;
    seen.timestamp = now_;
    seen.head = imu_.delivered(now_);
    seen.gaze = eye_.delivered(now_);
    seen.interacting = interacting;

    motion::MotionSample truth;
    truth.timestamp = now_;
    truth.head = head_.pose();
    truth.gaze = gaze_.gaze();
    truth.interacting = interacting;

    const motion::MotionDelta delta =
        frame_ == 0 ? motion::MotionDelta{}
                    : motion::deltaBetween(prevSeen_, seen);
    prevSeen_ = seen;

    scratch_ = scene_.frame(frame_, seen, truth, delta);
    frame_++;
    return scratch_;
}

}  // namespace qvr::core
