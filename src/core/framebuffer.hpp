/**
 * @file
 * Minimal float-RGB image and framebuffer with bilinear sampling.
 *
 * The UCA model is both a timing model and a *functional* one: the
 * unified trilinear filter (Eq. 4) is executed on real pixels so its
 * equivalence with the sequential composition-then-ATW path (Eq. 3)
 * can be verified numerically rather than asserted.
 */

#ifndef QVR_CORE_FRAMEBUFFER_HPP
#define QVR_CORE_FRAMEBUFFER_HPP

#include <cstddef>
#include <cstdint>
#include <new>
#include <string>
#include <vector>

#include "common/geometry.hpp"

namespace qvr::core
{

/**
 * Minimal C++17 allocator returning storage aligned to (and padded
 * to a multiple of) @p Align bytes.  Pixel rasters use it so (a) the
 * base address satisfies 32-byte vector loads and (b) a full-width
 * vector read of the LAST few texels of an odd-width image stays
 * inside the allocation — the latent unaligned-tail hazard the SIMD
 * kernels would otherwise have to special-case.
 */
template <typename T, std::size_t Align>
struct AlignedAllocator
{
    using value_type = T;
    static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                  "Align must be a power of two >= alignof(T)");

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &)
    {
    }

    T *
    allocate(std::size_t n)
    {
        const std::size_t bytes =
            (n * sizeof(T) + Align - 1) / Align * Align;
        return static_cast<T *>(
            ::operator new(bytes, std::align_val_t{Align}));
    }

    void
    deallocate(T *p, std::size_t)
    {
        ::operator delete(p, std::align_val_t{Align});
    }

    template <typename U>
    bool
    operator==(const AlignedAllocator<U, Align> &) const
    {
        return true;
    }
    template <typename U>
    bool
    operator!=(const AlignedAllocator<U, Align> &) const
    {
        return false;
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };
};

/** Alignment of pixel-raster storage (one AVX2 lane set). */
constexpr std::size_t kRasterAlign = 32;

/** Linear-light RGB pixel. */
struct Rgb
{
    float r = 0.0f;
    float g = 0.0f;
    float b = 0.0f;

    Rgb operator+(const Rgb &o) const
    {
        return {r + o.r, g + o.g, b + o.b};
    }
    Rgb operator-(const Rgb &o) const
    {
        return {r - o.r, g - o.g, b - o.b};
    }
    Rgb operator*(float s) const { return {r * s, g * s, b * s}; }
};

/** Row-major float-RGB image. */
class Image
{
  public:
    Image() = default;
    Image(std::int32_t width, std::int32_t height,
          Rgb fill = Rgb{});

    std::int32_t width() const { return width_; }
    std::int32_t height() const { return height_; }
    bool empty() const { return pixels_.empty(); }

    const Rgb &at(std::int32_t x, std::int32_t y) const;
    Rgb &at(std::int32_t x, std::int32_t y);

    /** Contiguous pixel row: the row index is bounds-checked once,
     *  pixels within the row are then indexed unchecked — hoists the
     *  per-pixel QVR_REQUIRE of at() out of inner loops. */
    Rgb *rowSpan(std::int32_t y);
    const Rgb *rowSpan(std::int32_t y) const;

    /** Clamp-to-edge texel fetch. */
    const Rgb &texel(std::int32_t x, std::int32_t y) const;

    /** Bilinear sample at continuous coordinates (pixel centres at
     *  integer + 0.5), clamp-to-edge. */
    Rgb sampleBilinear(double x, double y) const;

    /** Mean absolute per-channel difference against @p other
     *  (images must match in size). */
    double meanAbsDiff(const Image &other) const;

    /** Largest absolute per-channel difference against @p other. */
    double maxAbsDiff(const Image &other) const;

    /** Write as binary PPM (P6), clamping to [0,1] and quantising to
     *  8 bits — lets users look at what the pipeline produced. */
    void writePpm(const std::string &path) const;

  private:
    std::int32_t width_ = 0;
    std::int32_t height_ = 0;
    /** 32-byte aligned, tail-padded storage (see AlignedAllocator);
     *  rows remain contiguous with no inter-row stride, so the
     *  whole-buffer iterations (diff/PPM) are unchanged. */
    std::vector<Rgb, AlignedAllocator<Rgb, kRasterAlign>> pixels_;
};

}  // namespace qvr::core

#endif  // QVR_CORE_FRAMEBUFFER_HPP
