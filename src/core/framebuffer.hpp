/**
 * @file
 * Minimal float-RGB image and framebuffer with bilinear sampling.
 *
 * The UCA model is both a timing model and a *functional* one: the
 * unified trilinear filter (Eq. 4) is executed on real pixels so its
 * equivalence with the sequential composition-then-ATW path (Eq. 3)
 * can be verified numerically rather than asserted.
 */

#ifndef QVR_CORE_FRAMEBUFFER_HPP
#define QVR_CORE_FRAMEBUFFER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.hpp"

namespace qvr::core
{

/** Linear-light RGB pixel. */
struct Rgb
{
    float r = 0.0f;
    float g = 0.0f;
    float b = 0.0f;

    Rgb operator+(const Rgb &o) const
    {
        return {r + o.r, g + o.g, b + o.b};
    }
    Rgb operator-(const Rgb &o) const
    {
        return {r - o.r, g - o.g, b - o.b};
    }
    Rgb operator*(float s) const { return {r * s, g * s, b * s}; }
};

/** Row-major float-RGB image. */
class Image
{
  public:
    Image() = default;
    Image(std::int32_t width, std::int32_t height,
          Rgb fill = Rgb{});

    std::int32_t width() const { return width_; }
    std::int32_t height() const { return height_; }
    bool empty() const { return pixels_.empty(); }

    const Rgb &at(std::int32_t x, std::int32_t y) const;
    Rgb &at(std::int32_t x, std::int32_t y);

    /** Contiguous pixel row: the row index is bounds-checked once,
     *  pixels within the row are then indexed unchecked — hoists the
     *  per-pixel QVR_REQUIRE of at() out of inner loops. */
    Rgb *rowSpan(std::int32_t y);
    const Rgb *rowSpan(std::int32_t y) const;

    /** Clamp-to-edge texel fetch. */
    const Rgb &texel(std::int32_t x, std::int32_t y) const;

    /** Bilinear sample at continuous coordinates (pixel centres at
     *  integer + 0.5), clamp-to-edge. */
    Rgb sampleBilinear(double x, double y) const;

    /** Mean absolute per-channel difference against @p other
     *  (images must match in size). */
    double meanAbsDiff(const Image &other) const;

    /** Largest absolute per-channel difference against @p other. */
    double maxAbsDiff(const Image &other) const;

    /** Write as binary PPM (P6), clamping to [0,1] and quantising to
     *  8 bits — lets users look at what the pipeline produced. */
    void writePpm(const std::string &path) const;

  private:
    std::int32_t width_ = 0;
    std::int32_t height_ = 0;
    std::vector<Rgb> pixels_;
};

}  // namespace qvr::core

#endif  // QVR_CORE_FRAMEBUFFER_HPP
