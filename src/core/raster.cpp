#include "core/raster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hpp"

namespace qvr::core
{

namespace
{

/** Twice the signed area of triangle (a, b, c). */
double
edgeFunction(double ax, double ay, double bx, double by, double cx,
             double cy)
{
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax);
}

/** Top-left fill rule: is edge (a -> b) a top or left edge? */
bool
isTopLeft(double ax, double ay, double bx, double by)
{
    // Top edge: horizontal and going right.  Left edge: going up
    // (in a y-down raster with counter-clockwise winding).
    return (ay == by && bx > ax) || (by < ay);
}

}  // namespace

TileRasterizer::TileRasterizer(std::int32_t width, std::int32_t height,
                               std::int32_t tile_size)
    : color_(width, height),
      depth_(static_cast<std::size_t>(width) * height, 1.0f),
      tileSize_(tile_size)
{
    QVR_REQUIRE(tile_size > 0, "tile size must be positive");
}

void
TileRasterizer::clear(const Rgb &color, float depth)
{
    for (std::int32_t y = 0; y < height(); y++) {
        Rgb *row = color_.rowSpan(y);
        std::fill(row, row + width(), color);
    }
    std::fill(depth_.begin(), depth_.end(), depth);
}

float
TileRasterizer::depthAt(std::int32_t x, std::int32_t y) const
{
    QVR_REQUIRE(x >= 0 && x < width() && y >= 0 && y < height(),
                "depth read out of bounds");
    return depth_[static_cast<std::size_t>(y) * width() + x];
}

void
TileRasterizer::draw(const RasterTriangle &tri)
{
    stats_.trianglesSubmitted++;

    // Order vertices counter-clockwise (y-down): positive area.
    RasterTriangle t = tri;
    double area = edgeFunction(t.v0.x, t.v0.y, t.v1.x, t.v1.y,
                               t.v2.x, t.v2.y);
    if (area < 0.0) {
        std::swap(t.v1, t.v2);
        area = -area;
    }
    if (area < 1e-12) {
        stats_.trianglesCulled++;  // degenerate
        return;
    }

    // Screen-space bounding box, clipped.
    const double min_x =
        std::min({t.v0.x, t.v1.x, t.v2.x});
    const double max_x =
        std::max({t.v0.x, t.v1.x, t.v2.x});
    const double min_y =
        std::min({t.v0.y, t.v1.y, t.v2.y});
    const double max_y =
        std::max({t.v0.y, t.v1.y, t.v2.y});
    if (max_x <= 0.0 || max_y <= 0.0 ||
        min_x >= static_cast<double>(width()) ||
        min_y >= static_cast<double>(height())) {
        stats_.trianglesCulled++;  // fully offscreen
        return;
    }

    const auto bx0 = clamp(static_cast<std::int32_t>(
                               std::floor(min_x)),
                           0, width() - 1);
    const auto by0 = clamp(static_cast<std::int32_t>(
                               std::floor(min_y)),
                           0, height() - 1);
    const auto bx1 = clamp(static_cast<std::int32_t>(
                               std::ceil(max_x)),
                           0, width() - 1);
    const auto by1 = clamp(static_cast<std::int32_t>(
                               std::ceil(max_y)),
                           0, height() - 1);

    // Bin to tiles; rasterise tile by tile (hardware-shaped loop).
    for (std::int32_t ty = by0 / tileSize_;
         ty <= by1 / tileSize_; ty++) {
        for (std::int32_t tx = bx0 / tileSize_;
             tx <= bx1 / tileSize_; tx++) {
            stats_.tileBinEntries++;
            const std::int32_t x0 =
                std::max(bx0, tx * tileSize_);
            const std::int32_t y0 =
                std::max(by0, ty * tileSize_);
            const std::int32_t x1 =
                std::min(bx1, (tx + 1) * tileSize_ - 1);
            const std::int32_t y1 =
                std::min(by1, (ty + 1) * tileSize_ - 1);
            rasterizeInTile(t, x0, y0, x1, y1);
        }
    }
}

void
TileRasterizer::rasterizeInTile(const RasterTriangle &t,
                                std::int32_t x0, std::int32_t y0,
                                std::int32_t x1, std::int32_t y1)
{
    const double area = edgeFunction(t.v0.x, t.v0.y, t.v1.x, t.v1.y,
                                     t.v2.x, t.v2.y);
    const double inv_area = 1.0 / area;

    // Fill-rule bias per edge: a pixel centre exactly ON an edge
    // (w == 0) is owned by the triangle only when that edge is a
    // top-left edge; otherwise it is rejected here and owned by the
    // adjacent triangle.
    const double bias0 =
        isTopLeft(t.v1.x, t.v1.y, t.v2.x, t.v2.y) ? 0.0 : 1e-9;
    const double bias1 =
        isTopLeft(t.v2.x, t.v2.y, t.v0.x, t.v0.y) ? 0.0 : 1e-9;
    const double bias2 =
        isTopLeft(t.v0.x, t.v0.y, t.v1.x, t.v1.y) ? 0.0 : 1e-9;

    for (std::int32_t y = y0; y <= y1; y++) {
        Rgb *crow = color_.rowSpan(y);
        float *zrow = depth_.data() +
                      static_cast<std::size_t>(y) * width();
        for (std::int32_t x = x0; x <= x1; x++) {
            const double px = x + 0.5;
            const double py = y + 0.5;
            const double w0 = edgeFunction(t.v1.x, t.v1.y, t.v2.x,
                                           t.v2.y, px, py);
            const double w1 = edgeFunction(t.v2.x, t.v2.y, t.v0.x,
                                           t.v0.y, px, py);
            const double w2 = edgeFunction(t.v0.x, t.v0.y, t.v1.x,
                                           t.v1.y, px, py);
            if (w0 < bias0 || w1 < bias1 || w2 < bias2)
                continue;
            stats_.fragmentsTested++;

            const double b0 = w0 * inv_area;
            const double b1 = w1 * inv_area;
            const double b2 = w2 * inv_area;
            const float z = static_cast<float>(
                b0 * t.v0.z + b1 * t.v1.z + b2 * t.v2.z);

            float &zbuf = zrow[x];
            if (z >= zbuf)
                continue;
            zbuf = z;
            stats_.fragmentsShaded++;

            crow[x] = Rgb{
                static_cast<float>(b0 * t.v0.color.r +
                                   b1 * t.v1.color.r +
                                   b2 * t.v2.color.r),
                static_cast<float>(b0 * t.v0.color.g +
                                   b1 * t.v1.color.g +
                                   b2 * t.v2.color.g),
                static_cast<float>(b0 * t.v0.color.b +
                                   b1 * t.v1.color.b +
                                   b2 * t.v2.color.b)};
        }
    }
}

void
TileRasterizer::draw(const std::vector<RasterTriangle> &tris)
{
    for (const auto &t : tris)
        draw(t);
}

double
psnr(const Image &a, const Image &b)
{
    QVR_REQUIRE(a.width() == b.width() && a.height() == b.height(),
                "psnr requires equal-size images");
    double mse = 0.0;
    const auto n =
        static_cast<double>(a.width()) * a.height() * 3.0;
    for (std::int32_t y = 0; y < a.height(); y++) {
        const Rgb *ra = a.rowSpan(y);
        const Rgb *rb = b.rowSpan(y);
        for (std::int32_t x = 0; x < a.width(); x++) {
            const Rgb d = ra[x] - rb[x];
            mse += static_cast<double>(d.r) * d.r +
                   static_cast<double>(d.g) * d.g +
                   static_cast<double>(d.b) * d.b;
        }
    }
    mse /= n;
    if (mse <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(1.0 / mse);
}

namespace testscene
{

std::vector<RasterTriangle>
chessHall(std::int32_t width, std::int32_t height,
          std::int32_t detail, double view_shift)
{
    QVR_REQUIRE(detail >= 2, "detail too low for a scene");
    std::vector<RasterTriangle> tris;
    const double w = width;
    const double h = height;

    auto quad = [&tris](RasterVertex a, RasterVertex b,
                        RasterVertex c, RasterVertex d) {
        tris.push_back(RasterTriangle{a, b, c});
        tris.push_back(RasterTriangle{a, c, d});
    };

    // Checkerboard "floor": perspective-ish rows shrinking toward a
    // horizon at 40% height; alternating albedo.
    const std::int32_t rows = detail;
    const std::int32_t cols = detail * 2;
    const double horizon = 0.40 * h;
    for (std::int32_t r = 0; r < rows; r++) {
        // Nonlinear row spacing emulates perspective foreshortening.
        const double t0 =
            std::pow(static_cast<double>(r) / rows, 1.8);
        const double t1 =
            std::pow(static_cast<double>(r + 1) / rows, 1.8);
        const double y_top = horizon + (h - horizon) * t0;
        const double y_bot = horizon + (h - horizon) * t1;
        const double depth0 = 0.9 - 0.5 * t0;
        const double depth1 = 0.9 - 0.5 * t1;
        const double shrink0 = 0.25 + 0.75 * t0;
        const double shrink1 = 0.25 + 0.75 * t1;
        for (std::int32_t c = 0; c < cols; c++) {
            const double u0 = static_cast<double>(c) / cols;
            const double u1 = static_cast<double>(c + 1) / cols;
            auto map_x = [&](double u, double shrink) {
                return w / 2.0 +
                       (u - 0.5) * w * shrink +
                       view_shift * shrink;
            };
            const bool dark = (r + c) % 2 == 0;
            const Rgb col = dark ? Rgb{0.12f, 0.10f, 0.10f}
                                 : Rgb{0.85f, 0.83f, 0.78f};
            RasterVertex a{map_x(u0, shrink0), y_top, depth0, col};
            RasterVertex b{map_x(u1, shrink0), y_top, depth0, col};
            RasterVertex cc{map_x(u1, shrink1), y_bot, depth1, col};
            RasterVertex d{map_x(u0, shrink1), y_bot, depth1, col};
            quad(a, b, cc, d);
        }
    }

    // Coloured "columns" standing on the floor at several depths.
    const std::int32_t n_cols = std::max(3, detail / 2);
    for (std::int32_t k = 0; k < n_cols; k++) {
        const double t =
            static_cast<double>(k + 1) / (n_cols + 1);
        const double depth = 0.85 - 0.6 * t;
        const double shrink = 0.3 + 0.7 * t;
        const double cx = w / 2.0 +
                          (t - 0.5) * w * 0.8 * shrink +
                          view_shift * shrink;
        const double col_w = 0.03 * w * shrink;
        const double base = horizon + (h - horizon) * t * 0.9;
        const double top = base - 0.35 * h * shrink;
        const Rgb col{static_cast<float>(0.2 + 0.7 * t),
                      static_cast<float>(0.9 - 0.6 * t),
                      static_cast<float>(0.3 + 0.5 * (k % 2))};
        RasterVertex a{cx - col_w, top, depth, col};
        RasterVertex b{cx + col_w, top, depth, col};
        RasterVertex c{cx + col_w, base, depth, col};
        RasterVertex d{cx - col_w, base, depth, col};
        quad(a, b, c, d);
    }

    // "Sky" gradient band above the horizon (two big triangles).
    RasterVertex s0{0.0, 0.0, 0.99, Rgb{0.25f, 0.45f, 0.75f}};
    RasterVertex s1{w, 0.0, 0.99, Rgb{0.25f, 0.45f, 0.75f}};
    RasterVertex s2{w, horizon, 0.99, Rgb{0.7f, 0.8f, 0.95f}};
    RasterVertex s3{0.0, horizon, 0.99, Rgb{0.7f, 0.8f, 0.95f}};
    quad(s0, s1, s2, s3);

    return tris;
}

}  // namespace testscene

}  // namespace qvr::core
