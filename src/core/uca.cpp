#include "core/uca.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace qvr::core
{

namespace
{

/** Smoothstep on [lo, hi]. */
double
smooth(double x, double lo, double hi)
{
    if (x <= lo)
        return 0.0;
    if (x >= hi)
        return 1.0;
    const double t = (x - lo) / (hi - lo);
    return t * t * (3.0 - 2.0 * t);
}

/** Sample a (possibly subsampled) layer at native-frame coords. */
Rgb
sampleLayer(const Image &layer, double s, double x, double y)
{
    return layer.sampleBilinear(x / s, y / s);
}

void
checkInputs(const UcaFrameInputs &in)
{
    QVR_REQUIRE(in.fovea && in.middle && in.outer,
                "UCA inputs must provide all three layers");
    QVR_REQUIRE(in.sMiddle >= 1.0 && in.sOuter >= 1.0,
                "subsample factors must be >= 1");
    QVR_REQUIRE(in.partition.middleRadius >= in.partition.foveaRadius,
                "e2 must be >= e1");
}

}  // namespace

LayerWeights
layerWeights(const PixelPartition &p, double r)
{
    LayerWeights w;
    // Cross-fades are centred on the layer boundaries, half a band
    // on each side; clamp so the bands cannot overlap.
    const double band =
        std::min(p.blendBand,
                 std::max(1.0, p.middleRadius - p.foveaRadius));
    const double f2m = smooth(r, p.foveaRadius - band / 2.0,
                              p.foveaRadius + band / 2.0);
    const double m2o = smooth(r, p.middleRadius - band / 2.0,
                              p.middleRadius + band / 2.0);
    w.fovea = 1.0 - f2m;
    w.middle = f2m * (1.0 - m2o);
    w.outer = f2m * m2o;
    return w;
}

Image
sequentialCompositeAtw(const UcaFrameInputs &in)
{
    checkInputs(in);
    const std::int32_t w = in.fovea->width();
    const std::int32_t h = in.fovea->height();

    // Pass 1 (Eq. 3-left): composition at native resolution.
    Image composed(w, h);
    for (std::int32_t y = 0; y < h; y++) {
        for (std::int32_t x = 0; x < w; x++) {
            const double px = x + 0.5;
            const double py = y + 0.5;
            const double r = std::hypot(px - in.partition.centerX,
                                        py - in.partition.centerY);
            const LayerWeights lw = layerWeights(in.partition, r);
            Rgb c;
            if (lw.fovea > 0.0) {
                c = c + in.fovea->sampleBilinear(px, py) *
                            static_cast<float>(lw.fovea);
            }
            if (lw.middle > 0.0) {
                c = c + sampleLayer(*in.middle, in.sMiddle, px, py) *
                            static_cast<float>(lw.middle);
            }
            if (lw.outer > 0.0) {
                c = c + sampleLayer(*in.outer, in.sOuter, px, py) *
                            static_cast<float>(lw.outer);
            }
            composed.at(x, y) = c;
        }
    }

    // Pass 2 (Eq. 3-right): ATW — resample the composed frame at the
    // reprojected coordinates.
    Image out(w, h);
    for (std::int32_t y = 0; y < h; y++) {
        for (std::int32_t x = 0; x < w; x++) {
            const double sx = x + 0.5 - in.atwShift.x;
            const double sy = y + 0.5 - in.atwShift.y;
            out.at(x, y) = composed.sampleBilinear(sx, sy);
        }
    }
    return out;
}

Image
ucaUnified(const UcaFrameInputs &in)
{
    checkInputs(in);
    const std::int32_t w = in.fovea->width();
    const std::int32_t h = in.fovea->height();

    // One pass (Eq. 4): for each output pixel, reproject once, then
    // sample every contributing layer at that source coordinate —
    // bilinear inside a layer plus the inter-layer blend makes the
    // trilinear filter of Fig. 10.
    Image out(w, h);
    for (std::int32_t y = 0; y < h; y++) {
        for (std::int32_t x = 0; x < w; x++) {
            const double sx = x + 0.5 - in.atwShift.x;
            const double sy = y + 0.5 - in.atwShift.y;
            const double r = std::hypot(sx - in.partition.centerX,
                                        sy - in.partition.centerY);
            const LayerWeights lw = layerWeights(in.partition, r);
            Rgb c;
            if (lw.fovea > 0.0) {
                c = c + in.fovea->sampleBilinear(sx, sy) *
                            static_cast<float>(lw.fovea);
            }
            if (lw.middle > 0.0) {
                c = c + sampleLayer(*in.middle, in.sMiddle, sx, sy) *
                            static_cast<float>(lw.middle);
            }
            if (lw.outer > 0.0) {
                c = c + sampleLayer(*in.outer, in.sOuter, sx, sy) *
                            static_cast<float>(lw.outer);
            }
            out.at(x, y) = c;
        }
    }
    return out;
}

Image
ucaUnifiedCompressed(const CompressedUcaInputs &in)
{
    QVR_REQUIRE(in.fovea && in.middle && in.outer,
                "UCA inputs must provide all three layers");
    QVR_REQUIRE(in.middleMap.scaleX > 0.0 &&
                    in.middleMap.scaleY > 0.0 &&
                    in.outerMap.scaleX > 0.0 &&
                    in.outerMap.scaleY > 0.0,
                "layer scales must be positive");
    QVR_REQUIRE(in.partition.middleRadius >= in.partition.foveaRadius,
                "e2 must be >= e1");
    QVR_REQUIRE(in.width > 0 && in.height > 0,
                "output frame must be non-empty");

    const foveation::LayerTransform &mm = in.middleMap;
    const foveation::LayerTransform &om = in.outerMap;
    Image out(in.width, in.height);
    for (std::int32_t y = 0; y < in.height; y++) {
        for (std::int32_t x = 0; x < in.width; x++) {
            const double sx = x + 0.5 - in.atwShift.x;
            const double sy = y + 0.5 - in.atwShift.y;
            const double r = std::hypot(sx - in.partition.centerX,
                                        sy - in.partition.centerY);
            const LayerWeights lw = layerWeights(in.partition, r);
            Rgb c;
            if (lw.fovea > 0.0) {
                c = c + in.fovea->sampleBilinear(sx, sy) *
                            static_cast<float>(lw.fovea);
            }
            if (lw.middle > 0.0) {
                c = c + in.middle->sampleBilinear(
                            (sx - mm.originX) / mm.scaleX,
                            (sy - mm.originY) / mm.scaleY) *
                            static_cast<float>(lw.middle);
            }
            if (lw.outer > 0.0) {
                c = c + in.outer->sampleBilinear(
                            (sx - om.originX) / om.scaleX,
                            (sy - om.originY) / om.scaleY) *
                            static_cast<float>(lw.outer);
            }
            out.at(x, y) = c;
        }
    }
    return out;
}

TileClass
classifyTile(const PixelPartition &p, std::int32_t x0, std::int32_t y0,
             std::int32_t tile_size)
{
    // Distance range from the fovea centre to the tile rectangle.
    const double x1 = x0 + tile_size;
    const double y1 = y0 + tile_size;
    const double nx = clamp(p.centerX, static_cast<double>(x0), x1);
    const double ny = clamp(p.centerY, static_cast<double>(y0), y1);
    const double rmin = std::hypot(nx - p.centerX, ny - p.centerY);

    double rmax = 0.0;
    const double xs[2] = {static_cast<double>(x0), x1};
    const double ys[2] = {static_cast<double>(y0), y1};
    for (double cx : xs) {
        for (double cy : ys) {
            rmax = std::max(rmax, std::hypot(cx - p.centerX,
                                             cy - p.centerY));
        }
    }

    const double half_band = p.blendBand / 2.0;
    const bool crosses_e1 = rmin < p.foveaRadius + half_band &&
                            rmax > p.foveaRadius - half_band;
    const bool crosses_e2 = rmin < p.middleRadius + half_band &&
                            rmax > p.middleRadius - half_band;
    if (crosses_e1 || crosses_e2)
        return TileClass::Border;
    if (rmax <= p.foveaRadius)
        return TileClass::FoveaInterior;
    return TileClass::PeripheryInterior;
}

UcaTimingModel::UcaTimingModel(const UcaConfig &cfg)
    : cfg_(cfg), units_(cfg.units)
{
    QVR_REQUIRE(cfg.tileSize > 0, "tile size must be positive");
}

UcaTimingResult
UcaTimingModel::processFrame(std::int32_t width, std::int32_t height,
                             const PixelPartition &partition,
                             Seconds fovea_ready,
                             Seconds periphery_ready)
{
    UcaTimingResult result;
    const auto ts = static_cast<std::int32_t>(cfg_.tileSize);

    // Two eligibility classes; serve the earlier-eligible class
    // first (the "start ATW on non-overlapping tiles earlier"
    // optimisation of Section 4.2).
    struct Bucket
    {
        Seconds ready;
        std::uint32_t tiles = 0;
        std::uint64_t cycles = 0;
    };
    Bucket periphery_only{periphery_ready};
    Bucket needs_fovea{std::max(fovea_ready, periphery_ready)};

    for (std::int32_t y = 0; y < height; y += ts) {
        for (std::int32_t x = 0; x < width; x += ts) {
            const TileClass cls =
                classifyTile(partition, x, y, ts);
            const Cycles cost = (cls == TileClass::Border)
                                    ? cfg_.borderTileCycles
                                    : cfg_.interiorTileCycles;
            if (cls == TileClass::Border) {
                result.borderTiles++;
            } else {
                result.interiorTiles++;
            }
            // Periphery-only tiles do not wait for local rendering.
            Bucket &b = (cls == TileClass::PeripheryInterior)
                            ? periphery_only
                            : needs_fovea;
            b.tiles++;
            b.cycles += cost;
        }
    }

    Seconds done = 0.0;
    Seconds busy = 0.0;
    Bucket *order[2];
    if (periphery_only.ready <= needs_fovea.ready) {
        order[0] = &periphery_only;
        order[1] = &needs_fovea;
    } else {
        order[0] = &needs_fovea;
        order[1] = &periphery_only;
    }
    for (Bucket *b : order) {
        if (b->tiles == 0)
            continue;
        // Tiles within a bucket split evenly across instances.
        const Seconds service = cyclesToSeconds(
            b->cycles / cfg_.units + cfg_.interiorTileCycles,
            cfg_.frequency);
        for (std::uint32_t u = 0; u < cfg_.units; u++)
            done = std::max(done, units_.serve(b->ready, service));
        busy += cyclesToSeconds(b->cycles, cfg_.frequency);
    }

    result.done = done;
    result.busy = busy;
    return result;
}

UcaTimingResult
UcaTimingModel::processFrameDetailed(std::int32_t width,
                                     std::int32_t height,
                                     const PixelPartition &partition,
                                     Seconds fovea_ready,
                                     Seconds periphery_ready)
{
    UcaTimingResult result;
    const auto ts = static_cast<std::int32_t>(cfg_.tileSize);
    const Seconds both_ready =
        std::max(fovea_ready, periphery_ready);

    // Collect per-tile work, then dispatch in eligibility order so
    // an instance never idles past a ready tile.
    struct Tile
    {
        Seconds ready;
        Cycles cost;
    };
    std::vector<Tile> tiles;
    tiles.reserve(static_cast<std::size_t>(
        ((width + ts - 1) / ts) * ((height + ts - 1) / ts)));

    for (std::int32_t y = 0; y < height; y += ts) {
        for (std::int32_t x = 0; x < width; x += ts) {
            const TileClass cls = classifyTile(partition, x, y, ts);
            const Cycles cost = (cls == TileClass::Border)
                                    ? cfg_.borderTileCycles
                                    : cfg_.interiorTileCycles;
            if (cls == TileClass::Border) {
                result.borderTiles++;
            } else {
                result.interiorTiles++;
            }
            const Seconds ready =
                (cls == TileClass::PeripheryInterior)
                    ? periphery_ready
                    : both_ready;
            tiles.push_back(Tile{ready, cost});
        }
    }
    std::stable_sort(tiles.begin(), tiles.end(),
                     [](const Tile &a, const Tile &b) {
                         return a.ready < b.ready;
                     });

    Seconds done = 0.0;
    for (const Tile &t : tiles) {
        const Seconds service =
            cyclesToSeconds(t.cost, cfg_.frequency);
        done = std::max(done, units_.serve(t.ready, service));
        result.busy += service;
    }
    result.done = done;
    return result;
}

}  // namespace qvr::core
