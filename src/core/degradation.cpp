#include "core/degradation.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace qvr::core
{

const char *
degradationStateName(DegradationState s)
{
    switch (s) {
      case DegradationState::Healthy: return "Healthy";
      case DegradationState::Degraded: return "Degraded";
      case DegradationState::LocalOnly: return "LocalOnly";
    }
    return "?";
}

void
DegradationConfig::validate() const
{
    QVR_REQUIRE(missesToDegrade > 0, "missesToDegrade must be >= 1");
    QVR_REQUIRE(missesToLocalOnly >= missesToDegrade,
                "local-only threshold below degrade threshold");
    QVR_REQUIRE(recoveryFrames > 0, "recoveryFrames must be >= 1");
    QVR_REQUIRE(probesToExit > 0, "probesToExit must be >= 1");
    QVR_REQUIRE(probeInterval > 0, "probeInterval must be >= 1");
    QVR_REQUIRE(qualityStep > 0.0 && qualityStep <= 1.0,
                "qualityStep outside (0,1]");
    QVR_REQUIRE(resolutionStep > 0.0 && resolutionStep <= 1.0,
                "resolutionStep outside (0,1]");
    QVR_REQUIRE(localPeripheryScale > 0.0 && localPeripheryScale <= 1.0,
                "localPeripheryScale outside (0,1]");
    QVR_REQUIRE(stallToDeclareDown >= 0.0,
                "negative stall threshold");
    QVR_REQUIRE(throughputCollapse >= 0.0 && throughputCollapse < 1.0,
                "throughputCollapse outside [0,1)");
}

DegradationController::DegradationController(
    const DegradationConfig &cfg)
    : cfg_(cfg)
{
    cfg.validate();
}

DegradationDecision
DegradationController::decide() const
{
    DegradationDecision d;
    d.state = state_;
    d.level = level_;
    d.qualityFactor = std::pow(cfg_.qualityStep,
                               static_cast<double>(level_));
    d.resolutionScale = std::pow(cfg_.resolutionStep,
                                 static_cast<double>(level_));
    d.dropOuterLayer = cfg_.maxLevel > 0 && level_ >= cfg_.maxLevel;
    d.clampLocalWork =
        state_ != DegradationState::Healthy || missStreak_ > 0;
    if (state_ == DegradationState::LocalOnly) {
        // Probe cadence: frame 0 after entry is always local (the
        // link just died); every probeInterval-th frame re-tests the
        // remote path at the deepest ladder rung.
        d.probe =
            (framesInLocalOnly_ + 1) % cfg_.probeInterval == 0;
        d.localOnly = !d.probe;
    }
    return d;
}

void
DegradationController::enterLocalOnly()
{
    state_ = DegradationState::LocalOnly;
    level_ = cfg_.maxLevel;
    missStreak_ = 0;
    sinceDowngrade_ = 0;
    consecutiveGood_ = 0;
    goodProbes_ = 0;
    framesInLocalOnly_ = 0;
    counters_.localOnlyEntries++;
}

void
DegradationController::observe(const FrameHealth &health)
{
    if (state_ == DegradationState::LocalOnly) {
        framesInLocalOnly_++;
        if (!health.remoteAttempted)
            return;  // pure local frame: no link information
        counters_.probes++;
        if (health.remoteMiss || health.transferLost ||
            health.linkStall > 0.0) {
            goodProbes_ = 0;  // link still down; stay local
            return;
        }
        if (++goodProbes_ >= cfg_.probesToExit) {
            // Ramp back through the Degraded ladder, not straight to
            // Healthy — the hysteresis that prevents oscillation.
            state_ = DegradationState::Degraded;
            level_ = cfg_.maxLevel;
            goodProbes_ = 0;
            consecutiveGood_ = 0;
            missStreak_ = 0;
            sinceDowngrade_ = 0;
            counters_.localOnlyExits++;
        }
        return;
    }

    // An outage-scale stall or a collapsed ACK estimate means the
    // link is down NOW: no point walking the miss-count ramp.
    const bool link_down =
        health.linkStall >= cfg_.stallToDeclareDown ||
        health.ackFraction < cfg_.throughputCollapse;
    if (link_down) {
        enterLocalOnly();
        return;
    }

    const bool bad = health.remoteMiss || health.transferLost ||
                     health.linkStall > 0.0;
    if (bad) {
        missStreak_++;
        sinceDowngrade_++;
        consecutiveGood_ = 0;
        if (missStreak_ >= cfg_.missesToLocalOnly) {
            enterLocalOnly();
        } else if (sinceDowngrade_ >= cfg_.missesToDegrade) {
            if (level_ < cfg_.maxLevel) {
                level_++;
                counters_.downgrades++;
            }
            state_ = DegradationState::Degraded;
            // Each further run of misses steps one more level.
            sinceDowngrade_ = 0;
        }
        return;
    }

    missStreak_ = 0;
    sinceDowngrade_ = 0;
    if (level_ == 0)
        return;
    if (++consecutiveGood_ >= cfg_.recoveryFrames) {
        consecutiveGood_ = 0;
        level_--;
        counters_.upgrades++;
        if (level_ == 0)
            state_ = DegradationState::Healthy;
    }
}

}  // namespace qvr::core
