/**
 * @file
 * End-to-end functional foveated rendering: rasterise a scene's
 * triangle list at native resolution AND as Q-VR's three layers
 * (full-res fovea, subsampled middle and outer), then fuse the
 * layers through the UCA unified pass.  This is the pixel-true
 * version of what the timing pipelines model — it lets experiments
 * measure actual image quality (PSNR overall and inside the fovea)
 * as a function of the partition, reproducing the intent of the
 * paper's Section 3.1 image-quality survey without human subjects.
 */

#ifndef QVR_CORE_FOVEATED_RENDER_HPP
#define QVR_CORE_FOVEATED_RENDER_HPP

#include <cstddef>
#include <vector>

#include "core/raster.hpp"
#include "core/uca.hpp"

namespace qvr::core
{

/** Outcome of one functional foveated render. */
struct FoveatedRenderResult
{
    Image native;      ///< full-resolution reference render
    Image composite;   ///< foveated layers fused by the UCA pass
    double psnrOverall = 0.0;   ///< composite vs native, whole frame
    double psnrFovea = 0.0;     ///< restricted to the fovea disc
    double psnrPeriphery = 0.0; ///< restricted to outside the disc
};

/** PSNR restricted to pixels inside/outside a disc. */
double psnrInDisc(const Image &a, const Image &b, double cx,
                  double cy, double radius, bool inside);

/**
 * Render @p scene both ways and fuse.
 *
 * The fuse and the reference reprojection run through the tiled
 * PixelEngine (core/pixel_engine.hpp), which is bit-identical to the
 * scalar UCA loops at every thread count — results do not depend on
 * @p threads.
 *
 * @param width/height  native framebuffer size
 * @param partition     fovea/middle geometry in pixels
 * @param s_middle/s_outer  per-dimension subsample factors
 * @param atw_shift     reprojection applied in the unified pass
 *                      (also applied to the native reference so the
 *                      comparison isolates foveation error)
 * @param threads       pixel-engine workers (0 = auto, 1 = inline;
 *                      pass 1 when calling from inside a parallel
 *                      sweep cell to avoid oversubscription)
 */
FoveatedRenderResult
renderFoveated(const std::vector<RasterTriangle> &scene,
               std::int32_t width, std::int32_t height,
               const PixelPartition &partition, double s_middle,
               double s_outer, Vec2 atw_shift = Vec2{},
               std::size_t threads = 0);

/** Outcome of one compressed-layout foveated render. */
struct CompressedRenderResult
{
    foveation::CompressedFrameLayout layout;
    Image native;      ///< full-resolution reference (shifted)
    Image composite;   ///< fused directly from compressed layers
    double psnrOverall = 0.0;
    double psnrFovea = 0.0;
    double psnrPeriphery = 0.0;
};

/**
 * Render @p scene with the encoder-aligned compressed frame layout
 * (foveation/compressed_layout.hpp): the middle layer is rasterised
 * only over its cropped annulus window and the outer layer over the
 * whole frame, both into 32-pixel-aligned buffers at (or finer than)
 * the requested subsample factors.  Composition samples the
 * compressed buffers directly through their LayerTransforms — no
 * intermediate full-frame expansion exists anywhere in the path,
 * which is exactly what makes the transported bytes smaller.
 */
CompressedRenderResult
renderFoveatedCompressed(const std::vector<RasterTriangle> &scene,
                         std::int32_t width, std::int32_t height,
                         const PixelPartition &partition,
                         double s_middle, double s_outer,
                         Vec2 atw_shift = Vec2{},
                         std::size_t threads = 0);

}  // namespace qvr::core

#endif  // QVR_CORE_FOVEATED_RENDER_HPP
