#include "core/liwc.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/log.hpp"

namespace qvr::core
{

namespace
{

/** EWMA factor for the predictor's runtime-updated terms. */
constexpr double kPredictorAlpha = 0.25;

/** Fovea workload fraction: screen-area fraction raised to 1/gamma
 *  models centre-concentrated content (gamma >= 1). */
double
foveaWorkload(double area_fraction, double gamma)
{
    if (area_fraction <= 0.0)
        return 0.0;
    return std::pow(area_fraction, 1.0 / gamma);
}

}  // namespace

MotionCodec::MotionCodec(const LiwcConfig &cfg) : cfg_(cfg) {}

std::uint32_t
MotionCodec::encode(const motion::MotionDelta &delta) const
{
    std::uint32_t bits = 0;

    // Bits [9:4] — per-DoF activity flags: yaw, pitch, roll, x, y, z.
    const double rot[3] = {delta.dOrientation.x, delta.dOrientation.y,
                           delta.dOrientation.z};
    for (int i = 0; i < 3; i++) {
        if (std::abs(rot[i]) > cfg_.rotActiveDeg)
            bits |= 1u << (9 - i);
    }
    const double pos[3] = {delta.dPosition.x, delta.dPosition.y,
                           delta.dPosition.z};
    for (int i = 0; i < 3; i++) {
        if (std::abs(pos[i]) > cfg_.posActiveM)
            bits |= 1u << (6 - i);
    }

    // Bits [3:0] — fovea-centre movement: 2-bit magnitude class,
    // 2-bit direction quadrant.
    const double mag = delta.dGaze.norm();
    std::uint32_t mag_class = 0;
    if (mag > cfg_.gazeLargeDeg) {
        mag_class = 3;
    } else if (mag > cfg_.gazeSmallDeg) {
        mag_class = 2;
    } else if (mag > cfg_.gazeSmallDeg * 0.25) {
        mag_class = 1;
    }
    std::uint32_t quadrant = 0;
    if (delta.dGaze.x < 0.0)
        quadrant |= 1;
    if (delta.dGaze.y < 0.0)
        quadrant |= 2;
    bits |= (mag_class << 2) | quadrant;

    QVR_REQUIRE(bits < kMotionEntries, "motion index overflow");
    return bits;
}

LatencyPredictor::LatencyPredictor(double gpu_triangle_throughput,
                                   BitsPerSecond ack_throughput,
                                   double bits_per_pixel)
    : gpuRate_(gpu_triangle_throughput), throughput_(ack_throughput),
      bitsPerPixel_(bits_per_pixel)
{
    QVR_REQUIRE(gpuRate_ > 0.0 && throughput_ > 0.0 &&
                    bitsPerPixel_ > 0.0,
                "predictor needs positive initial rates");
}

Seconds
LatencyPredictor::predictLocal(std::uint64_t setup_triangles,
                               double fovea_workload_fraction) const
{
    return static_cast<double>(setup_triangles) *
           fovea_workload_fraction / gpuRate_;
}

Seconds
LatencyPredictor::predictRemote(double periphery_pixels) const
{
    return periphery_pixels * bitsPerPixel_ / throughput_ +
           remoteOverhead_;
}

void
LatencyPredictor::observeGpuRate(double triangles_per_second)
{
    if (triangles_per_second <= 0.0)
        return;
    gpuRate_ = (1.0 - kPredictorAlpha) * gpuRate_ +
               kPredictorAlpha * triangles_per_second;
}

void
LatencyPredictor::observeThroughput(BitsPerSecond bits_per_second)
{
    if (bits_per_second <= 0.0)
        return;
    throughput_ = (1.0 - kPredictorAlpha) * throughput_ +
                  kPredictorAlpha * bits_per_second;
}

void
LatencyPredictor::observeCompression(double bits_per_pixel)
{
    if (bits_per_pixel <= 0.0)
        return;
    bitsPerPixel_ = (1.0 - kPredictorAlpha) * bitsPerPixel_ +
                    kPredictorAlpha * bits_per_pixel;
}

void
LatencyPredictor::observeRemoteBranch(Seconds measured,
                                      double periphery_pixels)
{
    if (measured <= 0.0 || periphery_pixels <= 0.0)
        return;
    const Seconds payload =
        periphery_pixels * bitsPerPixel_ / throughput_;
    const Seconds overhead = std::max(0.0, measured - payload);
    remoteOverhead_ = (1.0 - kPredictorAlpha) * remoteOverhead_ +
                      kPredictorAlpha * overhead;
}

Liwc::Liwc(const LiwcConfig &cfg,
           const foveation::LayerGeometry &geometry,
           double initial_gpu_rate, BitsPerSecond initial_throughput,
           double initial_bpp, double initial_e1,
           double center_concentration)
    : cfg_(cfg), geometry_(&geometry), oracle_(geometry), codec_(cfg),
      predictor_(initial_gpu_rate, initial_throughput, initial_bpp),
      table_(std::size_t{1} << cfg.tableDepthLog2),
      e1_(geometry.clampE1(initial_e1)),
      centerConcentration_(center_concentration)
{
    QVR_REQUIRE(cfg.deltaRange >= 1 && cfg.deltaRange <= 15,
                "delta range out of the 5-bit tag space");
    QVR_REQUIRE(cfg.tableDepthLog2 >= MotionCodec::kMotionBits + 5,
                "table too shallow for motion x tag indexing");
    // Seed every (motion, tag) slot with the prior linear gradient:
    // growing e1 by d degrees raises the local-minus-remote gap by
    // about priorGradientPerDegree * d (stored in milliseconds).
    for (std::uint32_t m = 0; m < MotionCodec::kMotionEntries; m++) {
        for (int d = -cfg_.deltaRange; d <= cfg_.deltaRange; d++) {
            table_[slot(m, d)] = Half(static_cast<float>(
                toMs(cfg_.priorGradientPerDegree * d)));
        }
    }
}

std::size_t
Liwc::slot(std::uint32_t motion_index, int delta_tag) const
{
    QVR_REQUIRE(std::abs(delta_tag) <= cfg_.deltaRange,
                "delta tag out of range");
    // 32 tag slots per motion entry (5-bit tag space).
    const auto tag =
        static_cast<std::uint32_t>(delta_tag + cfg_.deltaRange);
    return (static_cast<std::size_t>(motion_index) << 5) | tag;
}

LiwcDecision
Liwc::selectEccentricity(const motion::MotionDelta &delta,
                         std::uint64_t setup_triangles, Vec2 gaze)
{
    LiwcDecision d;
    d.motionIndex = codec_.encode(delta);

    // Hardware-level latency estimates at the current eccentricity.
    const double fovea_frac = foveaWorkload(
        geometry_->foveaAreaFraction(e1_, gaze), centerConcentration_);
    d.predictedLocal =
        predictor_.predictLocal(setup_triangles, fovea_frac);

    const auto &resolved = oracle_.resolve(e1_, gaze);
    d.predictedRemote =
        predictor_.predictRemote(resolved.pixels.peripheryPixels());

    // We want the delta whose learned gap-gradient best cancels the
    // predicted gap.
    const double target_ms =
        toMs(d.predictedRemote - d.predictedLocal);

    int best_tag = 0;
    double best_err = std::numeric_limits<double>::infinity();
    for (int tag = -cfg_.deltaRange; tag <= cfg_.deltaRange; tag++) {
        const double g = table_[slot(d.motionIndex, tag)];
        const double err = std::abs(g - target_ms);
        const bool better =
            err < best_err - 1e-12 ||
            (std::abs(err - best_err) <= 1e-12 &&
             std::abs(tag) < std::abs(best_tag));
        if (better) {
            best_err = err;
            best_tag = tag;
        }
    }

    d.deltaTag = best_tag;
    e1_ = geometry_->clampE1(e1_ + best_tag);
    d.e1 = e1_;
    return d;
}

void
Liwc::update(const LiwcDecision &decision, const LiwcFeedback &feedback)
{
    const Seconds diff =
        feedback.measuredLocal - feedback.measuredRemote;
    if (havePrevDiff_) {
        const double delta_latency_ms = toMs(diff - prevMeasuredDiff_);
        const std::size_t s =
            slot(decision.motionIndex, decision.deltaTag);
        const double old_gradient = table_[s];
        table_[s] = Half(static_cast<float>(
            (1.0 - cfg_.alpha) * old_gradient +
            cfg_.alpha * delta_latency_ms));
    }
    prevMeasuredDiff_ = diff;
    havePrevDiff_ = true;

    if (feedback.measuredLocal > 0.0 && feedback.renderedTriangles > 0) {
        predictor_.observeGpuRate(
            static_cast<double>(feedback.renderedTriangles) /
            feedback.measuredLocal);
    }
    predictor_.observeThroughput(feedback.ackThroughput);
    if (feedback.peripheryPixels > 0.0 && feedback.peripheryBytes > 0) {
        predictor_.observeCompression(
            static_cast<double>(feedback.peripheryBytes) * 8.0 /
            feedback.peripheryPixels);
    }
    predictor_.observeRemoteBranch(feedback.measuredRemote,
                                   feedback.peripheryPixels);
}

void
Liwc::overrideE1(double e1)
{
    e1_ = geometry_->clampE1(e1);
}

double
Liwc::gradientAt(std::uint32_t motion_index, int delta_tag) const
{
    return table_[slot(motion_index, delta_tag)];
}

void
Liwc::saveTable(std::ostream &os) const
{
    const auto depth = static_cast<std::uint64_t>(table_.size());
    os.write("LIWCTB1\0", 8);
    os.write(reinterpret_cast<const char *>(&depth), sizeof(depth));
    for (const Half &h : table_) {
        const std::uint16_t bits = h.bits();
        os.write(reinterpret_cast<const char *>(&bits), sizeof(bits));
    }
    if (!os)
        QVR_FATAL("LIWC table write failed");
}

void
Liwc::loadTable(std::istream &is)
{
    char magic[8] = {};
    is.read(magic, 8);
    if (!is || std::string(magic, 7) != "LIWCTB1")
        QVR_FATAL("not a LIWC table image");
    std::uint64_t depth = 0;
    is.read(reinterpret_cast<char *>(&depth), sizeof(depth));
    if (!is || depth != table_.size()) {
        QVR_FATAL("LIWC table depth mismatch: file has ", depth,
                  ", controller expects ", table_.size());
    }
    for (Half &h : table_) {
        std::uint16_t bits = 0;
        is.read(reinterpret_cast<char *>(&bits), sizeof(bits));
        h = Half::fromBits(bits);
    }
    if (!is)
        QVR_FATAL("LIWC table truncated");
}

Bytes
Liwc::tableBytes() const
{
    return table_.size() * sizeof(Half);
}

Seconds
Liwc::selectionLatency() const
{
    // One SRAM probe per delta tag plus a few compare/add cycles.
    const double cycles =
        static_cast<double>(2 * cfg_.deltaRange + 1) + 10.0;
    return cycles / cfg_.frequency;
}

}  // namespace qvr::core
