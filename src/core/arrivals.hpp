/**
 * @file
 * Open-loop arrival processes: who connects to the fleet, and when.
 *
 * The serve layer was built against closed-loop traffic — a fixed
 * cohort of users each issuing its next frame as soon as the last one
 * displays.  Real fleets are open-loop: users connect, stay for a
 * session, roam, and disconnect, and the *arrival process* — not a
 * preconfigured user count — decides the offered load (the multi-user
 * MEC formulations in PAPERS.md, arXiv 2407.20523 / 2005.08332, all
 * model traffic this way).  This layer generates those arrivals:
 *
 *  - Poisson: constant-rate memoryless arrivals, the M/G/k baseline;
 *  - MMPP: a Markov-modulated Poisson process whose states carry
 *    different rates — the standard bursty/flash-crowd model (a
 *    low-rate base state punctuated by high-rate burst states);
 *  - diurnal modulation: a sinusoidal rate curve multiplying either
 *    kind, for day/night load shapes;
 *  - heterogeneous user mixes: each arrival draws a scene profile
 *    (Table 1/3 benchmark) from a weighted mix, plus a session length
 *    in frames and a per-user model seed.
 *
 * Everything is deterministic and byte-replayable from one seed.  The
 * three random streams are split by role — state chain, arrival gaps,
 * per-user draws — so e.g. scaling the rate up leaves the MMPP state
 * path bit-identical, which is what lets the open-loop bench compare
 * 2-shard and 64-shard fleets under the *same* burst timeline.
 */

#ifndef QVR_CORE_ARRIVALS_HPP
#define QVR_CORE_ARRIVALS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace qvr::core
{

/** Shape of the arrival point process. */
enum class ArrivalKind
{
    Poisson,  ///< constant-rate memoryless arrivals
    Mmpp,     ///< Markov-modulated Poisson (bursty / flash crowd)
};

const char *arrivalKindName(ArrivalKind k);

/** One MMPP state: an arrival rate and how long it typically lasts. */
struct MmppState
{
    double rate = 10.0;       ///< arrivals/s while in this state
    Seconds meanDwell = 1.0;  ///< exponential dwell mean
};

/** One entry of the heterogeneous user mix. */
struct ArrivalMixEntry
{
    std::string benchmark;  ///< Table 1/3 scene profile name
    double weight = 1.0;    ///< relative draw probability
};

/** Full description of an open-loop traffic source. */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Poisson;

    /** Poisson: the constant arrival rate (users/s). */
    double rate = 20.0;

    /** MMPP: the state cycle (>= 2 states, visited round-robin with
     *  exponential dwells — state 0 is the t=0 state). */
    std::vector<MmppState> states;

    /** Diurnal curve: rate *= 1 + amplitude * sin(2*pi*t/period).
     *  Amplitude 0 disables; must stay below 1 so the rate is
     *  positive. */
    double diurnalAmplitude = 0.0;
    Seconds diurnalPeriod = 60.0;

    /** Session length drawn uniformly from [minFrames, maxFrames]. */
    std::uint32_t minFrames = 30;
    std::uint32_t maxFrames = 120;

    /** Per-user roam events/s (0 disables).  A roam re-keys the
     *  user's placement hash, so affinity balancers migrate it. */
    double roamRate = 0.0;

    /** Weighted scene-profile mix; empty means every user runs the
     *  session's default benchmark. */
    std::vector<ArrivalMixEntry> mix;

    std::uint64_t seed = 1;

    /** Panic on impossible values. */
    void validate() const;
};

/** One user joining the fleet. */
struct UserArrival
{
    std::uint64_t id = 0;       ///< arrival index (0, 1, 2, ...)
    Seconds connect = 0.0;      ///< when the user connects
    std::uint32_t frames = 0;   ///< session length in frames
    std::uint32_t profile = 0;  ///< index into ArrivalConfig::mix
    std::uint64_t seed = 0;     ///< per-user motion/scene seed
};

/**
 * Streaming arrival generator: next() yields arrivals in
 * nondecreasing connect order, byte-replayable from the config seed.
 * Thinning against the per-state peak rate makes the diurnal
 * modulation exact, and the MMPP state chain consumes its own RNG
 * stream so the burst timeline is invariant under rate scaling.
 */
class ArrivalProcess
{
  public:
    explicit ArrivalProcess(const ArrivalConfig &cfg);

    const ArrivalConfig &config() const { return cfg_; }

    /** Generate the next arrival (advances simulated time). */
    UserArrival next();

    /** Time of the most recent draw. */
    Seconds now() const { return now_; }

    /** Arrivals generated so far. */
    std::uint64_t count() const { return count_; }

    /** Current MMPP state index (always 0 for Poisson). */
    std::size_t state() const { return state_; }

    /** Completed MMPP dwell durations, in order (capped — the
     *  statistical tests read this; long runs keep the head). */
    const std::vector<Seconds> &dwellLog() const { return dwells_; }

  private:
    double baseRate() const;
    double rateAt(Seconds t) const;
    void advanceState();

    ArrivalConfig cfg_;
    Rng chainRng_;    ///< MMPP dwell draws only
    Rng arrivalRng_;  ///< candidate gaps + thinning accepts
    Rng userRng_;     ///< frames / profile / per-user seed draws
    Seconds now_ = 0.0;
    std::size_t state_ = 0;
    Seconds stateUntil_ = 0.0;
    Seconds stateStart_ = 0.0;
    std::uint64_t count_ = 0;
    std::vector<Seconds> dwells_;
};

/** Materialise every arrival with connect < @p horizon. */
std::vector<UserArrival> generateArrivals(const ArrivalConfig &cfg,
                                          Seconds horizon);

}  // namespace qvr::core

#endif  // QVR_CORE_ARRIVALS_HPP
