/**
 * @file
 * Graceful-degradation controller for the collaborative pipeline.
 *
 * The reprojection-deadline fallback (Section 4.2) keeps single late
 * frames from stalling the display, but it is an incidental defense:
 * under a sustained fault (outage window, loss burst, straggling
 * server) it re-displays ever-staler periphery while the link queue
 * grows.  The DegradationController makes degradation deliberate — a
 * per-frame state machine that steps the periphery down an ABR-style
 * ladder while the remote branch keeps missing, collapses the
 * collaborative split to an on-device low-resolution periphery when
 * the link is effectively down, and ramps back up with hysteresis so
 * recovery does not oscillate between quality levels.
 *
 * States:
 *  - Healthy: full-quality collaborative rendering;
 *  - Degraded(level): periphery streamed at reduced encode quality and
 *    resolution; at the deepest level the outer layer is dropped and
 *    reconstructed from the middle layer (layer-count downgrade);
 *  - LocalOnly: no remote fetch at all — the periphery is rendered
 *    on-device at a fraction of native resolution; every Nth frame
 *    probes the remote path to detect recovery.
 *
 * Transitions are driven by per-frame FrameHealth observations
 * (remote-deadline misses, exhausted transfer retries, outage stalls,
 * ACK-throughput collapse) and gated by consecutive-frame thresholds
 * in both directions, the recovery side longer than the failure side.
 */

#ifndef QVR_CORE_DEGRADATION_HPP
#define QVR_CORE_DEGRADATION_HPP

#include <cstdint>

#include "common/types.hpp"

namespace qvr::core
{

/** Controller macro-state. */
enum class DegradationState
{
    Healthy,    ///< full collaborative quality
    Degraded,   ///< periphery stepped down the ABR ladder
    LocalOnly,  ///< link declared down; periphery rendered on-device
};

const char *degradationStateName(DegradationState s);

/** Controller thresholds and ladder shape. */
struct DegradationConfig
{
    bool enabled = false;

    /** Consecutive remote misses before stepping one level down. */
    std::uint32_t missesToDegrade = 2;
    /** Consecutive remote misses before declaring the link down. */
    std::uint32_t missesToLocalOnly = 6;
    /** Consecutive healthy remote frames before stepping one level
     *  back up (hysteresis: recovery is slower than failure). */
    std::uint32_t recoveryFrames = 8;
    /** Consecutive successful probes before leaving LocalOnly. */
    std::uint32_t probesToExit = 2;
    /** While LocalOnly, probe the remote path every Nth frame. */
    std::uint32_t probeInterval = 4;

    /** Deepest ladder level. */
    std::uint32_t maxLevel = 3;
    /** Periphery encode-quality multiplier per level. */
    double qualityStep = 0.8;
    /** Periphery linear-resolution multiplier per level. */
    double resolutionStep = 0.85;

    /** Linear resolution of the on-device periphery in LocalOnly. */
    double localPeripheryScale = 0.25;

    /** A transfer stalled at least this long (outage window) declares
     *  the link down immediately, skipping the miss-count ramp. */
    Seconds stallToDeclareDown = 0.050;
    /** ACK throughput below this fraction of the derated nominal
     *  also declares the link down. */
    double throughputCollapse = 0.15;

    void validate() const;
};

/** What the pipeline observed for one frame. */
struct FrameHealth
{
    /** False when the frame never touched the remote path (LocalOnly
     *  non-probe frames) — such frames carry no link information. */
    bool remoteAttempted = true;
    /** The remote branch missed: reprojected, fetch skipped, or the
     *  periphery arrived unusable. */
    bool remoteMiss = false;
    /** A layer exhausted its retry budget. */
    bool transferLost = false;
    /** Outage stall observed on the link this frame. */
    Seconds linkStall = 0.0;
    /** ackThroughput / (nominal x protocol efficiency). */
    double ackFraction = 1.0;
};

/** What the pipeline should do for the upcoming frame. */
struct DegradationDecision
{
    DegradationState state = DegradationState::Healthy;
    std::uint32_t level = 0;
    /** Multiplier on the periphery encode quality (<= 1). */
    double qualityFactor = 1.0;
    /** Multiplier on the periphery linear resolution (<= 1). */
    double resolutionScale = 1.0;
    /** Drop the outer layer; UCA reconstructs it from the middle
     *  layer (deepest ladder rung). */
    bool dropOuterLayer = false;
    /** Skip the remote fetch entirely; render the periphery
     *  on-device at localPeripheryScale. */
    bool localOnly = false;
    /** This LocalOnly frame should probe the remote path. */
    bool probe = false;
    /** Cap local (fovea) work at the policy's initial eccentricity:
     *  raised as soon as a miss streak starts, before the ladder
     *  engages, so the workload controller cannot chase a faulty
     *  link by shifting work onto the mobile GPU. */
    bool clampLocalWork = false;
};

/** Counters for PipelineResult/bench reporting. */
struct DegradationCounters
{
    std::uint64_t downgrades = 0;       ///< ladder steps down
    std::uint64_t upgrades = 0;         ///< ladder steps up
    std::uint64_t localOnlyEntries = 0; ///< link declared down
    std::uint64_t localOnlyExits = 0;   ///< link recovered
    std::uint64_t probes = 0;           ///< remote probes sent
};

/** The per-frame state machine. */
class DegradationController
{
  public:
    explicit DegradationController(const DegradationConfig &cfg);

    const DegradationConfig &config() const { return cfg_; }

    /** Decision for the upcoming frame (pure; no state advance). */
    DegradationDecision decide() const;

    /** Feed the completed frame's health back; advances the state. */
    void observe(const FrameHealth &health);

    DegradationState state() const { return state_; }
    std::uint32_t level() const { return level_; }
    const DegradationCounters &counters() const { return counters_; }

  private:
    void enterLocalOnly();

    DegradationConfig cfg_;
    DegradationState state_ = DegradationState::Healthy;
    std::uint32_t level_ = 0;
    /** Uninterrupted remote misses (drives the LocalOnly cliff). */
    std::uint32_t missStreak_ = 0;
    /** Misses since the last ladder step (drives per-level steps). */
    std::uint32_t sinceDowngrade_ = 0;
    std::uint32_t consecutiveGood_ = 0;
    std::uint32_t goodProbes_ = 0;
    std::uint32_t framesInLocalOnly_ = 0;
    DegradationCounters counters_;
};

}  // namespace qvr::core

#endif  // QVR_CORE_DEGRADATION_HPP
