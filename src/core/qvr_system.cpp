#include "core/qvr_system.hpp"

#include "common/log.hpp"

namespace qvr::core
{

const char *
designName(DesignPoint design)
{
    switch (design) {
      case DesignPoint::Local: return "Local";
      case DesignPoint::Remote: return "Remote";
      case DesignPoint::Static: return "Static";
      case DesignPoint::Ffr: return "FFR";
      case DesignPoint::Dfr: return "DFR";
      case DesignPoint::SwQvr: return "SW-QVR";
      case DesignPoint::Qvr: return "Q-VR";
      case DesignPoint::QvrCompressed: return "Q-VR+CL";
      case DesignPoint::Resilient: return "Q-VR-R";
    }
    return "?";
}

std::unique_ptr<Pipeline>
makePipeline(DesignPoint design, const PipelineConfig &cfg)
{
    switch (design) {
      case DesignPoint::Local:
        return std::make_unique<LocalPipeline>(cfg);
      case DesignPoint::Remote:
        return std::make_unique<RemotePipeline>(cfg);
      case DesignPoint::Static:
        return std::make_unique<StaticPipeline>(cfg);
      case DesignPoint::Ffr:
        return std::make_unique<FoveatedPipeline>(
            cfg, FoveatedPolicy::ffr());
      case DesignPoint::Dfr:
        return std::make_unique<FoveatedPipeline>(
            cfg, FoveatedPolicy::dfr());
      case DesignPoint::SwQvr:
        return std::make_unique<FoveatedPipeline>(
            cfg, FoveatedPolicy::swQvr());
      case DesignPoint::Qvr:
        return std::make_unique<FoveatedPipeline>(
            cfg, FoveatedPolicy::qvr());
      case DesignPoint::QvrCompressed:
        return std::make_unique<FoveatedPipeline>(
            cfg, FoveatedPolicy::qvrCompressed());
      case DesignPoint::Resilient:
        return std::make_unique<FoveatedPipeline>(
            cfg, FoveatedPolicy::resilient());
    }
    QVR_PANIC("unhandled design point");
}

PipelineConfig
ExperimentSpec::toConfig() const
{
    PipelineConfig cfg = PipelineConfig::forBenchmark(
        scene::findBenchmark(benchmark));
    cfg.channelConfig = channel;
    cfg.powerConfig.radio = power::RadioProfile::forNetwork(channel.name);
    cfg.gpuFrequencyScale = gpuFrequencyScale;
    cfg.seed = seed;
    cfg.faults = faults;
    cfg.retryPolicy = retryPolicy;
    return cfg;
}

std::vector<scene::FrameWorkload>
generateExperimentWorkload(const ExperimentSpec &spec)
{
    motion::TraceConfig trace_cfg;
    trace_cfg.numFrames = spec.numFrames;
    trace_cfg.seed = spec.seed;
    const motion::MotionTrace trace = motion::generateTrace(trace_cfg);
    return scene::generateWorkloads(scene::findBenchmark(spec.benchmark),
                                    trace, spec.seed + 1000);
}

PipelineResult
runExperiment(DesignPoint design, const ExperimentSpec &spec)
{
    const auto workload = generateExperimentWorkload(spec);
    auto pipeline = makePipeline(design, spec.toConfig());
    return pipeline->run(workload);
}

QvrSystem::QvrSystem(const PipelineConfig &cfg)
    : pipeline_(cfg, FoveatedPolicy::qvr())
{
}

QvrFrameOutput
QvrSystem::renderFrame(const scene::FrameWorkload &frame)
{
    QvrFrameOutput out;
    out.stats = pipeline_.step(frame);
    out.e1 = out.stats.e1;
    out.e2 = out.stats.e2;
    return out;
}

}  // namespace qvr::core
